package orchestra

import (
	"math"
	"testing"
	"time"

	"orchestra/internal/stbench"
	"orchestra/internal/tpch"
	"orchestra/internal/tuple"
)

// loadTPCH publishes a generated TPC-H instance into the cluster and
// returns the raw data for reference computations.
func loadTPCH(t *testing.T, c *Cluster, sf float64) map[string][]tuple.Row {
	t.Helper()
	data := tpch.Generate(sf, 42)
	for _, s := range tpch.Schemas() {
		if err := c.CreateRelationSchema(s); err != nil {
			t.Fatalf("create %s: %v", s.Relation, err)
		}
		if _, err := c.PublishTyped(0, s.Relation, data[s.Relation]); err != nil {
			t.Fatalf("publish %s: %v", s.Relation, err)
		}
	}
	return data
}

func loadSTBench(t *testing.T, c *Cluster, tuples int) map[string][]tuple.Row {
	t.Helper()
	data := stbench.Generate(stbench.Config{Tuples: tuples, Seed: 42})
	for _, s := range stbench.Schemas() {
		if err := c.CreateRelationSchema(s); err != nil {
			t.Fatalf("create %s: %v", s.Relation, err)
		}
		if _, err := c.PublishTyped(0, s.Relation, data[s.Relation]); err != nil {
			t.Fatalf("publish %s: %v", s.Relation, err)
		}
	}
	return data
}

func TestTPCHAllQueriesExecute(t *testing.T) {
	c := newTestCluster(t, 4)
	data := loadTPCH(t, c, 0.002)

	results := map[string]*Result{}
	for _, q := range tpch.Queries() {
		res, err := c.Query(q.SQL)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		results[q.Name] = res
	}

	// Q1: exactly the (returnflag, linestatus) groups present in the data,
	// and the quantity sums must match a direct computation.
	type q1key struct{ rf, ls string }
	wantQ1 := map[q1key]float64{}
	wantCnt := map[q1key]int64{}
	for _, l := range data["lineitem"] {
		if l[10].AsInt() <= 19980902 {
			k := q1key{l[8].Str, l[9].Str}
			wantQ1[k] += l[4].AsFloat()
			wantCnt[k]++
		}
	}
	q1 := results["Q1"]
	if len(q1.Rows) != len(wantQ1) {
		t.Fatalf("Q1 groups: got %d want %d", len(q1.Rows), len(wantQ1))
	}
	for _, r := range q1.Rows {
		k := q1key{r[0].Str, r[1].Str}
		if math.Abs(r[2].AsFloat()-wantQ1[k]) > 1e-6*math.Max(1, wantQ1[k]) {
			t.Fatalf("Q1 %v sum_qty: got %f want %f", k, r[2].AsFloat(), wantQ1[k])
		}
		if r[9].AsInt() != wantCnt[k] {
			t.Fatalf("Q1 %v count: got %d want %d", k, r[9].AsInt(), wantCnt[k])
		}
	}

	// Q6: single row matching the reference revenue.
	var wantQ6 float64
	for _, l := range data["lineitem"] {
		ship, disc, qty := l[10].AsInt(), l[6].AsFloat(), l[4].AsFloat()
		if ship >= 19940101 && ship < 19950101 && disc >= 0.05 && disc <= 0.07 && qty < 24 {
			wantQ6 += l[5].AsFloat() * disc
		}
	}
	q6 := results["Q6"]
	if len(q6.Rows) != 1 {
		t.Fatalf("Q6 rows: %v", q6.Rows)
	}
	if got := q6.Rows[0][0].AsFloat(); math.Abs(got-wantQ6) > 1e-6*math.Max(1, wantQ6) {
		t.Fatalf("Q6 revenue: got %f want %f", got, wantQ6)
	}

	// Q3/Q10 honor their LIMITs and descending order.
	for _, name := range []string{"Q3", "Q10"} {
		res := results[name]
		limit := 10
		revCol := 1
		if name == "Q10" {
			limit = 20
			revCol = 2
		}
		if len(res.Rows) > limit {
			t.Fatalf("%s: %d rows exceeds limit", name, len(res.Rows))
		}
		for i := 1; i < len(res.Rows); i++ {
			if res.Rows[i-1][revCol].AsFloat() < res.Rows[i][revCol].AsFloat()-1e-9 {
				t.Fatalf("%s: revenue not descending", name)
			}
		}
	}

	// Q5 returns at most the number of ASIA nations.
	if len(results["Q5"].Rows) > 5 {
		t.Fatalf("Q5 rows: %d", len(results["Q5"].Rows))
	}
}

func TestSTBenchAllScenariosExecute(t *testing.T) {
	c := newTestCluster(t, 4)
	data := loadSTBench(t, c, 400)

	for _, sc := range stbench.Scenarios() {
		res, err := c.Query(sc.SQL)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		switch sc.Name {
		case "Copy":
			if len(res.Rows) != 400 {
				t.Fatalf("Copy: %d rows", len(res.Rows))
			}
		case "Select":
			want := 0
			for _, r := range data["stb_sel"] {
				if r[1].AsInt() < 500 {
					want++
				}
			}
			if len(res.Rows) != want {
				t.Fatalf("Select: %d rows, want %d", len(res.Rows), want)
			}
		case "Join":
			// Reference double-join count.
			j5ByJ1 := map[string]int{}
			for _, r := range data["stb_j5"] {
				j5ByJ1[r[1].Str]++
			}
			j9ByJ2 := map[string]int{}
			for _, r := range data["stb_j9"] {
				j9ByJ2[r[1].Str]++
			}
			want := 0
			j5Join9 := map[string]int{} // j1 → matched (j5 ⋈ j9) count
			for _, r := range data["stb_j5"] {
				j5Join9[r[1].Str] += j9ByJ2[r[2].Str]
			}
			for _, r := range data["stb_j7"] {
				want += j5Join9[r[1].Str]
			}
			if len(res.Rows) != want {
				t.Fatalf("Join: %d rows, want %d", len(res.Rows), want)
			}
		case "Concatenate":
			if len(res.Rows) != 400 {
				t.Fatalf("Concatenate: %d rows", len(res.Rows))
			}
			r0 := res.Rows[0]
			if len(r0[0].Str) < 40 {
				t.Fatalf("Concatenate output suspiciously short: %q", r0[0].Str)
			}
		case "Correspondence":
			if len(res.Rows) != 400 {
				t.Fatalf("Correspondence: %d rows (every pair must resolve)", len(res.Rows))
			}
			for _, r := range res.Rows {
				if r[5].AsInt() < 100000 {
					t.Fatalf("Correspondence id missing: %v", r)
				}
			}
		}
	}
}

func TestTPCHQueryWithFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	c := newTestCluster(t, 6)
	data := loadTPCH(t, c, 0.005)
	var want float64
	for _, l := range data["lineitem"] {
		ship, disc, qty := l[10].AsInt(), l[6].AsFloat(), l[4].AsFloat()
		if ship >= 19940101 && ship < 19950101 && disc >= 0.05 && disc <= 0.07 && qty < 24 {
			want += l[5].AsFloat() * disc
		}
	}
	go func() {
		time.Sleep(time.Millisecond)
		c.Kill(4)
	}()
	res, err := c.QueryOpts(tpch.QueryByName("Q6").SQL,
		QueryOptions{Recovery: RecoverIncremental})
	if err != nil {
		t.Fatalf("Q6 with failure: %v", err)
	}
	if got := res.Rows[0][0].AsFloat(); math.Abs(got-want) > 1e-6*math.Max(1, want) {
		t.Fatalf("Q6 after recovery: got %f want %f", got, want)
	}
}
