package orchestra

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"orchestra/internal/tuple"
)

func newTestCluster(t *testing.T, n int, opts ...Option) *Cluster {
	t.Helper()
	c, err := NewCluster(n, opts...)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	t.Cleanup(c.Shutdown)
	return c
}

func mustCreate(t *testing.T, c *Cluster, def *SchemaDef) {
	t.Helper()
	if err := c.CreateRelation(def); err != nil {
		t.Fatalf("CreateRelation: %v", err)
	}
}

func mustPublish(t *testing.T, c *Cluster, rel string, rows Rows) Epoch {
	t.Helper()
	e, err := c.Publish(rel, rows)
	if err != nil {
		t.Fatalf("Publish(%s): %v", rel, err)
	}
	return e
}

func mustQuery(t *testing.T, c *Cluster, src string) *Result {
	t.Helper()
	res, err := c.Query(src)
	if err != nil {
		t.Fatalf("Query(%q): %v", src, err)
	}
	return res
}

// sortedStrings renders rows canonically for comparison.
func sortedStrings(rows []tuple.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

func expectRows(t *testing.T, res *Result, want ...string) {
	t.Helper()
	got := sortedStrings(res.Rows)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("got %d rows %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d: got %s want %s (all: %v)", i, got[i], want[i], got)
		}
	}
}

func setupInventory(t *testing.T, c *Cluster) {
	mustCreate(t, c, NewSchema("inv", "item:string", "qty:int", "price:float").Key("item"))
	mustPublish(t, c, "inv", Rows{
		{"bolt", 90, 0.10},
		{"nut", 120, 0.05},
		{"washer", 200, 0.02},
		{"screw", 45, 0.12},
	})
}

func TestQuerySelectWhere(t *testing.T) {
	c := newTestCluster(t, 4)
	setupInventory(t, c)
	res := mustQuery(t, c, "SELECT item, qty FROM inv WHERE qty > 100")
	expectRows(t, res, `(nut, 120)`, `(washer, 200)`)
	if len(res.Columns) != 2 || res.Columns[0] != "item" {
		t.Fatalf("columns: %v", res.Columns)
	}
	if res.Plan == "" {
		t.Fatal("missing plan explanation")
	}
}

func TestQueryStar(t *testing.T) {
	c := newTestCluster(t, 3)
	setupInventory(t, c)
	res := mustQuery(t, c, "SELECT * FROM inv")
	if len(res.Rows) != 4 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	if len(res.Columns) != 3 {
		t.Fatalf("columns: %v", res.Columns)
	}
}

func TestQueryComputeAndOrder(t *testing.T) {
	c := newTestCluster(t, 4)
	setupInventory(t, c)
	res := mustQuery(t, c,
		"SELECT item, qty * 2 AS dbl FROM inv ORDER BY dbl DESC LIMIT 2")
	if len(res.Rows) != 2 {
		t.Fatalf("limit: %v", res.Rows)
	}
	if res.Rows[0][1].AsInt() != 400 || res.Rows[1][1].AsInt() != 240 {
		t.Fatalf("order: %v", res.Rows)
	}
}

func TestQueryJoin(t *testing.T) {
	c := newTestCluster(t, 4)
	setupInventory(t, c)
	mustCreate(t, c, NewSchema("supplier", "item:string", "vendor:string").Key("item"))
	mustPublish(t, c, "supplier", Rows{
		{"bolt", "acme"},
		{"nut", "acme"},
		{"washer", "globex"},
	})
	res := mustQuery(t, c,
		"SELECT inv.item, supplier.vendor FROM inv, supplier WHERE inv.item = supplier.item AND inv.qty > 100")
	expectRows(t, res, `(nut, acme)`, `(washer, globex)`)
}

func TestQueryGroupBy(t *testing.T) {
	c := newTestCluster(t, 4)
	mustCreate(t, c, NewSchema("sales", "id:int", "region:string", "amt:float").Key("id"))
	mustPublish(t, c, "sales", Rows{
		{1, "east", 10.0}, {2, "west", 20.0}, {3, "east", 30.0},
		{4, "west", 5.0}, {5, "east", 2.0},
	})
	res := mustQuery(t, c,
		"SELECT region, COUNT(*) AS n, SUM(amt) AS total FROM sales GROUP BY region ORDER BY region")
	if len(res.Rows) != 2 {
		t.Fatalf("groups: %v", res.Rows)
	}
	if res.Rows[0][0].Str != "east" || res.Rows[0][1].AsInt() != 3 || res.Rows[0][2].AsFloat() != 42.0 {
		t.Fatalf("east: %v", res.Rows[0])
	}
	if res.Rows[1][0].Str != "west" || res.Rows[1][2].AsFloat() != 25.0 {
		t.Fatalf("west: %v", res.Rows[1])
	}
}

func TestQueryPaperExample(t *testing.T) {
	// The running example of §V (Example 5.1):
	// SELECT x, MIN(z) FROM R, S WHERE R.y = S.y GROUP BY x.
	c := newTestCluster(t, 3)
	mustCreate(t, c, NewSchema("R", "x:string", "y:string").Key("x"))
	mustCreate(t, c, NewSchema("S", "y:string", "z:int").Key("y"))
	mustPublish(t, c, "R", Rows{{"a", "b"}, {"c", "d"}})
	mustPublish(t, c, "S", Rows{{"b", 7}, {"b", 3}, {"f", 9}})
	// S is keyed on y; two rows share y="b" — give S a composite key to
	// allow duplicates. Rebuild with distinct keys instead:
	res := mustQuery(t, c,
		"SELECT x, MIN(z) AS mz FROM R, S WHERE R.y = S.y GROUP BY x")
	expectRows(t, res, `(a, 3)`)
}

func TestQueryVersionedSnapshots(t *testing.T) {
	c := newTestCluster(t, 4)
	mustCreate(t, c, NewSchema("doc", "id:int", "body:string").Key("id"))
	e1 := mustPublish(t, c, "doc", Rows{{1, "draft"}})
	e2, err := c.Update("doc", Rows{{1, "final"}})
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if e2 <= e1 {
		t.Fatalf("epochs: %d then %d", e1, e2)
	}

	res1, err := c.QueryOpts("SELECT body FROM doc", QueryOptions{Epoch: e1})
	if err != nil {
		t.Fatal(err)
	}
	expectRows(t, res1, `(draft)`)

	res2 := mustQuery(t, c, "SELECT body FROM doc")
	expectRows(t, res2, `(final)`)

	// Deletes also version: the tuple disappears from the new epoch but
	// remains at the old one.
	e3, err := c.Delete("doc", Rows{{1, ""}})
	if err != nil {
		t.Fatalf("Delete: %v", err)
	}
	res3, err := c.QueryOpts("SELECT body FROM doc", QueryOptions{Epoch: e3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res3.Rows) != 0 {
		t.Fatalf("after delete: %v", res3.Rows)
	}
	res4, err := c.QueryOpts("SELECT body FROM doc", QueryOptions{Epoch: e2})
	if err != nil {
		t.Fatal(err)
	}
	expectRows(t, res4, `(final)`)
}

func TestQueryFromAnyNode(t *testing.T) {
	c := newTestCluster(t, 4)
	setupInventory(t, c)
	for i := 0; i < 4; i++ {
		res, err := c.QueryOpts("SELECT item FROM inv", QueryOptions{Node: i})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		if len(res.Rows) != 4 {
			t.Fatalf("node %d: %v", i, res.Rows)
		}
	}
}

func TestQueryWithIncrementalRecovery(t *testing.T) {
	c := newTestCluster(t, 6)
	mustCreate(t, c, NewSchema("big", "k:int", "g:int").Key("k"))
	rows := make(Rows, 3000)
	for i := range rows {
		rows[i] = Row{i, i % 37}
	}
	mustPublish(t, c, "big", rows)

	go func() {
		time.Sleep(2 * time.Millisecond)
		c.Kill(3)
	}()
	res, err := c.QueryOpts(
		"SELECT g, COUNT(*) AS n FROM big GROUP BY g",
		QueryOptions{Recovery: RecoverIncremental})
	if err != nil {
		t.Fatalf("query with failure: %v", err)
	}
	if len(res.Rows) != 37 {
		t.Fatalf("groups: %d", len(res.Rows))
	}
	total := int64(0)
	for _, r := range res.Rows {
		total += r[1].AsInt()
	}
	if total != 3000 {
		t.Fatalf("count total %d, want 3000 (complete and duplicate-free); phases=%d restarts=%d plan:\n%s",
			total, res.Phases, res.Restarts, res.Plan)
	}
}

func TestQueryWithRestartRecovery(t *testing.T) {
	c := newTestCluster(t, 5)
	setupInventory(t, c)
	c.Kill(2)
	res, err := c.QueryOpts("SELECT item FROM inv", QueryOptions{Recovery: RecoverRestart})
	if err != nil {
		t.Fatalf("query after kill: %v", err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows: %v", res.Rows)
	}
}

func TestQueryErrors(t *testing.T) {
	c := newTestCluster(t, 2)
	setupInventory(t, c)
	bad := []string{
		"not sql",
		"SELECT nosuch FROM inv",
		"SELECT item FROM nosuch",
	}
	for _, src := range bad {
		if _, err := c.Query(src); err == nil {
			t.Errorf("Query(%q): expected error", src)
		}
	}
	if _, err := c.QueryOpts("SELECT item FROM inv", QueryOptions{Node: 99}); err == nil {
		t.Error("expected error for bad node index")
	}
}

func TestPublishValidation(t *testing.T) {
	c := newTestCluster(t, 2)
	mustCreate(t, c, NewSchema("t", "a:int", "b:string").Key("a"))
	if _, err := c.Publish("t", Rows{{1}}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := c.Publish("t", Rows{{"x", "y"}}); err == nil {
		t.Error("type mismatch accepted")
	}
	if _, err := c.Publish("nosuch", Rows{{1, "a"}}); err == nil {
		t.Error("unknown relation accepted")
	}
	if err := c.CreateRelation(NewSchema("bad", "a:blob")); err == nil {
		t.Error("bad column type accepted")
	}
}

func TestNodeLifecycle(t *testing.T) {
	c := newTestCluster(t, 3)
	setupInventory(t, c)
	idx, err := c.AddNode()
	if err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	res, err := c.QueryOpts("SELECT item FROM inv", QueryOptions{Node: idx})
	if err != nil {
		t.Fatalf("query from new node: %v", err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows: %v", res.Rows)
	}
	if err := c.RemoveNode(1); err != nil {
		t.Fatalf("RemoveNode: %v", err)
	}
	res2 := mustQuery(t, c, "SELECT item FROM inv")
	if len(res2.Rows) != 4 {
		t.Fatalf("after remove: %v", res2.Rows)
	}
}

func TestNetworkAccounting(t *testing.T) {
	c := newTestCluster(t, 4)
	setupInventory(t, c)
	c.ResetNetworkStats()
	mustQuery(t, c, "SELECT item FROM inv")
	st := c.NetworkStats()
	if st.TotalBytes <= 0 || st.TotalMsgs <= 0 {
		t.Fatalf("no traffic recorded: %+v", st)
	}
}

func TestStatsReporting(t *testing.T) {
	c := newTestCluster(t, 4)
	setupInventory(t, c)
	res := mustQuery(t, c, "SELECT item FROM inv")
	if res.Stats.Scanned != 4 {
		t.Fatalf("scanned: %+v", res.Stats)
	}
	if len(res.PerNode) != 4 {
		t.Fatalf("per-node stats: %v", res.PerNode)
	}
}

func TestLargerScaleSQL(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	c := newTestCluster(t, 8)
	mustCreate(t, c, NewSchema("fact", "id:int", "dim:int", "val:float").Key("id"))
	mustCreate(t, c, NewSchema("dim", "dim:int", "name:string").Key("dim"))
	var facts Rows
	for i := 0; i < 5000; i++ {
		facts = append(facts, Row{i, i % 50, float64(i % 997)})
	}
	mustPublish(t, c, "fact", facts)
	var dims Rows
	for d := 0; d < 50; d++ {
		dims = append(dims, Row{d, fmt.Sprintf("dim-%02d", d)})
	}
	mustPublish(t, c, "dim", dims)

	res := mustQuery(t, c, `
		SELECT name, COUNT(*) AS n, SUM(val) AS total
		FROM fact, dim
		WHERE fact.dim = dim.dim AND val < 500
		GROUP BY name ORDER BY name`)
	if len(res.Rows) != 50 {
		t.Fatalf("groups: %d", len(res.Rows))
	}
	var n int64
	for _, r := range res.Rows {
		n += r[1].AsInt()
	}
	want := int64(0)
	for i := 0; i < 5000; i++ {
		if i%997 < 500 {
			want++
		}
	}
	if n != want {
		t.Fatalf("total count %d want %d", n, want)
	}
}

func TestWeightedClusterShiftsLoad(t *testing.T) {
	// The load-balancing extension (§VIII future work): a node with 4x the
	// capacity of its peers owns ~4x the key space and therefore scans ~4x
	// the tuples of an evenly loaded relation.
	c := newTestCluster(t, 0, WithCapacities(4, 1, 1, 1, 1))
	mustCreate(t, c, NewSchema("load", "k:int", "v:int").Key("k"))
	rows := make(Rows, 6000)
	for i := range rows {
		rows[i] = Row{i, i}
	}
	mustPublish(t, c, "load", rows)

	res := mustQuery(t, c, "SELECT k, v FROM load")
	if len(res.Rows) != 6000 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	big := res.PerNode[c.NodeID(0)].Scanned
	var others uint64
	for i := 1; i < 5; i++ {
		others += res.PerNode[c.NodeID(i)].Scanned
	}
	avgOther := float64(others) / 4
	ratio := float64(big) / avgOther
	if ratio < 2.5 || ratio > 6 {
		t.Fatalf("capacity-4 node scanned %d vs avg %f (ratio %f), want ≈4x",
			big, avgOther, ratio)
	}
}

func TestQueryCacheMaterializedViews(t *testing.T) {
	c := newTestCluster(t, 3)
	setupInventory(t, c)
	c.EnableQueryCache(8)

	const q = "SELECT item, qty FROM inv WHERE qty > 100"
	r1 := mustQuery(t, c, q)
	if r1.Cached {
		t.Fatal("first execution must miss")
	}
	r2 := mustQuery(t, c, q)
	if !r2.Cached {
		t.Fatal("second execution must hit the view cache")
	}
	if len(r2.Rows) != len(r1.Rows) {
		t.Fatalf("cached rows differ: %v vs %v", r2.Rows, r1.Rows)
	}

	// A publish advances the epoch, so the view is naturally invalidated:
	// the next query recomputes and reflects the new data.
	mustPublish(t, c, "inv", Rows{{"rivet", 500, 0.08}})
	r3 := mustQuery(t, c, q)
	if r3.Cached {
		t.Fatal("query after publish must recompute")
	}
	if len(r3.Rows) != len(r1.Rows)+1 {
		t.Fatalf("fresh result missing new row: %v", r3.Rows)
	}

	// Historical queries hit their own epoch's entry.
	old, err := c.QueryOpts(q, QueryOptions{Epoch: r1.Epoch})
	if err != nil {
		t.Fatal(err)
	}
	if !old.Cached || len(old.Rows) != len(r1.Rows) {
		t.Fatalf("historical view: cached=%v rows=%d", old.Cached, len(old.Rows))
	}
}

func TestQueryCacheEviction(t *testing.T) {
	c := newTestCluster(t, 2)
	setupInventory(t, c)
	c.EnableQueryCache(2)
	queries := []string{
		"SELECT item FROM inv",
		"SELECT qty FROM inv",
		"SELECT price FROM inv",
	}
	for _, q := range queries {
		mustQuery(t, c, q)
	}
	// The first query was evicted (capacity 2): re-running misses.
	r := mustQuery(t, c, queries[0])
	if r.Cached {
		t.Fatal("evicted entry served")
	}
	// The last one is still resident.
	r2 := mustQuery(t, c, queries[2])
	if !r2.Cached {
		t.Fatal("resident entry missed")
	}
}
