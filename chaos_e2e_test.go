package orchestra_test

// Chaos end-to-end test: three server processes sit behind fault-
// injecting TCP proxies (internal/netfault) and a smart client runs a
// closed-loop idempotent query workload against all of them while the
// test SIGKILLs one process, flaps and resets another's proxy, and
// SIGTERM-drains the third. The failover layer must absorb all of it:
// zero client-visible query failures, every answer correct, the drain
// losing no in-flight work, and the chaos visible in the client's
// retry/failover counters. This is the serving-layer complement to the
// storage crash test — the paper's unreliable-participant model (§V)
// applied to the query path instead of the durability path.

import (
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"orchestra"
	"orchestra/client"
	"orchestra/internal/netfault"
)

const (
	chaosChildEnv = "ORCHESTRA_CHAOS_CHILD"
	chaosAddrEnv  = "ORCHESTRA_CHAOS_ADDRFILE"
	chaosAdvEnv   = "ORCHESTRA_CHAOS_ADVERTISE"
	chaosPeersEnv = "ORCHESTRA_CHAOS_PEERS"
	chaosRowCount = 200
)

// TestChaosServerChild is the re-exec target, not a test: it serves one
// endpoint of a seeded in-memory cluster and drains gracefully on
// SIGTERM. Skipped in normal runs.
func TestChaosServerChild(t *testing.T) {
	if os.Getenv(chaosChildEnv) == "" {
		t.Skip("re-exec child only")
	}
	c, err := orchestra.NewCluster(3)
	if err != nil {
		t.Fatalf("child cluster: %v", err)
	}
	if err := c.CreateRelation(orchestra.NewSchema("chaos", "id:int", "shard:int").Key("id")); err != nil {
		t.Fatalf("child create: %v", err)
	}
	rows := make(orchestra.Rows, chaosRowCount)
	for i := range rows {
		rows[i] = orchestra.Row{int64(i), int64(i % 7)}
	}
	if _, err := c.Publish("chaos", rows); err != nil {
		t.Fatalf("child publish: %v", err)
	}
	var peers []string
	for _, p := range strings.Split(os.Getenv(chaosPeersEnv), ",") {
		if p != "" {
			peers = append(peers, p)
		}
	}
	srv, err := c.Serve("127.0.0.1:0", orchestra.ServeOptions{
		Advertise: os.Getenv(chaosAdvEnv),
		Peers:     peers,
	})
	if err != nil {
		t.Fatalf("child serve: %v", err)
	}
	// SIGTERM means drain: finish in-flight requests, then exit 0. A
	// non-zero exit tells the parent the drain severed live work.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "chaos child: SIGTERM, draining")
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "chaos child: drain failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "chaos child: drained clean")
		os.Exit(0)
	}()
	addrFile := os.Getenv(chaosAddrEnv)
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(srv.Addr()), 0o644); err != nil {
		t.Fatalf("child addr file: %v", err)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		t.Fatalf("child addr rename: %v", err)
	}
	select {} // serve until signalled
}

// chaosChild is one re-exec'd server process plus its exit watcher.
type chaosChild struct {
	cmd     *exec.Cmd
	backend string // real listen address behind the proxy
	logPath string // stderr capture (kept on test failure)
	logFile *os.File

	done    chan struct{} // closed once the process is reaped
	exitErr error
	exitAt  time.Time
}

// exited reports whether the child has been reaped, without blocking.
func (ch *chaosChild) exited() bool {
	select {
	case <-ch.done:
		return true
	default:
		return false
	}
}

// startChaosChild launches one serving child, advertising advertise and
// peers, and waits for its real listen address. A watcher goroutine
// reaps the process the moment it dies, so phases can both observe exit
// status and detect unexpected deaths with timestamps.
func startChaosChild(t *testing.T, idx int, addrFile, advertise, peers string) *chaosChild {
	t.Helper()
	os.Remove(addrFile)
	logf, err := os.CreateTemp("", fmt.Sprintf("chaos-child-%d-*.log", idx))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0], "-test.run=^TestChaosServerChild$")
	cmd.Env = append(os.Environ(),
		chaosChildEnv+"=1",
		chaosAddrEnv+"="+addrFile,
		chaosAdvEnv+"="+advertise,
		chaosPeersEnv+"="+peers)
	cmd.Stdout = logf
	cmd.Stderr = logf
	cmd.SysProcAttr = childSysProcAttr()
	if err := cmd.Start(); err != nil {
		t.Fatalf("start child: %v", err)
	}
	ch := &chaosChild{cmd: cmd, logPath: logf.Name(), logFile: logf, done: make(chan struct{})}
	go func() {
		ch.exitErr = cmd.Wait()
		ch.exitAt = time.Now()
		close(ch.done)
	}()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			ch.backend = string(b)
			return ch
		}
		if ch.exited() {
			t.Fatalf("child %d exited before serving: %v (log %s)", idx, ch.exitErr, ch.logPath)
		}
		time.Sleep(20 * time.Millisecond)
	}
	cmd.Process.Kill()
	t.Fatalf("child %d never published its address", idx)
	return nil
}

// reservePort grabs a free localhost port and releases it, so a proxy
// can bind it after the backend it fronts is known.
func reservePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

type chaosSample struct {
	dur time.Duration
	err error
}

func TestChaosFailover(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("POSIX signal semantics required")
	}
	if testing.Short() {
		t.Skip("re-exec e2e")
	}
	dir := t.TempDir()

	// Each child advertises its proxy address, so clients that discover
	// members through health checks keep dialing through the faults.
	proxyAddrs := make([]string, 3)
	for i := range proxyAddrs {
		proxyAddrs[i] = reservePort(t)
	}
	peers := strings.Join(proxyAddrs, ",")

	children := make([]*chaosChild, 3)
	proxies := make([]*netfault.Proxy, 3)
	for i := range children {
		addrFile := filepath.Join(dir, fmt.Sprintf("addr%d", i))
		ch := startChaosChild(t, i, addrFile, proxyAddrs[i], peers)
		children[i] = ch
		t.Cleanup(func() {
			ch.cmd.Process.Kill()
			<-ch.done
			ch.logFile.Close()
			if !t.Failed() {
				os.Remove(ch.logPath)
			}
		})
		p, err := netfault.New(proxyAddrs[i], ch.backend)
		if err != nil {
			t.Fatalf("proxy %d: %v", i, err)
		}
		proxies[i] = p
		t.Cleanup(func() { p.Close() })
	}

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	cl, err := client.Dial(proxyAddrs[0], client.Options{
		Endpoints:       proxyAddrs[1:],
		DialTimeout:     2 * time.Second,
		RefreshInterval: 500 * time.Millisecond,
		Retry: client.RetryPolicy{
			MaxAttempts: 8,
			BaseBackoff: 15 * time.Millisecond,
			MaxBackoff:  250 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	// Closed-loop idempotent workload: every query is a full count, so
	// any lost, doubled, or partial answer is detectable.
	const workers = 4
	var (
		mu      sync.Mutex
		samples []chaosSample
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				t0 := time.Now()
				res, err := cl.QueryOpts(ctx, "SELECT COUNT(*) FROM chaos", client.QueryOptions{})
				d := time.Since(t0)
				if err == nil {
					if len(res.Rows) != 1 || countValue(res.Rows[0][0]) != chaosRowCount {
						err = fmt.Errorf("wrong answer: %v", res.Rows)
					}
				}
				mu.Lock()
				samples = append(samples, chaosSample{dur: d, err: err})
				mu.Unlock()
			}
		}()
	}
	successes := func() int {
		mu.Lock()
		defer mu.Unlock()
		n := 0
		for _, s := range samples {
			if s.err == nil {
				n++
			}
		}
		return n
	}
	// diagnose captures the live state of a stall: which children are
	// alive (SIGQUIT dumps the live ones into their log files), the
	// socket table, and every parent goroutine.
	diagnose := func() {
		for i, ch := range children {
			if ch.exited() {
				t.Logf("child %d exited at %s: %v (log %s)",
					i, ch.exitAt.Format("15:04:05.000"), ch.exitErr, ch.logPath)
			} else {
				t.Logf("child %d alive (pid %d, log %s) — sending SIGQUIT",
					i, ch.cmd.Process.Pid, ch.logPath)
				ch.cmd.Process.Signal(syscall.SIGQUIT)
			}
		}
		time.Sleep(time.Second) // let the dumps flush
		if out, err := exec.Command("ss", "-tnp").CombinedOutput(); err == nil {
			t.Logf("ss -tnp:\n%s", out)
		}
		buf := make([]byte, 4<<20)
		buf = buf[:runtime.Stack(buf, true)]
		stackPath := filepath.Join(os.TempDir(), "chaos-parent-stacks.txt")
		os.WriteFile(stackPath, buf, 0o644)
		t.Logf("parent goroutine dump: %s", stackPath)
	}
	waitSuccesses := func(n int) {
		deadline := time.Now().Add(30 * time.Second)
		for successes() < n {
			if time.Now().After(deadline) {
				diagnose()
				close(stop)
				// No wg.Wait() here: a wedged worker would hold the
				// failure message hostage until its query context dies.
				t.Fatalf("workload stalled at %d successes waiting for %d", successes(), n)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Phase 1: warm up, then crash-stop child 0 (SIGKILL, proxy stays up
	// fronting a dead backend — dials are accepted then dropped).
	waitSuccesses(30)
	base := successes()
	if err := children[0].cmd.Process.Kill(); err != nil {
		t.Fatalf("kill child 0: %v", err)
	}
	<-children[0].done
	t.Logf("killed child 0 after %d successes", base)

	// Phase 2: flap child 1's proxy — reset every live connection (mid-
	// call transport errors on pooled conns) and refuse new dials, then
	// come back on the same address.
	waitSuccesses(base + 20)
	proxies[1].Pause()
	proxies[1].ResetAll()
	time.Sleep(400 * time.Millisecond)
	if err := proxies[1].Resume(); err != nil {
		t.Fatalf("resume proxy 1: %v", err)
	}
	t.Logf("flapped proxy 1 (stats %+v)", proxies[1].Stats())

	// Phase 3: drain child 2 with SIGTERM mid-workload. Exit status 0
	// certifies its Shutdown completed without severing in-flight work.
	waitSuccesses(successes() + 20)
	if children[2].exited() {
		t.Fatalf("child 2 died before the drain phase: %v", children[2].exitErr)
	}
	if err := children[2].cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("sigterm child 2: %v", err)
	}
	<-children[2].done
	if children[2].exitErr != nil {
		t.Errorf("child 2 drain reported lost in-flight work: %v", children[2].exitErr)
	}
	t.Logf("drained child 2 at %d successes", successes())

	// Phase 4: only child 1 remains; the workload must still make
	// progress before we stop.
	waitSuccesses(successes() + 20)
	close(stop)
	wg.Wait()

	mu.Lock()
	final := append([]chaosSample(nil), samples...)
	mu.Unlock()

	var failed []error
	durs := make([]time.Duration, 0, len(final))
	for _, s := range final {
		if s.err != nil {
			failed = append(failed, s.err)
			continue
		}
		durs = append(durs, s.dur)
	}
	if len(failed) > 0 {
		t.Errorf("%d of %d idempotent queries failed under chaos; first: %v",
			len(failed), len(final), failed[0])
	}
	if len(durs) < 60 {
		t.Fatalf("only %d successful queries — not enough signal", len(durs))
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	p50 := durs[len(durs)/2]
	p99 := durs[len(durs)*99/100]
	t.Logf("%d queries, 0 expected failures: p50=%v p99=%v", len(durs), p50, p99)
	// Generous bound: retries back off at most ~250ms a hop with 8
	// attempts; anything beyond this means a stall, not a retry.
	if p99 > 10*time.Second {
		t.Errorf("p99 %v exceeds the chaos bound", p99)
	}

	// The chaos must be visible in the client's own telemetry.
	ctr := cl.Counters()
	t.Logf("client counters: %+v", ctr)
	if ctr.Retries == 0 && ctr.DialErrors == 0 {
		t.Errorf("no retries or dial errors recorded under chaos: %+v", ctr)
	}
	if ctr.Failovers == 0 && ctr.DialErrors == 0 {
		t.Errorf("no failovers recorded under chaos: %+v", ctr)
	}
	if ctr.Refreshes == 0 {
		t.Errorf("membership refresh never ran: %+v", ctr)
	}
}
