package orchestra

// One testing.B benchmark per figure of the paper's evaluation (§VI).
// Each benchmark exercises the figure's characteristic configuration at a
// laptop-scale single point; the full sweeps that regenerate the figures'
// series are run by cmd/orchestra-bench (see DESIGN.md §3).

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"orchestra/internal/ring"
	"orchestra/internal/stbench"
	"orchestra/internal/tpch"
)

// benchClusters caches loaded clusters across benchmarks in one process.
var benchClusters struct {
	mu sync.Mutex
	m  map[string]*Cluster
}

func benchCluster(b *testing.B, key string, nodes int, load func(*Cluster) error, opts ...Option) *Cluster {
	b.Helper()
	benchClusters.mu.Lock()
	defer benchClusters.mu.Unlock()
	if benchClusters.m == nil {
		benchClusters.m = make(map[string]*Cluster)
	}
	if c, ok := benchClusters.m[key]; ok {
		return c
	}
	c, err := NewCluster(nodes, opts...)
	if err != nil {
		b.Fatalf("NewCluster: %v", err)
	}
	if err := load(c); err != nil {
		b.Fatalf("load: %v", err)
	}
	benchClusters.m[key] = c
	return c
}

func loadSTB(tuples int) func(*Cluster) error {
	return func(c *Cluster) error {
		data := stbench.Generate(stbench.Config{Tuples: tuples, Seed: 42})
		for _, s := range stbench.Schemas() {
			if err := c.CreateRelationSchema(s); err != nil {
				return err
			}
			if _, err := c.PublishTyped(0, s.Relation, data[s.Relation]); err != nil {
				return err
			}
		}
		return nil
	}
}

func loadTPC(sf float64) func(*Cluster) error {
	return func(c *Cluster) error {
		data := tpch.Generate(sf, 42)
		for _, s := range tpch.Schemas() {
			if err := c.CreateRelationSchema(s); err != nil {
				return err
			}
			if _, err := c.PublishTyped(0, s.Relation, data[s.Relation]); err != nil {
				return err
			}
		}
		return nil
	}
}

// benchQuery measures repeated executions of one query, reporting network
// traffic per op.
func benchQuery(b *testing.B, c *Cluster, sqlText string) {
	b.Helper()
	if _, err := c.Query(sqlText); err != nil { // warm caches, as in §VI-A
		b.Fatalf("warm: %v", err)
	}
	c.ResetNetworkStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Query(sqlText); err != nil {
			b.Fatalf("query: %v", err)
		}
	}
	b.StopTimer()
	st := c.NetworkStats()
	b.ReportMetric(float64(st.TotalBytes)/float64(b.N)/(1<<20), "MB/op")
}

// --- Fig 2: range allocation schemes ---

func BenchmarkFig02_RangeAllocation(b *testing.B) {
	for _, scheme := range []ring.Scheme{ring.Balanced, ring.PastryStyle} {
		b.Run(scheme.String(), func(b *testing.B) {
			ids := make([]ring.NodeID, 50)
			for i := range ids {
				ids[i] = ring.NodeID(fmt.Sprintf("node-%03d", i))
			}
			var ratio float64
			for i := 0; i < b.N; i++ {
				t, err := ring.New(ids, scheme, 3)
				if err != nil {
					b.Fatal(err)
				}
				ratio = t.Balance()
			}
			b.ReportMetric(ratio, "max/min-share")
		})
	}
}

// --- Figs 7-9: STBenchmark scaling over nodes (8-node point) ---

func BenchmarkFig07_STBenchScaleNodes(b *testing.B) {
	c := benchCluster(b, "stb8", 8, loadSTB(2000))
	for _, sc := range stbench.Scenarios() {
		b.Run(sc.Name, func(b *testing.B) { benchQuery(b, c, sc.SQL) })
	}
}

func BenchmarkFig08_STBenchTrafficNodes(b *testing.B) {
	c := benchCluster(b, "stb8", 8, loadSTB(2000))
	b.Run("Join", func(b *testing.B) { benchQuery(b, c, stbench.Scenarios()[2].SQL) })
}

func BenchmarkFig09_STBenchPerNodeTraffic(b *testing.B) {
	c := benchCluster(b, "stb8", 8, loadSTB(2000))
	sc := stbench.Scenarios()[0] // Copy: the per-node traffic extreme
	if _, err := c.Query(sc.SQL); err != nil {
		b.Fatal(err)
	}
	c.ResetNetworkStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Query(sc.SQL); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := c.NetworkStats()
	var maxNode int64
	for _, v := range st.SentBytes {
		if v > maxNode {
			maxNode = v
		}
	}
	b.ReportMetric(float64(maxNode)/float64(b.N)/(1<<20), "maxNodeMB/op")
}

// --- Figs 10-12: TPC-H scaling over nodes (8-node point) ---

func BenchmarkFig10_TPCHScaleNodes(b *testing.B) {
	c := benchCluster(b, "tpch8", 8, loadTPC(0.005))
	for _, q := range tpch.Queries() {
		b.Run(q.Name, func(b *testing.B) { benchQuery(b, c, q.SQL) })
	}
}

func BenchmarkFig11_TPCHTrafficNodes(b *testing.B) {
	c := benchCluster(b, "tpch8", 8, loadTPC(0.005))
	b.Run("Q5", func(b *testing.B) { benchQuery(b, c, tpch.QueryByName("Q5").SQL) })
}

func BenchmarkFig12_TPCHPerNodeTraffic(b *testing.B) {
	c := benchCluster(b, "tpch8", 8, loadTPC(0.005))
	b.Run("Q10", func(b *testing.B) { benchQuery(b, c, tpch.QueryByName("Q10").SQL) })
}

// --- Figs 13-16: data-size scaling (double-size point) ---

func BenchmarkFig13_STBenchScaleData(b *testing.B) {
	c := benchCluster(b, "stb8x2", 8, loadSTB(4000))
	for _, sc := range stbench.Scenarios() {
		b.Run(sc.Name, func(b *testing.B) { benchQuery(b, c, sc.SQL) })
	}
}

func BenchmarkFig14_TPCHScaleData(b *testing.B) {
	c := benchCluster(b, "tpch8x2", 8, loadTPC(0.01))
	for _, q := range tpch.Queries() {
		b.Run(q.Name, func(b *testing.B) { benchQuery(b, c, q.SQL) })
	}
}

func BenchmarkFig15_STBenchTrafficData(b *testing.B) {
	c := benchCluster(b, "stb8x2", 8, loadSTB(4000))
	b.Run("Copy", func(b *testing.B) { benchQuery(b, c, stbench.Scenarios()[0].SQL) })
}

func BenchmarkFig16_TPCHTrafficData(b *testing.B) {
	c := benchCluster(b, "tpch8x2", 8, loadTPC(0.01))
	b.Run("Q3", func(b *testing.B) { benchQuery(b, c, tpch.QueryByName("Q3").SQL) })
}

// --- Fig 17 and the §VI-C latency note ---

func BenchmarkFig17_TPCHBandwidth(b *testing.B) {
	// 400 KB/s per node: the paper's "acceptable" knee point.
	c := benchCluster(b, "tpch-bw400", 4, loadTPC(0.002), WithBandwidth(400<<10))
	b.Run("Q3", func(b *testing.B) { benchQuery(b, c, tpch.QueryByName("Q3").SQL) })
	b.Run("Q6", func(b *testing.B) { benchQuery(b, c, tpch.QueryByName("Q6").SQL) })
}

func BenchmarkLatency_TPCH(b *testing.B) {
	c := benchCluster(b, "tpch-lat", 4, loadTPC(0.002), WithLatency(20*time.Millisecond))
	b.Run("Q1", func(b *testing.B) { benchQuery(b, c, tpch.QueryByName("Q1").SQL) })
}

// --- Figs 18-20: larger node counts ---

func BenchmarkFig18_EC2ScaleNodes(b *testing.B) {
	c := benchCluster(b, "tpch25", 25, loadTPC(0.005))
	for _, q := range tpch.Queries() {
		b.Run(q.Name, func(b *testing.B) { benchQuery(b, c, q.SQL) })
	}
}

func BenchmarkFig19_EC2Traffic(b *testing.B) {
	c := benchCluster(b, "tpch25", 25, loadTPC(0.005))
	b.Run("Q5", func(b *testing.B) { benchQuery(b, c, tpch.QueryByName("Q5").SQL) })
}

func BenchmarkFig20_EC2PerNodeTraffic(b *testing.B) {
	c := benchCluster(b, "tpch25", 25, loadTPC(0.005))
	b.Run("Q1", func(b *testing.B) { benchQuery(b, c, tpch.QueryByName("Q1").SQL) })
}

// --- Fig 21: failure recovery strategies ---

func benchRecovery(b *testing.B, mode RecoveryMode) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c, err := NewCluster(6)
		if err != nil {
			b.Fatal(err)
		}
		if err := loadTPC(0.002)(c); err != nil {
			b.Fatal(err)
		}
		q := tpch.QueryByName("Q10").SQL
		if _, err := c.Query(q); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		go func() {
			time.Sleep(time.Millisecond)
			c.Kill(4)
		}()
		if _, err := c.QueryOpts(q, QueryOptions{Recovery: mode}); err != nil {
			b.Fatalf("recovery query: %v", err)
		}
		b.StopTimer()
		c.Shutdown()
		b.StartTimer()
	}
}

func BenchmarkFig21_FailureRecovery(b *testing.B) {
	b.Run("Restart", func(b *testing.B) { benchRecovery(b, RecoverRestart) })
	b.Run("Incremental", func(b *testing.B) { benchRecovery(b, RecoverIncremental) })
}

// --- §VI-E: overhead of recovery support ---

func BenchmarkRecoveryOverhead(b *testing.B) {
	c := benchCluster(b, "tpch8", 8, loadTPC(0.005))
	q := tpch.QueryByName("Q10").SQL
	if _, err := c.Query(q); err != nil {
		b.Fatal(err)
	}
	b.Run("ProvenanceOff", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c.QueryOpts(q, QueryOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ProvenanceOn", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c.QueryOpts(q, QueryOptions{Provenance: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- §V-A: failure detection ---

func BenchmarkFailureDetection(b *testing.B) {
	b.Run("ConnectionDrop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			c, err := NewCluster(4)
			if err != nil {
				b.Fatal(err)
			}
			ch := make(chan struct{}, 1)
			c.OnNodeDown(0, func(string) {
				select {
				case ch <- struct{}{}:
				default:
				}
			})
			b.StartTimer()
			c.Kill(2)
			<-ch
			b.StopTimer()
			c.Shutdown()
			b.StartTimer()
		}
	})
	b.Run("PingHungNode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			c, err := NewCluster(4)
			if err != nil {
				b.Fatal(err)
			}
			c.StartPingers(5*time.Millisecond, 20*time.Millisecond)
			ch := make(chan struct{}, 1)
			c.OnNodeDown(0, func(string) {
				select {
				case ch <- struct{}{}:
				default:
				}
			})
			b.StartTimer()
			c.Hang(2)
			<-ch
			b.StopTimer()
			c.Shutdown()
			b.StartTimer()
		}
	})
}

// --- §VIII future-work ablation: capacity-weighted range allocation ---

// BenchmarkAblation_WeightedAllocation compares a uniform cluster against a
// capacity-weighted one on a heterogeneous-node scenario: one node is 4x
// slower (modeled by giving it 1/4 the capacity share in the weighted
// variant). The reported metric is the straggler's share of scan work —
// lower is better for the slow node.
func BenchmarkAblation_WeightedAllocation(b *testing.B) {
	load := func(c *Cluster) error {
		if err := c.CreateRelation(NewSchema("load", "k:int", "v:int").Key("k")); err != nil {
			return err
		}
		rows := make(Rows, 4000)
		for i := range rows {
			rows[i] = Row{i, i}
		}
		_, err := c.Publish("load", rows)
		return err
	}
	run := func(b *testing.B, c *Cluster) {
		var slowShare float64
		for i := 0; i < b.N; i++ {
			res, err := c.Query("SELECT k, v FROM load")
			if err != nil {
				b.Fatal(err)
			}
			total := res.Stats.Scanned
			slow := res.PerNode[c.NodeID(0)].Scanned
			slowShare = float64(slow) / float64(total)
		}
		b.ReportMetric(slowShare*100, "slowNode%")
	}
	b.Run("Uniform", func(b *testing.B) {
		c := benchCluster(b, "abl-uniform", 5, load)
		run(b, c)
	})
	b.Run("Weighted", func(b *testing.B) {
		// Node 0 is the slow machine: weight 1 vs 4 for the others.
		c := benchCluster(b, "abl-weighted", 0, load, WithCapacities(1, 4, 4, 4, 4))
		run(b, c)
	})
}
