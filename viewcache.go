package orchestra

import (
	"container/list"
	"sync"

	"orchestra/internal/engine"
	"orchestra/internal/obs"
	"orchestra/internal/tuple"
)

// viewCache implements the materialized-view extension the paper lists as
// future work (§VIII): "make use of materialized views, perhaps arising
// from the cached results of previous queries". Because storage is fully
// versioned and a query executes against an immutable epoch snapshot, a
// result cached under (query text, epoch) can never go stale — the
// "cost of freshening" the paper worries about reduces to comparing the
// current epoch, and any publish naturally invalidates by advancing it.
type viewCache struct {
	mu  sync.Mutex
	max int
	lru *list.List // front = most recent; values are *viewEntry
	m   map[viewKey]*list.Element

	hits      uint64
	misses    uint64
	evictions uint64
}

type viewKey struct {
	sql   string
	epoch Epoch
}

type viewEntry struct {
	key  viewKey
	rows []tuple.Row
	cols []string
	plan string
}

func newViewCache(max int) *viewCache {
	return &viewCache{max: max, lru: list.New(), m: make(map[viewKey]*list.Element)}
}

func (v *viewCache) get(k viewKey) (*viewEntry, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	el, ok := v.m[k]
	if !ok {
		v.misses++
		return nil, false
	}
	v.hits++
	v.lru.MoveToFront(el)
	return el.Value.(*viewEntry), true
}

func (v *viewCache) put(e *viewEntry) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if el, ok := v.m[e.key]; ok {
		v.lru.MoveToFront(el)
		el.Value = e
		return
	}
	v.m[e.key] = v.lru.PushFront(e)
	for v.lru.Len() > v.max {
		old := v.lru.Back()
		v.lru.Remove(old)
		delete(v.m, old.Value.(*viewEntry).key)
		v.evictions++
	}
}

func (v *viewCache) stats() engine.CacheStats {
	v.mu.Lock()
	defer v.mu.Unlock()
	return engine.CacheStats{Hits: v.hits, Misses: v.misses, Evictions: v.evictions, Size: v.lru.Len(), Max: v.max}
}

// CacheStats snapshots the cluster's cache counters by name: "views"
// (the shared materialized-view cache, when enabled) and "pages" (the
// node's decoded-index-page LRU).
func (c *Cluster) CacheStats(node int) map[string]CacheStats {
	out := make(map[string]CacheStats, 2)
	c.mu.Lock()
	views := c.views
	c.mu.Unlock()
	if views != nil {
		out["views"] = views.stats()
	}
	if node >= 0 && node < len(c.engines) {
		out["pages"] = c.engines[node].PageCacheStats()
	}
	return out
}

// EnableQueryCache turns on materialized-view caching of query results,
// keeping up to maxEntries (query, epoch) result sets. Hits are reported
// via Result.Cached. Safe to call once, before issuing queries.
func (c *Cluster) EnableQueryCache(maxEntries int) {
	if maxEntries <= 0 {
		maxEntries = 64
	}
	c.mu.Lock()
	c.views = newViewCache(maxEntries)
	c.mu.Unlock()
}

// viewLookup resolves the effective epoch and consults the cache. The
// cache is epoch-keyed and shared across serving nodes: a query pinned to
// an epoch answers identically from every initiator (results are snapshot
// deterministic), so any node's endpoint may both hit and fill it. An
// unpinned query resolves the epoch at its own serving node — different
// nodes' gossip views may briefly differ, and each must serve what it
// would have computed.
func (c *Cluster) viewLookup(src string, opts QueryOptions) (*Result, viewKey, *viewCache) {
	c.mu.Lock()
	views := c.views
	c.mu.Unlock()
	if views == nil || opts.Provenance || opts.Node < 0 || opts.Node >= len(c.engines) {
		return nil, viewKey{}, nil
	}
	epoch := opts.Epoch
	if epoch == 0 {
		epoch = c.currentEpochAt(opts.Node)
	}
	k := viewKey{sql: src, epoch: epoch}
	if e, ok := views.get(k); ok {
		rows := make([]tuple.Row, len(e.rows))
		copy(rows, e.rows)
		res := &Result{
			Columns: e.cols,
			Rows:    rows,
			Epoch:   k.epoch,
			Phases:  1,
			Plan:    e.plan,
			Cached:  true,
			PerNode: map[string]engine.NodeStats{},
		}
		if opts.Trace {
			// A hit never reaches the engine; its whole trace is the
			// cache lookup.
			tr := obs.NewTrace(obs.NewTraceID(), "query", c.initiatorID(opts.Node))
			root := tr.Root()
			root.CacheHits = 1
			root.Rows = int64(len(rows))
			tr.Finish()
			res.TraceID = tr.ID.String()
			res.Trace = root
		}
		return res, k, views
	}
	return nil, k, views
}

// viewStore records a completed query in the cache.
func (c *Cluster) viewStore(k viewKey, views *viewCache, res *Result) {
	if views == nil {
		return
	}
	views.put(&viewEntry{key: k, rows: res.Rows, cols: res.Columns, plan: res.Plan})
}
