//go:build !linux

package orchestra_test

import "syscall"

func childSysProcAttr() *syscall.SysProcAttr { return nil }
