package orchestra

import (
	"fmt"
	"path/filepath"

	"orchestra/internal/kvstore"
	"orchestra/internal/obs"
	"orchestra/internal/ring"
	"orchestra/internal/tuple"
	"orchestra/internal/vstore"
)

// SyncMode selects when a durable cluster fsyncs its write-ahead logs.
type SyncMode = kvstore.SyncMode

// Sync policies for WithSyncMode.
const (
	// SyncAlways fsyncs before acknowledging every write; concurrent
	// publishers share syncs via group commit. Acknowledged publishes
	// survive a crash (kill -9, power loss).
	SyncAlways = kvstore.SyncAlways
	// SyncInterval fsyncs on a short timer; a crash can lose the last
	// interval's acknowledged writes but never corrupts the store.
	SyncInterval = kvstore.SyncInterval
	// SyncNever leaves syncing to the OS page cache: durable across
	// process crashes, not across power loss.
	SyncNever = kvstore.SyncNever
)

// WithDataDir makes every node's local store durable: each node keeps a
// write-ahead log and periodic snapshots under dir/<node-id>/, and
// NewCluster recovers catalogs, pages, tuples, and the published epoch
// from disk when the directory already holds state. Without this option
// stores are volatile in-memory structures (the default, used by the
// simulated experiments).
func WithDataDir(dir string) Option { return func(c *config) { c.dataDir = dir } }

// WithSyncMode sets the fsync policy for durable stores (default
// SyncAlways). Only meaningful together with WithDataDir.
func WithSyncMode(m SyncMode) Option { return func(c *config) { c.syncMode = m } }

// WithCheckpointBytes sets the WAL size at which each node snapshots its
// store and truncates the log (default 64 MiB; negative disables
// automatic checkpoints). Only meaningful together with WithDataDir.
func WithCheckpointBytes(n int64) Option { return func(c *config) { c.checkpointBytes = n } }

// openStoreFunc builds the cluster.Config.OpenStore hook for a durable
// cluster: one kvstore directory and one metrics registry per node.
func (c *Cluster) openStoreFunc(cfg *config) func(id ring.NodeID) (*kvstore.Store, error) {
	return func(id ring.NodeID) (*kvstore.Store, error) {
		reg := obs.NewRegistry()
		s, err := kvstore.Open(filepath.Join(cfg.dataDir, string(id)), kvstore.Options{
			Sync:            cfg.syncMode,
			Registry:        reg,
			CheckpointBytes: cfg.checkpointBytes,
			RetainBytes:     cfg.retainBytes,
		})
		if err != nil {
			return nil, err
		}
		c.mu.Lock()
		c.registries[string(id)] = reg
		c.mu.Unlock()
		return s, nil
	}
}

// recoverCatalogs repopulates the cluster's schema cache and row-count
// statistics from the durable stores: every relation whose catalog
// record survived on any node is registered again, so queries and
// publishes work immediately after a restart and the optimizer costs
// plans from the pre-crash cardinalities instead of zeros.
func (c *Cluster) recoverCatalogs() error {
	var firstErr error
	recovered := make(map[string]*vstore.Catalog)
	for _, n := range c.local.Nodes() {
		n.Store().ScanPrefix([]byte("c/"), func(k, v []byte) bool {
			cat, err := vstore.DecodeCatalog(v)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("orchestra: recover catalog %q: %w", k, err)
				}
				return true
			}
			// Replicas may hold the catalog at different epochs; the
			// newest one carries the freshest row-count statistic.
			if prev, ok := recovered[cat.Schema.Relation]; !ok || latestEpoch(cat) > latestEpoch(prev) {
				recovered[cat.Schema.Relation] = cat
			}
			return true
		})
	}
	if firstErr != nil {
		return firstErr
	}
	c.mu.Lock()
	for name, cat := range recovered {
		c.schemas[name] = cat.Schema
		c.rows[name] = cat.Rows
	}
	c.mu.Unlock()
	return nil
}

// latestEpoch returns the newest epoch a catalog record names, or 0 for
// a record with no published epochs yet.
func latestEpoch(cat *vstore.Catalog) tuple.Epoch {
	if len(cat.Epochs) == 0 {
		return 0
	}
	return cat.Epochs[len(cat.Epochs)-1]
}

// Checkpoint snapshots every node's store and truncates its WAL. It is a
// no-op on volatile clusters. Use it to bound restart (replay) time at a
// quiet moment instead of waiting for the size-triggered checkpoint.
func (c *Cluster) Checkpoint() error {
	for i, n := range c.local.Nodes() {
		if err := n.Store().Checkpoint(); err != nil {
			return fmt.Errorf("orchestra: checkpoint node %d: %w", i, err)
		}
	}
	return nil
}

// DurabilityStats reports node i's recovery/WAL/fsync counters. ok is
// false when the node's store is volatile (no WithDataDir).
func (c *Cluster) DurabilityStats(i int) (kvstore.DurabilityStats, bool) {
	return c.local.Node(i).Store().DurabilityStats()
}

// nodeRegistry returns node i's metrics registry (nil for volatile
// clusters); served endpoints export it at /metrics.
func (c *Cluster) nodeRegistry(i int) *obs.Registry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.registries[string(c.local.Node(i).ID())]
}
