package orchestra

import (
	"fmt"
	"testing"

	"orchestra/internal/tuple"
)

func newScanCluster(t *testing.T, rows int) *Cluster {
	t.Helper()
	c, err := NewCluster(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	if err := c.CreateRelation(NewSchema("bq", "k:string", "grp:int", "v:int").Key("k")); err != nil {
		t.Fatal(err)
	}
	batch := make([]tuple.Row, 0, rows)
	for i := 0; i < rows; i++ {
		batch = append(batch, tuple.Row{tuple.S(fmt.Sprintf("k%05d", i)), tuple.I(int64(i % 7)), tuple.I(int64(i))})
	}
	if _, err := c.PublishTyped(0, "bq", batch); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestQueryBatchesColumnar checks the serving hand-off: a non-provenance
// scan emits its whole answer through the columnar callback — the row
// callback must never fire — and the content matches the buffered Query.
func TestQueryBatchesColumnar(t *testing.T) {
	c := newScanCluster(t, 500)
	q := "SELECT k, grp, v FROM bq WHERE v >= 100 AND v < 400"
	want, err := c.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) != 300 {
		t.Fatalf("reference query: %d rows", len(want.Rows))
	}

	var gotRows []tuple.Row
	var rowEmits, colEmits int
	var meta *Result
	res, err := c.QueryBatches(q, QueryOptions{},
		func(m *Result) error { meta = m; return nil },
		func(rows []tuple.Row) error { rowEmits++; return nil },
		func(b *tuple.Batch) error {
			colEmits++
			gotRows = append(gotRows, b.Rows()...)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if meta == nil || meta.Rows != nil {
		t.Fatalf("start meta: %+v", meta)
	}
	if rowEmits != 0 {
		t.Fatalf("row callback fired %d times on the columnar path", rowEmits)
	}
	if colEmits == 0 {
		t.Fatal("columnar callback never fired")
	}
	if res.Epoch != want.Epoch || len(res.Columns) != 3 {
		t.Fatalf("meta: %+v", res)
	}
	if len(gotRows) != len(want.Rows) {
		t.Fatalf("columnar emitted %d rows, query answered %d", len(gotRows), len(want.Rows))
	}
	seen := make(map[string]bool, len(want.Rows))
	for _, r := range want.Rows {
		seen[fmt.Sprint(r)] = true
	}
	for _, r := range gotRows {
		if !seen[fmt.Sprint(r)] {
			t.Fatalf("columnar row %v not in reference answer", r)
		}
	}
}

// TestQueryBatchesProvenanceFallsBackToRows: provenance-mode collections
// are row-granular, so the answer must arrive through the row callback.
func TestQueryBatchesProvenanceFallsBackToRows(t *testing.T) {
	c := newScanCluster(t, 200)
	q := "SELECT k, v FROM bq WHERE v < 50"
	var rowCount, colEmits int
	_, err := c.QueryBatches(q, QueryOptions{Provenance: true},
		func(*Result) error { return nil },
		func(rows []tuple.Row) error { rowCount += len(rows); return nil },
		func(b *tuple.Batch) error { colEmits++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if colEmits != 0 {
		t.Fatalf("columnar callback fired %d times in provenance mode", colEmits)
	}
	if rowCount != 50 {
		t.Fatalf("row callback delivered %d rows, want 50", rowCount)
	}
}

// TestQueryLimitPushdown: a limit-only final pipeline must still answer
// exactly N valid rows through both the buffered and columnar paths (the
// early-completion optimization must never change the answer size).
func TestQueryLimitPushdown(t *testing.T) {
	c := newScanCluster(t, 2000)
	q := "SELECT k, grp, v FROM bq WHERE v >= 0 LIMIT 25"
	res, err := c.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 25 {
		t.Fatalf("LIMIT 25 answered %d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		if len(r) != 3 || r[2].I64 < 0 || r[2].I64 >= 2000 {
			t.Fatalf("row out of domain: %v", r)
		}
	}
	var got int
	if _, err := c.QueryBatches(q, QueryOptions{},
		func(*Result) error { return nil },
		func(rows []tuple.Row) error { got += len(rows); return nil },
		func(b *tuple.Batch) error { got += b.N; return nil }); err != nil {
		t.Fatal(err)
	}
	if got != 25 {
		t.Fatalf("columnar LIMIT 25 emitted %d rows", got)
	}
}

// TestQueryBatchesCacheHitEmitsRows: view-cache hits are stored as rows
// and must replay through the row callback.
func TestQueryBatchesCacheHitEmitsRows(t *testing.T) {
	c := newScanCluster(t, 100)
	c.EnableQueryCache(16)
	q := "SELECT k, v FROM bq WHERE v < 40"
	start := func(*Result) error { return nil }
	var rowsA, rowsB, colsA, colsB int
	if _, err := c.QueryBatches(q, QueryOptions{},
		start,
		func(rows []tuple.Row) error { rowsA += len(rows); return nil },
		func(b *tuple.Batch) error { colsA += b.N; return nil }); err != nil {
		t.Fatal(err)
	}
	res, err := c.QueryBatches(q, QueryOptions{},
		start,
		func(rows []tuple.Row) error { rowsB += len(rows); return nil },
		func(b *tuple.Batch) error { colsB += b.N; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Fatal("second query not served from cache")
	}
	if rowsA+colsA != 40 || rowsB+colsB != 40 {
		t.Fatalf("first run %d+%d rows, cached run %d+%d rows, want 40 each", rowsA, colsA, rowsB, colsB)
	}
	if rowsB != 40 {
		t.Fatalf("cache hit emitted %d rows via the row callback, want 40", rowsB)
	}
}
