// Package orchestra is the public face of this repository: a reliable,
// replicated, versioned storage and distributed query processing system
// for collaborative data sharing, reproducing Taylor & Ives, "Reliable
// Storage and Querying for Collaborative Data Sharing Systems" (ICDE 2010).
//
// A Cluster is a set of storage/query nodes connected by a simulated
// message network (real byte-level encoding, optional latency and
// bandwidth shaping, failure injection). Relations are horizontally
// partitioned by key hash, replicated, and fully versioned: every Publish
// advances a global epoch, and queries run against a consistent snapshot
// of any epoch. SQL queries are optimized into distributed plans and
// executed with exactly-once semantics even when nodes fail mid-query
// (restart or incremental recomputation).
//
// Quickstart:
//
//	c, _ := orchestra.NewCluster(4)
//	defer c.Shutdown()
//	c.CreateRelation(orchestra.NewSchema("inv", "item:string", "qty:int").Key("item"))
//	c.Publish("inv", orchestra.Rows{{"bolt", 90}, {"nut", 120}})
//	res, _ := c.Query("SELECT item, qty FROM inv WHERE qty > 100")
package orchestra

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"orchestra/internal/cluster"
	"orchestra/internal/engine"
	"orchestra/internal/kvstore"
	"orchestra/internal/obs"
	"orchestra/internal/optimizer"
	"orchestra/internal/ring"
	"orchestra/internal/transport"
	"orchestra/internal/tuple"
	"orchestra/internal/vstore"
)

// Epoch is the global logical timestamp; it advances after each Publish.
type Epoch = tuple.Epoch

// Row is one relational tuple as Go values (int64/int, float64, string).
type Row []any

// Rows is a batch of tuples.
type Rows []Row

// Option configures a Cluster.
type Option func(*config)

type config struct {
	replication     int
	latency         time.Duration
	bandwidth       int64
	scheme          ring.Scheme
	capacities      []float64
	nodeCfg         cluster.Config
	dataDir         string
	syncMode        kvstore.SyncMode
	checkpointBytes int64
	retainBytes     int64
	repairInterval  time.Duration
}

// WithReplication sets the total copy count r kept of each data item
// (default 3, as in the paper's Pastry-style replica placement).
func WithReplication(r int) Option { return func(c *config) { c.replication = r } }

// WithLatency injects a one-way delivery delay on every inter-node message
// (the paper's NetEm substitute, §VI-C).
func WithLatency(d time.Duration) Option { return func(c *config) { c.latency = d } }

// WithBandwidth caps each node's outbound bytes/second (the paper's HTB
// substitute, §VI-C). 0 means unlimited.
func WithBandwidth(bps int64) Option { return func(c *config) { c.bandwidth = bps } }

// WithPastryAllocation switches range allocation from the default balanced
// scheme (Fig 2b) to Pastry-style nearest-hash allocation (Fig 2a).
func WithPastryAllocation() Option {
	return func(c *config) { c.scheme = ring.PastryStyle }
}

// WithCapacities sizes each node's key-space share proportionally to its
// capacity — the automatic load-balancing extension of the paper's future
// work (§VIII). The slice length determines the cluster size and overrides
// the n argument of NewCluster.
func WithCapacities(capacities ...float64) Option {
	return func(c *config) { c.capacities = capacities }
}

// Cluster is a local ORCHESTRA deployment: n storage/query nodes over a
// simulated network, each pairing a versioned store with a query engine.
type Cluster struct {
	local   *cluster.Local
	engines []*engine.Engine

	mu         sync.Mutex
	schemas    map[string]*tuple.Schema
	rows       map[string]int64         // published row counts, for optimizer stats
	views      *viewCache               // nil unless EnableQueryCache was called
	registries map[string]*obs.Registry // per-node durability metrics, by node ID
	served     map[*Server]string       // live served endpoints, by advertised address

	// repairInterval is the anti-entropy period (0 = off); restarted
	// nodes resume the loop with it.
	repairInterval time.Duration
}

// NewCluster starts n nodes with balanced range allocation and replication
// factor 3 (override via options).
func NewCluster(n int, opts ...Option) (*Cluster, error) {
	cfg := config{replication: 3, scheme: ring.Balanced}
	for _, o := range opts {
		o(&cfg)
	}
	c := &Cluster{
		schemas:    make(map[string]*tuple.Schema),
		rows:       make(map[string]int64),
		registries: make(map[string]*obs.Registry),
	}
	nodeCfg := cluster.Config{Replication: cfg.replication}
	if cfg.dataDir != "" {
		nodeCfg.OpenStore = c.openStoreFunc(&cfg)
	}
	var local *cluster.Local
	var err error
	netCfg := transport.Config{Latency: cfg.latency, BandwidthBps: cfg.bandwidth}
	if len(cfg.capacities) > 0 {
		local, err = cluster.NewLocalWeighted(cfg.capacities, nodeCfg, netCfg)
	} else {
		local, err = cluster.NewLocalScheme(n, nodeCfg, netCfg, cfg.scheme)
	}
	if err != nil {
		return nil, err
	}
	c.local = local
	for _, node := range local.Nodes() {
		c.engines = append(c.engines, engine.New(node))
	}
	if cfg.dataDir != "" {
		if err := c.recoverCatalogs(); err != nil {
			c.Shutdown()
			return nil, err
		}
	}
	if cfg.repairInterval > 0 {
		c.repairInterval = cfg.repairInterval
		for _, node := range local.Nodes() {
			node.StartRepair(cfg.repairInterval)
		}
	}
	return c, nil
}

// Size returns the number of nodes ever started (including killed ones).
func (c *Cluster) Size() int { return len(c.engines) }

// NodeID returns the i-th node's identity.
func (c *Cluster) NodeID(i int) string { return string(c.local.Node(i).ID()) }

// Shutdown stops all nodes and the network.
func (c *Cluster) Shutdown() { c.local.Shutdown() }

// Kill abruptly severs a node (crash-stop), as in the paper's failure
// experiments. In-flight queries recover per their QueryOptions.
func (c *Cluster) Kill(i int) { c.local.Kill(c.local.Node(i).ID()) }

// Hang makes a node stop responding while keeping connections open — the
// "hung machine" case detected by background pings (§V-C).
func (c *Cluster) Hang(i int) { c.local.Hang(c.local.Node(i).ID()) }

// OnNodeDown registers a callback at node i invoked when that node detects
// a peer failure — via connection drop (crash) or ping timeout (hang).
func (c *Cluster) OnNodeDown(i int, fn func(peer string)) {
	c.local.Node(i).OnPeerDown(func(id ring.NodeID) { fn(string(id)) })
}

// StartPingers enables background hung-machine detection on all nodes.
func (c *Cluster) StartPingers(interval, timeout time.Duration) {
	c.local.StartPingers(interval, timeout)
}

// AddNode joins a fresh node; data is rebalanced and the node participates
// in queries whose snapshot is taken after the join (§V-C).
func (c *Cluster) AddNode() (int, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	node, err := c.local.AddNode(ctx)
	if err != nil {
		return 0, err
	}
	c.engines = append(c.engines, engine.New(node))
	return len(c.engines) - 1, nil
}

// RemoveNode gracefully retires node i, rebalancing its data first.
func (c *Cluster) RemoveNode(i int) error {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	return c.local.RemoveNode(ctx, c.local.Node(i).ID())
}

// NetworkStats reports accumulated traffic counters (bytes and messages
// are genuine wire sizes — all payloads are really encoded).
func (c *Cluster) NetworkStats() transport.Stats { return c.local.Net.Stats() }

// ResetNetworkStats zeroes the traffic counters (used between experiment
// phases to isolate a query's traffic).
func (c *Cluster) ResetNetworkStats() { c.local.Net.ResetStats() }

// CurrentEpoch returns the node-0 view of the global epoch.
func (c *Cluster) CurrentEpoch() Epoch {
	return c.currentEpochAt(0)
}

// currentEpochAt returns node i's view of the global epoch — serving
// paths resolve epochs at their own node, not node 0.
func (c *Cluster) currentEpochAt(i int) Epoch {
	return c.local.Node(i).Gossip().Current()
}

// --- schema DDL ---

// SchemaDef builds a relation schema fluently; see NewSchema.
type SchemaDef struct {
	name string
	cols []tuple.Column
	keys []string
	err  error
}

// NewSchema starts a schema definition. Columns are "name:type" with type
// one of int, float, string.
func NewSchema(relation string, columns ...string) *SchemaDef {
	d := &SchemaDef{name: relation}
	for _, c := range columns {
		var name, typ string
		if n, err := fmt.Sscanf(c, "%s", &name); n != 1 || err != nil {
			d.err = fmt.Errorf("orchestra: bad column %q", c)
			return d
		}
		for i := 0; i < len(c); i++ {
			if c[i] == ':' {
				name, typ = c[:i], c[i+1:]
				break
			}
		}
		var t tuple.Type
		switch typ {
		case "int", "int64":
			t = tuple.Int64
		case "float", "float64":
			t = tuple.Float64
		case "string", "str":
			t = tuple.String
		default:
			d.err = fmt.Errorf("orchestra: bad column type in %q", c)
			return d
		}
		d.cols = append(d.cols, tuple.Column{Name: name, Type: t})
	}
	return d
}

// Key declares the key columns (data is partitioned by their hash).
func (d *SchemaDef) Key(columns ...string) *SchemaDef {
	d.keys = columns
	return d
}

func (d *SchemaDef) build() (*tuple.Schema, error) {
	if d.err != nil {
		return nil, d.err
	}
	if len(d.keys) == 0 && len(d.cols) > 0 {
		d.keys = []string{d.cols[0].Name} // default: first column
	}
	return tuple.NewSchema(d.name, d.cols, d.keys...)
}

// CreateRelation registers a relation across the cluster.
func (c *Cluster) CreateRelation(def *SchemaDef) error {
	schema, err := def.build()
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.local.Node(0).CreateRelation(ctx, schema); err != nil {
		return err
	}
	c.mu.Lock()
	c.schemas[schema.Relation] = schema
	c.mu.Unlock()
	return nil
}

// CreateRelationSchema registers a pre-built tuple schema across the
// cluster (used by workload loaders that generate typed rows directly).
func (c *Cluster) CreateRelationSchema(s *tuple.Schema) error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.local.Node(0).CreateRelation(ctx, s); err != nil {
		return err
	}
	c.mu.Lock()
	c.schemas[s.Relation] = s
	c.mu.Unlock()
	return nil
}

// Schema returns the registered schema for a relation.
func (c *Cluster) Schema(relation string) (*tuple.Schema, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.schemas[relation]
	return s, ok
}

// Relations lists the registered relation names, sorted.
func (c *Cluster) Relations() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.schemas))
	for name := range c.schemas {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// RowCount returns the cluster's published-row estimate for a relation
// (the same statistic the optimizer sees).
func (c *Cluster) RowCount(relation string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rows[relation]
}

// --- publish / import ---

// convertRow coerces Go values onto the schema's column types.
func convertRow(s *tuple.Schema, r Row) (tuple.Row, error) {
	if len(r) != s.Arity() {
		return nil, fmt.Errorf("orchestra: row arity %d != schema arity %d", len(r), s.Arity())
	}
	out := make(tuple.Row, len(r))
	for i, v := range r {
		switch s.Columns[i].Type {
		case tuple.Int64:
			switch x := v.(type) {
			case int:
				out[i] = tuple.I(int64(x))
			case int64:
				out[i] = tuple.I(x)
			case Epoch:
				out[i] = tuple.I(int64(x))
			default:
				return nil, fmt.Errorf("orchestra: column %s wants int, got %T", s.Columns[i].Name, v)
			}
		case tuple.Float64:
			switch x := v.(type) {
			case float64:
				out[i] = tuple.F(x)
			case int:
				out[i] = tuple.F(float64(x))
			case int64:
				out[i] = tuple.F(float64(x))
			default:
				return nil, fmt.Errorf("orchestra: column %s wants float, got %T", s.Columns[i].Name, v)
			}
		case tuple.String:
			x, ok := v.(string)
			if !ok {
				return nil, fmt.Errorf("orchestra: column %s wants string, got %T", s.Columns[i].Name, v)
			}
			out[i] = tuple.S(x)
		}
	}
	return out, nil
}

// Publish inserts a batch of rows as one published update log, advancing
// the global epoch (§IV). It returns the new epoch.
func (c *Cluster) Publish(relation string, rows Rows) (Epoch, error) {
	return c.PublishFrom(0, relation, rows)
}

// PublishFrom publishes via a specific node (participants publish through
// their own node in a real deployment).
func (c *Cluster) PublishFrom(node int, relation string, rows Rows) (Epoch, error) {
	s, ok := c.Schema(relation)
	if !ok {
		return 0, fmt.Errorf("orchestra: unknown relation %q", relation)
	}
	ups := make([]vstore.Update, len(rows))
	for i, r := range rows {
		tr, err := convertRow(s, r)
		if err != nil {
			return 0, err
		}
		ups[i] = vstore.Update{Op: vstore.OpInsert, Row: tr}
	}
	return c.publishUpdates(node, relation, ups, int64(len(rows)), 0)
}

// PublishTyped publishes pre-converted rows (used by workload generators
// that already produce tuple.Rows).
func (c *Cluster) PublishTyped(node int, relation string, rows []tuple.Row) (Epoch, error) {
	return c.PublishTypedID(node, relation, rows, 0)
}

// PublishTypedID publishes pre-converted rows under an idempotency
// token (0 = none): re-publishing the same nonzero pubID returns the
// original commit's epoch without applying the batch again. Served
// deployments use it to make client publish retries safe.
func (c *Cluster) PublishTypedID(node int, relation string, rows []tuple.Row, pubID uint64) (Epoch, error) {
	ups := make([]vstore.Update, len(rows))
	for i, r := range rows {
		ups[i] = vstore.Update{Op: vstore.OpInsert, Row: r}
	}
	return c.publishUpdates(node, relation, ups, int64(len(rows)), pubID)
}

// Update publishes value changes for existing keys (copy-on-write: prior
// versions remain queryable at their epochs).
func (c *Cluster) Update(relation string, rows Rows) (Epoch, error) {
	s, ok := c.Schema(relation)
	if !ok {
		return 0, fmt.Errorf("orchestra: unknown relation %q", relation)
	}
	ups := make([]vstore.Update, len(rows))
	for i, r := range rows {
		tr, err := convertRow(s, r)
		if err != nil {
			return 0, err
		}
		ups[i] = vstore.Update{Op: vstore.OpUpdate, Row: tr}
	}
	return c.publishUpdates(0, relation, ups, 0, 0)
}

// Delete publishes deletions (key columns of each row are consulted).
func (c *Cluster) Delete(relation string, rows Rows) (Epoch, error) {
	s, ok := c.Schema(relation)
	if !ok {
		return 0, fmt.Errorf("orchestra: unknown relation %q", relation)
	}
	ups := make([]vstore.Update, len(rows))
	for i, r := range rows {
		tr, err := convertRow(s, r)
		if err != nil {
			return 0, err
		}
		ups[i] = vstore.Update{Op: vstore.OpDelete, Row: tr}
	}
	return c.publishUpdates(0, relation, ups, 0, 0)
}

func (c *Cluster) publishUpdates(node int, relation string, ups []vstore.Update, added int64, pubID uint64) (Epoch, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	e, err := c.local.Node(node).PublishWith(ctx, relation, ups, cluster.PublishOptions{ID: pubID})
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	c.rows[relation] += added
	c.mu.Unlock()
	return e, nil
}

// catalog adapts the cluster's cached schemas and row counts for the
// optimizer.
func (c *Cluster) catalog() optimizer.Catalog {
	c.mu.Lock()
	defer c.mu.Unlock()
	cat := &optimizer.MapCatalog{
		Schemas: make(map[string]*tuple.Schema, len(c.schemas)),
		Tables:  make(map[string]optimizer.TableStats, len(c.rows)),
	}
	for k, v := range c.schemas {
		cat.Schemas[k] = v
	}
	for k, v := range c.rows {
		cat.Tables[k] = optimizer.TableStats{Rows: v}
	}
	return cat
}
