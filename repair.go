package orchestra

import (
	"context"
	"time"

	"orchestra/internal/cluster"
	"orchestra/internal/engine"
)

// ReplStats is a node's replica-repair health snapshot: WAL-shipping
// catch-up counters, anti-entropy rounds and repairs, and per-peer
// shipping lag. Serving endpoints expose it through the status op and
// /metrics.
type ReplStats = cluster.ReplStats

// WithWALRetention bounds the archived WAL segments each durable node
// keeps for replica catch-up (bytes; default 32 MiB). A rejoining node
// whose peers still retain its missed records catches up by replaying
// the shipped log delta; once peers truncate past its position it falls
// back to a full state transfer. Only meaningful with WithDataDir.
func WithWALRetention(n int64) Option { return func(c *config) { c.retainBytes = n } }

// WithAntiEntropy starts a low-priority background repair loop on every
// node: at each interval a node exchanges per-relation summaries with
// one replica peer, pulls any missed log suffix (WAL shipping), and
// reconciles divergence it finds. Rejoining nodes converge without an
// explicit repair call; the loop idles cheaply when replicas agree.
func WithAntiEntropy(interval time.Duration) Option {
	return func(c *config) { c.repairInterval = interval }
}

// ReplStats reports node i's replica-repair counters and catch-up lag.
func (c *Cluster) ReplStats(i int) ReplStats { return c.local.Node(i).ReplStats() }

// RepairNode runs one synchronous repair pass at node i against every
// replica peer: WAL-shipping catch-up where markers exist, digest
// comparison, and state transfer where histories diverged.
func (c *Cluster) RepairNode(i int) error {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	return c.local.Node(i).Repair(ctx)
}

// RestartNode brings a killed node back under the same identity: its
// store is reopened (durable stores recover from WAL and snapshot;
// volatile ones come back empty), it rejoins the network, and it
// catches up from its replica peers — via WAL shipping when their logs
// still cover its position, else by state transfer. The routing table
// is untouched: a restart is repair, not a membership change.
func (c *Cluster) RestartNode(i int) error {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	node, err := c.local.Restart(ctx, c.local.Node(i).ID())
	if node != nil {
		c.engines[i] = engine.New(node)
		c.mu.Lock()
		interval := c.repairInterval
		c.mu.Unlock()
		if interval > 0 {
			node.StartRepair(interval)
		}
	}
	return err
}
