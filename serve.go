package orchestra

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"orchestra/internal/cluster"
	"orchestra/internal/kvstore"
	"orchestra/internal/server"
	"orchestra/internal/sql"
	"orchestra/internal/tuple"
)

// ServeOptions tunes a served endpoint; the zero value is sensible.
type ServeOptions struct {
	// Node is the cluster node index that initiates the served work
	// (default 0). Serving each node on its own address turns an
	// embedded cluster into a multi-endpoint deployment for clients to
	// spread load across.
	Node int
	// MaxConcurrentQueries bounds query executions in flight on this
	// endpoint — the admission-control semaphore (default 2×GOMAXPROCS).
	MaxConcurrentQueries int
	// RequestTimeout caps any single request's server-side time,
	// including admission wait (default 30s).
	RequestTimeout time.Duration
	// OnQueryStart, when set, runs at the start of every query execution
	// while its admission slot is held (instrumentation hook).
	OnQueryStart func()
	// MaxFrame bounds a single wire frame (default server.MaxFrame).
	// Results larger than this must use the binary streaming path, which
	// bounds per-batch frames instead of the whole result.
	MaxFrame int64
	// StreamWindow is the per-stream credit window offered to streaming
	// clients, in batch frames (default server.DefaultStreamWindow).
	StreamWindow int
	// StreamCompressMin sets the raw batch size at which streamed batches
	// are flate-compressed (0 = default 4 KiB, negative = never).
	StreamCompressMin int
	// SlowQueryThreshold sets the endpoint's slow-query log threshold:
	// queries at or above it are recorded with their span trees,
	// retrievable via the status and trace ops (0 = the server's 250ms
	// default; negative disables the log).
	SlowQueryThreshold time.Duration
	// OpsAddr, when non-empty, additionally serves the ops HTTP
	// endpoints on that address: /metrics (Prometheus text format),
	// /debug/vars, and /debug/pprof.
	OpsAddr string
	// Advertise overrides the address this endpoint publishes in the
	// cluster's member list (health/status peers). Defaults to the
	// actual listen address; set it when clients reach the endpoint
	// through a different address (a proxy, NAT, or ":0" listeners).
	Advertise string
	// Peers lists additional endpoint addresses to advertise alongside
	// those served off this cluster in-process — for multi-process
	// deployments where each process serves one endpoint but the member
	// list must name them all.
	Peers []string
}

// Server is a wire-protocol endpoint serving this cluster; see
// Cluster.Serve. Clients connect with the orchestra/client package.
type Server struct {
	s       *server.Server
	c       *Cluster
	opsAddr string
}

// Addr returns the endpoint's listen address (useful with ":0").
func (s *Server) Addr() string { return s.s.Addr().String() }

// Close stops the endpoint and severs its sessions.
func (s *Server) Close() error {
	s.c.dropServed(s)
	return s.s.Close()
}

// Shutdown drains the endpoint gracefully: it leaves the cluster's
// advertised member list, stops accepting connections, refuses new
// queries and publishes with the retryable "unavailable" code, answers
// health checks with "draining" so smart clients steer away, and waits
// for in-flight requests to finish. If ctx expires first the remaining
// sessions are severed as by Close.
func (s *Server) Shutdown(ctx context.Context) error {
	s.c.dropServed(s)
	return s.s.Shutdown(ctx)
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.s.Draining() }

// Stats snapshots the endpoint's request/latency/error counters.
func (s *Server) Stats() *server.StatusResponse { return s.s.Stats() }

// OpsAddr returns the ops HTTP listener's address ("" when none).
func (s *Server) OpsAddr() string { return s.opsAddr }

// ServeOps starts an ops HTTP listener (see ServeOptions.OpsAddr) on an
// already-serving endpoint and returns its bound address.
func (s *Server) ServeOps(addr string) (string, error) {
	a, err := s.s.ServeOps(addr)
	if err != nil {
		return "", err
	}
	s.opsAddr = a.String()
	return s.opsAddr, nil
}

// Serve exposes the cluster at addr (TCP, ":0" picks a free port) over
// the length-prefixed JSON wire protocol: create, publish, query (with
// epoch pinning, recovery mode, provenance), schema/catalog, and
// status/stats. Each connection is a session served by its own
// goroutine; query executions pass an admission-control semaphore. Call
// Serve once per node index to give every node its own endpoint.
func (c *Cluster) Serve(addr string, opts ServeOptions) (*Server, error) {
	if opts.Node < 0 || opts.Node >= len(c.engines) {
		return nil, fmt.Errorf("orchestra: no node %d", opts.Node)
	}
	s, err := server.Start(addr, &clusterBackend{c: c, node: opts.Node}, server.Config{
		MaxConcurrentQueries: opts.MaxConcurrentQueries,
		RequestTimeout:       opts.RequestTimeout,
		OnQueryStart:         opts.OnQueryStart,
		MaxFrame:             opts.MaxFrame,
		StreamWindow:         opts.StreamWindow,
		StreamCompressMin:    opts.StreamCompressMin,
		SlowQueryThreshold:   opts.SlowQueryThreshold,
		// Every endpoint served off this cluster advertises the whole
		// set (plus any static extras), so one reachable endpoint
		// teaches a client the others.
		Peers: func() []string { return mergePeers(c.servedPeers(), opts.Peers) },
		// Durable clusters export the node's WAL/fsync/snapshot metrics
		// through this endpoint's /metrics; nil makes the server allocate
		// its own registry.
		Registry: c.nodeRegistry(opts.Node),
	})
	if err != nil {
		return nil, err
	}
	srv := &Server{s: s, c: c}
	advertise := opts.Advertise
	if advertise == "" {
		advertise = s.Addr().String()
	}
	c.addServed(srv, advertise)
	if opts.OpsAddr != "" {
		if _, err := srv.ServeOps(opts.OpsAddr); err != nil {
			srv.Close()
			return nil, err
		}
	}
	return srv, nil
}

// addServed registers a served endpoint's advertised address in the
// cluster's member list.
func (c *Cluster) addServed(s *Server, advertise string) {
	c.mu.Lock()
	if c.served == nil {
		c.served = make(map[*Server]string)
	}
	c.served[s] = advertise
	c.mu.Unlock()
}

// dropServed removes an endpoint from the member list (close/drain).
func (c *Cluster) dropServed(s *Server) {
	c.mu.Lock()
	delete(c.served, s)
	c.mu.Unlock()
}

// servedPeers lists the advertised addresses of every live endpoint
// served off this cluster, sorted for stable output.
func (c *Cluster) servedPeers() []string {
	c.mu.Lock()
	out := make([]string, 0, len(c.served))
	for _, addr := range c.served {
		out = append(out, addr)
	}
	c.mu.Unlock()
	sort.Strings(out)
	return out
}

// mergePeers unions two advertised-address lists, dropping blanks and
// duplicates, sorted for stable output.
func mergePeers(a, b []string) []string {
	seen := make(map[string]struct{}, len(a)+len(b))
	out := make([]string, 0, len(a)+len(b))
	for _, s := range append(a, b...) {
		if s == "" {
			continue
		}
		if _, ok := seen[s]; ok {
			continue
		}
		seen[s] = struct{}{}
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// clusterBackend adapts a Cluster to the server.Backend interface.
type clusterBackend struct {
	c    *Cluster
	node int
}

// wireQueryError types untyped embedded-query failures for the wire:
// SQL parse errors are the client's fault, not the server's.
func wireQueryError(err error) error {
	var se *sql.Error
	if errors.As(err, &se) {
		return server.Errorf(server.CodeBadRequest, "%v", err)
	}
	return err
}

func (b *clusterBackend) Create(ctx context.Context, req *server.CreateRequest) (tuple.Epoch, error) {
	def := NewSchema(req.Relation, req.Columns...)
	if len(req.Keys) > 0 {
		def.Key(req.Keys...)
	}
	if err := b.c.CreateRelation(def); err != nil {
		return 0, server.Errorf(server.CodeBadRequest, "%v", err)
	}
	return b.c.CurrentEpoch(), nil
}

func (b *clusterBackend) Publish(ctx context.Context, req *server.PublishRequest) (tuple.Epoch, error) {
	s, ok := b.c.Schema(req.Relation)
	if !ok {
		return 0, server.Errorf(server.CodeNotFound, "unknown relation %q", req.Relation)
	}
	if req.TypedRows != nil {
		// Binary publish: rows arrived typed by the wire batch codec;
		// coercion is a per-column type check, not per-value JSON parsing.
		if err := server.CoerceTypedRows(s, req.TypedRows); err != nil {
			return 0, err
		}
		return b.c.PublishTypedID(b.node, req.Relation, req.TypedRows, req.PublishID)
	}
	rows := make([]tuple.Row, len(req.Rows))
	for i, r := range req.Rows {
		row, err := server.CoerceRow(s, r)
		if err != nil {
			return 0, err
		}
		rows[i] = row
	}
	return b.c.PublishTypedID(b.node, req.Relation, rows, req.PublishID)
}

// queryOptions maps a wire query request onto embedded query options.
func (b *clusterBackend) queryOptions(ctx context.Context, req *server.QueryRequest) (QueryOptions, error) {
	rec, err := server.RecoveryMode(req.Recovery)
	if err != nil {
		return QueryOptions{}, err
	}
	opts := QueryOptions{
		Node:       b.node,
		Epoch:      Epoch(req.Epoch),
		Recovery:   rec,
		Provenance: req.Provenance,
		Trace:      req.Trace,
	}
	if dl, ok := ctx.Deadline(); ok {
		d := time.Until(dl)
		if d <= 0 {
			// Don't let an expired budget fall through to RunPlan's
			// 5-minute default while holding an admission slot.
			return QueryOptions{}, server.Errorf(server.CodeTimeout, "request deadline expired before execution")
		}
		opts.Timeout = d
	}
	return opts, nil
}

func (b *clusterBackend) Query(ctx context.Context, req *server.QueryRequest) (*server.QueryResponse, error) {
	opts, err := b.queryOptions(ctx, req)
	if err != nil {
		return nil, err
	}
	res, err := b.c.QueryOpts(req.SQL, opts)
	if err != nil {
		return nil, wireQueryError(err)
	}
	qr := &server.QueryResponse{
		Columns:  res.Columns,
		Rows:     server.EncodeRows(res.Rows),
		Epoch:    uint64(res.Epoch),
		Cached:   res.Cached,
		Phases:   res.Phases,
		Restarts: res.Restarts,
		TraceID:  res.TraceID,
		Trace:    res.Trace,
	}
	if req.Explain {
		qr.Plan = res.Plan
	}
	return qr, nil
}

// QueryStream implements server.StreamingBackend: the result flows to
// the wire as row batches under the stream's flow control, never as one
// materialized wire-encoded response. Against a BatchStream the engine's
// columnar answer is handed over as column vectors — batch frames are
// encoded straight from them, with no row materialization anywhere
// between the B-tree pass and the wire.
func (b *clusterBackend) QueryStream(ctx context.Context, req *server.QueryRequest, out server.ResultStream) (*server.QueryTail, error) {
	opts, err := b.queryOptions(ctx, req)
	if err != nil {
		return nil, err
	}
	emit := out.Batch
	var emitCols func(*tuple.Batch) error
	if bs, ok := out.(server.BatchStream); ok {
		emitCols = bs.Batches
	}
	// With tracing on, time the wire writes: emission happens inside
	// QueryBatches (rows alias engine memory until it returns), so the
	// span is accumulated through wrappers and attached afterwards.
	var writeUs, writeRows, writeBatches int64
	if opts.Trace {
		emit = func(rows []tuple.Row) error {
			t0 := time.Now()
			err := out.Batch(rows)
			writeUs += time.Since(t0).Microseconds()
			writeRows += int64(len(rows))
			writeBatches++
			return err
		}
		if emitCols != nil {
			inner := emitCols
			emitCols = func(batch *tuple.Batch) error {
				t0 := time.Now()
				err := inner(batch)
				writeUs += time.Since(t0).Microseconds()
				writeRows += int64(batch.N)
				writeBatches++
				return err
			}
		}
	}
	res, err := b.c.QueryBatches(req.SQL, opts,
		func(meta *Result) error { return out.Columns(meta.Columns) },
		emit, emitCols)
	if err != nil {
		return nil, wireQueryError(err)
	}
	if res.Trace != nil && writeBatches > 0 {
		res.Trace.Children = append(res.Trace.Children, &TraceSpan{
			Name:    "stream.write",
			DurUs:   writeUs,
			Rows:    writeRows,
			Batches: writeBatches,
		})
	}
	tail := &server.QueryTail{
		Epoch:    uint64(res.Epoch),
		Cached:   res.Cached,
		Phases:   res.Phases,
		Restarts: res.Restarts,
		TraceID:  res.TraceID,
		Trace:    res.Trace,
		Streamed: res.Streamed,
	}
	if req.Explain {
		tail.Plan = res.Plan
	}
	return tail, nil
}

func (b *clusterBackend) Catalog(ctx context.Context, rel string) (*server.SchemaResponse, error) {
	names := b.c.Relations()
	if rel != "" {
		if _, ok := b.c.Schema(rel); !ok {
			return nil, server.Errorf(server.CodeNotFound, "unknown relation %q", rel)
		}
		names = []string{rel}
	}
	out := &server.SchemaResponse{}
	for _, name := range names {
		s, ok := b.c.Schema(name)
		if !ok {
			continue
		}
		cols, keys := server.FormatColumns(s)
		out.Relations = append(out.Relations, server.RelationInfo{
			Relation: name,
			Columns:  cols,
			Keys:     keys,
			Rows:     b.c.RowCount(name),
		})
	}
	return out, nil
}

func (b *clusterBackend) Epoch() tuple.Epoch { return b.c.CurrentEpoch() }

// CacheStats implements server.CacheStatsProvider: the shared view
// cache plus this node's decoded-page LRU.
func (b *clusterBackend) CacheStats() map[string]CacheStats {
	return b.c.CacheStats(b.node)
}

// DurabilityStats implements server.DurabilityStatsProvider for durable
// clusters (ok is false when the serving node's store is in-memory).
func (b *clusterBackend) DurabilityStats() (kvstore.DurabilityStats, bool) {
	return b.c.DurabilityStats(b.node)
}

// ReplStats implements server.ReplStatsProvider: the serving node's
// replica-repair counters and catch-up lag (ok is false when the
// cluster has a single node — there is nothing to replicate with).
func (b *clusterBackend) ReplStats() (cluster.ReplStats, bool) {
	return b.c.ReplStats(b.node), b.c.Size() > 1
}

func (b *clusterBackend) Info() server.BackendInfo {
	return server.BackendInfo{NodeID: b.c.NodeID(b.node), Members: b.c.liveNodes()}
}
