package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a single-block SELECT statement.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errf("unexpected %q after query", p.cur().text)
	}
	return q, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) eat(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	return token{}, p.errf("expected %q, found %q", text, p.cur().text)
}

func (p *parser) errf(format string, args ...any) error {
	return &Error{Pos: p.cur().pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) parseQuery() (*Query, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	q := &Query{Limit: -1}

	// Select list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		q.Select = append(q.Select, item)
		if !p.eat(tokSymbol, ",") {
			break
		}
	}

	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	for {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		q.From = append(q.From, ref)
		if !p.eat(tokSymbol, ",") {
			break
		}
	}

	if p.eat(tokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Where = e
	}

	if p.eat(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, e)
			if !p.eat(tokSymbol, ",") {
				break
			}
		}
	}

	if p.at(tokKeyword, "HAVING") {
		return nil, p.errf("HAVING is not supported (single-block queries only)")
	}

	if p.eat(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.eat(tokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.eat(tokKeyword, "ASC")
			}
			q.OrderBy = append(q.OrderBy, item)
			if !p.eat(tokSymbol, ",") {
				break
			}
		}
	}

	if p.eat(tokKeyword, "LIMIT") {
		t, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, p.errf("expected LIMIT count")
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errf("bad LIMIT %q", t.text)
		}
		q.Limit = n
	}
	return q, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.eat(tokSymbol, "*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.eat(tokKeyword, "AS") {
		t, err := p.expect(tokIdent, "")
		if err != nil {
			return SelectItem{}, p.errf("expected alias after AS")
		}
		item.Alias = t.text
	} else if p.at(tokIdent, "") {
		item.Alias = p.next().text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return TableRef{}, p.errf("expected table name")
	}
	ref := TableRef{Table: t.text}
	if p.eat(tokKeyword, "AS") {
		a, err := p.expect(tokIdent, "")
		if err != nil {
			return TableRef{}, p.errf("expected alias after AS")
		}
		ref.Alias = a.text
	} else if p.at(tokIdent, "") {
		ref.Alias = p.next().text
	}
	return ref, nil
}

// Expression grammar (precedence climbing):
//
//	expr    := and (OR and)*
//	and     := not (AND not)*
//	not     := NOT not | cmp
//	cmp     := add ((=|<>|<|<=|>|>=) add | BETWEEN add AND add)?
//	add     := mul ((+|-|'||') mul)*
//	mul     := unary ((*|/) unary)*
//	unary   := - unary | primary
//	primary := literal | agg | colref | ( expr )
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.eat(tokKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.eat(tokKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.eat(tokKeyword, "NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return NotExpr{E: e}, nil
	}
	return p.parseCmp()
}

var cmpOps = map[string]string{
	"=": OpEq, "<>": OpNe, "!=": OpNe,
	"<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokSymbol {
		if op, ok := cmpOps[p.cur().text]; ok {
			p.next()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return BinExpr{Op: op, L: l, R: r}, nil
		}
	}
	if p.eat(tokKeyword, "BETWEEN") {
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return BetweenExpr{E: l, Lo: lo, Hi: hi}, nil
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.at(tokSymbol, "+"):
			op = OpAdd
		case p.at(tokSymbol, "-"):
			op = OpSub
		case p.at(tokSymbol, "||"):
			op = OpConcat
		default:
			return l, nil
		}
		p.next()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.at(tokSymbol, "*"):
			op = OpMul
		case p.at(tokSymbol, "/"):
			op = OpDiv
		default:
			return l, nil
		}
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.eat(tokSymbol, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		switch lit := e.(type) {
		case IntLit:
			return IntLit{V: -lit.V}, nil
		case FloatLit:
			return FloatLit{V: -lit.V}, nil
		}
		return BinExpr{Op: OpSub, L: IntLit{V: 0}, R: e}, nil
	}
	return p.parsePrimary()
}

var aggFuncs = map[string]bool{"COUNT": true, "SUM": true, "MIN": true, "MAX": true, "AVG": true}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			v, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return FloatLit{V: v}, nil
		}
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return IntLit{V: v}, nil
	case tokString:
		p.next()
		return StringLit{V: t.text}, nil
	case tokKeyword:
		if aggFuncs[t.text] {
			p.next()
			if _, err := p.expect(tokSymbol, "("); err != nil {
				return nil, err
			}
			if t.text == "COUNT" && p.eat(tokSymbol, "*") {
				if _, err := p.expect(tokSymbol, ")"); err != nil {
					return nil, err
				}
				return AggExpr{Func: "COUNT"}, nil
			}
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return AggExpr{Func: t.text, Arg: arg}, nil
		}
		return nil, p.errf("unexpected keyword %q in expression", t.text)
	case tokIdent:
		p.next()
		if p.eat(tokSymbol, ".") {
			c, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, p.errf("expected column after %q.", t.text)
			}
			return ColRef{Table: t.text, Column: c.text}, nil
		}
		return ColRef{Column: t.text}, nil
	case tokSymbol:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected %q in expression", t.text)
}
