package sql

import (
	"fmt"
	"strings"
)

// Query is a single-block SELECT statement.
type Query struct {
	Select  []SelectItem
	From    []TableRef
	Where   Expr // nil when absent; conjunctions split by the optimizer
	GroupBy []Expr
	OrderBy []OrderItem
	Limit   int // -1 when absent
}

// SelectItem is one output column: an expression or aggregate, optionally
// aliased. Star expands to all columns of all FROM tables in order.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
}

// TableRef names a base relation with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

// Name returns the reference's binding name (alias if present).
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// OutputColumns derives display names for the query's result columns:
// select aliases where given, expression text otherwise, and — for * —
// the FROM tables' columns in order. columnsOf resolves a table's
// column names; tables it cannot resolve contribute nothing.
func (q *Query) OutputColumns(columnsOf func(table string) ([]string, bool)) []string {
	var out []string
	for _, item := range q.Select {
		if item.Star {
			for _, ref := range q.From {
				if cols, ok := columnsOf(ref.Table); ok {
					out = append(out, cols...)
				}
			}
			continue
		}
		if item.Alias != "" {
			out = append(out, item.Alias)
			continue
		}
		out = append(out, item.Expr.String())
	}
	return out
}

// --- expressions ---

// Expr is a scalar or aggregate expression in the AST.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// ColRef references a column, optionally qualified by a table name/alias.
type ColRef struct {
	Table  string // "" when unqualified
	Column string
}

func (ColRef) exprNode() {}

func (c ColRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// IntLit is an integer literal.
type IntLit struct{ V int64 }

func (IntLit) exprNode()        {}
func (l IntLit) String() string { return fmt.Sprintf("%d", l.V) }

// FloatLit is a floating-point literal.
type FloatLit struct{ V float64 }

func (FloatLit) exprNode()        {}
func (l FloatLit) String() string { return fmt.Sprintf("%g", l.V) }

// StringLit is a string literal.
type StringLit struct{ V string }

func (StringLit) exprNode()        {}
func (l StringLit) String() string { return fmt.Sprintf("'%s'", strings.ReplaceAll(l.V, "'", "''")) }

// BinOp kinds, in precedence groups.
const (
	OpOr     = "OR"
	OpAnd    = "AND"
	OpEq     = "="
	OpNe     = "<>"
	OpLt     = "<"
	OpLe     = "<="
	OpGt     = ">"
	OpGe     = ">="
	OpAdd    = "+"
	OpSub    = "-"
	OpMul    = "*"
	OpDiv    = "/"
	OpConcat = "||"
)

// BinExpr is a binary operation.
type BinExpr struct {
	Op   string
	L, R Expr
}

func (BinExpr) exprNode() {}

func (b BinExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// NotExpr is logical negation.
type NotExpr struct{ E Expr }

func (NotExpr) exprNode()        {}
func (n NotExpr) String() string { return fmt.Sprintf("NOT %s", n.E) }

// BetweenExpr is `e BETWEEN lo AND hi` (inclusive).
type BetweenExpr struct {
	E, Lo, Hi Expr
}

func (BetweenExpr) exprNode() {}
func (b BetweenExpr) String() string {
	return fmt.Sprintf("(%s BETWEEN %s AND %s)", b.E, b.Lo, b.Hi)
}

// AggExpr is an aggregate function application. Col is nil for COUNT(*).
type AggExpr struct {
	Func string // COUNT SUM MIN MAX AVG (upper-case)
	Arg  Expr   // nil for COUNT(*)
}

func (AggExpr) exprNode() {}

func (a AggExpr) String() string {
	if a.Arg == nil {
		return a.Func + "(*)"
	}
	return fmt.Sprintf("%s(%s)", a.Func, a.Arg)
}

// ContainsAggregate reports whether the expression tree contains an
// aggregate function application.
func ContainsAggregate(e Expr) bool {
	switch t := e.(type) {
	case AggExpr:
		return true
	case BinExpr:
		return ContainsAggregate(t.L) || ContainsAggregate(t.R)
	case NotExpr:
		return ContainsAggregate(t.E)
	case BetweenExpr:
		return ContainsAggregate(t.E) || ContainsAggregate(t.Lo) || ContainsAggregate(t.Hi)
	default:
		return false
	}
}

func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, s := range q.Select {
		if i > 0 {
			b.WriteString(", ")
		}
		if s.Star {
			b.WriteString("*")
			continue
		}
		b.WriteString(s.Expr.String())
		if s.Alias != "" {
			b.WriteString(" AS " + s.Alias)
		}
	}
	b.WriteString(" FROM ")
	for i, t := range q.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.Table)
		if t.Alias != "" {
			b.WriteString(" " + t.Alias)
		}
	}
	if q.Where != nil {
		b.WriteString(" WHERE " + q.Where.String())
	}
	if len(q.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range q.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}
	if len(q.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range q.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Expr.String())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if q.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	return b.String()
}
