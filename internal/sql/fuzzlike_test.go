package sql

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestParseNeverPanics drives the parser with random byte soup and random
// token recombinations; it must return (ast, nil) or (nil, error), never
// panic or hang.
func TestParseNeverPanics(t *testing.T) {
	f := func(s string) bool {
		_, _ = Parse(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}

	frags := []string{
		"SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "LIMIT", "AND",
		"OR", "NOT", "COUNT", "SUM", "(", ")", ",", ".", "*", "=", "<", ">",
		"<=", ">=", "<>", "||", "+", "-", "/", "R", "x", "42", "'s'", "BETWEEN",
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(16)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = frags[rng.Intn(len(frags))]
		}
		_, _ = Parse(strings.Join(parts, " "))
	}
}

// TestParsedQueriesRoundTripProperty: everything that parses re-parses
// from its own String() to the same String().
func TestParsedQueriesRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cols := []string{"a", "b", "c"}
	ops := []string{"=", "<", ">", "<=", ">=", "<>"}
	for trial := 0; trial < 300; trial++ {
		var b strings.Builder
		b.WriteString("SELECT ")
		nSel := 1 + rng.Intn(3)
		for i := 0; i < nSel; i++ {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(cols[rng.Intn(len(cols))])
		}
		b.WriteString(" FROM R")
		if rng.Intn(2) == 0 {
			b.WriteString(", S")
		}
		if rng.Intn(2) == 0 {
			b.WriteString(" WHERE ")
			b.WriteString(cols[rng.Intn(len(cols))])
			b.WriteString(" " + ops[rng.Intn(len(ops))] + " ")
			b.WriteString([]string{"1", "2.5", "'v'"}[rng.Intn(3)])
		}
		if rng.Intn(3) == 0 {
			b.WriteString(" LIMIT ")
			b.WriteString([]string{"1", "10", "100"}[rng.Intn(3)])
		}
		src := b.String()
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("generated query failed to parse: %q: %v", src, err)
		}
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("round trip failed: %q → %q: %v", src, q.String(), err)
		}
		if q.String() != q2.String() {
			t.Fatalf("unstable round trip: %q vs %q", q.String(), q2.String())
		}
	}
}
