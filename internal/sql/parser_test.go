package sql

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q
}

func TestParseSimpleSelect(t *testing.T) {
	q := mustParse(t, "SELECT x, y FROM R")
	if len(q.Select) != 2 || len(q.From) != 1 {
		t.Fatalf("wrong shape: %v", q)
	}
	if q.From[0].Table != "R" || q.Where != nil || q.Limit != -1 {
		t.Fatalf("wrong parse: %v", q)
	}
	if c, ok := q.Select[0].Expr.(ColRef); !ok || c.Column != "x" {
		t.Fatalf("select[0] = %v", q.Select[0].Expr)
	}
}

func TestParseStar(t *testing.T) {
	q := mustParse(t, "SELECT * FROM R")
	if !q.Select[0].Star {
		t.Fatal("expected star")
	}
}

func TestParseQualifiedColumnsAndAliases(t *testing.T) {
	q := mustParse(t, "SELECT r.x AS a, s.z b FROM R r, S AS s WHERE r.y = s.y")
	if q.Select[0].Alias != "a" || q.Select[1].Alias != "b" {
		t.Fatalf("aliases: %v", q.Select)
	}
	if q.From[0].Name() != "r" || q.From[1].Name() != "s" {
		t.Fatalf("from names: %v", q.From)
	}
	be, ok := q.Where.(BinExpr)
	if !ok || be.Op != OpEq {
		t.Fatalf("where: %v", q.Where)
	}
	if l := be.L.(ColRef); l.Table != "r" || l.Column != "y" {
		t.Fatalf("where lhs: %v", be.L)
	}
}

func TestParsePredicatePrecedence(t *testing.T) {
	q := mustParse(t, "SELECT x FROM R WHERE a = 1 AND b = 2 OR c = 3")
	or, ok := q.Where.(BinExpr)
	if !ok || or.Op != OpOr {
		t.Fatalf("want OR at top, got %v", q.Where)
	}
	and, ok := or.L.(BinExpr)
	if !ok || and.Op != OpAnd {
		t.Fatalf("want AND below OR, got %v", or.L)
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	q := mustParse(t, "SELECT a + b * c FROM R")
	add, ok := q.Select[0].Expr.(BinExpr)
	if !ok || add.Op != OpAdd {
		t.Fatalf("want + at top: %v", q.Select[0].Expr)
	}
	if mul, ok := add.R.(BinExpr); !ok || mul.Op != OpMul {
		t.Fatalf("want * on the right: %v", add.R)
	}
}

func TestParseAggregatesAndGroupBy(t *testing.T) {
	q := mustParse(t, "SELECT x, COUNT(*), SUM(y), MIN(z), AVG(w) FROM R GROUP BY x")
	if len(q.GroupBy) != 1 {
		t.Fatalf("group by: %v", q.GroupBy)
	}
	cnt := q.Select[1].Expr.(AggExpr)
	if cnt.Func != "COUNT" || cnt.Arg != nil {
		t.Fatalf("count(*): %v", cnt)
	}
	s := q.Select[2].Expr.(AggExpr)
	if s.Func != "SUM" {
		t.Fatalf("sum: %v", s)
	}
	if !ContainsAggregate(q.Select[1].Expr) || ContainsAggregate(q.Select[0].Expr) {
		t.Fatal("ContainsAggregate misbehaves")
	}
}

func TestParseBetween(t *testing.T) {
	q := mustParse(t, "SELECT x FROM R WHERE y BETWEEN 3 AND 7")
	b, ok := q.Where.(BetweenExpr)
	if !ok {
		t.Fatalf("want between: %v", q.Where)
	}
	if b.Lo.(IntLit).V != 3 || b.Hi.(IntLit).V != 7 {
		t.Fatalf("bounds: %v", b)
	}
}

func TestParseOrderLimit(t *testing.T) {
	q := mustParse(t, "SELECT x, y FROM R ORDER BY y DESC, x LIMIT 10")
	if len(q.OrderBy) != 2 || !q.OrderBy[0].Desc || q.OrderBy[1].Desc {
		t.Fatalf("order: %v", q.OrderBy)
	}
	if q.Limit != 10 {
		t.Fatalf("limit: %d", q.Limit)
	}
}

func TestParseStringsAndConcat(t *testing.T) {
	q := mustParse(t, "SELECT a || '-' || b FROM R WHERE c = 'it''s'")
	be := q.Where.(BinExpr)
	if be.R.(StringLit).V != "it's" {
		t.Fatalf("escaped string: %v", be.R)
	}
	cat := q.Select[0].Expr.(BinExpr)
	if cat.Op != OpConcat {
		t.Fatalf("concat: %v", cat)
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	q := mustParse(t, "SELECT x FROM R WHERE y > -5 AND z < -1.5")
	and := q.Where.(BinExpr)
	gt := and.L.(BinExpr)
	if gt.R.(IntLit).V != -5 {
		t.Fatalf("neg int: %v", gt.R)
	}
	lt := and.R.(BinExpr)
	if lt.R.(FloatLit).V != -1.5 {
		t.Fatalf("neg float: %v", lt.R)
	}
}

func TestParseComments(t *testing.T) {
	mustParse(t, "SELECT x -- trailing comment\nFROM R")
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM R",
		"SELECT x",
		"SELECT x FROM",
		"SELECT x FROM R WHERE",
		"SELECT x FROM R GROUP x",
		"SELECT x FROM R LIMIT abc",
		"SELECT x FROM R HAVING x > 1",
		"SELECT x FROM R; SELECT y FROM S",
		"SELECT x FROM R WHERE y = 'unterminated",
		"SELECT x FROM R WHERE y @ 3",
		"SELECT COUNT( FROM R",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	srcs := []string{
		"SELECT x, MIN(z) FROM R, S WHERE (R.y = S.y) GROUP BY x",
		"SELECT * FROM lineitem WHERE (l_quantity < 24)",
		"SELECT a AS total FROM R ORDER BY a DESC LIMIT 3",
	}
	for _, src := range srcs {
		q := mustParse(t, src)
		q2 := mustParse(t, q.String())
		if q.String() != q2.String() {
			t.Errorf("round trip changed:\n%s\n%s", q, q2)
		}
		if !strings.Contains(q.String(), "SELECT") {
			t.Errorf("stringer broken: %s", q)
		}
	}
}
