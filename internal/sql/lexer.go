// Package sql implements the single-block SQL front end of ORCHESTRA's
// query processor (paper §VI "Query Optimizer": "It currently handles
// single-block SQL queries, including function evaluation and grouping").
// The parser produces an AST that the optimizer lowers to a distributed
// engine plan.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexical tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol  // ( ) , . * = < > <= >= <> + - / ||
	tokKeyword // SELECT FROM WHERE ...
)

// keywords recognized by the lexer (stored upper-case).
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "LIMIT": true, "AS": true, "AND": true, "OR": true,
	"NOT": true, "ASC": true, "DESC": true, "COUNT": true, "SUM": true,
	"MIN": true, "MAX": true, "AVG": true, "BETWEEN": true, "IN": true,
	"LIKE": true, "IS": true, "NULL": true, "DISTINCT": true, "HAVING": true,
}

type token struct {
	kind tokKind
	text string // keywords upper-cased; idents as written
	pos  int    // byte offset, for error messages
}

// Error is a parse error with position context.
type Error struct {
	Pos int
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("sql: %s (at offset %d)", e.Msg, e.Pos) }

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexIdent(start)
		case c >= '0' && c <= '9':
			l.lexNumber(start)
		case c == '\'':
			if err := l.lexString(start); err != nil {
				return nil, err
			}
		default:
			if err := l.lexSymbol(start); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// -- line comments
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

func (l *lexer) lexIdent(start int) {
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	text := l.src[start:l.pos]
	upper := strings.ToUpper(text)
	if keywords[upper] {
		l.toks = append(l.toks, token{kind: tokKeyword, text: upper, pos: start})
	} else {
		l.toks = append(l.toks, token{kind: tokIdent, text: text, pos: start})
	}
}

func (l *lexer) lexNumber(start int) {
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' {
			l.pos++
			continue
		}
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		break
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexString(start int) error {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' escapes a quote.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return &Error{Pos: start, Msg: "unterminated string literal"}
}

// twoCharSymbols in match order.
var twoCharSymbols = []string{"<=", ">=", "<>", "!=", "||"}

func (l *lexer) lexSymbol(start int) error {
	rest := l.src[l.pos:]
	for _, s := range twoCharSymbols {
		if strings.HasPrefix(rest, s) {
			l.pos += 2
			l.toks = append(l.toks, token{kind: tokSymbol, text: s, pos: start})
			return nil
		}
	}
	switch rest[0] {
	case '(', ')', ',', '.', '*', '=', '<', '>', '+', '-', '/':
		l.pos++
		l.toks = append(l.toks, token{kind: tokSymbol, text: rest[:1], pos: start})
		return nil
	}
	return &Error{Pos: start, Msg: fmt.Sprintf("unexpected character %q", rest[0])}
}
