// Package tpch is a from-scratch, deterministic TPC-H data generator and
// query set (the dbgen substitute of paper §VI-A). It produces all eight
// tables at an arbitrary scale factor with the standard cardinality ratios
// and key relationships; value distributions are simplified but preserve
// the selectivities the studied queries (Q1, Q3, Q5, Q6, Q10) depend on.
// Dates are encoded as int64 YYYYMMDD (order-preserving), and comment
// strings are shortened — substitutions recorded in DESIGN.md.
package tpch

import (
	"fmt"
	"math/rand"
	"time"

	"orchestra/internal/tuple"
)

// Base cardinalities at scale factor 1.0 (TPC-H specification).
const (
	baseSupplier = 10_000
	baseCustomer = 150_000
	basePart     = 200_000
	basePartsupp = 800_000
	baseOrders   = 1_500_000
	linesPerOrd  = 4 // average lineitems per order (spec: 1-7, mean 4)
)

// RowCounts returns per-table row counts at a scale factor.
func RowCounts(sf float64) map[string]int {
	scale := func(base int) int {
		n := int(float64(base) * sf)
		if n < 1 {
			n = 1
		}
		return n
	}
	orders := scale(baseOrders)
	return map[string]int{
		"region":   5,
		"nation":   25,
		"supplier": scale(baseSupplier),
		"customer": scale(baseCustomer),
		"part":     scale(basePart),
		"partsupp": scale(basePartsupp),
		"orders":   orders,
		"lineitem": orders * linesPerOrd,
	}
}

// Schemas returns the eight TPC-H table schemas. Composite-keyed tables
// (lineitem, partsupp) are keyed on their full primary key; the storage
// layer partitions by the hash of the whole key.
func Schemas() []*tuple.Schema {
	i := func(n string) tuple.Column { return tuple.Column{Name: n, Type: tuple.Int64} }
	f := func(n string) tuple.Column { return tuple.Column{Name: n, Type: tuple.Float64} }
	s := func(n string) tuple.Column { return tuple.Column{Name: n, Type: tuple.String} }
	return []*tuple.Schema{
		tuple.MustSchema("region",
			[]tuple.Column{i("r_regionkey"), s("r_name"), s("r_comment")},
			"r_regionkey"),
		tuple.MustSchema("nation",
			[]tuple.Column{i("n_nationkey"), s("n_name"), i("n_regionkey"), s("n_comment")},
			"n_nationkey"),
		tuple.MustSchema("supplier",
			[]tuple.Column{i("s_suppkey"), s("s_name"), s("s_address"), i("s_nationkey"),
				s("s_phone"), f("s_acctbal"), s("s_comment")},
			"s_suppkey"),
		tuple.MustSchema("customer",
			[]tuple.Column{i("c_custkey"), s("c_name"), s("c_address"), i("c_nationkey"),
				s("c_phone"), f("c_acctbal"), s("c_mktsegment"), s("c_comment")},
			"c_custkey"),
		tuple.MustSchema("part",
			[]tuple.Column{i("p_partkey"), s("p_name"), s("p_mfgr"), s("p_brand"),
				s("p_type"), i("p_size"), s("p_container"), f("p_retailprice"), s("p_comment")},
			"p_partkey"),
		tuple.MustSchema("partsupp",
			[]tuple.Column{i("ps_partkey"), i("ps_suppkey"), i("ps_availqty"),
				f("ps_supplycost"), s("ps_comment")},
			"ps_partkey", "ps_suppkey"),
		tuple.MustSchema("orders",
			[]tuple.Column{i("o_orderkey"), i("o_custkey"), s("o_orderstatus"),
				f("o_totalprice"), i("o_orderdate"), s("o_orderpriority"), s("o_clerk"),
				i("o_shippriority"), s("o_comment")},
			"o_orderkey"),
		tuple.MustSchema("lineitem",
			[]tuple.Column{i("l_orderkey"), i("l_linenumber"), i("l_partkey"), i("l_suppkey"),
				f("l_quantity"), f("l_extendedprice"), f("l_discount"), f("l_tax"),
				s("l_returnflag"), s("l_linestatus"), i("l_shipdate"), i("l_commitdate"),
				i("l_receiptdate"), s("l_shipinstruct"), s("l_shipmode"), s("l_comment")},
			"l_orderkey", "l_linenumber"),
	}
}

var regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

var nationNames = []string{
	"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
	"GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
	"MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA",
	"VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
}

// nationRegion follows the TPC-H spec's nation→region assignment.
var nationRegion = []int64{
	0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0,
	0, 0, 1, 2, 3, 4, 2, 3, 3, 1,
}

var segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
var priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
var shipModes = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
var instructs = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}

// dateInt converts a time to the YYYYMMDD int64 encoding.
func dateInt(t time.Time) int64 {
	return int64(t.Year())*10000 + int64(t.Month())*100 + int64(t.Day())
}

// DateInt builds the YYYYMMDD encoding from components (exported for
// writing query constants in examples and benches).
func DateInt(y, m, d int) int64 { return int64(y)*10000 + int64(m)*100 + int64(d) }

var epochStart = time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC)

// randDate picks a date uniformly in [1992-01-01, 1998-08-02], per spec.
func randDate(rng *rand.Rand) (time.Time, int64) {
	d := epochStart.AddDate(0, 0, rng.Intn(2405))
	return d, dateInt(d)
}

func comment(rng *rand.Rand, n int) string {
	const words = "the of quickly final deposits accounts pending ironic requests express"
	b := make([]byte, 0, n)
	for len(b) < n {
		w := words[rng.Intn(len(words)-8):]
		for i := 0; i < len(w) && w[i] != ' '; i++ {
			b = append(b, w[i])
		}
		b = append(b, ' ')
	}
	return string(b[:n])
}

// Generate produces all eight tables at the scale factor, deterministically
// in seed.
func Generate(sf float64, seed int64) map[string][]tuple.Row {
	counts := RowCounts(sf)
	out := make(map[string][]tuple.Row, 8)
	rng := rand.New(rand.NewSource(seed))

	// region
	regions := make([]tuple.Row, 5)
	for i := range regions {
		regions[i] = tuple.Row{tuple.I(int64(i)), tuple.S(regionNames[i]), tuple.S(comment(rng, 12))}
	}
	out["region"] = regions

	// nation
	nations := make([]tuple.Row, 25)
	for i := range nations {
		nations[i] = tuple.Row{
			tuple.I(int64(i)), tuple.S(nationNames[i]),
			tuple.I(nationRegion[i]), tuple.S(comment(rng, 12)),
		}
	}
	out["nation"] = nations

	// supplier
	nSupp := counts["supplier"]
	suppliers := make([]tuple.Row, nSupp)
	for i := range suppliers {
		k := int64(i + 1)
		suppliers[i] = tuple.Row{
			tuple.I(k),
			tuple.S(fmt.Sprintf("Supplier#%09d", k)),
			tuple.S(comment(rng, 15)),
			tuple.I(int64(rng.Intn(25))),
			tuple.S(fmt.Sprintf("%02d-%03d-%03d-%04d", 10+rng.Intn(25), rng.Intn(1000), rng.Intn(1000), rng.Intn(10000))),
			tuple.F(float64(rng.Intn(1000000))/100 - 1000),
			tuple.S(comment(rng, 20)),
		}
	}
	out["supplier"] = suppliers

	// customer
	nCust := counts["customer"]
	customers := make([]tuple.Row, nCust)
	for i := range customers {
		k := int64(i + 1)
		customers[i] = tuple.Row{
			tuple.I(k),
			tuple.S(fmt.Sprintf("Customer#%09d", k)),
			tuple.S(comment(rng, 15)),
			tuple.I(int64(rng.Intn(25))),
			tuple.S(fmt.Sprintf("%02d-%03d-%03d-%04d", 10+rng.Intn(25), rng.Intn(1000), rng.Intn(1000), rng.Intn(10000))),
			tuple.F(float64(rng.Intn(1000000))/100 - 1000),
			tuple.S(segments[rng.Intn(len(segments))]),
			tuple.S(comment(rng, 20)),
		}
	}
	out["customer"] = customers

	// part
	nPart := counts["part"]
	parts := make([]tuple.Row, nPart)
	typeAdj := []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	typeMat := []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	for i := range parts {
		k := int64(i + 1)
		parts[i] = tuple.Row{
			tuple.I(k),
			tuple.S(fmt.Sprintf("part %d %s", k, typeMat[rng.Intn(5)])),
			tuple.S(fmt.Sprintf("Manufacturer#%d", 1+rng.Intn(5))),
			tuple.S(fmt.Sprintf("Brand#%d%d", 1+rng.Intn(5), 1+rng.Intn(5))),
			tuple.S(typeAdj[rng.Intn(len(typeAdj))] + " " + typeMat[rng.Intn(5)]),
			tuple.I(int64(1 + rng.Intn(50))),
			tuple.S(fmt.Sprintf("JUMBO PKG %d", rng.Intn(10))),
			tuple.F(900 + float64(k%1000)/10),
			tuple.S(comment(rng, 10)),
		}
	}
	out["part"] = parts

	// partsupp: 4 suppliers per part, following the spec's ratio.
	nPS := counts["partsupp"]
	partsupps := make([]tuple.Row, 0, nPS)
	perPart := 4
	for i := 0; len(partsupps) < nPS; i++ {
		pk := int64(i%nPart + 1)
		for j := 0; j < perPart && len(partsupps) < nPS; j++ {
			sk := int64((int(pk)+j*(nSupp/perPart+1))%nSupp + 1)
			partsupps = append(partsupps, tuple.Row{
				tuple.I(pk), tuple.I(sk),
				tuple.I(int64(1 + rng.Intn(9999))),
				tuple.F(float64(rng.Intn(100000)) / 100),
				tuple.S(comment(rng, 12)),
			})
		}
	}
	out["partsupp"] = partsupps

	// orders + lineitem
	nOrd := counts["orders"]
	orders := make([]tuple.Row, nOrd)
	lineitems := make([]tuple.Row, 0, nOrd*linesPerOrd)
	cutoff := time.Date(1998, 8, 2, 0, 0, 0, 0, time.UTC) // current date per spec
	for i := range orders {
		ok := int64(i + 1)
		custkey := int64(rng.Intn(nCust) + 1)
		odate, odateInt := randDate(rng)
		nLines := 1 + rng.Intn(2*linesPerOrd-1) // 1..7, mean 4
		var total float64
		allF, anyF := true, false
		for ln := 0; ln < nLines; ln++ {
			qty := float64(1 + rng.Intn(50))
			partkey := int64(rng.Intn(nPart) + 1)
			suppkey := int64(rng.Intn(nSupp) + 1)
			price := qty * (900 + float64(partkey%1000)/10)
			discount := float64(rng.Intn(11)) / 100 // 0.00..0.10
			tax := float64(rng.Intn(9)) / 100       // 0.00..0.08
			ship := odate.AddDate(0, 0, 1+rng.Intn(121))
			commit := odate.AddDate(0, 0, 30+rng.Intn(61))
			receipt := ship.AddDate(0, 0, 1+rng.Intn(30))
			// Return flag: R or A when the receipt is old, N otherwise.
			var rf string
			if receipt.Before(time.Date(1995, 6, 17, 0, 0, 0, 0, time.UTC)) {
				if rng.Intn(2) == 0 {
					rf = "R"
				} else {
					rf = "A"
				}
			} else {
				rf = "N"
			}
			// Line status: F when shipped before the cutoff, O otherwise.
			var ls string
			if ship.Before(cutoff) {
				ls = "F"
			} else {
				ls = "O"
				anyF = true
			}
			_ = anyF
			if ls == "O" {
				allF = false
			}
			lineitems = append(lineitems, tuple.Row{
				tuple.I(ok), tuple.I(int64(ln + 1)), tuple.I(partkey), tuple.I(suppkey),
				tuple.F(qty), tuple.F(price), tuple.F(discount), tuple.F(tax),
				tuple.S(rf), tuple.S(ls),
				tuple.I(dateInt(ship)), tuple.I(dateInt(commit)), tuple.I(dateInt(receipt)),
				tuple.S(instructs[rng.Intn(len(instructs))]),
				tuple.S(shipModes[rng.Intn(len(shipModes))]),
				tuple.S(comment(rng, 10)),
			})
			total += price * (1 - discount) * (1 + tax)
		}
		status := "O"
		if allF {
			status = "F"
		}
		orders[i] = tuple.Row{
			tuple.I(ok), tuple.I(custkey), tuple.S(status),
			tuple.F(total), tuple.I(odateInt),
			tuple.S(priorities[rng.Intn(len(priorities))]),
			tuple.S(fmt.Sprintf("Clerk#%09d", rng.Intn(1000))),
			tuple.I(0),
			tuple.S(comment(rng, 15)),
		}
	}
	out["orders"] = orders
	out["lineitem"] = lineitems

	return out
}
