package tpch

import (
	"testing"

	"orchestra/internal/tuple"
)

func TestRowCounts(t *testing.T) {
	c := RowCounts(1.0)
	if c["orders"] != baseOrders || c["lineitem"] != baseOrders*linesPerOrd {
		t.Fatalf("sf=1 counts: %v", c)
	}
	if c["region"] != 5 || c["nation"] != 25 {
		t.Fatalf("fixed tables scale: %v", c)
	}
	small := RowCounts(0.001)
	if small["supplier"] < 1 {
		t.Fatalf("tiny sf must keep at least one row: %v", small)
	}
}

func TestSchemasComplete(t *testing.T) {
	schemas := Schemas()
	if len(schemas) != 8 {
		t.Fatalf("want 8 tables, got %d", len(schemas))
	}
	arity := map[string]int{
		"region": 3, "nation": 4, "supplier": 7, "customer": 8,
		"part": 9, "partsupp": 5, "orders": 9, "lineitem": 16,
	}
	for _, s := range schemas {
		if s.Arity() != arity[s.Relation] {
			t.Errorf("%s arity %d, want %d", s.Relation, s.Arity(), arity[s.Relation])
		}
	}
}

func TestGenerateDeterministicAndConsistent(t *testing.T) {
	a := Generate(0.002, 7)
	b := Generate(0.002, 7)
	for name := range a {
		if len(a[name]) != len(b[name]) {
			t.Fatalf("%s: nondeterministic size", name)
		}
	}
	if !a["lineitem"][0].Equal(b["lineitem"][0]) {
		t.Fatal("nondeterministic rows")
	}

	// Key relationships: every lineitem references an existing order;
	// every order references an existing customer.
	data := a
	nOrders := int64(len(data["orders"]))
	nCust := int64(len(data["customer"]))
	for _, l := range data["lineitem"] {
		ok := l[0].AsInt()
		if ok < 1 || ok > nOrders {
			t.Fatalf("lineitem orderkey %d out of range", ok)
		}
	}
	for _, o := range data["orders"] {
		ck := o[1].AsInt()
		if ck < 1 || ck > nCust {
			t.Fatalf("order custkey %d out of range", ck)
		}
	}
	// Nation regionkeys are valid.
	for _, n := range data["nation"] {
		rk := n[2].AsInt()
		if rk < 0 || rk > 4 {
			t.Fatalf("nation regionkey %d", rk)
		}
	}
}

func TestGenerateUniqueKeys(t *testing.T) {
	data := Generate(0.002, 3)
	schemas := map[string]*tuple.Schema{}
	for _, s := range Schemas() {
		schemas[s.Relation] = s
	}
	for name, rows := range data {
		s := schemas[name]
		seen := make(map[string]bool, len(rows))
		for _, r := range rows {
			k := string(tuple.EncodeKey(r, s.KeyColumns()))
			if seen[k] {
				t.Fatalf("%s: duplicate key %v", name, r.Project(s.KeyColumns()))
			}
			seen[k] = true
		}
	}
}

func TestGenerateSelectivities(t *testing.T) {
	data := Generate(0.01, 11)
	// Q6-style predicate selectivity should be a few percent, not 0 or 1.
	match := 0
	for _, l := range data["lineitem"] {
		ship := l[10].AsInt()
		disc := l[6].AsFloat()
		qty := l[4].AsFloat()
		if ship >= 19940101 && ship < 19950101 && disc >= 0.05 && disc <= 0.07 && qty < 24 {
			match++
		}
	}
	frac := float64(match) / float64(len(data["lineitem"]))
	if frac <= 0 || frac > 0.2 {
		t.Fatalf("Q6 selectivity %f implausible", frac)
	}
	// Return flag R appears (Q10 depends on it).
	rCount := 0
	for _, l := range data["lineitem"] {
		if l[8].Str == "R" {
			rCount++
		}
	}
	if rCount == 0 {
		t.Fatal("no R lineitems")
	}
	// Market segments are spread (Q3 filter).
	segs := map[string]int{}
	for _, c := range data["customer"] {
		segs[c[6].Str]++
	}
	if len(segs) != 5 {
		t.Fatalf("segments: %v", segs)
	}
}

func TestDates(t *testing.T) {
	if DateInt(1995, 3, 15) != 19950315 {
		t.Fatal("DateInt")
	}
	data := Generate(0.002, 5)
	for _, l := range data["lineitem"] {
		ship := l[10].AsInt()
		if ship < 19920101 || ship > 19990101 {
			t.Fatalf("shipdate %d out of range", ship)
		}
	}
}

func TestQueriesNamed(t *testing.T) {
	qs := Queries()
	if len(qs) != 5 {
		t.Fatalf("want 5 queries, got %d", len(qs))
	}
	for _, q := range qs {
		if QueryByName(q.Name).SQL != q.SQL {
			t.Fatalf("QueryByName(%s) broken", q.Name)
		}
	}
	if QueryByName("Q99").SQL != "" {
		t.Fatal("unknown query should be empty")
	}
}
