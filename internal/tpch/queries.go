package tpch

// Query is one TPC-H query in the single-block dialect the optimizer
// accepts. Dates appear as YYYYMMDD integer literals (see gen.go).
type Query struct {
	Name string
	SQL  string
}

// Queries returns the five TPC-H queries studied in the paper (§VI-A):
// Q1 and Q6 are aggregations over lineitem (Q1 aggregates distributively
// and re-aggregates at the coordinator; Q6 aggregates at the coordinator
// only); Q3, Q5, and Q10 are 3-way, 6-way, and 4-way joins followed by
// aggregation.
func Queries() []Query {
	return []Query{
		{Name: "Q1", SQL: `
SELECT l_returnflag, l_linestatus,
       SUM(l_quantity) AS sum_qty,
       SUM(l_extendedprice) AS sum_base_price,
       SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
       SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
       AVG(l_quantity) AS avg_qty,
       AVG(l_extendedprice) AS avg_price,
       AVG(l_discount) AS avg_disc,
       COUNT(*) AS count_order
FROM lineitem
WHERE l_shipdate <= 19980902
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus`},

		{Name: "Q3", SQL: `
SELECT l_orderkey,
       SUM(l_extendedprice * (1 - l_discount)) AS revenue,
       o_orderdate, o_shippriority
FROM customer, orders, lineitem
WHERE c_mktsegment = 'BUILDING'
  AND c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate < 19950315
  AND l_shipdate > 19950315
GROUP BY l_orderkey, o_orderdate, o_shippriority
ORDER BY revenue DESC, o_orderdate
LIMIT 10`},

		{Name: "Q5", SQL: `
SELECT n_name,
       SUM(l_extendedprice * (1 - l_discount)) AS revenue
FROM customer, orders, lineitem, supplier, nation, region
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND l_suppkey = s_suppkey
  AND c_nationkey = s_nationkey
  AND s_nationkey = n_nationkey
  AND n_regionkey = r_regionkey
  AND r_name = 'ASIA'
  AND o_orderdate >= 19940101
  AND o_orderdate < 19950101
GROUP BY n_name
ORDER BY revenue DESC`},

		{Name: "Q6", SQL: `
SELECT SUM(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= 19940101
  AND l_shipdate < 19950101
  AND l_discount BETWEEN 0.05 AND 0.07
  AND l_quantity < 24`},

		{Name: "Q10", SQL: `
SELECT c_custkey, c_name,
       SUM(l_extendedprice * (1 - l_discount)) AS revenue,
       c_acctbal, n_name, c_address, c_phone
FROM customer, orders, lineitem, nation
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate >= 19931001
  AND o_orderdate < 19940101
  AND l_returnflag = 'R'
  AND c_nationkey = n_nationkey
GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address
ORDER BY revenue DESC
LIMIT 20`},
	}
}

// QueryByName returns the named query, or an empty Query.
func QueryByName(name string) Query {
	for _, q := range Queries() {
		if q.Name == name {
			return q
		}
	}
	return Query{}
}
