package kvstore

import (
	"bytes"
	"fmt"
	"os"
	"testing"
	"time"

	"orchestra/internal/wal"
)

func TestReplRingContiguityAndEviction(t *testing.T) {
	r := replRing{max: 4 * (replRecOverhead + 8)}
	for i := 1; i <= 10; i++ {
		r.push(ReplRecord{Seq: uint64(i), Op: opPut, Payload: make([]byte, 8)})
	}
	first, last := r.bounds()
	if last != 10 {
		t.Fatalf("last = %d, want 10", last)
	}
	if first <= 1 {
		t.Fatalf("first = %d, want eviction past 1", first)
	}
	// Request inside the retained window.
	recs, more, truncated := r.from(first, 1<<20)
	if truncated || more {
		t.Fatalf("from(%d): more=%v truncated=%v", first, more, truncated)
	}
	if len(recs) != int(last-first) {
		t.Fatalf("got %d records, want %d", len(recs), last-first)
	}
	// Request before the window: truncated.
	if _, _, truncated := r.from(0, 1<<20); !truncated {
		t.Fatal("evicted position must report truncated")
	}
	// Fully caught up: empty, no flags.
	if recs, more, truncated := r.from(last, 1<<20); len(recs) != 0 || more || truncated {
		t.Fatalf("caught-up from = %d recs, more=%v truncated=%v", len(recs), more, truncated)
	}
	// A discontinuous push resets the ring rather than lying about gaps.
	r.push(ReplRecord{Seq: 20, Op: opPut, Payload: make([]byte, 8)})
	if first, last := r.bounds(); first != 20 || last != 20 {
		t.Fatalf("after gap: bounds = [%d, %d], want [20, 20]", first, last)
	}
}

func TestShipLogRespectsByteBudget(t *testing.T) {
	s := NewMemory()
	for i := 0; i < 50; i++ {
		s.Put([]byte(fmt.Sprintf("k%02d", i)), make([]byte, 100))
	}
	recs, more, truncated := s.ShipLog(0, 500)
	if truncated {
		t.Fatal("nothing evicted yet")
	}
	if !more {
		t.Fatal("budget must leave records behind")
	}
	if len(recs) == 0 || len(recs) >= 50 {
		t.Fatalf("budgeted batch returned %d records", len(recs))
	}
	// Resume from the last shipped seq; walking the whole log must
	// terminate and cover all 50 records.
	total := len(recs)
	after := recs[len(recs)-1].Seq
	for more {
		recs, more, truncated = s.ShipLog(after, 500)
		if truncated {
			t.Fatal("retained history reported truncated")
		}
		total += len(recs)
		if len(recs) > 0 {
			after = recs[len(recs)-1].Seq
		}
	}
	if total != 50 {
		t.Fatalf("walked %d records, want 50", total)
	}
}

func TestSeqPersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	s.Delete([]byte("k3"))
	s.SetEpoch(2) // epoch records consume seqs too
	want := s.Seq()
	if want != 12 {
		t.Fatalf("seq = %d, want 12 (10 puts + 1 delete + 1 epoch)", want)
	}
	s.Close()

	s2, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Seq() != want {
		t.Fatalf("recovered seq = %d, want %d", s2.Seq(), want)
	}
	// Replayed records must be shippable: the ring is re-seeded from the
	// live log during recovery.
	recs, _, truncated := s2.ShipLog(0, 1<<20)
	if truncated {
		t.Fatal("recovered ring lost the replayed history")
	}
	if len(recs) != int(want) {
		t.Fatalf("recovered ring holds %d records, want %d", len(recs), want)
	}
	s2.Close()
}

func TestSeqPersistsAcrossCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		s.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Put([]byte("post"), []byte("v"))
	want := s.Seq()
	s.Close()

	s2, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Seq() != want {
		t.Fatalf("seq across checkpointed restart = %d, want %d", s2.Seq(), want)
	}
}

func TestShipAfterRestartCoversSegmentChain(t *testing.T) {
	// Records appended before a checkpoint live in an archived segment;
	// after a restart they must still ship (re-seeded from segments), so
	// a replica that was down across our checkpoint can catch up without
	// a state transfer.
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	s.Put([]byte("before"), []byte("1"))
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Put([]byte("after"), []byte("2"))
	s.Close()

	s2, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recs, _, truncated := s2.ShipLog(0, 1<<20)
	if truncated {
		t.Fatal("segment-backed history reported truncated")
	}
	var keys []string
	for _, r := range recs {
		op, err := r.Decode()
		if err != nil {
			t.Fatal(err)
		}
		if !op.Del && op.Epoch == 0 {
			keys = append(keys, string(op.Key))
		}
	}
	if len(keys) != 2 || keys[0] != "before" || keys[1] != "after" {
		t.Fatalf("shipped keys = %v, want [before after]", keys)
	}
}

func TestApplyBatchDurableAndSequenced(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	ops := []ReplOp{
		{Key: []byte("a"), Val: []byte("1")},
		{Key: []byte("b"), Val: []byte("2")},
		{Del: true, Key: []byte("a")},
	}
	if err := s.ApplyBatch(ops); err != nil {
		t.Fatal(err)
	}
	if s.Seq() != 3 {
		t.Fatalf("seq = %d, want 3", s.Seq())
	}
	if err := s.ApplyBatch([]ReplOp{{Epoch: 9}}); err == nil {
		t.Fatal("ApplyBatch must reject epoch ops")
	}
	s.Close()

	s2, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Has([]byte("a")) {
		t.Fatal("replicated delete lost")
	}
	if v, ok := s2.Get([]byte("b")); !ok || !bytes.Equal(v, []byte("2")) {
		t.Fatal("replicated put lost")
	}
	if s2.Seq() != 3 {
		t.Fatalf("recovered seq = %d, want 3", s2.Seq())
	}
}

func TestWALRetentionPrunesSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: SyncNever, RetainBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	val := make([]byte, 4096)
	for round := 0; round < 5; round++ {
		for i := 0; i < 16; i++ {
			s.Put([]byte(fmt.Sprintf("r%d-k%02d", round, i)), val)
		}
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	st, _ := s.DurabilityStats()
	s.Close()
	// A 1-byte budget keeps only the mandatory current-generation chain.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	segs := 0
	for _, e := range ents {
		if _, ok := parseSegmentName(e.Name()); ok {
			segs++
		}
	}
	if segs > 1 {
		t.Fatalf("retention kept %d archived segments with a 1-byte budget", segs)
	}
	if st.WALSegments != int64(segs) {
		t.Fatalf("stats report %d segments, dir has %d", st.WALSegments, segs)
	}
}

// TestCommitsProceedDuringCheckpoint is the streaming-checkpoint
// acceptance check: a checkpoint in flight (frozen at its snapshot
// fsync, store lock released) must not block concurrent commits.
func TestCommitsProceedDuringCheckpoint(t *testing.T) {
	dir := t.TempDir()
	g := &gateFS{FS: wal.OS, name: snapName + ".tmp",
		entered: make(chan struct{}), release: make(chan struct{})}
	s, err := Open(dir, Options{Sync: SyncNever, FS: g, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 2000; i++ {
		s.Put([]byte(fmt.Sprintf("seed%05d", i)), []byte("v"))
	}

	g.armed.Store(true)
	ckptDone := make(chan error, 1)
	go func() { ckptDone <- s.Checkpoint() }()
	<-g.entered // checkpoint is mid-pass, snapshot being synced

	// Commits must land while the checkpoint is in flight.
	putDone := make(chan error, 1)
	go func() {
		for i := 0; i < 100; i++ {
			if err := s.Put([]byte(fmt.Sprintf("live%03d", i)), []byte("w")); err != nil {
				putDone <- err
				return
			}
		}
		putDone <- nil
	}()
	select {
	case err := <-putDone:
		if err != nil {
			t.Fatalf("concurrent put: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("puts blocked behind an in-flight checkpoint")
	}

	close(g.release)
	if err := <-ckptDone; err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	st, _ := s.DurabilityStats()
	if st.LastCheckpointStallUs <= 0 {
		t.Error("checkpoint stall time not recorded")
	}
	// Everything — seeds and writes concurrent with the checkpoint —
	// must survive a restart.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 2100 {
		t.Fatalf("recovered %d keys, want 2100", s2.Len())
	}
}
