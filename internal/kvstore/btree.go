// Package kvstore is an embedded ordered key-value store: an in-memory
// B+tree over byte-string keys with optional write-ahead-log persistence.
// It plays the role BerkeleyDB Java Edition played in the paper's prototype
// (§VI: "uses BerkeleyDB Java Edition 3.3.69 for persistent storage of
// data") — each ORCHESTRA node keeps its share of tuples, index pages, and
// coordinator records in one of these stores.
package kvstore

import (
	"bytes"
	"sort"
)

// branching is the maximum number of keys per B+tree node. 64 keeps nodes
// within a couple of cache lines of key headers while keeping the tree
// shallow for millions of entries.
const branching = 64

type node struct {
	leaf     bool
	keys     [][]byte
	vals     [][]byte // leaves only; parallel to keys
	children []*node  // internal only; len(children) == len(keys)+1
	next     *node    // leaf chain for range scans
}

func (n *node) search(key []byte) int {
	return sort.Search(len(n.keys), func(i int) bool {
		return bytes.Compare(n.keys[i], key) >= 0
	})
}

// btree is the core in-memory structure; it is not safe for concurrent use
// (Store adds locking).
type btree struct {
	root *node
	size int
}

func newBtree() *btree {
	return &btree{root: &node{leaf: true}}
}

// get returns the value and whether the key exists.
func (t *btree) get(key []byte) ([]byte, bool) {
	n := t.root
	for !n.leaf {
		i := n.search(key)
		if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
			i++ // keys equal to the separator live in the right child
		}
		n = n.children[i]
	}
	i := n.search(key)
	if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
		return n.vals[i], true
	}
	return nil, false
}

// put inserts or replaces; returns true if the key was new.
func (t *btree) put(key, val []byte) bool {
	k := append([]byte(nil), key...)
	v := append([]byte(nil), val...)
	inserted, splitKey, splitNode := t.insert(t.root, k, v)
	if splitNode != nil {
		newRoot := &node{
			leaf:     false,
			keys:     [][]byte{splitKey},
			children: []*node{t.root, splitNode},
		}
		t.root = newRoot
	}
	if inserted {
		t.size++
	}
	return inserted
}

// insert descends into n; on child split, the new right sibling and its
// separator key bubble up.
func (t *btree) insert(n *node, key, val []byte) (inserted bool, upKey []byte, upNode *node) {
	if n.leaf {
		i := n.search(key)
		if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
			n.vals[i] = val
			return false, nil, nil
		}
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.vals = append(n.vals, nil)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = val
		if len(n.keys) > branching {
			upKey, upNode = t.splitLeaf(n)
		}
		return true, upKey, upNode
	}

	i := n.search(key)
	if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
		i++
	}
	inserted, childKey, childNode := t.insert(n.children[i], key, val)
	if childNode != nil {
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = childKey
		n.children = append(n.children, nil)
		copy(n.children[i+2:], n.children[i+1:])
		n.children[i+1] = childNode
		if len(n.keys) > branching {
			upKey, upNode = t.splitInternal(n)
		}
	}
	return inserted, upKey, upNode
}

func (t *btree) splitLeaf(n *node) ([]byte, *node) {
	mid := len(n.keys) / 2
	right := &node{
		leaf: true,
		keys: append([][]byte(nil), n.keys[mid:]...),
		vals: append([][]byte(nil), n.vals[mid:]...),
		next: n.next,
	}
	n.keys = n.keys[:mid:mid]
	n.vals = n.vals[:mid:mid]
	n.next = right
	return right.keys[0], right
}

func (t *btree) splitInternal(n *node) ([]byte, *node) {
	mid := len(n.keys) / 2
	upKey := n.keys[mid]
	right := &node{
		leaf:     false,
		keys:     append([][]byte(nil), n.keys[mid+1:]...),
		children: append([]*node(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return upKey, right
}

// delete removes a key; returns whether it existed. Deletion is lazy: leaves
// may underflow but remain valid, which suits ORCHESTRA's log-structured,
// insert-dominated workload (§IV: instead of replacing a tuple we record a
// new version; deletions are rare).
func (t *btree) delete(key []byte) bool {
	n := t.root
	for !n.leaf {
		i := n.search(key)
		if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
			i++
		}
		n = n.children[i]
	}
	i := n.search(key)
	if i >= len(n.keys) || !bytes.Equal(n.keys[i], key) {
		return false
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	t.size--
	return true
}

// leafFor returns the leaf that would contain key, for scan starts.
func (t *btree) leafFor(key []byte) *node {
	n := t.root
	for !n.leaf {
		i := n.search(key)
		if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
			i++
		}
		n = n.children[i]
	}
	return n
}

// scan calls fn for each pair with lo <= key < hi in key order; nil lo means
// from the start, nil hi means to the end. fn returning false stops the scan.
func (t *btree) scan(lo, hi []byte, fn func(k, v []byte) bool) {
	var n *node
	var i int
	if lo == nil {
		n = t.root
		for !n.leaf {
			n = n.children[0]
		}
		i = 0
	} else {
		n = t.leafFor(lo)
		i = n.search(lo)
	}
	for n != nil {
		for ; i < len(n.keys); i++ {
			if hi != nil && bytes.Compare(n.keys[i], hi) >= 0 {
				return
			}
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.next
		i = 0
	}
}

// Iterator is a forward cursor over the tree's pairs in key order, with
// O(depth) repositioning via Seek — the primitive sparse merge walks use to
// skip whole subtrees between wanted keys instead of visiting every pair.
// An Iterator is only valid while the tree is unmodified (Store.Iter holds
// the read lock for the callback's duration).
type Iterator struct {
	t *btree
	n *node
	i int
}

// Valid reports whether the iterator is positioned on a pair.
func (it *Iterator) Valid() bool { return it.n != nil }

// Key returns the current pair's key. The slice is the store's own: it is
// immutable and may be retained read-only (see Store.Scan's contract).
func (it *Iterator) Key() []byte { return it.n.keys[it.i] }

// Value returns the current pair's value, under the same contract as Key.
func (it *Iterator) Value() []byte { return it.n.vals[it.i] }

// Next advances to the next pair in key order.
func (it *Iterator) Next() {
	it.i++
	it.skipExhausted()
}

// skipExhausted walks the leaf chain past empty or exhausted leaves (lazy
// deletion can leave empty leaves in the chain).
func (it *Iterator) skipExhausted() {
	for it.n != nil && it.i >= len(it.n.keys) {
		it.n = it.n.next
		it.i = 0
	}
}

// Seek positions the iterator at the first pair with key >= key,
// descending from the root (O(depth), independent of the current
// position). Seeking backwards is legal; nil seeks to the first pair.
func (it *Iterator) Seek(key []byte) {
	if key == nil {
		n := it.t.root
		for !n.leaf {
			n = n.children[0]
		}
		it.n, it.i = n, 0
	} else {
		it.n = it.t.leafFor(key)
		it.i = it.n.search(key)
	}
	it.skipExhausted()
}

// iter returns an unpositioned iterator; call Seek before use.
func (t *btree) iter() Iterator { return Iterator{t: t} }

// depth returns the tree height (for tests and stats).
func (t *btree) depth() int {
	d := 1
	n := t.root
	for !n.leaf {
		d++
		n = n.children[0]
	}
	return d
}
