package kvstore

import (
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"orchestra/internal/wal"
)

// Archived WAL segments. A checkpoint seals the live log by renaming it
// to store.wal.<gen> (zero-padded hex, so lexical order is generation
// order) and continues appending into a fresh store.wal at gen+1.
// Segments with gen >= the snapshot's generation are required for
// recovery (the snapshot may not have been published before a crash);
// older segments are pure retention — kept within Options.RetainBytes
// so a restarted node can re-seed its shipping ring — and are pruned
// oldest-first beyond that budget.

const segSuffixLen = 16 // zero-padded hex generation

func segmentName(gen uint64) string {
	return fmt.Sprintf("%s.%016x", walName, gen)
}

func parseSegmentName(name string) (uint64, bool) {
	prefix := walName + "."
	if !strings.HasPrefix(name, prefix) || len(name) != len(prefix)+segSuffixLen {
		return 0, false
	}
	gen, err := strconv.ParseUint(name[len(prefix):], 16, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

// listSegments returns the archived segment generations in dir,
// ascending. A missing directory is an empty list.
func listSegments(fsys wal.FS, dir string) ([]uint64, error) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var gens []uint64
	for _, name := range names {
		if gen, ok := parseSegmentName(name); ok {
			gens = append(gens, gen)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

func (s *Store) segPath(gen uint64) string {
	return filepath.Join(s.dir, segmentName(gen))
}

// pruneSegments deletes archived segments no longer needed: every
// segment with gen >= keepFrom is required for recovery and always
// kept; older ones are retention-only and kept newest-first within the
// RetainBytes budget. Best effort — a segment that cannot be statted or
// removed is skipped (recovery tolerates stale retention segments).
func (s *Store) pruneSegments(keepFrom uint64) {
	gens, err := listSegments(s.fsys, s.dir)
	if err != nil {
		return
	}
	budget := s.opts.RetainBytes
	var keepBytes int64
	var keepCount int64
	// Walk newest-first, spending the budget; delete once it is gone.
	for i := len(gens) - 1; i >= 0; i-- {
		gen := gens[i]
		path := s.segPath(gen)
		fi, err := s.fsys.Stat(path)
		if err != nil {
			continue
		}
		if gen >= keepFrom {
			keepBytes += fi.Size()
			keepCount++
			continue
		}
		if budget > 0 && keepBytes+fi.Size() <= budget {
			keepBytes += fi.Size()
			keepCount++
			continue
		}
		if s.fsys.Remove(path) != nil {
			keepBytes += fi.Size()
			keepCount++
		}
	}
	s.segBytes.Store(keepBytes)
	s.segCount.Store(keepCount)
}

// readSegment loads and validates one sealed segment. Unlike the live
// log, a sealed segment was fsynced before the rename that archived it,
// so a torn tail is corruption, not a crash artifact.
func (s *Store) readSegment(gen uint64) (*wal.Contents, error) {
	path := s.segPath(gen)
	c, err := wal.ReadAll(s.fsys, path)
	if err != nil {
		return nil, err
	}
	if c.Missing {
		return nil, fmt.Errorf("segment %s missing or headerless", segmentName(gen))
	}
	if c.TornBytes > 0 {
		return nil, fmt.Errorf("segment %s has %d torn trailing bytes", segmentName(gen), c.TornBytes)
	}
	if c.Header.Gen != gen {
		return nil, fmt.Errorf("segment %s claims generation %d", segmentName(gen), c.Header.Gen)
	}
	return c, nil
}
