package kvstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestPutGet(t *testing.T) {
	s := NewMemory()
	if err := s.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, ok := s.Get([]byte("k1"))
	if !ok || string(v) != "v1" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if _, ok := s.Get([]byte("missing")); ok {
		t.Error("missing key found")
	}
	// Replace.
	if err := s.Put([]byte("k1"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	v, _ = s.Get([]byte("k1"))
	if string(v) != "v2" {
		t.Errorf("after replace Get = %q", v)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

func TestDelete(t *testing.T) {
	s := NewMemory()
	s.Put([]byte("a"), []byte("1"))
	ok, err := s.Delete([]byte("a"))
	if err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if s.Has([]byte("a")) {
		t.Error("key still present after delete")
	}
	ok, _ = s.Delete([]byte("a"))
	if ok {
		t.Error("second delete reported existing")
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestValueIsolation(t *testing.T) {
	s := NewMemory()
	val := []byte("mutable")
	s.Put([]byte("k"), val)
	val[0] = 'X'
	got, _ := s.Get([]byte("k"))
	if string(got) != "mutable" {
		t.Error("store aliases caller's value slice")
	}
	got[0] = 'Y'
	got2, _ := s.Get([]byte("k"))
	if string(got2) != "mutable" {
		t.Error("returned slice aliases stored value")
	}
}

func TestScanOrderedRange(t *testing.T) {
	s := NewMemory()
	keys := []string{"b", "d", "a", "c", "e"}
	for _, k := range keys {
		s.Put([]byte(k), []byte("v"+k))
	}
	var got []string
	s.Scan([]byte("b"), []byte("e"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	want := []string{"b", "c", "d"}
	if len(got) != len(want) {
		t.Fatalf("scan got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("scan[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestScanFullAndEarlyStop(t *testing.T) {
	s := NewMemory()
	for i := 0; i < 100; i++ {
		s.Put([]byte(fmt.Sprintf("key%03d", i)), []byte{byte(i)})
	}
	n := 0
	s.Scan(nil, nil, func(k, v []byte) bool {
		n++
		return true
	})
	if n != 100 {
		t.Errorf("full scan visited %d", n)
	}
	n = 0
	s.Scan(nil, nil, func(k, v []byte) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestScanPrefix(t *testing.T) {
	s := NewMemory()
	s.Put([]byte("aa1"), nil)
	s.Put([]byte("aa2"), nil)
	s.Put([]byte("ab1"), nil)
	s.Put([]byte("b"), nil)
	var got []string
	s.ScanPrefix([]byte("aa"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != 2 || got[0] != "aa1" || got[1] != "aa2" {
		t.Errorf("ScanPrefix(aa) = %v", got)
	}
	// Prefix of all 0xFF must scan to the end without panicking.
	s.Put([]byte{0xFF, 0xFF, 0x01}, nil)
	count := 0
	s.ScanPrefix([]byte{0xFF, 0xFF}, func(k, v []byte) bool {
		count++
		return true
	})
	if count != 1 {
		t.Errorf("ScanPrefix(ff ff) = %d entries", count)
	}
	// Empty prefix = full scan.
	count = 0
	s.ScanPrefix(nil, func(k, v []byte) bool { count++; return true })
	if count != 5 {
		t.Errorf("ScanPrefix(nil) = %d entries", count)
	}
}

func TestLargeInsertMaintainsOrderAndDepth(t *testing.T) {
	s := NewMemory()
	const n = 50000
	r := rand.New(rand.NewSource(1))
	perm := r.Perm(n)
	for _, i := range perm {
		s.Put([]byte(fmt.Sprintf("%08d", i)), []byte{1})
	}
	if s.Len() != n {
		t.Fatalf("Len = %d", s.Len())
	}
	prev := []byte(nil)
	count := 0
	s.Scan(nil, nil, func(k, v []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("scan out of order: %s after %s", k, prev)
		}
		prev = append(prev[:0], k...)
		count++
		return true
	})
	if count != n {
		t.Fatalf("scan count %d", count)
	}
	if d := s.Depth(); d > 5 {
		t.Errorf("tree depth %d too deep for %d keys with branching %d", d, n, branching)
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	s := NewMemory()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				s.Put([]byte(fmt.Sprintf("w%d-%05d", w, i)), []byte("x"))
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Scan(nil, nil, func(k, v []byte) bool { return true })
				s.Get([]byte("w0-00000"))
			}
		}()
	}
	wg.Wait()
	if s.Len() != 8000 {
		t.Errorf("Len = %d, want 8000", s.Len())
	}
}

// --- persistence ---

func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Delete([]byte("k0007"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 499 {
		t.Fatalf("recovered Len = %d, want 499", s2.Len())
	}
	v, ok := s2.Get([]byte("k0123"))
	if !ok || string(v) != "val-123" {
		t.Errorf("recovered k0123 = %q, %v", v, ok)
	}
	if s2.Has([]byte("k0007")) {
		t.Error("deleted key resurrected")
	}
}

func TestCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		s.Put([]byte(fmt.Sprintf("k%03d", i)), bytes.Repeat([]byte("v"), 50))
	}
	before := s.WALSize()
	if before < 1000 {
		t.Fatalf("WAL should have grown, size = %d", before)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if after := s.WALSize(); after >= before || after > 64 {
		t.Errorf("WAL size after checkpoint = %d (was %d), want header only", after, before)
	}
	// More writes after checkpoint, then recover from snapshot + wal.
	s.Put([]byte("after"), []byte("checkpoint"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 101 {
		t.Fatalf("recovered Len = %d, want 101", s2.Len())
	}
	if v, ok := s2.Get([]byte("after")); !ok || string(v) != "checkpoint" {
		t.Error("post-checkpoint write lost")
	}
}

func TestTornWALTailIsDiscarded(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		s.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("value"))
	}
	s.Close()

	// Corrupt the tail: chop some bytes off the WAL.
	walPath := filepath.Join(dir, "store.wal")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatalf("recovery from torn WAL failed: %v", err)
	}
	defer s2.Close()
	// The last record is lost, everything before survives.
	if s2.Len() != 49 {
		t.Errorf("recovered Len = %d, want 49", s2.Len())
	}
	if !s2.Has([]byte("k48")) {
		t.Error("k48 should have survived")
	}
	if s2.Has([]byte("k49")) {
		t.Error("torn record should be gone")
	}
}

func TestCorruptWALRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, Options{Sync: SyncNever})
	for i := 0; i < 10; i++ {
		s.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	s.Close()
	walPath := filepath.Join(dir, "store.wal")
	data, _ := os.ReadFile(walPath)
	data[len(data)/2] ^= 0xFF // flip a bit mid-log
	os.WriteFile(walPath, data, 0o644)
	s2, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer s2.Close()
	if s2.Len() >= 10 {
		t.Errorf("corrupted log replayed fully: len=%d", s2.Len())
	}
}

func TestSyncEveryWriteMode(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// --- property test against a model ---

type opKind uint8

type modelOp struct {
	Kind opKind // 0 put, 1 delete, 2 get
	Key  uint16 // small key domain to force collisions
	Val  uint32
}

func TestPropMatchesMapModel(t *testing.T) {
	f := func(ops []modelOp) bool {
		s := NewMemory()
		model := map[string]string{}
		for _, op := range ops {
			k := []byte(fmt.Sprintf("key-%05d", op.Key%512))
			switch op.Kind % 3 {
			case 0:
				v := []byte(fmt.Sprintf("val-%d", op.Val))
				s.Put(k, v)
				model[string(k)] = string(v)
			case 1:
				ok, _ := s.Delete(k)
				_, inModel := model[string(k)]
				if ok != inModel {
					return false
				}
				delete(model, string(k))
			case 2:
				v, ok := s.Get(k)
				mv, inModel := model[string(k)]
				if ok != inModel || (ok && string(v) != mv) {
					return false
				}
			}
		}
		if s.Len() != len(model) {
			return false
		}
		// Full scan must equal the sorted model.
		var modelKeys []string
		for k := range model {
			modelKeys = append(modelKeys, k)
		}
		sort.Strings(modelKeys)
		i := 0
		match := true
		s.Scan(nil, nil, func(k, v []byte) bool {
			if i >= len(modelKeys) || string(k) != modelKeys[i] || string(v) != model[modelKeys[i]] {
				match = false
				return false
			}
			i++
			return true
		})
		return match && i == len(modelKeys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropRangeScanMatchesModel(t *testing.T) {
	f := func(keys []uint16, loRaw, hiRaw uint16) bool {
		s := NewMemory()
		model := map[string]bool{}
		for _, k := range keys {
			key := fmt.Sprintf("%05d", k)
			s.Put([]byte(key), []byte("x"))
			model[key] = true
		}
		lo := fmt.Sprintf("%05d", loRaw)
		hi := fmt.Sprintf("%05d", hiRaw)
		if lo > hi {
			lo, hi = hi, lo
		}
		var got []string
		s.Scan([]byte(lo), []byte(hi), func(k, v []byte) bool {
			got = append(got, string(k))
			return true
		})
		var want []string
		for k := range model {
			if k >= lo && k < hi {
				want = append(want, k)
			}
		}
		sort.Strings(want)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestGetRetainedImmutableAcrossMutations pins the key/value reuse
// contract the engine's zero-copy scan decode relies on: slices returned
// by GetRetained (and passed to Scan callbacks) keep their contents even
// after the key is overwritten or deleted — replacement swaps the stored
// slice wholesale, it never mutates in place.
func TestGetRetainedImmutableAcrossMutations(t *testing.T) {
	s := NewMemory()
	if err := s.Put([]byte("k"), []byte("original")); err != nil {
		t.Fatal(err)
	}
	v1, ok := s.GetRetained([]byte("k"))
	if !ok || string(v1) != "original" {
		t.Fatalf("GetRetained = %q, %v", v1, ok)
	}
	var scanned []byte
	s.Scan(nil, nil, func(k, v []byte) bool {
		scanned = v
		return true
	})
	if err := s.Put([]byte("k"), []byte("replaced")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if string(v1) != "original" || string(scanned) != "original" {
		t.Fatalf("retained slices mutated: get=%q scan=%q", v1, scanned)
	}
	if _, ok := s.GetRetained([]byte("k")); ok {
		t.Fatal("deleted key still resolves")
	}
}
