package kvstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// collectIter drains the iterator from a seek position into key/value
// copies, bounded by limit (-1: unbounded).
func collectIter(it *Iterator, seek []byte, limit int) (keys, vals [][]byte) {
	for it.Seek(seek); it.Valid(); it.Next() {
		keys = append(keys, append([]byte(nil), it.Key()...))
		vals = append(vals, append([]byte(nil), it.Value()...))
		if limit >= 0 && len(keys) >= limit {
			break
		}
	}
	return keys, vals
}

func TestIteratorSeekBasic(t *testing.T) {
	s := NewMemory()
	const n = 500 // several leaf splits deep
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("k%04d", i*2)) // even keys only
		if err := s.Put(key, []byte(fmt.Sprintf("v%d", i*2))); err != nil {
			t.Fatal(err)
		}
	}
	s.Iter(func(it *Iterator) {
		// Seek to an existing key lands on it.
		it.Seek([]byte("k0100"))
		if !it.Valid() || string(it.Key()) != "k0100" {
			t.Fatalf("seek existing: got %q", it.Key())
		}
		if string(it.Value()) != "v100" {
			t.Fatalf("seek existing value: got %q", it.Value())
		}
		// Seek between keys lands on the next greater key.
		it.Seek([]byte("k0101"))
		if !it.Valid() || string(it.Key()) != "k0102" {
			t.Fatalf("seek between: got %q", it.Key())
		}
		// Seek before the first key lands on the first.
		it.Seek([]byte("a"))
		if !it.Valid() || string(it.Key()) != "k0000" {
			t.Fatalf("seek before first: got %q", it.Key())
		}
		// nil seeks to the first pair too.
		it.Seek(nil)
		if !it.Valid() || string(it.Key()) != "k0000" {
			t.Fatalf("seek nil: got %q", it.Key())
		}
		// Seek past the last key invalidates.
		it.Seek([]byte("z"))
		if it.Valid() {
			t.Fatalf("seek past last: still valid at %q", it.Key())
		}
		// Backward re-seek after exhaustion works (root descent, not chain).
		it.Seek([]byte("k0500"))
		if !it.Valid() || string(it.Key()) != "k0500" {
			t.Fatalf("re-seek backward: got %q", it.Key())
		}
	})
}

func TestIteratorNextMatchesScan(t *testing.T) {
	s := NewMemory()
	for i := 0; i < 1000; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%05d", i)), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var scanKeys [][]byte
	s.Scan(nil, nil, func(k, v []byte) bool {
		scanKeys = append(scanKeys, append([]byte(nil), k...))
		return true
	})
	var iterKeys [][]byte
	s.Iter(func(it *Iterator) {
		iterKeys, _ = collectIter(it, nil, -1)
	})
	if len(scanKeys) != len(iterKeys) {
		t.Fatalf("scan saw %d keys, iter %d", len(scanKeys), len(iterKeys))
	}
	for i := range scanKeys {
		if !bytes.Equal(scanKeys[i], iterKeys[i]) {
			t.Fatalf("key %d: scan %q, iter %q", i, scanKeys[i], iterKeys[i])
		}
	}
}

func TestIteratorSeekAfterDeletes(t *testing.T) {
	s := NewMemory()
	for i := 0; i < 300; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Delete a whole contiguous run, potentially emptying leaves (deletion
	// is lazy: underflowed leaves stay in the chain).
	for i := 50; i < 200; i++ {
		if _, err := s.Delete([]byte(fmt.Sprintf("k%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Iter(func(it *Iterator) {
		it.Seek([]byte("k0050"))
		if !it.Valid() || string(it.Key()) != "k0200" {
			t.Fatalf("seek into deleted run: got %q", it.Key())
		}
		// Walk across the deleted gap.
		it.Seek([]byte("k0049"))
		if string(it.Key()) != "k0049" {
			t.Fatalf("got %q", it.Key())
		}
		it.Next()
		if !it.Valid() || string(it.Key()) != "k0200" {
			t.Fatalf("next across gap: got %q", it.Key())
		}
	})
}

// TestIteratorSeekProperty cross-checks random seeks against the sorted
// key list over randomly built (insert/delete) trees.
func TestIteratorSeekProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 20; round++ {
		s := NewMemory()
		live := make(map[string]bool)
		nOps := rng.Intn(2000)
		for i := 0; i < nOps; i++ {
			key := fmt.Sprintf("%06x", rng.Intn(4096))
			if rng.Intn(4) == 0 {
				if _, err := s.Delete([]byte(key)); err != nil {
					t.Fatal(err)
				}
				delete(live, key)
			} else {
				if err := s.Put([]byte(key), []byte(key)); err != nil {
					t.Fatal(err)
				}
				live[key] = true
			}
		}
		var sorted [][]byte
		s.Scan(nil, nil, func(k, v []byte) bool {
			sorted = append(sorted, append([]byte(nil), k...))
			return true
		})
		if len(sorted) != len(live) {
			t.Fatalf("round %d: scan %d keys, want %d", round, len(sorted), len(live))
		}
		s.Iter(func(it *Iterator) {
			for probe := 0; probe < 200; probe++ {
				target := []byte(fmt.Sprintf("%06x", rng.Intn(4200)))
				it.Seek(target)
				// Expected: first sorted key >= target.
				var want []byte
				for _, k := range sorted {
					if bytes.Compare(k, target) >= 0 {
						want = k
						break
					}
				}
				if want == nil {
					if it.Valid() {
						t.Fatalf("round %d: seek %q: want exhausted, got %q", round, target, it.Key())
					}
					continue
				}
				if !it.Valid() || !bytes.Equal(it.Key(), want) {
					got := []byte("<exhausted>")
					if it.Valid() {
						got = it.Key()
					}
					t.Fatalf("round %d: seek %q: want %q, got %q", round, target, want, got)
				}
			}
		})
	}
}

// FuzzIteratorSeek feeds arbitrary op tapes (put/delete/seek) and checks
// every seek result against a model kept as a sorted scan.
func FuzzIteratorSeek(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 0, 3, 2, 1})
	f.Add([]byte("\x00a\x01a\x02a\x00b\x02c"))
	f.Fuzz(func(t *testing.T, tape []byte) {
		s := NewMemory()
		var seeks [][]byte
		for i := 0; i+1 < len(tape); i += 2 {
			op, x := tape[i]%3, tape[i+1]
			key := []byte{x >> 4, x & 0xf}
			switch op {
			case 0:
				if err := s.Put(key, []byte{x}); err != nil {
					t.Fatal(err)
				}
			case 1:
				if _, err := s.Delete(key); err != nil {
					t.Fatal(err)
				}
			case 2:
				seeks = append(seeks, key)
			}
		}
		var sorted [][]byte
		s.Scan(nil, nil, func(k, v []byte) bool {
			sorted = append(sorted, append([]byte(nil), k...))
			return true
		})
		s.Iter(func(it *Iterator) {
			for _, target := range seeks {
				it.Seek(target)
				var want []byte
				for _, k := range sorted {
					if bytes.Compare(k, target) >= 0 {
						want = k
						break
					}
				}
				if want == nil {
					if it.Valid() {
						t.Fatalf("seek %q: want exhausted, got %q", target, it.Key())
					}
					continue
				}
				if !it.Valid() || !bytes.Equal(it.Key(), want) {
					t.Fatalf("seek %q: want %q", target, want)
				}
			}
		})
	})
}
