package kvstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"orchestra/internal/obs"
	"orchestra/internal/wal"
)

// Store is a concurrency-safe ordered key-value store, optionally durable
// via a write-ahead log plus snapshot checkpoints (internal/wal).
//
// Durability model: every mutation is appended to the WAL and applied in
// memory under the write lock, then committed — under SyncAlways the
// commit group-batches concurrent writers into one fsync, so a mutation
// is acknowledged only once it (or a snapshot covering it) is on disk.
// Checkpoint() seals the live log as an archived segment (a brief
// write-lock window), then streams a fuzzy snapshot from the tree in
// chunked read-lock acquisitions, so commits keep proceeding while a
// multi-MB checkpoint runs. Open replays snapshot + the contiguous
// segment chain + live WAL, truncating a torn tail, rejecting corrupt
// records by CRC, and refusing to start when the chain's generations,
// sequences, or epochs disagree — per the reliable-storage contract of
// §IV. Every mutation also carries a global sequence number retained in
// a bounded ring for WAL-shipping replication (see repl.go).
type Store struct {
	mu   sync.RWMutex
	tree *btree

	// Durable state; zero/nil for memory stores.
	dir  string
	fsys wal.FS
	log  *wal.Log
	opts Options

	gen   atomic.Uint64 // generation of the live log (>= snapshot generation)
	epoch atomic.Uint64 // highest durable epoch
	seq   atomic.Uint64 // global mutation sequence (see repl.go)
	repl  replRing      // recent records retained for WAL shipping

	// Highest epoch appended to the WAL but possibly not yet committed,
	// and its LSN; guarded by mu. Checkpoint must cover this epoch in the
	// segment it seals: rotation marks every appended LSN durable, so a
	// pending epoch record dropped from the log without reaching the disk
	// would be acknowledged by a concurrent SetEpoch yet exist nowhere.
	pendingEpoch    uint64
	pendingEpochLSN int64

	checkpointing atomic.Bool
	ckptMu        sync.Mutex // serializes checkpoint passes

	// Recovery + snapshot stats (see DurabilityStats).
	replayedRecords   uint64
	replayTornBytes   int64
	recoveryUs        int64
	snapshots         atomic.Uint64
	snapshotErrs      atomic.Uint64
	lastSnapshotBytes atomic.Int64
	lastSnapshotUs    atomic.Int64
	lastStallUs       atomic.Int64 // write-lock hold of the last checkpoint rotation
	stallUsTotal      atomic.Int64
	segBytes          atomic.Int64
	segCount          atomic.Int64

	mFsyncUs *obs.Histogram
	mFsyncs  *obs.Counter
	mBatch   *obs.Histogram
	mSnapUs  *obs.Histogram
	mStallUs *obs.Histogram
}

// SyncMode re-exports the WAL sync policy for callers configuring a store.
type SyncMode = wal.SyncMode

const (
	SyncAlways   = wal.SyncAlways
	SyncInterval = wal.SyncInterval
	SyncNever    = wal.SyncNever
)

// DefaultCheckpointBytes is the WAL size that triggers a background
// checkpoint when Options.CheckpointBytes is unset.
const DefaultCheckpointBytes = 64 << 20

// DefaultRetainBytes is the default WAL-shipping retention budget: the
// in-memory ring of recent records (and, for durable stores, archived
// segments on disk) kept so lagging replicas can catch up from this
// node's log instead of a full state transfer.
const DefaultRetainBytes = 32 << 20

// Options configures a durable store.
type Options struct {
	// Sync selects when acknowledged writes reach the disk: SyncAlways
	// (group-commit fsync per write, the default), SyncInterval
	// (periodic), or SyncNever (OS page cache).
	Sync SyncMode
	// SyncInterval is the period for SyncInterval mode (default 50ms).
	SyncInterval time.Duration
	// FS is the filesystem seam; nil means the real one. Tests inject
	// wal.FaultFS here.
	FS wal.FS
	// Registry receives the store's durability metrics; nil creates a
	// private one.
	Registry *obs.Registry
	// CheckpointBytes is the WAL size that triggers a background
	// snapshot + log truncation. 0 means DefaultCheckpointBytes;
	// negative disables automatic checkpoints.
	CheckpointBytes int64
	// RetainBytes bounds the WAL-shipping retention (the in-memory
	// record ring plus archived on-disk segments older than the current
	// snapshot). 0 means DefaultRetainBytes; negative disables
	// retention, forcing lagging replicas onto the state-transfer path.
	RetainBytes int64
	// Logf reports background checkpoint failures (default log.Printf).
	Logf func(format string, args ...any)
}

// KV is one pair for PutBatch.
type KV struct {
	Key []byte
	Val []byte
}

const (
	walName  = "store.wal"
	snapName = "store.snap"

	opPut    = byte(1)
	opDelete = byte(2)
	opEpoch  = byte(3)
	// opPutLocal is a put that never enters the shipping seq/ring:
	// durable node-private bookkeeping invisible to replication.
	opPutLocal = byte(4)
)

// NewMemory returns a volatile in-memory store. Memory stores still
// track mutation sequences and retain recent records for WAL shipping —
// a replica's catch-up source does not have to be durable.
func NewMemory() *Store {
	s := &Store{tree: newBtree()}
	s.repl.max = DefaultRetainBytes
	return s
}

// Open returns a durable store rooted at dir, creating it if needed and
// recovering any existing snapshot, archived WAL segments, and live
// WAL. Recovery is paranoid: torn live-log tails are truncated,
// CRC-failing records rejected, and any break in the generation /
// sequence / epoch chain between snapshot, segments, and live log
// refuses to start rather than serve silently wrong data.
func Open(dir string, opts Options) (*Store, error) {
	t0 := time.Now()
	if opts.FS == nil {
		opts.FS = wal.OS
	}
	if opts.Registry == nil {
		opts.Registry = obs.NewRegistry()
	}
	if opts.CheckpointBytes == 0 {
		opts.CheckpointBytes = DefaultCheckpointBytes
	}
	if opts.RetainBytes == 0 {
		opts.RetainBytes = DefaultRetainBytes
	}
	if opts.Logf == nil {
		opts.Logf = log.Printf
	}
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("kvstore: create dir: %w", err)
	}
	s := &Store{tree: newBtree(), dir: dir, fsys: opts.FS, opts: opts}
	s.repl.max = opts.RetainBytes
	reg := opts.Registry
	s.mFsyncUs = reg.Histogram("orchestra_wal_fsync_us")
	s.mFsyncs = reg.Counter("orchestra_wal_fsyncs_total")
	s.mBatch = reg.Histogram("orchestra_wal_group_commit_records")
	s.mSnapUs = reg.Histogram("orchestra_snapshot_us")
	s.mStallUs = reg.Histogram("orchestra_checkpoint_stall_us")

	// 1. Snapshot: the durable base state.
	var gen, epoch, seq uint64
	snap, err := wal.ReadSnapshot(s.fsys, filepath.Join(dir, snapName))
	if err != nil {
		return nil, fmt.Errorf("kvstore: refusing to start: %w", err)
	}
	if snap != nil {
		gen, epoch, seq = snap.Gen, snap.Epoch, snap.Seq
		if err := snap.Range(func(k, v []byte) error {
			s.tree.put(k, v)
			return nil
		}); err != nil {
			return nil, fmt.Errorf("kvstore: refusing to start: %w", err)
		}
	}

	// 2. Archived segments. Ones at or past the snapshot generation are
	// part of the recovery chain (the checkpoint that would have covered
	// them never published); older ones are shipping retention only.
	segGens, err := listSegments(s.fsys, dir)
	if err != nil {
		return nil, fmt.Errorf("kvstore: refusing to start: list segments: %w", err)
	}
	var chain []uint64
	for _, g := range segGens {
		if g >= gen {
			chain = append(chain, g)
		} else {
			// Retention-only segment: re-seed the shipping ring from it,
			// without touching the tree (its effects are in the snapshot).
			s.seedRing(g)
		}
	}

	// 3. Live log.
	walPath := filepath.Join(dir, walName)
	walOpts := wal.Options{
		Mode: opts.Sync, Interval: opts.SyncInterval,
		FsyncUs: s.mFsyncUs, Fsyncs: s.mFsyncs, BatchRecords: s.mBatch,
	}
	c, err := wal.ReadAll(s.fsys, walPath)
	if err != nil {
		return nil, fmt.Errorf("kvstore: refusing to start: %w", err)
	}

	// The recovery chain must be contiguous: segments gen, gen+1, ...
	// then the live log one generation past the last segment. Each link
	// must agree with the running sequence and epoch.
	replaySeg := func(g uint64) error {
		sc, serr := s.readSegment(g)
		if serr != nil {
			return serr
		}
		if sc.Header.BaseSeq != seq {
			return fmt.Errorf("segment %d starts at seq %d, expected %d", g, sc.Header.BaseSeq, seq)
		}
		if sc.Header.BaseEpoch != epoch {
			return fmt.Errorf("segment %d starts at epoch %d, expected %d", g, sc.Header.BaseEpoch, epoch)
		}
		for i, rec := range sc.Records {
			e, aerr := s.applyRecord(rec)
			if aerr != nil {
				return fmt.Errorf("segment %d record %d: %w", g, i, aerr)
			}
			if e > epoch {
				epoch = e
			}
			if rec.Op == opPutLocal {
				continue // node-private: outside the shipping sequence
			}
			seq++
			s.repl.push(ReplRecord{Seq: seq, Op: rec.Op, Payload: append([]byte(nil), rec.Payload...)})
		}
		s.replayedRecords += uint64(len(sc.Records))
		return nil
	}

	switch {
	case c.Missing && len(chain) == 0:
		// No log (or one torn before its header was durable — nothing
		// was ever acknowledged from it). Start fresh at the snapshot.
		s.log, err = wal.Reset(s.fsys, walPath, wal.Header{Gen: gen, BaseEpoch: epoch, BaseSeq: seq}, walOpts)
	case c.Missing:
		// Crash inside a rotation: the old log was archived but the new
		// live log never became durable (nothing was acknowledged from
		// it). Replay the sealed segments and continue past them.
		for i, g := range chain {
			if g != gen+uint64(i) {
				return nil, fmt.Errorf("kvstore: refusing to start: segment chain gap — have generation %d, expected %d", g, gen+uint64(i))
			}
			if err := replaySeg(g); err != nil {
				return nil, fmt.Errorf("kvstore: refusing to start: %w", err)
			}
		}
		gen = chain[len(chain)-1] + 1
		s.log, err = wal.Reset(s.fsys, walPath, wal.Header{Gen: gen, BaseEpoch: epoch, BaseSeq: seq}, walOpts)
	case c.Header.Gen < gen:
		// Stale log from before the last published snapshot (crash
		// between snapshot rename and log truncation): every record in
		// it is already covered by the snapshot.
		s.log, err = wal.Reset(s.fsys, walPath, wal.Header{Gen: gen, BaseEpoch: epoch, BaseSeq: seq}, walOpts)
	default:
		// Live log at or past the snapshot generation: replay the
		// segment chain up to it, then the live records.
		want := gen
		for _, g := range chain {
			if g >= c.Header.Gen {
				return nil, fmt.Errorf(
					"kvstore: refusing to start: segment generation %d is not older than the live log's %d", g, c.Header.Gen)
			}
			if g != want {
				return nil, fmt.Errorf("kvstore: refusing to start: segment chain gap — have generation %d, expected %d", g, want)
			}
			if err := replaySeg(g); err != nil {
				return nil, fmt.Errorf("kvstore: refusing to start: %w", err)
			}
			want = g + 1
		}
		if c.Header.Gen != want {
			return nil, fmt.Errorf(
				"kvstore: refusing to start: wal generation %d does not extend generation %d — an intermediate segment or the snapshot is missing",
				c.Header.Gen, want)
		}
		if c.Header.BaseEpoch != epoch {
			return nil, fmt.Errorf(
				"kvstore: refusing to start: wal base epoch %d does not match recovered epoch %d at generation %d",
				c.Header.BaseEpoch, epoch, c.Header.Gen)
		}
		if c.Header.BaseSeq != seq {
			return nil, fmt.Errorf(
				"kvstore: refusing to start: wal base seq %d does not match recovered seq %d at generation %d",
				c.Header.BaseSeq, seq, c.Header.Gen)
		}
		for i, rec := range c.Records {
			e, aerr := s.applyRecord(rec)
			if aerr != nil {
				return nil, fmt.Errorf("kvstore: refusing to start: wal record %d: %w", i, aerr)
			}
			if e > epoch {
				epoch = e
			}
			if rec.Op == opPutLocal {
				continue // node-private: outside the shipping sequence
			}
			seq++
			s.repl.push(ReplRecord{Seq: seq, Op: rec.Op, Payload: append([]byte(nil), rec.Payload...)})
		}
		gen = c.Header.Gen
		s.replayedRecords += uint64(len(c.Records))
		s.replayTornBytes = c.TornBytes
		s.log, err = wal.OpenAppend(s.fsys, walPath, c.Size, walOpts)
	}
	if err != nil {
		return nil, err
	}
	s.gen.Store(gen)
	s.epoch.Store(epoch)
	s.seq.Store(seq)
	s.pruneSegments(snapGen(snap))
	s.recoveryUs = time.Since(t0).Microseconds()

	reg.Counter("orchestra_recovery_replayed_records_total").Add(s.replayedRecords)
	reg.GaugeFunc("orchestra_wal_bytes", s.WALSize)
	reg.GaugeFunc("orchestra_store_epoch", func() int64 { return int64(s.epoch.Load()) })
	reg.GaugeFunc("orchestra_store_generation", func() int64 { return int64(s.gen.Load()) })
	reg.GaugeFunc("orchestra_store_seq", func() int64 { return int64(s.seq.Load()) })
	reg.GaugeFunc("orchestra_wal_segments", s.segCount.Load)
	reg.GaugeFunc("orchestra_wal_segment_bytes", s.segBytes.Load)
	reg.GaugeFunc("orchestra_recovery_us", func() int64 { return s.recoveryUs })
	return s, nil
}

func snapGen(snap *wal.Snapshot) uint64 {
	if snap == nil {
		return 0
	}
	return snap.Gen
}

// seedRing re-seeds the shipping ring from a retention-only segment
// (older than the current snapshot). Best effort: a segment that fails
// to parse cleanly is simply skipped — it only limits how far back this
// node can ship, never correctness.
func (s *Store) seedRing(gen uint64) {
	if s.opts.RetainBytes <= 0 {
		return
	}
	sc, err := s.readSegment(gen)
	if err != nil {
		return
	}
	seq := sc.Header.BaseSeq
	for _, rec := range sc.Records {
		if rec.Op == opPutLocal {
			continue // node-private: outside the shipping sequence
		}
		seq++
		s.repl.push(ReplRecord{Seq: seq, Op: rec.Op, Payload: append([]byte(nil), rec.Payload...)})
	}
}

// applyRecord replays one WAL record into the tree, returning the epoch
// it carries (0 for data records). A CRC-valid record with an unknown op
// means version skew — refuse rather than drop acknowledged writes.
func (s *Store) applyRecord(rec wal.Record) (uint64, error) {
	switch rec.Op {
	case opPut, opPutLocal:
		key, val, ok := decodePut(rec.Payload)
		if !ok {
			return 0, errors.New("malformed put payload")
		}
		s.tree.put(key, val)
	case opDelete:
		s.tree.delete(rec.Payload)
	case opEpoch:
		if len(rec.Payload) != 8 {
			return 0, errors.New("malformed epoch payload")
		}
		return binary.BigEndian.Uint64(rec.Payload), nil
	default:
		return 0, fmt.Errorf("unknown record op %d", rec.Op)
	}
	return 0, nil
}

// appendPut encodes an opPut payload: keyLen uvarint | key | val.
func appendPut(dst []byte, key, val []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(key)))
	dst = append(dst, key...)
	return append(dst, val...)
}

func decodePut(payload []byte) (key, val []byte, ok bool) {
	kl, m := binary.Uvarint(payload)
	// Overflow-safe bound check: kl can be near 2^64 in a corrupt record,
	// so compare it against the remaining length rather than adding to m.
	if m <= 0 || kl > uint64(len(payload)-m) {
		return nil, nil, false
	}
	return payload[m : uint64(m)+kl], payload[uint64(m)+kl:], true
}

// Close flushes, syncs, and closes the WAL. The store must not be used
// afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	return s.log.Close()
}

// Get returns a copy of the value for key.
func (s *Store) Get(key []byte) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.tree.get(key)
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// GetRetained returns the stored value for key without copying. The
// returned slice follows the store's immutability contract (see Scan): its
// contents are never mutated by the store, so callers may retain and read
// it indefinitely, but must not modify it. The allocation-free variant for
// hot read paths that decode large records (index pages) per query.
func (s *Store) GetRetained(key []byte) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.get(key)
}

// Has reports whether key exists.
func (s *Store) Has(key []byte) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.tree.get(key)
	return ok
}

// Put stores key → val (replacing any existing value). For a durable
// store it returns once the write is committed per the sync policy.
func (s *Store) Put(key, val []byte) error {
	s.mu.Lock()
	var lsn int64
	payload := appendPut(nil, key, val)
	if s.log != nil {
		var err error
		lsn, err = s.log.Append(opPut, payload)
		if err != nil {
			s.mu.Unlock()
			return err
		}
	}
	s.tree.put(key, val)
	s.noteAppend(opPut, payload)
	s.mu.Unlock()
	return s.commit(lsn)
}

// PutLocal stores key → val durably without assigning the write a
// shipping sequence: it replays from the WAL at recovery like any put
// but never enters the replication ring or the seq count. For
// node-private bookkeeping (per-peer repair markers) whose writes must
// not look like fresh mutations to peers — shipping them would make two
// otherwise-idle replicas ping-pong marker updates forever.
func (s *Store) PutLocal(key, val []byte) error {
	s.mu.Lock()
	var lsn int64
	if s.log != nil {
		var err error
		lsn, err = s.log.Append(opPutLocal, appendPut(nil, key, val))
		if err != nil {
			s.mu.Unlock()
			return err
		}
	}
	s.tree.put(key, val)
	s.mu.Unlock()
	return s.commit(lsn)
}

// PutBatch stores every pair, sharing one WAL commit (and so, under
// SyncAlways, at most one fsync) across the batch.
func (s *Store) PutBatch(kvs []KV) error {
	if len(kvs) == 0 {
		return nil
	}
	s.mu.Lock()
	var lsn int64
	for _, kv := range kvs {
		payload := appendPut(nil, kv.Key, kv.Val)
		if s.log != nil {
			var err error
			lsn, err = s.log.Append(opPut, payload)
			if err != nil {
				s.mu.Unlock()
				return err
			}
		}
		s.tree.put(kv.Key, kv.Val)
		s.noteAppend(opPut, payload)
	}
	s.mu.Unlock()
	return s.commit(lsn)
}

// Delete removes key if present; reports whether it existed.
func (s *Store) Delete(key []byte) (bool, error) {
	s.mu.Lock()
	var lsn int64
	payload := append([]byte(nil), key...)
	if s.log != nil {
		var err error
		lsn, err = s.log.Append(opDelete, payload)
		if err != nil {
			s.mu.Unlock()
			return false, err
		}
	}
	deleted := s.tree.delete(key)
	s.noteAppend(opDelete, payload)
	s.mu.Unlock()
	return deleted, s.commit(lsn)
}

// commit makes the record at lsn durable and may kick off a background
// checkpoint once the log has grown past the configured threshold.
func (s *Store) commit(lsn int64) error {
	if s.log == nil {
		return nil
	}
	if err := s.log.Commit(lsn); err != nil {
		return err
	}
	s.maybeCheckpoint()
	return nil
}

func (s *Store) maybeCheckpoint() {
	if s.opts.CheckpointBytes <= 0 || s.log.Size() < s.opts.CheckpointBytes {
		return
	}
	if !s.checkpointing.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.checkpointing.Store(false)
		if err := s.Checkpoint(); err != nil {
			s.opts.Logf("kvstore: background checkpoint: %v", err)
		}
	}()
}

// SetEpoch durably raises the store's epoch to at least e. Raising the
// epoch is the last step of a publish — it must not be acknowledged
// before it would survive a crash.
func (s *Store) SetEpoch(e uint64) error {
	if s.log == nil {
		s.mu.Lock()
		if e <= s.epoch.Load() {
			s.mu.Unlock()
			return nil
		}
		payload := make([]byte, 8)
		binary.BigEndian.PutUint64(payload, e)
		s.noteAppend(opEpoch, payload)
		storeMax(&s.epoch, e)
		s.mu.Unlock()
		return nil
	}
	s.mu.Lock()
	if e <= s.epoch.Load() {
		s.mu.Unlock()
		return nil
	}
	if e <= s.pendingEpoch {
		// A record covering e is already appended (by a concurrent raise
		// or one whose commit we interrupted); wait for its durability
		// rather than appending a duplicate.
		lsn := s.pendingEpochLSN
		s.mu.Unlock()
		if err := s.commit(lsn); err != nil {
			return err
		}
		storeMax(&s.epoch, e)
		return nil
	}
	payload := make([]byte, 8)
	binary.BigEndian.PutUint64(payload, e)
	lsn, err := s.log.Append(opEpoch, payload)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	s.pendingEpoch, s.pendingEpochLSN = e, lsn
	s.noteAppend(opEpoch, payload)
	s.mu.Unlock()
	if err := s.commit(lsn); err != nil {
		return err
	}
	storeMax(&s.epoch, e)
	return nil
}

// Epoch returns the highest epoch recorded in the store (0 if none).
func (s *Store) Epoch() uint64 { return s.epoch.Load() }

func storeMax(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Scan calls fn for every pair with lo <= key < hi in key order (nil bounds
// are open). fn must not mutate the store; returning false stops the scan.
//
// Key/value reuse contract: the slices passed to fn are the store's own —
// keys and values are copied once on Put and their contents are never
// mutated afterwards (replacement swaps the slice wholesale). Callers may
// therefore retain them read-only past the callback (the engine's scan
// pipeline aliases tuple-record bytes this way to decode without copying);
// they must never write into them.
func (s *Store) Scan(lo, hi []byte, fn func(k, v []byte) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.tree.scan(lo, hi, fn)
}

// Iter runs fn with a seekable forward iterator over the store, holding
// the read lock for the duration — fn must not mutate the store. The
// iterator starts unpositioned; call Seek first. Key/value slices follow
// Scan's immutability/retention contract. Compared to Scan, Iter lets a
// sparse consumer skip ahead in O(depth) instead of visiting every pair.
func (s *Store) Iter(fn func(it *Iterator)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	it := s.tree.iter()
	fn(&it)
}

// ScanPrefix scans all keys beginning with prefix.
func (s *Store) ScanPrefix(prefix []byte, fn func(k, v []byte) bool) {
	if len(prefix) == 0 {
		s.Scan(nil, nil, fn)
		return
	}
	hi := prefixEnd(prefix)
	s.Scan(prefix, hi, fn)
}

// prefixEnd returns the smallest key greater than every key with the given
// prefix, or nil if the prefix is all 0xFF.
func prefixEnd(prefix []byte) []byte {
	hi := append([]byte(nil), prefix...)
	for i := len(hi) - 1; i >= 0; i-- {
		if hi[i] != 0xFF {
			hi[i]++
			return hi[:i+1]
		}
	}
	return nil
}

// Len returns the number of keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.size
}

// Depth returns the B+tree height (diagnostics).
func (s *Store) Depth() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.depth()
}

// WALSize returns the current WAL length in bytes (0 for memory stores).
func (s *Store) WALSize() int64 {
	if s.log == nil {
		return 0
	}
	return s.log.Size()
}

// ckptChunk is how many pairs a streaming checkpoint copies per
// read-lock acquisition.
const ckptChunk = 1024

// Checkpoint seals the live log as an archived segment (a brief
// write-lock window — the only time commits stall), then streams a fuzzy
// snapshot of the tree to disk in chunked read-lock acquisitions and
// publishes it atomically. Mutations proceed concurrently with the
// snapshot pass; the snapshot may therefore include effects of records
// past its recorded sequence boundary, which recovery tolerates because
// replay is idempotent.
func (s *Store) Checkpoint() error {
	if s.log == nil {
		return nil
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()

	// Phase 1: rotate the log under the write lock. The boundary
	// (epoch, seq) is exact — both only advance under s.mu. The epoch
	// must cover a pending raise still parked in commit: rotation marks
	// every appended LSN durable, so the sealed segment carries it.
	t0 := time.Now()
	s.mu.Lock()
	oldGen := s.gen.Load()
	newGen := oldGen + 1
	epoch := s.epoch.Load()
	if s.pendingEpoch > epoch {
		epoch = s.pendingEpoch
	}
	seq := s.seq.Load()
	err := s.log.Rotate(s.segPath(oldGen), wal.Header{Gen: newGen, BaseEpoch: epoch, BaseSeq: seq})
	if err == nil {
		s.gen.Store(newGen)
	}
	s.mu.Unlock()
	stall := time.Since(t0).Microseconds()
	s.lastStallUs.Store(stall)
	s.stallUsTotal.Add(stall)
	if s.mStallUs != nil {
		s.mStallUs.ObserveUs(stall)
	}
	if err != nil {
		s.snapshotErrs.Add(1)
		return fmt.Errorf("kvstore: checkpoint: %w", err)
	}
	// The sealed segment durably carries epoch (possibly a pending raise
	// whose SetEpoch is still parked in commit — Rotate just satisfied it).
	storeMax(&s.epoch, epoch)

	// Phase 2: stream the snapshot without blocking writers. Each chunk
	// aliases tree memory under the read lock — safe to write out after
	// release because keys and values are immutable once stored (see
	// Scan's contract).
	w, err := wal.CreateSnapshot(s.fsys, filepath.Join(s.dir, snapName), newGen, epoch, seq)
	if err != nil {
		s.snapshotErrs.Add(1)
		return fmt.Errorf("kvstore: checkpoint: %w", err)
	}
	var putErr error
	var lastKey []byte
	started := false
	pairs := make([]KV, 0, ckptChunk)
	for {
		pairs = pairs[:0]
		s.mu.RLock()
		it := s.tree.iter()
		it.Seek(lastKey)
		if started {
			// Skip pairs at or before the previous chunk's boundary; an
			// exact-match boundary key was already written.
			for it.Valid() && bytes.Compare(it.Key(), lastKey) <= 0 {
				it.Next()
			}
		}
		for ; it.Valid() && len(pairs) < ckptChunk; it.Next() {
			pairs = append(pairs, KV{Key: it.Key(), Val: it.Value()})
		}
		s.mu.RUnlock()
		if len(pairs) == 0 {
			break
		}
		for _, kv := range pairs {
			if putErr = w.Put(kv.Key, kv.Val); putErr != nil {
				break
			}
		}
		if putErr != nil {
			break
		}
		lastKey, started = pairs[len(pairs)-1].Key, true
		if len(pairs) < ckptChunk {
			break
		}
	}
	if putErr != nil {
		w.Abort()
		s.snapshotErrs.Add(1)
		return fmt.Errorf("kvstore: checkpoint: %w", putErr)
	}
	nbytes, err := w.Commit()
	if err != nil {
		// The rotation stands — the segment chain still recovers
		// everything; the next checkpoint retries the snapshot.
		s.snapshotErrs.Add(1)
		return fmt.Errorf("kvstore: checkpoint: %w", err)
	}

	// Phase 3: segments older than the published snapshot are now
	// retention-only; prune past the shipping budget.
	s.pruneSegments(newGen)
	s.snapshots.Add(1)
	s.lastSnapshotBytes.Store(nbytes)
	us := time.Since(t0).Microseconds()
	s.lastSnapshotUs.Store(us)
	if s.mSnapUs != nil {
		s.mSnapUs.ObserveUs(us)
	}
	return nil
}

// DurabilityStats reports the durability subsystem's health for the
// status op. ok is false for memory stores.
type DurabilityStats struct {
	Epoch              uint64 `json:"epoch"`
	Generation         uint64 `json:"generation"`
	Seq                uint64 `json:"seq"`
	FirstRetainedSeq   uint64 `json:"first_retained_seq"`
	WALBytes           int64  `json:"wal_bytes"`
	WALSegments        int64  `json:"wal_segments"`
	SegmentBytes       int64  `json:"segment_bytes"`
	Fsyncs             uint64 `json:"fsyncs"`
	FsyncMeanUs        int64  `json:"fsync_mean_us"`
	FsyncP99Us         int64  `json:"fsync_p99_us"`
	GroupCommitRecords uint64 `json:"group_commit_records"`
	Snapshots          uint64 `json:"snapshots"`
	SnapshotErrors     uint64 `json:"snapshot_errors,omitempty"`
	LastSnapshotBytes  int64  `json:"last_snapshot_bytes,omitempty"`
	LastSnapshotUs     int64  `json:"last_snapshot_us,omitempty"`
	// LastCheckpointStallUs is the write-lock hold of the last
	// checkpoint's log rotation — the only window a checkpoint blocks
	// commits now that the snapshot itself streams under chunked read
	// locks.
	LastCheckpointStallUs  int64  `json:"last_checkpoint_stall_us,omitempty"`
	CheckpointStallTotalUs int64  `json:"checkpoint_stall_total_us,omitempty"`
	ReplayedRecords        uint64 `json:"replayed_records"`
	ReplayTornBytes        int64  `json:"replay_torn_bytes,omitempty"`
	RecoveryUs             int64  `json:"recovery_us"`
}

// DurabilityStats returns durability health; ok is false for memory
// stores.
func (s *Store) DurabilityStats() (st DurabilityStats, ok bool) {
	if s.log == nil {
		return DurabilityStats{}, false
	}
	fsync := s.mFsyncUs.Snapshot()
	batch := s.mBatch.Snapshot()
	seq, firstAvail := s.ReplStatus()
	return DurabilityStats{
		Epoch:                  s.epoch.Load(),
		Generation:             s.gen.Load(),
		Seq:                    seq,
		FirstRetainedSeq:       firstAvail,
		WALBytes:               s.WALSize(),
		WALSegments:            s.segCount.Load(),
		SegmentBytes:           s.segBytes.Load(),
		Fsyncs:                 s.mFsyncs.Load(),
		FsyncMeanUs:            fsync.MeanUs(),
		FsyncP99Us:             fsync.Quantile(0.99),
		GroupCommitRecords:     uint64(batch.SumUs),
		Snapshots:              s.snapshots.Load(),
		SnapshotErrors:         s.snapshotErrs.Load(),
		LastSnapshotBytes:      s.lastSnapshotBytes.Load(),
		LastSnapshotUs:         s.lastSnapshotUs.Load(),
		LastCheckpointStallUs:  s.lastStallUs.Load(),
		CheckpointStallTotalUs: s.stallUsTotal.Load(),
		ReplayedRecords:        s.replayedRecords,
		ReplayTornBytes:        s.replayTornBytes,
		RecoveryUs:             s.recoveryUs,
	}, true
}
