package kvstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"orchestra/internal/obs"
	"orchestra/internal/wal"
)

// Store is a concurrency-safe ordered key-value store, optionally durable
// via a write-ahead log plus snapshot checkpoints (internal/wal).
//
// Durability model: every mutation is appended to the WAL and applied in
// memory under the write lock, then committed — under SyncAlways the
// commit group-batches concurrent writers into one fsync, so a mutation
// is acknowledged only once it (or a snapshot covering it) is on disk.
// Checkpoint() streams the full tree into a snapshot (write-temp + fsync
// + rename), bumps the generation, and truncates the log. Open replays
// snapshot + WAL, truncating a torn tail, rejecting corrupt records by
// CRC, and refusing to start when the log and snapshot disagree about
// generation or epoch — per the reliable-storage contract of §IV.
type Store struct {
	mu   sync.RWMutex
	tree *btree

	// Durable state; zero/nil for memory stores.
	dir  string
	fsys wal.FS
	log  *wal.Log
	opts Options

	gen   atomic.Uint64 // snapshot generation the log extends
	epoch atomic.Uint64 // highest durable epoch

	// Highest epoch appended to the WAL but possibly not yet committed,
	// and its LSN; guarded by mu. Checkpoint must cover this epoch in the
	// snapshot it writes: its Reinit marks every appended LSN durable, so
	// a pending epoch record dropped from the log without making it into
	// the snapshot would be acknowledged by a concurrent SetEpoch yet
	// exist nowhere on disk.
	pendingEpoch    uint64
	pendingEpochLSN int64

	checkpointing atomic.Bool

	// Recovery + snapshot stats (see DurabilityStats).
	replayedRecords   uint64
	replayTornBytes   int64
	recoveryUs        int64
	snapshots         atomic.Uint64
	snapshotErrs      atomic.Uint64
	lastSnapshotBytes atomic.Int64
	lastSnapshotUs    atomic.Int64

	mFsyncUs *obs.Histogram
	mFsyncs  *obs.Counter
	mBatch   *obs.Histogram
	mSnapUs  *obs.Histogram
}

// SyncMode re-exports the WAL sync policy for callers configuring a store.
type SyncMode = wal.SyncMode

const (
	SyncAlways   = wal.SyncAlways
	SyncInterval = wal.SyncInterval
	SyncNever    = wal.SyncNever
)

// DefaultCheckpointBytes is the WAL size that triggers a background
// checkpoint when Options.CheckpointBytes is unset.
const DefaultCheckpointBytes = 64 << 20

// Options configures a durable store.
type Options struct {
	// Sync selects when acknowledged writes reach the disk: SyncAlways
	// (group-commit fsync per write, the default), SyncInterval
	// (periodic), or SyncNever (OS page cache).
	Sync SyncMode
	// SyncInterval is the period for SyncInterval mode (default 50ms).
	SyncInterval time.Duration
	// FS is the filesystem seam; nil means the real one. Tests inject
	// wal.FaultFS here.
	FS wal.FS
	// Registry receives the store's durability metrics; nil creates a
	// private one.
	Registry *obs.Registry
	// CheckpointBytes is the WAL size that triggers a background
	// snapshot + log truncation. 0 means DefaultCheckpointBytes;
	// negative disables automatic checkpoints.
	CheckpointBytes int64
	// Logf reports background checkpoint failures (default log.Printf).
	Logf func(format string, args ...any)
}

// KV is one pair for PutBatch.
type KV struct {
	Key []byte
	Val []byte
}

const (
	walName  = "store.wal"
	snapName = "store.snap"

	opPut    = byte(1)
	opDelete = byte(2)
	opEpoch  = byte(3)
)

// NewMemory returns a volatile in-memory store.
func NewMemory() *Store {
	return &Store{tree: newBtree()}
}

// Open returns a durable store rooted at dir, creating it if needed and
// recovering any existing snapshot and WAL. Recovery is paranoid: torn
// log tails are truncated, CRC-failing records rejected, and a
// generation or epoch mismatch between snapshot and log refuses to
// start rather than serve silently wrong data.
func Open(dir string, opts Options) (*Store, error) {
	t0 := time.Now()
	if opts.FS == nil {
		opts.FS = wal.OS
	}
	if opts.Registry == nil {
		opts.Registry = obs.NewRegistry()
	}
	if opts.CheckpointBytes == 0 {
		opts.CheckpointBytes = DefaultCheckpointBytes
	}
	if opts.Logf == nil {
		opts.Logf = log.Printf
	}
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("kvstore: create dir: %w", err)
	}
	s := &Store{tree: newBtree(), dir: dir, fsys: opts.FS, opts: opts}
	reg := opts.Registry
	s.mFsyncUs = reg.Histogram("orchestra_wal_fsync_us")
	s.mFsyncs = reg.Counter("orchestra_wal_fsyncs_total")
	s.mBatch = reg.Histogram("orchestra_wal_group_commit_records")
	s.mSnapUs = reg.Histogram("orchestra_snapshot_us")

	// 1. Snapshot: the durable base state.
	var gen, epoch uint64
	snap, err := wal.ReadSnapshot(s.fsys, filepath.Join(dir, snapName))
	if err != nil {
		return nil, fmt.Errorf("kvstore: refusing to start: %w", err)
	}
	if snap != nil {
		gen, epoch = snap.Gen, snap.Epoch
		if err := snap.Range(func(k, v []byte) error {
			s.tree.put(k, v)
			return nil
		}); err != nil {
			return nil, fmt.Errorf("kvstore: refusing to start: %w", err)
		}
	}

	// 2. Log: replay on top, or reject it if it doesn't extend this
	// snapshot.
	walPath := filepath.Join(dir, walName)
	walOpts := wal.Options{
		Mode: opts.Sync, Interval: opts.SyncInterval,
		FsyncUs: s.mFsyncUs, Fsyncs: s.mFsyncs, BatchRecords: s.mBatch,
	}
	c, err := wal.ReadAll(s.fsys, walPath)
	if err != nil {
		return nil, fmt.Errorf("kvstore: refusing to start: %w", err)
	}
	switch {
	case c.Missing:
		// No log (or one torn before its header was durable — nothing
		// was ever acknowledged from it). Start fresh at the snapshot.
		s.log, err = wal.Reset(s.fsys, walPath, wal.Header{Gen: gen, BaseEpoch: epoch}, walOpts)
	case c.Header.Gen > gen:
		return nil, fmt.Errorf(
			"kvstore: refusing to start: wal generation %d is ahead of snapshot generation %d — the snapshot this log extends is missing or was rolled back",
			c.Header.Gen, gen)
	case c.Header.Gen < gen:
		// Stale log from before the last published snapshot (crash
		// between snapshot rename and log truncation): every record in
		// it is already covered by the snapshot.
		s.log, err = wal.Reset(s.fsys, walPath, wal.Header{Gen: gen, BaseEpoch: epoch}, walOpts)
	default:
		if c.Header.BaseEpoch != epoch {
			return nil, fmt.Errorf(
				"kvstore: refusing to start: wal base epoch %d does not match snapshot epoch %d at generation %d",
				c.Header.BaseEpoch, epoch, gen)
		}
		for i, rec := range c.Records {
			e, aerr := s.applyRecord(rec)
			if aerr != nil {
				return nil, fmt.Errorf("kvstore: refusing to start: wal record %d: %w", i, aerr)
			}
			if e > epoch {
				epoch = e
			}
		}
		s.replayedRecords = uint64(len(c.Records))
		s.replayTornBytes = c.TornBytes
		s.log, err = wal.OpenAppend(s.fsys, walPath, c.Size, walOpts)
	}
	if err != nil {
		return nil, err
	}
	s.gen.Store(gen)
	s.epoch.Store(epoch)
	s.recoveryUs = time.Since(t0).Microseconds()

	reg.Counter("orchestra_recovery_replayed_records_total").Add(s.replayedRecords)
	reg.GaugeFunc("orchestra_wal_bytes", s.WALSize)
	reg.GaugeFunc("orchestra_store_epoch", func() int64 { return int64(s.epoch.Load()) })
	reg.GaugeFunc("orchestra_store_generation", func() int64 { return int64(s.gen.Load()) })
	reg.GaugeFunc("orchestra_recovery_us", func() int64 { return s.recoveryUs })
	return s, nil
}

// applyRecord replays one WAL record into the tree, returning the epoch
// it carries (0 for data records). A CRC-valid record with an unknown op
// means version skew — refuse rather than drop acknowledged writes.
func (s *Store) applyRecord(rec wal.Record) (uint64, error) {
	switch rec.Op {
	case opPut:
		key, val, ok := decodePut(rec.Payload)
		if !ok {
			return 0, errors.New("malformed put payload")
		}
		s.tree.put(key, val)
	case opDelete:
		s.tree.delete(rec.Payload)
	case opEpoch:
		if len(rec.Payload) != 8 {
			return 0, errors.New("malformed epoch payload")
		}
		return binary.BigEndian.Uint64(rec.Payload), nil
	default:
		return 0, fmt.Errorf("unknown record op %d", rec.Op)
	}
	return 0, nil
}

// appendPut encodes an opPut payload: keyLen uvarint | key | val.
func appendPut(dst []byte, key, val []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(key)))
	dst = append(dst, key...)
	return append(dst, val...)
}

func decodePut(payload []byte) (key, val []byte, ok bool) {
	kl, m := binary.Uvarint(payload)
	// Overflow-safe bound check: kl can be near 2^64 in a corrupt record,
	// so compare it against the remaining length rather than adding to m.
	if m <= 0 || kl > uint64(len(payload)-m) {
		return nil, nil, false
	}
	return payload[m : uint64(m)+kl], payload[uint64(m)+kl:], true
}

// Close flushes, syncs, and closes the WAL. The store must not be used
// afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	return s.log.Close()
}

// Get returns a copy of the value for key.
func (s *Store) Get(key []byte) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.tree.get(key)
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// GetRetained returns the stored value for key without copying. The
// returned slice follows the store's immutability contract (see Scan): its
// contents are never mutated by the store, so callers may retain and read
// it indefinitely, but must not modify it. The allocation-free variant for
// hot read paths that decode large records (index pages) per query.
func (s *Store) GetRetained(key []byte) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.get(key)
}

// Has reports whether key exists.
func (s *Store) Has(key []byte) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.tree.get(key)
	return ok
}

// Put stores key → val (replacing any existing value). For a durable
// store it returns once the write is committed per the sync policy.
func (s *Store) Put(key, val []byte) error {
	s.mu.Lock()
	var lsn int64
	if s.log != nil {
		var err error
		lsn, err = s.log.Append(opPut, appendPut(nil, key, val))
		if err != nil {
			s.mu.Unlock()
			return err
		}
	}
	s.tree.put(key, val)
	s.mu.Unlock()
	return s.commit(lsn)
}

// PutBatch stores every pair, sharing one WAL commit (and so, under
// SyncAlways, at most one fsync) across the batch.
func (s *Store) PutBatch(kvs []KV) error {
	if len(kvs) == 0 {
		return nil
	}
	s.mu.Lock()
	var lsn int64
	var payload []byte
	for _, kv := range kvs {
		if s.log != nil {
			var err error
			payload = appendPut(payload[:0], kv.Key, kv.Val)
			lsn, err = s.log.Append(opPut, payload)
			if err != nil {
				s.mu.Unlock()
				return err
			}
		}
		s.tree.put(kv.Key, kv.Val)
	}
	s.mu.Unlock()
	return s.commit(lsn)
}

// Delete removes key if present; reports whether it existed.
func (s *Store) Delete(key []byte) (bool, error) {
	s.mu.Lock()
	var lsn int64
	if s.log != nil {
		var err error
		lsn, err = s.log.Append(opDelete, key)
		if err != nil {
			s.mu.Unlock()
			return false, err
		}
	}
	deleted := s.tree.delete(key)
	s.mu.Unlock()
	return deleted, s.commit(lsn)
}

// commit makes the record at lsn durable and may kick off a background
// checkpoint once the log has grown past the configured threshold.
func (s *Store) commit(lsn int64) error {
	if s.log == nil {
		return nil
	}
	if err := s.log.Commit(lsn); err != nil {
		return err
	}
	s.maybeCheckpoint()
	return nil
}

func (s *Store) maybeCheckpoint() {
	if s.opts.CheckpointBytes <= 0 || s.log.Size() < s.opts.CheckpointBytes {
		return
	}
	if !s.checkpointing.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.checkpointing.Store(false)
		if err := s.Checkpoint(); err != nil {
			s.opts.Logf("kvstore: background checkpoint: %v", err)
		}
	}()
}

// SetEpoch durably raises the store's epoch to at least e. Raising the
// epoch is the last step of a publish — it must not be acknowledged
// before it would survive a crash.
func (s *Store) SetEpoch(e uint64) error {
	if s.log == nil {
		storeMax(&s.epoch, e)
		return nil
	}
	s.mu.Lock()
	if e <= s.epoch.Load() {
		s.mu.Unlock()
		return nil
	}
	if e <= s.pendingEpoch {
		// A record covering e is already appended (by a concurrent raise
		// or one whose commit we interrupted); wait for its durability
		// rather than appending a duplicate.
		lsn := s.pendingEpochLSN
		s.mu.Unlock()
		if err := s.commit(lsn); err != nil {
			return err
		}
		storeMax(&s.epoch, e)
		return nil
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], e)
	lsn, err := s.log.Append(opEpoch, buf[:])
	if err != nil {
		s.mu.Unlock()
		return err
	}
	s.pendingEpoch, s.pendingEpochLSN = e, lsn
	s.mu.Unlock()
	if err := s.commit(lsn); err != nil {
		return err
	}
	storeMax(&s.epoch, e)
	return nil
}

// Epoch returns the highest epoch recorded in the store (0 if none).
func (s *Store) Epoch() uint64 { return s.epoch.Load() }

func storeMax(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Scan calls fn for every pair with lo <= key < hi in key order (nil bounds
// are open). fn must not mutate the store; returning false stops the scan.
//
// Key/value reuse contract: the slices passed to fn are the store's own —
// keys and values are copied once on Put and their contents are never
// mutated afterwards (replacement swaps the slice wholesale). Callers may
// therefore retain them read-only past the callback (the engine's scan
// pipeline aliases tuple-record bytes this way to decode without copying);
// they must never write into them.
func (s *Store) Scan(lo, hi []byte, fn func(k, v []byte) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.tree.scan(lo, hi, fn)
}

// Iter runs fn with a seekable forward iterator over the store, holding
// the read lock for the duration — fn must not mutate the store. The
// iterator starts unpositioned; call Seek first. Key/value slices follow
// Scan's immutability/retention contract. Compared to Scan, Iter lets a
// sparse consumer skip ahead in O(depth) instead of visiting every pair.
func (s *Store) Iter(fn func(it *Iterator)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	it := s.tree.iter()
	fn(&it)
}

// ScanPrefix scans all keys beginning with prefix.
func (s *Store) ScanPrefix(prefix []byte, fn func(k, v []byte) bool) {
	if len(prefix) == 0 {
		s.Scan(nil, nil, fn)
		return
	}
	hi := prefixEnd(prefix)
	s.Scan(prefix, hi, fn)
}

// prefixEnd returns the smallest key greater than every key with the given
// prefix, or nil if the prefix is all 0xFF.
func prefixEnd(prefix []byte) []byte {
	hi := append([]byte(nil), prefix...)
	for i := len(hi) - 1; i >= 0; i-- {
		if hi[i] != 0xFF {
			hi[i]++
			return hi[:i+1]
		}
	}
	return nil
}

// Len returns the number of keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.size
}

// Depth returns the B+tree height (diagnostics).
func (s *Store) Depth() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.depth()
}

// WALSize returns the current WAL length in bytes (0 for memory stores).
func (s *Store) WALSize() int64 {
	if s.log == nil {
		return 0
	}
	return s.log.Size()
}

// Checkpoint writes a snapshot of the full tree at the next generation,
// publishes it atomically, and truncates the WAL. Concurrent mutations
// block for the duration (the tree must not move under the writer).
//
// Known limitation: the exclusive lock is held while the entire tree
// streams to disk, so reads and writes stall for the full snapshot
// duration — on large stores the background size trigger turns this
// into a tail-latency cliff. Fixing it needs a frozen/copy-on-write
// tree image to snapshot from; tracked in ROADMAP.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	t0 := time.Now()
	newGen := s.gen.Load() + 1
	// The snapshot must carry every epoch record in the log — including
	// one appended by a SetEpoch still waiting on its commit — because
	// Reinit below declares all appended LSNs durable.
	epoch := s.epoch.Load()
	if s.pendingEpoch > epoch {
		epoch = s.pendingEpoch
	}
	w, err := wal.CreateSnapshot(s.fsys, filepath.Join(s.dir, snapName), newGen, epoch)
	if err != nil {
		s.snapshotErrs.Add(1)
		return fmt.Errorf("kvstore: checkpoint: %w", err)
	}
	var putErr error
	s.tree.scan(nil, nil, func(k, v []byte) bool {
		putErr = w.Put(k, v)
		return putErr == nil
	})
	if putErr != nil {
		w.Abort()
		s.snapshotErrs.Add(1)
		return fmt.Errorf("kvstore: checkpoint: %w", putErr)
	}
	bytes, err := w.Commit()
	if err != nil {
		s.snapshotErrs.Add(1)
		return fmt.Errorf("kvstore: checkpoint: %w", err)
	}
	// Snapshot is live: truncate the log onto the new generation. Every
	// record appended so far is covered by the snapshot (appends and
	// tree application both happen under s.mu, which we hold).
	if err := s.log.Reinit(wal.Header{Gen: newGen, BaseEpoch: epoch}); err != nil {
		// The snapshot is published but the old-generation log remains;
		// recovery discards it as stale. Further writes fail sticky.
		s.snapshotErrs.Add(1)
		return fmt.Errorf("kvstore: checkpoint: %w", err)
	}
	s.gen.Store(newGen)
	// The snapshot durably carries epoch (possibly a pending raise whose
	// SetEpoch is still parked in commit — Reinit just satisfied it).
	storeMax(&s.epoch, epoch)
	s.snapshots.Add(1)
	s.lastSnapshotBytes.Store(bytes)
	us := time.Since(t0).Microseconds()
	s.lastSnapshotUs.Store(us)
	if s.mSnapUs != nil {
		s.mSnapUs.ObserveUs(us)
	}
	return nil
}

// DurabilityStats reports the durability subsystem's health for the
// status op. ok is false for memory stores.
type DurabilityStats struct {
	Epoch              uint64 `json:"epoch"`
	Generation         uint64 `json:"generation"`
	WALBytes           int64  `json:"wal_bytes"`
	Fsyncs             uint64 `json:"fsyncs"`
	FsyncMeanUs        int64  `json:"fsync_mean_us"`
	FsyncP99Us         int64  `json:"fsync_p99_us"`
	GroupCommitRecords uint64 `json:"group_commit_records"`
	Snapshots          uint64 `json:"snapshots"`
	SnapshotErrors     uint64 `json:"snapshot_errors,omitempty"`
	LastSnapshotBytes  int64  `json:"last_snapshot_bytes,omitempty"`
	LastSnapshotUs     int64  `json:"last_snapshot_us,omitempty"`
	ReplayedRecords    uint64 `json:"replayed_records"`
	ReplayTornBytes    int64  `json:"replay_torn_bytes,omitempty"`
	RecoveryUs         int64  `json:"recovery_us"`
}

// DurabilityStats returns durability health; ok is false for memory
// stores.
func (s *Store) DurabilityStats() (st DurabilityStats, ok bool) {
	if s.log == nil {
		return DurabilityStats{}, false
	}
	fsync := s.mFsyncUs.Snapshot()
	batch := s.mBatch.Snapshot()
	return DurabilityStats{
		Epoch:              s.epoch.Load(),
		Generation:         s.gen.Load(),
		WALBytes:           s.WALSize(),
		Fsyncs:             s.mFsyncs.Load(),
		FsyncMeanUs:        fsync.MeanUs(),
		FsyncP99Us:         fsync.Quantile(0.99),
		GroupCommitRecords: uint64(batch.SumUs),
		Snapshots:          s.snapshots.Load(),
		SnapshotErrors:     s.snapshotErrs.Load(),
		LastSnapshotBytes:  s.lastSnapshotBytes.Load(),
		LastSnapshotUs:     s.lastSnapshotUs.Load(),
		ReplayedRecords:    s.replayedRecords,
		ReplayTornBytes:    s.replayTornBytes,
		RecoveryUs:         s.recoveryUs,
	}, true
}
