package kvstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Store is a concurrency-safe ordered key-value store, optionally durable via
// a write-ahead log plus snapshot checkpoints.
//
// Durability model: every mutation is appended to the WAL before being
// applied in memory. Checkpoint() writes a full snapshot atomically
// (write-temp + rename) and truncates the WAL. Open replays snapshot + WAL.
// Records carry CRC32 checksums; a torn tail is truncated on recovery, like
// the log-structured stores that inspired the paper's storage design (§IV).
type Store struct {
	mu   sync.RWMutex
	tree *btree

	dir     string
	wal     *os.File
	walBuf  *bufio.Writer
	walSize int64
	sync    bool
}

const (
	walName      = "store.wal"
	snapName     = "store.snap"
	snapTempName = "store.snap.tmp"

	opPut    = byte(1)
	opDelete = byte(2)
)

// NewMemory returns a volatile in-memory store.
func NewMemory() *Store {
	return &Store{tree: newBtree()}
}

// Open returns a durable store rooted at dir, creating it if needed and
// recovering any existing snapshot and WAL. If syncEveryWrite is true, each
// mutation is fsynced (slow but safest); otherwise the OS flushes the log.
func Open(dir string, syncEveryWrite bool) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("kvstore: create dir: %w", err)
	}
	s := &Store{tree: newBtree(), dir: dir, sync: syncEveryWrite}
	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := s.replayWAL(); err != nil {
		return nil, err
	}
	wal, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvstore: open wal: %w", err)
	}
	st, err := wal.Stat()
	if err != nil {
		wal.Close()
		return nil, fmt.Errorf("kvstore: stat wal: %w", err)
	}
	s.wal = wal
	s.walSize = st.Size()
	s.walBuf = bufio.NewWriter(wal)
	return s, nil
}

// Close flushes and closes the WAL. The store must not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	if err := s.walBuf.Flush(); err != nil {
		return err
	}
	err := s.wal.Close()
	s.wal = nil
	return err
}

// Get returns a copy of the value for key.
func (s *Store) Get(key []byte) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.tree.get(key)
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// GetRetained returns the stored value for key without copying. The
// returned slice follows the store's immutability contract (see Scan): its
// contents are never mutated by the store, so callers may retain and read
// it indefinitely, but must not modify it. The allocation-free variant for
// hot read paths that decode large records (index pages) per query.
func (s *Store) GetRetained(key []byte) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.get(key)
}

// Has reports whether key exists.
func (s *Store) Has(key []byte) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.tree.get(key)
	return ok
}

// Put stores key → val (replacing any existing value).
func (s *Store) Put(key, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.logRecord(opPut, key, val); err != nil {
		return err
	}
	s.tree.put(key, val)
	return nil
}

// Delete removes key if present; reports whether it existed.
func (s *Store) Delete(key []byte) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.logRecord(opDelete, key, nil); err != nil {
		return false, err
	}
	return s.tree.delete(key), nil
}

// Scan calls fn for every pair with lo <= key < hi in key order (nil bounds
// are open). fn must not mutate the store; returning false stops the scan.
//
// Key/value reuse contract: the slices passed to fn are the store's own —
// keys and values are copied once on Put and their contents are never
// mutated afterwards (replacement swaps the slice wholesale). Callers may
// therefore retain them read-only past the callback (the engine's scan
// pipeline aliases tuple-record bytes this way to decode without copying);
// they must never write into them.
func (s *Store) Scan(lo, hi []byte, fn func(k, v []byte) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.tree.scan(lo, hi, fn)
}

// Iter runs fn with a seekable forward iterator over the store, holding
// the read lock for the duration — fn must not mutate the store. The
// iterator starts unpositioned; call Seek first. Key/value slices follow
// Scan's immutability/retention contract. Compared to Scan, Iter lets a
// sparse consumer skip ahead in O(depth) instead of visiting every pair.
func (s *Store) Iter(fn func(it *Iterator)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	it := s.tree.iter()
	fn(&it)
}

// ScanPrefix scans all keys beginning with prefix.
func (s *Store) ScanPrefix(prefix []byte, fn func(k, v []byte) bool) {
	if len(prefix) == 0 {
		s.Scan(nil, nil, fn)
		return
	}
	hi := prefixEnd(prefix)
	s.Scan(prefix, hi, fn)
}

// prefixEnd returns the smallest key greater than every key with the given
// prefix, or nil if the prefix is all 0xFF.
func prefixEnd(prefix []byte) []byte {
	hi := append([]byte(nil), prefix...)
	for i := len(hi) - 1; i >= 0; i-- {
		if hi[i] != 0xFF {
			hi[i]++
			return hi[:i+1]
		}
	}
	return nil
}

// Len returns the number of keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.size
}

// Depth returns the B+tree height (diagnostics).
func (s *Store) Depth() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.depth()
}

// WALSize returns the current WAL length in bytes (0 for memory stores).
func (s *Store) WALSize() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.walSize
}

// --- WAL record format ---
// op(1) | keyLen uvarint | key | valLen uvarint | val | crc32(4, IEEE, of all prior bytes)

func appendRecord(dst []byte, op byte, key, val []byte) []byte {
	start := len(dst)
	dst = append(dst, op)
	dst = binary.AppendUvarint(dst, uint64(len(key)))
	dst = append(dst, key...)
	dst = binary.AppendUvarint(dst, uint64(len(val)))
	dst = append(dst, val...)
	crc := crc32.ChecksumIEEE(dst[start:])
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], crc)
	return append(dst, b[:]...)
}

func (s *Store) logRecord(op byte, key, val []byte) error {
	if s.wal == nil {
		return nil // memory-only store
	}
	rec := appendRecord(nil, op, key, val)
	if _, err := s.walBuf.Write(rec); err != nil {
		return fmt.Errorf("kvstore: wal append: %w", err)
	}
	if err := s.walBuf.Flush(); err != nil {
		return fmt.Errorf("kvstore: wal flush: %w", err)
	}
	if s.sync {
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("kvstore: wal sync: %w", err)
		}
	}
	s.walSize += int64(len(rec))
	return nil
}

func (s *Store) replayWAL() error {
	path := filepath.Join(s.dir, walName)
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("kvstore: open wal for replay: %w", err)
	}
	defer f.Close()
	data, err := io.ReadAll(bufio.NewReader(f))
	if err != nil {
		return fmt.Errorf("kvstore: read wal: %w", err)
	}
	off := 0
	validEnd := 0
	for off < len(data) {
		op, key, val, n, ok := parseRecord(data[off:])
		if !ok {
			break // torn tail: stop replay here
		}
		switch op {
		case opPut:
			s.tree.put(key, val)
		case opDelete:
			s.tree.delete(key)
		default:
			// Unknown op: treat as corruption, stop.
			off = len(data) + 1
		}
		off += n
		validEnd = off
	}
	if validEnd < len(data) {
		// Truncate the torn tail so future appends are clean.
		if err := os.Truncate(path, int64(validEnd)); err != nil {
			return fmt.Errorf("kvstore: truncate torn wal: %w", err)
		}
	}
	return nil
}

func parseRecord(data []byte) (op byte, key, val []byte, n int, ok bool) {
	if len(data) < 1 {
		return 0, nil, nil, 0, false
	}
	op = data[0]
	off := 1
	kl, m := binary.Uvarint(data[off:])
	if m <= 0 || off+m+int(kl) > len(data) {
		return 0, nil, nil, 0, false
	}
	off += m
	key = data[off : off+int(kl)]
	off += int(kl)
	vl, m := binary.Uvarint(data[off:])
	if m <= 0 || off+m+int(vl) > len(data) {
		return 0, nil, nil, 0, false
	}
	off += m
	val = data[off : off+int(vl)]
	off += int(vl)
	if off+4 > len(data) {
		return 0, nil, nil, 0, false
	}
	want := binary.BigEndian.Uint32(data[off:])
	if crc32.ChecksumIEEE(data[:off]) != want {
		return 0, nil, nil, 0, false
	}
	return op, key, val, off + 4, true
}

// Checkpoint writes a snapshot of the full tree and truncates the WAL.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	tmp := filepath.Join(s.dir, snapTempName)
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("kvstore: create snapshot: %w", err)
	}
	w := bufio.NewWriter(f)
	writeErr := func() error {
		var hdr [8]byte
		binary.BigEndian.PutUint64(hdr[:], uint64(s.tree.size))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		var rec []byte
		var failed error
		s.tree.scan(nil, nil, func(k, v []byte) bool {
			rec = appendRecord(rec[:0], opPut, k, v)
			if _, err := w.Write(rec); err != nil {
				failed = err
				return false
			}
			return true
		})
		if failed != nil {
			return failed
		}
		return w.Flush()
	}()
	if writeErr != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("kvstore: write snapshot: %w", writeErr)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("kvstore: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("kvstore: close snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapName)); err != nil {
		return fmt.Errorf("kvstore: publish snapshot: %w", err)
	}
	// Truncate the WAL: everything is in the snapshot now.
	if err := s.walBuf.Flush(); err != nil {
		return err
	}
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("kvstore: truncate wal: %w", err)
	}
	if _, err := s.wal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("kvstore: rewind wal: %w", err)
	}
	s.walSize = 0
	return nil
}

func (s *Store) loadSnapshot() error {
	f, err := os.Open(filepath.Join(s.dir, snapName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("kvstore: open snapshot: %w", err)
	}
	defer f.Close()
	data, err := io.ReadAll(bufio.NewReader(f))
	if err != nil {
		return fmt.Errorf("kvstore: read snapshot: %w", err)
	}
	if len(data) < 8 {
		return errors.New("kvstore: snapshot too short")
	}
	count := binary.BigEndian.Uint64(data[:8])
	off := 8
	for i := uint64(0); i < count; i++ {
		op, key, val, n, ok := parseRecord(data[off:])
		if !ok || op != opPut {
			return fmt.Errorf("kvstore: corrupt snapshot at record %d", i)
		}
		s.tree.put(key, val)
		off += n
	}
	return nil
}
