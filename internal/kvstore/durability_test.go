package kvstore

import (
	"encoding/binary"
	"fmt"
	iofs "io/fs"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"orchestra/internal/wal"
)

func TestEpochPersistence(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetEpoch(5); err != nil {
		t.Fatal(err)
	}
	if err := s.SetEpoch(3); err != nil { // lower: no-op
		t.Fatal(err)
	}
	s.Put([]byte("k"), []byte("v"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Epoch() != 5 {
		t.Fatalf("recovered epoch = %d, want 5", s2.Epoch())
	}
	// Through a checkpoint, the epoch rides the snapshot header.
	if err := s2.SetEpoch(9); err != nil {
		t.Fatal(err)
	}
	if err := s2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s2.Close()

	s3, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Epoch() != 9 {
		t.Fatalf("post-checkpoint epoch = %d, want 9", s3.Epoch())
	}
	if v, ok := s3.Get([]byte("k")); !ok || string(v) != "v" {
		t.Fatal("data lost across checkpointed restart")
	}
}

func TestPutBatchDurable(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	var kvs []KV
	for i := 0; i < 100; i++ {
		kvs = append(kvs, KV{
			Key: []byte(fmt.Sprintf("b%03d", i)),
			Val: []byte(fmt.Sprintf("val%d", i)),
		})
	}
	if err := s.PutBatch(kvs); err != nil {
		t.Fatal(err)
	}
	st, ok := s.DurabilityStats()
	if !ok {
		t.Fatal("durable store reported no stats")
	}
	// The whole batch must share one commit: far fewer fsyncs than keys.
	if st.Fsyncs >= 100 {
		t.Fatalf("batch of 100 cost %d fsyncs", st.Fsyncs)
	}
	s.Close()

	s2, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 100 {
		t.Fatalf("recovered %d keys, want 100", s2.Len())
	}
}

func TestGenerationAheadRefused(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	s.Put([]byte("a"), []byte("1"))
	if err := s.Checkpoint(); err != nil { // snapshot gen 1, wal gen 1, segment gen 0
		t.Fatal(err)
	}
	s.Put([]byte("b"), []byte("2"))
	s.Close()

	// Lose the snapshot: the retained gen-0 segment still carries record
	// "a", so recovery replays the chain instead of refusing.
	if err := os.Remove(filepath.Join(dir, "store.snap")); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatalf("chain recovery after snapshot loss: %v", err)
	}
	if !s2.Has([]byte("a")) || !s2.Has([]byte("b")) {
		t.Fatal("segment-chain recovery lost records")
	}
	s2.Close()

	// Lose the segment too: the wal now claims a generation whose base
	// state is gone everywhere. Starting would silently drop record "a".
	if err := os.Remove(filepath.Join(dir, segmentName(0))); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir, Options{Sync: SyncNever})
	if err == nil || !strings.Contains(err.Error(), "refusing to start") {
		t.Fatalf("err = %v, want refusal", err)
	}
}

func TestStaleGenerationLogDiscarded(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	s.Put([]byte("kept"), []byte("v"))
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Simulate a crash between snapshot rename and log truncation: put
	// back a generation-0 log with a record the snapshot already covers.
	l, err := wal.Reset(wal.OS, filepath.Join(dir, "store.wal"), wal.Header{Gen: 0}, wal.Options{Mode: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	lsn, _ := l.Append(opPut, appendPut(nil, []byte("ghost"), []byte("x")))
	l.Commit(lsn)
	l.Close()

	s2, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatalf("stale log should be discarded, got: %v", err)
	}
	defer s2.Close()
	if !s2.Has([]byte("kept")) {
		t.Fatal("snapshot data lost")
	}
	if s2.Has([]byte("ghost")) {
		t.Fatal("stale-generation record replayed")
	}
}

func TestEpochMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	s.SetEpoch(4)
	if err := s.Checkpoint(); err != nil { // snapshot gen 1 @ epoch 4
		t.Fatal(err)
	}
	s.Close()

	// Rewrite the log header: same generation, wrong base epoch.
	l, err := wal.Reset(wal.OS, filepath.Join(dir, "store.wal"), wal.Header{Gen: 1, BaseEpoch: 11}, wal.Options{Mode: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()

	_, err = Open(dir, Options{Sync: SyncNever})
	if err == nil || !strings.Contains(err.Error(), "refusing to start") {
		t.Fatalf("err = %v, want epoch-mismatch refusal", err)
	}
}

// decodePut must reject a keyLen uvarint near 2^64 instead of letting
// the varint-width + keyLen sum wrap past the bound check and panic on
// the slice — recovery has to return ErrCorrupt, not crash.
func TestDecodePutKeyLenOverflow(t *testing.T) {
	payload := binary.AppendUvarint(nil, math.MaxUint64)
	if _, _, ok := decodePut(payload); ok {
		t.Fatal("decodePut accepted an overflowing key length")
	}
	if _, _, ok := decodePut(nil); ok {
		t.Fatal("decodePut accepted an empty payload")
	}
}

// gateFS blocks the first Sync of one named file (after arming) until
// released — it freezes a group-commit leader mid-fsync so a test can
// interleave a checkpoint at exactly that point.
type gateFS struct {
	wal.FS
	name    string // base name of the gated file
	armed   atomic.Bool
	entered chan struct{} // closed when the gated Sync begins
	release chan struct{} // closed by the test to let it proceed
}

func (g *gateFS) OpenFile(name string, flag int, perm iofs.FileMode) (wal.File, error) {
	f, err := g.FS.OpenFile(name, flag, perm)
	if err != nil || filepath.Base(name) != g.name {
		return f, err
	}
	return &gateFile{File: f, g: g}, nil
}

type gateFile struct {
	wal.File
	g *gateFS
}

func (f *gateFile) Sync() error {
	if f.g.armed.CompareAndSwap(true, false) {
		close(f.g.entered)
		<-f.g.release
	}
	return f.File.Sync()
}

// TestCheckpointCoversPendingEpoch reproduces the SetEpoch/Checkpoint
// race: an epoch record has been appended and its SetEpoch is parked
// inside the group-commit fsync when a checkpoint runs. The
// checkpoint's Reinit drops the buffered record and marks its LSN
// durable, so the snapshot it publishes must carry the pending epoch —
// otherwise SetEpoch acknowledges a raise that exists nowhere on disk
// and a crash recovers the old epoch.
func TestCheckpointCoversPendingEpoch(t *testing.T) {
	dir := t.TempDir()
	g := &gateFS{FS: wal.OS, name: walName,
		entered: make(chan struct{}), release: make(chan struct{})}
	s, err := Open(dir, Options{Sync: SyncAlways, FS: g, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	g.armed.Store(true)
	done := make(chan error, 1)
	go func() { done <- s.SetEpoch(7) }()
	<-g.entered // the epoch record is appended; its commit is frozen

	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	close(g.release)
	if err := <-done; err != nil {
		t.Fatalf("SetEpoch: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer s2.Close()
	if s2.Epoch() != 7 {
		t.Fatalf("recovered epoch = %d, want 7 (acknowledged raise lost)", s2.Epoch())
	}
}

func TestRecoveryStats(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		s.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	s.Close()

	s2, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st, ok := s2.DurabilityStats()
	if !ok {
		t.Fatal("no stats from durable store")
	}
	if st.ReplayedRecords != 20 {
		t.Fatalf("replayed = %d, want 20", st.ReplayedRecords)
	}
	if st.WALBytes == 0 {
		t.Fatal("wal bytes = 0")
	}

	if _, ok := NewMemory().DurabilityStats(); ok {
		t.Fatal("memory store claims durability")
	}
}
