package kvstore

import (
	"encoding/binary"
	"errors"
	"sync"
)

// Replication shipping support: every mutation (put, delete, epoch
// raise) gets a global, monotonically increasing sequence number — the
// count of WAL records ever appended since the store was created, which
// survives restarts via the log/snapshot headers (wal.Header.BaseSeq,
// Snapshot.Seq). A bounded in-memory ring retains the most recent
// records so a lagging replica can pull exactly the delta it missed
// (ShipLog) and replay it through the normal commit path (ApplyBatch)
// instead of receiving a full rebalance. When the requested position
// has been evicted, the caller falls back to a state transfer.

// ReplRecord is one retained mutation: the WAL op byte plus its encoded
// payload, at a global sequence position.
type ReplRecord struct {
	Seq     uint64
	Op      byte
	Payload []byte
}

// ReplOp is a decoded replicated mutation. Exactly one of the three
// shapes is populated: a put (Key, Val), a delete (Del, Key), or an
// epoch raise (Epoch > 0).
type ReplOp struct {
	Del   bool
	Key   []byte
	Val   []byte
	Epoch uint64
}

// ErrUnknownOp reports a shipped record with an op byte this version
// does not understand (version skew between peers).
var ErrUnknownOp = errors.New("kvstore: unknown replicated record op")

// Decode interprets the record's payload. Slices alias the payload.
func (r ReplRecord) Decode() (ReplOp, error) {
	switch r.Op {
	case opPut:
		key, val, ok := decodePut(r.Payload)
		if !ok {
			return ReplOp{}, errors.New("kvstore: malformed shipped put")
		}
		return ReplOp{Key: key, Val: val}, nil
	case opDelete:
		return ReplOp{Del: true, Key: r.Payload}, nil
	case opEpoch:
		if len(r.Payload) != 8 {
			return ReplOp{}, errors.New("kvstore: malformed shipped epoch")
		}
		return ReplOp{Epoch: binary.BigEndian.Uint64(r.Payload)}, nil
	default:
		return ReplOp{}, ErrUnknownOp
	}
}

// replRecOverhead approximates the fixed per-record cost counted
// against the retention budget (struct + slice header + seq).
const replRecOverhead = 48

// replRing retains the most recent records in seq order. Payloads are
// owned by the ring and never mutated, so readers may alias them after
// the lock is released.
type replRing struct {
	mu    sync.Mutex
	recs  []ReplRecord
	head  int // index of the oldest live record
	bytes int64
	max   int64 // retention budget; <= 0 disables the ring
}

// push appends one record. A non-contiguous seq (recovery re-seeding
// across a pruned gap) drops the older prefix — the ring must stay
// contiguous for implicit addressing to hold.
func (r *replRing) push(rec ReplRecord) {
	if r.max <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := len(r.recs); n > r.head && r.recs[n-1].Seq+1 != rec.Seq {
		r.recs = r.recs[:0]
		r.head = 0
		r.bytes = 0
	}
	r.recs = append(r.recs, rec)
	r.bytes += int64(len(rec.Payload)) + replRecOverhead
	for r.bytes > r.max && r.head < len(r.recs)-1 {
		r.bytes -= int64(len(r.recs[r.head].Payload)) + replRecOverhead
		r.recs[r.head] = ReplRecord{}
		r.head++
	}
	// Reclaim the evicted prefix once it dominates the backing array.
	if r.head > 64 && r.head > len(r.recs)/2 {
		r.recs = append(r.recs[:0:0], r.recs[r.head:]...)
		r.head = 0
	}
}

// bounds returns the first and last retained seq (0, 0 when empty).
func (r *replRing) bounds() (first, last uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.head >= len(r.recs) {
		return 0, 0
	}
	return r.recs[r.head].Seq, r.recs[len(r.recs)-1].Seq
}

// from collects records with Seq > after up to maxBytes of payload.
// more reports records remained past the budget; truncated reports that
// the position after has already been evicted (the caller must fall
// back to a state transfer). Returned payloads alias ring memory and
// must not be mutated.
func (r *replRing) from(after uint64, maxBytes int64) (out []ReplRecord, more, truncated bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	live := r.recs[r.head:]
	if len(live) == 0 {
		return nil, false, false
	}
	last := live[len(live)-1].Seq
	if after >= last {
		return nil, false, false
	}
	if live[0].Seq > after+1 {
		return nil, false, true
	}
	i := int(after + 1 - live[0].Seq)
	var budget int64
	for ; i < len(live); i++ {
		budget += int64(len(live[i].Payload)) + replRecOverhead
		out = append(out, live[i])
		if budget >= maxBytes {
			i++
			break
		}
	}
	return out, i < len(live), false
}

// Seq returns the global sequence of the store's most recent mutation.
// Positions are per-store: comparing two nodes' raw seqs is meaningless,
// but (peer seq − last seq we pulled from that peer) is that peer's
// shippable backlog.
func (s *Store) Seq() uint64 { return s.seq.Load() }

// ReplStatus reports the shipping position: the current seq and the
// first seq still retained for shipping. firstAvail == seq+1 means
// nothing is retained (only future records can be shipped).
func (s *Store) ReplStatus() (seq, firstAvail uint64) {
	seq = s.seq.Load()
	first, _ := s.repl.bounds()
	if first == 0 {
		return seq, seq + 1
	}
	return seq, first
}

// ShipLog returns retained records with Seq > after, up to roughly
// maxBytes. truncated means the position was evicted and the caller
// needs a state transfer instead.
func (s *Store) ShipLog(after uint64, maxBytes int64) (recs []ReplRecord, more, truncated bool) {
	recs, more, truncated = s.repl.from(after, maxBytes)
	if !truncated && len(recs) == 0 && after < s.seq.Load() {
		// Ring is empty (or ends early) but the store is past the
		// requested position: the history is gone.
		truncated = true
	}
	return recs, more, truncated
}

// ApplyBatch applies replicated mutations through the normal commit
// path, sharing one WAL commit (one group-commit fsync) across the
// batch. Epoch ops are rejected — callers raise epochs via SetEpoch,
// which preserves the pending-epoch bookkeeping.
func (s *Store) ApplyBatch(ops []ReplOp) error {
	if len(ops) == 0 {
		return nil
	}
	s.mu.Lock()
	var lsn int64
	for _, op := range ops {
		if op.Epoch > 0 {
			s.mu.Unlock()
			return errors.New("kvstore: ApplyBatch cannot carry epoch ops")
		}
		var kind byte
		var payload []byte
		if op.Del {
			kind = opDelete
			payload = append([]byte(nil), op.Key...)
		} else {
			kind = opPut
			payload = appendPut(nil, op.Key, op.Val)
		}
		if s.log != nil {
			var err error
			lsn, err = s.log.Append(kind, payload)
			if err != nil {
				s.mu.Unlock()
				return err
			}
		}
		if op.Del {
			s.tree.delete(op.Key)
		} else {
			s.tree.put(op.Key, op.Val)
		}
		s.noteAppend(kind, payload)
	}
	s.mu.Unlock()
	return s.commit(lsn)
}

// noteAppend assigns the next global seq to one appended mutation and
// retains it for shipping. The caller holds s.mu and passes ownership
// of payload to the ring.
func (s *Store) noteAppend(op byte, payload []byte) {
	seq := s.seq.Add(1)
	s.repl.push(ReplRecord{Seq: seq, Op: op, Payload: payload})
}
