package kvstore

import (
	"fmt"
	"testing"

	"orchestra/internal/wal"
)

// faultModel records what the store acknowledged before the crash: an
// acked mutation must survive recovery, a never-acked one may or may
// not, and the epoch must recover to at least the last acked value.
type faultModel struct {
	present map[string]string // acked puts still live
	deleted map[string]bool   // acked deletes
	epoch   uint64
}

// faultWorkload drives a representative mutation sequence — puts,
// batches, a delete, epoch advances, and two checkpoints — updating the
// model only after each operation returns success. It stops at the
// first error (the injected crash).
func faultWorkload(fsys wal.FS, dir string) *faultModel {
	m := &faultModel{present: map[string]string{}, deleted: map[string]bool{}}
	s, err := Open(dir, Options{
		Sync:            SyncAlways,
		FS:              fsys,
		CheckpointBytes: -1, // deterministic: only explicit checkpoints
		Logf:            func(string, ...any) {},
	})
	if err != nil {
		return m
	}
	defer s.Close()

	put := func(k, v string) bool {
		if s.Put([]byte(k), []byte(v)) != nil {
			return false
		}
		m.present[k] = v
		return true
	}
	// An operation that fails mid-crash may or may not have reached the
	// disk — the key it touched becomes indeterminate and the model must
	// stop asserting about it either way.
	indeterminate := func(keys ...string) {
		for _, k := range keys {
			delete(m.present, k)
			delete(m.deleted, k)
		}
	}
	for i := 0; i < 5; i++ {
		if !put(fmt.Sprintf("k%02d", i), fmt.Sprintf("v%d", i)) {
			return m
		}
	}
	if s.SetEpoch(1) != nil {
		return m
	}
	m.epoch = 1
	if s.Checkpoint() != nil {
		return m
	}
	for i := 5; i < 10; i++ {
		if !put(fmt.Sprintf("k%02d", i), fmt.Sprintf("v%d", i)) {
			return m
		}
	}
	var kvs []KV
	for i := 10; i < 13; i++ {
		kvs = append(kvs, KV{Key: []byte(fmt.Sprintf("k%02d", i)), Val: []byte(fmt.Sprintf("v%d", i))})
	}
	if s.PutBatch(kvs) != nil {
		return m
	}
	for _, kv := range kvs {
		m.present[string(kv.Key)] = string(kv.Val)
	}
	if _, err := s.Delete([]byte("k03")); err != nil {
		indeterminate("k03")
		return m
	}
	delete(m.present, "k03")
	m.deleted["k03"] = true
	if s.SetEpoch(2) != nil {
		return m
	}
	m.epoch = 2
	if s.Checkpoint() != nil {
		return m
	}
	if !put("k99", "last") {
		return m
	}
	if s.SetEpoch(3) != nil {
		return m
	}
	m.epoch = 3
	return m
}

// TestRecoveryAtEveryCrashStep is the central durability proof: crash
// the store at every single write/sync/truncate/close/rename on its
// durability path — with and without a torn write landing — then reopen
// with a clean filesystem and check that nothing acknowledged was lost,
// nothing deleted resurrected, the epoch held, and the store still
// accepts writes.
func TestRecoveryAtEveryCrashStep(t *testing.T) {
	ffs := wal.NewFaultFS(wal.OS)
	faultWorkload(ffs, t.TempDir())
	steps := ffs.Steps()
	if steps < 20 {
		t.Fatalf("workload exercised only %d durability steps", steps)
	}
	t.Logf("sweeping %d crash steps x {clean, torn}", steps)

	for step := 0; step < steps; step++ {
		for _, torn := range []int{0, 7} {
			name := fmt.Sprintf("step=%d/torn=%d", step, torn)
			dir := t.TempDir()
			ffs := wal.NewFaultFS(wal.OS)
			ffs.FailAt(step, torn)
			m := faultWorkload(ffs, dir)

			s, err := Open(dir, Options{Sync: SyncNever})
			if err != nil {
				t.Fatalf("%s: recovery refused: %v", name, err)
			}
			for k, v := range m.present {
				got, ok := s.Get([]byte(k))
				if !ok || string(got) != v {
					t.Fatalf("%s: acked put %s=%s lost (got %q, %v)", name, k, v, got, ok)
				}
			}
			for k := range m.deleted {
				if s.Has([]byte(k)) {
					t.Fatalf("%s: acked delete of %s resurrected", name, k)
				}
			}
			if s.Epoch() < m.epoch {
				t.Fatalf("%s: epoch regressed to %d, acked %d", name, s.Epoch(), m.epoch)
			}
			if s.Has([]byte("never-written")) {
				t.Fatalf("%s: phantom key appeared", name)
			}
			// The recovered store must be fully usable.
			if err := s.Put([]byte("post-recovery"), []byte("ok")); err != nil {
				t.Fatalf("%s: write after recovery: %v", name, err)
			}
			if err := s.Close(); err != nil {
				t.Fatalf("%s: close after recovery: %v", name, err)
			}
		}
	}
}
