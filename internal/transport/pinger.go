package transport

import (
	"context"
	"sync"
	"time"

	"orchestra/internal/ring"
)

// Pinger implements background failure detection for "hung" machines
// (paper §V-C): connection drops are detected immediately by the transport,
// but a machine that stops making progress while keeping its connections
// alive is only caught by periodic application-level pings.
type Pinger struct {
	ep       Endpoint
	interval time.Duration
	timeout  time.Duration
	onDown   func(ring.NodeID)

	mu      sync.Mutex
	peers   map[ring.NodeID]bool // true once reported down
	stop    chan struct{}
	stopped bool
}

// NewPinger creates a pinger on ep that probes each watched peer every
// interval and reports it down (once) if a ping gets no reply within
// timeout. Call Watch to add peers and Start to begin probing.
func NewPinger(ep Endpoint, interval, timeout time.Duration, onDown func(ring.NodeID)) *Pinger {
	return &Pinger{
		ep:       ep,
		interval: interval,
		timeout:  timeout,
		onDown:   onDown,
		peers:    make(map[ring.NodeID]bool),
		stop:     make(chan struct{}),
	}
}

// Watch adds a peer to the probe set.
func (p *Pinger) Watch(id ring.NodeID) {
	if id == p.ep.ID() {
		return
	}
	p.mu.Lock()
	if _, ok := p.peers[id]; !ok {
		p.peers[id] = false
	}
	p.mu.Unlock()
}

// Unwatch removes a peer from the probe set.
func (p *Pinger) Unwatch(id ring.NodeID) {
	p.mu.Lock()
	delete(p.peers, id)
	p.mu.Unlock()
}

// Start launches the probe loop.
func (p *Pinger) Start() {
	go p.loop()
}

// Stop terminates the probe loop.
func (p *Pinger) Stop() {
	p.mu.Lock()
	if !p.stopped {
		p.stopped = true
		close(p.stop)
	}
	p.mu.Unlock()
}

func (p *Pinger) loop() {
	ticker := time.NewTicker(p.interval)
	defer ticker.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-ticker.C:
			p.probeAll()
		}
	}
}

func (p *Pinger) probeAll() {
	p.mu.Lock()
	var targets []ring.NodeID
	for id, down := range p.peers {
		if !down {
			targets = append(targets, id)
		}
	}
	p.mu.Unlock()
	var wg sync.WaitGroup
	for _, id := range targets {
		wg.Add(1)
		go func(id ring.NodeID) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), p.timeout)
			defer cancel()
			if _, err := p.ep.Request(ctx, id, typePing, nil); err != nil {
				p.reportDown(id)
			}
		}(id)
	}
	wg.Wait()
}

func (p *Pinger) reportDown(id ring.NodeID) {
	p.mu.Lock()
	already, watched := p.peers[id]
	if watched && !already {
		p.peers[id] = true
	}
	p.mu.Unlock()
	if watched && !already && p.onDown != nil {
		p.onDown(id)
	}
}
