package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"orchestra/internal/ring"
)

// TCPEndpoint is the real-network implementation of Endpoint, matching the
// paper's design choice (§III-B): a direct TCP connection to each node —
// single-hop communication with TCP's flow control and almost-immediate
// failure detection via dropped connections (§V-A). The node's identity is
// its listen address ("host:port"), so a node's ring position is the SHA-1
// hash of its address, as in the paper.
//
// Wire format, length-prefixed frames:
//
//	u32 frameLen | u16 msgType | u64 reqID | u16 senderLen | sender | payload
//
// One outbound connection per peer carries all of this node's traffic to
// that peer, so per-link FIFO ordering — which the query engine's
// end-of-stream protocol relies on — is inherited from TCP.
type TCPEndpoint struct {
	id ring.NodeID
	ln net.Listener

	mu       sync.Mutex
	out      map[ring.NodeID]*tcpConn
	inbound  map[net.Conn]bool
	handlers map[MsgType]HandlerFunc
	pending  map[uint64]chan rpcResult
	downSubs []func(ring.NodeID)
	downSeen map[ring.NodeID]bool
	closed   bool
	nextReq  atomic.Uint64

	dialTimeout time.Duration
}

// tcpConn is one outbound connection with serialized writes.
type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn
}

// ListenTCP starts a TCP endpoint on addr. The endpoint's NodeID is addr
// itself, so every cluster member must address it consistently.
func ListenTCP(addr string) (*TCPEndpoint, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	e := &TCPEndpoint{
		id:          ring.NodeID(addr),
		ln:          ln,
		out:         make(map[ring.NodeID]*tcpConn),
		inbound:     make(map[net.Conn]bool),
		handlers:    make(map[MsgType]HandlerFunc),
		pending:     make(map[uint64]chan rpcResult),
		downSeen:    make(map[ring.NodeID]bool),
		dialTimeout: 10 * time.Second,
	}
	go e.acceptLoop()
	return e, nil
}

// ID returns the endpoint's identity (its listen address).
func (e *TCPEndpoint) ID() ring.NodeID { return e.id }

// Addr returns the actual bound listen address (useful with ":0").
func (e *TCPEndpoint) Addr() string { return e.ln.Addr().String() }

// Handle registers the handler for a message type.
func (e *TCPEndpoint) Handle(mtype MsgType, h HandlerFunc) {
	e.mu.Lock()
	e.handlers[mtype] = h
	e.mu.Unlock()
}

// OnPeerDown registers a peer-failure callback.
func (e *TCPEndpoint) OnPeerDown(fn func(ring.NodeID)) {
	e.mu.Lock()
	e.downSubs = append(e.downSubs, fn)
	e.mu.Unlock()
}

func (e *TCPEndpoint) acceptLoop() {
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			conn.Close()
			return
		}
		e.inbound[conn] = true
		e.mu.Unlock()
		go func() {
			e.readLoop(conn, "")
			e.mu.Lock()
			delete(e.inbound, conn)
			e.mu.Unlock()
		}()
	}
}

// readLoop decodes frames off one connection; peer is the identity learned
// from the first frame (inbound) or known a priori (outbound replies).
func (e *TCPEndpoint) readLoop(conn net.Conn, peer ring.NodeID) {
	defer conn.Close()
	for {
		frame, err := readFrame(conn)
		if err != nil {
			if peer != "" {
				e.notifyDown(peer)
			}
			return
		}
		if peer == "" {
			peer = frame.sender
		}
		e.dispatch(frame)
	}
}

type tcpFrame struct {
	mtype   MsgType
	reqID   uint64
	sender  ring.NodeID
	payload []byte
}

const maxFrame = 64 << 20

func readFrame(r io.Reader) (tcpFrame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return tcpFrame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 12 || n > maxFrame {
		return tcpFrame{}, fmt.Errorf("transport: bad frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return tcpFrame{}, err
	}
	f := tcpFrame{
		mtype: MsgType(binary.BigEndian.Uint16(buf[0:])),
		reqID: binary.BigEndian.Uint64(buf[2:]),
	}
	idLen := int(binary.BigEndian.Uint16(buf[10:]))
	if 12+idLen > int(n) {
		return tcpFrame{}, errors.New("transport: bad sender length")
	}
	f.sender = ring.NodeID(buf[12 : 12+idLen])
	f.payload = buf[12+idLen:]
	return f, nil
}

func appendFrame(dst []byte, f tcpFrame) []byte {
	body := 12 + len(f.sender) + len(f.payload)
	dst = binary.BigEndian.AppendUint32(dst, uint32(body))
	dst = binary.BigEndian.AppendUint16(dst, uint16(f.mtype))
	dst = binary.BigEndian.AppendUint64(dst, f.reqID)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(f.sender)))
	dst = append(dst, f.sender...)
	return append(dst, f.payload...)
}

// dispatch mirrors the simulated endpoint's semantics.
func (e *TCPEndpoint) dispatch(f tcpFrame) {
	switch f.mtype {
	case typePing:
		_ = e.send(f.sender, tcpFrame{mtype: typeReply, reqID: f.reqID, sender: e.id})
	case typeReply, typeErrReply:
		e.mu.Lock()
		ch, ok := e.pending[f.reqID]
		delete(e.pending, f.reqID)
		e.mu.Unlock()
		if ok {
			var res rpcResult
			if f.mtype == typeErrReply {
				res.err = &RemoteError{Peer: f.sender, Msg: string(f.payload)}
			} else {
				res.payload = f.payload
			}
			ch <- res
		}
	default:
		e.mu.Lock()
		h := e.handlers[f.mtype]
		e.mu.Unlock()
		if f.reqID == 0 {
			if h != nil {
				_, _ = h(f.sender, f.payload)
			}
			return
		}
		reply := tcpFrame{reqID: f.reqID, sender: e.id}
		if h == nil {
			reply.mtype = typeErrReply
			reply.payload = []byte(fmt.Sprintf("%v: %d", ErrNoHandler, f.mtype))
		} else if out, err := h(f.sender, f.payload); err != nil {
			reply.mtype = typeErrReply
			reply.payload = []byte(err.Error())
		} else {
			reply.mtype = typeReply
			reply.payload = out
		}
		_ = e.send(f.sender, reply)
	}
}

// connTo returns (dialing if necessary) the outbound connection to a peer.
func (e *TCPEndpoint) connTo(to ring.NodeID) (*tcpConn, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	c, ok := e.out[to]
	e.mu.Unlock()
	if ok {
		return c, nil
	}
	conn, err := net.DialTimeout("tcp", string(to), e.dialTimeout)
	if err != nil {
		e.notifyDown(to)
		return nil, fmt.Errorf("%w: %v", ErrPeerDown, err)
	}
	c = &tcpConn{conn: conn}
	e.mu.Lock()
	if old, raced := e.out[to]; raced {
		e.mu.Unlock()
		conn.Close()
		return old, nil
	}
	e.out[to] = c
	e.mu.Unlock()
	// Replies and pongs for our requests come back on this connection.
	go e.readLoop(conn, to)
	return c, nil
}

func (e *TCPEndpoint) send(to ring.NodeID, f tcpFrame) error {
	c, err := e.connTo(to)
	if err != nil {
		return err
	}
	buf := appendFrame(nil, f)
	c.mu.Lock()
	_, err = c.conn.Write(buf)
	c.mu.Unlock()
	if err != nil {
		e.dropConn(to)
		e.notifyDown(to)
		return fmt.Errorf("%w: %v", ErrPeerDown, err)
	}
	return nil
}

func (e *TCPEndpoint) dropConn(to ring.NodeID) {
	e.mu.Lock()
	if c, ok := e.out[to]; ok {
		delete(e.out, to)
		c.conn.Close()
	}
	e.mu.Unlock()
}

// Send delivers a one-way message; TCP provides reliability, ordering, and
// backpressure (flow control) on the link.
func (e *TCPEndpoint) Send(to ring.NodeID, mtype MsgType, payload []byte) error {
	if mtype >= reservedBase {
		return fmt.Errorf("transport: message type %#x is reserved", mtype)
	}
	return e.send(to, tcpFrame{mtype: mtype, sender: e.id, payload: payload})
}

// Request performs an RPC over the peer connection.
func (e *TCPEndpoint) Request(ctx context.Context, to ring.NodeID, mtype MsgType, payload []byte) ([]byte, error) {
	reqID := e.nextReq.Add(1)
	ch := make(chan rpcResult, 1)
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	e.pending[reqID] = ch
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.pending, reqID)
		e.mu.Unlock()
	}()

	if err := e.send(to, tcpFrame{mtype: mtype, reqID: reqID, sender: e.id, payload: payload}); err != nil {
		return nil, err
	}
	select {
	case res := <-ch:
		return res.payload, res.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (e *TCPEndpoint) notifyDown(id ring.NodeID) {
	e.mu.Lock()
	if e.downSeen[id] || e.closed {
		e.mu.Unlock()
		return
	}
	e.downSeen[id] = true
	subs := append([]func(ring.NodeID){}, e.downSubs...)
	// Fail pending requests: their replies can no longer arrive if they
	// were directed at this peer (conservatively leave others untouched —
	// the context deadline covers them).
	e.mu.Unlock()
	for _, fn := range subs {
		go fn(id)
	}
}

// Close shuts the listener and all connections down.
func (e *TCPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conns := e.out
	e.out = map[ring.NodeID]*tcpConn{}
	in := make([]net.Conn, 0, len(e.inbound))
	for c := range e.inbound {
		in = append(in, c)
	}
	e.inbound = map[net.Conn]bool{}
	e.mu.Unlock()
	for _, c := range conns {
		c.conn.Close()
	}
	for _, c := range in {
		c.Close()
	}
	return e.ln.Close()
}

var _ Endpoint = (*TCPEndpoint)(nil)
