// Package transport provides the reliable, message-based networking layer
// with flow control required by the substrate (paper §III-B). Two
// implementations are provided: a simulated in-process network (Network)
// with per-link latency, per-node bandwidth shaping, byte-accurate traffic
// accounting, and failure injection — used for experiments, mirroring the
// paper's NetEm/HTB setup (§VI-C) — and a TCP implementation (TCPNetwork)
// for real multi-process deployments, matching the paper's design choice of
// a direct TCP connection to each node for single-hop communication.
//
// Failure detection follows §V-A: a downstream node detects an upstream
// failure almost immediately because the connection drops (OnPeerDown); a
// "hung" machine that keeps its connections alive is detected by background
// pings (Pinger).
package transport

import (
	"context"
	"errors"
	"fmt"

	"orchestra/internal/ring"
)

// MsgType identifies the semantics of a message; higher layers define their
// own constants. Values at and above reservedBase are reserved for the
// transport itself (pings, RPC replies).
type MsgType uint16

const (
	reservedBase MsgType = 0xFF00
	typePing     MsgType = 0xFF01
	typeReply    MsgType = 0xFF02
	typeErrReply MsgType = 0xFF03
)

// headerOverhead approximates per-message framing cost (type, ids, lengths)
// counted by the traffic accounting, roughly matching the TCP implementation
// frame header.
const headerOverhead = 24

// HandlerFunc processes an incoming message. For one-way messages the return
// values are ignored. For requests, the returned payload is sent back as the
// reply, and a non-nil error is propagated to the requester.
type HandlerFunc func(from ring.NodeID, payload []byte) ([]byte, error)

// Endpoint is one node's attachment to the network.
type Endpoint interface {
	// ID returns this node's identity.
	ID() ring.NodeID
	// Send delivers a one-way message reliably and in order per link.
	// It may block briefly under bandwidth shaping (flow control).
	Send(to ring.NodeID, mtype MsgType, payload []byte) error
	// Request performs an RPC: it sends the message and waits for the
	// peer's handler to return a reply, honoring ctx cancellation.
	Request(ctx context.Context, to ring.NodeID, mtype MsgType, payload []byte) ([]byte, error)
	// Handle registers the handler for a message type. It must be called
	// before messages of that type arrive; handlers run on the endpoint's
	// delivery goroutine, one message at a time.
	Handle(mtype MsgType, h HandlerFunc)
	// OnPeerDown registers a callback invoked (once per peer failure) when
	// a connection to a peer drops. Callbacks run on their own goroutine.
	OnPeerDown(fn func(ring.NodeID))
	// Close detaches the endpoint from the network.
	Close() error
}

// Errors returned by endpoints.
var (
	// ErrPeerDown indicates the destination's connection is gone.
	ErrPeerDown = errors.New("transport: peer down")
	// ErrClosed indicates the local endpoint is closed.
	ErrClosed = errors.New("transport: endpoint closed")
	// ErrNoHandler indicates the peer has no handler for the message type.
	ErrNoHandler = errors.New("transport: no handler for message type")
)

// RemoteError wraps an error string returned by a remote handler.
type RemoteError struct {
	Peer ring.NodeID
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("transport: remote error from %s: %s", e.Peer, e.Msg)
}
