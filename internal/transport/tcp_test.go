package transport

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"orchestra/internal/ring"
)

// newTCPPair starts two endpoints on loopback ports.
func newTCPPair(t *testing.T) (*TCPEndpoint, *TCPEndpoint) {
	t.Helper()
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// ListenTCP with :0 yields an unusable identity (port 0); re-listen on
	// the assigned address so the ID matches a dialable address.
	a.Close()
	addrA := freeAddr(t)
	addrB := freeAddr(t)
	ea, err := ListenTCP(addrA)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := ListenTCP(addrB)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ea.Close(); eb.Close() })
	return ea, eb
}

var portCounter struct {
	sync.Mutex
	next int
}

func freeAddr(t *testing.T) string {
	t.Helper()
	// Bind to :0, read the port, release — small race window, retried by
	// the caller's Listen if taken.
	ep, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ep.ln.Addr().String()
	ep.Close()
	return addr
}

func TestTCPSendAndHandle(t *testing.T) {
	a, b := newTCPPair(t)
	got := make(chan string, 1)
	b.Handle(0x0300, func(from ring.NodeID, payload []byte) ([]byte, error) {
		got <- fmt.Sprintf("%s:%s", from, payload)
		return nil, nil
	})
	if err := a.Send(b.ID(), 0x0300, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-got:
		want := string(a.ID()) + ":hello"
		if s != want {
			t.Fatalf("got %q want %q", s, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message not delivered")
	}
}

func TestTCPRequestReply(t *testing.T) {
	a, b := newTCPPair(t)
	b.Handle(0x0301, func(from ring.NodeID, payload []byte) ([]byte, error) {
		return append([]byte("echo:"), payload...), nil
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := a.Request(ctx, b.ID(), 0x0301, []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "echo:ping" {
		t.Fatalf("resp %q", resp)
	}
}

func TestTCPRequestError(t *testing.T) {
	a, b := newTCPPair(t)
	b.Handle(0x0302, func(ring.NodeID, []byte) ([]byte, error) {
		return nil, fmt.Errorf("boom")
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := a.Request(ctx, b.ID(), 0x0302, nil); err == nil {
		t.Fatal("expected remote error")
	}
	// Unhandled type also errors.
	if _, err := a.Request(ctx, b.ID(), 0x03FF, nil); err == nil {
		t.Fatal("expected no-handler error")
	}
}

func TestTCPOrderingPerLink(t *testing.T) {
	a, b := newTCPPair(t)
	var mu sync.Mutex
	var seen []int
	done := make(chan struct{})
	b.Handle(0x0303, func(_ ring.NodeID, payload []byte) ([]byte, error) {
		mu.Lock()
		seen = append(seen, int(payload[0]))
		n := len(seen)
		mu.Unlock()
		if n == 100 {
			close(done)
		}
		return nil, nil
	})
	for i := 0; i < 100; i++ {
		if err := a.Send(b.ID(), 0x0303, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("timeout")
	}
	for i, v := range seen {
		if v != i {
			t.Fatalf("out of order at %d: %d", i, v)
		}
	}
}

func TestTCPPeerDownDetection(t *testing.T) {
	a, b := newTCPPair(t)
	down := make(chan ring.NodeID, 1)
	a.OnPeerDown(func(id ring.NodeID) {
		select {
		case down <- id:
		default:
		}
	})
	// Establish the link, then kill b.
	b.Handle(0x0304, func(ring.NodeID, []byte) ([]byte, error) { return nil, nil })
	if err := a.Send(b.ID(), 0x0304, []byte("x")); err != nil {
		t.Fatal(err)
	}
	b.Close()
	// Either the read loop notices the close, or the next send fails.
	deadline := time.After(5 * time.Second)
	for {
		select {
		case id := <-down:
			if id != b.ID() {
				t.Fatalf("down peer %s", id)
			}
			return
		case <-deadline:
			t.Fatal("peer down not detected")
		default:
			_ = a.Send(b.ID(), 0x0304, []byte("x"))
			time.Sleep(10 * time.Millisecond)
		}
	}
}

func TestTCPPingThroughPinger(t *testing.T) {
	a, b := newTCPPair(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// The pinger's probe is Request(typePing); a live peer pongs.
	if _, err := a.Request(ctx, b.ID(), typePing, nil); err != nil {
		t.Fatalf("ping: %v", err)
	}
	down := make(chan ring.NodeID, 1)
	p := NewPinger(a, 20*time.Millisecond, 100*time.Millisecond, func(id ring.NodeID) {
		select {
		case down <- id:
		default:
		}
	})
	p.Watch(b.ID())
	p.Start()
	defer p.Stop()
	b.Close()
	select {
	case <-down:
	case <-time.After(5 * time.Second):
		t.Fatal("pinger did not detect dead peer")
	}
}

func TestTCPReservedTypeRejected(t *testing.T) {
	a, b := newTCPPair(t)
	if err := a.Send(b.ID(), typePing, nil); err == nil {
		t.Fatal("reserved type accepted by Send")
	}
}

func TestTCPLargePayload(t *testing.T) {
	a, b := newTCPPair(t)
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i)
	}
	b.Handle(0x0305, func(_ ring.NodeID, p []byte) ([]byte, error) {
		return p, nil
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp, err := a.Request(ctx, b.ID(), 0x0305, payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != len(payload) {
		t.Fatalf("len %d", len(resp))
	}
	for i := range resp {
		if resp[i] != payload[i] {
			t.Fatalf("corruption at %d", i)
		}
	}
}
