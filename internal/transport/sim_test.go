package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"orchestra/internal/ring"
)

const (
	typeEcho MsgType = 1
	typeNote MsgType = 2
	typeFail MsgType = 3
)

func twoNodes(t *testing.T, cfg Config) (*Network, Endpoint, Endpoint) {
	t.Helper()
	net := NewNetwork(cfg)
	t.Cleanup(net.Shutdown)
	a, err := net.Join("nodeA")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Join("nodeB")
	if err != nil {
		t.Fatal(err)
	}
	return net, a, b
}

func TestSendAndHandle(t *testing.T) {
	_, a, b := twoNodes(t, Config{})
	got := make(chan string, 1)
	b.Handle(typeNote, func(from ring.NodeID, payload []byte) ([]byte, error) {
		got <- fmt.Sprintf("%s:%s", from, payload)
		return nil, nil
	})
	if err := a.Send("nodeB", typeNote, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-got:
		if s != "nodeA:hello" {
			t.Errorf("got %q", s)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("message not delivered")
	}
}

func TestRequestReply(t *testing.T) {
	_, a, b := twoNodes(t, Config{})
	b.Handle(typeEcho, func(from ring.NodeID, payload []byte) ([]byte, error) {
		return append([]byte("echo:"), payload...), nil
	})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	resp, err := a.Request(ctx, "nodeB", typeEcho, []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "echo:ping" {
		t.Errorf("resp = %q", resp)
	}
}

func TestRequestRemoteError(t *testing.T) {
	_, a, b := twoNodes(t, Config{})
	b.Handle(typeFail, func(from ring.NodeID, payload []byte) ([]byte, error) {
		return nil, errors.New("boom")
	})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, err := a.Request(ctx, "nodeB", typeFail, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("want RemoteError, got %v", err)
	}
	if re.Msg != "boom" || re.Peer != "nodeB" {
		t.Errorf("RemoteError = %+v", re)
	}
}

func TestRequestNoHandler(t *testing.T) {
	_, a, _ := twoNodes(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, err := a.Request(ctx, "nodeB", MsgType(77), nil)
	if err == nil {
		t.Fatal("want error for missing handler")
	}
}

func TestPerLinkOrdering(t *testing.T) {
	_, a, b := twoNodes(t, Config{Latency: time.Millisecond})
	var mu sync.Mutex
	var got []int
	done := make(chan struct{})
	const n = 200
	b.Handle(typeNote, func(from ring.NodeID, payload []byte) ([]byte, error) {
		mu.Lock()
		got = append(got, int(payload[0])<<8|int(payload[1]))
		if len(got) == n {
			close(done)
		}
		mu.Unlock()
		return nil, nil
	})
	for i := 0; i < n; i++ {
		if err := a.Send("nodeB", typeNote, []byte{byte(i >> 8), byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("not all messages arrived")
	}
	for i := 0; i < n; i++ {
		if got[i] != i {
			t.Fatalf("out of order at %d: %d", i, got[i])
		}
	}
}

func TestLoopbackDelivery(t *testing.T) {
	net, a, _ := twoNodes(t, Config{})
	got := make(chan struct{}, 1)
	a.Handle(typeNote, func(from ring.NodeID, payload []byte) ([]byte, error) {
		got <- struct{}{}
		return nil, nil
	})
	if err := a.Send("nodeA", typeNote, []byte("self")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("loopback not delivered")
	}
	if s := net.Stats(); s.TotalBytes != 0 {
		t.Errorf("loopback counted as traffic: %d bytes", s.TotalBytes)
	}
}

func TestKillFailsSendsAndNotifies(t *testing.T) {
	net, a, b := twoNodes(t, Config{})
	b.Handle(typeNote, func(from ring.NodeID, payload []byte) ([]byte, error) { return nil, nil })
	downCh := make(chan ring.NodeID, 1)
	a.OnPeerDown(func(id ring.NodeID) { downCh <- id })

	net.Kill("nodeB")
	select {
	case id := <-downCh:
		if id != "nodeB" {
			t.Errorf("down peer = %s", id)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("OnPeerDown not fired")
	}
	if err := a.Send("nodeB", typeNote, []byte("x")); !errors.Is(err, ErrPeerDown) {
		t.Errorf("Send to dead peer = %v, want ErrPeerDown", err)
	}
	if net.Alive("nodeB") {
		t.Error("killed node still alive")
	}
}

func TestKillFailsPendingRequests(t *testing.T) {
	net, a, b := twoNodes(t, Config{})
	started := make(chan struct{})
	b.Handle(typeEcho, func(from ring.NodeID, payload []byte) ([]byte, error) {
		close(started)
		time.Sleep(10 * time.Second) // never replies in time
		return nil, nil
	})
	errCh := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_, err := a.Request(ctx, "nodeB", typeEcho, nil)
		errCh <- err
	}()
	<-started
	net.Kill("nodeB")
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrPeerDown) {
			t.Errorf("pending request got %v, want ErrPeerDown", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("pending request not failed on peer death")
	}
}

func TestHangIsSilent(t *testing.T) {
	net, a, b := twoNodes(t, Config{})
	var processed atomic.Int32
	b.Handle(typeNote, func(from ring.NodeID, payload []byte) ([]byte, error) {
		processed.Add(1)
		return nil, nil
	})
	downFired := make(chan struct{}, 1)
	a.OnPeerDown(func(id ring.NodeID) { downFired <- struct{}{} })

	net.Hang("nodeB")
	// Sends to a hung node still succeed (connections are alive).
	if err := a.Send("nodeB", typeNote, []byte("x")); err != nil {
		t.Fatalf("send to hung peer failed: %v", err)
	}
	time.Sleep(100 * time.Millisecond)
	if processed.Load() != 0 {
		t.Error("hung node processed a message")
	}
	select {
	case <-downFired:
		t.Error("OnPeerDown fired for a hang (connections alive)")
	default:
	}
	// Resume: the queued message is processed.
	net.Unhang("nodeB")
	deadline := time.Now().Add(2 * time.Second)
	for processed.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if processed.Load() != 1 {
		t.Error("message lost across hang/unhang")
	}
}

func TestPingerDetectsHungPeer(t *testing.T) {
	net, a, _ := twoNodes(t, Config{})
	detected := make(chan ring.NodeID, 2)
	p := NewPinger(a, 20*time.Millisecond, 50*time.Millisecond, func(id ring.NodeID) {
		detected <- id
	})
	p.Watch("nodeB")
	p.Start()
	defer p.Stop()

	// Healthy peer: no detection for a few intervals.
	select {
	case id := <-detected:
		t.Fatalf("false positive: %s", id)
	case <-time.After(150 * time.Millisecond):
	}

	net.Hang("nodeB")
	select {
	case id := <-detected:
		if id != "nodeB" {
			t.Errorf("detected %s", id)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("hung peer not detected")
	}
	// Only reported once.
	select {
	case <-detected:
		t.Error("peer reported down twice")
	case <-time.After(200 * time.Millisecond):
	}
}

func TestLatencyShaping(t *testing.T) {
	_, a, b := twoNodes(t, Config{Latency: 80 * time.Millisecond})
	got := make(chan time.Time, 1)
	b.Handle(typeNote, func(from ring.NodeID, payload []byte) ([]byte, error) {
		got <- time.Now()
		return nil, nil
	})
	start := time.Now()
	if err := a.Send("nodeB", typeNote, []byte("x")); err != nil {
		t.Fatal(err)
	}
	arrival := <-got
	if d := arrival.Sub(start); d < 70*time.Millisecond {
		t.Errorf("delivery took %v, want >= ~80ms", d)
	}
}

func TestBandwidthShaping(t *testing.T) {
	// 100 KB at 200 KB/s should take ~0.5s of send-side shaping.
	_, a, b := twoNodes(t, Config{BandwidthBps: 200 * 1024})
	done := make(chan struct{}, 16)
	b.Handle(typeNote, func(from ring.NodeID, payload []byte) ([]byte, error) {
		done <- struct{}{}
		return nil, nil
	})
	payload := make([]byte, 25*1024)
	start := time.Now()
	for i := 0; i < 4; i++ {
		if err := a.Send("nodeB", typeNote, payload); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("message lost")
		}
	}
	elapsed := time.Since(start)
	if elapsed < 350*time.Millisecond {
		t.Errorf("4x25KB at 200KB/s finished in %v, want >= ~0.5s", elapsed)
	}
}

func TestStatsAccounting(t *testing.T) {
	net, a, b := twoNodes(t, Config{})
	received := make(chan struct{}, 1)
	b.Handle(typeNote, func(from ring.NodeID, payload []byte) ([]byte, error) {
		received <- struct{}{}
		return nil, nil
	})
	payload := make([]byte, 1000)
	if err := a.Send("nodeB", typeNote, payload); err != nil {
		t.Fatal(err)
	}
	<-received
	s := net.Stats()
	want := int64(1000 + headerOverhead)
	if s.TotalBytes != want {
		t.Errorf("TotalBytes = %d, want %d", s.TotalBytes, want)
	}
	if s.TotalMsgs != 1 {
		t.Errorf("TotalMsgs = %d", s.TotalMsgs)
	}
	if s.SentBytes["nodeA"] != want || s.RecvBytes["nodeB"] != want {
		t.Errorf("per-node stats wrong: %+v", s)
	}
	net.ResetStats()
	if s := net.Stats(); s.TotalBytes != 0 || len(s.SentBytes) != 0 {
		t.Error("ResetStats did not clear counters")
	}
}

func TestDuplicateJoinRejected(t *testing.T) {
	net := NewNetwork(Config{})
	defer net.Shutdown()
	if _, err := net.Join("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Join("x"); err == nil {
		t.Fatal("duplicate join should fail")
	}
}

func TestConcurrentRequests(t *testing.T) {
	_, a, b := twoNodes(t, Config{})
	b.Handle(typeEcho, func(from ring.NodeID, payload []byte) ([]byte, error) {
		return payload, nil
	})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			msg := []byte(fmt.Sprintf("m%d", i))
			resp, err := a.Request(ctx, "nodeB", typeEcho, msg)
			if err != nil {
				errs <- err
				return
			}
			if string(resp) != string(msg) {
				errs <- fmt.Errorf("resp %q != %q", resp, msg)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestCloseEndpoint(t *testing.T) {
	_, a, _ := twoNodes(t, Config{})
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("nodeB", typeNote, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after close = %v", err)
	}
	ctx := context.Background()
	if _, err := a.Request(ctx, "nodeB", typeEcho, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Request after close = %v", err)
	}
}
