package transport

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"orchestra/internal/ring"
)

// Config controls the simulated network's behaviour. The zero value is an
// ideal network: no latency, unlimited bandwidth.
type Config struct {
	// Latency is the one-way delivery delay applied to every inter-node
	// message (the NetEm substitute of §VI-C).
	Latency time.Duration
	// BandwidthBps caps each node's outbound bytes/second (the HTB
	// substitute of §VI-C). 0 means unlimited.
	BandwidthBps int64
}

// Network is a simulated message fabric connecting endpoints in-process.
// Messages are really encoded by the layers above, so the byte counters
// reflect genuine wire sizes.
type Network struct {
	cfg Config

	mu    sync.Mutex
	nodes map[ring.NodeID]*simEndpoint
	links map[linkKey]*link

	totalBytes atomic.Int64
	totalMsgs  atomic.Int64
	statsMu    sync.Mutex
	sentBytes  map[ring.NodeID]int64
	recvBytes  map[ring.NodeID]int64
}

type linkKey struct{ from, to ring.NodeID }

// NewNetwork creates a simulated network.
func NewNetwork(cfg Config) *Network {
	return &Network{
		cfg:       cfg,
		nodes:     make(map[ring.NodeID]*simEndpoint),
		links:     make(map[linkKey]*link),
		sentBytes: make(map[ring.NodeID]int64),
		recvBytes: make(map[ring.NodeID]int64),
	}
}

// Join attaches a new endpoint with the given identity. A killed node's
// identity may be reused — the restart path of a crashed replica — which
// replaces its dead endpoint and retires any links still pointing at it.
func (n *Network) Join(id ring.NodeID) (Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if old, exists := n.nodes[id]; exists && !old.isClosed() {
		return nil, fmt.Errorf("transport: node %q already joined", id)
	}
	// Stale links cache a pointer to a previous endpoint with this
	// identity (killed or closed) and would silently drop messages meant
	// for the replacement.
	for key, l := range n.links {
		if key.to == id {
			delete(n.links, key)
			l.mu.Lock()
			l.closed = true
			l.mu.Unlock()
			l.cond.Signal()
		}
	}
	ep := &simEndpoint{
		net:      n,
		id:       id,
		handlers: make(map[MsgType]HandlerFunc),
		pending:  make(map[uint64]pendingReq),
	}
	ep.cond = sync.NewCond(&ep.mu)
	n.nodes[id] = ep
	go ep.deliveryLoop()
	return ep, nil
}

// Kill abruptly fails a node: its endpoint stops, in-flight messages to it
// are dropped, and every other endpoint's OnPeerDown callbacks fire — the
// moral equivalent of all its TCP connections dropping (§V-A).
func (n *Network) Kill(id ring.NodeID) {
	n.mu.Lock()
	ep := n.nodes[id]
	var peers []*simEndpoint
	for pid, p := range n.nodes {
		if pid != id {
			peers = append(peers, p)
		}
	}
	n.mu.Unlock()
	if ep == nil {
		return
	}
	ep.shutdown(true)
	for _, p := range peers {
		p.peerDown(id)
	}
}

// Hang simulates a machine that stops making progress without dropping its
// connections: sends to it still succeed, but nothing is processed and no
// pings are answered. Only the background ping mechanism detects this state.
func (n *Network) Hang(id ring.NodeID) {
	n.mu.Lock()
	ep := n.nodes[id]
	n.mu.Unlock()
	if ep != nil {
		ep.setHung(true)
	}
}

// Unhang resumes a hung node.
func (n *Network) Unhang(id ring.NodeID) {
	n.mu.Lock()
	ep := n.nodes[id]
	n.mu.Unlock()
	if ep != nil {
		ep.setHung(false)
	}
}

// Alive reports whether the node is attached and not killed.
func (n *Network) Alive(id ring.NodeID) bool {
	n.mu.Lock()
	ep := n.nodes[id]
	n.mu.Unlock()
	return ep != nil && !ep.isClosed()
}

// Stats is a snapshot of traffic counters. Self-addressed (local) messages
// are not counted: they never cross the network.
type Stats struct {
	TotalBytes int64
	TotalMsgs  int64
	SentBytes  map[ring.NodeID]int64
	RecvBytes  map[ring.NodeID]int64
}

// Stats returns a snapshot of the accumulated traffic counters.
func (n *Network) Stats() Stats {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	s := Stats{
		TotalBytes: n.totalBytes.Load(),
		TotalMsgs:  n.totalMsgs.Load(),
		SentBytes:  make(map[ring.NodeID]int64, len(n.sentBytes)),
		RecvBytes:  make(map[ring.NodeID]int64, len(n.recvBytes)),
	}
	for k, v := range n.sentBytes {
		s.SentBytes[k] = v
	}
	for k, v := range n.recvBytes {
		s.RecvBytes[k] = v
	}
	return s
}

// ResetStats zeroes the traffic counters.
func (n *Network) ResetStats() {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	n.totalBytes.Store(0)
	n.totalMsgs.Store(0)
	n.sentBytes = make(map[ring.NodeID]int64)
	n.recvBytes = make(map[ring.NodeID]int64)
}

func (n *Network) account(from, to ring.NodeID, size int) {
	n.totalBytes.Add(int64(size))
	n.totalMsgs.Add(1)
	n.statsMu.Lock()
	n.sentBytes[from] += int64(size)
	n.recvBytes[to] += int64(size)
	n.statsMu.Unlock()
}

// envelope is a message in flight.
type envelope struct {
	from    ring.NodeID
	mtype   MsgType
	reqID   uint64 // nonzero for requests and replies
	payload []byte
}

// link preserves FIFO order per (from,to) pair while applying latency.
type link struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []timedEnvelope
	dst    *simEndpoint
	closed bool
}

type timedEnvelope struct {
	env       envelope
	deliverAt time.Time
}

func (n *Network) getLink(from ring.NodeID, dst *simEndpoint) *link {
	key := linkKey{from, dst.id}
	n.mu.Lock()
	defer n.mu.Unlock()
	l, ok := n.links[key]
	if !ok {
		l = &link{dst: dst}
		l.cond = sync.NewCond(&l.mu)
		n.links[key] = l
		go l.run()
	}
	return l
}

func (l *link) push(env envelope, deliverAt time.Time) {
	l.mu.Lock()
	l.queue = append(l.queue, timedEnvelope{env, deliverAt})
	l.mu.Unlock()
	l.cond.Signal()
}

func (l *link) run() {
	for {
		l.mu.Lock()
		for len(l.queue) == 0 && !l.closed {
			l.cond.Wait()
		}
		if l.closed {
			l.mu.Unlock()
			return
		}
		te := l.queue[0]
		l.queue = l.queue[1:]
		l.mu.Unlock()
		if d := time.Until(te.deliverAt); d > 0 {
			time.Sleep(d)
		}
		l.dst.enqueue(te.env)
	}
}

// Shutdown stops all endpoints and link goroutines. The network must not be
// used afterwards.
func (n *Network) Shutdown() {
	n.mu.Lock()
	eps := make([]*simEndpoint, 0, len(n.nodes))
	for _, ep := range n.nodes {
		eps = append(eps, ep)
	}
	links := make([]*link, 0, len(n.links))
	for _, l := range n.links {
		links = append(links, l)
	}
	n.nodes = map[ring.NodeID]*simEndpoint{}
	n.links = map[linkKey]*link{}
	n.mu.Unlock()
	for _, ep := range eps {
		ep.shutdown(false)
	}
	for _, l := range links {
		l.mu.Lock()
		l.closed = true
		l.mu.Unlock()
		l.cond.Signal()
	}
}

// rpcResult carries a reply or failure to a waiting requester.
type rpcResult struct {
	payload []byte
	err     error
}

// pendingReq tracks an outstanding RPC so it can be failed if its peer dies.
type pendingReq struct {
	peer ring.NodeID
	ch   chan rpcResult
}

// simEndpoint implements Endpoint on a Network.
type simEndpoint struct {
	net *Network
	id  ring.NodeID

	mu       sync.Mutex
	cond     *sync.Cond
	inbox    []envelope
	closed   bool
	hung     bool
	handlers map[MsgType]HandlerFunc
	downFns  []func(ring.NodeID)
	pending  map[uint64]pendingReq
	nextReq  uint64

	// Outbound bandwidth shaping state.
	shapeMu  sync.Mutex
	nextFree time.Time
}

func (e *simEndpoint) ID() ring.NodeID { return e.id }

func (e *simEndpoint) Handle(mtype MsgType, h HandlerFunc) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handlers[mtype] = h
}

func (e *simEndpoint) OnPeerDown(fn func(ring.NodeID)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.downFns = append(e.downFns, fn)
}

func (e *simEndpoint) isClosed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

func (e *simEndpoint) setHung(h bool) {
	e.mu.Lock()
	e.hung = h
	e.mu.Unlock()
	e.cond.Broadcast()
}

// shape applies outbound bandwidth limiting: the caller sleeps until the
// virtual NIC has capacity, which is exactly the back-pressure a full TCP
// send buffer provides (§V-A "automatically provides flow control").
func (e *simEndpoint) shape(size int) {
	bw := e.net.cfg.BandwidthBps
	if bw <= 0 {
		return
	}
	cost := time.Duration(float64(size) / float64(bw) * float64(time.Second))
	e.shapeMu.Lock()
	now := time.Now()
	if e.nextFree.Before(now) {
		e.nextFree = now
	}
	wait := e.nextFree.Sub(now)
	e.nextFree = e.nextFree.Add(cost)
	e.shapeMu.Unlock()
	if wait > 0 {
		time.Sleep(wait)
	}
}

func (e *simEndpoint) deliver(to ring.NodeID, env envelope) error {
	if e.isClosed() {
		return ErrClosed
	}
	if to == e.id {
		// Loopback: no latency, no shaping, no traffic accounting.
		e.enqueue(env)
		return nil
	}
	e.net.mu.Lock()
	dst := e.net.nodes[to]
	e.net.mu.Unlock()
	if dst == nil || dst.isClosed() {
		return fmt.Errorf("%w: %s", ErrPeerDown, to)
	}
	size := len(env.payload) + headerOverhead
	e.shape(size)
	e.net.account(e.id, to, size)
	l := e.net.getLink(e.id, dst)
	l.push(env, time.Now().Add(e.net.cfg.Latency))
	return nil
}

func (e *simEndpoint) Send(to ring.NodeID, mtype MsgType, payload []byte) error {
	return e.deliver(to, envelope{from: e.id, mtype: mtype, payload: payload})
}

func (e *simEndpoint) Request(ctx context.Context, to ring.NodeID, mtype MsgType, payload []byte) ([]byte, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	e.nextReq++
	reqID := e.nextReq
	ch := make(chan rpcResult, 1)
	e.pending[reqID] = pendingReq{peer: to, ch: ch}
	e.mu.Unlock()

	defer func() {
		e.mu.Lock()
		delete(e.pending, reqID)
		e.mu.Unlock()
	}()

	if err := e.deliver(to, envelope{from: e.id, mtype: mtype, reqID: reqID, payload: payload}); err != nil {
		return nil, err
	}
	select {
	case res := <-ch:
		return res.payload, res.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (e *simEndpoint) enqueue(env envelope) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.inbox = append(e.inbox, env)
	e.mu.Unlock()
	e.cond.Signal()
}

func (e *simEndpoint) deliveryLoop() {
	for {
		e.mu.Lock()
		for (len(e.inbox) == 0 || e.hung) && !e.closed {
			e.cond.Wait()
		}
		if e.closed {
			e.mu.Unlock()
			return
		}
		env := e.inbox[0]
		e.inbox = e.inbox[1:]
		e.mu.Unlock()
		e.dispatch(env)
	}
}

func (e *simEndpoint) dispatch(env envelope) {
	switch env.mtype {
	case typePing:
		// Application-level pong: a hung machine never reaches here.
		reply := envelope{from: e.id, mtype: typeReply, reqID: env.reqID}
		_ = e.deliver(env.from, reply)
	case typeReply, typeErrReply:
		e.mu.Lock()
		pr, ok := e.pending[env.reqID]
		e.mu.Unlock()
		if ok {
			var res rpcResult
			if env.mtype == typeErrReply {
				res.err = &RemoteError{Peer: env.from, Msg: string(env.payload)}
			} else {
				res.payload = env.payload
			}
			pr.ch <- res
		}
	default:
		e.mu.Lock()
		h := e.handlers[env.mtype]
		e.mu.Unlock()
		if env.reqID == 0 {
			if h != nil {
				_, _ = h(env.from, env.payload)
			}
			return
		}
		// Request: reply with the handler result.
		var reply envelope
		reply.from = e.id
		reply.reqID = env.reqID
		if h == nil {
			reply.mtype = typeErrReply
			reply.payload = []byte(fmt.Sprintf("%v: %d", ErrNoHandler, env.mtype))
		} else if out, err := h(env.from, env.payload); err != nil {
			reply.mtype = typeErrReply
			reply.payload = []byte(err.Error())
		} else {
			reply.mtype = typeReply
			reply.payload = out
		}
		_ = e.deliver(env.from, reply)
	}
}

// peerDown fails pending requests to the dead peer and fires callbacks.
func (e *simEndpoint) peerDown(id ring.NodeID) {
	e.mu.Lock()
	fns := append([]func(ring.NodeID){}, e.downFns...)
	var failed []chan rpcResult
	for reqID, pr := range e.pending {
		if pr.peer == id {
			failed = append(failed, pr.ch)
			delete(e.pending, reqID)
		}
	}
	e.mu.Unlock()
	for _, ch := range failed {
		ch <- rpcResult{err: fmt.Errorf("%w: %s", ErrPeerDown, id)}
	}
	for _, fn := range fns {
		go fn(id)
	}
}

func (e *simEndpoint) shutdown(abrupt bool) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	pend := e.pending
	e.pending = map[uint64]pendingReq{}
	e.inbox = nil
	e.mu.Unlock()
	e.cond.Broadcast()
	for _, pr := range pend {
		pr.ch <- rpcResult{err: ErrClosed}
	}
	_ = abrupt
}

func (e *simEndpoint) Close() error {
	e.net.mu.Lock()
	delete(e.net.nodes, e.id)
	e.net.mu.Unlock()
	e.shutdown(false)
	return nil
}
