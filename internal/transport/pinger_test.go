package transport

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"orchestra/internal/ring"
)

// pingerFor builds a pinger on ep with fast test timings, collecting
// down reports into a synchronized slice.
func pingerFor(ep Endpoint) (*Pinger, func() []ring.NodeID) {
	var mu sync.Mutex
	var reports []ring.NodeID
	p := NewPinger(ep, 5*time.Millisecond, 20*time.Millisecond, func(id ring.NodeID) {
		mu.Lock()
		reports = append(reports, id)
		mu.Unlock()
	})
	return p, func() []ring.NodeID {
		mu.Lock()
		defer mu.Unlock()
		return append([]ring.NodeID(nil), reports...)
	}
}

func TestPingerReportsHungPeerOnce(t *testing.T) {
	net, a, b := twoNodes(t, Config{})
	p, reports := pingerFor(a)
	p.Watch(b.ID())
	p.Start()
	defer p.Stop()

	// Healthy peer: several probe intervals, no report.
	time.Sleep(30 * time.Millisecond)
	if got := reports(); len(got) != 0 {
		t.Fatalf("healthy peer reported down: %v", got)
	}

	// A hung machine keeps its connections but stops answering pings —
	// only the pinger catches this failure mode.
	net.Hang(b.ID())
	deadline := time.Now().Add(2 * time.Second)
	for len(reports()) == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	got := reports()
	if len(got) != 1 || got[0] != b.ID() {
		t.Fatalf("want exactly one report for %s, got %v", b.ID(), got)
	}

	// The report is once-only: further failed probes stay silent.
	time.Sleep(100 * time.Millisecond)
	if got := reports(); len(got) != 1 {
		t.Fatalf("hung peer reported more than once: %v", got)
	}
}

func TestPingerRewatchReportsAgain(t *testing.T) {
	net, a, b := twoNodes(t, Config{})
	p, reports := pingerFor(a)
	p.Watch(b.ID())
	p.Start()
	defer p.Stop()

	net.Hang(b.ID())
	deadline := time.Now().Add(2 * time.Second)
	for len(reports()) == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := reports(); len(got) != 1 {
		t.Fatalf("want one report, got %v", got)
	}

	// Unwatch forgets the down state; re-watching a still-hung peer
	// reports it down again (a rejoin that immediately fails).
	p.Unwatch(b.ID())
	p.Watch(b.ID())
	deadline = time.Now().Add(2 * time.Second)
	for len(reports()) < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := reports(); len(got) != 2 {
		t.Fatalf("re-watched hung peer not re-reported: %v", got)
	}
}

func TestPingerUnwatchedPeerStaysSilent(t *testing.T) {
	net, a, b := twoNodes(t, Config{})
	p, reports := pingerFor(a)
	p.Watch(b.ID())
	p.Unwatch(b.ID())
	p.Start()
	defer p.Stop()

	net.Hang(b.ID())
	time.Sleep(100 * time.Millisecond)
	if got := reports(); len(got) != 0 {
		t.Fatalf("unwatched peer reported down: %v", got)
	}
}

func TestPingerIgnoresSelf(t *testing.T) {
	net, a, _ := twoNodes(t, Config{})
	p, reports := pingerFor(a)
	p.Watch(a.ID()) // watching yourself is a no-op
	p.Start()
	defer p.Stop()

	net.Hang(a.ID())
	time.Sleep(100 * time.Millisecond)
	if got := reports(); len(got) != 0 {
		t.Fatalf("self reported down: %v", got)
	}
}

// TestPingerStopRaces hammers Watch/Unwatch/Stop concurrently with the
// probe loop; run under -race this pins down the locking contract,
// including Stop during an in-flight probe and double Stop.
func TestPingerStopRaces(t *testing.T) {
	net, a, b := twoNodes(t, Config{})
	var downs atomic.Int64
	p := NewPinger(a, time.Millisecond, 5*time.Millisecond, func(ring.NodeID) {
		downs.Add(1)
	})
	p.Watch(b.ID())
	p.Start()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				p.Watch(b.ID())
				p.Unwatch(b.ID())
			}
		}()
	}
	net.Hang(b.ID()) // probes in flight now time out while peers churn
	wg.Wait()
	var stops sync.WaitGroup
	for i := 0; i < 2; i++ {
		stops.Add(1)
		go func() {
			defer stops.Done()
			p.Stop() // concurrent double Stop must be safe
		}()
	}
	stops.Wait()
}
