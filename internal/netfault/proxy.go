// Package netfault is a fault-injecting TCP proxy for wire-level
// robustness tests. A Proxy fronts one backend address and forwards
// byte streams in both directions while injecting faults on command:
// connection resets, blackholes (connections stay open, bytes stop
// moving), fixed or jittered per-chunk delay, byte-truncation mid-frame
// (the connection dies partway through a length-prefixed frame), and
// listener flap (the proxy stops accepting, then comes back on the same
// address).
//
// Faults apply to live connections, not just new ones — flipping
// Blackhole on stalls transfers already in flight, which is what a real
// partition does to a real connection.
package netfault

import (
	"errors"
	"io"
	mrand "math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Faults is one fault configuration; the zero value forwards cleanly.
type Faults struct {
	// Delay pauses each forwarded chunk (both directions) — fixed
	// latency injection.
	Delay time.Duration
	// Jitter adds a uniform random 0..Jitter on top of Delay.
	Jitter time.Duration
	// Blackhole swallows all bytes in both directions: connections stay
	// open and writable, nothing arrives. The classic partition.
	Blackhole bool
	// TruncateAfter, when > 0, hard-closes a connection (RST, no
	// graceful FIN) after it forwards that many more bytes — cutting a
	// wire frame in half. Counted per connection from the moment the
	// config is applied to it.
	TruncateAfter int64
}

// Stats are the proxy's cumulative counters.
type Stats struct {
	// Accepted counts client connections accepted.
	Accepted int64
	// Forwarded counts bytes forwarded (both directions summed).
	Forwarded int64
	// Resets counts connections severed by ResetAll or TruncateAfter.
	Resets int64
}

// Proxy is one fault-injecting TCP forwarder. Safe for concurrent use.
type Proxy struct {
	backend string
	faults  atomic.Pointer[Faults]

	accepted  atomic.Int64
	forwarded atomic.Int64
	resets    atomic.Int64

	mu     sync.Mutex
	addr   string // bound address, stable across Pause/Resume
	ln     net.Listener
	conns  map[*proxyConn]struct{}
	closed bool
}

// proxyConn is one proxied client connection pair.
type proxyConn struct {
	p        *Proxy
	client   net.Conn
	upstream net.Conn
	// budget is the remaining byte budget under TruncateAfter;
	// negative = unlimited. Shared by both directions.
	budget atomic.Int64
	once   sync.Once
}

// New starts a proxy listening on addr (":0" picks a port) and
// forwarding to backend. The backend is dialed per client connection,
// so it may come and go.
func New(addr, backend string) (*Proxy, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		backend: backend,
		addr:    ln.Addr().String(),
		ln:      ln,
		conns:   make(map[*proxyConn]struct{}),
	}
	p.faults.Store(&Faults{})
	go p.acceptLoop(ln)
	return p, nil
}

// Addr returns the proxy's listen address — what clients dial. It stays
// valid across Pause/Resume.
func (p *Proxy) Addr() string { return p.addr }

// Backend returns the address the proxy forwards to.
func (p *Proxy) Backend() string { return p.backend }

// Stats snapshots the proxy's counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Accepted:  p.accepted.Load(),
		Forwarded: p.forwarded.Load(),
		Resets:    p.resets.Load(),
	}
}

// SetFaults swaps the fault configuration. Delay/Blackhole apply to
// in-flight connections immediately; TruncateAfter re-arms every live
// connection's byte budget.
func (p *Proxy) SetFaults(f Faults) {
	cp := f
	p.faults.Store(&cp)
	p.mu.Lock()
	conns := make([]*proxyConn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		c.arm(&cp)
	}
}

// Clear removes all faults (forward cleanly again).
func (p *Proxy) Clear() { p.SetFaults(Faults{}) }

// ResetAll severs every live proxied connection with an RST — the
// abrupt remote-reset failure mode. The listener keeps accepting.
func (p *Proxy) ResetAll() {
	p.mu.Lock()
	conns := make([]*proxyConn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		c.reset()
	}
}

// Pause flaps the listener down: new dials are refused. Live
// connections are untouched.
func (p *Proxy) Pause() {
	p.mu.Lock()
	ln := p.ln
	p.ln = nil
	p.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
}

// Resume flaps the listener back up on the same address.
func (p *Proxy) Resume() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return errors.New("netfault: proxy closed")
	}
	if p.ln != nil {
		p.mu.Unlock()
		return nil
	}
	ln, err := net.Listen("tcp", p.addr)
	if err != nil {
		p.mu.Unlock()
		return err
	}
	p.ln = ln
	p.mu.Unlock()
	go p.acceptLoop(ln)
	return nil
}

// Close stops the proxy and severs all connections.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	ln := p.ln
	p.ln = nil
	conns := make([]*proxyConn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.reset()
	}
	return nil
}

func (p *Proxy) acceptLoop(ln net.Listener) {
	for {
		client, err := ln.Accept()
		if err != nil {
			return // listener closed (Pause or Close)
		}
		p.accepted.Add(1)
		go p.serve(client)
	}
}

func (p *Proxy) serve(client net.Conn) {
	upstream, err := net.DialTimeout("tcp", p.backend, 5*time.Second)
	if err != nil {
		client.Close()
		return
	}
	c := &proxyConn{p: p, client: client, upstream: upstream}
	c.arm(p.faults.Load())
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		c.reset()
		return
	}
	p.conns[c] = struct{}{}
	p.mu.Unlock()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); c.pump(client, upstream) }()
	go func() { defer wg.Done(); c.pump(upstream, client) }()
	wg.Wait()
	c.teardown()
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// arm re-arms the connection's truncation budget for a new config.
func (c *proxyConn) arm(f *Faults) {
	if f.TruncateAfter > 0 {
		c.budget.Store(f.TruncateAfter)
	} else {
		c.budget.Store(-1)
	}
}

// reset severs both sides abruptly (RST where the OS allows it).
func (c *proxyConn) reset() {
	c.once.Do(func() { c.p.resets.Add(1) })
	abort(c.client)
	abort(c.upstream)
}

func (c *proxyConn) teardown() {
	c.client.Close()
	c.upstream.Close()
}

// abort closes a conn with linger 0 so the peer sees a reset, not a
// clean EOF — a crashed process, not a polite goodbye.
func abort(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	conn.Close()
}

// pump forwards src→dst, consulting the live fault config per chunk.
func (c *proxyConn) pump(src, dst net.Conn) {
	buf := make([]byte, 16<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			f := c.p.faults.Load()
			if d := f.Delay; d > 0 || f.Jitter > 0 {
				if f.Jitter > 0 {
					d += time.Duration(mrand.Int64N(int64(f.Jitter) + 1))
				}
				time.Sleep(d)
			}
			// Re-load: faults may have flipped during the sleep.
			f = c.p.faults.Load()
			if f.Blackhole {
				continue // swallow; connection stays open
			}
			w := n
			truncate := false
			if budget := c.budget.Load(); budget >= 0 {
				if int64(w) >= budget {
					w = int(budget)
					truncate = true
				}
				c.budget.Add(int64(-w))
			}
			if w > 0 {
				if _, werr := dst.Write(buf[:w]); werr != nil {
					c.teardown()
					return
				}
				c.p.forwarded.Add(int64(w))
			}
			if truncate {
				c.reset() // mid-frame cut: peers see an abrupt reset
				return
			}
		}
		if err != nil {
			if err != io.EOF {
				// One side died abruptly (reset, kill). Propagate: a
				// half-dead pair must not leave the surviving side
				// looking healthy — a real crashed peer resets its
				// connections, it does not silently blackhole them.
				c.teardown()
				return
			}
			// Half-close: propagate the FIN, keep the other direction.
			if tc, ok := dst.(*net.TCPConn); ok {
				tc.CloseWrite()
			}
			return
		}
	}
}
