package netfault

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// echoServer accepts connections and echoes bytes back until closed.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				io.Copy(conn, conn)
			}()
		}
	}()
	return ln
}

func proxyFor(t *testing.T, backend string) *Proxy {
	t.Helper()
	p, err := New("127.0.0.1:0", backend)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func dialT(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func echoOnce(t *testing.T, conn net.Conn, msg string) {
	t.Helper()
	if _, err := conn.Write([]byte(msg)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Time{})
	if !bytes.Equal(got, []byte(msg)) {
		t.Fatalf("echo mismatch: %q != %q", got, msg)
	}
}

func TestCleanForwarding(t *testing.T) {
	ln := echoServer(t)
	p := proxyFor(t, ln.Addr().String())
	conn := dialT(t, p.Addr())
	echoOnce(t, conn, "hello through the proxy")
	if st := p.Stats(); st.Accepted != 1 || st.Forwarded == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestResetAllSeversLiveConns(t *testing.T) {
	ln := echoServer(t)
	p := proxyFor(t, ln.Addr().String())
	conn := dialT(t, p.Addr())
	echoOnce(t, conn, "ping")
	p.ResetAll()
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("read succeeded after reset")
	} else if errors.Is(err, io.EOF) {
		// Acceptable on platforms where linger-0 still FINs, but the
		// connection must be dead either way.
	}
	if st := p.Stats(); st.Resets != 1 {
		t.Fatalf("resets = %d, want 1", st.Resets)
	}
	// New connections work fine after a reset storm.
	echoOnce(t, dialT(t, p.Addr()), "back again")
}

func TestDelayInjection(t *testing.T) {
	ln := echoServer(t)
	p := proxyFor(t, ln.Addr().String())
	p.SetFaults(Faults{Delay: 50 * time.Millisecond})
	conn := dialT(t, p.Addr())
	start := time.Now()
	echoOnce(t, conn, "slow")
	// Two directions, each delayed once.
	if d := time.Since(start); d < 90*time.Millisecond {
		t.Fatalf("round trip took %v, want >= ~100ms of injected delay", d)
	}
	p.Clear()
	start = time.Now()
	echoOnce(t, conn, "fast")
	if d := time.Since(start); d > 40*time.Millisecond {
		t.Fatalf("delay persisted after Clear: %v", d)
	}
}

func TestBlackholeStallsWithoutClosing(t *testing.T) {
	ln := echoServer(t)
	p := proxyFor(t, ln.Addr().String())
	conn := dialT(t, p.Addr())
	echoOnce(t, conn, "before")
	p.SetFaults(Faults{Blackhole: true})
	if _, err := conn.Write([]byte("into the void")); err != nil {
		t.Fatalf("write into blackhole failed: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	buf := make([]byte, 1)
	_, err := conn.Read(buf)
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("blackhole read: got %v, want timeout (conn open, no data)", err)
	}
	conn.SetReadDeadline(time.Time{})
	// Healing the partition restores the connection (bytes swallowed
	// during the blackhole stay lost, like a real partition).
	p.Clear()
	echoOnce(t, conn, "after heal")
}

func TestTruncateMidStream(t *testing.T) {
	ln := echoServer(t)
	p := proxyFor(t, ln.Addr().String())
	p.SetFaults(Faults{TruncateAfter: 10})
	conn := dialT(t, p.Addr())
	if _, err := conn.Write([]byte("0123456789ABCDEF")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	got, _ := io.ReadAll(conn) // ends in reset/EOF after at most 10 bytes
	if len(got) > 10 {
		t.Fatalf("got %d bytes through a 10-byte truncation", len(got))
	}
	if st := p.Stats(); st.Resets != 1 {
		t.Fatalf("resets = %d, want 1", st.Resets)
	}
}

func TestListenerFlap(t *testing.T) {
	ln := echoServer(t)
	p := proxyFor(t, ln.Addr().String())
	held := dialT(t, p.Addr())
	echoOnce(t, held, "pre-flap")
	p.Pause()
	if c, err := net.DialTimeout("tcp", p.Addr(), 500*time.Millisecond); err == nil {
		c.Close()
		t.Fatal("dial succeeded while listener down")
	}
	// Live connections ride through the flap.
	echoOnce(t, held, "mid-flap")
	if err := p.Resume(); err != nil {
		t.Fatal(err)
	}
	echoOnce(t, dialT(t, p.Addr()), "post-flap")
}

func TestConcurrentConnsUnderResets(t *testing.T) {
	ln := echoServer(t)
	p := proxyFor(t, ln.Addr().String())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				conn, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
				if err != nil {
					continue // reset storm may race the dial
				}
				conn.Write([]byte("x"))
				buf := make([]byte, 1)
				conn.SetReadDeadline(time.Now().Add(time.Second))
				conn.Read(buf)
				conn.Close()
			}
		}()
	}
	for i := 0; i < 10; i++ {
		time.Sleep(5 * time.Millisecond)
		p.ResetAll()
	}
	wg.Wait()
}
