// Package obs is the observability layer shared by the engine, the wire
// server, and the tools: a lock-cheap metrics registry (atomic counters,
// gauges, and fixed-bucket latency histograms with p50/p95/p99 snapshots)
// plus per-query trace spans (trace.go) and the ops HTTP endpoints
// (http.go). Everything on a hot path is a single atomic add; rendering
// and snapshotting pay the locking cost instead.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// HistBuckets is the number of fixed exponential latency buckets: bucket
// i holds observations whose microsecond value has bit length i, i.e.
// values in [2^(i-1), 2^i). Bucket 0 holds zeros; the last bucket is
// open-ended. 40 buckets span sub-microsecond to ~6 days.
const HistBuckets = 40

// Histogram is a fixed-bucket latency histogram safe for concurrent
// writers: one atomic add per observation, no locks, no allocation.
type Histogram struct {
	count   atomic.Uint64
	sumUs   atomic.Int64
	maxUs   atomic.Int64
	buckets [HistBuckets]atomic.Uint64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveUs(d.Microseconds()) }

// ObserveUs records one latency in microseconds.
func (h *Histogram) ObserveUs(us int64) {
	if us < 0 {
		us = 0
	}
	h.count.Add(1)
	h.sumUs.Add(us)
	for {
		cur := h.maxUs.Load()
		if us <= cur || h.maxUs.CompareAndSwap(cur, us) {
			break
		}
	}
	i := bits.Len64(uint64(us))
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	h.buckets[i].Add(1)
}

// bucketUpperUs is the inclusive upper bound of bucket i in microseconds.
func bucketUpperUs(i int) int64 {
	if i >= HistBuckets-1 {
		return -1 // open-ended
	}
	return int64(1)<<i - 1
}

// HistSnapshot is a point-in-time copy of a Histogram, mergeable and
// queryable for quantiles. Concurrent writers may make a snapshot's
// count field lag the bucket sum by a few in-flight observations;
// Quantile works off the bucket sum so it is always self-consistent.
type HistSnapshot struct {
	Count   uint64   `json:"count"`
	SumUs   int64    `json:"sum_us"`
	MaxUs   int64    `json:"max_us"`
	Buckets []uint64 `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count:   h.count.Load(),
		SumUs:   h.sumUs.Load(),
		MaxUs:   h.maxUs.Load(),
		Buckets: make([]uint64, HistBuckets),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Merge accumulates another snapshot into this one.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	s.Count += o.Count
	s.SumUs += o.SumUs
	if o.MaxUs > s.MaxUs {
		s.MaxUs = o.MaxUs
	}
	if len(s.Buckets) < len(o.Buckets) {
		b := make([]uint64, len(o.Buckets))
		copy(b, s.Buckets)
		s.Buckets = b
	}
	for i, n := range o.Buckets {
		s.Buckets[i] += n
	}
}

// total sums the bucket counts (the self-consistent observation count).
func (s *HistSnapshot) total() uint64 {
	var t uint64
	for _, n := range s.Buckets {
		t += n
	}
	return t
}

// Quantile returns the approximate p-quantile (p in [0,1]) in
// microseconds, linearly interpolated inside the holding bucket and
// clamped to the observed maximum.
func (s *HistSnapshot) Quantile(p float64) int64 {
	total := s.total()
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := uint64(p * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if rank < cum+n {
			if i == 0 {
				return 0
			}
			lo := int64(1) << (i - 1)
			hi := int64(1)<<i - 1
			if i == len(s.Buckets)-1 || hi > s.MaxUs {
				hi = s.MaxUs // open-ended or max-clamped bucket
			}
			if hi < lo {
				hi = lo
			}
			q := lo + int64(float64(hi-lo)*float64(rank-cum+1)/float64(n))
			if s.MaxUs > 0 && q > s.MaxUs {
				q = s.MaxUs
			}
			return q
		}
		cum += n
	}
	return s.MaxUs
}

// MeanUs returns the mean latency in microseconds.
func (s *HistSnapshot) MeanUs() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.SumUs / int64(s.Count)
}

// Registry is a named collection of metrics. Metric lookups
// (get-or-create) take a short lock; the returned handles are then
// lock-free — callers should hold on to them rather than re-resolving
// names per observation. Names may carry Prometheus-style labels:
// `orchestra_op_duration_us{op="query"}`.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() int64),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// GaugeFunc registers a gauge whose value is read at render time — for
// live values owned elsewhere (connection counts, cache sizes).
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	r.funcs[name] = fn
	r.mu.Unlock()
}

// splitName separates a metric name from its {label="..."} suffix.
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// joinLabels renders a label set, merging an extra label pair in.
func joinLabels(labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return ""
	case labels == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + labels + "}"
	}
	return "{" + labels + "," + extra + "}"
}

// WritePrometheus renders every metric in Prometheus text exposition
// format. Histograms render as cumulative _bucket series (le in
// microseconds) plus _sum/_count and p50/p95/p99 quantile series.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.RLock()
	counters := make(map[string]uint64, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c.Load()
	}
	gauges := make(map[string]int64, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g.Load()
	}
	hists := make(map[string]HistSnapshot, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h.Snapshot()
	}
	funcs := make(map[string]func() int64, len(r.funcs))
	for n, fn := range r.funcs {
		funcs[n] = fn
	}
	r.mu.RUnlock()

	for n, fn := range funcs {
		gauges[n] = fn()
	}
	for _, n := range sortedKeys(counters) {
		fmt.Fprintf(w, "%s %d\n", n, counters[n])
	}
	for _, n := range sortedKeys(gauges) {
		fmt.Fprintf(w, "%s %d\n", n, gauges[n])
	}
	for _, n := range sortedKeys(hists) {
		s := hists[n]
		base, labels := splitName(n)
		var cum uint64
		for i, cnt := range s.Buckets {
			cum += cnt
			if cnt == 0 && i != len(s.Buckets)-1 {
				continue // keep the output compact; cumulative stays correct
			}
			le := "+Inf"
			if ub := bucketUpperUs(i); ub >= 0 {
				le = fmt.Sprintf("%d", ub)
			}
			fmt.Fprintf(w, "%s_bucket%s %d\n", base, joinLabels(labels, `le="`+le+`"`), cum)
		}
		fmt.Fprintf(w, "%s_sum%s %d\n", base, joinLabels(labels, ""), s.SumUs)
		fmt.Fprintf(w, "%s_count%s %d\n", base, joinLabels(labels, ""), s.Count)
		for _, q := range [...]struct {
			p float64
			s string
		}{{0.5, "0.5"}, {0.95, "0.95"}, {0.99, "0.99"}} {
			fmt.Fprintf(w, "%s%s %d\n", base, joinLabels(labels, `quantile="`+q.s+`"`), s.Quantile(q.p))
		}
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
