package obs

import (
	"sync"
	"testing"
)

func TestTraceIDString(t *testing.T) {
	if got := TraceID(0xdeadbeef01020304).String(); got != "deadbeef01020304" {
		t.Fatalf("TraceID.String() = %q", got)
	}
	a, b := NewTraceID(), NewTraceID()
	if a == b {
		t.Fatal("consecutive trace ids collide")
	}
}

func TestTraceSpanTree(t *testing.T) {
	tr := NewTrace(NewTraceID(), "query", "node-0")
	plan := tr.Begin("plan")
	tr.End(plan)
	tr.Attach(nil, plan)
	frag := &Span{Name: "fragment", Node: "node-1", Rows: 100}
	tr.Attach(nil, frag)
	scan := &Span{Name: "scan.pass", Phase: 1, Rows: 100}
	frag.Children = append(frag.Children, scan)
	tr.Finish()

	root := tr.Root()
	if root.Name != "query" || len(root.Children) != 2 {
		t.Fatalf("root = %+v", root)
	}
	if root.Find("scan.pass") != scan {
		t.Fatal("Find failed to locate nested span")
	}
	var names []string
	root.Walk(func(s *Span) { names = append(names, s.Name) })
	if len(names) != 4 {
		t.Fatalf("walk visited %v", names)
	}
}

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	s := tr.Begin("x")
	tr.End(s)
	tr.Attach(nil, s)
	tr.Finish()
	if tr.Root() != nil {
		t.Fatal("nil trace must have nil root")
	}
	var sp *Span
	if sp.Find("x") != nil {
		t.Fatal("nil span Find must return nil")
	}
	sp.Walk(func(*Span) { t.Fatal("nil span Walk must not visit") })
}

func TestTraceConcurrentAttach(t *testing.T) {
	tr := NewTrace(NewTraceID(), "query", "")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s := tr.Begin("scan.pass")
				tr.End(s)
				tr.Attach(nil, s)
			}
		}()
	}
	wg.Wait()
	if n := len(tr.Root().Children); n != 800 {
		t.Fatalf("attached %d spans, want 800", n)
	}
}

func TestSpanCodecRoundTrip(t *testing.T) {
	in := &Span{
		Name: "fragment", Node: "n3", Phase: 2,
		StartUs: 10, DurUs: 5000, Rows: 1234, Batches: 5, Bytes: 99999,
		CacheHits: 7, CacheMisses: 2,
		Children: []*Span{
			{Name: "scan.index", Phase: 1, DurUs: 100},
			{Name: "scan.pass", Phase: 1, DurUs: 4000, Rows: 1234,
				Children: []*Span{{Name: "ship.encode", DurUs: 50, Bytes: 4096}}},
		},
	}
	buf := AppendSpan(nil, in)
	buf = append(buf, 0xAA, 0xBB) // trailing bytes must be returned untouched
	out, rest, err := DecodeSpan(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 2 || rest[0] != 0xAA {
		t.Fatalf("rest = %x", rest)
	}
	assertSpanEqual(t, in, out)
}

func assertSpanEqual(t *testing.T, a, b *Span) {
	t.Helper()
	if a.Name != b.Name || a.Node != b.Node || a.Phase != b.Phase ||
		a.StartUs != b.StartUs || a.DurUs != b.DurUs || a.Rows != b.Rows ||
		a.Batches != b.Batches || a.Bytes != b.Bytes ||
		a.CacheHits != b.CacheHits || a.CacheMisses != b.CacheMisses ||
		len(a.Children) != len(b.Children) {
		t.Fatalf("span mismatch:\n%+v\n%+v", a, b)
	}
	for i := range a.Children {
		assertSpanEqual(t, a.Children[i], b.Children[i])
	}
}

func TestSpanCodecCorrupt(t *testing.T) {
	good := AppendSpan(nil, &Span{Name: "x", Children: []*Span{{Name: "y"}}})
	for cut := 0; cut < len(good); cut++ {
		if _, _, err := DecodeSpan(good[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
	// A huge claimed child count must not allocate unboundedly.
	bad := appendString(nil, "x")
	bad = appendString(bad, "")
	for i := 0; i < 8; i++ {
		bad = append(bad, 0) // phase + 7 counters = 0
	}
	bad = append(bad, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F) // child count ~2^34
	if _, _, err := DecodeSpan(bad); err == nil {
		t.Fatal("oversized child count decoded without error")
	}
}
