package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one query execution across every node it touches.
// It is minted at the initiator and propagated in the prepare message so
// remote fragments label their spans with it.
type TraceID uint64

var traceSeq atomic.Uint64

// NewTraceID mints a random-seeded, sequence-advanced trace id.
func NewTraceID() TraceID {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return TraceID(traceSeq.Add(0x9e3779b97f4a7c15))
	}
	// Mix a local sequence in so ids stay unique even if the entropy
	// source repeats under test harnesses.
	return TraceID(binary.BigEndian.Uint64(b[:]) ^ traceSeq.Add(1)<<32)
}

// String renders the id as 16 hex digits.
func (id TraceID) String() string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(id))
	return hex.EncodeToString(b[:])
}

// Span is one timed stage of a query: plan, a scan pass, ship
// encode/decode, the final pipeline, stream write, or a remote
// fragment's whole execution. Spans form a tree under the trace root.
type Span struct {
	// Name is the stage: "query", "plan", "fragment", "scan.index",
	// "scan.pass", "ship.encode", "ship.decode", "final", "stream.write".
	Name string `json:"name"`
	// Node is the cluster node the stage ran on (empty = initiator).
	Node string `json:"node,omitempty"`
	// Phase is the execution phase (recovery waves advance it).
	Phase uint32 `json:"phase,omitempty"`
	// StartUs is the stage's start, microseconds from the trace origin.
	StartUs int64 `json:"start_us"`
	// DurUs is the stage's duration in microseconds.
	DurUs int64 `json:"dur_us"`
	// Rows / Batches / Bytes count the stage's throughput.
	Rows    int64 `json:"rows,omitempty"`
	Batches int64 `json:"batches,omitempty"`
	Bytes   int64 `json:"bytes,omitempty"`
	// CacheHits / CacheMisses attribute cache behaviour (view cache at
	// the root, decoded-page LRU on fragments).
	CacheHits   int64 `json:"cache_hits,omitempty"`
	CacheMisses int64 `json:"cache_misses,omitempty"`
	// Children are the nested stages.
	Children []*Span `json:"children,omitempty"`
}

// Find returns the first span named name in a depth-first walk of the
// subtree rooted at s, or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for _, c := range s.Children {
		if m := c.Find(name); m != nil {
			return m
		}
	}
	return nil
}

// Walk visits every span in the subtree depth-first.
func (s *Span) Walk(fn func(*Span)) {
	if s == nil {
		return
	}
	fn(s)
	for _, c := range s.Children {
		c.Walk(fn)
	}
}

// Trace collects the span tree for one query. Begin/End touch only the
// span being timed; Attach takes the trace lock, so concurrent scan
// goroutines may attach safely. A nil *Trace is the off switch: the
// instrumentation sites all guard on it.
type Trace struct {
	ID TraceID
	t0 time.Time

	mu   sync.Mutex
	root *Span
}

// NewTrace starts a trace with a root span of the given name.
func NewTrace(id TraceID, rootName, node string) *Trace {
	t := &Trace{ID: id, t0: time.Now()}
	t.root = &Span{Name: rootName, Node: node}
	return t
}

// Root returns the root span. Call after the query completes: the tree
// may still be mutated by Attach while execution is in flight.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root
}

// SinceUs is the microseconds elapsed since the trace origin.
func (t *Trace) SinceUs() int64 { return time.Since(t.t0).Microseconds() }

// Begin starts timing a span. The span is not yet in the tree; call
// Attach (typically after End) to link it under a parent.
func (t *Trace) Begin(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{Name: name, StartUs: t.SinceUs()}
}

// End stamps the span's duration. Safe on a nil span.
func (t *Trace) End(s *Span) {
	if t == nil || s == nil {
		return
	}
	s.DurUs = t.SinceUs() - s.StartUs
}

// Attach links a finished (or still-accumulating) span under parent;
// nil parent means the root. Takes the trace lock.
func (t *Trace) Attach(parent, s *Span) {
	if t == nil || s == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if parent == nil {
		parent = t.root
	}
	parent.Children = append(parent.Children, s)
}

// EncodeRoot appends the binary encoding of the root span subtree to
// dst under the trace lock, safe against concurrent Attach.
func (t *Trace) EncodeRoot(dst []byte) []byte {
	if t == nil {
		return dst
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return AppendSpan(dst, t.root)
}

// Finish stamps the root span's total duration.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.root.DurUs = t.SinceUs() - t.root.StartUs
}

// ---- binary span codec ----
//
// Remote fragments ship their span subtree back to the initiator in the
// ship-EOS message, appended after the fixed NodeStats block. The
// encoding is a compact varint preorder walk; strings are
// length-prefixed, counters are unsigned varints, and StartUs is
// relative to the remote node's own trace origin (clocks are not
// assumed synchronized — the initiator reads remote StartUs values as
// fragment-local offsets).

const maxSpanDecode = 1 << 16 // spans per tree; corrupt-input guard

// AppendSpan encodes the span subtree onto dst. The caller must hold
// whatever lock protects the tree from concurrent Attach.
func AppendSpan(dst []byte, s *Span) []byte {
	dst = appendString(dst, s.Name)
	dst = appendString(dst, s.Node)
	dst = binary.AppendUvarint(dst, uint64(s.Phase))
	dst = binary.AppendUvarint(dst, uint64(s.StartUs))
	dst = binary.AppendUvarint(dst, uint64(s.DurUs))
	dst = binary.AppendUvarint(dst, uint64(s.Rows))
	dst = binary.AppendUvarint(dst, uint64(s.Batches))
	dst = binary.AppendUvarint(dst, uint64(s.Bytes))
	dst = binary.AppendUvarint(dst, uint64(s.CacheHits))
	dst = binary.AppendUvarint(dst, uint64(s.CacheMisses))
	dst = binary.AppendUvarint(dst, uint64(len(s.Children)))
	for _, c := range s.Children {
		dst = AppendSpan(dst, c)
	}
	return dst
}

// DecodeSpan decodes one span subtree, returning the remaining bytes.
func DecodeSpan(b []byte) (*Span, []byte, error) {
	n := 0
	s, rest, err := decodeSpan(b, &n)
	if err != nil {
		return nil, nil, err
	}
	return s, rest, nil
}

var errSpanCorrupt = errors.New("obs: corrupt span encoding")

func decodeSpan(b []byte, n *int) (*Span, []byte, error) {
	*n++
	if *n > maxSpanDecode {
		return nil, nil, errSpanCorrupt
	}
	s := &Span{}
	var err error
	if s.Name, b, err = decodeString(b); err != nil {
		return nil, nil, err
	}
	if s.Node, b, err = decodeString(b); err != nil {
		return nil, nil, err
	}
	fields := [...]*int64{&s.StartUs, &s.DurUs, &s.Rows, &s.Batches, &s.Bytes, &s.CacheHits, &s.CacheMisses}
	ph, b, err := decodeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	s.Phase = uint32(ph)
	for _, f := range fields {
		v, rest, err := decodeUvarint(b)
		if err != nil {
			return nil, nil, err
		}
		*f, b = int64(v), rest
	}
	kids, b, err := decodeUvarint(b)
	if err != nil || kids > maxSpanDecode {
		return nil, nil, errSpanCorrupt
	}
	for i := uint64(0); i < kids; i++ {
		var c *Span
		if c, b, err = decodeSpan(b, n); err != nil {
			return nil, nil, err
		}
		s.Children = append(s.Children, c)
	}
	return s, b, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func decodeString(b []byte) (string, []byte, error) {
	n, b, err := decodeUvarint(b)
	if err != nil || n > uint64(len(b)) {
		return "", nil, errSpanCorrupt
	}
	return string(b[:n]), b[n:], nil
}

func decodeUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, errSpanCorrupt
	}
	return v, b[n:], nil
}
