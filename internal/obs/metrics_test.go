package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for us := int64(1); us <= 1000; us++ {
		h.ObserveUs(us)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	if s.MaxUs != 1000 {
		t.Fatalf("max = %d, want 1000", s.MaxUs)
	}
	if got := s.MeanUs(); got != 500 {
		t.Fatalf("mean = %d, want 500", got)
	}
	// Exponential buckets: quantiles are approximate but must stay within
	// a bucket (factor ~2) of the true value and be monotone.
	p50, p95, p99 := s.Quantile(0.5), s.Quantile(0.95), s.Quantile(0.99)
	if p50 < 250 || p50 > 1000 {
		t.Fatalf("p50 = %d, want within [250,1000]", p50)
	}
	if p95 < 500 || p95 > 1000 {
		t.Fatalf("p95 = %d, want within [500,1000]", p95)
	}
	if p99 < 500 || p99 > 1000 {
		t.Fatalf("p99 = %d, want within [500,1000]", p99)
	}
	if !(p50 <= p95 && p95 <= p99) {
		t.Fatalf("quantiles not monotone: p50=%d p95=%d p99=%d", p50, p95, p99)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Quantile(0.99) != 0 || s.MeanUs() != 0 {
		t.Fatal("empty histogram must quantile/mean to zero")
	}
	h.ObserveUs(-5) // clamps to zero
	h.ObserveUs(0)
	s = h.Snapshot()
	if s.Count != 2 || s.Quantile(0.5) != 0 {
		t.Fatalf("zero observations: count=%d p50=%d", s.Count, s.Quantile(0.5))
	}
	h.Observe(3 * time.Millisecond)
	s = h.Snapshot()
	if s.MaxUs != 3000 {
		t.Fatalf("max = %d, want 3000", s.MaxUs)
	}
	if q := s.Quantile(1); q != 3000 {
		t.Fatalf("p100 = %d, want clamped to max 3000", q)
	}
}

// TestHistogramConcurrentWriters hammers one histogram from many
// goroutines (meaningful under -race) and checks the snapshot is
// complete and the merge of per-writer shards equals the shared total.
func TestHistogramConcurrentWriters(t *testing.T) {
	const writers = 8
	const perWriter = 10000
	var shared Histogram
	shards := make([]Histogram, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				us := int64((i*7+w)%5000 + 1)
				shared.ObserveUs(us)
				shards[w].ObserveUs(us)
			}
		}(w)
	}
	wg.Wait()

	got := shared.Snapshot()
	var merged HistSnapshot
	for w := range shards {
		merged.Merge(shards[w].Snapshot())
	}
	if got.Count != writers*perWriter || merged.Count != got.Count {
		t.Fatalf("count: shared=%d merged=%d want %d", got.Count, merged.Count, writers*perWriter)
	}
	if got.SumUs != merged.SumUs {
		t.Fatalf("sum: shared=%d merged=%d", got.SumUs, merged.SumUs)
	}
	if got.MaxUs != merged.MaxUs {
		t.Fatalf("max: shared=%d merged=%d", got.MaxUs, merged.MaxUs)
	}
	for i := range got.Buckets {
		if got.Buckets[i] != merged.Buckets[i] {
			t.Fatalf("bucket %d: shared=%d merged=%d", i, got.Buckets[i], merged.Buckets[i])
		}
	}
}

// TestHistogramSnapshotDuringWrites takes snapshots while writers are
// live: every snapshot must be internally consistent (bucket total never
// exceeds count+in-flight, quantiles never panic).
func TestHistogramSnapshotDuringWrites(t *testing.T) {
	var h Histogram
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h.ObserveUs(int64(i%1000 + w))
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		s := h.Snapshot()
		if q := s.Quantile(0.95); q < 0 {
			t.Fatalf("negative quantile %d", q)
		}
		if s.total() > 0 && s.MaxUs == 0 && s.SumUs > 0 {
			t.Fatal("snapshot lost max while sum is nonzero")
		}
	}
	close(stop)
	wg.Wait()
}

func TestRegistryPrometheusRender(t *testing.T) {
	r := NewRegistry()
	r.Counter("orchestra_requests_total").Add(7)
	r.Gauge("orchestra_connections").Set(3)
	r.GaugeFunc("orchestra_live", func() int64 { return 42 })
	h := r.Histogram(`orchestra_op_duration_us{op="query"}`)
	h.ObserveUs(100)
	h.ObserveUs(900)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"orchestra_requests_total 7\n",
		"orchestra_connections 3\n",
		"orchestra_live 42\n",
		`orchestra_op_duration_us_sum{op="query"} 1000` + "\n",
		`orchestra_op_duration_us_count{op="query"} 2` + "\n",
		`orchestra_op_duration_us{op="query",quantile="0.5"}`,
		`orchestra_op_duration_us_bucket{op="query",le="127"} 1`,
		`orchestra_op_duration_us_bucket{op="query",le="+Inf"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistrySameHandle(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("counter handle not stable")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("histogram handle not stable")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("gauge handle not stable")
	}
}
