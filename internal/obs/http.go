package obs

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// NewOpsHandler builds the ops HTTP mux for a node: Prometheus-style
// text metrics at /metrics, the process expvar dump at /debug/vars, and
// the standard pprof profiles under /debug/pprof/. It is mounted on an
// optional listener — the wire protocol itself stays HTTP-free.
func NewOpsHandler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("orchestra ops endpoint\n\n/metrics\n/debug/vars\n/debug/pprof/\n"))
	})
	return mux
}
