// Package gossip maintains the CDSS's current epoch — the logical timestamp
// that advances after each batch of updates is published by a peer. Per
// paper §IV, "the current epoch can be determined through a simple 'gossip'
// protocol and does not require a single point of failure": each node keeps
// its highest-seen epoch and periodically pushes it to a few random peers;
// receiving a higher epoch adopts it.
package gossip

import (
	"context"
	"encoding/binary"
	"math/rand"
	"sync"
	"time"

	"orchestra/internal/ring"
	"orchestra/internal/transport"
	"orchestra/internal/tuple"
)

// MsgEpoch is the transport message type used by the gossiper.
const MsgEpoch transport.MsgType = 0x00F0

// Fanout is how many random peers receive each gossip push.
const Fanout = 3

// Gossiper tracks and disseminates the current epoch on one node. Each
// message also piggybacks the sender's WAL-shipping sequence position,
// giving every node a cheap, eventually-fresh view of its peers'
// mutation counts for replication-lag accounting (see SeqFn/PeerSeqs).
type Gossiper struct {
	ep transport.Endpoint

	mu        sync.Mutex
	current   tuple.Epoch
	peers     []ring.NodeID
	peerSeqs  map[ring.NodeID]uint64
	rng       *rand.Rand
	stop      chan struct{}
	stopped   bool
	onAdvance func(tuple.Epoch)
	seqFn     func() uint64
}

// New creates a gossiper bound to the endpoint and registers its message
// handler. Call SetPeers and Start to begin anti-entropy.
func New(ep transport.Endpoint, seed int64) *Gossiper {
	g := &Gossiper{
		ep:       ep,
		peerSeqs: make(map[ring.NodeID]uint64),
		rng:      rand.New(rand.NewSource(seed)),
		stop:     make(chan struct{}),
	}
	ep.Handle(MsgEpoch, func(from ring.NodeID, payload []byte) ([]byte, error) {
		// 8 bytes: epoch only (older peers). 16 bytes: epoch | seq.
		if len(payload) >= 8 {
			g.merge(tuple.Epoch(binary.BigEndian.Uint64(payload)))
		}
		if len(payload) >= 16 {
			g.noteSeq(from, binary.BigEndian.Uint64(payload[8:]))
		}
		// Reply with our (possibly newer) epoch so pulls work too.
		return g.encodeCurrent(), nil
	})
	return g
}

// SeqFn installs the source of this node's shipping sequence, included
// in every gossip message. Nil (the default) advertises 0.
func (g *Gossiper) SeqFn(fn func() uint64) {
	g.mu.Lock()
	g.seqFn = fn
	g.mu.Unlock()
}

// PeerSeqs returns the most recent sequence position gossiped by each
// peer. The view is eventually consistent — a peer's real position is
// at least the reported one.
func (g *Gossiper) PeerSeqs() map[ring.NodeID]uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[ring.NodeID]uint64, len(g.peerSeqs))
	for id, s := range g.peerSeqs {
		out[id] = s
	}
	return out
}

func (g *Gossiper) noteSeq(id ring.NodeID, seq uint64) {
	g.mu.Lock()
	if seq > g.peerSeqs[id] {
		g.peerSeqs[id] = seq
	}
	g.mu.Unlock()
}

// Current returns the highest epoch this node has seen.
func (g *Gossiper) Current() tuple.Epoch {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.current
}

// OnAdvance registers a callback fired (outside the gossiper's lock)
// whenever the local epoch rises — however it was learned: a local
// publish, a gossip push from a peer, or a pull. The node uses it to
// persist the epoch in its durable store.
func (g *Gossiper) OnAdvance(fn func(tuple.Epoch)) {
	g.mu.Lock()
	g.onAdvance = fn
	g.mu.Unlock()
}

// SetPeers replaces the peer set used for pushes.
func (g *Gossiper) SetPeers(peers []ring.NodeID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.peers = nil
	for _, p := range peers {
		if p != g.ep.ID() {
			g.peers = append(g.peers, p)
		}
	}
}

// Advance raises the local epoch to at least e and pushes it to Fanout
// random peers immediately. It returns the (possibly higher) local epoch.
func (g *Gossiper) Advance(e tuple.Epoch) tuple.Epoch {
	g.merge(e)
	g.push()
	return g.Current()
}

// Next claims the next epoch after everything this node has seen: the
// publish path of §IV ("a logical timestamp (epoch) that advances after
// each batch of updates is published by a peer").
func (g *Gossiper) Next() tuple.Epoch {
	g.mu.Lock()
	g.current++
	e := g.current
	fn := g.onAdvance
	g.mu.Unlock()
	if fn != nil {
		fn(e)
	}
	g.push()
	return e
}

func (g *Gossiper) merge(e tuple.Epoch) {
	g.mu.Lock()
	raised := e > g.current
	if raised {
		g.current = e
	}
	fn := g.onAdvance
	g.mu.Unlock()
	if raised && fn != nil {
		fn(e)
	}
}

func (g *Gossiper) encodeCurrent() []byte {
	g.mu.Lock()
	cur := g.current
	seqFn := g.seqFn
	g.mu.Unlock()
	var seq uint64
	if seqFn != nil {
		seq = seqFn()
	}
	b := make([]byte, 16)
	binary.BigEndian.PutUint64(b, uint64(cur))
	binary.BigEndian.PutUint64(b[8:], seq)
	return b
}

// push sends the current epoch to up to Fanout random peers.
func (g *Gossiper) push() {
	g.mu.Lock()
	n := len(g.peers)
	var targets []ring.NodeID
	if n > 0 {
		perm := g.rng.Perm(n)
		for i := 0; i < n && i < Fanout; i++ {
			targets = append(targets, g.peers[perm[i]])
		}
	}
	g.mu.Unlock()
	payload := g.encodeCurrent()
	for _, t := range targets {
		// Best effort: unreachable peers learn the epoch later.
		_ = g.ep.Send(t, MsgEpoch, payload)
	}
}

// Sync pulls the current epoch from the given peers, adopting the highest
// seen. Joining nodes use this to catch up immediately instead of waiting
// for the next anti-entropy round.
func (g *Gossiper) Sync(ctx context.Context, peers []ring.NodeID) tuple.Epoch {
	for _, p := range peers {
		if p == g.ep.ID() {
			continue
		}
		resp, err := g.ep.Request(ctx, p, MsgEpoch, g.encodeCurrent())
		if err == nil && len(resp) >= 8 {
			g.merge(tuple.Epoch(binary.BigEndian.Uint64(resp)))
			if len(resp) >= 16 {
				g.noteSeq(p, binary.BigEndian.Uint64(resp[8:]))
			}
		}
	}
	return g.Current()
}

// Start launches periodic anti-entropy pushes at the given interval.
func (g *Gossiper) Start(interval time.Duration) {
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-g.stop:
				return
			case <-ticker.C:
				g.push()
			}
		}
	}()
}

// Stop halts anti-entropy.
func (g *Gossiper) Stop() {
	g.mu.Lock()
	if !g.stopped {
		g.stopped = true
		close(g.stop)
	}
	g.mu.Unlock()
}
