package gossip

import (
	"fmt"
	"testing"
	"time"

	"orchestra/internal/ring"
	"orchestra/internal/transport"
	"orchestra/internal/tuple"
)

func mkCluster(t *testing.T, n int) (*transport.Network, []*Gossiper) {
	t.Helper()
	net := transport.NewNetwork(transport.Config{})
	t.Cleanup(net.Shutdown)
	var ids []ring.NodeID
	var gs []*Gossiper
	for i := 0; i < n; i++ {
		ids = append(ids, ring.NodeID(fmt.Sprintf("g%d", i)))
	}
	for i := 0; i < n; i++ {
		ep, err := net.Join(ids[i])
		if err != nil {
			t.Fatal(err)
		}
		gs = append(gs, New(ep, int64(i+1)))
	}
	for _, g := range gs {
		g.SetPeers(ids)
	}
	return net, gs
}

func waitEpoch(t *testing.T, gs []*Gossiper, want tuple.Epoch, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		all := true
		for _, g := range gs {
			if g.Current() != want {
				all = false
			}
		}
		if all {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	for i, g := range gs {
		t.Logf("node %d at epoch %d", i, g.Current())
	}
	t.Fatalf("cluster did not converge to epoch %d", want)
}

func TestAdvancePropagates(t *testing.T) {
	_, gs := mkCluster(t, 5)
	for _, g := range gs {
		g.Start(5 * time.Millisecond)
		defer g.Stop()
	}
	gs[0].Advance(7)
	waitEpoch(t, gs, 7, 3*time.Second)
}

func TestNextIsMonotonic(t *testing.T) {
	_, gs := mkCluster(t, 3)
	e1 := gs[0].Next()
	e2 := gs[0].Next()
	if e2 <= e1 {
		t.Errorf("Next not monotonic: %d then %d", e1, e2)
	}
}

func TestNextAfterRemoteAdvance(t *testing.T) {
	_, gs := mkCluster(t, 4)
	for _, g := range gs {
		g.Start(5 * time.Millisecond)
		defer g.Stop()
	}
	gs[1].Advance(10)
	waitEpoch(t, gs, 10, 3*time.Second)
	if e := gs[2].Next(); e != 11 {
		t.Errorf("Next after seeing 10 = %d, want 11", e)
	}
}

func TestMergeIgnoresStale(t *testing.T) {
	_, gs := mkCluster(t, 2)
	gs[0].Advance(9)
	gs[0].Advance(4) // stale
	if e := gs[0].Current(); e != 9 {
		t.Errorf("Current = %d, want 9", e)
	}
}

func TestConvergesWithDeadPeer(t *testing.T) {
	net, gs := mkCluster(t, 5)
	for _, g := range gs {
		g.Start(5 * time.Millisecond)
		defer g.Stop()
	}
	net.Kill("g4")
	gs[0].Advance(3)
	waitEpoch(t, gs[:4], 3, 3*time.Second)
}
