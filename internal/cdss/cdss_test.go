package cdss

import (
	"context"
	"testing"
	"time"

	"orchestra/internal/cluster"
	"orchestra/internal/engine"
	"orchestra/internal/transport"
	"orchestra/internal/tuple"
)

type fixture struct {
	t     *testing.T
	local *cluster.Local
	engs  []*engine.Engine
}

func newFixture(t *testing.T, n int) *fixture {
	t.Helper()
	local, err := cluster.NewLocal(n, cluster.Config{Replication: 3}, transport.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(local.Shutdown)
	f := &fixture{t: t, local: local}
	for _, node := range local.Nodes() {
		f.engs = append(f.engs, engine.New(node))
	}
	return f
}

func (f *fixture) ctx() context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	f.t.Cleanup(cancel)
	return ctx
}

func (f *fixture) participant(name string, node int, prio int) *Participant {
	return NewParticipant(name, f.local.Node(node), f.engs[node], prio)
}

func geneSchema() *tuple.Schema {
	return tuple.MustSchema("genes",
		[]tuple.Column{
			{Name: "gene", Type: tuple.String},
			{Name: "function", Type: tuple.String},
		}, "gene")
}

func TestLocalUpdatesAndLog(t *testing.T) {
	f := newFixture(t, 3)
	alice := f.participant("alice", 0, 1)
	alice.DefineLocal(geneSchema())

	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(alice.Apply("genes", OpInsert, tuple.Row{tuple.S("brca1"), tuple.S("repair")}))
	must(alice.Apply("genes", OpInsert, tuple.Row{tuple.S("tp53"), tuple.S("suppressor")}))
	must(alice.Apply("genes", OpUpdate, tuple.Row{tuple.S("brca1"), tuple.S("dna repair")}))
	if alice.PendingUpdates() != 3 {
		t.Fatalf("log size %d", alice.PendingUpdates())
	}
	rows := alice.Rows("genes")
	if len(rows) != 2 {
		t.Fatalf("instance: %v", rows)
	}
	if rows[0][1].Str != "dna repair" {
		t.Fatalf("local update lost: %v", rows[0])
	}
	must(alice.Apply("genes", OpDelete, tuple.Row{tuple.S("tp53"), tuple.S("")}))
	if len(alice.Rows("genes")) != 1 {
		t.Fatal("delete did not apply")
	}
	if err := alice.Apply("nosuch", OpInsert, tuple.Row{}); err == nil {
		t.Fatal("unknown relation accepted")
	}
}

func TestPublishAdvancesEpochAndClearsLog(t *testing.T) {
	f := newFixture(t, 3)
	alice := f.participant("alice", 0, 1)
	alice.DefineLocal(geneSchema())
	_ = alice.Apply("genes", OpInsert, tuple.Row{tuple.S("brca1"), tuple.S("repair")})

	e, err := alice.Publish(f.ctx())
	if err != nil {
		t.Fatalf("publish: %v", err)
	}
	if e == 0 {
		t.Fatal("epoch did not advance")
	}
	if alice.PendingUpdates() != 0 {
		t.Fatal("log not cleared")
	}
	// The published relation is queryable cluster-wide.
	rows, err := f.local.Node(1).RetrieveTimeout(PublishedName("alice", "genes"), e, cluster.AllPred(), 30*time.Second)
	if err != nil {
		t.Fatalf("retrieve: %v", err)
	}
	if len(rows) != 1 {
		t.Fatalf("published rows: %v", rows)
	}
}

func TestImportViaMapping(t *testing.T) {
	f := newFixture(t, 4)
	alice := f.participant("alice", 0, 1)
	bob := f.participant("bob", 1, 1)
	alice.DefineLocal(geneSchema())
	bob.DefineLocal(geneSchema())

	_ = alice.Apply("genes", OpInsert, tuple.Row{tuple.S("brca1"), tuple.S("repair")})
	_ = alice.Apply("genes", OpInsert, tuple.Row{tuple.S("tp53"), tuple.S("suppressor")})
	if _, err := alice.Publish(f.ctx()); err != nil {
		t.Fatal(err)
	}

	// Bob imports everything Alice publishes, identity mapping.
	bob.AddMapping(Mapping{
		Peer:   "alice",
		Target: "genes",
		SQL:    "SELECT gene, function FROM alice_genes",
	})
	rep, err := bob.Import(f.ctx(), map[string]int{"alice": 1})
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if rep.Imported != 2 || len(rep.Conflicts) != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if len(bob.Rows("genes")) != 2 {
		t.Fatalf("bob's instance: %v", bob.Rows("genes"))
	}

	// Importing again is idempotent.
	rep2, err := bob.Import(f.ctx(), map[string]int{"alice": 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Imported != 0 {
		t.Fatalf("second import not idempotent: %+v", rep2)
	}
}

func TestImportWithSchemaMapping(t *testing.T) {
	// Carol's schema renames and projects: she keeps only gene names with
	// an annotation source column computed by the mapping.
	f := newFixture(t, 4)
	alice := f.participant("alice", 0, 1)
	carol := f.participant("carol", 2, 1)
	alice.DefineLocal(geneSchema())
	carol.DefineLocal(tuple.MustSchema("annotations",
		[]tuple.Column{
			{Name: "name", Type: tuple.String},
			{Name: "source", Type: tuple.String},
		}, "name"))

	_ = alice.Apply("genes", OpInsert, tuple.Row{tuple.S("brca1"), tuple.S("repair")})
	if _, err := alice.Publish(f.ctx()); err != nil {
		t.Fatal(err)
	}
	carol.AddMapping(Mapping{
		Peer:   "alice",
		Target: "annotations",
		SQL:    "SELECT gene, 'alice' || ':' || function AS source FROM alice_genes",
	})
	rep, err := carol.Import(f.ctx(), map[string]int{"alice": 1})
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if rep.Imported != 1 {
		t.Fatalf("report: %+v", rep)
	}
	rows := carol.Rows("annotations")
	if rows[0][1].Str != "alice:repair" {
		t.Fatalf("mapped row: %v", rows[0])
	}
}

func TestReconciliationPriorities(t *testing.T) {
	// Alice and Bob publish conflicting functions for the same gene; Dana
	// imports from both. Bob has higher priority, so his value wins, and
	// the conflict is reported.
	f := newFixture(t, 4)
	alice := f.participant("alice", 0, 1)
	bob := f.participant("bob", 1, 5)
	dana := f.participant("dana", 3, 0)
	alice.DefineLocal(geneSchema())
	bob.DefineLocal(geneSchema())
	dana.DefineLocal(geneSchema())

	_ = alice.Apply("genes", OpInsert, tuple.Row{tuple.S("brca1"), tuple.S("repair")})
	_ = bob.Apply("genes", OpInsert, tuple.Row{tuple.S("brca1"), tuple.S("tumor suppression")})
	_ = bob.Apply("genes", OpInsert, tuple.Row{tuple.S("myc"), tuple.S("regulator")})
	if _, err := alice.Publish(f.ctx()); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Publish(f.ctx()); err != nil {
		t.Fatal(err)
	}

	dana.AddMapping(Mapping{Peer: "alice", Target: "genes",
		SQL: "SELECT gene, function FROM alice_genes"})
	dana.AddMapping(Mapping{Peer: "bob", Target: "genes",
		SQL: "SELECT gene, function FROM bob_genes"})

	prios := map[string]int{"alice": 1, "bob": 5}
	rep, err := dana.Import(f.ctx(), prios)
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if len(rep.Conflicts) != 1 {
		t.Fatalf("conflicts: %+v", rep.Conflicts)
	}
	c := rep.Conflicts[0]
	if c.Winner.Peer != "bob" || len(c.Rejected) != 1 || c.Rejected[0].Peer != "alice" {
		t.Fatalf("resolution: %+v", c)
	}
	rows := dana.Rows("genes")
	if len(rows) != 2 {
		t.Fatalf("dana's instance: %v", rows)
	}
	for _, r := range rows {
		if r[0].Str == "brca1" && r[1].Str != "tumor suppression" {
			t.Fatalf("wrong winner installed: %v", r)
		}
	}
}

func TestReconciliationCorroboration(t *testing.T) {
	// Identical rows from two peers corroborate: no conflict reported.
	f := newFixture(t, 3)
	alice := f.participant("alice", 0, 1)
	bob := f.participant("bob", 1, 1)
	eve := f.participant("eve", 2, 0)
	for _, p := range []*Participant{alice, bob, eve} {
		p.DefineLocal(geneSchema())
	}
	_ = alice.Apply("genes", OpInsert, tuple.Row{tuple.S("brca1"), tuple.S("repair")})
	_ = bob.Apply("genes", OpInsert, tuple.Row{tuple.S("brca1"), tuple.S("repair")})
	if _, err := alice.Publish(f.ctx()); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Publish(f.ctx()); err != nil {
		t.Fatal(err)
	}
	eve.AddMapping(Mapping{Peer: "alice", Target: "genes", SQL: "SELECT gene, function FROM alice_genes"})
	eve.AddMapping(Mapping{Peer: "bob", Target: "genes", SQL: "SELECT gene, function FROM bob_genes"})
	rep, err := eve.Import(f.ctx(), map[string]int{"alice": 1, "bob": 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Conflicts) != 0 || rep.Imported != 1 {
		t.Fatalf("report: %+v", rep)
	}
}

func TestImportSnapshotIsolation(t *testing.T) {
	// An import pins the epoch at its start: data published afterwards is
	// not visible until the next import (§IV).
	f := newFixture(t, 3)
	alice := f.participant("alice", 0, 1)
	bob := f.participant("bob", 1, 1)
	alice.DefineLocal(geneSchema())
	bob.DefineLocal(geneSchema())

	_ = alice.Apply("genes", OpInsert, tuple.Row{tuple.S("g1"), tuple.S("f1")})
	if _, err := alice.Publish(f.ctx()); err != nil {
		t.Fatal(err)
	}
	bob.AddMapping(Mapping{Peer: "alice", Target: "genes", SQL: "SELECT gene, function FROM alice_genes"})
	if _, err := bob.Import(f.ctx(), map[string]int{"alice": 1}); err != nil {
		t.Fatal(err)
	}
	first := bob.LastSync()

	_ = alice.Apply("genes", OpInsert, tuple.Row{tuple.S("g2"), tuple.S("f2")})
	if _, err := alice.Publish(f.ctx()); err != nil {
		t.Fatal(err)
	}
	rep, err := bob.Import(f.ctx(), map[string]int{"alice": 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epoch <= first {
		t.Fatalf("epoch did not advance: %d then %d", first, rep.Epoch)
	}
	if len(bob.Rows("genes")) != 2 {
		t.Fatalf("bob's instance: %v", bob.Rows("genes"))
	}
}

func TestMappingErrors(t *testing.T) {
	f := newFixture(t, 2)
	p := f.participant("p", 0, 1)
	p.DefineLocal(geneSchema())
	p.AddMapping(Mapping{Peer: "x", Target: "genes", SQL: "SELECT FROM nothing"})
	if _, err := p.Import(f.ctx(), nil); err == nil {
		t.Fatal("bad mapping SQL accepted")
	}

	p2 := f.participant("p2", 1, 1)
	p2.DefineLocal(geneSchema())
	p2.AddMapping(Mapping{Peer: "x", Target: "missing", SQL: "SELECT gene, function FROM nosuch"})
	if _, err := p2.Import(f.ctx(), nil); err == nil {
		t.Fatal("mapping over unknown relation accepted")
	}
}
