// Package cdss implements the ORCHESTRA collaborative-data-sharing upper
// layers the storage and query subsystem serves (paper §I-II, Fig 1):
// participants (peers) with autonomous local databases and schemas, the
// batched publish/import cycle, update exchange through schema mappings
// executed as distributed queries, and reconciliation — transaction-level
// conflict detection with priority-based resolution, tolerating
// disagreement between peers [2], [3].
//
// The paper's CDSS workflow: each participant edits only its local DBMS;
// Publish pushes its update log into the replicated versioned storage
// (advancing the global epoch); Import runs the participant's schema
// mappings as select-project-join queries over a consistent snapshot,
// detects conflicts among the candidate updates, resolves them by peer
// priority, and installs the accepted data into the local replica.
package cdss

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"orchestra/internal/cluster"
	"orchestra/internal/engine"
	"orchestra/internal/optimizer"
	"orchestra/internal/sql"
	"orchestra/internal/tuple"
	"orchestra/internal/vstore"
)

// Mapping is one schema mapping of update exchange: a single-block query
// over published relations whose answer populates a local target relation.
// Peer identifies whose published data the mapping draws from (used for
// conflict attribution and priority resolution).
type Mapping struct {
	Peer   string
	Target string
	SQL    string
}

// Op is a local-update kind.
type Op = vstore.Op

// Local-update kinds, re-exported from the storage layer.
const (
	OpInsert = vstore.OpInsert
	OpUpdate = vstore.OpUpdate
	OpDelete = vstore.OpDelete
)

// LocalUpdate is one entry of a participant's DBMS update log.
type LocalUpdate struct {
	Relation string
	Op       Op
	Row      tuple.Row
}

// Participant is one CDSS peer: a local DBMS instance (its own schema), an
// update log, a set of import mappings, and a trust priority.
type Participant struct {
	Name     string
	Priority int // higher wins conflicts

	node *cluster.Node
	eng  *engine.Engine

	mu       sync.Mutex
	schemas  map[string]*tuple.Schema // local relations
	instance map[string]map[string]tuple.Row
	log      []LocalUpdate
	mappings []Mapping
	lastSync tuple.Epoch
}

// NewParticipant attaches a peer to its storage/query node.
func NewParticipant(name string, node *cluster.Node, eng *engine.Engine, priority int) *Participant {
	return &Participant{
		Name:     name,
		Priority: priority,
		node:     node,
		eng:      eng,
		schemas:  make(map[string]*tuple.Schema),
		instance: make(map[string]map[string]tuple.Row),
	}
}

// DefineLocal declares a local relation in the participant's schema.
func (p *Participant) DefineLocal(s *tuple.Schema) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.schemas[s.Relation] = s
	if p.instance[s.Relation] == nil {
		p.instance[s.Relation] = make(map[string]tuple.Row)
	}
}

// AddMapping registers an import mapping.
func (p *Participant) AddMapping(m Mapping) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.mappings = append(p.mappings, m)
}

// Apply executes a local update against the participant's own DBMS and
// appends it to the (unpublished) update log — the only way data enters a
// CDSS (§II: users first make updates only to their local storage).
func (p *Participant) Apply(relation string, op Op, row tuple.Row) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.schemas[relation]
	if !ok {
		return fmt.Errorf("cdss: %s has no local relation %q", p.Name, relation)
	}
	if len(row) != s.Arity() && op != OpDelete {
		return fmt.Errorf("cdss: row arity %d for %s", len(row), relation)
	}
	key := string(tuple.EncodeKey(row, s.KeyColumns()))
	inst := p.instance[relation]
	switch op {
	case OpInsert, OpUpdate:
		inst[key] = row
	case OpDelete:
		delete(inst, key)
	default:
		return fmt.Errorf("cdss: bad op %v", op)
	}
	p.log = append(p.log, LocalUpdate{Relation: relation, Op: op, Row: row})
	return nil
}

// Rows returns a snapshot of a local relation's current instance.
func (p *Participant) Rows(relation string) []tuple.Row {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]tuple.Row, 0, len(p.instance[relation]))
	for _, r := range p.instance[relation] {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cmp(out[j]) < 0 })
	return out
}

// PendingUpdates reports the size of the unpublished log.
func (p *Participant) PendingUpdates() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.log)
}

// PublishedName is the globally visible name of a peer's local relation:
// each participant's published updates are disjoint from all others' (§IV).
func PublishedName(peer, relation string) string {
	return peer + "_" + relation
}

// EnsurePublished creates the published counterpart of a local relation if
// it does not exist yet.
func (p *Participant) EnsurePublished(ctx context.Context, relation string) error {
	p.mu.Lock()
	s, ok := p.schemas[relation]
	p.mu.Unlock()
	if !ok {
		return fmt.Errorf("cdss: no local relation %q", relation)
	}
	pub, err := tuple.NewSchema(PublishedName(p.Name, relation), s.Columns, keyNames(s)...)
	if err != nil {
		return err
	}
	err = p.node.CreateRelation(ctx, pub)
	if errors.Is(err, cluster.ErrRelationExists) {
		return nil
	}
	return err
}

func keyNames(s *tuple.Schema) []string {
	out := make([]string, len(s.Key))
	for i, k := range s.Key {
		out[i] = s.Columns[k].Name
	}
	return out
}

// Publish pushes the participant's update log to the versioned storage as
// one batch per touched relation, advancing the global epoch, and clears
// the log. It returns the highest epoch written.
func (p *Participant) Publish(ctx context.Context) (tuple.Epoch, error) {
	p.mu.Lock()
	byRel := make(map[string][]vstore.Update)
	for _, u := range p.log {
		byRel[u.Relation] = append(byRel[u.Relation], vstore.Update{Op: u.Op, Row: u.Row})
	}
	p.log = nil
	p.mu.Unlock()

	var last tuple.Epoch
	for rel, ups := range byRel {
		if err := p.EnsurePublished(ctx, rel); err != nil {
			return 0, err
		}
		e, err := p.node.Publish(ctx, PublishedName(p.Name, rel), ups)
		if err != nil {
			return 0, err
		}
		if e > last {
			last = e
		}
	}
	return last, nil
}

// Candidate is one imported row: the mapping's output attributed to its
// source peer, for reconciliation.
type Candidate struct {
	Peer   string
	Target string
	Row    tuple.Row
}

// Conflict records one reconciliation decision: candidates from different
// peers asserting different values for the same target key.
type Conflict struct {
	Target   string
	Key      string
	Winner   Candidate
	Rejected []Candidate
}

// ImportReport summarizes an import.
type ImportReport struct {
	Epoch     tuple.Epoch
	Imported  int        // rows installed into the local instance
	Conflicts []Conflict // resolved conflicts
}

// Import performs update exchange and reconciliation (§II): it pins the
// current global epoch, runs every mapping as a distributed query over
// that snapshot, detects key conflicts among the candidate rows, resolves
// them by source-peer priority (ties broken deterministically by peer
// name), and installs the accepted rows into the local instance.
func (p *Participant) Import(ctx context.Context, priorities map[string]int) (*ImportReport, error) {
	// Determine the current epoch through the gossip protocol (§IV),
	// pulling from peers so a just-published batch elsewhere is visible.
	epoch := p.node.Gossip().Sync(ctx, p.node.Table().Members())
	cat, err := p.publishedCatalog(ctx)
	if err != nil {
		return nil, err
	}

	p.mu.Lock()
	mappings := append([]Mapping(nil), p.mappings...)
	p.mu.Unlock()

	var candidates []Candidate
	for _, m := range mappings {
		q, err := sql.Parse(m.SQL)
		if err != nil {
			return nil, fmt.Errorf("cdss: mapping for %s: %w", m.Target, err)
		}
		env := optimizer.Environment{Nodes: p.node.Table().Size()}
		plan, _, err := optimizer.Build(q, cat, env)
		if err != nil {
			return nil, fmt.Errorf("cdss: mapping for %s: %w", m.Target, err)
		}
		res, err := p.eng.Run(ctx, plan, engine.Options{
			Epoch:    epoch,
			Recovery: engine.RecoverRestart,
		})
		if err != nil {
			return nil, fmt.Errorf("cdss: update exchange for %s: %w", m.Target, err)
		}
		for _, row := range res.Rows {
			candidates = append(candidates, Candidate{Peer: m.Peer, Target: m.Target, Row: row})
		}
	}

	accepted, conflicts, err := p.reconcile(candidates, priorities)
	if err != nil {
		return nil, err
	}

	p.mu.Lock()
	imported := 0
	for _, c := range accepted {
		s := p.schemas[c.Target]
		key := string(tuple.EncodeKey(c.Row, s.KeyColumns()))
		cur, exists := p.instance[c.Target][key]
		if !exists || !cur.Equal(c.Row) {
			p.instance[c.Target][key] = c.Row
			imported++
		}
	}
	p.lastSync = epoch
	p.mu.Unlock()

	return &ImportReport{Epoch: epoch, Imported: imported, Conflicts: conflicts}, nil
}

// reconcile groups candidates by (target, key) and resolves disagreements:
// identical rows from multiple peers corroborate (no conflict); differing
// rows conflict and the highest-priority peer wins. The paper's
// reconciliation operates on transactions; a peer's whole candidate set
// for one key plays that role here, and rejection is per conflicting
// assertion (tolerating disagreement without blocking the import).
func (p *Participant) reconcile(cands []Candidate, priorities map[string]int) ([]Candidate, []Conflict, error) {
	p.mu.Lock()
	defer p.mu.Unlock()

	type slot struct {
		byPeer map[string]Candidate
		order  []string
	}
	slots := make(map[string]*slot)
	var slotOrder []string
	for _, c := range cands {
		s, ok := p.schemas[c.Target]
		if !ok {
			return nil, nil, fmt.Errorf("cdss: mapping targets unknown local relation %q", c.Target)
		}
		if len(c.Row) != s.Arity() {
			return nil, nil, fmt.Errorf("cdss: mapping for %s produced arity %d, want %d",
				c.Target, len(c.Row), s.Arity())
		}
		key := c.Target + "\x00" + string(tuple.EncodeKey(c.Row, s.KeyColumns()))
		sl := slots[key]
		if sl == nil {
			sl = &slot{byPeer: make(map[string]Candidate)}
			slots[key] = sl
			slotOrder = append(slotOrder, key)
		}
		if _, dup := sl.byPeer[c.Peer]; !dup {
			sl.order = append(sl.order, c.Peer)
		}
		sl.byPeer[c.Peer] = c
	}
	sort.Strings(slotOrder)

	prio := func(peer string) int { return priorities[peer] }
	var accepted []Candidate
	var conflicts []Conflict
	for _, key := range slotOrder {
		sl := slots[key]
		sort.Strings(sl.order)
		// Pick the winner: highest priority, then lexical peer name.
		winner := sl.byPeer[sl.order[0]]
		winPeer := sl.order[0]
		for _, peer := range sl.order[1:] {
			if prio(peer) > prio(winPeer) {
				winner, winPeer = sl.byPeer[peer], peer
			}
		}
		var rejected []Candidate
		for _, peer := range sl.order {
			if peer == winPeer {
				continue
			}
			if !sl.byPeer[peer].Row.Equal(winner.Row) {
				rejected = append(rejected, sl.byPeer[peer])
			}
		}
		accepted = append(accepted, winner)
		if len(rejected) > 0 {
			conflicts = append(conflicts, Conflict{
				Target:   winner.Target,
				Key:      key,
				Winner:   winner,
				Rejected: rejected,
			})
		}
	}
	return accepted, conflicts, nil
}

// publishedCatalog builds an optimizer catalog over the currently
// published relations by reading their cluster catalogs.
func (p *Participant) publishedCatalog(ctx context.Context) (optimizer.Catalog, error) {
	return &clusterCatalog{ctx: ctx, node: p.node}, nil
}

// clusterCatalog resolves schemas on demand from the cluster's replicated
// catalog records.
type clusterCatalog struct {
	ctx  context.Context
	node *cluster.Node
}

// Schema implements optimizer.Catalog.
func (c *clusterCatalog) Schema(table string) (*tuple.Schema, error) {
	cat, err := c.node.GetCatalog(c.ctx, table)
	if err != nil {
		return nil, fmt.Errorf("cdss: unknown published relation %q: %w", table, err)
	}
	return cat.Schema, nil
}

// Stats implements optimizer.Catalog; published row counts are unknown, so
// defaults apply.
func (c *clusterCatalog) Stats(string) optimizer.TableStats { return optimizer.TableStats{} }

// LastSync reports the epoch of the participant's most recent import.
func (p *Participant) LastSync() tuple.Epoch {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lastSync
}
