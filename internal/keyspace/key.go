// Package keyspace implements the 160-bit circular key space used by the
// ORCHESTRA storage substrate. Keys are 160-bit unsigned integers, matching
// the output of the SHA-1 cryptographic hash function (paper §III-A). The key
// space is visualized as a ring of values starting at 0 and increasing
// clockwise until overflow back to 0 at 2^160.
package keyspace

import (
	"crypto/sha1"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
)

// Size is the width of a key in bytes (160 bits, the SHA-1 digest size).
const Size = sha1.Size // 20

// Key is a 160-bit unsigned integer stored big-endian. The zero value is the
// key 0. Keys are comparable and usable as map keys.
type Key [Size]byte

// Zero is the key 0, the origin of the ring.
var Zero Key

// Max is the largest key, 2^160 - 1.
var Max = func() Key {
	var k Key
	for i := range k {
		k[i] = 0xFF
	}
	return k
}()

// Hash returns the SHA-1 hash of data as a Key. This is the only way raw data
// (tuple keys, node addresses, relation names) enters the key space.
func Hash(data []byte) Key {
	return Key(sha1.Sum(data))
}

// HashStrings hashes the concatenation of the given strings, each preceded by
// its length, so that ("ab","c") and ("a","bc") hash differently.
func HashStrings(parts ...string) Key {
	h := sha1.New()
	var lenBuf [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:])
		h.Write([]byte(p))
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// FromUint64 returns the key with value v (in the low 64 bits).
func FromUint64(v uint64) Key {
	var k Key
	binary.BigEndian.PutUint64(k[Size-8:], v)
	return k
}

// Uint64 returns the low 64 bits of k. It is primarily useful in tests and
// for sharding decisions that only need coarse resolution.
func (k Key) Uint64() uint64 {
	return binary.BigEndian.Uint64(k[Size-8:])
}

// Top64 returns the high 64 bits of k. Because balanced range allocation
// divides the ring evenly, the high bits determine range ownership for any
// membership below 2^64 nodes, so Top64 is a cheap ownership proxy.
func (k Key) Top64() uint64 {
	return binary.BigEndian.Uint64(k[:8])
}

// Cmp compares keys numerically: -1 if k < other, 0 if equal, +1 if k > other.
func (k Key) Cmp(other Key) int {
	for i := 0; i < Size; i++ {
		switch {
		case k[i] < other[i]:
			return -1
		case k[i] > other[i]:
			return 1
		}
	}
	return 0
}

// Less reports whether k < other numerically.
func (k Key) Less(other Key) bool { return k.Cmp(other) < 0 }

// IsZero reports whether k is the zero key.
func (k Key) IsZero() bool { return k == Zero }

// Add returns k + other mod 2^160.
func (k Key) Add(other Key) Key {
	var out Key
	var carry uint16
	for i := Size - 1; i >= 0; i-- {
		sum := uint16(k[i]) + uint16(other[i]) + carry
		out[i] = byte(sum)
		carry = sum >> 8
	}
	return out
}

// AddUint64 returns k + v mod 2^160.
func (k Key) AddUint64(v uint64) Key {
	return k.Add(FromUint64(v))
}

// Sub returns k - other mod 2^160 (the clockwise distance from other to k).
func (k Key) Sub(other Key) Key {
	var out Key
	var borrow uint16
	for i := Size - 1; i >= 0; i-- {
		diff := uint16(k[i]) - uint16(other[i]) - borrow
		out[i] = byte(diff)
		if diff > 0xFF { // wrapped below zero
			borrow = 1
		} else {
			borrow = 0
		}
	}
	return out
}

// Half returns k / 2 (logical shift right by one bit).
func (k Key) Half() Key {
	var out Key
	var carry byte
	for i := 0; i < Size; i++ {
		out[i] = (k[i] >> 1) | (carry << 7)
		carry = k[i] & 1
	}
	return out
}

// Midpoint returns (a + b) / 2 computed in 161-bit arithmetic, i.e. without
// overflow. It is the placement key for index pages: the paper stores an
// index page at the middle of the tuple-hash range it covers so that the page
// is colocated with most of the tuples it references (§IV).
func Midpoint(a, b Key) Key {
	var sum Key
	var carry uint16
	for i := Size - 1; i >= 0; i-- {
		s := uint16(a[i]) + uint16(b[i]) + carry
		sum[i] = byte(s)
		carry = s >> 8
	}
	// Shift the 161-bit value (carry:sum) right by one.
	out := sum.Half()
	if carry != 0 {
		out[0] |= 0x80
	}
	return out
}

// ClockwiseDistance returns the distance traveling clockwise (increasing)
// from k to other on the ring.
func (k Key) ClockwiseDistance(other Key) Key {
	return other.Sub(k)
}

// RingDistance returns the minimum of the clockwise and counterclockwise
// distances between k and other. Pastry places keys at the node with the
// nearest hash value in this metric (§III-A).
func (k Key) RingDistance(other Key) Key {
	cw := other.Sub(k)
	ccw := k.Sub(other)
	if cw.Cmp(ccw) <= 0 {
		return cw
	}
	return ccw
}

// InRange reports whether k lies in the half-open ring interval [lo, hi),
// traveling clockwise from lo. If lo == hi the interval denotes the full
// ring and every key is inside.
func (k Key) InRange(lo, hi Key) bool {
	if lo == hi {
		return true
	}
	if lo.Cmp(hi) < 0 {
		return k.Cmp(lo) >= 0 && k.Cmp(hi) < 0
	}
	// Wrapped interval.
	return k.Cmp(lo) >= 0 || k.Cmp(hi) < 0
}

// String returns the full 40-hex-digit representation.
func (k Key) String() string {
	return hex.EncodeToString(k[:])
}

// Short returns an abbreviated hex prefix for logging.
func (k Key) Short() string {
	return hex.EncodeToString(k[:4])
}

// ParseKey parses a 40-hex-digit string produced by String.
func ParseKey(s string) (Key, error) {
	var k Key
	if len(s) != 2*Size {
		return k, fmt.Errorf("keyspace: key %q has length %d, want %d", s, len(s), 2*Size)
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return k, fmt.Errorf("keyspace: parse key: %w", err)
	}
	copy(k[:], b)
	return k, nil
}

// Div returns k / n for a positive divisor n < 2^32 (node and replica counts
// are always far below that bound).
func (k Key) Div(n uint64) Key {
	if n == 0 {
		panic("keyspace: division by zero")
	}
	var out Key
	var rem uint64
	for i := 0; i < Size; i += 4 {
		cur := rem<<32 | uint64(binary.BigEndian.Uint32(k[i:]))
		binary.BigEndian.PutUint32(out[i:], uint32(cur/n))
		rem = cur % n
	}
	return out
}

// MulUint64 returns k * n mod 2^160 for n < 2^32.
func (k Key) MulUint64(n uint64) Key {
	var out Key
	var carry uint64
	for i := Size - 4; i >= 0; i -= 4 {
		cur := uint64(binary.BigEndian.Uint32(k[i:]))*n + carry
		binary.BigEndian.PutUint32(out[i:], uint32(cur))
		carry = cur >> 32
	}
	return out
}

// FromFraction returns the key at fraction f of the ring (0 ≤ f ≤ 1),
// with 64-bit resolution in the top bits: FromFraction(0.5) is the ring's
// midpoint. Used by weighted (capacity-proportional) range allocation.
func FromFraction(f float64) Key {
	if f <= 0 {
		return Zero
	}
	if f >= 1 {
		return Max
	}
	v := f * float64(1<<63)
	if v >= float64(1<<63) {
		return Max
	}
	var k Key
	binary.BigEndian.PutUint64(k[:8], uint64(v)*2)
	return k
}

// ErrBadDivisor is returned by DivideEvenly for a non-positive divisor.
var ErrBadDivisor = errors.New("keyspace: divisor must be positive")

// DivideEvenly splits the ring into n equal, sequential ranges and returns
// the n range start keys: start[i] = floor(i * 2^160 / n). start[0] is always
// 0. Range i is [start[i], start[i+1 mod n]). This is the balanced range
// allocation of §III-A (Fig 2b): it distributes the key space, and therefore
// the data, uniformly among the nodes.
func DivideEvenly(n int) ([]Key, error) {
	if n <= 0 {
		return nil, ErrBadDivisor
	}
	starts := make([]Key, n)
	for i := 1; i < n; i++ {
		starts[i] = mulShiftDiv(uint64(i), uint64(n))
	}
	return starts, nil
}

// mulShiftDiv computes floor(i * 2^160 / n) for 0 < i < n, n < 2^32 is not
// required: we use 32-bit limbs so any n < 2^32 is safe, and node counts are
// far below that. The dividend i*2^160 is represented as seven 32-bit limbs
// (the top limb holds i, which must fit in 32 bits for this representation;
// node counts always do).
func mulShiftDiv(i, n uint64) Key {
	// dividend limbs, most significant first: [i, 0, 0, 0, 0, 0]
	// 160 bits = five 32-bit limbs of zeros after the i limb.
	limbs := [6]uint64{i, 0, 0, 0, 0, 0}
	var quot [6]uint64
	var rem uint64
	for j := 0; j < len(limbs); j++ {
		cur := rem<<32 | limbs[j]
		quot[j] = cur / n
		rem = cur % n
	}
	// quot[0] is the overflow above 2^160; for i < n it is always 0.
	var k Key
	for j := 1; j < 6; j++ {
		binary.BigEndian.PutUint32(k[(j-1)*4:], uint32(quot[j]))
	}
	return k
}
