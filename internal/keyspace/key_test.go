package keyspace

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randKey generates a uniformly random key for property tests.
func randKey(r *rand.Rand) Key {
	var k Key
	for i := range k {
		k[i] = byte(r.Intn(256))
	}
	return k
}

// Generate implements quick.Generator so Key can appear directly in
// quick.Check property signatures.
func (Key) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(randKey(r))
}

func TestHashDeterministic(t *testing.T) {
	a := Hash([]byte("hello"))
	b := Hash([]byte("hello"))
	if a != b {
		t.Fatalf("Hash not deterministic: %s vs %s", a, b)
	}
	c := Hash([]byte("world"))
	if a == c {
		t.Fatalf("distinct inputs collided: %s", a)
	}
}

func TestHashStringsBoundaries(t *testing.T) {
	if HashStrings("ab", "c") == HashStrings("a", "bc") {
		t.Fatal("HashStrings must be sensitive to part boundaries")
	}
	if HashStrings("R", "5") == HashStrings("R5") {
		t.Fatal("HashStrings must separate parts")
	}
}

func TestFromUint64RoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 42, 1 << 40, ^uint64(0)} {
		if got := FromUint64(v).Uint64(); got != v {
			t.Errorf("FromUint64(%d).Uint64() = %d", v, got)
		}
	}
}

func TestCmpBasics(t *testing.T) {
	one := FromUint64(1)
	two := FromUint64(2)
	if Zero.Cmp(one) != -1 || one.Cmp(Zero) != 1 || one.Cmp(one) != 0 {
		t.Fatal("Cmp of small keys wrong")
	}
	if !Zero.Less(Max) || Max.Less(Zero) {
		t.Fatal("Zero/Max ordering wrong")
	}
	if two.Less(one) {
		t.Fatal("2 < 1 ?!")
	}
}

func TestAddSubSmall(t *testing.T) {
	a := FromUint64(100)
	b := FromUint64(58)
	if got := a.Add(b).Uint64(); got != 158 {
		t.Errorf("100+58 = %d", got)
	}
	if got := a.Sub(b).Uint64(); got != 42 {
		t.Errorf("100-58 = %d", got)
	}
}

func TestAddWrapAround(t *testing.T) {
	if got := Max.AddUint64(1); got != Zero {
		t.Errorf("Max+1 = %s, want zero", got)
	}
	if got := Zero.Sub(FromUint64(1)); got != Max {
		t.Errorf("0-1 = %s, want Max", got)
	}
}

func TestHalf(t *testing.T) {
	if got := FromUint64(10).Half().Uint64(); got != 5 {
		t.Errorf("10/2 = %d", got)
	}
	if got := FromUint64(11).Half().Uint64(); got != 5 {
		t.Errorf("11/2 = %d", got)
	}
	// Half of Max is 2^159 - 1: high byte 0x7F, all others 0xFF.
	h := Max.Half()
	if h[0] != 0x7F {
		t.Errorf("Max.Half() high byte = %#x, want 0x7f", h[0])
	}
	for i := 1; i < Size; i++ {
		if h[i] != 0xFF {
			t.Errorf("Max.Half() byte %d = %#x, want 0xff", i, h[i])
		}
	}
}

func TestMidpointNoOverflow(t *testing.T) {
	// Midpoint of Max and Max is Max (exactly, since (2x)/2 = x).
	if got := Midpoint(Max, Max); got != Max {
		t.Errorf("Midpoint(Max, Max) = %s, want Max", got)
	}
	a := FromUint64(10)
	b := FromUint64(20)
	if got := Midpoint(a, b).Uint64(); got != 15 {
		t.Errorf("Midpoint(10,20) = %d", got)
	}
	// A half-space midpoint: mid(0, 2^159) has high bit pattern 0x40.
	var half Key
	half[0] = 0x80
	mid := Midpoint(Zero, half)
	if mid[0] != 0x40 {
		t.Errorf("Midpoint(0, 2^159) high byte = %#x, want 0x40", mid[0])
	}
}

func TestInRangeSimple(t *testing.T) {
	lo := FromUint64(10)
	hi := FromUint64(20)
	cases := []struct {
		k    uint64
		want bool
	}{
		{9, false}, {10, true}, {15, true}, {19, true}, {20, false}, {25, false},
	}
	for _, c := range cases {
		if got := FromUint64(c.k).InRange(lo, hi); got != c.want {
			t.Errorf("InRange(%d, [10,20)) = %v", c.k, got)
		}
	}
}

func TestInRangeWrapped(t *testing.T) {
	// Interval wrapping through zero: [Max-5, 10)
	lo := Max.Sub(FromUint64(5))
	hi := FromUint64(10)
	if !Max.InRange(lo, hi) {
		t.Error("Max should be in wrapped range")
	}
	if !Zero.InRange(lo, hi) {
		t.Error("Zero should be in wrapped range")
	}
	if !FromUint64(9).InRange(lo, hi) {
		t.Error("9 should be in wrapped range")
	}
	if FromUint64(10).InRange(lo, hi) {
		t.Error("10 should be outside half-open wrapped range")
	}
	if FromUint64(1<<40).InRange(lo, hi) {
		t.Error("middle of ring should be outside wrapped range")
	}
}

func TestInRangeFullRing(t *testing.T) {
	k := Hash([]byte("anything"))
	if !k.InRange(k, k) {
		t.Error("lo==hi must denote the full ring")
	}
	if !Zero.InRange(Max, Max) {
		t.Error("lo==hi must denote the full ring for any bound")
	}
}

func TestParseKeyRoundTrip(t *testing.T) {
	k := Hash([]byte("roundtrip"))
	parsed, err := ParseKey(k.String())
	if err != nil {
		t.Fatalf("ParseKey: %v", err)
	}
	if parsed != k {
		t.Fatalf("round trip mismatch: %s vs %s", parsed, k)
	}
	if _, err := ParseKey("zz"); err == nil {
		t.Error("ParseKey should reject short input")
	}
	if _, err := ParseKey("zz" + k.String()[2:]); err == nil {
		t.Error("ParseKey should reject non-hex input")
	}
}

func TestDivideEvenly(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 16, 100} {
		starts, err := DivideEvenly(n)
		if err != nil {
			t.Fatalf("DivideEvenly(%d): %v", n, err)
		}
		if len(starts) != n {
			t.Fatalf("DivideEvenly(%d) returned %d starts", n, len(starts))
		}
		if !starts[0].IsZero() {
			t.Errorf("DivideEvenly(%d): first start %s, want zero", n, starts[0])
		}
		// Starts must be strictly increasing.
		for i := 1; i < n; i++ {
			if starts[i].Cmp(starts[i-1]) <= 0 {
				t.Errorf("DivideEvenly(%d): starts not increasing at %d", n, i)
			}
		}
		// Ranges must be nearly equal: every range size differs from
		// 2^160/n by at most 1.
		if n > 1 {
			base := starts[1]
			for i := 1; i < n; i++ {
				var next Key
				if i+1 < n {
					next = starts[i+1]
				} else {
					next = Zero // wraps
				}
				size := next.Sub(starts[i])
				diff := size.Sub(base)
				if !diff.IsZero() && diff != Max && diff != FromUint64(1) {
					t.Errorf("DivideEvenly(%d): range %d size deviates by %s", n, i, diff)
				}
			}
		}
	}
	if _, err := DivideEvenly(0); err == nil {
		t.Error("DivideEvenly(0) should fail")
	}
	if _, err := DivideEvenly(-3); err == nil {
		t.Error("DivideEvenly(-3) should fail")
	}
}

func TestDivideEvenlyTwo(t *testing.T) {
	starts, err := DivideEvenly(2)
	if err != nil {
		t.Fatal(err)
	}
	if starts[1][0] != 0x80 {
		t.Errorf("half point high byte = %#x, want 0x80", starts[1][0])
	}
	for i := 1; i < Size; i++ {
		if starts[1][i] != 0 {
			t.Errorf("half point byte %d = %#x, want 0", i, starts[1][i])
		}
	}
}

// --- Property-based tests ---

func TestPropAddSubInverse(t *testing.T) {
	f := func(a, b Key) bool {
		return a.Add(b).Sub(b) == a && a.Sub(b).Add(b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropAddCommutative(t *testing.T) {
	f := func(a, b Key) bool { return a.Add(b) == b.Add(a) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropAddAssociative(t *testing.T) {
	f := func(a, b, c Key) bool { return a.Add(b).Add(c) == a.Add(b.Add(c)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropCmpAntisymmetric(t *testing.T) {
	f := func(a, b Key) bool { return a.Cmp(b) == -b.Cmp(a) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropMidpointBetween(t *testing.T) {
	f := func(a, b Key) bool {
		lo, hi := a, b
		if hi.Less(lo) {
			lo, hi = hi, lo
		}
		m := Midpoint(a, b)
		return lo.Cmp(m) <= 0 && m.Cmp(hi) <= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropMidpointHalvesDistance(t *testing.T) {
	f := func(a, b Key) bool {
		lo, hi := a, b
		if hi.Less(lo) {
			lo, hi = hi, lo
		}
		m := Midpoint(lo, hi)
		// m - lo and hi - m differ by at most 1.
		left := m.Sub(lo)
		right := hi.Sub(m)
		d := left.Sub(right)
		return d.IsZero() || d == FromUint64(1) || d == Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropRingDistanceSymmetric(t *testing.T) {
	f := func(a, b Key) bool { return a.RingDistance(b) == b.RingDistance(a) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropInRangeComplement(t *testing.T) {
	// For lo != hi, k is in exactly one of [lo,hi) and [hi,lo).
	f := func(k, lo, hi Key) bool {
		if lo == hi {
			return k.InRange(lo, hi)
		}
		in1 := k.InRange(lo, hi)
		in2 := k.InRange(hi, lo)
		return in1 != in2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropParseKeyRoundTrip(t *testing.T) {
	f := func(k Key) bool {
		p, err := ParseKey(k.String())
		return err == nil && p == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropHalfMatchesSub(t *testing.T) {
	// k.Half().Add(k.Half()) is k or k-1 (depending on low bit).
	f := func(k Key) bool {
		twice := k.Half().Add(k.Half())
		return twice == k || twice.AddUint64(1) == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
