package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Render writes a figure as an aligned text table: one row per X value,
// one column per series — the same rows/series the paper plots.
func Render(w io.Writer, fig *Figure) {
	fmt.Fprintf(w, "== %s: %s\n", fig.ID, fig.Title)
	for _, n := range fig.Notes {
		fmt.Fprintf(w, "   %s\n", n)
	}
	if len(fig.Series) == 0 {
		fmt.Fprintln(w, "   (no data)")
		return
	}

	// Collect the union of X values in order.
	xsSet := map[float64]bool{}
	for _, s := range fig.Series {
		for _, p := range s.Points {
			xsSet[p.X] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	header := []string{fig.XLabel}
	for _, s := range fig.Series {
		header = append(header, s.Label)
	}
	rows := [][]string{header}
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range fig.Series {
			cell := "-"
			for _, p := range s.Points {
				if p.X == x {
					cell = trimFloat(p.Y)
					break
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	writeAligned(w, rows)
	fmt.Fprintf(w, "   (y: %s)\n\n", fig.YLabel)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		s = "0"
	}
	return s
}

func writeAligned(w io.Writer, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		b.WriteString("   ")
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(fmt.Sprintf("%*s", widths[i], cell))
		}
		fmt.Fprintln(w, b.String())
	}
}

// Markdown renders a figure as a Markdown table (for EXPERIMENTS.md).
func Markdown(fig *Figure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", fig.ID, fig.Title)
	for _, n := range fig.Notes {
		fmt.Fprintf(&b, "> %s\n", n)
	}
	if len(fig.Notes) > 0 {
		b.WriteString("\n")
	}
	xsSet := map[float64]bool{}
	for _, s := range fig.Series {
		for _, p := range s.Points {
			xsSet[p.X] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	b.WriteString("| " + fig.XLabel + " |")
	for _, s := range fig.Series {
		b.WriteString(" " + s.Label + " |")
	}
	b.WriteString("\n|---|")
	for range fig.Series {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, x := range xs {
		b.WriteString("| " + trimFloat(x) + " |")
		for _, s := range fig.Series {
			cell := "-"
			for _, p := range s.Points {
				if p.X == x {
					cell = trimFloat(p.Y)
					break
				}
			}
			b.WriteString(" " + cell + " |")
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "\n*(y: %s)*\n\n", fig.YLabel)
	return b.String()
}
