package bench

import (
	"fmt"
	"sort"
	"time"

	"orchestra"
	"orchestra/internal/ring"
	"orchestra/internal/stbench"
	"orchestra/internal/tpch"
)

// metric selects which Measurement field a figure plots.
type metric int

const (
	metricTime metric = iota
	metricTotalMB
	metricPerNodeMB
)

func (m metric) of(meas *Measurement) float64 {
	switch m {
	case metricTotalMB:
		return meas.TotalMB
	case metricPerNodeMB:
		return meas.PerNodeMB
	default:
		return meas.Modeled
	}
}

func (m metric) label() string {
	switch m {
	case metricTotalMB:
		return "network traffic (MB)"
	case metricPerNodeMB:
		return "per-node network traffic (MB)"
	default:
		return "modeled execution time (sec)"
	}
}

// Run regenerates one figure by id; see FigureIDs.
func Run(id string, cfg Config) (*Figure, error) {
	cfg = cfg.WithDefaults()
	switch id {
	case "fig2":
		return fig2RangeAllocation(cfg)
	case "fig7":
		return stbenchNodesSweep(cfg, "fig7", metricTime)
	case "fig8":
		return stbenchNodesSweep(cfg, "fig8", metricTotalMB)
	case "fig9":
		return stbenchNodesSweep(cfg, "fig9", metricPerNodeMB)
	case "fig10":
		return tpchNodesSweep(cfg, "fig10", metricTime)
	case "fig11":
		return tpchNodesSweep(cfg, "fig11", metricTotalMB)
	case "fig12":
		return tpchNodesSweep(cfg, "fig12", metricPerNodeMB)
	case "fig13":
		return stbenchDataSweep(cfg, "fig13", metricTime)
	case "fig14":
		return tpchDataSweep(cfg, "fig14", metricTime)
	case "fig15":
		return stbenchDataSweep(cfg, "fig15", metricTotalMB)
	case "fig16":
		return tpchDataSweep(cfg, "fig16", metricTotalMB)
	case "fig17":
		return fig17Bandwidth(cfg)
	case "lat":
		return latencySweep(cfg)
	case "fig18":
		return ec2Sweep(cfg, "fig18", metricTime)
	case "fig19":
		return ec2Sweep(cfg, "fig19", metricTotalMB)
	case "fig20":
		return ec2Sweep(cfg, "fig20", metricPerNodeMB)
	case "fig21":
		return fig21Recovery(cfg)
	case "ovh":
		return recoveryOverhead(cfg)
	case "fdet":
		return failureDetection(cfg)
	default:
		return nil, fmt.Errorf("bench: unknown figure %q (known: %v)", id, FigureIDs())
	}
}

// FigureIDs lists every regenerable figure.
func FigureIDs() []string {
	return []string{
		"fig2", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16", "fig17", "lat",
		"fig18", "fig19", "fig20", "fig21", "ovh", "fdet",
	}
}

// --- Fig 2: range allocation balance ---

func fig2RangeAllocation(cfg Config) (*Figure, error) {
	fig := &Figure{
		ID:     "fig2",
		Title:  "Range allocation: key-space share skew (max/min owned share)",
		XLabel: "nodes",
		YLabel: "max/min share ratio (1.0 = uniform)",
	}
	sizes := []int{5, 10, 20, 50, 100}
	for _, scheme := range []ring.Scheme{ring.PastryStyle, ring.Balanced} {
		s := Series{Label: scheme.String()}
		for _, n := range sizes {
			ids := make([]ring.NodeID, n)
			for i := range ids {
				ids[i] = ring.NodeID(fmt.Sprintf("node-%03d", i))
			}
			t, err := ring.New(ids, scheme, 3)
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{X: float64(n), Y: t.Balance()})
		}
		fig.Series = append(fig.Series, s)
	}
	fig.Notes = append(fig.Notes,
		"Pastry-style allocation leaves small networks badly skewed (Fig 2a);",
		"balanced allocation is uniform by construction (Fig 2b).")
	return fig, nil
}

// --- Figs 7-9: STBenchmark over node counts ---

func stbenchNodesSweep(cfg Config, id string, m metric) (*Figure, error) {
	fig := &Figure{
		ID: id,
		Title: fmt.Sprintf("STBenchmark, %d tuples/relation, 1-%d nodes",
			cfg.STBTuples, cfg.Nodes[len(cfg.Nodes)-1]),
		XLabel: "nodes",
		YLabel: m.label(),
	}
	series := map[string]*Series{}
	for _, sc := range stbench.Scenarios() {
		series[sc.Name] = &Series{Label: sc.Name}
	}
	for _, n := range cfg.Nodes {
		cfg.logf("%s: %d nodes", id, n)
		c, err := orchestra.NewCluster(n)
		if err != nil {
			return nil, err
		}
		if err := loadSTBench(c, cfg.STBTuples); err != nil {
			c.Shutdown()
			return nil, err
		}
		for _, sc := range stbench.Scenarios() {
			meas, err := warmAndMeasure(c, sc.SQL, defaultLinkBps)
			if err != nil {
				c.Shutdown()
				return nil, fmt.Errorf("%s on %d nodes: %w", sc.Name, n, err)
			}
			series[sc.Name].Points = append(series[sc.Name].Points,
				Point{X: float64(n), Y: m.of(meas)})
		}
		c.Shutdown()
	}
	for _, sc := range stbench.Scenarios() {
		fig.Series = append(fig.Series, *series[sc.Name])
	}
	return fig, nil
}

// --- Figs 10-12: TPC-H over node counts ---

func tpchNodesSweep(cfg Config, id string, m metric) (*Figure, error) {
	fig := &Figure{
		ID:     id,
		Title:  fmt.Sprintf("TPC-H SF %.3g, 1-%d nodes", cfg.TPCHScale, cfg.Nodes[len(cfg.Nodes)-1]),
		XLabel: "nodes",
		YLabel: m.label(),
	}
	series := map[string]*Series{}
	for _, q := range tpch.Queries() {
		series[q.Name] = &Series{Label: q.Name}
	}
	for _, n := range cfg.Nodes {
		cfg.logf("%s: %d nodes", id, n)
		c, err := orchestra.NewCluster(n)
		if err != nil {
			return nil, err
		}
		if err := loadTPCH(c, cfg.TPCHScale); err != nil {
			c.Shutdown()
			return nil, err
		}
		for _, q := range tpch.Queries() {
			meas, err := warmAndMeasure(c, q.SQL, defaultLinkBps)
			if err != nil {
				c.Shutdown()
				return nil, fmt.Errorf("%s on %d nodes: %w", q.Name, n, err)
			}
			series[q.Name].Points = append(series[q.Name].Points,
				Point{X: float64(n), Y: m.of(meas)})
		}
		c.Shutdown()
	}
	for _, q := range tpch.Queries() {
		fig.Series = append(fig.Series, *series[q.Name])
	}
	return fig, nil
}

// --- Figs 13/15: STBenchmark over data size; Figs 14/16: TPC-H ---

func stbenchDataSweep(cfg Config, id string, m metric) (*Figure, error) {
	const nodes = 8
	fig := &Figure{
		ID:     id,
		Title:  fmt.Sprintf("STBenchmark on %d nodes, data-size sweep", nodes),
		XLabel: "tuples/relation",
		YLabel: m.label(),
	}
	series := map[string]*Series{}
	for _, sc := range stbench.Scenarios() {
		series[sc.Name] = &Series{Label: sc.Name}
	}
	for _, mult := range cfg.DataPoints {
		tuples := int(float64(cfg.STBTuples) * mult)
		cfg.logf("%s: %d tuples/relation", id, tuples)
		c, err := orchestra.NewCluster(nodes)
		if err != nil {
			return nil, err
		}
		if err := loadSTBench(c, tuples); err != nil {
			c.Shutdown()
			return nil, err
		}
		for _, sc := range stbench.Scenarios() {
			meas, err := warmAndMeasure(c, sc.SQL, defaultLinkBps)
			if err != nil {
				c.Shutdown()
				return nil, err
			}
			series[sc.Name].Points = append(series[sc.Name].Points,
				Point{X: float64(tuples), Y: m.of(meas)})
		}
		c.Shutdown()
	}
	for _, sc := range stbench.Scenarios() {
		fig.Series = append(fig.Series, *series[sc.Name])
	}
	return fig, nil
}

func tpchDataSweep(cfg Config, id string, m metric) (*Figure, error) {
	const nodes = 8
	fig := &Figure{
		ID:     id,
		Title:  fmt.Sprintf("TPC-H on %d nodes, scale-factor sweep", nodes),
		XLabel: "scale factor",
		YLabel: m.label(),
	}
	series := map[string]*Series{}
	for _, q := range tpch.Queries() {
		series[q.Name] = &Series{Label: q.Name}
	}
	for _, mult := range cfg.DataPoints {
		sf := cfg.TPCHScale * mult
		cfg.logf("%s: SF %.4f", id, sf)
		c, err := orchestra.NewCluster(nodes)
		if err != nil {
			return nil, err
		}
		if err := loadTPCH(c, sf); err != nil {
			c.Shutdown()
			return nil, err
		}
		for _, q := range tpch.Queries() {
			meas, err := warmAndMeasure(c, q.SQL, defaultLinkBps)
			if err != nil {
				c.Shutdown()
				return nil, err
			}
			series[q.Name].Points = append(series[q.Name].Points,
				Point{X: sf, Y: m.of(meas)})
		}
		c.Shutdown()
	}
	for _, q := range tpch.Queries() {
		fig.Series = append(fig.Series, *series[q.Name])
	}
	return fig, nil
}

// --- Fig 17: bandwidth sensitivity; §VI-C latency note ---

func fig17Bandwidth(cfg Config) (*Figure, error) {
	const nodes = 8
	// Bandwidth shaping makes wall time real: scale the data down so the
	// low-bandwidth points finish in seconds rather than minutes.
	sf := cfg.TPCHScale * 0.2
	fig := &Figure{
		ID:     "fig17",
		Title:  fmt.Sprintf("TPC-H SF %.3g on %d nodes vs per-node bandwidth", sf, nodes),
		XLabel: "per-node bandwidth (KB/s)",
		YLabel: "wall execution time (sec)",
		Notes: []string{
			"Wall time here includes the real token-bucket shaping delays;",
			"rehash-heavy joins (Q3/Q5/Q10) degrade far more than scan-only Q1/Q6.",
		},
	}
	series := map[string]*Series{}
	for _, q := range tpch.Queries() {
		series[q.Name] = &Series{Label: q.Name}
	}
	for _, bw := range cfg.Bandwidths {
		cfg.logf("fig17: bandwidth %d KB/s", bw>>10)
		c, err := orchestra.NewCluster(nodes, orchestra.WithBandwidth(bw))
		if err != nil {
			return nil, err
		}
		if err := loadTPCH(c, sf); err != nil {
			c.Shutdown()
			return nil, err
		}
		for _, q := range tpch.Queries() {
			meas, err := runQuery(c, q.SQL, orchestra.QueryOptions{Timeout: 10 * time.Minute}, float64(bw))
			if err != nil {
				c.Shutdown()
				return nil, err
			}
			series[q.Name].Points = append(series[q.Name].Points,
				Point{X: float64(bw) / 1024, Y: meas.Wall.Seconds()})
		}
		c.Shutdown()
	}
	for _, q := range tpch.Queries() {
		fig.Series = append(fig.Series, *series[q.Name])
	}
	return fig, nil
}

func latencySweep(cfg Config) (*Figure, error) {
	const nodes = 8
	fig := &Figure{
		ID:     "lat",
		Title:  "TPC-H vs one-way link latency (§VI-C: little impact up to 200ms)",
		XLabel: "one-way latency (ms)",
		YLabel: "wall execution time (sec)",
	}
	series := map[string]*Series{}
	for _, q := range tpch.Queries() {
		series[q.Name] = &Series{Label: q.Name}
	}
	for _, lat := range cfg.Latencies {
		cfg.logf("lat: latency %s", lat)
		c, err := orchestra.NewCluster(nodes, orchestra.WithLatency(lat))
		if err != nil {
			return nil, err
		}
		if err := loadTPCH(c, cfg.TPCHScale*0.2); err != nil {
			c.Shutdown()
			return nil, err
		}
		for _, q := range tpch.Queries() {
			meas, err := runQuery(c, q.SQL, orchestra.QueryOptions{Timeout: 10 * time.Minute}, defaultLinkBps)
			if err != nil {
				c.Shutdown()
				return nil, err
			}
			series[q.Name].Points = append(series[q.Name].Points,
				Point{X: float64(lat.Milliseconds()), Y: meas.Wall.Seconds()})
		}
		c.Shutdown()
	}
	for _, q := range tpch.Queries() {
		fig.Series = append(fig.Series, *series[q.Name])
	}
	return fig, nil
}

// --- Figs 18-20: larger node counts (the EC2 experiment) ---

func ec2Sweep(cfg Config, id string, m metric) (*Figure, error) {
	nodes := []int{10, 25, 50, 100}
	fig := &Figure{
		ID:     id,
		Title:  fmt.Sprintf("TPC-H SF %.3g at 10-100 nodes (EC2 experiment substitute)", cfg.TPCHScale),
		XLabel: "nodes",
		YLabel: m.label(),
	}
	series := map[string]*Series{}
	for _, q := range tpch.Queries() {
		series[q.Name] = &Series{Label: q.Name}
	}
	for _, n := range nodes {
		cfg.logf("%s: %d nodes", id, n)
		c, err := orchestra.NewCluster(n)
		if err != nil {
			return nil, err
		}
		if err := loadTPCH(c, cfg.TPCHScale); err != nil {
			c.Shutdown()
			return nil, err
		}
		for _, q := range tpch.Queries() {
			meas, err := warmAndMeasure(c, q.SQL, defaultLinkBps)
			if err != nil {
				c.Shutdown()
				return nil, err
			}
			series[q.Name].Points = append(series[q.Name].Points,
				Point{X: float64(n), Y: m.of(meas)})
		}
		c.Shutdown()
	}
	for _, q := range tpch.Queries() {
		fig.Series = append(fig.Series, *series[q.Name])
	}
	return fig, nil
}

// --- Fig 21: failure time vs completion, restart vs incremental ---

func fig21Recovery(cfg Config) (*Figure, error) {
	const nodes = 8
	fig := &Figure{
		ID:     "fig21",
		Title:  "Completion time with one node failure: restart vs incremental recovery",
		XLabel: "failure time offset (fraction of failure-free runtime)",
		YLabel: "wall completion time (sec)",
	}
	queries := []string{"Q1", "Q10"}
	for _, qname := range queries {
		q := tpch.QueryByName(qname)
		for _, mode := range []struct {
			label string
			rec   orchestra.RecoveryMode
		}{
			{qname + "/Restart", orchestra.RecoverRestart},
			{qname + "/Incremental", orchestra.RecoverIncremental},
		} {
			s := Series{Label: mode.label}
			for _, frac := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
				c, err := orchestra.NewCluster(nodes)
				if err != nil {
					return nil, err
				}
				if err := loadTPCH(c, cfg.TPCHScale); err != nil {
					c.Shutdown()
					return nil, err
				}
				// Failure-free baseline run to calibrate the offset.
				base := time.Now()
				if _, err := c.Query(q.SQL); err != nil {
					c.Shutdown()
					return nil, err
				}
				baseline := time.Since(base)

				delay := time.Duration(frac * float64(baseline))
				victim := nodes - 2 // never the initiator
				done := make(chan struct{})
				go func() {
					select {
					case <-time.After(delay):
						c.Kill(victim)
					case <-done:
					}
				}()
				start := time.Now()
				_, err = c.QueryOpts(q.SQL, orchestra.QueryOptions{
					Recovery: mode.rec,
					Timeout:  5 * time.Minute,
				})
				close(done)
				if err != nil {
					c.Shutdown()
					return nil, fmt.Errorf("fig21 %s frac %.1f: %w", mode.label, frac, err)
				}
				s.Points = append(s.Points, Point{X: frac, Y: time.Since(start).Seconds()})
				c.Shutdown()
			}
			fig.Series = append(fig.Series, s)
		}
	}
	fig.Notes = append(fig.Notes,
		"The paper reports incremental recovery beating restart by ≈20% (Fig 21);",
		"both are slower than failure-free runs due to replica cache misses.")
	return fig, nil
}

// --- §VI-E: overhead of incremental recovery support ---

func recoveryOverhead(cfg Config) (*Figure, error) {
	const nodes = 8
	fig := &Figure{
		ID:     "ovh",
		Title:  "Overhead of recovery support (provenance + caches), no failures",
		XLabel: "query (index)",
		YLabel: "overhead (%)",
		Notes: []string{
			"Paper: 2-7% execution-time overhead, ≤2% traffic overhead (§VI-E).",
			"X axis indexes the TPC-H queries Q1,Q3,Q5,Q6,Q10 as 1..5.",
		},
	}
	c, err := orchestra.NewCluster(nodes)
	if err != nil {
		return nil, err
	}
	defer c.Shutdown()
	if err := loadTPCH(c, cfg.TPCHScale); err != nil {
		return nil, err
	}
	timeSeries := Series{Label: "modeled-time overhead %"}
	trafficSeries := Series{Label: "traffic overhead %"}
	for i, q := range tpch.Queries() {
		if _, err := c.Query(q.SQL); err != nil {
			return nil, err
		}
		// Median-of-3 per configuration to stabilize.
		run := func(prov bool) (*Measurement, error) {
			var ms []*Measurement
			for k := 0; k < 3; k++ {
				m, err := runQuery(c, q.SQL, orchestra.QueryOptions{Provenance: prov}, defaultLinkBps)
				if err != nil {
					return nil, err
				}
				ms = append(ms, m)
			}
			sort.Slice(ms, func(a, b int) bool { return ms[a].Modeled < ms[b].Modeled })
			return ms[1], nil
		}
		off, err := run(false)
		if err != nil {
			return nil, err
		}
		on, err := run(true)
		if err != nil {
			return nil, err
		}
		x := float64(i + 1)
		timeSeries.Points = append(timeSeries.Points,
			Point{X: x, Y: 100 * (on.Modeled - off.Modeled) / off.Modeled})
		trafficSeries.Points = append(trafficSeries.Points,
			Point{X: x, Y: 100 * (on.TotalMB - off.TotalMB) / off.TotalMB})
	}
	fig.Series = append(fig.Series, timeSeries, trafficSeries)
	return fig, nil
}

// --- §V-A: failure detection latency ---

func failureDetection(cfg Config) (*Figure, error) {
	fig := &Figure{
		ID:     "fdet",
		Title:  "Failure detection latency: connection drop vs background pings",
		XLabel: "trial",
		YLabel: "detection latency (ms)",
		Notes: []string{
			"A crashed node's dropped connections are detected almost immediately;",
			"a hung node (connections alive, no replies) needs the pinger (§V-A, §V-C).",
		},
	}
	drop := Series{Label: "connection-drop (crash)"}
	ping := Series{Label: "ping-based (hung)"}
	for trial := 0; trial < 5; trial++ {
		// Crash detection.
		c, err := orchestra.NewCluster(4)
		if err != nil {
			return nil, err
		}
		ch := make(chan time.Duration, 1)
		start := time.Now()
		c.OnNodeDown(0, func(string) {
			select {
			case ch <- time.Since(start):
			default:
			}
		})
		c.Kill(2)
		select {
		case d := <-ch:
			drop.Points = append(drop.Points, Point{X: float64(trial), Y: float64(d.Microseconds()) / 1000})
		case <-time.After(5 * time.Second):
			drop.Points = append(drop.Points, Point{X: float64(trial), Y: 5000})
		}
		c.Shutdown()

		// Hung-machine detection via pings.
		c2, err := orchestra.NewCluster(4)
		if err != nil {
			return nil, err
		}
		c2.StartPingers(20*time.Millisecond, 60*time.Millisecond)
		ch2 := make(chan time.Duration, 1)
		start2 := time.Now()
		c2.OnNodeDown(0, func(string) {
			select {
			case ch2 <- time.Since(start2):
			default:
			}
		})
		c2.Hang(2)
		select {
		case d := <-ch2:
			ping.Points = append(ping.Points, Point{X: float64(trial), Y: float64(d.Microseconds()) / 1000})
		case <-time.After(5 * time.Second):
			ping.Points = append(ping.Points, Point{X: float64(trial), Y: 5000})
		}
		c2.Shutdown()
	}
	fig.Series = append(fig.Series, drop, ping)
	return fig, nil
}
