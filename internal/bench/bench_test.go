package bench

import (
	"strings"
	"testing"
)

// microConfig keeps harness self-tests fast.
func microConfig() Config {
	return Config{
		STBTuples:  200,
		TPCHScale:  0.001,
		Nodes:      []int{1, 2},
		DataPoints: []float64{1},
	}.WithDefaults()
}

func TestFig2(t *testing.T) {
	fig, err := Run("fig2", microConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series: %d", len(fig.Series))
	}
	// Balanced must be uniform; Pastry-style skewed.
	for _, s := range fig.Series {
		for _, p := range s.Points {
			if s.Label == "balanced" && p.Y != 1 {
				t.Fatalf("balanced skew %f at n=%f", p.Y, p.X)
			}
			if s.Label == "pastry" && p.Y <= 1 {
				t.Fatalf("pastry unexpectedly uniform at n=%f", p.X)
			}
		}
	}
}

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	fig, err := Run("fig7", microConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 5 {
		t.Fatalf("want 5 scenarios, got %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) != 2 {
			t.Fatalf("%s: %d points", s.Label, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Y <= 0 {
				t.Fatalf("%s: non-positive time %f", s.Label, p.Y)
			}
		}
	}
}

func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	fig, err := Run("fig10", microConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 5 {
		t.Fatalf("want 5 queries, got %d", len(fig.Series))
	}
}

func TestUnknownFigure(t *testing.T) {
	if _, err := Run("fig999", microConfig()); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRenderAndMarkdown(t *testing.T) {
	fig, err := Run("fig2", microConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	Render(&sb, fig)
	if !strings.Contains(sb.String(), "fig2") || !strings.Contains(sb.String(), "balanced") {
		t.Fatalf("render output:\n%s", sb.String())
	}
	md := Markdown(fig)
	if !strings.Contains(md, "| nodes |") {
		t.Fatalf("markdown output:\n%s", md)
	}
}

func TestFigureIDsComplete(t *testing.T) {
	ids := FigureIDs()
	if len(ids) != 19 {
		t.Fatalf("got %d figure ids", len(ids))
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %s", id)
		}
		seen[id] = true
	}
	for _, want := range []string{"fig2", "fig7", "fig17", "fig21", "ovh", "fdet", "lat"} {
		if !seen[want] {
			t.Fatalf("missing id %s", want)
		}
	}
}
