// Package bench is the experiment harness of paper §VI: it regenerates
// every figure of the evaluation — query performance scaling over nodes
// and data size for the STBenchmark and TPC-H workloads (Figs 7-16),
// bandwidth and latency sensitivity (Fig 17, §VI-C), larger-scale runs
// (Figs 18-20), failure recovery trade-offs (Fig 21, §VI-E), recovery
// overhead (§VI-E), range-allocation balance (Fig 2), and failure
// detection latency (§V-A).
//
// Substitutions relative to the paper's testbed are deliberate and
// documented in DESIGN.md: the cluster is simulated in-process (a
// goroutine per node over a byte-accurate message fabric), so traffic
// numbers are real wire sizes, while parallel speedup is reported through
// a modeled completion time computed from per-node work counters — the
// cost at the slowest node or link, mirroring the paper's own cost logic.
package bench

import (
	"fmt"
	"io"
	"time"

	"orchestra"
	"orchestra/internal/engine"
	"orchestra/internal/ring"
	"orchestra/internal/stbench"
	"orchestra/internal/tpch"
	"orchestra/internal/tuple"
)

// Calibration constants for the modeled completion time (seconds per
// tuple / bytes per second), matching the optimizer's cost model.
const (
	cpuPerTuple  = 1e-6
	diskPerTuple = 2e-6
	// defaultLinkBps models the paper's Gigabit LAN when no explicit
	// bandwidth shaping is configured.
	defaultLinkBps = 125e6
)

// Config scales the harness. Zero values select laptop-scale defaults;
// the -paper flag of cmd/orchestra-bench selects the paper's parameters.
type Config struct {
	// STBTuples is tuples per STBenchmark relation (paper: 800K/1.6M).
	STBTuples int
	// TPCHScale is the TPC-H scale factor (paper: 0.5-10).
	TPCHScale float64
	// Nodes is the node-count sweep for scaling figures.
	Nodes []int
	// DataPoints scales the data-size sweeps (multipliers of the base).
	DataPoints []float64
	// Bandwidths for Fig 17, bytes/second per node.
	Bandwidths []int64
	// Latencies for the latency experiment.
	Latencies []time.Duration
	// Verbose echoes progress.
	Verbose bool
	// Out receives the report (defaults to io.Discard if nil).
	Out io.Writer
}

// WithDefaults fills in the laptop-scale configuration.
func (c Config) WithDefaults() Config {
	if c.STBTuples <= 0 {
		c.STBTuples = 4000
	}
	if c.TPCHScale <= 0 {
		c.TPCHScale = 0.01
	}
	if len(c.Nodes) == 0 {
		c.Nodes = []int{1, 2, 4, 8, 16}
	}
	if len(c.DataPoints) == 0 {
		c.DataPoints = []float64{0.25, 0.5, 1, 2}
	}
	if len(c.Bandwidths) == 0 {
		c.Bandwidths = []int64{100 << 10, 200 << 10, 400 << 10, 800 << 10, 1600 << 10, 3200 << 10}
	}
	if len(c.Latencies) == 0 {
		c.Latencies = []time.Duration{0, 50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond}
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	return c
}

func (c Config) logf(format string, args ...any) {
	if c.Verbose {
		fmt.Fprintf(c.Out, "# "+format+"\n", args...)
	}
}

// Point is one measurement of one series.
type Point struct {
	X float64
	Y float64
}

// Series is one line of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Figure is a regenerated figure: the paper's plot as data.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Measurement captures one query execution.
type Measurement struct {
	Wall      time.Duration
	Modeled   float64 // seconds; cost at the slowest node or link
	TotalMB   float64 // network traffic, megabytes
	PerNodeMB float64 // max per-node traffic, megabytes
	Rows      int
	Phases    uint32
}

// runQuery executes one SQL query and gathers all metrics.
func runQuery(c *orchestra.Cluster, sqlText string, opts orchestra.QueryOptions, linkBps float64) (*Measurement, error) {
	c.ResetNetworkStats()
	start := time.Now()
	res, err := c.QueryOpts(sqlText, opts)
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)
	net := c.NetworkStats()

	var maxPerNode int64
	for _, b := range net.SentBytes {
		if b > maxPerNode {
			maxPerNode = b
		}
	}
	for _, b := range net.RecvBytes {
		if b > maxPerNode {
			maxPerNode = b
		}
	}
	return &Measurement{
		Wall:      wall,
		Modeled:   modeledTime(res, net.SentBytes, net.RecvBytes, linkBps),
		TotalMB:   float64(net.TotalBytes) / (1 << 20),
		PerNodeMB: float64(maxPerNode) / (1 << 20),
		Rows:      len(res.Rows),
		Phases:    res.Phases,
	}, nil
}

// modeledTime computes the completion-time model of DESIGN.md §2: the
// maximum per-node CPU work plus the maximum per-node link time — the
// slowest node or link at each stage, as the paper's optimizer costs it.
func modeledTime(res *orchestra.Result, sent, recv map[ring.NodeID]int64, linkBps float64) float64 {
	if linkBps <= 0 {
		linkBps = defaultLinkBps
	}
	var maxCPU, maxLink float64
	for id, st := range res.PerNode {
		cpu := float64(st.Scanned)*diskPerTuple +
			float64(st.ExchSent+st.ExchRecv+st.Shipped)*cpuPerTuple
		if cpu > maxCPU {
			maxCPU = cpu
		}
		bytes := sent[ring.NodeID(id)]
		if recv[ring.NodeID(id)] > bytes {
			bytes = recv[ring.NodeID(id)]
		}
		link := float64(bytes) / linkBps
		if link > maxLink {
			maxLink = link
		}
	}
	return maxCPU + maxLink
}

// --- workload loading ---

// loadSTBench creates and publishes the STBenchmark relations.
func loadSTBench(c *orchestra.Cluster, tuples int) error {
	data := stbench.Generate(stbench.Config{Tuples: tuples, Seed: 42})
	for _, s := range stbench.Schemas() {
		if err := c.CreateRelationSchema(s); err != nil {
			return err
		}
		if _, err := c.PublishTyped(0, s.Relation, data[s.Relation]); err != nil {
			return err
		}
	}
	return nil
}

// loadTPCH creates and publishes the TPC-H tables at a scale factor.
func loadTPCH(c *orchestra.Cluster, sf float64) error {
	data := tpch.Generate(sf, 42)
	for _, s := range tpch.Schemas() {
		if err := c.CreateRelationSchema(s); err != nil {
			return err
		}
		if _, err := c.PublishTyped(0, s.Relation, data[s.Relation]); err != nil {
			return err
		}
	}
	return nil
}

// warmAndMeasure runs the query once to warm caches (as the paper does:
// "All measurements were taken after results converged"), then measures.
func warmAndMeasure(c *orchestra.Cluster, sqlText string, linkBps float64) (*Measurement, error) {
	if _, err := c.QueryOpts(sqlText, orchestra.QueryOptions{}); err != nil {
		return nil, err
	}
	return runQuery(c, sqlText, orchestra.QueryOptions{}, linkBps)
}

// tupleRowsOf adapts generated data for direct engine use in recovery
// experiments.
func tupleRowsOf(rows []tuple.Row) []tuple.Row { return rows }

var _ = engine.RecoverIncremental // referenced by figures.go
