package engine

import (
	"encoding/binary"
	"sync"

	"orchestra/internal/tuple"
)

// sink receives batches of tuples pushed by an upstream producer. The
// end-of-stream signal carries the phase of the wave that produced it: a
// completion marker must always be attributed to the wave it terminates,
// never to whatever phase the node happens to be in when the marker is
// emitted — otherwise a phase-0 completion racing with a recovery directive
// would satisfy a phase-1 gate before the recomputed data exists (§V-D).
type sink interface {
	push(ts []Tup)
	eos(phase uint32)
}

// recoverable state-holding operators participate in incremental recovery:
// they purge tainted state and, if they had already finished, reopen so the
// recomputation phase can flow through them (§V-D).
type recoverable interface {
	recover(failed Prov)
}

// --- select ---

// selectOp filters rows. The predicate is compiled once per query: the
// row form for per-tuple pushes, the batch form evaluating over column
// vectors into a selection bitset for columnar pushes.
type selectOp struct {
	pred  predFn
	batch batchPredFn
	out   sink
	outB  batchSink
}

func newSelectOp(pred Expr, out sink) *selectOp {
	return &selectOp{
		pred:  compilePred(pred),
		batch: compileBatchPred(pred),
		out:   out,
		outB:  asBatchSink(out),
	}
}

func (s *selectOp) push(ts []Tup) {
	kept := ts[:0:len(ts)]
	for _, t := range ts {
		if s.pred(t.Row) {
			kept = append(kept, t)
		}
	}
	if len(kept) > 0 {
		s.out.push(kept)
	}
}

func (s *selectOp) pushCols(cb *colBatch) {
	sel := NewBitset(cb.cols.N)
	s.batch(&cb.cols, sel)
	if n := sel.Count(); n == 0 {
		return
	} else if n < cb.cols.N {
		cb.cols.CompactWords(sel)
	}
	forwardBatch(s.out, s.outB, cb)
}

func (s *selectOp) eos(phase uint32) { s.out.eos(phase) }

// --- project ---

type projectOp struct {
	cols []int
	out  sink
	outB batchSink
}

func (p *projectOp) push(ts []Tup) {
	for i := range ts {
		ts[i].Row = ts[i].Row.Project(p.cols)
	}
	p.out.push(ts)
}

// pushCols projects by rearranging column headers: O(arity), not O(rows).
func (p *projectOp) pushCols(cb *colBatch) {
	cb.cols.Project(p.cols)
	forwardBatch(p.out, p.outB, cb)
}

func (p *projectOp) eos(phase uint32) { p.out.eos(phase) }

// --- compute-function ---

// computeOp evaluates compiled scalar expressions per row. It is not
// batch-aware (expression results may change type row to row, which would
// fracture column vectors); upstream batches materialize at its input
// edge and the compiled closures keep the per-row cost low.
type computeOp struct {
	fns []evalFn
	out sink
}

func (c *computeOp) push(ts []Tup) {
	for i := range ts {
		row := make(tuple.Row, len(c.fns))
		for j, f := range c.fns {
			row[j] = f(ts[i].Row)
		}
		ts[i].Row = row
	}
	c.out.push(ts)
}

func (c *computeOp) eos(phase uint32) { c.out.eos(phase) }

// --- pipelined (symmetric) hash join ---
//
// Both inputs stream in concurrently; each side inserts into its own hash
// table and probes the other's, so results are produced as soon as both
// matching tuples have arrived — the pipelined hash join of Table I [17].
// All inserted tuples are retained until query completion for recovery.

type joinOp struct {
	// curPhase reports the executor's current phase; stateful operators
	// must ignore end-of-stream signals from superseded waves (a stale
	// completion decided just before a recovery landed), or they would
	// close before the recovery wave's recomputed data arrives.
	curPhase func() uint32

	mu        sync.Mutex
	leftKeys  []int
	rightKeys []int
	left      map[string][]Tup
	right     map[string][]Tup
	leftEOS   bool
	rightEOS  bool
	eosPhase  uint32
	finished  bool
	out       sink
}

func newJoinOp(leftKeys, rightKeys []int, curPhase func() uint32, out sink) *joinOp {
	return &joinOp{
		curPhase:  curPhase,
		leftKeys:  leftKeys,
		rightKeys: rightKeys,
		left:      make(map[string][]Tup),
		right:     make(map[string][]Tup),
		out:       out,
	}
}

// joinKey encodes the join-key column values of a row.
func joinKey(row tuple.Row, cols []int) string {
	return string(tuple.EncodeKey(row, cols))
}

// joinSide adapts one input of the join to the sink interface.
type joinSide struct {
	j    *joinOp
	left bool
}

func (s joinSide) push(ts []Tup)    { s.j.pushSide(ts, s.left) }
func (s joinSide) eos(phase uint32) { s.j.eosSide(s.left, phase) }

func (j *joinOp) pushSide(ts []Tup, left bool) {
	var outBatch []Tup
	j.mu.Lock()
	for _, t := range ts {
		var mine, theirs map[string][]Tup
		var myKeys, theirKeys []int
		if left {
			mine, theirs = j.left, j.right
			myKeys = j.leftKeys
		} else {
			mine, theirs = j.right, j.left
			myKeys = j.rightKeys
		}
		_ = theirKeys
		k := joinKey(t.Row, myKeys)
		mine[k] = append(mine[k], t)
		for _, o := range theirs[k] {
			var lt, rt Tup
			if left {
				lt, rt = t, o
			} else {
				lt, rt = o, t
			}
			phase := lt.Phase
			if rt.Phase > phase {
				phase = rt.Phase
			}
			outBatch = append(outBatch, Tup{
				Row:   lt.Row.Concat(rt.Row),
				Prov:  lt.Prov.Union(rt.Prov),
				Phase: phase,
			})
		}
	}
	j.mu.Unlock()
	if len(outBatch) > 0 {
		j.out.push(outBatch)
	}
}

func (j *joinOp) eosSide(left bool, phase uint32) {
	j.mu.Lock()
	if j.curPhase != nil && phase < j.curPhase() {
		// Stale wave: the recovery that superseded it reset this join and
		// will drive a fresh end-of-stream for the current wave.
		j.mu.Unlock()
		return
	}
	if left {
		j.leftEOS = true
	} else {
		j.rightEOS = true
	}
	if phase > j.eosPhase {
		j.eosPhase = phase
	}
	fire := j.leftEOS && j.rightEOS && !j.finished
	outPhase := j.eosPhase
	if fire {
		j.finished = true
	}
	j.mu.Unlock()
	if fire {
		j.out.eos(outPhase)
	}
}

// recover purges tainted tuples from both build tables and reopens the
// operator so recomputed tuples can probe the retained clean state.
func (j *joinOp) recover(failed Prov) {
	j.mu.Lock()
	purge := func(table map[string][]Tup) {
		for k, ts := range table {
			kept := ts[:0]
			for _, t := range ts {
				if !t.Prov.Intersects(failed) {
					kept = append(kept, t)
				}
			}
			if len(kept) == 0 {
				delete(table, k)
			} else {
				table[k] = kept
			}
		}
	}
	purge(j.left)
	purge(j.right)
	j.leftEOS, j.rightEOS, j.finished = false, false, false
	j.mu.Unlock()
}

// --- aggregate ---
//
// Blocking hash aggregation. Each group is partitioned into sub-groups
// keyed by (provenance set, phase): the effects of all tuples from each
// possible set of contributing nodes are summarized separately, so that on
// failure exactly the tainted sub-groups can be dropped, and recomputed
// (new-phase) contributions are emitted without duplicating already-emitted
// clean sub-groups (§V-D). The sub-group count depends on node-set
// combinations, not input size.

type aggState struct {
	counts []int64   // per spec: tuples seen (for COUNT and AVG)
	sums   []float64 // per spec: running sum (SUM, AVG)
	isums  []int64   // per spec: integer running sum
	allInt []bool    // per spec: all inputs integral so far
	mins   []tuple.Value
	maxs   []tuple.Value
	n      int64 // tuples in this sub-group
}

type aggSubgroup struct {
	prov    Prov
	phase   uint32
	emitted bool // partial mode: already included in a shipped delta row
	st      *aggState
}

type aggGroup struct {
	groupVals tuple.Row
	subs      map[string]*aggSubgroup
}

type aggOp struct {
	// curPhase: see joinOp — stale-wave end-of-stream must not trigger an
	// emission, or post-purge remainders would ship as if they were the
	// full groups and later merged re-emissions would double-count.
	curPhase func() uint32

	mu        sync.Mutex
	groupCols []int
	specs     []AggSpec
	mode      AggMode
	trackProv bool
	groups    map[string]*aggGroup
	dirty     map[string]bool // groups changed since the last emission
	emitted   bool            // at least one end-of-stream emission happened
	finished  bool
	out       sink
}

func newAggOp(groupCols []int, specs []AggSpec, mode AggMode, trackProv bool, curPhase func() uint32, out sink) *aggOp {
	return &aggOp{
		curPhase:  curPhase,
		groupCols: groupCols,
		specs:     specs,
		mode:      mode,
		trackProv: trackProv,
		groups:    make(map[string]*aggGroup),
		dirty:     make(map[string]bool),
		out:       out,
	}
}

func newAggState(n int) *aggState {
	return &aggState{
		counts: make([]int64, n),
		sums:   make([]float64, n),
		isums:  make([]int64, n),
		allInt: make([]bool, n),
		mins:   make([]tuple.Value, n),
		maxs:   make([]tuple.Value, n),
	}
}

func (a *aggOp) push(ts []Tup) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, t := range ts {
		gk := string(tuple.EncodeKey(t.Row, a.groupCols))
		g := a.groups[gk]
		if g == nil {
			g = &aggGroup{groupVals: t.Row.Project(a.groupCols), subs: map[string]*aggSubgroup{}}
			a.groups[gk] = g
		}
		if a.emitted {
			// The group's previous emission is being (or has been) purged
			// downstream; re-emit it at the next end-of-stream.
			a.dirty[gk] = true
		}
		var sk string
		if a.trackProv {
			var pb [4]byte
			binary.BigEndian.PutUint32(pb[:], t.Phase)
			sk = t.Prov.Key() + string(pb[:])
		}
		sub := g.subs[sk]
		if sub == nil {
			sub = &aggSubgroup{phase: t.Phase, st: newAggState(len(a.specs))}
			for i := range a.specs {
				sub.st.allInt[i] = true
			}
			if a.trackProv {
				sub.prov = t.Prov.Clone()
			}
			g.subs[sk] = sub
		} else if a.trackProv {
			sub.prov.UnionInto(t.Prov)
		}
		st := sub.st
		st.n++
		for i, spec := range a.specs {
			var v tuple.Value
			if spec.Col >= 0 {
				v = t.Row[spec.Col]
			}
			switch spec.Func {
			case AggCount:
				st.counts[i]++
			case AggSum, AggAvg:
				st.counts[i]++
				if v.T == tuple.Int64 {
					st.isums[i] += v.I64
				} else {
					st.allInt[i] = false
				}
				st.sums[i] += v.AsFloat()
			case AggMin:
				if st.counts[i] == 0 || v.Cmp(st.mins[i]) < 0 {
					st.mins[i] = v
				}
				st.counts[i]++
			case AggMax:
				if st.counts[i] == 0 || v.Cmp(st.maxs[i]) > 0 {
					st.maxs[i] = v
				}
				st.counts[i]++
			}
		}
	}
}

// sumValue returns the accumulated sum with integer preservation.
func (st *aggState) sumValue(i int) tuple.Value {
	if st.allInt[i] {
		return tuple.I(st.isums[i])
	}
	return tuple.F(st.sums[i])
}

// mergeState folds src into dst, spec by spec.
func mergeState(dst, src *aggState, specs []AggSpec) {
	dst.n += src.n
	for i, spec := range specs {
		switch spec.Func {
		case AggCount:
			dst.counts[i] += src.counts[i]
		case AggSum, AggAvg:
			dst.isums[i] += src.isums[i]
			dst.allInt[i] = dst.allInt[i] && src.allInt[i]
			dst.sums[i] += src.sums[i]
			dst.counts[i] += src.counts[i]
		case AggMin:
			if src.counts[i] > 0 && (dst.counts[i] == 0 || src.mins[i].Cmp(dst.mins[i]) < 0) {
				dst.mins[i] = src.mins[i]
			}
			dst.counts[i] += src.counts[i]
		case AggMax:
			if src.counts[i] > 0 && (dst.counts[i] == 0 || src.maxs[i].Cmp(dst.maxs[i]) > 0) {
				dst.maxs[i] = src.maxs[i]
			}
			dst.counts[i] += src.counts[i]
		}
	}
}

// emitMerged renders one group as a single output row by merging all of its
// current sub-groups. Its provenance is the union of the sub-groups', so
// downstream purges drop the whole row when any contributor fails, and the
// next emission (of the repaired merge) replaces it without duplication.
func (a *aggOp) emitMerged(g *aggGroup) Tup {
	st := newAggState(len(a.specs))
	for i := range a.specs {
		st.allInt[i] = true
	}
	var prov Prov
	var phase uint32
	for _, sub := range g.subs {
		mergeState(st, sub.st, a.specs)
		if a.trackProv && sub.prov != nil {
			if prov == nil {
				prov = sub.prov.Clone()
			} else {
				prov.UnionInto(sub.prov)
			}
		}
		if sub.phase > phase {
			phase = sub.phase
		}
	}
	row := g.groupVals.Clone()
	for i, spec := range a.specs {
		switch spec.Func {
		case AggCount:
			row = append(row, tuple.I(st.counts[i]))
		case AggSum:
			row = append(row, st.sumValue(i))
		case AggMin:
			row = append(row, st.mins[i])
		case AggMax:
			row = append(row, st.maxs[i])
		case AggAvg:
			if a.mode == AggComplete {
				if st.counts[i] == 0 {
					row = append(row, tuple.F(0))
				} else {
					row = append(row, tuple.F(st.sums[i]/float64(st.counts[i])))
				}
			} else {
				// Partial layout: sum then count.
				row = append(row, tuple.F(st.sums[i]), tuple.I(st.counts[i]))
			}
		}
	}
	return Tup{Row: row, Prov: prov, Phase: phase}
}

func (a *aggOp) eos(phase uint32) {
	a.mu.Lock()
	if a.curPhase != nil && phase < a.curPhase() {
		// Stale wave (see curPhase): forward the marker for bookkeeping
		// but emit nothing; the current wave's end-of-stream will emit.
		a.mu.Unlock()
		a.out.eos(phase)
		return
	}
	if a.finished {
		a.mu.Unlock()
		return
	}
	a.finished = true
	var out []Tup
	if a.mode == AggPartial {
		// Partial states are merged downstream (FinalAgg at the initiator),
		// so each wave ships a DELTA: the merge of the sub-groups that have
		// not been shipped yet. Deltas compose with retained earlier rows,
		// which is essential here: with no exchange upstream, a live node's
		// clean earlier emission survives downstream purges and must not be
		// re-included. Tainted emitted sub-groups were dropped by recover()
		// and their downstream rows purged by provenance, so nothing is
		// lost or double-counted.
		for _, g := range a.groups {
			out = append(out, a.emitDeltas(g)...)
		}
	} else if !a.emitted {
		// Complete mode, first completion: emit every group.
		for _, g := range a.groups {
			out = append(out, a.emitMerged(g))
		}
	} else {
		// Complete mode, post-recovery completion: re-emit only the groups
		// whose previous emission was invalidated (their sub-groups
		// changed). The exchange partitioned on the grouping key guarantees
		// a dirty group's earlier emission carried a tainted contributor
		// and was purged downstream, so the full merge replaces it exactly.
		for gk := range a.dirty {
			if g := a.groups[gk]; g != nil && len(g.subs) > 0 {
				out = append(out, a.emitMerged(g))
			}
		}
	}
	a.emitted = true
	a.dirty = make(map[string]bool)
	a.mu.Unlock()
	if len(out) > 0 {
		a.out.push(out)
	}
	a.out.eos(phase)
}

// emitDeltas renders the group's not-yet-shipped sub-groups as partial
// rows, marking them shipped. One row is emitted per distinct provenance
// set — never merging sub-groups with different contributors into one row.
// This granularity is load-bearing: a downstream purge drops whole rows by
// provenance, so a row must contain either only-tainted or only-clean
// state. Merging a clean sub-group with a tainted one would let the purge
// silently discard clean state that is marked shipped and never resent
// (the paper's per-contributing-node-set sub-group shipping, §V-D).
func (a *aggOp) emitDeltas(g *aggGroup) []Tup {
	type acc struct {
		st    *aggState
		prov  Prov
		phase uint32
	}
	byProv := make(map[string]*acc)
	var order []string
	for _, sub := range g.subs {
		if sub.emitted {
			continue
		}
		sub.emitted = true
		pk := sub.prov.Key()
		a2 := byProv[pk]
		if a2 == nil {
			a2 = &acc{st: newAggState(len(a.specs))}
			for i := range a.specs {
				a2.st.allInt[i] = true
			}
			if a.trackProv && sub.prov != nil {
				a2.prov = sub.prov.Clone()
			}
			byProv[pk] = a2
			order = append(order, pk)
		}
		mergeState(a2.st, sub.st, a.specs)
		if sub.phase > a2.phase {
			a2.phase = sub.phase
		}
	}
	out := make([]Tup, 0, len(byProv))
	for _, pk := range order {
		a2 := byProv[pk]
		st := a2.st
		row := g.groupVals.Clone()
		for i, spec := range a.specs {
			switch spec.Func {
			case AggCount:
				row = append(row, tuple.I(st.counts[i]))
			case AggSum:
				row = append(row, st.sumValue(i))
			case AggMin:
				row = append(row, st.mins[i])
			case AggMax:
				row = append(row, st.maxs[i])
			case AggAvg:
				// Partial layout: sum then count.
				row = append(row, tuple.F(st.sums[i]), tuple.I(st.counts[i]))
			}
		}
		out = append(out, Tup{Row: row, Prov: a2.prov, Phase: a2.phase})
	}
	return out
}

// recover drops tainted sub-groups, marking their groups for re-emission;
// if the aggregate had already emitted, it reopens for the recovery wave.
func (a *aggOp) recover(failed Prov) {
	a.mu.Lock()
	for gk, g := range a.groups {
		for sk, sub := range g.subs {
			if sub.prov.Intersects(failed) {
				delete(g.subs, sk)
				a.dirty[gk] = true
			}
		}
		if len(g.subs) == 0 {
			delete(a.groups, gk)
		}
	}
	a.finished = false
	a.mu.Unlock()
}

// mergeFinal (the initiator-side FinalAgg merge) lives in final.go as
// finalAggAcc, shared by the row and columnar final pipelines.
