package engine

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"orchestra/internal/ring"
	"orchestra/internal/tuple"
)

// Differential suite for streamed execution: every pushdown class
// (stream / top-k / partial-agg) must produce the same answer as the
// collected path. The collected reference is the engine itself run with
// Provenance on, which forces shipCollect for every plan shape (the same
// rule incremental recovery relies on).
//
// Determinism caveats pinned here:
//   - A limit without a sort keeps *some* N rows, chosen by arrival
//     order — both paths are compared by count and containment, not
//     element-wise.
//   - NaN sort keys break strict weak ordering (Value.Cmp treats NaN as
//     equal to everything), so the selected top K is algorithm-dependent
//     — count and containment again.
//   - Float SUM/AVG stay order-independent because the generator only
//     emits exactly-representable multiples of 0.25 (plus NaN/Inf, whose
//     propagation is order-insensitive for addition).

// schemaFD is the NaN-bearing differential schema: unique int key,
// low-cardinality int group, adversarial float value.
func schemaFD() *tuple.Schema {
	return tuple.MustSchema("FD", []tuple.Column{
		{Name: "k", Type: tuple.Int64},
		{Name: "g", Type: tuple.Int64},
		{Name: "v", Type: tuple.Float64},
	}, "k")
}

func genFD(n int, rng *rand.Rand) []tuple.Row {
	specials := []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, math.Copysign(0, -1)}
	rows := make([]tuple.Row, n)
	for i := range rows {
		v := float64(rng.Intn(4001)-2000) * 0.25
		if rng.Intn(8) == 0 {
			v = specials[rng.Intn(len(specials))]
		}
		rows[i] = tuple.Row{tuple.I(int64(i)), tuple.I(int64(rng.Intn(8))), tuple.F(v)}
	}
	return rows
}

// canonValueKey is valueKey with NaN payloads and zero signs collapsed:
// aggregate arithmetic may produce a different NaN bit pattern (or -0)
// than the one that went in, and both are the same answer.
func canonValueKey(v tuple.Value) string {
	if v.T == tuple.Float64 {
		if math.IsNaN(v.F64) {
			return "fNaN"
		}
		if v.F64 == 0 {
			return "f0"
		}
	}
	return valueKey(v)
}

func canonRowKey(r tuple.Row) string {
	s := ""
	for _, v := range r {
		s += canonValueKey(v) + "|"
	}
	return s
}

func multiset(rows []tuple.Row) map[string]int {
	m := make(map[string]int, len(rows))
	for _, r := range rows {
		m[canonRowKey(r)]++
	}
	return m
}

func multisetEqual(a, b []tuple.Row) bool {
	if len(a) != len(b) {
		return false
	}
	ma, mb := multiset(a), multiset(b)
	for k, n := range ma {
		if mb[k] != n {
			return false
		}
	}
	return true
}

// multisetSubset reports whether every row of sub (with multiplicity)
// appears in super.
func multisetSubset(sub, super []tuple.Row) bool {
	ms := multiset(super)
	for _, r := range sub {
		k := canonRowKey(r)
		if ms[k] == 0 {
			return false
		}
		ms[k]--
	}
	return true
}

// captureSink is a StreamSink that deep-copies every chunk (the engine's
// emission contract only lends the rows for the duration of the call).
type captureSink struct {
	mu    sync.Mutex
	rows  []tuple.Row
	calls int
}

func (c *captureSink) add(rows []tuple.Row) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	for _, r := range rows {
		c.rows = append(c.rows, append(tuple.Row(nil), r...))
	}
	return nil
}

func (c *captureSink) StreamRows(rows []tuple.Row) error { return c.add(rows) }
func (c *captureSink) StreamCols(b *tuple.Batch) error   { return c.add(b.Rows()) }

func (c *captureSink) snapshot() (rows []tuple.Row, calls int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rows, c.calls
}

// diffSpecs is the aggregate set used by the partial-agg cases: MIN/MAX
// only on the int column (NaN makes float extrema order-dependent),
// SUM/AVG on the exactly-representable float column.
func diffSpecs() []AggSpec {
	return []AggSpec{
		{Func: AggCount, Col: -1},
		{Func: AggSum, Col: 2},
		{Func: AggMin, Col: 0},
		{Func: AggMax, Col: 0},
		{Func: AggAvg, Col: 2},
	}
}

// diffBase builds a fresh copy of one of the base (pre-final) plan
// shapes over FD — fresh because Finalize mutates the node tree.
func diffBase(base string) Node {
	scan := &ScanNode{Relation: "FD"}
	switch base {
	case "filter":
		return &SelectNode{Pred: B(OpLt, C(1), CI(5)), Child: scan}
	case "join":
		// FD ⋈ S on FD.g = S.y, rehashing both sides.
		return &JoinNode{
			LeftKeys:  []int{1},
			RightKeys: []int{0},
			Left:      &RehashNode{Keys: []int{1}, Child: scan},
			Right:     &RehashNode{Keys: []int{0}, Child: &ScanNode{Relation: "S"}},
		}
	default:
		return scan
	}
}

func TestStreamDiffRandomPlans(t *testing.T) {
	cases := []struct {
		name string
		cat  string // final-pipeline category
		base string
		mode shipMode
	}{
		{"stream/scan", "none", "scan", shipStream},
		{"stream/filter", "none", "filter", shipStream},
		{"stream/join", "none", "join", shipStream},
		{"stream/compute", "compute", "scan", shipStream},
		{"stream/limit", "limit", "filter", shipStream},
		{"topk/int-keys", "topk-int", "scan", shipTopK},
		{"topk/int-keys-filter", "topk-int", "filter", shipTopK},
		{"topk/nan-keys", "topk-nan", "scan", shipTopK},
		{"agg/scan", "agg", "scan", shipAggMerge},
		{"agg/filter", "agg", "filter", shipAggMerge},
		{"collect/sort-only", "sort", "scan", shipCollect},
	}
	for ci, tc := range cases {
		for _, nodes := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/n=%d", tc.name, nodes), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(1000*ci + nodes)))
				h := newHarness(t, nodes)
				h.create(schemaFD())
				h.publish("FD", genFD(300, rng))
				if tc.base == "join" {
					h.create(schemaS())
					h.publish("S", genS(60, rng))
				}

				mkPlan := func(final bool) *Plan {
					p := &Plan{Root: diffBase(tc.base)}
					if !final {
						return p
					}
					switch tc.cat {
					case "compute":
						p.Final = []FinalOp{&FinalCompute{Exprs: []Expr{
							C(0), C(1), B(OpAdd, C(0), C(1)),
						}}}
					case "limit":
						p.Final = []FinalOp{&FinalLimit{N: 37}}
					case "topk-int":
						p.Final = []FinalOp{
							&FinalSort{Keys: []SortKey{{Col: 1}, {Col: 0, Desc: true}}},
							&FinalLimit{N: 10},
						}
					case "topk-nan":
						p.Final = []FinalOp{
							&FinalSort{Keys: []SortKey{{Col: 2}, {Col: 0}}},
							&FinalLimit{N: 15},
						}
					case "agg":
						specs := diffSpecs()
						p.Root = &AggNode{
							GroupCols: []int{1},
							Aggs:      specs,
							Mode:      AggPartial,
							Child:     p.Root,
						}
						p.Final = []FinalOp{&FinalAgg{GroupCols: []int{0}, Aggs: offsetSpecs(specs)}}
					case "sort":
						p.Final = []FinalOp{&FinalSort{Keys: []SortKey{{Col: 1}, {Col: 0}}}}
					}
					return p
				}

				p := mkPlan(true)
				if got := planShipMode(p, Options{}); got != tc.mode {
					t.Fatalf("planShipMode = %s, want %s", got, tc.mode)
				}

				// Collected reference: provenance forces shipCollect for
				// every class, on a fresh copy of the plan.
				refRes, err := h.engines[0].Run(h.ctx(), mkPlan(true), Options{Provenance: true})
				if err != nil {
					t.Fatalf("reference run: %v", err)
				}
				ref := refRes.Rows

				sink := &captureSink{}
				res, err := h.engines[0].Run(h.ctx(), p, Options{Sink: sink})
				if err != nil {
					t.Fatalf("pushdown run: %v", err)
				}

				got := res.Rows
				if tc.mode == shipStream {
					if res.Rows != nil {
						t.Fatalf("streamed run returned collected rows (%d)", len(res.Rows))
					}
					captured, _ := sink.snapshot()
					if res.Streamed != int64(len(captured)) {
						t.Fatalf("Streamed = %d, sink saw %d", res.Streamed, len(captured))
					}
					got = captured
				} else {
					if captured, calls := sink.snapshot(); calls != 0 || len(captured) != 0 {
						t.Fatalf("%s run invoked the sink (%d calls)", tc.mode, calls)
					}
					if res.Streamed != 0 {
						t.Fatalf("%s run reported Streamed = %d", tc.mode, res.Streamed)
					}
				}

				switch tc.cat {
				case "limit", "topk-nan":
					// Nondeterministic selection: pin count and containment
					// in the full (no-final) answer.
					if len(got) != len(ref) {
						t.Fatalf("got %d rows, reference has %d", len(got), len(ref))
					}
					fullRes, err := h.engines[0].Run(h.ctx(), mkPlan(false), Options{Provenance: true})
					if err != nil {
						t.Fatalf("full run: %v", err)
					}
					if !multisetSubset(got, fullRes.Rows) {
						t.Fatalf("pushdown emitted rows outside the full answer")
					}
				case "topk-int", "sort":
					// Unique sort keys: order is pinned exactly.
					gk, rk := rowKeys(got), rowKeys(ref)
					if len(gk) != len(rk) {
						t.Fatalf("got %d rows, reference has %d", len(gk), len(rk))
					}
					for i := range gk {
						if gk[i] != rk[i] {
							t.Fatalf("row %d: got %s, want %s", i, gk[i], rk[i])
						}
					}
				default:
					if !multisetEqual(got, ref) {
						t.Fatalf("streamed ≠ collected: %s", diffSummary(got, ref))
					}
				}
			})
		}
	}
}

// Top-K pushdown must bound shipping: each fragment ships at most K
// rows, so the initiator receives no more than members×K.
func TestStreamTopKShipsAtMostKPerFragment(t *testing.T) {
	const k = 10
	h := newHarness(t, 3)
	h.create(schemaFD())
	h.publish("FD", genFD(3000, rand.New(rand.NewSource(42))))

	p := &Plan{
		Root: &ScanNode{Relation: "FD"},
		Final: []FinalOp{
			&FinalSort{Keys: []SortKey{{Col: 1}, {Col: 0}}},
			&FinalLimit{N: k},
		},
	}
	res, err := h.engines[0].Run(h.ctx(), p, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Rows) != k {
		t.Fatalf("got %d rows, want %d", len(res.Rows), k)
	}
	members := uint64(len(h.local.Nodes()))
	if shipped := res.TotalStats().Shipped; shipped > members*k {
		t.Fatalf("shipped %d tuples, top-K bound is %d", shipped, members*k)
	}
	ref, err := h.engines[0].Run(h.ctx(), &Plan{
		Root: &ScanNode{Relation: "FD"},
		Final: []FinalOp{
			&FinalSort{Keys: []SortKey{{Col: 1}, {Col: 0}}},
			&FinalLimit{N: k},
		},
	}, Options{Provenance: true})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	gk, rk := rowKeys(res.Rows), rowKeys(ref.Rows)
	for i := range gk {
		if gk[i] != rk[i] {
			t.Fatalf("row %d: got %s, want %s", i, gk[i], rk[i])
		}
	}
}

// A streamed scan must not accumulate the whole answer at the initiator:
// the drainer keeps the buffered high-water mark well below the total.
func TestStreamPeakBounded(t *testing.T) {
	const total = 10000
	h := newHarness(t, 4)
	h.create(schemaFD())
	h.publish("FD", genFD(total, rand.New(rand.NewSource(7))))

	sink := &captureSink{}
	res, err := h.engines[0].Run(h.ctx(), &Plan{Root: &ScanNode{Relation: "FD"}},
		Options{Sink: sink})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	captured, calls := sink.snapshot()
	if len(captured) != total || res.Streamed != total {
		t.Fatalf("streamed %d rows (sink saw %d), want %d", res.Streamed, len(captured), total)
	}
	if calls < 2 {
		t.Fatalf("answer arrived in %d chunk(s); streaming should deliver incrementally", calls)
	}
	if res.StreamPeak <= 0 || res.StreamPeak > total/2 {
		t.Fatalf("StreamPeak = %d, want within (0, %d]", res.StreamPeak, total/2)
	}
}

// faultSink kills a node the first time the initiator hands it a chunk —
// i.e. strictly after result rows have left the engine — then slows
// later chunks down so the failure detector outruns completion.
type faultSink struct {
	h      *harness
	victim ring.NodeID
	once   sync.Once
	chunks atomic.Int64
	fired  atomic.Bool
}

func (f *faultSink) note() error {
	if f.chunks.Add(1) > 1 {
		time.Sleep(5 * time.Millisecond)
	}
	f.once.Do(func() {
		f.h.local.Kill(f.victim)
		f.fired.Store(true)
	})
	return nil
}

func (f *faultSink) StreamRows([]tuple.Row) error  { return f.note() }
func (f *faultSink) StreamCols(*tuple.Batch) error { return f.note() }

// A node failure after rows have streamed is terminal: the engine must
// surface StreamAbortedError (never FailureError, which the restart loop
// would swallow and re-run — duplicating the emitted prefix) and never
// silently return a short answer.
func TestStreamMidExecutionFailureAborts(t *testing.T) {
	for attempt := 0; attempt < 5; attempt++ {
		h := newHarness(t, 6)
		h.create(schemaR())
		h.create(schemaS())
		rng := rand.New(rand.NewSource(int64(100 + attempt)))
		h.publish("R", genR(8000, rng))
		h.publish("S", genS(1500, rng))

		p := failurePlan()
		sink := &faultSink{h: h, victim: h.local.Node(3).ID()} // never node 0, the initiator
		// RecoverRestart would normally retry FailureError; a streamed
		// prefix must make the failure terminal anyway.
		_, err := h.engines[0].Run(h.ctx(), p, Options{Recovery: RecoverRestart, Sink: sink})
		if err == nil {
			// The victim finished its fragments before the kill landed —
			// a legal schedule, but not the one under test. Try again.
			continue
		}
		var sa *StreamAbortedError
		if !errors.As(err, &sa) {
			t.Fatalf("got %T (%v), want *StreamAbortedError", err, err)
		}
		if sa.Streamed <= 0 {
			t.Fatalf("StreamAbortedError.Streamed = %d, want > 0", sa.Streamed)
		}
		var fe *FailureError
		if errors.As(err, &fe) {
			t.Fatalf("StreamAbortedError matched FailureError — restart loop would retry it")
		}
		return
	}
	t.Fatal("victim outran the kill in every attempt; no mid-stream failure was observed")
}

// Incremental recovery keeps the collected path: a sink attached to a
// provenance-mode run is ignored, and a mid-query failure still recovers
// to the exact answer instead of aborting.
func TestStreamSinkIgnoredUnderIncrementalRecovery(t *testing.T) {
	h := newHarness(t, 6)
	h.create(schemaR())
	h.create(schemaS())
	rng := rand.New(rand.NewSource(21))
	h.publish("R", genR(600, rng))
	h.publish("S", genS(150, rng))

	p := failurePlan()
	if StreamEligible(p, Options{Recovery: RecoverIncremental}) {
		t.Fatal("incremental recovery must not be stream-eligible")
	}
	victim := h.local.Node(3).ID()
	go func() {
		time.Sleep(2 * time.Millisecond)
		h.local.Kill(victim)
	}()
	sink := &captureSink{}
	res, err := h.engines[0].Run(h.ctx(), p, Options{Recovery: RecoverIncremental, Sink: sink})
	if err != nil {
		t.Fatalf("Run with recovery: %v", err)
	}
	if _, calls := sink.snapshot(); calls != 0 {
		t.Fatalf("sink invoked %d times under incremental recovery", calls)
	}
	if res.Streamed != 0 {
		t.Fatalf("Streamed = %d under incremental recovery", res.Streamed)
	}
	h.check(p, res)
}
