package engine

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"orchestra/internal/tuple"
)

// randValue draws a value of the given type; invalid (zero) values are
// mixed in by randRow, not here.
func randValue(rng *rand.Rand, t tuple.Type) tuple.Value {
	switch t {
	case tuple.Int64:
		return tuple.I(rng.Int63n(7) - 3)
	case tuple.Float64:
		switch rng.Intn(8) {
		case 0:
			return tuple.F(math.NaN())
		case 1:
			return tuple.F(math.Inf(1))
		case 2:
			return tuple.F(math.Copysign(0, -1))
		default:
			return tuple.F(float64(rng.Intn(7)-3) / 2)
		}
	default:
		return tuple.S(string(rune('a' + rng.Intn(4))))
	}
}

func randType(rng *rand.Rand) tuple.Type {
	return tuple.Type(rng.Intn(3) + 1)
}

// randExpr builds a random expression tree over arity columns.
func randExpr(rng *rand.Rand, arity, depth int) Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		if rng.Intn(2) == 0 {
			return Col{Idx: rng.Intn(arity)}
		}
		if rng.Intn(8) == 0 {
			return Const{} // invalid literal: Eval must still agree
		}
		return Const{Val: randValue(rng, randType(rng))}
	}
	if rng.Intn(6) == 0 {
		return Not{E: randExpr(rng, arity, depth-1)}
	}
	ops := []OpCode{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpAdd, OpSub, OpMul, OpDiv, OpAnd, OpOr, OpConcat}
	return Bin{
		Op: ops[rng.Intn(len(ops))],
		L:  randExpr(rng, arity, depth-1),
		R:  randExpr(rng, arity, depth-1),
	}
}

func valueEqual(a, b tuple.Value) bool {
	if a.T != b.T {
		return false
	}
	if a.T == tuple.Float64 {
		if math.IsNaN(a.F64) && math.IsNaN(b.F64) {
			return true
		}
	}
	return a == b
}

// TestCompiledScalarMatchesInterpreted is the compiled-vs-interpreted
// property test over random trees and random row contents, including
// invalid (zero) values, NaN/Inf floats, and every operator.
func TestCompiledScalarMatchesInterpreted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const arity = 4
	for trial := 0; trial < 5000; trial++ {
		e := randExpr(rng, arity, 3)
		cf := compileExpr(e)
		pf := compilePred(e)
		row := make(tuple.Row, arity)
		for i := range row {
			if rng.Intn(10) == 0 {
				row[i] = tuple.Value{} // invalid value on the row
			} else {
				row[i] = randValue(rng, randType(rng))
			}
		}
		want := e.Eval(row)
		if got := cf(row); !valueEqual(got, want) {
			t.Fatalf("trial %d: %s over %v:\n  compiled %v\n  interpreted %v", trial, e, row, got, want)
		}
		if got := pf(row); got != truth(want) {
			t.Fatalf("trial %d: pred %s over %v: compiled %v, interpreted %v", trial, e, row, got, truth(want))
		}
	}
}

// TestCompiledBatchMatchesInterpreted checks the batch/bitset evaluator
// against interpreted Eval over column-typed batches with randomized type
// mixes (batches are type-homogeneous per column, as the scan produces).
func TestCompiledBatchMatchesInterpreted(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 2000; trial++ {
		arity := rng.Intn(3) + 1
		types := make([]tuple.Type, arity)
		for i := range types {
			types[i] = randType(rng)
		}
		n := rng.Intn(130) // cross the 64-bit word boundary sometimes
		var b tuple.Batch
		b.ResetTypes(types)
		rows := make([]tuple.Row, n)
		for r := 0; r < n; r++ {
			row := make(tuple.Row, arity)
			for c := range row {
				row[c] = randValue(rng, types[c])
			}
			rows[r] = row
			if err := b.AppendRow(row); err != nil {
				t.Fatal(err)
			}
		}
		e := randExpr(rng, arity, 3)
		bf := compileBatchPred(e)
		sel := NewBitset(n)
		bf(&b, sel)
		for r := 0; r < n; r++ {
			want := truth(e.Eval(rows[r]))
			if got := sel.Has(r); got != want {
				t.Fatalf("trial %d row %d: %s over %v: batch %v, interpreted %v",
					trial, r, e, rows[r], got, want)
			}
		}
	}
}

// TestCompiledCmpColConstShapes pins the vectorized column-vs-literal
// fast paths against the interpreter for every comparison operator and
// type pairing, including the NaN-compares-equal quirk of Value.Cmp.
func TestCompiledCmpColConstShapes(t *testing.T) {
	colVals := map[tuple.Type][]tuple.Value{
		tuple.Int64:   {tuple.I(-2), tuple.I(0), tuple.I(3)},
		tuple.Float64: {tuple.F(-1.5), tuple.F(0), tuple.F(2.5), tuple.F(math.NaN())},
		tuple.String:  {tuple.S(""), tuple.S("a"), tuple.S("b")},
	}
	consts := []tuple.Value{
		tuple.I(0), tuple.I(3), tuple.F(0), tuple.F(2.5), tuple.F(math.NaN()),
		tuple.S("a"), {},
	}
	ops := []OpCode{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	for colType, vals := range colVals {
		for _, cv := range consts {
			for _, op := range ops {
				e := Bin{Op: op, L: Col{Idx: 0}, R: Const{Val: cv}}
				var b tuple.Batch
				b.ResetTypes([]tuple.Type{colType})
				for _, v := range vals {
					if err := b.AppendRow(tuple.Row{v}); err != nil {
						t.Fatal(err)
					}
				}
				bf := compileBatchPred(e)
				pf := compilePred(e)
				sel := NewBitset(b.N)
				bf(&b, sel)
				for r, v := range vals {
					row := tuple.Row{v}
					want := truth(e.Eval(row))
					if got := pf(row); got != want {
						t.Errorf("scalar %v %s %v: got %v want %v", v, op, cv, got, want)
					}
					if got := sel.Has(r); got != want {
						t.Errorf("batch %v %s %v: got %v want %v", v, op, cv, got, want)
					}
				}
			}
		}
	}
}

func TestBitsetOps(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 130} {
		s := NewBitset(n)
		s.SetFirst(n)
		if got := s.Count(); got != n {
			t.Fatalf("SetFirst(%d).Count() = %d", n, got)
		}
		s.FlipFirst(n)
		if got := s.Count(); got != 0 {
			t.Fatalf("FlipFirst(%d) left %d bits", n, got)
		}
	}
	s := NewBitset(100)
	s.Set(3)
	s.Set(77)
	o := NewBitset(100)
	o.Set(77)
	o.Set(99)
	and := append(Bitset(nil), s...)
	and.AndWith(o)
	if and.Count() != 1 || !and.Has(77) {
		t.Fatalf("AndWith wrong: %v", and)
	}
	s.OrWith(o)
	if s.Count() != 3 || !s.Has(3) || !s.Has(77) || !s.Has(99) {
		t.Fatalf("OrWith wrong: %v", s)
	}
}

// FuzzCompiledPred cross-checks compiled vs interpreted evaluation on
// fuzz-derived expression shapes and row contents.
func FuzzCompiledPred(f *testing.F) {
	f.Add(int64(1), int64(2))
	f.Add(int64(-9), int64(0))
	f.Fuzz(func(t *testing.T, seed, vseed int64) {
		rng := rand.New(rand.NewSource(seed))
		e := randExpr(rng, 3, 4)
		vrng := rand.New(rand.NewSource(vseed))
		row := tuple.Row{
			randValue(vrng, randType(vrng)),
			randValue(vrng, randType(vrng)),
			randValue(vrng, randType(vrng)),
		}
		want := e.Eval(row)
		if got := compileExpr(e)(row); !valueEqual(got, want) {
			t.Fatalf("%s over %v: compiled %v, interpreted %v", e, row, got, want)
		}
	})
}

var benchSink bool

// BenchmarkPredicate compares interpreted, compiled-scalar, and batch
// predicate evaluation on the reference filter shape.
func BenchmarkPredicate(b *testing.B) {
	pred := B(OpAnd, B(OpGe, C(2), CI(1000)), B(OpLt, C(2), CI(4000)))
	rows := make([]tuple.Row, 1024)
	var batch tuple.Batch
	batch.ResetTypes([]tuple.Type{tuple.String, tuple.Int64, tuple.Int64})
	for i := range rows {
		rows[i] = tuple.Row{tuple.S(fmt.Sprintf("k%06d", i)), tuple.I(int64(i % 17)), tuple.I(int64(i * 5))}
		if err := batch.AppendRow(rows[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("Interpreted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink = truth(pred.Eval(rows[i%len(rows)]))
		}
	})
	b.Run("CompiledScalar", func(b *testing.B) {
		pf := compilePred(pred)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchSink = pf(rows[i%len(rows)])
		}
	})
	b.Run("CompiledBatch", func(b *testing.B) {
		bf := compileBatchPred(pred)
		b.ResetTimer()
		for i := 0; i < b.N; i += batch.N {
			sel := NewBitset(batch.N)
			bf(&batch, sel)
			benchSink = sel.Has(0)
		}
	})
}
