package engine

import (
	"fmt"
	"sort"
	"strings"

	"orchestra/internal/tuple"
)

// Initiator-side final processing (§V-B: "All data is ultimately collected
// at the query initiator node, which may do final processing, such as the
// last stage of aggregation, or a final sort"). Two forms exist: the row
// pipeline (provenance mode and mixed collections) and the columnar
// pipeline over the batch the ship consumer accumulated — sort runs as an
// index permutation over the column vectors, limit is a truncation, and
// compute evaluates into fresh vectors. Aggregation (and a compute whose
// output types vary row to row) demotes to rows: its output is small and
// type-heterogeneous by nature.

// applyFinalOps runs the final pipeline over collected rows.
func applyFinalOps(ops []FinalOp, rows []tuple.Row) ([]tuple.Row, error) {
	for _, op := range ops {
		var err error
		rows, err = applyFinalOpRows(op, rows)
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// applyFinalOpRows applies one final operator in row form.
func applyFinalOpRows(op FinalOp, rows []tuple.Row) ([]tuple.Row, error) {
	switch f := op.(type) {
	case *FinalAgg:
		return mergeFinal(f.GroupCols, f.Aggs, rows), nil
	case *FinalSort:
		sortRows(rows, f.Keys)
		return rows, nil
	case *FinalCompute:
		fns := compileExprs(f.Exprs) // compiled once, applied per row
		// One backing slab for every output row instead of a per-row
		// allocation: the old make-per-row dominated compute-heavy finals.
		width := len(fns)
		slab := make(tuple.Row, len(rows)*width)
		for i, row := range rows {
			out := slab[i*width : (i+1)*width : (i+1)*width]
			for j, fn := range fns {
				out[j] = fn(row)
			}
			rows[i] = out
		}
		return rows, nil
	case *FinalLimit:
		if len(rows) > f.N {
			rows = rows[:f.N]
		}
		return rows, nil
	}
	return nil, fmt.Errorf("engine: unknown final op %T", op)
}

// applyFinalOpsCols runs the final pipeline over a columnar answer. The
// result is either a batch (still columnar) or rows (an op demoted the
// flow); exactly one return is non-nil for a non-empty answer.
func applyFinalOpsCols(ops []FinalOp, b *tuple.Batch) (*tuple.Batch, []tuple.Row, error) {
	var rows []tuple.Row
	demoted := false
	for _, op := range ops {
		if demoted {
			var err error
			rows, err = applyFinalOpRows(op, rows)
			if err != nil {
				return nil, nil, err
			}
			continue
		}
		switch f := op.(type) {
		case *FinalAgg:
			rows = mergeFinalCols(f.GroupCols, f.Aggs, b)
			demoted = true
		case *FinalSort:
			sortCols(b, f.Keys)
		case *FinalCompute:
			nb, ok := computeCols(f.Exprs, b)
			if ok {
				b = nb
				continue
			}
			// Heterogeneous output types: demote and re-apply in row form.
			var err error
			rows, err = applyFinalOpRows(op, b.Rows())
			if err != nil {
				return nil, nil, err
			}
			demoted = true
		case *FinalLimit:
			if b.N > f.N {
				b.Truncate(f.N)
			}
		default:
			return nil, nil, fmt.Errorf("engine: unknown final op %T", op)
		}
	}
	if demoted {
		return nil, rows, nil
	}
	return b, nil, nil
}

// sortRows orders rows by the sort keys (stable, so equal keys preserve
// arrival order for deterministic tests downstream of a prior sort).
func sortRows(rows []tuple.Row, keys []SortKey) {
	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range keys {
			c := rows[i][k.Col].Cmp(rows[j][k.Col])
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}

// sortCols stably orders the batch by the sort keys via an index
// permutation: the comparator reads the column vectors directly (the
// per-key type dispatch is hoisted out of the comparison loop), then each
// vector is gathered once by the final permutation. Ordering matches
// Value.Cmp exactly — including its NaN-compares-equal float quirk — and a
// batch column is type-homogeneous, so no cross-type compares arise.
func sortCols(b *tuple.Batch, keys []SortKey) {
	if b.N < 2 {
		return
	}
	cmps := make([]func(i, j int) int, len(keys))
	for ki, k := range keys {
		v := &b.Cols[k.Col]
		switch v.T {
		case tuple.Int64:
			xs := v.I64
			cmps[ki] = func(i, j int) int { return cmpI64(xs[i], xs[j]) }
		case tuple.Float64:
			xs := v.F64
			cmps[ki] = func(i, j int) int { return cmpF64(xs[i], xs[j]) }
		case tuple.String:
			xs := v.Str
			cmps[ki] = func(i, j int) int { return strings.Compare(xs[i], xs[j]) }
		default:
			cmps[ki] = func(i, j int) int { return 0 }
		}
	}
	perm := make([]int, b.N)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(i, j int) bool {
		a, bb := perm[i], perm[j]
		for ki := range keys {
			c := cmps[ki](a, bb)
			if c == 0 {
				continue
			}
			if keys[ki].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	for c := range b.Cols {
		v := &b.Cols[c]
		switch v.T {
		case tuple.Int64:
			out := make([]int64, b.N)
			for i, p := range perm {
				out[i] = v.I64[p]
			}
			v.I64 = out
		case tuple.Float64:
			out := make([]float64, b.N)
			for i, p := range perm {
				out[i] = v.F64[p]
			}
			v.F64 = out
		case tuple.String:
			out := make([]string, b.N)
			for i, p := range perm {
				out[i] = v.Str[p]
			}
			v.Str = out
		}
	}
}

func cmpI64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// cmpF64 mirrors Value.Cmp's float ordering, NaN-compares-equal included.
func cmpF64(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// computeCols evaluates compiled expressions over the batch into a fresh
// columnar batch, reading input rows through one reused scratch row.
// Output column types are fixed by the first row; expression results may
// legally vary type row to row, in which case it reports !ok and the
// caller demotes to the row form.
func computeCols(exprs []Expr, b *tuple.Batch) (*tuple.Batch, bool) {
	fns := compileExprs(exprs)
	out := &tuple.Batch{}
	if b.N == 0 {
		out.ResetTypes(nil)
		return out, true
	}
	var scratch tuple.Row
	scratch = b.Row(0, scratch)
	types := make([]tuple.Type, len(fns))
	first := make([]tuple.Value, len(fns))
	for j, fn := range fns {
		v := fn(scratch)
		if !v.IsValid() {
			return nil, false
		}
		types[j] = v.T
		first[j] = v
	}
	out.ResetTypes(types)
	out.Grow(b.N)
	if err := out.AppendRow(first); err != nil {
		return nil, false
	}
	for i := 1; i < b.N; i++ {
		scratch = b.Row(i, scratch)
		for j, fn := range fns {
			v := fn(scratch)
			if v.T != types[j] {
				return nil, false
			}
			w := &out.Cols[j]
			switch v.T {
			case tuple.Int64:
				w.I64 = append(w.I64, v.I64)
			case tuple.Float64:
				w.F64 = append(w.F64, v.F64)
			case tuple.String:
				w.Str = append(w.Str, v.Str)
			}
		}
		out.N++
	}
	return out, true
}

// mergeFinalCols merges shipped partial aggregate rows straight off the
// columnar collection, reading through one reused scratch row — no
// per-input-row allocation before the (small) merged output.
func mergeFinalCols(groupCols []int, specs []AggSpec, b *tuple.Batch) []tuple.Row {
	acc := newFinalAggAcc(groupCols, specs)
	var scratch tuple.Row
	for i := 0; i < b.N; i++ {
		scratch = b.Row(i, scratch)
		acc.add(scratch)
	}
	return acc.rows()
}

// mergeFinal merges shipped partial rows at the initiator (FinalAgg).
func mergeFinal(groupCols []int, specs []AggSpec, rows []tuple.Row) []tuple.Row {
	acc := newFinalAggAcc(groupCols, specs)
	for _, row := range rows {
		acc.add(row)
	}
	return acc.rows()
}

// finalAggAcc accumulates the initiator-side merge of partial aggregate
// rows; add reads its row argument only during the call (group values are
// copied out), so callers may pass a reused scratch row.
type finalAggAcc struct {
	groupCols []int
	specs     []AggSpec
	groups    map[string]*finalAggGroup
}

type finalAggGroup struct {
	groupVals tuple.Row
	st        *aggState
}

func newFinalAggAcc(groupCols []int, specs []AggSpec) *finalAggAcc {
	return &finalAggAcc{groupCols: groupCols, specs: specs, groups: make(map[string]*finalAggGroup)}
}

func (a *finalAggAcc) add(row tuple.Row) {
	gk := string(tuple.EncodeKey(row, a.groupCols))
	g := a.groups[gk]
	if g == nil {
		g = &finalAggGroup{groupVals: row.Project(a.groupCols), st: newAggState(len(a.specs))}
		for i := range a.specs {
			g.st.allInt[i] = true
		}
		a.groups[gk] = g
	}
	// Partial layout: group cols, then per spec 1 col (2 for AVG).
	col := len(a.groupCols)
	for i, spec := range a.specs {
		v := row[col]
		switch spec.Func {
		case AggCount:
			g.st.counts[i] += v.AsInt()
			col++
		case AggSum:
			if v.T == tuple.Int64 {
				g.st.isums[i] += v.I64
				g.st.sums[i] += float64(v.I64)
			} else {
				g.st.allInt[i] = false
				g.st.sums[i] += v.F64
			}
			g.st.counts[i]++
			col++
		case AggMin:
			if g.st.counts[i] == 0 || v.Cmp(g.st.mins[i]) < 0 {
				g.st.mins[i] = v
			}
			g.st.counts[i]++
			col++
		case AggMax:
			if g.st.counts[i] == 0 || v.Cmp(g.st.maxs[i]) > 0 {
				g.st.maxs[i] = v
			}
			g.st.counts[i]++
			col++
		case AggAvg:
			g.st.sums[i] += v.AsFloat()
			g.st.counts[i] += row[col+1].AsInt()
			col += 2
		}
	}
}

func (a *finalAggAcc) rows() []tuple.Row {
	out := make([]tuple.Row, 0, len(a.groups))
	for _, g := range a.groups {
		row := g.groupVals.Clone()
		for i, spec := range a.specs {
			switch spec.Func {
			case AggCount:
				row = append(row, tuple.I(g.st.counts[i]))
			case AggSum:
				row = append(row, g.st.sumValue(i))
			case AggMin:
				row = append(row, g.st.mins[i])
			case AggMax:
				row = append(row, g.st.maxs[i])
			case AggAvg:
				if g.st.counts[i] == 0 {
					row = append(row, tuple.F(0))
				} else {
					row = append(row, tuple.F(g.st.sums[i]/float64(g.st.counts[i])))
				}
			}
		}
		out = append(out, row)
	}
	return out
}
