package engine

import (
	"fmt"
	"sort"

	"orchestra/internal/tuple"
)

// applyFinalOps runs the initiator-side final processing pipeline over the
// collected rows (§V-B: "All data is ultimately collected at the query
// initiator node, which may do final processing, such as the last stage of
// aggregation, or a final sort").
func applyFinalOps(ops []FinalOp, rows []tuple.Row) ([]tuple.Row, error) {
	for _, op := range ops {
		switch f := op.(type) {
		case *FinalAgg:
			rows = mergeFinal(f.GroupCols, f.Aggs, rows)
		case *FinalSort:
			sortRows(rows, f.Keys)
		case *FinalCompute:
			fns := compileExprs(f.Exprs) // compiled once, applied per row
			for i, row := range rows {
				out := make(tuple.Row, len(fns))
				for j, fn := range fns {
					out[j] = fn(row)
				}
				rows[i] = out
			}
		case *FinalLimit:
			if len(rows) > f.N {
				rows = rows[:f.N]
			}
		default:
			return nil, fmt.Errorf("engine: unknown final op %T", op)
		}
	}
	return rows, nil
}

// sortRows orders rows by the sort keys (stable, so equal keys preserve
// arrival order for deterministic tests downstream of a prior sort).
func sortRows(rows []tuple.Row, keys []SortKey) {
	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range keys {
			c := rows[i][k.Col].Cmp(rows[j][k.Col])
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}
