package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"

	"orchestra/internal/cluster"
)

// Plan is a distributed query plan: a tree of operators replicated on every
// snapshot node (the distributed fragment, implicitly topped by a ship
// operator) plus the final processing performed at the query initiator
// (§V-B: "All data is ultimately collected at the query initiator node,
// which may do final processing, such as the last stage of aggregation, or
// a final sort").
type Plan struct {
	Root  Node
	Final []FinalOp

	scanIDs int
	exchIDs int
}

// Node is one operator of the distributed fragment.
type Node interface {
	Children() []Node
	append(dst []byte) []byte
	String() string
}

// node kind tags for serialization.
const (
	nodeScan    = byte(1)
	nodeSelect  = byte(2)
	nodeProject = byte(3)
	nodeCompute = byte(4)
	nodeJoin    = byte(5)
	nodeAgg     = byte(6)
	nodeRehash  = byte(7)
)

// ScanNode reads a relation at the query's snapshot epoch. With Covering
// set, only key attributes are produced, read directly from the index pages
// without touching the data storage nodes (Table I, covering index scan).
type ScanNode struct {
	Relation string
	Pred     cluster.KeyPred // sargable predicate pushed to index nodes
	Covering bool
	ScanID   int // assigned by Finalize
}

// Children returns no children (leaf).
func (s *ScanNode) Children() []Node { return nil }

func (s *ScanNode) String() string {
	kind := "DistributedScan"
	if s.Covering {
		kind = "CoveringIndexScan"
	}
	return fmt.Sprintf("%s(%s)", kind, s.Relation)
}

// SelectNode filters rows by a boolean expression (Table I, select).
type SelectNode struct {
	Pred  Expr
	Child Node
}

// Children returns the single input.
func (s *SelectNode) Children() []Node { return []Node{s.Child} }

func (s *SelectNode) String() string { return fmt.Sprintf("Select(%s)", s.Pred) }

// ProjectNode keeps the listed columns in order (Table I, project).
type ProjectNode struct {
	Cols  []int
	Child Node
}

// Children returns the single input.
func (p *ProjectNode) Children() []Node { return []Node{p.Child} }

func (p *ProjectNode) String() string { return fmt.Sprintf("Project(%v)", p.Cols) }

// ComputeNode evaluates scalar expressions; its output row is exactly the
// expression results (Table I, compute-function).
type ComputeNode struct {
	Exprs []Expr
	Child Node
}

// Children returns the single input.
func (c *ComputeNode) Children() []Node { return []Node{c.Child} }

func (c *ComputeNode) String() string { return fmt.Sprintf("Compute(%s)", exprsString(c.Exprs)) }

// JoinNode is a pipelined (symmetric) hash join on positional key columns
// (Table I, join). Inputs must already be co-partitioned on the join key —
// the planner inserts RehashNodes to enforce this.
type JoinNode struct {
	LeftKeys  []int
	RightKeys []int
	Left      Node
	Right     Node
}

// Children returns both inputs.
func (j *JoinNode) Children() []Node { return []Node{j.Left, j.Right} }

func (j *JoinNode) String() string {
	return fmt.Sprintf("Join(L%v = R%v)", j.LeftKeys, j.RightKeys)
}

// AggMode selects how an aggregate participates in a multi-stage plan.
type AggMode uint8

const (
	// AggComplete computes final aggregates directly (input already
	// partitioned on the grouping key).
	AggComplete AggMode = iota + 1
	// AggPartial computes per-node partial states to be re-aggregated.
	AggPartial
)

// AggFunc enumerates aggregate functions.
type AggFunc uint8

const (
	AggCount AggFunc = iota + 1
	AggSum
	AggMin
	AggMax
	AggAvg
)

func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggAvg:
		return "AVG"
	default:
		return fmt.Sprintf("agg(%d)", uint8(f))
	}
}

// AggSpec is one aggregate computation; Col is the input column (-1 for
// COUNT(*)).
type AggSpec struct {
	Func AggFunc
	Col  int
}

// AggNode is the blocking hash-based grouping operator, which "supports
// re-aggregation of partially aggregated intermediate results" (Table I).
type AggNode struct {
	GroupCols []int
	Aggs      []AggSpec
	Mode      AggMode
	Child     Node
}

// Children returns the single input.
func (a *AggNode) Children() []Node { return []Node{a.Child} }

func (a *AggNode) String() string {
	mode := "complete"
	if a.Mode == AggPartial {
		mode = "partial"
	}
	specs := make([]string, len(a.Aggs))
	for i, s := range a.Aggs {
		specs[i] = fmt.Sprintf("%s($%d)", s.Func, s.Col)
	}
	return fmt.Sprintf("Aggregate[%s](group %v; %s)", mode, a.GroupCols, strings.Join(specs, ", "))
}

// RehashNode repartitions its input across the snapshot nodes by hashing
// the key columns (Table I, rehash) — the exchange boundary of the plan.
type RehashNode struct {
	Keys   []int
	ExchID int // assigned by Finalize
	Child  Node
}

// Children returns the single input.
func (r *RehashNode) Children() []Node { return []Node{r.Child} }

func (r *RehashNode) String() string { return fmt.Sprintf("Rehash(%v)", r.Keys) }

// --- final (initiator-side) operators ---

// FinalOp processes collected rows at the initiator.
type FinalOp interface {
	appendFinal(dst []byte) []byte
	String() string
}

const (
	finalAgg     = byte(1)
	finalSort    = byte(2)
	finalCompute = byte(3)
	finalLimit   = byte(4)
)

// FinalAgg merges partial aggregate states shipped by the nodes (the last
// stage of aggregation at the initiator).
type FinalAgg struct {
	GroupCols []int
	Aggs      []AggSpec
}

func (f *FinalAgg) String() string { return fmt.Sprintf("FinalAgg(group %v)", f.GroupCols) }

// SortKey orders by a column, optionally descending.
type SortKey struct {
	Col  int
	Desc bool
}

// FinalSort orders the collected rows.
type FinalSort struct {
	Keys []SortKey
}

func (f *FinalSort) String() string { return fmt.Sprintf("FinalSort(%v)", f.Keys) }

// FinalCompute maps rows through scalar expressions.
type FinalCompute struct {
	Exprs []Expr
}

func (f *FinalCompute) String() string { return fmt.Sprintf("FinalCompute(%s)", exprsString(f.Exprs)) }

// FinalLimit truncates the result.
type FinalLimit struct {
	N int
}

func (f *FinalLimit) String() string { return fmt.Sprintf("FinalLimit(%d)", f.N) }

// --- plan assembly ---

// Finalize assigns scan and exchange identifiers and validates the tree.
// It must be called once before execution or serialization.
func (p *Plan) Finalize() error {
	p.scanIDs, p.exchIDs = 0, 0
	return p.walkAssign(p.Root)
}

func (p *Plan) walkAssign(n Node) error {
	if n == nil {
		return errors.New("engine: nil plan node")
	}
	switch t := n.(type) {
	case *ScanNode:
		if t.Relation == "" {
			return errors.New("engine: scan of empty relation name")
		}
		t.ScanID = p.scanIDs
		p.scanIDs++
	case *RehashNode:
		if len(t.Keys) == 0 {
			return errors.New("engine: rehash without keys")
		}
		t.ExchID = p.exchIDs
		p.exchIDs++
	case *JoinNode:
		if len(t.LeftKeys) == 0 || len(t.LeftKeys) != len(t.RightKeys) {
			return errors.New("engine: join key arity mismatch")
		}
	case *AggNode:
		if t.Mode != AggComplete && t.Mode != AggPartial {
			return errors.New("engine: aggregate without mode")
		}
	}
	for _, c := range n.Children() {
		if err := p.walkAssign(c); err != nil {
			return err
		}
	}
	return nil
}

// NumScans returns the count of scan leaves (after Finalize).
func (p *Plan) NumScans() int { return p.scanIDs }

// NumExchanges returns the count of rehash boundaries (after Finalize).
func (p *Plan) NumExchanges() int { return p.exchIDs }

// Relations returns the distinct relation names scanned by the plan.
func (p *Plan) Relations() []string {
	seen := map[string]bool{}
	var out []string
	var walk func(Node)
	walk = func(n Node) {
		if s, ok := n.(*ScanNode); ok && !seen[s.Relation] {
			seen[s.Relation] = true
			out = append(out, s.Relation)
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(p.Root)
	return out
}

func (p *Plan) String() string {
	var b strings.Builder
	var walk func(n Node, depth int)
	walk = func(n Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.String())
		b.WriteString("\n")
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(p.Root, 0)
	for _, f := range p.Final {
		fmt.Fprintf(&b, "final: %s\n", f)
	}
	return b.String()
}

// --- serialization ---

func appendInts(dst []byte, xs []int) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(xs)))
	for _, x := range xs {
		dst = binary.AppendVarint(dst, int64(x))
	}
	return dst
}

func decodeInts(data []byte) ([]int, int, error) {
	count, n := binary.Uvarint(data)
	if n <= 0 || count > 1<<16 {
		return nil, 0, errors.New("engine: bad int list")
	}
	off := n
	out := make([]int, count)
	for i := range out {
		v, m := binary.Varint(data[off:])
		if m <= 0 {
			return nil, 0, errors.New("engine: bad int")
		}
		out[i] = int(v)
		off += m
	}
	return out, off, nil
}

func appendBytesField(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func readBytesField(data []byte) ([]byte, int, error) {
	l, n := binary.Uvarint(data)
	if n <= 0 || len(data) < n+int(l) {
		return nil, 0, errors.New("engine: truncated bytes field")
	}
	return data[n : n+int(l)], n + int(l), nil
}

func (s *ScanNode) append(dst []byte) []byte {
	dst = append(dst, nodeScan)
	dst = appendBytesField(dst, []byte(s.Relation))
	dst = appendBytesField(dst, s.Pred.Lo)
	dst = appendBytesField(dst, s.Pred.Hi)
	if s.Covering {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	return binary.AppendUvarint(dst, uint64(s.ScanID))
}

func (s *SelectNode) append(dst []byte) []byte {
	dst = append(dst, nodeSelect)
	dst = s.Pred.append(dst)
	return s.Child.append(dst)
}

func (p *ProjectNode) append(dst []byte) []byte {
	dst = append(dst, nodeProject)
	dst = appendInts(dst, p.Cols)
	return p.Child.append(dst)
}

func (c *ComputeNode) append(dst []byte) []byte {
	dst = append(dst, nodeCompute)
	dst = encodeExprs(dst, c.Exprs)
	return c.Child.append(dst)
}

func (j *JoinNode) append(dst []byte) []byte {
	dst = append(dst, nodeJoin)
	dst = appendInts(dst, j.LeftKeys)
	dst = appendInts(dst, j.RightKeys)
	dst = j.Left.append(dst)
	return j.Right.append(dst)
}

func (a *AggNode) append(dst []byte) []byte {
	dst = append(dst, nodeAgg, byte(a.Mode))
	dst = appendInts(dst, a.GroupCols)
	dst = binary.AppendUvarint(dst, uint64(len(a.Aggs)))
	for _, s := range a.Aggs {
		dst = append(dst, byte(s.Func))
		dst = binary.AppendVarint(dst, int64(s.Col))
	}
	return a.Child.append(dst)
}

func (r *RehashNode) append(dst []byte) []byte {
	dst = append(dst, nodeRehash)
	dst = appendInts(dst, r.Keys)
	dst = binary.AppendUvarint(dst, uint64(r.ExchID))
	return r.Child.append(dst)
}

func decodeNode(data []byte) (Node, int, error) {
	if len(data) == 0 {
		return nil, 0, errors.New("engine: empty node")
	}
	switch data[0] {
	case nodeScan:
		off := 1
		rel, n, err := readBytesField(data[off:])
		if err != nil {
			return nil, 0, err
		}
		off += n
		lo, n, err := readBytesField(data[off:])
		if err != nil {
			return nil, 0, err
		}
		off += n
		hi, n, err := readBytesField(data[off:])
		if err != nil {
			return nil, 0, err
		}
		off += n
		if off >= len(data) {
			return nil, 0, errors.New("engine: truncated scan")
		}
		covering := data[off] == 1
		off++
		id, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return nil, 0, errors.New("engine: bad scan id")
		}
		off += n
		s := &ScanNode{Relation: string(rel), Covering: covering, ScanID: int(id)}
		if len(lo) > 0 {
			s.Pred.Lo = append([]byte(nil), lo...)
		}
		if len(hi) > 0 {
			s.Pred.Hi = append([]byte(nil), hi...)
		}
		return s, off, nil
	case nodeSelect:
		pred, n, err := DecodeExpr(data[1:])
		if err != nil {
			return nil, 0, err
		}
		child, m, err := decodeNode(data[1+n:])
		if err != nil {
			return nil, 0, err
		}
		return &SelectNode{Pred: pred, Child: child}, 1 + n + m, nil
	case nodeProject:
		cols, n, err := decodeInts(data[1:])
		if err != nil {
			return nil, 0, err
		}
		child, m, err := decodeNode(data[1+n:])
		if err != nil {
			return nil, 0, err
		}
		return &ProjectNode{Cols: cols, Child: child}, 1 + n + m, nil
	case nodeCompute:
		exprs, n, err := decodeExprs(data[1:])
		if err != nil {
			return nil, 0, err
		}
		child, m, err := decodeNode(data[1+n:])
		if err != nil {
			return nil, 0, err
		}
		return &ComputeNode{Exprs: exprs, Child: child}, 1 + n + m, nil
	case nodeJoin:
		off := 1
		lk, n, err := decodeInts(data[off:])
		if err != nil {
			return nil, 0, err
		}
		off += n
		rk, n, err := decodeInts(data[off:])
		if err != nil {
			return nil, 0, err
		}
		off += n
		left, n, err := decodeNode(data[off:])
		if err != nil {
			return nil, 0, err
		}
		off += n
		right, n, err := decodeNode(data[off:])
		if err != nil {
			return nil, 0, err
		}
		off += n
		return &JoinNode{LeftKeys: lk, RightKeys: rk, Left: left, Right: right}, off, nil
	case nodeAgg:
		if len(data) < 2 {
			return nil, 0, errors.New("engine: truncated agg")
		}
		mode := AggMode(data[1])
		off := 2
		groups, n, err := decodeInts(data[off:])
		if err != nil {
			return nil, 0, err
		}
		off += n
		count, n := binary.Uvarint(data[off:])
		if n <= 0 || count > 1<<12 {
			return nil, 0, errors.New("engine: bad agg spec count")
		}
		off += n
		specs := make([]AggSpec, count)
		for i := range specs {
			if off >= len(data) {
				return nil, 0, errors.New("engine: truncated agg spec")
			}
			specs[i].Func = AggFunc(data[off])
			off++
			v, m := binary.Varint(data[off:])
			if m <= 0 {
				return nil, 0, errors.New("engine: bad agg col")
			}
			specs[i].Col = int(v)
			off += m
		}
		child, m, err := decodeNode(data[off:])
		if err != nil {
			return nil, 0, err
		}
		return &AggNode{GroupCols: groups, Aggs: specs, Mode: mode, Child: child}, off + m, nil
	case nodeRehash:
		cols, n, err := decodeInts(data[1:])
		if err != nil {
			return nil, 0, err
		}
		off := 1 + n
		id, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return nil, 0, errors.New("engine: bad exch id")
		}
		off += n
		child, m, err := decodeNode(data[off:])
		if err != nil {
			return nil, 0, err
		}
		return &RehashNode{Keys: cols, ExchID: int(id), Child: child}, off + m, nil
	default:
		return nil, 0, fmt.Errorf("engine: unknown node tag %d", data[0])
	}
}

func (f *FinalAgg) appendFinal(dst []byte) []byte {
	dst = append(dst, finalAgg)
	dst = appendInts(dst, f.GroupCols)
	dst = binary.AppendUvarint(dst, uint64(len(f.Aggs)))
	for _, s := range f.Aggs {
		dst = append(dst, byte(s.Func))
		dst = binary.AppendVarint(dst, int64(s.Col))
	}
	return dst
}

func (f *FinalSort) appendFinal(dst []byte) []byte {
	dst = append(dst, finalSort)
	dst = binary.AppendUvarint(dst, uint64(len(f.Keys)))
	for _, k := range f.Keys {
		dst = binary.AppendUvarint(dst, uint64(k.Col))
		if k.Desc {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

func (f *FinalCompute) appendFinal(dst []byte) []byte {
	dst = append(dst, finalCompute)
	return encodeExprs(dst, f.Exprs)
}

func (f *FinalLimit) appendFinal(dst []byte) []byte {
	dst = append(dst, finalLimit)
	return binary.AppendUvarint(dst, uint64(f.N))
}

func decodeFinalOp(data []byte) (FinalOp, int, error) {
	if len(data) == 0 {
		return nil, 0, errors.New("engine: empty final op")
	}
	switch data[0] {
	case finalAgg:
		groups, n, err := decodeInts(data[1:])
		if err != nil {
			return nil, 0, err
		}
		off := 1 + n
		count, n := binary.Uvarint(data[off:])
		if n <= 0 || count > 1<<12 {
			return nil, 0, errors.New("engine: bad final agg count")
		}
		off += n
		specs := make([]AggSpec, count)
		for i := range specs {
			if off >= len(data) {
				return nil, 0, errors.New("engine: truncated final agg")
			}
			specs[i].Func = AggFunc(data[off])
			off++
			v, m := binary.Varint(data[off:])
			if m <= 0 {
				return nil, 0, errors.New("engine: bad final agg col")
			}
			specs[i].Col = int(v)
			off += m
		}
		return &FinalAgg{GroupCols: groups, Aggs: specs}, off, nil
	case finalSort:
		count, n := binary.Uvarint(data[1:])
		if n <= 0 || count > 1<<12 {
			return nil, 0, errors.New("engine: bad sort count")
		}
		off := 1 + n
		keys := make([]SortKey, count)
		for i := range keys {
			col, m := binary.Uvarint(data[off:])
			if m <= 0 || off+m >= len(data) {
				return nil, 0, errors.New("engine: bad sort key")
			}
			off += m
			keys[i] = SortKey{Col: int(col), Desc: data[off] == 1}
			off++
		}
		return &FinalSort{Keys: keys}, off, nil
	case finalCompute:
		exprs, n, err := decodeExprs(data[1:])
		if err != nil {
			return nil, 0, err
		}
		return &FinalCompute{Exprs: exprs}, 1 + n, nil
	case finalLimit:
		v, n := binary.Uvarint(data[1:])
		if n <= 0 {
			return nil, 0, errors.New("engine: bad limit")
		}
		return &FinalLimit{N: int(v)}, 1 + n, nil
	default:
		return nil, 0, fmt.Errorf("engine: unknown final op %d", data[0])
	}
}

// EncodePlan serializes a finalized plan for dissemination with the query.
func EncodePlan(p *Plan) []byte {
	dst := p.Root.append(nil)
	dst = binary.AppendUvarint(dst, uint64(len(p.Final)))
	for _, f := range p.Final {
		dst = f.appendFinal(dst)
	}
	return dst
}

// DecodePlan reverses EncodePlan and re-finalizes the plan.
func DecodePlan(data []byte) (*Plan, error) {
	root, n, err := decodeNode(data)
	if err != nil {
		return nil, err
	}
	p := &Plan{Root: root}
	count, m := binary.Uvarint(data[n:])
	if m <= 0 || count > 1<<12 {
		return nil, errors.New("engine: bad final op count")
	}
	off := n + m
	for i := uint64(0); i < count; i++ {
		f, k, err := decodeFinalOp(data[off:])
		if err != nil {
			return nil, err
		}
		p.Final = append(p.Final, f)
		off += k
	}
	if off != len(data) {
		return nil, fmt.Errorf("engine: %d trailing plan bytes", len(data)-off)
	}
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	return p, nil
}
