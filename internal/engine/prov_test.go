package engine

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// provConfig generates provenance sets over a bounded member universe.
var provConfig = &quick.Config{
	MaxCount: 300,
	Values: func(vals []reflect.Value, rng *rand.Rand) {
		for i := range vals {
			n := 1 + rng.Intn(4) // 64..256-bit sets
			p := make(Prov, n)
			for j := range p {
				p[j] = rng.Uint64() & rng.Uint64() // sparse-ish
			}
			vals[i] = reflect.ValueOf(p)
		}
	},
}

func TestProvKeyRoundTrip(t *testing.T) {
	f := func(p Prov) bool {
		q := ProvFromKey(p.Key())
		// Round trip preserves membership for every bit position.
		for i := 0; i < len(p)*64; i++ {
			if p.Has(i) != q.Has(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, provConfig); err != nil {
		t.Fatal(err)
	}
}

func TestProvKeyCanonical(t *testing.T) {
	// Equal sets encode equally regardless of allocation width.
	f := func(p Prov) bool {
		widened := make(Prov, len(p)+2)
		copy(widened, p)
		return widened.Key() == p.Key()
	}
	if err := quick.Check(f, provConfig); err != nil {
		t.Fatal(err)
	}
}

func TestProvUnionProperties(t *testing.T) {
	f := func(a, b Prov) bool {
		u := a.Union(b)
		// Union is a superset of both and commutative.
		for i := 0; i < len(u)*64; i++ {
			if (a.Has(i) || b.Has(i)) != u.Has(i) {
				return false
			}
		}
		return u.Key() == b.Union(a).Key()
	}
	if err := quick.Check(f, provConfig); err != nil {
		t.Fatal(err)
	}
}

func TestProvIntersects(t *testing.T) {
	f := func(a, b Prov) bool {
		want := false
		for i := 0; i < 256; i++ {
			if a.Has(i) && b.Has(i) {
				want = true
				break
			}
		}
		return a.Intersects(b) == want && b.Intersects(a) == want
	}
	if err := quick.Check(f, provConfig); err != nil {
		t.Fatal(err)
	}
	// Union always intersects its non-empty operands.
	g := func(a, b Prov) bool {
		if a.Count() == 0 {
			return true
		}
		return a.Union(b).Intersects(a)
	}
	if err := quick.Check(g, provConfig); err != nil {
		t.Fatal(err)
	}
}

func TestProvSetHasCount(t *testing.T) {
	p := NewProv(200)
	members := []int{0, 1, 63, 64, 127, 128, 199}
	for _, m := range members {
		p.Set(m)
	}
	for _, m := range members {
		if !p.Has(m) {
			t.Fatalf("missing bit %d", m)
		}
	}
	if p.Has(50) || p.Has(198) {
		t.Fatal("spurious bits")
	}
	if p.Count() != len(members) {
		t.Fatalf("count %d", p.Count())
	}
	c := p.Clone()
	c.Set(50)
	if p.Has(50) {
		t.Fatal("clone aliases original")
	}
}

func TestBatchCodecRoundTripWithProvenance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		ts := make([]Tup, n)
		for i := range ts {
			ts[i] = Tup{
				Row:  genR(1, rng)[0],
				Prov: ProvOf(64, rng.Intn(64), rng.Intn(64)),
			}
		}
		enc, err := encodeTupBatch(ts, uint32(trial), true)
		if err != nil {
			t.Fatal(err)
		}
		dec, phase, err := decodeTupBatch(enc)
		if err != nil {
			t.Fatal(err)
		}
		if phase != uint32(trial) || len(dec) != n {
			t.Fatalf("phase %d len %d", phase, len(dec))
		}
		for i := range dec {
			if !dec[i].Row.Equal(ts[i].Row) {
				t.Fatalf("row %d mismatch", i)
			}
			if dec[i].Prov.Key() != ts[i].Prov.Key() {
				t.Fatalf("prov %d mismatch", i)
			}
		}
	}
}
