// Package engine implements ORCHESTRA's reliable distributed query
// processor (paper §V): a dataflow ("push") engine whose operators run on
// every node of a routing-table snapshot, exchanging destination-batched,
// compressed tuple blocks; every tuple carries the set of nodes that
// processed it (provenance), enabling incremental recomputation after node
// failures with correct, complete, duplicate-free results.
package engine

import (
	"math/bits"

	"orchestra/internal/tuple"
)

// Prov is a provenance set: the set of snapshot-member indices whose nodes
// processed this tuple or any tuple used to derive it (§V-D). With dozens
// to hundreds of nodes, a small bitset suffices; the empty set is nil.
type Prov []uint64

// NewProv returns a set sized for n members with no bits set.
func NewProv(n int) Prov {
	return make(Prov, (n+63)/64)
}

// ProvOf returns a set with exactly the given member bits.
func ProvOf(n int, members ...int) Prov {
	p := NewProv(n)
	for _, m := range members {
		p.Set(m)
	}
	return p
}

// Set marks member i as having processed the tuple.
func (p Prov) Set(i int) {
	p[i/64] |= 1 << (i % 64)
}

// Has reports whether member i is in the set.
func (p Prov) Has(i int) bool {
	w := i / 64
	return w < len(p) && p[w]&(1<<(i%64)) != 0
}

// Union returns a new set containing both inputs' members.
func (p Prov) Union(o Prov) Prov {
	a, b := p, o
	if len(b) > len(a) {
		a, b = b, a
	}
	out := make(Prov, len(a))
	copy(out, a)
	for i := range b {
		out[i] |= b[i]
	}
	return out
}

// UnionInto merges o into p in place (p must be at least as long as o).
func (p Prov) UnionInto(o Prov) {
	for i := range o {
		p[i] |= o[i]
	}
}

// Intersects reports whether the sets share any member — the "tainted"
// test: a tuple is tainted if its provenance intersects the failed set.
func (p Prov) Intersects(o Prov) bool {
	n := len(p)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if p[i]&o[i] != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of members in the set.
func (p Prov) Count() int {
	c := 0
	for _, w := range p {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns an independent copy.
func (p Prov) Clone() Prov {
	out := make(Prov, len(p))
	copy(out, p)
	return out
}

// Key returns a map key identifying the exact set: aggregate operators
// partition each group into sub-groups per contributing provenance set, so
// that sub-groups touching failed nodes can be dropped without losing the
// rest (§V-D). The number of distinct keys is bounded by node-set
// combinations, not input size.
func (p Prov) Key() string {
	// Trim trailing zero words so equal sets encode equally regardless of
	// allocation width.
	n := len(p)
	for n > 0 && p[n-1] == 0 {
		n--
	}
	buf := make([]byte, n*8)
	for i := 0; i < n; i++ {
		w := p[i]
		for j := 0; j < 8; j++ {
			buf[i*8+j] = byte(w >> (8 * j))
		}
	}
	return string(buf)
}

// ProvFromKey reconstructs a set from Key().
func ProvFromKey(k string) Prov {
	n := (len(k) + 7) / 8
	p := make(Prov, n)
	for i := 0; i < len(k); i++ {
		p[i/8] |= uint64(k[i]) << (8 * (i % 8))
	}
	return p
}

// Bitset is a plain selection bitset: the batch predicate evaluators mark
// the rows of a column-major batch that pass a filter, and the batch is
// compacted in one pass over the set bits. Distinct from Prov only in
// intent — Prov encodes node sets with set-algebra semantics, Bitset is a
// transient per-batch row mask.
type Bitset []uint64

// NewBitset returns a zeroed bitset with capacity for n bits.
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// Set marks bit i.
func (s Bitset) Set(i int) { s[i>>6] |= 1 << (uint(i) & 63) }

// Has reports whether bit i is set.
func (s Bitset) Has(i int) bool { return s[i>>6]&(1<<(uint(i)&63)) != 0 }

// Clear zeroes every bit.
func (s Bitset) Clear() {
	for i := range s {
		s[i] = 0
	}
}

// SetFirst sets bits [0, n).
func (s Bitset) SetFirst(n int) {
	for i := 0; i < n>>6; i++ {
		s[i] = ^uint64(0)
	}
	if rem := uint(n) & 63; rem != 0 {
		s[n>>6] |= (1 << rem) - 1
	}
}

// Count returns the number of set bits.
func (s Bitset) Count() int {
	c := 0
	for _, w := range s {
		c += bits.OnesCount64(w)
	}
	return c
}

// AndWith intersects s with o in place.
func (s Bitset) AndWith(o Bitset) {
	for i := range s {
		s[i] &= o[i]
	}
}

// OrWith unions o into s in place.
func (s Bitset) OrWith(o Bitset) {
	for i := range s {
		s[i] |= o[i]
	}
}

// FlipFirst complements bits [0, n).
func (s Bitset) FlipFirst(n int) {
	for i := 0; i < n>>6; i++ {
		s[i] = ^s[i]
	}
	if rem := uint(n) & 63; rem != 0 {
		s[n>>6] ^= (1 << rem) - 1
	}
}

// Tup is a tuple flowing through the engine: the row, its provenance, and
// the execution phase that produced it. Phases correspond to the initial
// execution (0) and successive incremental recovery invocations (§V-D);
// they let the system differentiate old in-flight data from recomputed
// results.
type Tup struct {
	Row   tuple.Row
	Prov  Prov
	Phase uint32
}
