package engine

import (
	"math/rand"
	"testing"
	"time"
)

// TestSoakIncrementalRecovery is a randomized soak of the incremental
// recovery protocol: many independent runs with a node killed at varying
// offsets relative to query start. Every run must return exactly the
// reference answer — complete and duplicate-free (the paper's core §V-D
// claim). The loop historically surfaced several wave-ordering races
// (stale-phase completion markers, replay double-delivery, dead-sender
// clobbering of re-shipped scan IDs), so it earns its runtime.
func TestSoakIncrementalRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	iters := 25
	for i := 0; i < iters; i++ {
		h := newHarness(t, 6)
		h.create(schemaR())
		h.create(schemaS())
		rng := rand.New(rand.NewSource(int64(100 + i)))
		h.publish("R", genR(500, rng))
		h.publish("S", genS(120, rng))
		p := failurePlan()
		if err := p.Finalize(); err != nil {
			t.Fatal(err)
		}
		victim := h.local.Node(1 + i%5).ID()
		go func(d int) {
			time.Sleep(time.Duration(d%6) * time.Millisecond)
			h.local.Kill(victim)
		}(i)
		res, err := h.engines[0].Run(h.ctx(), p, Options{Recovery: RecoverIncremental})
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		want, err := refEval(p, h.data, h.schemas)
		if err != nil {
			t.Fatal(err)
		}
		if !rowsEqual(res.Rows, want) {
			t.Fatalf("iter %d (victim %s, phases %d): %s",
				i, victim, res.Phases, diffSummary(res.Rows, want))
		}
	}
}
