package engine

import "sync"

// sequencer runs critical sections strictly in ticket-issue order. It is
// used to keep wave-ordered work (index sides, data passes) from being
// reordered by goroutine scheduling: a goroutine launched for wave p+1 must
// not run before the goroutine launched earlier for wave p.
type sequencer struct {
	mu   sync.Mutex
	cond *sync.Cond
	next uint64 // next ticket to issue
	turn uint64 // ticket currently allowed to proceed
}

// ticket claims the next execution slot. Claim tickets in the order the
// work is logically fired.
func (s *sequencer) ticket() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.next
	s.next++
	return t
}

// wait blocks until it is ticket t's turn.
func (s *sequencer) wait(t uint64) {
	s.mu.Lock()
	if s.cond == nil {
		s.cond = sync.NewCond(&s.mu)
	}
	for s.turn != t {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// done releases the current turn to the next ticket.
func (s *sequencer) done() {
	s.mu.Lock()
	if s.cond == nil {
		s.cond = sync.NewCond(&s.mu)
	}
	s.turn++
	s.cond.Broadcast()
	s.mu.Unlock()
}
