package engine

import (
	"container/list"
	"sync"

	"orchestra/internal/vstore"
)

// pageCache holds decoded index pages. Page versions are immutable — a
// publish copy-on-writes modified pages under fresh (relation, epoch, seq)
// identities and never rewrites an existing one — so a decoded page can be
// cached forever and shared read-only across queries; the LRU bound only
// caps memory. Before this cache, decoding the scanned relation's pages
// (per query, per scan leaf) was a top profile entry on served workloads.
type pageCache struct {
	mu  sync.Mutex
	max int
	lru *list.List // front = most recent; values are *pageCacheEntry
	m   map[vstore.PageID]*list.Element

	hits      uint64
	misses    uint64
	evictions uint64
}

type pageCacheEntry struct {
	id   vstore.PageID
	page *vstore.Page
}

// defaultPageCachePages bounds the decoded-page cache. At the default 512
// IDs per page this is on the order of a few thousand tuples of index
// state per cached page, tens of MB at the cap — small next to the tuple
// store it fronts.
const defaultPageCachePages = 256

func newPageCache(max int) *pageCache {
	return &pageCache{max: max, lru: list.New(), m: make(map[vstore.PageID]*list.Element)}
}

func (c *pageCache) get(id vstore.PageID) (*vstore.Page, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[id]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*pageCacheEntry).page, true
}

// put caches a decoded page. The page must be fully initialized (hashes
// ensured) and is shared read-only from here on.
func (c *pageCache) put(id vstore.PageID, p *vstore.Page) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[id]; ok {
		c.lru.MoveToFront(el)
		return
	}
	c.m[id] = c.lru.PushFront(&pageCacheEntry{id: id, page: p})
	for c.lru.Len() > c.max {
		old := c.lru.Back()
		c.lru.Remove(old)
		delete(c.m, old.Value.(*pageCacheEntry).id)
		c.evictions++
	}
}

// CacheStats are a cache's cumulative hit/miss/eviction counts plus its
// current and maximum sizes.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Size      int    `json:"size"`
	Max       int    `json:"max"`
}

func (c *pageCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Size: c.lru.Len(), Max: c.max}
}

// PageCacheStats snapshots the decoded-index-page LRU's counters.
func (e *Engine) PageCacheStats() CacheStats { return e.pages.stats() }
