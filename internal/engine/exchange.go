package engine

import (
	"encoding/binary"
	"errors"
	"sync"

	"orchestra/internal/keyspace"
	"orchestra/internal/obs"
	"orchestra/internal/ring"
	"orchestra/internal/tuple"
)

// flushRows is the destination-batch size: tuples are accumulated per
// destination and shipped in compressed blocks (§V-A).
const flushRows = 1024

// --- batch wire codec ---
//
// Batches carry the rows (columnar, compressed — tuple.EncodeBatch), the
// execution phase, and a dictionary-coded provenance column: distinct
// provenance sets are listed once, each row referencing its set by index.
// This keeps the provenance overhead to roughly one byte per tuple, which
// is how the paper achieves its ≤2% traffic overhead for recovery support.

func encodeTupBatch(ts []Tup, phase uint32, withProv bool) ([]byte, error) {
	out := binary.BigEndian.AppendUint32(nil, phase)
	if withProv {
		out = append(out, 1)
		dict := make(map[string]int)
		var keys []string
		idxs := make([]int, len(ts))
		for i, t := range ts {
			k := t.Prov.Key()
			id, ok := dict[k]
			if !ok {
				id = len(keys)
				dict[k] = id
				keys = append(keys, k)
			}
			idxs[i] = id
		}
		out = binary.AppendUvarint(out, uint64(len(keys)))
		for _, k := range keys {
			out = binary.AppendUvarint(out, uint64(len(k)))
			out = append(out, k...)
		}
		out = binary.AppendUvarint(out, uint64(len(idxs)))
		for _, id := range idxs {
			out = binary.AppendUvarint(out, uint64(id))
		}
	} else {
		out = append(out, 0)
	}
	rows := make([]tuple.Row, len(ts))
	for i, t := range ts {
		rows[i] = t.Row
	}
	body, err := tuple.EncodeBatch(rows)
	if err != nil {
		return nil, err
	}
	return append(out, body...), nil
}

func decodeTupBatch(data []byte) ([]Tup, uint32, error) {
	if len(data) < 5 {
		return nil, 0, errors.New("engine: short batch")
	}
	phase := binary.BigEndian.Uint32(data)
	withProv := data[4] == 1
	off := 5
	var provs []Prov
	var idxs []uint64
	if withProv {
		nDict, n := binary.Uvarint(data[off:])
		if n <= 0 || nDict > 1<<20 {
			return nil, 0, errors.New("engine: bad prov dict")
		}
		off += n
		provs = make([]Prov, nDict)
		for i := range provs {
			l, n := binary.Uvarint(data[off:])
			if n <= 0 || off+n+int(l) > len(data) {
				return nil, 0, errors.New("engine: bad prov entry")
			}
			off += n
			provs[i] = ProvFromKey(string(data[off : off+int(l)]))
			off += int(l)
		}
	}
	if withProv {
		nIdx, n := binary.Uvarint(data[off:])
		if n <= 0 || nIdx > 1<<28 {
			return nil, 0, errors.New("engine: bad prov index count")
		}
		off += n
		idxs = make([]uint64, nIdx)
		for i := range idxs {
			v, n := binary.Uvarint(data[off:])
			if n <= 0 {
				return nil, 0, errors.New("engine: bad prov index")
			}
			idxs[i] = v
			off += n
		}
	}
	rows, err := tuple.DecodeBatch(data[off:])
	if err != nil {
		return nil, 0, err
	}
	if withProv && len(idxs) != len(rows) {
		return nil, 0, errors.New("engine: prov index count mismatch")
	}
	ts := make([]Tup, len(rows))
	for i, r := range rows {
		ts[i] = Tup{Row: r, Phase: phase}
		if withProv {
			id := idxs[i]
			if id >= uint64(len(provs)) {
				return nil, 0, errors.New("engine: prov index out of range")
			}
			ts[i].Prov = provs[id].Clone()
		}
	}
	return ts, phase, nil
}

// --- exchange producer (rehash) ---

// cachedTup is a produced tuple retained for replay, with its routing hash
// and the node it was last sent to. Replay resends exactly the entries
// whose last destination has failed: entries routed by the recovery table
// (a concurrent push after the table swap) must not be sent twice.
type cachedTup struct {
	t      Tup
	h      keyspace.Key
	sentTo ring.NodeID
}

// exchProducer is the sending half of a rehash: it partitions its input by
// hash of the key columns, batches per destination, and retains an output
// cache so that tuples sent to a node that later fails can be recreated
// without redoing the upstream work (§V-D stage 4).
type exchProducer struct {
	ex     *executor
	exchID int
	keys   []int

	mu      sync.Mutex
	pending map[ring.NodeID][]Tup
	cache   []cachedTup
}

func newExchProducer(ex *executor, exchID int, keys []int) *exchProducer {
	return &exchProducer{
		ex:      ex,
		exchID:  exchID,
		keys:    keys,
		pending: make(map[ring.NodeID][]Tup),
	}
}

func (p *exchProducer) routeHash(row tuple.Row) keyspace.Key {
	return keyspace.Hash(tuple.EncodeKey(row, p.keys))
}

func (p *exchProducer) push(ts []Tup) {
	var flushes []flushUnit
	p.mu.Lock()
	// The routing table must be read inside the cache critical section:
	// replay() holds the same lock after the recovery table is installed,
	// so every cache entry is either scanned by replay or routed by the
	// recovery table — never routed to a dead node and missed by replay.
	table := p.ex.currentTable()
	for _, t := range ts {
		h := p.routeHash(t.Row)
		dest := table.Owner(h)
		if p.ex.opts.Provenance {
			p.cache = append(p.cache, cachedTup{t: t, h: h, sentTo: dest})
		}
		p.pending[dest] = append(p.pending[dest], t)
		if len(p.pending[dest]) >= flushRows {
			flushes = append(flushes, flushUnit{dest: dest, ts: p.pending[dest]})
			p.pending[dest] = nil
		}
	}
	p.mu.Unlock()
	for _, f := range flushes {
		p.ex.sendExchBatch(p.exchID, f.dest, f.ts)
	}
}

type flushUnit struct {
	dest ring.NodeID
	ts   []Tup
}

// eos flushes all pending batches and broadcasts end-of-stream for the
// current phase to every live node (§V-B: the rehash operator cannot
// complete until its data is fully delivered; per-link FIFO ordering plus
// the trailing EOS marker provide that guarantee).
func (p *exchProducer) eos(phase uint32) {
	p.mu.Lock()
	flushes := make([]flushUnit, 0, len(p.pending))
	for dest, ts := range p.pending {
		if len(ts) > 0 {
			flushes = append(flushes, flushUnit{dest: dest, ts: ts})
		}
	}
	p.pending = make(map[ring.NodeID][]Tup)
	p.mu.Unlock()
	for _, f := range flushes {
		p.ex.sendExchBatch(p.exchID, f.dest, f.ts)
	}
	p.ex.broadcastExchEOS(p.exchID, phase)
}

// replay re-sends cached clean tuples whose last destination has since
// failed, now routed by the recovery table and tagged with the new phase.
// Tainted cache entries are dropped: the upstream restart will regenerate
// them. Entries already routed by the recovery table (by a push concurrent
// with the table swap) are left alone — resending them would duplicate.
func (p *exchProducer) replay(failed Prov, newTable *ring.Table, newPhase uint32) {
	p.mu.Lock()
	kept := p.cache[:0]
	byDest := make(map[ring.NodeID][]Tup)
	for _, c := range p.cache {
		if c.t.Prov.Intersects(failed) {
			continue
		}
		if !newTable.Contains(c.sentTo) {
			c.sentTo = newTable.Owner(c.h)
			t := c.t
			t.Phase = newPhase
			byDest[c.sentTo] = append(byDest[c.sentTo], t)
		}
		kept = append(kept, c)
	}
	p.cache = kept
	p.mu.Unlock()

	for dest, ts := range byDest {
		p.ex.sendExchBatch(p.exchID, dest, ts)
	}
}

// --- exchange consumer ---

// exchConsumer is the receiving half of a rehash on one node: it filters
// tainted tuples, stamps the local node into each tuple's provenance, and
// tracks per-phase end-of-stream from every live producer.
type exchConsumer struct {
	ex  *executor
	out sink

	mu         sync.Mutex
	eosFrom    map[uint32]map[ring.NodeID]bool
	firedPhase map[uint32]bool
}

func newExchConsumer(ex *executor, out sink) *exchConsumer {
	return &exchConsumer{
		ex:         ex,
		out:        out,
		eosFrom:    make(map[uint32]map[ring.NodeID]bool),
		firedPhase: make(map[uint32]bool),
	}
}

// receive processes an incoming batch (possibly from an earlier phase —
// clean tuples from live nodes remain valid; tainted ones are dropped).
func (c *exchConsumer) receive(ts []Tup) {
	ts = c.ex.filterAndStamp(ts)
	if len(ts) > 0 {
		c.out.push(ts)
	}
}

// eosFromNode records a producer's end-of-stream for a phase and fires
// downstream EOS when every live node has finished the current phase.
func (c *exchConsumer) eosFromNode(from ring.NodeID, phase uint32) {
	c.mu.Lock()
	m := c.eosFrom[phase]
	if m == nil {
		m = make(map[ring.NodeID]bool)
		c.eosFrom[phase] = m
	}
	m[from] = true
	fire, donePhase := c.completeLocked()
	c.mu.Unlock()
	if fire {
		c.out.eos(donePhase)
	}
}

// recheck re-evaluates completion (called after recovery changes the live
// set or phase).
func (c *exchConsumer) recheck() {
	c.mu.Lock()
	fire, donePhase := c.completeLocked()
	c.mu.Unlock()
	if fire {
		c.out.eos(donePhase)
	}
}

func (c *exchConsumer) completeLocked() (bool, uint32) {
	phase := c.ex.phaseNow()
	if c.firedPhase[phase] {
		return false, phase
	}
	m := c.eosFrom[phase]
	for _, id := range c.ex.liveMembers() {
		if !m[id] {
			return false, phase
		}
	}
	c.firedPhase[phase] = true
	return true, phase
}

// --- ship ---

// shipProducer sends final fragment output to the query initiator
// (Table I, ship). It is batch-aware: columnar batches from the operator
// pipeline stay columnar — on the initiator's own node they hand over to
// the ship consumer directly (which appends their vectors into its
// columnar accumulator), remotely they coalesce into a pending batch and
// ship batch-encoded. Row pushes (provenance mode, covering scans,
// stateful operators) keep the original path.
type shipProducer struct {
	ex *executor

	mu      sync.Mutex
	pending []Tup
	cols    *tuple.Batch // remote coalescing; nil until first columnar push
	spare   *tuple.Batch // recycled after a flush to keep vector capacity
}

func (s *shipProducer) push(ts []Tup) {
	var flush []Tup
	s.mu.Lock()
	s.pending = append(s.pending, ts...)
	if len(s.pending) >= flushRows {
		flush = s.pending
		s.pending = nil
	}
	s.mu.Unlock()
	if flush != nil {
		s.ex.sendShipBatch(flush)
	}
}

// pushCols receives a columnar batch from the operator pipeline. The
// batch is borrowed (pushCols contract): loopback hand-off copies it into
// the consumer's accumulator before returning; the remote path copies it
// into the pending coalescing batch.
func (s *shipProducer) pushCols(cb *colBatch) {
	if cb.prov != nil {
		s.push(cb.materialize())
		return
	}
	if s.ex.initiator == s.ex.self() {
		s.ex.sendShipCols(&cb.cols)
		return
	}
	s.mu.Lock()
	if s.cols == nil {
		s.cols = &tuple.Batch{}
	}
	if err := s.cols.AppendBatchInto(&cb.cols); err != nil {
		s.mu.Unlock()
		s.push(cb.materialize()) // shape mismatch: degrade to rows
		return
	}
	var flush *tuple.Batch
	if s.cols.N >= flushRows {
		flush, s.cols = s.cols, s.spare
		s.spare = nil
	}
	s.mu.Unlock()
	if flush != nil {
		s.ex.sendShipCols(flush)
		flush.Truncate(0)
		s.mu.Lock()
		if s.spare == nil {
			s.spare = flush
		}
		s.mu.Unlock()
	}
}

func (s *shipProducer) eos(phase uint32) {
	s.mu.Lock()
	flush := s.pending
	s.pending = nil
	flushCols := s.cols
	s.cols = nil
	s.mu.Unlock()
	if flushCols != nil && flushCols.N > 0 {
		s.ex.sendShipCols(flushCols)
	}
	if len(flush) > 0 {
		s.ex.sendShipBatch(flush)
	}
	s.ex.sendShipEOS(phase)
}

// shipConsumer collects results at the initiator, purging tainted rows on
// recovery. It signals each phase whose EOS wave completes on completeCh;
// the initiator's run loop accepts a completion only if that phase is still
// current — a completion that races with a failure detection is stale and
// ignored (§V-D: phases differentiate old in-flight data from recomputed
// results).
type shipConsumer struct {
	ex *executor

	mu         sync.Mutex
	rows       []Tup
	cols       *tuple.Batch // columnar accumulator (non-provenance batches)
	limit      int          // limit-only final pipeline: stop at N rows (-1: none)
	sealed     bool         // accepted completion: drop late arrivals
	eosFrom    map[uint32]map[ring.NodeID]bool
	statsBy    map[ring.NodeID]NodeStats
	spanBy     map[ring.NodeID]*obs.Span // remote fragment traces (last report wins)
	firedPhase map[uint32]bool
	completeCh chan uint32
}

func newShipConsumer(ex *executor) *shipConsumer {
	return &shipConsumer{
		ex:         ex,
		cols:       getResultBatch(),
		limit:      -1,
		eosFrom:    make(map[uint32]map[ring.NodeID]bool),
		statsBy:    make(map[ring.NodeID]NodeStats),
		firedPhase: make(map[uint32]bool),
		completeCh: make(chan uint32, 16),
	}
}

// collectedLocked is the number of result rows gathered so far.
func (s *shipConsumer) collectedLocked() int { return len(s.rows) + s.cols.N }

// limitReachedLocked reports whether a pushed-down limit is satisfied:
// with a limit-only final pipeline any N collected rows are a complete
// answer (the collected set is duplicate-free by the scan contract), so
// further shipments can be dropped and the query completed early.
func (s *shipConsumer) limitReachedLocked() bool {
	return s.limit >= 0 && s.collectedLocked() >= s.limit
}

// checkLimitLocked fires an early completion when the pushed-down limit
// has just been satisfied. firedPhase keeps it single-shot per phase; the
// later EOS wave for the same phase is then a no-op.
func (s *shipConsumer) checkLimitLocked() {
	if !s.limitReachedLocked() {
		return
	}
	phase := s.ex.phaseNow()
	if s.firedPhase[phase] {
		return
	}
	s.firedPhase[phase] = true
	select {
	case s.completeCh <- phase:
	default:
	}
}

func (s *shipConsumer) receive(ts []Tup) {
	ts = s.ex.filterTainted(ts)
	s.mu.Lock()
	if s.sealed || s.limitReachedLocked() {
		s.mu.Unlock()
		return
	}
	s.rows = append(s.rows, ts...)
	s.checkLimitLocked()
	s.mu.Unlock()
}

// receiveCols folds a columnar batch into the accumulator — one bulk copy
// per column vector, no per-row boxing. The batch is borrowed: the caller
// keeps ownership and may reuse it after the call returns.
func (s *shipConsumer) receiveCols(b *tuple.Batch) {
	if b.N == 0 {
		return
	}
	s.mu.Lock()
	if s.sealed || s.limitReachedLocked() {
		s.mu.Unlock()
		return
	}
	if err := s.cols.AppendBatchInto(b); err != nil {
		s.mu.Unlock()
		s.receive(tupsOfBatch(b)) // shape mismatch: degrade to rows
		return
	}
	s.checkLimitLocked()
	s.mu.Unlock()
}

// receiveWire handles an inbound ship payload (after the query-ID
// header): phase, provenance flag, batch body. Non-provenance bodies
// decode into a pooled scratch batch outside the consumer lock — decode
// (including flate decompression) of concurrent fan-in from many nodes
// must not serialize on s.mu — and then fold in with one locked
// vector-wise append. Provenance bodies take the row path (each tuple
// carries its own provenance set).
func (s *shipConsumer) receiveWire(rest []byte) error {
	if tr := s.ex.trace; tr != nil {
		t0 := tr.SinceUs()
		defer func() {
			s.ex.shipDecUs.Add(tr.SinceUs() - t0)
			s.ex.shipDecBatches.Add(1)
			s.ex.shipDecBytes.Add(int64(len(rest)))
		}()
	}
	if len(rest) >= 5 && rest[4] == 0 {
		scratch := getResultBatch()
		_, err := tuple.DecodeBatchInto(rest[5:], scratch)
		if err == nil {
			s.receiveCols(scratch)
			RecycleResultBatch(scratch)
			return nil
		}
		RecycleResultBatch(scratch)
		// Malformed body: fall through to the row decoder, which
		// re-validates and reports the error.
	}
	ts, _, err := decodeTupBatch(rest)
	if err != nil {
		return err
	}
	s.receive(ts)
	return nil
}

// tupsOfBatch materializes a borrowed batch into owned tuples.
func tupsOfBatch(b *tuple.Batch) []Tup {
	rows := b.Rows()
	ts := make([]Tup, len(rows))
	for i, r := range rows {
		ts[i] = Tup{Row: r}
	}
	return ts
}

func (s *shipConsumer) eosFromNode(from ring.NodeID, phase uint32, st NodeStats, span *obs.Span) {
	s.mu.Lock()
	m := s.eosFrom[phase]
	if m == nil {
		m = make(map[ring.NodeID]bool)
		s.eosFrom[phase] = m
	}
	m[from] = true
	s.statsBy[from] = st
	if span != nil {
		if s.spanBy == nil {
			s.spanBy = make(map[ring.NodeID]*obs.Span)
		}
		s.spanBy[from] = span
	}
	s.completeLocked()
	s.mu.Unlock()
}

// remoteSpans returns the last-reported fragment span of each remote
// node, for attachment under the trace root at completion.
func (s *shipConsumer) remoteSpans() []*obs.Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*obs.Span, 0, len(s.spanBy))
	for _, sp := range s.spanBy {
		out = append(out, sp)
	}
	return out
}

// purge drops tainted collected rows (recovery at the initiator).
func (s *shipConsumer) purge(failed Prov) {
	s.mu.Lock()
	kept := s.rows[:0]
	for _, t := range s.rows {
		if !t.Prov.Intersects(failed) {
			kept = append(kept, t)
		}
	}
	s.rows = kept
	s.mu.Unlock()
}

func (s *shipConsumer) recheck() {
	s.mu.Lock()
	s.completeLocked()
	s.mu.Unlock()
}

func (s *shipConsumer) completeLocked() {
	phase := s.ex.phaseNow()
	if s.firedPhase[phase] {
		return
	}
	m := s.eosFrom[phase]
	for _, id := range s.ex.liveMembers() {
		if !m[id] {
			return
		}
	}
	s.firedPhase[phase] = true
	select {
	case s.completeCh <- phase:
	default:
	}
}

// seal latches the consumer shut — late straggler shipments are dropped —
// and returns the collected answer: the row tuples and the columnar
// accumulator. Called exactly once, when the initiator accepts a
// completion for the current phase.
func (s *shipConsumer) seal() ([]Tup, *tuple.Batch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sealed = true
	return s.rows, s.cols
}

// nodeStats returns the per-node counters reported with ship EOS.
func (s *shipConsumer) nodeStats() map[ring.NodeID]NodeStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[ring.NodeID]NodeStats, len(s.statsBy))
	for k, v := range s.statsBy {
		out[k] = v
	}
	return out
}
