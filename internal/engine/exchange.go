package engine

import (
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"

	"orchestra/internal/keyspace"
	"orchestra/internal/obs"
	"orchestra/internal/ring"
	"orchestra/internal/tuple"
)

// flushRows is the destination-batch size: tuples are accumulated per
// destination and shipped in compressed blocks (§V-A).
const flushRows = 1024

// --- batch wire codec ---
//
// Batches carry the rows (columnar, compressed — tuple.EncodeBatch), the
// execution phase, and a dictionary-coded provenance column: distinct
// provenance sets are listed once, each row referencing its set by index.
// This keeps the provenance overhead to roughly one byte per tuple, which
// is how the paper achieves its ≤2% traffic overhead for recovery support.

func encodeTupBatch(ts []Tup, phase uint32, withProv bool) ([]byte, error) {
	out := binary.BigEndian.AppendUint32(nil, phase)
	if withProv {
		out = append(out, 1)
		dict := make(map[string]int)
		var keys []string
		idxs := make([]int, len(ts))
		for i, t := range ts {
			k := t.Prov.Key()
			id, ok := dict[k]
			if !ok {
				id = len(keys)
				dict[k] = id
				keys = append(keys, k)
			}
			idxs[i] = id
		}
		out = binary.AppendUvarint(out, uint64(len(keys)))
		for _, k := range keys {
			out = binary.AppendUvarint(out, uint64(len(k)))
			out = append(out, k...)
		}
		out = binary.AppendUvarint(out, uint64(len(idxs)))
		for _, id := range idxs {
			out = binary.AppendUvarint(out, uint64(id))
		}
	} else {
		out = append(out, 0)
	}
	rows := make([]tuple.Row, len(ts))
	for i, t := range ts {
		rows[i] = t.Row
	}
	body, err := tuple.EncodeBatch(rows)
	if err != nil {
		return nil, err
	}
	return append(out, body...), nil
}

func decodeTupBatch(data []byte) ([]Tup, uint32, error) {
	if len(data) < 5 {
		return nil, 0, errors.New("engine: short batch")
	}
	phase := binary.BigEndian.Uint32(data)
	withProv := data[4] == 1
	off := 5
	var provs []Prov
	var idxs []uint64
	if withProv {
		nDict, n := binary.Uvarint(data[off:])
		if n <= 0 || nDict > 1<<20 {
			return nil, 0, errors.New("engine: bad prov dict")
		}
		off += n
		provs = make([]Prov, nDict)
		for i := range provs {
			l, n := binary.Uvarint(data[off:])
			if n <= 0 || off+n+int(l) > len(data) {
				return nil, 0, errors.New("engine: bad prov entry")
			}
			off += n
			provs[i] = ProvFromKey(string(data[off : off+int(l)]))
			off += int(l)
		}
	}
	if withProv {
		nIdx, n := binary.Uvarint(data[off:])
		if n <= 0 || nIdx > 1<<28 {
			return nil, 0, errors.New("engine: bad prov index count")
		}
		off += n
		idxs = make([]uint64, nIdx)
		for i := range idxs {
			v, n := binary.Uvarint(data[off:])
			if n <= 0 {
				return nil, 0, errors.New("engine: bad prov index")
			}
			idxs[i] = v
			off += n
		}
	}
	rows, err := tuple.DecodeBatch(data[off:])
	if err != nil {
		return nil, 0, err
	}
	if withProv && len(idxs) != len(rows) {
		return nil, 0, errors.New("engine: prov index count mismatch")
	}
	ts := make([]Tup, len(rows))
	for i, r := range rows {
		ts[i] = Tup{Row: r, Phase: phase}
		if withProv {
			id := idxs[i]
			if id >= uint64(len(provs)) {
				return nil, 0, errors.New("engine: prov index out of range")
			}
			ts[i].Prov = provs[id].Clone()
		}
	}
	return ts, phase, nil
}

// --- exchange producer (rehash) ---

// cachedTup is a produced tuple retained for replay, with its routing hash
// and the node it was last sent to. Replay resends exactly the entries
// whose last destination has failed: entries routed by the recovery table
// (a concurrent push after the table swap) must not be sent twice.
type cachedTup struct {
	t      Tup
	h      keyspace.Key
	sentTo ring.NodeID
}

// exchProducer is the sending half of a rehash: it partitions its input by
// hash of the key columns, batches per destination, and retains an output
// cache so that tuples sent to a node that later fails can be recreated
// without redoing the upstream work (§V-D stage 4).
type exchProducer struct {
	ex     *executor
	exchID int
	keys   []int

	mu      sync.Mutex
	pending map[ring.NodeID][]Tup
	cache   []cachedTup
}

func newExchProducer(ex *executor, exchID int, keys []int) *exchProducer {
	return &exchProducer{
		ex:      ex,
		exchID:  exchID,
		keys:    keys,
		pending: make(map[ring.NodeID][]Tup),
	}
}

func (p *exchProducer) routeHash(row tuple.Row) keyspace.Key {
	return keyspace.Hash(tuple.EncodeKey(row, p.keys))
}

func (p *exchProducer) push(ts []Tup) {
	var flushes []flushUnit
	p.mu.Lock()
	// The routing table must be read inside the cache critical section:
	// replay() holds the same lock after the recovery table is installed,
	// so every cache entry is either scanned by replay or routed by the
	// recovery table — never routed to a dead node and missed by replay.
	table := p.ex.currentTable()
	for _, t := range ts {
		h := p.routeHash(t.Row)
		dest := table.Owner(h)
		if p.ex.opts.Provenance {
			p.cache = append(p.cache, cachedTup{t: t, h: h, sentTo: dest})
		}
		p.pending[dest] = append(p.pending[dest], t)
		if len(p.pending[dest]) >= flushRows {
			flushes = append(flushes, flushUnit{dest: dest, ts: p.pending[dest]})
			p.pending[dest] = nil
		}
	}
	p.mu.Unlock()
	for _, f := range flushes {
		p.ex.sendExchBatch(p.exchID, f.dest, f.ts)
	}
}

type flushUnit struct {
	dest ring.NodeID
	ts   []Tup
}

// eos flushes all pending batches and broadcasts end-of-stream for the
// current phase to every live node (§V-B: the rehash operator cannot
// complete until its data is fully delivered; per-link FIFO ordering plus
// the trailing EOS marker provide that guarantee).
func (p *exchProducer) eos(phase uint32) {
	p.mu.Lock()
	flushes := make([]flushUnit, 0, len(p.pending))
	for dest, ts := range p.pending {
		if len(ts) > 0 {
			flushes = append(flushes, flushUnit{dest: dest, ts: ts})
		}
	}
	p.pending = make(map[ring.NodeID][]Tup)
	p.mu.Unlock()
	for _, f := range flushes {
		p.ex.sendExchBatch(p.exchID, f.dest, f.ts)
	}
	p.ex.broadcastExchEOS(p.exchID, phase)
}

// replay re-sends cached clean tuples whose last destination has since
// failed, now routed by the recovery table and tagged with the new phase.
// Tainted cache entries are dropped: the upstream restart will regenerate
// them. Entries already routed by the recovery table (by a push concurrent
// with the table swap) are left alone — resending them would duplicate.
func (p *exchProducer) replay(failed Prov, newTable *ring.Table, newPhase uint32) {
	p.mu.Lock()
	kept := p.cache[:0]
	byDest := make(map[ring.NodeID][]Tup)
	for _, c := range p.cache {
		if c.t.Prov.Intersects(failed) {
			continue
		}
		if !newTable.Contains(c.sentTo) {
			c.sentTo = newTable.Owner(c.h)
			t := c.t
			t.Phase = newPhase
			byDest[c.sentTo] = append(byDest[c.sentTo], t)
		}
		kept = append(kept, c)
	}
	p.cache = kept
	p.mu.Unlock()

	for dest, ts := range byDest {
		p.ex.sendExchBatch(p.exchID, dest, ts)
	}
}

// --- exchange consumer ---

// exchConsumer is the receiving half of a rehash on one node: it filters
// tainted tuples, stamps the local node into each tuple's provenance, and
// tracks per-phase end-of-stream from every live producer.
type exchConsumer struct {
	ex  *executor
	out sink

	mu         sync.Mutex
	eosFrom    map[uint32]map[ring.NodeID]bool
	firedPhase map[uint32]bool
}

func newExchConsumer(ex *executor, out sink) *exchConsumer {
	return &exchConsumer{
		ex:         ex,
		out:        out,
		eosFrom:    make(map[uint32]map[ring.NodeID]bool),
		firedPhase: make(map[uint32]bool),
	}
}

// receive processes an incoming batch (possibly from an earlier phase —
// clean tuples from live nodes remain valid; tainted ones are dropped).
func (c *exchConsumer) receive(ts []Tup) {
	ts = c.ex.filterAndStamp(ts)
	if len(ts) > 0 {
		c.out.push(ts)
	}
}

// eosFromNode records a producer's end-of-stream for a phase and fires
// downstream EOS when every live node has finished the current phase.
func (c *exchConsumer) eosFromNode(from ring.NodeID, phase uint32) {
	c.mu.Lock()
	m := c.eosFrom[phase]
	if m == nil {
		m = make(map[ring.NodeID]bool)
		c.eosFrom[phase] = m
	}
	m[from] = true
	fire, donePhase := c.completeLocked()
	c.mu.Unlock()
	if fire {
		c.out.eos(donePhase)
	}
}

// recheck re-evaluates completion (called after recovery changes the live
// set or phase).
func (c *exchConsumer) recheck() {
	c.mu.Lock()
	fire, donePhase := c.completeLocked()
	c.mu.Unlock()
	if fire {
		c.out.eos(donePhase)
	}
}

func (c *exchConsumer) completeLocked() (bool, uint32) {
	phase := c.ex.phaseNow()
	if c.firedPhase[phase] {
		return false, phase
	}
	m := c.eosFrom[phase]
	for _, id := range c.ex.liveMembers() {
		if !m[id] {
			return false, phase
		}
	}
	c.firedPhase[phase] = true
	return true, phase
}

// --- ship ---

// shipProducer sends final fragment output to the query initiator
// (Table I, ship). It is batch-aware: columnar batches from the operator
// pipeline stay columnar — on the initiator's own node they hand over to
// the ship consumer directly (which appends their vectors into its
// columnar accumulator), remotely they coalesce into a pending batch and
// ship batch-encoded. Row pushes (provenance mode, covering scans,
// stateful operators) keep the original path.
type shipProducer struct {
	ex *executor

	mu      sync.Mutex
	pending []Tup
	cols    *tuple.Batch // remote coalescing; nil until first columnar push
	spare   *tuple.Batch // recycled after a flush to keep vector capacity
}

func (s *shipProducer) push(ts []Tup) {
	var flush []Tup
	s.mu.Lock()
	s.pending = append(s.pending, ts...)
	// Top-K mode buffers the whole fragment output: nothing ships until
	// eos sorts and truncates it to the local top K.
	if s.ex.mode != shipTopK && len(s.pending) >= flushRows {
		flush = s.pending
		s.pending = nil
	}
	s.mu.Unlock()
	if flush != nil {
		s.ex.sendShipBatch(flush)
	}
}

// pushCols receives a columnar batch from the operator pipeline. The
// batch is borrowed (pushCols contract): loopback hand-off copies it into
// the consumer's accumulator before returning; the remote path copies it
// into the pending coalescing batch.
func (s *shipProducer) pushCols(cb *colBatch) {
	if cb.prov != nil {
		s.push(cb.materialize())
		return
	}
	if s.ex.mode == shipTopK {
		// Buffer locally (even on the initiator's own fragment): the
		// whole fragment output is sorted and truncated to K at eos
		// before anything ships.
		s.mu.Lock()
		if s.cols == nil {
			s.cols = &tuple.Batch{}
		}
		err := s.cols.AppendBatchInto(&cb.cols)
		s.mu.Unlock()
		if err != nil {
			s.push(cb.materialize()) // shape mismatch: degrade to rows
		}
		return
	}
	if s.ex.initiator == s.ex.self() {
		s.ex.sendShipCols(&cb.cols)
		return
	}
	s.mu.Lock()
	if s.cols == nil {
		s.cols = &tuple.Batch{}
	}
	if err := s.cols.AppendBatchInto(&cb.cols); err != nil {
		s.mu.Unlock()
		s.push(cb.materialize()) // shape mismatch: degrade to rows
		return
	}
	var flush *tuple.Batch
	if s.cols.N >= flushRows {
		flush, s.cols = s.cols, s.spare
		s.spare = nil
	}
	s.mu.Unlock()
	if flush != nil {
		s.ex.sendShipCols(flush)
		flush.Truncate(0)
		s.mu.Lock()
		if s.spare == nil {
			s.spare = flush
		}
		s.mu.Unlock()
	}
}

func (s *shipProducer) eos(phase uint32) {
	s.mu.Lock()
	flush := s.pending
	s.pending = nil
	flushCols := s.cols
	s.cols = nil
	s.mu.Unlock()
	if s.ex.mode == shipTopK {
		s.eosTopK(phase, flush, flushCols)
		return
	}
	if flushCols != nil && flushCols.N > 0 {
		s.ex.sendShipCols(flushCols)
	}
	if len(flush) > 0 {
		s.ex.sendShipBatch(flush)
	}
	s.ex.sendShipEOS(phase)
}

// eosTopK is the fragment half of the top-K pushdown: sort the buffered
// fragment output with the plan's compiled comparators, truncate to the
// merged row budget K, and ship only that — at most K rows per fragment
// reach the initiator. Chunked shipments of one sorted run stay ordered
// end to end (per-link FIFO), so the initiator's per-source run is
// sorted by construction.
func (s *shipProducer) eosTopK(phase uint32, rows []Tup, cols *tuple.Batch) {
	keys, k := topKParams(s.ex.plan)
	switch {
	case len(rows) == 0 && cols != nil && cols.N > 0:
		sortCols(cols, keys)
		if cols.N > k {
			cols.Truncate(k)
		}
		var span tuple.Batch
		for lo := 0; lo < cols.N; lo += flushRows {
			hi := lo + flushRows
			if hi > cols.N {
				hi = cols.N
			}
			cols.Slice(lo, hi, &span)
			s.ex.sendShipCols(&span)
		}
	case len(rows) > 0:
		if cols != nil && cols.N > 0 {
			// Mixed buffering (a mid-stream shape degrade): fold the
			// columnar part into the row form and sort once.
			for _, r := range cols.Rows() {
				rows = append(rows, Tup{Row: r, Phase: phase})
			}
		}
		sortTups(rows, keys)
		if len(rows) > k {
			rows = rows[:k]
		}
		for lo := 0; lo < len(rows); lo += flushRows {
			hi := lo + flushRows
			if hi > len(rows) {
				hi = len(rows)
			}
			s.ex.sendShipBatch(rows[lo:hi])
		}
	}
	s.ex.sendShipEOS(phase)
}

// shipConsumer collects results at the initiator, purging tainted rows on
// recovery. It signals each phase whose EOS wave completes on completeCh;
// the initiator's run loop accepts a completion only if that phase is still
// current — a completion that races with a failure detection is stale and
// ignored (§V-D: phases differentiate old in-flight data from recomputed
// results).
type shipConsumer struct {
	ex *executor

	mu         sync.Mutex
	rows       []Tup
	cols       *tuple.Batch // columnar accumulator (non-provenance batches)
	limit      int          // limit-only final pipeline: stop at N rows (-1: none)
	sealed     bool         // accepted completion: drop late arrivals
	eosFrom    map[uint32]map[ring.NodeID]bool
	statsBy    map[ring.NodeID]NodeStats
	spanBy     map[ring.NodeID]*obs.Span // remote fragment traces (last report wins)
	firedPhase map[uint32]bool
	completeCh chan uint32

	// Top-K pushdown (shipTopK): one sorted run per source node, kept
	// separate for the K-way merge at seal. A per-source shape degrade
	// lands that source's rows in runsRows instead.
	runsCols map[ring.NodeID]*tuple.Batch
	runsRows map[ring.NodeID][]Tup

	// Partial-agg pushdown (shipAggMerge): arriving partial rows fold
	// straight into the merge accumulator — initiator memory is
	// O(groups), not O(shipped partials).
	agg        *finalAggAcc
	aggScratch tuple.Row
	aggRecv    int64 // partial rows folded (trace accounting)

	// Streamed emission (shipStream with a sink): receive never blocks —
	// it appends as before and nudges the drainer goroutine, which swaps
	// the accumulator out and emits to the sink (possibly blocking on
	// wire credit there, never on a transport delivery loop).
	sink      StreamSink
	streamFin *streamFinalState
	notify    chan struct{}
	stopDrain chan struct{}
	drainDone chan struct{}
	stopOnce  sync.Once
	sinkFail  chan error
	streamed  atomic.Int64
	peak      int // high-water mark of rows buffered while streaming
}

func newShipConsumer(ex *executor) *shipConsumer {
	return &shipConsumer{
		ex:         ex,
		cols:       getResultBatch(),
		limit:      -1,
		eosFrom:    make(map[uint32]map[ring.NodeID]bool),
		statsBy:    make(map[ring.NodeID]NodeStats),
		firedPhase: make(map[uint32]bool),
		completeCh: make(chan uint32, 16),
	}
}

// startStream arms streamed emission: subsequent arrivals wake a drainer
// goroutine that hands accumulated batches to sink during execution.
// Called once, before execution starts.
func (s *shipConsumer) startStream(sink StreamSink, final []FinalOp) {
	s.sink = sink
	s.streamFin = newStreamFinalState(final)
	s.notify = make(chan struct{}, 1)
	s.stopDrain = make(chan struct{})
	s.drainDone = make(chan struct{})
	s.sinkFail = make(chan error, 1)
	go s.drainLoop()
}

// stopStreaming seals the consumer and joins the drainer (which performs
// one final drain of everything accumulated before the seal). Idempotent;
// a no-op when streaming was never armed.
func (s *shipConsumer) stopStreaming() {
	if s.sink == nil {
		return
	}
	s.stopOnce.Do(func() {
		s.mu.Lock()
		s.sealed = true
		s.mu.Unlock()
		close(s.stopDrain)
		<-s.drainDone
	})
}

// sinkFailCh exposes the drainer's failure channel to the run loop (nil —
// blocking forever in a select — when streaming is not armed).
func (s *shipConsumer) sinkFailCh() <-chan error { return s.sinkFail }

func (s *shipConsumer) notifyDrainLocked() {
	if s.sink == nil {
		return
	}
	if c := s.collectedLocked(); c > s.peak {
		s.peak = c
	}
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// drainLoop is the initiator-side drainer: it swaps the accumulated
// rows/batch out under the lock (replacing the columnar accumulator with
// a fresh arena batch) and emits them through the sink. Emission may
// block on the consumer (wire credit); receive never does. Exits on a
// sink error (recording it for the run loop) or after the final drain
// once stopStreaming closed stopDrain.
func (s *shipConsumer) drainLoop() {
	defer close(s.drainDone)
	for {
		stopping := false
		select {
		case <-s.notify:
			select {
			case <-s.stopDrain:
				stopping = true
			default:
			}
		case <-s.stopDrain:
			stopping = true
		}
		s.mu.Lock()
		rows := s.rows
		s.rows = nil
		var cols *tuple.Batch
		if s.cols.N > 0 {
			cols = s.cols
			s.cols = getResultBatch()
		}
		s.mu.Unlock()
		if err := s.emitChunk(rows, cols); err != nil {
			select {
			case s.sinkFail <- err:
			default:
			}
			s.ex.aborted.Store(true)
			return
		}
		if stopping {
			return
		}
	}
}

// emitChunk pushes one drained chunk through the streaming final
// pipeline and into the sink. The drained batch is recycled afterwards.
func (s *shipConsumer) emitChunk(ts []Tup, cols *tuple.Batch) error {
	if len(ts) > 0 {
		rows := make([]tuple.Row, len(ts))
		for i, t := range ts {
			rows[i] = t.Row
		}
		rows = s.streamFin.applyRows(rows)
		if len(rows) > 0 {
			if err := s.sink.StreamRows(rows); err != nil {
				return err
			}
			s.streamed.Add(int64(len(rows)))
		}
	}
	if cols == nil {
		return nil
	}
	defer RecycleResultBatch(cols)
	b, rows, err := s.streamFin.applyCols(cols)
	if err != nil {
		return err
	}
	switch {
	case b != nil && b.N > 0:
		if err := s.sink.StreamCols(b); err != nil {
			return err
		}
		s.streamed.Add(int64(b.N))
	case len(rows) > 0:
		if err := s.sink.StreamRows(rows); err != nil {
			return err
		}
		s.streamed.Add(int64(len(rows)))
	}
	return nil
}

// collectedLocked is the number of result rows gathered so far.
func (s *shipConsumer) collectedLocked() int { return len(s.rows) + s.cols.N }

// limitReachedLocked reports whether a pushed-down limit is satisfied:
// with a limit-only final pipeline any N collected rows are a complete
// answer (the collected set is duplicate-free by the scan contract), so
// further shipments can be dropped and the query completed early.
func (s *shipConsumer) limitReachedLocked() bool {
	return s.limit >= 0 && s.collectedLocked() >= s.limit
}

// checkLimitLocked fires an early completion when the pushed-down limit
// has just been satisfied. firedPhase keeps it single-shot per phase; the
// later EOS wave for the same phase is then a no-op.
func (s *shipConsumer) checkLimitLocked() {
	if !s.limitReachedLocked() {
		return
	}
	phase := s.ex.phaseNow()
	if s.firedPhase[phase] {
		return
	}
	s.firedPhase[phase] = true
	select {
	case s.completeCh <- phase:
	default:
	}
}

func (s *shipConsumer) receive(from ring.NodeID, ts []Tup) {
	ts = s.ex.filterTainted(ts)
	s.mu.Lock()
	if s.sealed || s.limitReachedLocked() {
		s.mu.Unlock()
		return
	}
	switch s.ex.mode {
	case shipTopK:
		if s.runsRows == nil {
			s.runsRows = make(map[ring.NodeID][]Tup)
		}
		s.runsRows[from] = append(s.runsRows[from], ts...)
	case shipAggMerge:
		s.foldAggLocked(ts)
	default:
		s.rows = append(s.rows, ts...)
		s.checkLimitLocked()
		s.notifyDrainLocked()
	}
	s.mu.Unlock()
}

// receiveCols folds a columnar batch into the accumulator — one bulk copy
// per column vector, no per-row boxing. The batch is borrowed: the caller
// keeps ownership and may reuse it after the call returns. In top-K mode
// it instead appends onto from's sorted run (chunks of one run arrive in
// order — per-link FIFO — so the run stays sorted); in partial-agg mode
// the rows fold straight into the merge accumulator.
func (s *shipConsumer) receiveCols(from ring.NodeID, b *tuple.Batch) {
	if b.N == 0 {
		return
	}
	s.mu.Lock()
	if s.sealed || s.limitReachedLocked() {
		s.mu.Unlock()
		return
	}
	switch s.ex.mode {
	case shipTopK:
		if s.runsCols == nil {
			s.runsCols = make(map[ring.NodeID]*tuple.Batch)
		}
		run := s.runsCols[from]
		if run == nil {
			run = getResultBatch()
			s.runsCols[from] = run
		}
		if err := run.AppendBatchInto(b); err != nil {
			s.mu.Unlock()
			s.receive(from, tupsOfBatch(b)) // shape mismatch: degrade to rows
			return
		}
	case shipAggMerge:
		for i := 0; i < b.N; i++ {
			s.aggScratch = b.Row(i, s.aggScratch)
			s.agg.add(s.aggScratch)
		}
		s.aggRecv += int64(b.N)
	default:
		if err := s.cols.AppendBatchInto(b); err != nil {
			s.mu.Unlock()
			s.receive(from, tupsOfBatch(b)) // shape mismatch: degrade to rows
			return
		}
		s.checkLimitLocked()
		s.notifyDrainLocked()
	}
	s.mu.Unlock()
}

// foldAggLocked folds partial-aggregate tuples into the merge
// accumulator (shipAggMerge). add copies group values out of the row, so
// the tuples need not survive the call.
func (s *shipConsumer) foldAggLocked(ts []Tup) {
	for _, t := range ts {
		s.agg.add(t.Row)
	}
	s.aggRecv += int64(len(ts))
}

// receiveWire handles an inbound ship payload (after the query-ID
// header): phase, provenance flag, batch body. Non-provenance bodies
// decode into a pooled scratch batch outside the consumer lock — decode
// (including flate decompression) of concurrent fan-in from many nodes
// must not serialize on s.mu — and then fold in with one locked
// vector-wise append. Provenance bodies take the row path (each tuple
// carries its own provenance set).
func (s *shipConsumer) receiveWire(from ring.NodeID, rest []byte) error {
	if tr := s.ex.trace; tr != nil {
		t0 := tr.SinceUs()
		defer func() {
			s.ex.shipDecUs.Add(tr.SinceUs() - t0)
			s.ex.shipDecBatches.Add(1)
			s.ex.shipDecBytes.Add(int64(len(rest)))
		}()
	}
	if len(rest) >= 5 && rest[4] == 0 {
		scratch := getResultBatch()
		_, err := tuple.DecodeBatchInto(rest[5:], scratch)
		if err == nil {
			s.receiveCols(from, scratch)
			RecycleResultBatch(scratch)
			return nil
		}
		RecycleResultBatch(scratch)
		// Malformed body: fall through to the row decoder, which
		// re-validates and reports the error.
	}
	ts, _, err := decodeTupBatch(rest)
	if err != nil {
		return err
	}
	s.receive(from, ts)
	return nil
}

// tupsOfBatch materializes a borrowed batch into owned tuples.
func tupsOfBatch(b *tuple.Batch) []Tup {
	rows := b.Rows()
	ts := make([]Tup, len(rows))
	for i, r := range rows {
		ts[i] = Tup{Row: r}
	}
	return ts
}

func (s *shipConsumer) eosFromNode(from ring.NodeID, phase uint32, st NodeStats, span *obs.Span) {
	s.mu.Lock()
	m := s.eosFrom[phase]
	if m == nil {
		m = make(map[ring.NodeID]bool)
		s.eosFrom[phase] = m
	}
	m[from] = true
	s.statsBy[from] = st
	if span != nil {
		if s.spanBy == nil {
			s.spanBy = make(map[ring.NodeID]*obs.Span)
		}
		s.spanBy[from] = span
	}
	s.completeLocked()
	s.mu.Unlock()
}

// remoteSpans returns the last-reported fragment span of each remote
// node, for attachment under the trace root at completion.
func (s *shipConsumer) remoteSpans() []*obs.Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*obs.Span, 0, len(s.spanBy))
	for _, sp := range s.spanBy {
		out = append(out, sp)
	}
	return out
}

// purge drops tainted collected rows (recovery at the initiator).
func (s *shipConsumer) purge(failed Prov) {
	s.mu.Lock()
	kept := s.rows[:0]
	for _, t := range s.rows {
		if !t.Prov.Intersects(failed) {
			kept = append(kept, t)
		}
	}
	s.rows = kept
	s.mu.Unlock()
}

func (s *shipConsumer) recheck() {
	s.mu.Lock()
	s.completeLocked()
	s.mu.Unlock()
}

func (s *shipConsumer) completeLocked() {
	phase := s.ex.phaseNow()
	if s.firedPhase[phase] {
		return
	}
	m := s.eosFrom[phase]
	for _, id := range s.ex.liveMembers() {
		if !m[id] {
			return
		}
	}
	s.firedPhase[phase] = true
	select {
	case s.completeCh <- phase:
	default:
	}
}

// seal latches the consumer shut — late straggler shipments are dropped —
// and returns the collected answer: the row tuples and the columnar
// accumulator. Called exactly once, when the initiator accepts a
// completion for the current phase.
func (s *shipConsumer) seal() ([]Tup, *tuple.Batch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sealed = true
	return s.rows, s.cols
}

// sealTopK latches the consumer and merge-truncates the per-source
// sorted runs to the top K. When every run stayed columnar it returns
// the K-way merged batch (shaped like seal's columnar return); a
// row-form or shape-degraded run falls back to concatenating everything
// as rows — the full final pipeline re-sorts those, so correctness never
// depends on the merge. Runs are iterated in snapshot member order so
// tie-breaking is deterministic for a given placement.
func (s *shipConsumer) sealTopK(keys []SortKey, k int) ([]Tup, *tuple.Batch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sealed = true
	members := s.ex.snapshot.Members()
	if len(s.runsRows) == 0 {
		runs := make([]*tuple.Batch, 0, len(s.runsCols))
		for _, id := range members {
			if b := s.runsCols[id]; b != nil {
				runs = append(runs, b)
			}
		}
		merged, err := mergeTruncateCols(runs, keys, k)
		if err == nil {
			for _, b := range runs {
				RecycleResultBatch(b)
			}
			s.runsCols = nil
			return nil, merged
		}
	}
	var ts []Tup
	for _, id := range members {
		ts = append(ts, s.runsRows[id]...)
		if b := s.runsCols[id]; b != nil && b.N > 0 {
			ts = append(ts, tupsOfBatch(b)...)
		}
	}
	for _, b := range s.runsCols {
		RecycleResultBatch(b)
	}
	s.runsCols = nil
	return ts, s.cols
}

// sealAggMerge latches the consumer and emits the merged aggregate rows
// accumulated incrementally from the fragments' partial states.
func (s *shipConsumer) sealAggMerge() []tuple.Row {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sealed = true
	return s.agg.rows()
}

// streamedRows reports rows already emitted to the sink (0 when not
// streaming) — once positive, a restart would duplicate output.
func (s *shipConsumer) streamedRows() int64 { return s.streamed.Load() }

// peakBuffered is the streaming-mode high-water mark of rows buffered at
// the initiator between drains.
func (s *shipConsumer) peakBuffered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peak
}

// nodeStats returns the per-node counters reported with ship EOS.
func (s *shipConsumer) nodeStats() map[ring.NodeID]NodeStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[ring.NodeID]NodeStats, len(s.statsBy))
	for k, v := range s.statsBy {
		out[k] = v
	}
	return out
}
