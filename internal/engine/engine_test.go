package engine

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"orchestra/internal/cluster"
	"orchestra/internal/transport"
	"orchestra/internal/tuple"
	"orchestra/internal/vstore"
)

// harness is a local simulated cluster with one engine per node.
type harness struct {
	t       *testing.T
	local   *cluster.Local
	engines []*Engine
	schemas map[string]*tuple.Schema
	data    map[string][]tuple.Row
}

func newHarness(t *testing.T, n int) *harness {
	t.Helper()
	local, err := cluster.NewLocal(n, cluster.Config{Replication: 3}, transport.Config{})
	if err != nil {
		t.Fatalf("NewLocal: %v", err)
	}
	t.Cleanup(local.Shutdown)
	h := &harness{
		t:       t,
		local:   local,
		schemas: make(map[string]*tuple.Schema),
		data:    make(map[string][]tuple.Row),
	}
	for _, node := range local.Nodes() {
		h.engines = append(h.engines, New(node))
	}
	return h
}

func (h *harness) ctx() context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	h.t.Cleanup(cancel)
	return ctx
}

// create registers a relation on the cluster and in the oracle.
func (h *harness) create(s *tuple.Schema) {
	h.t.Helper()
	if err := h.local.Node(0).CreateRelation(h.ctx(), s); err != nil {
		h.t.Fatalf("CreateRelation(%s): %v", s.Relation, err)
	}
	h.schemas[s.Relation] = s
}

// publish inserts rows as one published batch and records them in the
// oracle's current state.
func (h *harness) publish(relation string, rows []tuple.Row) tuple.Epoch {
	h.t.Helper()
	ups := make([]vstore.Update, len(rows))
	for i, r := range rows {
		ups[i] = vstore.Update{Op: vstore.OpInsert, Row: r}
	}
	e, err := h.local.Node(0).Publish(h.ctx(), relation, ups)
	if err != nil {
		h.t.Fatalf("Publish(%s): %v", relation, err)
	}
	h.data[relation] = append(h.data[relation], rows...)
	return e
}

// run executes the plan from node 0 and checks the answer against the
// reference evaluator.
func (h *harness) run(p *Plan, opts Options) *Result {
	h.t.Helper()
	return h.runFrom(0, p, opts)
}

func (h *harness) runFrom(initiator int, p *Plan, opts Options) *Result {
	h.t.Helper()
	res, err := h.engines[initiator].Run(h.ctx(), p, opts)
	if err != nil {
		h.t.Fatalf("Run: %v", err)
	}
	h.check(p, res)
	return res
}

func (h *harness) check(p *Plan, res *Result) {
	h.t.Helper()
	want, err := refEval(p, h.data, h.schemas)
	if err != nil {
		h.t.Fatalf("refEval: %v", err)
	}
	if !rowsEqual(res.Rows, want) {
		h.t.Fatalf("wrong answer: %s", diffSummary(res.Rows, want))
	}
}

// --- test schemas and data generators ---

func schemaR() *tuple.Schema {
	return tuple.MustSchema("R",
		[]tuple.Column{{Name: "x", Type: tuple.Int64}, {Name: "y", Type: tuple.Int64}}, "x")
}

func schemaS() *tuple.Schema {
	return tuple.MustSchema("S",
		[]tuple.Column{{Name: "y", Type: tuple.Int64}, {Name: "z", Type: tuple.Int64}}, "y")
}

func schemaT() *tuple.Schema {
	return tuple.MustSchema("T",
		[]tuple.Column{{Name: "z", Type: tuple.Int64}, {Name: "w", Type: tuple.String}}, "z")
}

func genR(n int, rng *rand.Rand) []tuple.Row {
	rows := make([]tuple.Row, n)
	for i := range rows {
		rows[i] = tuple.Row{tuple.I(int64(i)), tuple.I(int64(rng.Intn(n/4 + 1)))}
	}
	return rows
}

func genS(n int, rng *rand.Rand) []tuple.Row {
	rows := make([]tuple.Row, n)
	for i := range rows {
		rows[i] = tuple.Row{tuple.I(int64(i)), tuple.I(int64(rng.Intn(100)))}
	}
	return rows
}

func genT(n int) []tuple.Row {
	rows := make([]tuple.Row, n)
	for i := range rows {
		rows[i] = tuple.Row{tuple.I(int64(i)), tuple.S(fmt.Sprintf("w%04d", i))}
	}
	return rows
}

// --- basic execution tests ---

func TestCopyQuery(t *testing.T) {
	h := newHarness(t, 4)
	h.create(schemaR())
	h.publish("R", genR(500, rand.New(rand.NewSource(1))))

	p := &Plan{Root: &ScanNode{Relation: "R"}}
	res := h.run(p, Options{})
	if len(res.Rows) != 500 {
		t.Fatalf("got %d rows, want 500", len(res.Rows))
	}
	if res.Phases != 1 {
		t.Fatalf("phases = %d, want 1", res.Phases)
	}
}

func TestCopySingleNode(t *testing.T) {
	h := newHarness(t, 1)
	h.create(schemaR())
	h.publish("R", genR(200, rand.New(rand.NewSource(2))))
	h.run(&Plan{Root: &ScanNode{Relation: "R"}}, Options{})
}

func TestCoveringIndexScan(t *testing.T) {
	h := newHarness(t, 4)
	h.create(schemaR())
	h.publish("R", genR(300, rand.New(rand.NewSource(3))))
	p := &Plan{Root: &ScanNode{Relation: "R", Covering: true}}
	res := h.run(p, Options{})
	for _, r := range res.Rows {
		if len(r) != 1 {
			t.Fatalf("covering scan row has arity %d, want 1", len(r))
		}
	}
}

func TestSargablePredicate(t *testing.T) {
	h := newHarness(t, 4)
	h.create(schemaR())
	h.publish("R", genR(400, rand.New(rand.NewSource(4))))
	// Key equality via the order-preserving key encoding.
	pred := cluster.EqPred(schemaR(), tuple.I(42))
	p := &Plan{Root: &ScanNode{Relation: "R", Pred: KeyPredOf(pred)}}
	res := h.run(p, Options{})
	if len(res.Rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(res.Rows))
	}
}

func TestSelectOperator(t *testing.T) {
	h := newHarness(t, 4)
	h.create(schemaS())
	h.publish("S", genS(500, rand.New(rand.NewSource(5))))
	p := &Plan{Root: &SelectNode{
		Pred:  B(OpLt, C(1), CI(50)),
		Child: &ScanNode{Relation: "S"},
	}}
	h.run(p, Options{})
}

func TestProjectAndCompute(t *testing.T) {
	h := newHarness(t, 3)
	h.create(schemaT())
	h.publish("T", genT(100))
	p := &Plan{Root: &ComputeNode{
		Exprs: []Expr{C(0), B(OpConcat, C(1), CS("-suffix"))},
		Child: &ProjectNode{Cols: []int{0, 1}, Child: &ScanNode{Relation: "T"}},
	}}
	h.run(p, Options{})
}

func TestJoinWithRehash(t *testing.T) {
	h := newHarness(t, 4)
	h.create(schemaR())
	h.create(schemaS())
	rng := rand.New(rand.NewSource(6))
	h.publish("R", genR(300, rng))
	h.publish("S", genS(80, rng))
	// R ⋈ S on R.y = S.y: rehash both sides on the join key.
	p := &Plan{Root: &JoinNode{
		LeftKeys:  []int{1},
		RightKeys: []int{0},
		Left:      &RehashNode{Keys: []int{1}, Child: &ScanNode{Relation: "R"}},
		Right:     &RehashNode{Keys: []int{0}, Child: &ScanNode{Relation: "S"}},
	}}
	h.run(p, Options{})
}

func TestThreeWayJoin(t *testing.T) {
	h := newHarness(t, 5)
	h.create(schemaR())
	h.create(schemaS())
	h.create(schemaT())
	rng := rand.New(rand.NewSource(7))
	h.publish("R", genR(150, rng))
	h.publish("S", genS(60, rng))
	h.publish("T", genT(100))
	// (R ⋈y S) ⋈z T
	rs := &JoinNode{
		LeftKeys:  []int{1},
		RightKeys: []int{0},
		Left:      &RehashNode{Keys: []int{1}, Child: &ScanNode{Relation: "R"}},
		Right:     &RehashNode{Keys: []int{0}, Child: &ScanNode{Relation: "S"}},
	}
	p := &Plan{Root: &JoinNode{
		LeftKeys:  []int{3}, // RS.z
		RightKeys: []int{0},
		Left:      &RehashNode{Keys: []int{3}, Child: rs},
		Right:     &RehashNode{Keys: []int{0}, Child: &ScanNode{Relation: "T"}},
	}}
	h.run(p, Options{})
}

func TestAggregatePartialWithFinalMerge(t *testing.T) {
	h := newHarness(t, 4)
	h.create(schemaS())
	h.publish("S", genS(500, rand.New(rand.NewSource(8))))
	// SELECT z, COUNT(*), SUM(y), MIN(y), MAX(y), AVG(y) FROM S GROUP BY z
	// via per-node partial aggregation + final merge at the initiator.
	specs := []AggSpec{
		{Func: AggCount, Col: -1},
		{Func: AggSum, Col: 0},
		{Func: AggMin, Col: 0},
		{Func: AggMax, Col: 0},
		{Func: AggAvg, Col: 0},
	}
	p := &Plan{
		Root: &AggNode{
			GroupCols: []int{1},
			Aggs:      specs,
			Mode:      AggPartial,
			Child:     &ScanNode{Relation: "S"},
		},
		Final: []FinalOp{&FinalAgg{GroupCols: []int{0}, Aggs: offsetSpecs(specs)}},
	}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	res, err := h.engines[0].Run(h.ctx(), p, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Reference: complete aggregation over S grouped by z.
	want := refAggregate([]int{1}, specs, h.data["S"])
	if !rowsEqual(res.Rows, want) {
		t.Fatalf("wrong answer: %s", diffSummary(res.Rows, want))
	}
}

// offsetSpecs rewrites aggregate input columns for the initiator-side merge
// of partial states: after partial aggregation the row layout is group
// columns first, then one column per spec (two for AVG).
func offsetSpecs(specs []AggSpec) []AggSpec {
	out := make([]AggSpec, len(specs))
	col := 1 // single group column in these tests
	for i, s := range specs {
		out[i] = AggSpec{Func: s.Func, Col: col}
		if s.Func == AggAvg {
			col += 2
		} else {
			col++
		}
	}
	return out
}

func TestAggregateCompleteAfterRehash(t *testing.T) {
	h := newHarness(t, 4)
	h.create(schemaS())
	h.publish("S", genS(400, rand.New(rand.NewSource(9))))
	// Rehash on the grouping key, then complete aggregation at each node.
	specs := []AggSpec{{Func: AggCount, Col: -1}, {Func: AggSum, Col: 0}}
	p := &Plan{Root: &AggNode{
		GroupCols: []int{1},
		Aggs:      specs,
		Mode:      AggComplete,
		Child:     &RehashNode{Keys: []int{1}, Child: &ScanNode{Relation: "S"}},
	}}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	res, err := h.engines[0].Run(h.ctx(), p, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := refAggregate([]int{1}, specs, h.data["S"])
	if !rowsEqual(res.Rows, want) {
		t.Fatalf("wrong answer: %s", diffSummary(res.Rows, want))
	}
}

func TestJoinThenAggregate(t *testing.T) {
	h := newHarness(t, 4)
	h.create(schemaR())
	h.create(schemaS())
	rng := rand.New(rand.NewSource(10))
	h.publish("R", genR(250, rng))
	h.publish("S", genS(70, rng))
	// SELECT x, MIN(z) FROM R, S WHERE R.y = S.y GROUP BY x — the paper's
	// running example (Example 5.1, Fig 6).
	specs := []AggSpec{{Func: AggMin, Col: 3}}
	join := &JoinNode{
		LeftKeys:  []int{1},
		RightKeys: []int{0},
		Left:      &RehashNode{Keys: []int{1}, Child: &ScanNode{Relation: "R"}},
		Right:     &RehashNode{Keys: []int{0}, Child: &ScanNode{Relation: "S"}},
	}
	p := &Plan{Root: &AggNode{
		GroupCols: []int{0},
		Aggs:      specs,
		Mode:      AggComplete,
		Child:     &RehashNode{Keys: []int{0}, Child: join},
	}}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	res, err := h.engines[0].Run(h.ctx(), p, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	joined, err := refNode(join, h.data, h.schemas)
	if err != nil {
		t.Fatal(err)
	}
	want := refAggregate([]int{0}, specs, joined)
	if !rowsEqual(res.Rows, want) {
		t.Fatalf("wrong answer: %s", diffSummary(res.Rows, want))
	}
}

func TestFinalSortAndLimit(t *testing.T) {
	h := newHarness(t, 3)
	h.create(schemaR())
	h.publish("R", genR(100, rand.New(rand.NewSource(11))))
	p := &Plan{
		Root:  &ScanNode{Relation: "R"},
		Final: []FinalOp{&FinalSort{Keys: []SortKey{{Col: 0, Desc: true}}}, &FinalLimit{N: 10}},
	}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	res, err := h.engines[0].Run(h.ctx(), p, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("limit: got %d rows", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i-1][0].AsInt() < res.Rows[i][0].AsInt() {
			t.Fatalf("rows not descending at %d", i)
		}
	}
	if res.Rows[0][0].AsInt() != 99 {
		t.Fatalf("top row key = %d, want 99", res.Rows[0][0].AsInt())
	}
}

func TestQueryFromEveryInitiator(t *testing.T) {
	h := newHarness(t, 4)
	h.create(schemaR())
	h.publish("R", genR(200, rand.New(rand.NewSource(12))))
	p := &Plan{Root: &ScanNode{Relation: "R"}}
	for i := range h.engines {
		h.runFrom(i, p, Options{})
	}
}

// --- versioning tests ---

func TestVersionedSnapshotQueries(t *testing.T) {
	h := newHarness(t, 4)
	h.create(schemaR())
	e1 := h.publish("R", []tuple.Row{
		{tuple.I(1), tuple.I(10)},
		{tuple.I(2), tuple.I(20)},
	})
	stateAtE1 := append([]tuple.Row(nil), h.data["R"]...)

	// Second batch: insert one tuple and update another.
	ups := []vstore.Update{
		{Op: vstore.OpInsert, Row: tuple.Row{tuple.I(3), tuple.I(30)}},
		{Op: vstore.OpUpdate, Row: tuple.Row{tuple.I(2), tuple.I(99)}},
	}
	e2, err := h.local.Node(0).Publish(h.ctx(), "R", ups)
	if err != nil {
		t.Fatalf("publish 2: %v", err)
	}
	if e2 <= e1 {
		t.Fatalf("epoch did not advance: %d then %d", e1, e2)
	}

	p := &Plan{Root: &ScanNode{Relation: "R"}}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}

	// Query at e1 must see the old state, including the pre-update value.
	res1, err := h.engines[1].Run(h.ctx(), p, Options{Epoch: e1})
	if err != nil {
		t.Fatalf("Run@e1: %v", err)
	}
	if !rowsEqual(res1.Rows, stateAtE1) {
		t.Fatalf("snapshot at e1: %s", diffSummary(res1.Rows, stateAtE1))
	}

	// Query at e2 must see the new state, never the stale version of key 2.
	want2 := []tuple.Row{
		{tuple.I(1), tuple.I(10)},
		{tuple.I(2), tuple.I(99)},
		{tuple.I(3), tuple.I(30)},
	}
	res2, err := h.engines[2].Run(h.ctx(), p, Options{Epoch: e2})
	if err != nil {
		t.Fatalf("Run@e2: %v", err)
	}
	if !rowsEqual(res2.Rows, want2) {
		t.Fatalf("snapshot at e2: %s", diffSummary(res2.Rows, want2))
	}
}

func TestEmptyRelation(t *testing.T) {
	h := newHarness(t, 3)
	h.create(schemaR())
	p := &Plan{Root: &ScanNode{Relation: "R"}}
	res := h.run(p, Options{})
	if len(res.Rows) != 0 {
		t.Fatalf("got %d rows from empty relation", len(res.Rows))
	}
}

func TestUnknownRelationFails(t *testing.T) {
	h := newHarness(t, 2)
	p := &Plan{Root: &ScanNode{Relation: "nope"}}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.engines[0].Run(h.ctx(), p, Options{}); err == nil {
		t.Fatal("expected error for unknown relation")
	}
}

// --- provenance overhead and options ---

func TestProvenanceOverheadCorrectness(t *testing.T) {
	h := newHarness(t, 4)
	h.create(schemaR())
	h.create(schemaS())
	rng := rand.New(rand.NewSource(13))
	h.publish("R", genR(200, rng))
	h.publish("S", genS(60, rng))
	p := &Plan{Root: &JoinNode{
		LeftKeys:  []int{1},
		RightKeys: []int{0},
		Left:      &RehashNode{Keys: []int{1}, Child: &ScanNode{Relation: "R"}},
		Right:     &RehashNode{Keys: []int{0}, Child: &ScanNode{Relation: "S"}},
	}}
	// Same answers with and without provenance tracking.
	h.run(p, Options{})
	h.run(p, Options{Provenance: true})
}

func TestStatsReported(t *testing.T) {
	h := newHarness(t, 4)
	h.create(schemaR())
	h.publish("R", genR(400, rand.New(rand.NewSource(14))))
	p := &Plan{Root: &ScanNode{Relation: "R"}}
	res := h.run(p, Options{})
	if len(res.Stats) != 4 {
		t.Fatalf("stats from %d nodes, want 4", len(res.Stats))
	}
	total := res.TotalStats()
	if total.Scanned != 400 {
		t.Fatalf("scanned %d tuples, want 400", total.Scanned)
	}
	if total.Shipped != 400 {
		t.Fatalf("shipped %d tuples, want 400", total.Shipped)
	}
}

// --- plan serialization ---

func TestPlanEncodeDecodeRoundTrip(t *testing.T) {
	specs := []AggSpec{{Func: AggMin, Col: 3}, {Func: AggCount, Col: -1}}
	join := &JoinNode{
		LeftKeys:  []int{1},
		RightKeys: []int{0},
		Left:      &RehashNode{Keys: []int{1}, Child: &ScanNode{Relation: "R", Covering: true}},
		Right: &RehashNode{Keys: []int{0}, Child: &SelectNode{
			Pred:  B(OpLt, C(1), CI(50)),
			Child: &ScanNode{Relation: "S"},
		}},
	}
	p := &Plan{
		Root: &AggNode{
			GroupCols: []int{0},
			Aggs:      specs,
			Mode:      AggPartial,
			Child:     &RehashNode{Keys: []int{0}, Child: join},
		},
		Final: []FinalOp{
			&FinalAgg{GroupCols: []int{0}, Aggs: specs},
			&FinalCompute{Exprs: []Expr{C(0), B(OpAdd, C(1), CI(1))}},
			&FinalSort{Keys: []SortKey{{Col: 0}, {Col: 1, Desc: true}}},
			&FinalLimit{N: 5},
		},
	}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	enc := EncodePlan(p)
	dec, err := DecodePlan(enc)
	if err != nil {
		t.Fatalf("DecodePlan: %v", err)
	}
	if dec.String() != p.String() {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", dec.String(), p.String())
	}
	if dec.NumScans() != p.NumScans() || dec.NumExchanges() != p.NumExchanges() {
		t.Fatal("scan/exchange counts differ after round trip")
	}
}

func TestPlanValidation(t *testing.T) {
	cases := []*Plan{
		{Root: nil},
		{Root: &ScanNode{Relation: ""}},
		{Root: &RehashNode{Keys: nil, Child: &ScanNode{Relation: "R"}}},
		{Root: &JoinNode{LeftKeys: []int{0}, RightKeys: []int{0, 1},
			Left: &ScanNode{Relation: "R"}, Right: &ScanNode{Relation: "S"}}},
		{Root: &AggNode{GroupCols: []int{0}, Child: &ScanNode{Relation: "R"}}},
	}
	for i, p := range cases {
		if err := p.Finalize(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

// --- randomized consistency (property) test ---

func TestRandomizedQueriesMatchReference(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	h := newHarness(t, 5)
	h.create(schemaR())
	h.create(schemaS())
	rng := rand.New(rand.NewSource(42))
	h.publish("R", genR(300, rng))
	h.publish("S", genS(90, rng))

	for trial := 0; trial < 8; trial++ {
		var p *Plan
		switch trial % 4 {
		case 0:
			p = &Plan{Root: &SelectNode{
				Pred:  B(OpLt, C(0), CI(int64(rng.Intn(300)))),
				Child: &ScanNode{Relation: "R"},
			}}
		case 1:
			p = &Plan{Root: &JoinNode{
				LeftKeys:  []int{1},
				RightKeys: []int{0},
				Left:      &RehashNode{Keys: []int{1}, Child: &ScanNode{Relation: "R"}},
				Right:     &RehashNode{Keys: []int{0}, Child: &ScanNode{Relation: "S"}},
			}}
		case 2:
			p = &Plan{Root: &ProjectNode{Cols: []int{1}, Child: &ScanNode{Relation: "S"}}}
		case 3:
			p = &Plan{Root: &ComputeNode{
				Exprs: []Expr{B(OpMul, C(0), CI(3)), C(1)},
				Child: &ScanNode{Relation: "R"},
			}}
		}
		h.runFrom(rng.Intn(5), p, Options{Provenance: trial%2 == 0})
	}
}

// KeyPredOf adapts a cluster.KeyPred for ScanNode.Pred (both share the
// cluster type; helper exists for test readability).
func KeyPredOf(p cluster.KeyPred) cluster.KeyPred { return p }

// --- failure & recovery tests ---

// failureHarness publishes join-shaped data and returns the plan used by
// recovery tests.
func failurePlan() *Plan {
	return &Plan{Root: &JoinNode{
		LeftKeys:  []int{1},
		RightKeys: []int{0},
		Left:      &RehashNode{Keys: []int{1}, Child: &ScanNode{Relation: "R"}},
		Right:     &RehashNode{Keys: []int{0}, Child: &ScanNode{Relation: "S"}},
	}}
}

func TestIncrementalRecoveryAfterFailure(t *testing.T) {
	for _, delay := range []time.Duration{0, 2 * time.Millisecond, 10 * time.Millisecond} {
		t.Run(fmt.Sprintf("delay=%s", delay), func(t *testing.T) {
			h := newHarness(t, 6)
			h.create(schemaR())
			h.create(schemaS())
			rng := rand.New(rand.NewSource(21))
			h.publish("R", genR(600, rng))
			h.publish("S", genS(150, rng))

			p := failurePlan()
			if err := p.Finalize(); err != nil {
				t.Fatal(err)
			}
			victim := h.local.Node(3).ID() // never the initiator (node 0)
			go func() {
				time.Sleep(delay)
				h.local.Kill(victim)
			}()
			res, err := h.engines[0].Run(h.ctx(), p, Options{Recovery: RecoverIncremental})
			if err != nil {
				t.Fatalf("Run with recovery: %v", err)
			}
			h.check(p, res)
		})
	}
}

func TestRestartRecoveryAfterFailure(t *testing.T) {
	h := newHarness(t, 6)
	h.create(schemaR())
	h.create(schemaS())
	rng := rand.New(rand.NewSource(22))
	h.publish("R", genR(500, rng))
	h.publish("S", genS(120, rng))

	p := failurePlan()
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	victim := h.local.Node(4).ID()
	go func() {
		time.Sleep(2 * time.Millisecond)
		h.local.Kill(victim)
	}()
	res, err := h.engines[0].Run(h.ctx(), p, Options{Recovery: RecoverRestart})
	if err != nil {
		t.Fatalf("Run with restart: %v", err)
	}
	h.check(p, res)
}

func TestFailModeSurfacesError(t *testing.T) {
	h := newHarness(t, 5)
	h.create(schemaR())
	h.create(schemaS())
	rng := rand.New(rand.NewSource(23))
	h.publish("R", genR(2000, rng))
	h.publish("S", genS(400, rng))

	p := failurePlan()
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	// Kill before starting so the failure is guaranteed to hit the query.
	h.local.Kill(h.local.Node(2).ID())
	_, err := h.engines[0].Run(h.ctx(), p, Options{Recovery: RecoverFail})
	if err == nil {
		t.Fatal("expected failure error")
	}
}

func TestRecoveryWithAggregation(t *testing.T) {
	h := newHarness(t, 6)
	h.create(schemaS())
	h.publish("S", genS(800, rand.New(rand.NewSource(24))))
	specs := []AggSpec{{Func: AggCount, Col: -1}, {Func: AggSum, Col: 0}}
	p := &Plan{Root: &AggNode{
		GroupCols: []int{1},
		Aggs:      specs,
		Mode:      AggComplete,
		Child:     &RehashNode{Keys: []int{1}, Child: &ScanNode{Relation: "S"}},
	}}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	victim := h.local.Node(2).ID()
	go func() {
		time.Sleep(time.Millisecond)
		h.local.Kill(victim)
	}()
	res, err := h.engines[0].Run(h.ctx(), p, Options{Recovery: RecoverIncremental})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := refAggregate([]int{1}, specs, h.data["S"])
	if !rowsEqual(res.Rows, want) {
		t.Fatalf("aggregate after recovery: %s", diffSummary(res.Rows, want))
	}
}

func TestRecoveryKillBeforeStart(t *testing.T) {
	h := newHarness(t, 6)
	h.create(schemaR())
	h.publish("R", genR(300, rand.New(rand.NewSource(25))))
	p := &Plan{Root: &ScanNode{Relation: "R"}}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	// The snapshot still contains the dead node; prepare fails, and restart
	// mode retries on the survivors.
	h.local.Kill(h.local.Node(5).ID())
	res, err := h.engines[0].Run(h.ctx(), p, Options{Recovery: RecoverRestart})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Restarts == 0 {
		t.Fatal("expected at least one restart")
	}
	h.check(p, res)
}

func TestRecoveryTwoFailures(t *testing.T) {
	h := newHarness(t, 8)
	h.create(schemaR())
	h.create(schemaS())
	rng := rand.New(rand.NewSource(26))
	h.publish("R", genR(800, rng))
	h.publish("S", genS(200, rng))

	p := failurePlan()
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	v1, v2 := h.local.Node(3).ID(), h.local.Node(6).ID()
	go func() {
		time.Sleep(time.Millisecond)
		h.local.Kill(v1)
		time.Sleep(4 * time.Millisecond)
		h.local.Kill(v2)
	}()
	res, err := h.engines[0].Run(h.ctx(), p, Options{Recovery: RecoverIncremental})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	h.check(p, res)
}

func TestRecoveryRepeatedRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Repeated independent runs with a mid-query kill at varying offsets;
	// every run must produce exactly the reference answer (complete and
	// duplicate-free), which exercises phase/race handling.
	for i := 0; i < 5; i++ {
		t.Run(fmt.Sprintf("run%d", i), func(t *testing.T) {
			h := newHarness(t, 6)
			h.create(schemaR())
			h.create(schemaS())
			rng := rand.New(rand.NewSource(int64(100 + i)))
			h.publish("R", genR(500, rng))
			h.publish("S", genS(120, rng))
			p := failurePlan()
			if err := p.Finalize(); err != nil {
				t.Fatal(err)
			}
			victim := h.local.Node(1 + i%5).ID()
			go func() {
				time.Sleep(time.Duration(i) * time.Millisecond)
				h.local.Kill(victim)
			}()
			res, err := h.engines[0].Run(h.ctx(), p, Options{Recovery: RecoverIncremental})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			h.check(p, res)
		})
	}
}

// --- membership-change (arrival) test ---

func TestNodeArrivalDoesNotDisturbData(t *testing.T) {
	h := newHarness(t, 4)
	h.create(schemaR())
	h.publish("R", genR(300, rand.New(rand.NewSource(27))))

	node, err := h.local.AddNode(h.ctx())
	if err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	eng := New(node)
	h.engines = append(h.engines, eng)

	// A fresh query (new snapshot) includes the new node and still returns
	// the complete data set.
	p := &Plan{Root: &ScanNode{Relation: "R"}}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(h.ctx(), p, Options{})
	if err != nil {
		t.Fatalf("Run from new node: %v", err)
	}
	h.check(p, res)
	if len(res.Stats) != 5 {
		t.Fatalf("stats from %d nodes, want 5", len(res.Stats))
	}
}
