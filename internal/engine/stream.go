package engine

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"orchestra/internal/ring"
	"orchestra/internal/tuple"
)

// Streamed execution. Three pushdown classes relax the collect-then-emit
// contract for plans whose final pipeline permits it (the exactly-once
// concern only bites under provenance/incremental recovery, which keeps
// the collected path — exactly as the LIMIT pushdown already does):
//
//   - shipStream: no restart-sensitive final ops (only compute/limit).
//     With a StreamSink attached, the initiator drains the ship
//     consumer's accumulator to the sink *during* execution — first byte
//     ≈ first fragment batch, initiator memory bounded by how far the
//     consumer outruns the sink (the wire's credit window, on the
//     serving path).
//   - shipTopK: ORDER BY + LIMIT. Each fragment sorts its own output
//     with the compiled comparators and ships only its local top K; the
//     initiator keeps one sorted run per source and K-way merge-
//     truncates at completion, so at most members×K rows ever reach it.
//   - shipAggMerge: a FinalAgg head. The initiator folds arriving
//     partial-aggregate rows into the merge accumulator incrementally
//     instead of collecting them — memory is O(groups), not O(partials).
//
// Everything else (provenance mode, sort without limit, view-cache
// queries at the cluster layer) stays on the collected path, unchanged.

// StreamSink receives result batches during execution at the initiator.
// Emitted rows and batches are borrowed: valid only for the duration of
// the call, never mutated by the callee. Calls are serialized (one
// drainer goroutine). A sink error aborts the query; implementations
// must return promptly once their consumer is gone (the serving path's
// sink is bounded by the request context).
type StreamSink interface {
	// StreamCols hands over a columnar chunk of the answer.
	StreamCols(b *tuple.Batch) error
	// StreamRows hands over a row-form chunk of the answer.
	StreamRows(rows []tuple.Row) error
}

// shipMode classifies how fragment output flows to the initiator.
type shipMode uint8

const (
	// shipCollect is the original collect-then-emit path.
	shipCollect shipMode = iota
	// shipStream forwards batches to Options.Sink as fragments deliver.
	shipStream
	// shipTopK sorts/truncates fragment-side, merge-truncates at the
	// initiator.
	shipTopK
	// shipAggMerge folds partial aggregates incrementally at the
	// initiator.
	shipAggMerge
)

func (m shipMode) String() string {
	switch m {
	case shipStream:
		return "stream"
	case shipTopK:
		return "top-k"
	case shipAggMerge:
		return "partial-agg"
	default:
		return "collect"
	}
}

// planShipMode derives the ship mode from the final pipeline and the
// execution options. It depends only on state every participant shares
// (the disseminated plan and the provenance flag), so the initiator and
// remote fragments always agree without a wire change: DecodePlan
// re-finalizes and the prepare message carries Provenance.
func planShipMode(p *Plan, opts Options) shipMode {
	if opts.Provenance {
		// Incremental recovery may retract collected rows; every pushdown
		// here assumes collected output is never retracted.
		return shipCollect
	}
	f := p.Final
	if len(f) >= 2 {
		if s, ok := f[0].(*FinalSort); ok && len(s.Keys) > 0 {
			if l, ok := f[1].(*FinalLimit); ok && l.N >= 0 {
				return shipTopK
			}
		}
	}
	if len(f) > 0 {
		if _, ok := f[0].(*FinalAgg); ok {
			return shipAggMerge
		}
	}
	for _, op := range f {
		switch op.(type) {
		case *FinalCompute, *FinalLimit:
		default:
			return shipCollect // FinalSort without a limit, or unknown ops
		}
	}
	return shipStream
}

// PushdownClass names the final-pipeline pushdown class the engine will
// use for a finalized plan without provenance — surfaced by the
// optimizer's explain output so pushdown eligibility is visible in plans.
func PushdownClass(p *Plan) string { return planShipMode(p, Options{}).String() }

// StreamEligible reports whether a plan run with these options will emit
// through Options.Sink during execution (rather than ignoring the sink
// and returning the collected answer). Callers use it to decide whether
// to attach a sink at all.
func StreamEligible(p *Plan, opts Options) bool {
	return planShipMode(p, opts.withDefaults()) == shipStream
}

// topKParams extracts the fragment-side sort keys and the merged row
// budget from a shipTopK plan's final pipeline.
func topKParams(p *Plan) ([]SortKey, int) {
	keys := p.Final[0].(*FinalSort).Keys
	k := p.Final[1].(*FinalLimit).N
	// Trailing limits can only shrink the budget further.
	for _, op := range p.Final[2:] {
		if l, ok := op.(*FinalLimit); ok && l.N < k {
			k = l.N
		}
	}
	return keys, k
}

// StreamAbortedError reports a node failure after result rows already
// streamed to the sink: the query cannot be restarted (a restart would
// duplicate emitted rows), so the caller sees a terminal error and must
// re-issue the query itself. Deliberately NOT a FailureError — the
// engine's restart loop must not match it.
type StreamAbortedError struct {
	Failed   []ring.NodeID
	Streamed int64
}

func (e *StreamAbortedError) Error() string {
	return fmt.Sprintf("engine: node failure after %d rows streamed: %v (re-issue the query)",
		e.Streamed, e.Failed)
}

// --- streaming final pipeline (shipStream mode) ---

// streamFinalState applies a compute/limit-only final pipeline to chunks
// of the answer as they stream out. Compute is 1:1 and limit truncates a
// prefix, so applying the ops in order per chunk — with each limit
// keeping a running countdown across chunks — is equivalent to applying
// them once to the concatenated whole. Used by the drainer goroutine
// only; no locking.
type streamFinalState struct {
	stages []streamStage
}

type streamStage struct {
	exprs     []Expr // non-nil: FinalCompute
	remaining int    // FinalLimit countdown (valid when exprs is nil)
}

func newStreamFinalState(ops []FinalOp) *streamFinalState {
	st := &streamFinalState{}
	for _, op := range ops {
		switch f := op.(type) {
		case *FinalCompute:
			st.stages = append(st.stages, streamStage{exprs: f.Exprs, remaining: -1})
		case *FinalLimit:
			st.stages = append(st.stages, streamStage{remaining: f.N})
		}
	}
	return st
}

// applyCols runs the pipeline over one columnar chunk. Exactly one of
// the returns is non-nil for a non-empty survivor set; a heterogeneous
// compute demotes the rest of the pipeline to row form for this chunk.
func (st *streamFinalState) applyCols(b *tuple.Batch) (*tuple.Batch, []tuple.Row, error) {
	var rows []tuple.Row
	demoted := false
	for i := range st.stages {
		s := &st.stages[i]
		if demoted {
			rows = st.applyRowStage(s, rows)
			continue
		}
		if s.exprs != nil {
			nb, ok := computeCols(s.exprs, b)
			if ok {
				b = nb
				continue
			}
			rows = st.applyRowStage(s, b.Rows())
			demoted = true
			continue
		}
		if s.remaining <= 0 {
			b.Truncate(0)
		} else if b.N > s.remaining {
			b.Truncate(s.remaining)
		}
		s.remaining -= b.N
	}
	if demoted {
		return nil, rows, nil
	}
	return b, nil, nil
}

// applyRows runs the pipeline over one row-form chunk.
func (st *streamFinalState) applyRows(rows []tuple.Row) []tuple.Row {
	for i := range st.stages {
		rows = st.applyRowStage(&st.stages[i], rows)
	}
	return rows
}

func (st *streamFinalState) applyRowStage(s *streamStage, rows []tuple.Row) []tuple.Row {
	if s.exprs != nil {
		out, err := applyFinalOpRows(&FinalCompute{Exprs: s.exprs}, rows)
		if err != nil {
			return nil
		}
		return out
	}
	if s.remaining <= 0 {
		rows = rows[:0]
	} else if len(rows) > s.remaining {
		rows = rows[:s.remaining]
	}
	s.remaining -= len(rows)
	return rows
}

// --- fragment-side top-K helpers ---

// sortTups stably orders tuples by the sort keys (Value.Cmp ordering,
// matching sortRows).
func sortTups(ts []Tup, keys []SortKey) {
	sort.SliceStable(ts, func(i, j int) bool {
		for _, k := range keys {
			c := ts[i].Row[k.Col].Cmp(ts[j].Row[k.Col])
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}

// --- initiator-side K-way merge (shipTopK mode) ---

// cmpBatchRows compares row i of a with row j of b under the sort keys,
// with Desc applied — the merge-order comparator. Types are homogeneous
// per column across runs (same plan, same schema); a cross-run type
// mismatch compares equal and is caught earlier by mergeTruncateCols's
// shape check.
func cmpBatchRows(a *tuple.Batch, i int, b *tuple.Batch, j int, keys []SortKey) int {
	for _, k := range keys {
		av, bv := &a.Cols[k.Col], &b.Cols[k.Col]
		var c int
		switch av.T {
		case tuple.Int64:
			c = cmpI64(av.I64[i], bv.I64[j])
		case tuple.Float64:
			c = cmpF64(av.F64[i], bv.F64[j])
		case tuple.String:
			c = strings.Compare(av.Str[i], bv.Str[j])
		}
		if k.Desc {
			c = -c
		}
		if c != 0 {
			return c
		}
	}
	return 0
}

// mergeTruncateCols K-way merges already-sorted columnar runs and stops
// after k rows — the initiator's half of the top-K pushdown. Ties break
// by run order (stable across runs, matching a stable sort of the
// concatenation). The result is a fresh arena batch; the runs are left
// intact for the caller to recycle. Returns an error on shape mismatch
// or out-of-range key columns so the caller can degrade to the row path.
func mergeTruncateCols(runs []*tuple.Batch, keys []SortKey, k int) (*tuple.Batch, error) {
	live := runs[:0:0]
	for _, b := range runs {
		if b != nil && b.N > 0 {
			live = append(live, b)
		}
	}
	out := getResultBatch()
	if len(live) == 0 || k <= 0 {
		return out, nil
	}
	arity := len(live[0].Cols)
	for _, b := range live {
		if len(b.Cols) != arity {
			RecycleResultBatch(out)
			return nil, errors.New("engine: merge runs of different arity")
		}
		for c := range b.Cols {
			if b.Cols[c].T != live[0].Cols[c].T {
				RecycleResultBatch(out)
				return nil, fmt.Errorf("engine: merge run column %d type mismatch", c)
			}
		}
	}
	for _, key := range keys {
		if key.Col < 0 || key.Col >= arity {
			RecycleResultBatch(out)
			return nil, fmt.Errorf("engine: merge key column %d out of range", key.Col)
		}
	}
	idx := make([]int, len(live))
	var span tuple.Batch
	for out.N < k {
		best := -1
		for r, b := range live {
			if idx[r] >= b.N {
				continue
			}
			if best < 0 || cmpBatchRows(b, idx[r], live[best], idx[best], keys) < 0 {
				best = r
			}
		}
		if best < 0 {
			break // all runs exhausted: k exceeded the total
		}
		live[best].Slice(idx[best], idx[best]+1, &span)
		if err := out.AppendBatchInto(&span); err != nil {
			RecycleResultBatch(out)
			return nil, err
		}
		idx[best]++
	}
	return out, nil
}
