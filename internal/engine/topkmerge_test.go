package engine

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"orchestra/internal/tuple"
)

// Unit and fuzz coverage for the top-K pushdown's initiator half
// (mergeTruncateCols) and the ship-batch codec the partial-agg merge
// decodes (decodeTupBatch).

// cmpRowsKeys is the row-form reference comparator, mirroring
// cmpBatchRows' per-type ordering.
func cmpRowsKeys(a, b tuple.Row, keys []SortKey) int {
	for _, k := range keys {
		av, bv := a[k.Col], b[k.Col]
		var c int
		switch av.T {
		case tuple.Int64:
			c = cmpI64(av.I64, bv.I64)
		case tuple.Float64:
			c = cmpF64(av.F64, bv.F64)
		case tuple.String:
			if av.Str < bv.Str {
				c = -1
			} else if av.Str > bv.Str {
				c = 1
			}
		}
		if k.Desc {
			c = -c
		}
		if c != 0 {
			return c
		}
	}
	return 0
}

// buildRun sorts rows by keys and packs them into a columnar batch — a
// fragment's local top-K contribution.
func buildRun(t *testing.T, rows []tuple.Row, keys []SortKey) *tuple.Batch {
	t.Helper()
	sorted := append([]tuple.Row(nil), rows...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return cmpRowsKeys(sorted[i], sorted[j], keys) < 0
	})
	// randRows' fixed shape.
	return batchOf(t, []tuple.Type{tuple.Int64, tuple.Float64, tuple.String}, sorted)
}

func batchOf(t *testing.T, types []tuple.Type, rows []tuple.Row) *tuple.Batch {
	t.Helper()
	b := &tuple.Batch{}
	b.ResetTypes(types)
	for _, r := range rows {
		if err := b.AppendRow(r); err != nil {
			t.Fatalf("AppendRow: %v", err)
		}
	}
	return b
}

// refMerge is the straightforward reference: repeatedly take the
// smallest head across runs (ties by run order), stop at k.
func refMerge(runs [][]tuple.Row, keys []SortKey, k int) []tuple.Row {
	idx := make([]int, len(runs))
	var out []tuple.Row
	for len(out) < k {
		best := -1
		for r := range runs {
			if idx[r] >= len(runs[r]) {
				continue
			}
			if best < 0 || cmpRowsKeys(runs[r][idx[r]], runs[best][idx[best]], keys) < 0 {
				best = r
			}
		}
		if best < 0 {
			break
		}
		out = append(out, runs[best][idx[best]])
		idx[best]++
	}
	return out
}

func batchRowKeys(b *tuple.Batch) []string {
	return rowKeys(b.Rows())
}

func TestMergeTruncateAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	keys := []SortKey{{Col: 0}, {Col: 2, Desc: true}, {Col: 1}}
	for trial := 0; trial < 50; trial++ {
		nRuns := 1 + rng.Intn(5)
		var runs []*tuple.Batch
		var all []tuple.Row
		for r := 0; r < nRuns; r++ {
			rows := randRowsNoNaN(rng, rng.Intn(40))
			all = append(all, rows...)
			runs = append(runs, buildRun(t, rows, keys))
		}
		k := rng.Intn(len(all) + 10)

		// Without NaN the comparator is a strict weak order, so the merge
		// must equal a stable sort of the concatenation, truncated.
		want := append([]tuple.Row(nil), all...)
		sort.SliceStable(want, func(i, j int) bool {
			return cmpRowsKeys(want[i], want[j], keys) < 0
		})
		if k < len(want) {
			want = want[:k]
		}

		got, err := mergeTruncateCols(runs, keys, k)
		if err != nil {
			t.Fatalf("trial %d: mergeTruncateCols: %v", trial, err)
		}
		gk, wk := batchRowKeys(got), rowKeys(want)
		if len(gk) != len(wk) {
			t.Fatalf("trial %d: got %d rows, want %d", trial, len(gk), len(wk))
		}
		for i := range gk {
			if gk[i] != wk[i] {
				t.Fatalf("trial %d row %d: got %s, want %s", trial, i, gk[i], wk[i])
			}
		}
		RecycleResultBatch(got)
	}
}

// randRowsNoNaN is randRows with NaN filtered out of the float column
// (NaN breaks strict weak ordering; the NaN case gets its own test with
// a merge-shaped reference).
func randRowsNoNaN(rng *rand.Rand, n int) []tuple.Row {
	rows := randRows(rng, n)
	for _, r := range rows {
		if math.IsNaN(r[1].F64) {
			r[1] = tuple.F(float64(rng.Intn(7)))
		}
	}
	return rows
}

// With NaN keys a sort-based reference is unusable (the comparator is
// not transitive), but the K-way selection merge itself is still
// deterministic given the runs — pin it against a row-form reimplementation.
func TestMergeTruncateNaNKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	keys := []SortKey{{Col: 1}, {Col: 0}}
	for trial := 0; trial < 30; trial++ {
		nRuns := 1 + rng.Intn(4)
		var runs []*tuple.Batch
		var rowRuns [][]tuple.Row
		for r := 0; r < nRuns; r++ {
			rows := randRows(rng, rng.Intn(30)) // NaN/Inf mixed in
			b := buildRun(t, rows, keys)
			runs = append(runs, b)
			rowRuns = append(rowRuns, b.Rows()) // the run as actually ordered
		}
		k := rng.Intn(40)
		want := refMerge(rowRuns, keys, k)
		got, err := mergeTruncateCols(runs, keys, k)
		if err != nil {
			t.Fatalf("trial %d: mergeTruncateCols: %v", trial, err)
		}
		gk, wk := batchRowKeys(got), rowKeys(want)
		if len(gk) != len(wk) {
			t.Fatalf("trial %d: got %d rows, want %d", trial, len(gk), len(wk))
		}
		for i := range gk {
			if gk[i] != wk[i] {
				t.Fatalf("trial %d row %d: got %s, want %s", trial, i, gk[i], wk[i])
			}
		}
		RecycleResultBatch(got)
	}
}

func TestMergeTruncateEdgeCases(t *testing.T) {
	keys := []SortKey{{Col: 0}}
	mk := func(vals ...int64) *tuple.Batch {
		rows := make([]tuple.Row, len(vals))
		for i, v := range vals {
			rows[i] = tuple.Row{tuple.I(v)}
		}
		return batchOf(t, []tuple.Type{tuple.Int64}, rows)
	}
	check := func(name string, runs []*tuple.Batch, k int, want ...int64) {
		t.Helper()
		got, err := mergeTruncateCols(runs, keys, k)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.N != len(want) {
			t.Fatalf("%s: got %d rows, want %d", name, got.N, len(want))
		}
		for i, w := range want {
			if got.Cols[0].I64[i] != w {
				t.Fatalf("%s: row %d = %d, want %d", name, i, got.Cols[0].I64[i], w)
			}
		}
		RecycleResultBatch(got)
	}

	check("k zero", []*tuple.Batch{mk(1, 2)}, 0)
	check("k exceeds total", []*tuple.Batch{mk(1, 3), mk(2)}, 10, 1, 2, 3)
	check("single run", []*tuple.Batch{mk(4, 5, 6)}, 2, 4, 5)
	check("empty and nil runs", []*tuple.Batch{nil, mk(), mk(2, 7)}, 3, 2, 7)
	check("all empty", []*tuple.Batch{nil, mk()}, 5)
	check("duplicate keys tie by run order", []*tuple.Batch{mk(1, 1), mk(1)}, 3, 1, 1, 1)

	// Error cases: shape mismatches must be reported, not merged.
	str := batchOf(t, []tuple.Type{tuple.String}, []tuple.Row{{tuple.S("a")}})
	two := batchOf(t, []tuple.Type{tuple.Int64, tuple.Int64}, []tuple.Row{{tuple.I(1), tuple.I(2)}})
	if _, err := mergeTruncateCols([]*tuple.Batch{mk(1), two}, keys, 5); err == nil {
		t.Fatal("arity mismatch: want error")
	}
	if _, err := mergeTruncateCols([]*tuple.Batch{mk(1), str}, keys, 5); err == nil {
		t.Fatal("column type mismatch: want error")
	}
	if _, err := mergeTruncateCols([]*tuple.Batch{mk(1)}, []SortKey{{Col: 3}}, 5); err == nil {
		t.Fatal("key column out of range: want error")
	}
	if _, err := mergeTruncateCols([]*tuple.Batch{mk(1)}, []SortKey{{Col: -1}}, 5); err == nil {
		t.Fatal("negative key column: want error")
	}
}

// FuzzTupBatchDecode hammers the ship-batch decoder with mutated frames
// — the partial-agg merge path decodes these straight off the wire. It
// must reject garbage with an error, never panic, and round-trip valid
// encodings.
func FuzzTupBatchDecode(f *testing.F) {
	seedRows := [][]Tup{
		{},
		{{Row: tuple.Row{tuple.I(3), tuple.I(7), tuple.F(2.5)}, Phase: 0}},
		{
			{Row: tuple.Row{tuple.I(1), tuple.F(math.NaN()), tuple.S("x")}, Prov: ProvOf(8, 1, 3)},
			{Row: tuple.Row{tuple.I(2), tuple.F(0.25), tuple.S("")}, Prov: ProvOf(8, 2)},
		},
		// Partial-agg shaped: group col, count, sum, min, max, avg pair.
		{
			{Row: tuple.Row{tuple.I(4), tuple.I(10), tuple.F(12.5), tuple.I(-3), tuple.I(9), tuple.F(12.5), tuple.I(10)}},
			{Row: tuple.Row{tuple.I(5), tuple.I(2), tuple.F(-0.75), tuple.I(0), tuple.I(1), tuple.F(-0.75), tuple.I(2)}},
		},
	}
	for i, ts := range seedRows {
		for _, withProv := range []bool{false, true} {
			data, err := encodeTupBatch(ts, uint32(i), withProv)
			if err != nil {
				f.Fatalf("encodeTupBatch seed %d: %v", i, err)
			}
			f.Add(data)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 2})

	f.Fuzz(func(t *testing.T, data []byte) {
		ts, phase, err := decodeTupBatch(data)
		if err != nil {
			return
		}
		// A successful decode must re-encode cleanly (the decoded tuples
		// are structurally valid).
		withProv := len(data) >= 5 && data[4] == 1
		if _, err := encodeTupBatch(ts, phase, withProv); err != nil {
			t.Fatalf("re-encode of valid decode failed: %v", err)
		}
	})
}

// The codec itself must round-trip exactly, provenance included.
func TestTupBatchRoundTrip(t *testing.T) {
	ts := []Tup{
		{Row: tuple.Row{tuple.I(1), tuple.F(math.Inf(-1)), tuple.S("a")}, Prov: ProvOf(16, 0, 5)},
		{Row: tuple.Row{tuple.I(2), tuple.F(math.NaN()), tuple.S("b")}, Prov: ProvOf(16, 5)},
		{Row: tuple.Row{tuple.I(3), tuple.F(-0.0), tuple.S("")}, Prov: ProvOf(16, 0, 5)},
	}
	data, err := encodeTupBatch(ts, 9, true)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, phase, err := decodeTupBatch(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if phase != 9 || len(got) != len(ts) {
		t.Fatalf("phase=%d len=%d, want 9/%d", phase, len(got), len(ts))
	}
	for i := range ts {
		if rowKey(got[i].Row) != rowKey(ts[i].Row) {
			t.Fatalf("row %d: got %s, want %s", i, rowKey(got[i].Row), rowKey(ts[i].Row))
		}
		if got[i].Prov.Key() != ts[i].Prov.Key() {
			t.Fatalf("row %d provenance mismatch", i)
		}
	}
}
