package engine

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"orchestra/internal/tuple"
)

// The columnar final pipeline (applyFinalOpsCols) must agree exactly with
// the row pipeline (applyFinalOps) — including NaN ordering in sorts,
// integer preservation in aggregate merges, and limit truncation points.

// valueKey renders a value for exact comparison: Value.Equal treats NaN
// as equal to everything (the Cmp quirk), so compare bit patterns.
func valueKey(v tuple.Value) string {
	switch v.T {
	case tuple.Int64:
		return fmt.Sprintf("i%d", v.I64)
	case tuple.Float64:
		return fmt.Sprintf("f%016x", math.Float64bits(v.F64))
	case tuple.String:
		return "s" + v.Str
	}
	return "?"
}

func rowKey(r tuple.Row) string {
	s := ""
	for _, v := range r {
		s += valueKey(v) + "|"
	}
	return s
}

func rowKeys(rows []tuple.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = rowKey(r)
	}
	return out
}

// randRows builds rows over the fixed (int, float, string) shape, with
// NaN/Inf floats and duplicate values mixed in.
func randRows(rng *rand.Rand, n int) []tuple.Row {
	specials := []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, -0.0, 1.5}
	rows := make([]tuple.Row, n)
	for i := range rows {
		f := rng.Float64() * 100
		if rng.Intn(4) == 0 {
			f = specials[rng.Intn(len(specials))]
		}
		rows[i] = tuple.Row{
			tuple.I(int64(rng.Intn(20) - 10)),
			tuple.F(f),
			tuple.S(fmt.Sprintf("s%02d", rng.Intn(12))),
		}
	}
	return rows
}

func batchOfRows(t *testing.T, rows []tuple.Row) *tuple.Batch {
	t.Helper()
	b := &tuple.Batch{}
	if len(rows) == 0 {
		b.ResetTypes([]tuple.Type{tuple.Int64, tuple.Float64, tuple.String})
		return b
	}
	types := make([]tuple.Type, len(rows[0]))
	for i, v := range rows[0] {
		types[i] = v.T
	}
	b.ResetTypes(types)
	for _, r := range rows {
		if err := b.AppendRow(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	return b
}

func cloneRows(rows []tuple.Row) []tuple.Row {
	out := make([]tuple.Row, len(rows))
	for i, r := range rows {
		out[i] = r.Clone()
	}
	return out
}

// randFinalOps builds a random non-agg pipeline (sort/compute/limit);
// these preserve deterministic row order, so outputs compare exactly.
func randFinalOps(rng *rand.Rand, arity int) []FinalOp {
	var ops []FinalOp
	for n := rng.Intn(4); len(ops) < n; {
		switch rng.Intn(3) {
		case 0:
			keys := []SortKey{{Col: rng.Intn(arity), Desc: rng.Intn(2) == 0}}
			if rng.Intn(2) == 0 {
				keys = append(keys, SortKey{Col: rng.Intn(arity), Desc: rng.Intn(2) == 0})
			}
			ops = append(ops, &FinalSort{Keys: keys})
		case 1:
			exprs := []Expr{
				Col{Idx: rng.Intn(arity)},
				Bin{Op: OpAdd, L: Col{Idx: 0}, R: Const{Val: tuple.I(int64(rng.Intn(5)))}},
			}
			if rng.Intn(2) == 0 {
				exprs = append(exprs, Bin{Op: OpMul, L: Col{Idx: 1}, R: Const{Val: tuple.F(2)}})
			}
			ops = append(ops, &FinalCompute{Exprs: exprs})
			arity = len(exprs)
		case 2:
			ops = append(ops, &FinalLimit{N: rng.Intn(40)})
		}
	}
	return ops
}

func TestFinalOpsBatchRowEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 300; round++ {
		rows := randRows(rng, rng.Intn(60))
		ops := randFinalOps(rng, 3)

		wantRows, err := applyFinalOps(ops, cloneRows(rows))
		if err != nil {
			t.Fatalf("round %d: row path: %v", round, err)
		}
		b, gotDemoted, err := applyFinalOpsCols(ops, batchOfRows(t, rows))
		if err != nil {
			t.Fatalf("round %d: batch path: %v", round, err)
		}
		got := gotDemoted
		if b != nil {
			got = b.Rows()
		}
		wantK, gotK := rowKeys(wantRows), rowKeys(got)
		if len(wantK) != len(gotK) {
			t.Fatalf("round %d ops %v: row path %d rows, batch path %d", round, ops, len(wantK), len(gotK))
		}
		for i := range wantK {
			if wantK[i] != gotK[i] {
				t.Fatalf("round %d ops %v: row %d differs:\n row:   %s\n batch: %s", round, ops, i, wantK[i], gotK[i])
			}
		}
	}
}

// TestFinalAggBatchRowEquivalence feeds partial-layout aggregate rows
// through both merge paths. Output order is map-iteration dependent, so
// results compare as sorted sets.
func TestFinalAggBatchRowEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	specs := []AggSpec{
		{Func: AggCount, Col: -1},
		{Func: AggSum, Col: 1},
		{Func: AggMin, Col: 1},
		{Func: AggMax, Col: 1},
		{Func: AggAvg, Col: 1},
	}
	for round := 0; round < 100; round++ {
		// Partial layout: group col, then count, sum, min, max, avg-sum,
		// avg-count.
		n := rng.Intn(50)
		rows := make([]tuple.Row, n)
		for i := range rows {
			sum := tuple.Value(tuple.I(int64(rng.Intn(100))))
			if rng.Intn(3) == 0 {
				sum = tuple.F(rng.Float64() * 10)
			}
			rows[i] = tuple.Row{
				tuple.I(int64(rng.Intn(6))),
				tuple.I(int64(rng.Intn(10))),
				sum,
				tuple.F(rng.Float64()),
				tuple.F(rng.Float64()),
				tuple.F(rng.Float64() * 5),
				tuple.I(int64(1 + rng.Intn(4))),
			}
		}
		ops := []FinalOp{&FinalAgg{GroupCols: []int{0}, Aggs: specs}}
		wantRows, err := applyFinalOps(ops, cloneRows(rows))
		if err != nil {
			t.Fatal(err)
		}
		// The batch path demotes at the aggregate — mixed int/float sum
		// columns additionally exercise the row fallback inside
		// batchOfRows-incompatible shapes, so batch only the homogeneous
		// rounds.
		hom := true
		for _, r := range rows {
			if r[2].T != rows[0][2].T {
				hom = false
				break
			}
		}
		if !hom || n == 0 {
			continue
		}
		b, gotRows, err := applyFinalOpsCols(ops, batchOfRows(t, rows))
		if err != nil {
			t.Fatal(err)
		}
		if b != nil {
			t.Fatalf("round %d: aggregate must demote to rows", round)
		}
		wantK, gotK := rowKeys(wantRows), rowKeys(gotRows)
		sort.Strings(wantK)
		sort.Strings(gotK)
		if len(wantK) != len(gotK) {
			t.Fatalf("round %d: %d vs %d groups", round, len(wantK), len(gotK))
		}
		for i := range wantK {
			if wantK[i] != gotK[i] {
				t.Fatalf("round %d: group %d differs:\n row:   %s\n batch: %s", round, i, wantK[i], gotK[i])
			}
		}
	}
}

// TestFinalComputeNoPerRowAlloc pins the FinalCompute slab optimization:
// the row form must not allocate one slice per row.
func TestFinalComputeNoPerRowAlloc(t *testing.T) {
	rows := make([]tuple.Row, 4096)
	for i := range rows {
		rows[i] = tuple.Row{tuple.I(int64(i)), tuple.F(float64(i))}
	}
	ops := []FinalOp{&FinalCompute{Exprs: []Expr{
		Col{Idx: 0},
		Bin{Op: OpAdd, L: Col{Idx: 0}, R: Const{Val: tuple.I(7)}},
	}}}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := applyFinalOps(ops, rows); err != nil {
			t.Fatal(err)
		}
	})
	// Compile closures + one slab; anything near len(rows) means the
	// per-row make crept back in.
	if allocs > 64 {
		t.Fatalf("FinalCompute allocations per run = %.0f, want O(1), not O(rows)", allocs)
	}
}

// TestLimitOnlyFinalDetection pins the pushdown predicate.
func TestLimitOnlyFinalDetection(t *testing.T) {
	cases := []struct {
		ops  []FinalOp
		want int
	}{
		{nil, -1},
		{[]FinalOp{&FinalLimit{N: 10}}, 10},
		{[]FinalOp{&FinalLimit{N: 10}, &FinalLimit{N: 3}}, 3},
		{[]FinalOp{&FinalSort{Keys: []SortKey{{Col: 0}}}, &FinalLimit{N: 10}}, -1},
		{[]FinalOp{&FinalLimit{N: 5}, &FinalCompute{Exprs: []Expr{Col{Idx: 0}}}}, -1},
	}
	for i, c := range cases {
		if got := limitOnlyFinal(c.ops); got != c.want {
			t.Fatalf("case %d: got %d, want %d", i, got, c.want)
		}
	}
}
