package engine

import (
	"fmt"
	"sort"

	"orchestra/internal/cluster"
	"orchestra/internal/tuple"
)

// refEval is a naive single-process evaluator used as the correctness
// oracle: every distributed execution must return exactly the multiset this
// produces (complete, duplicate-free answers are the paper's core claim).
func refEval(p *Plan, data map[string][]tuple.Row, schemas map[string]*tuple.Schema) ([]tuple.Row, error) {
	rows, err := refNode(p.Root, data, schemas)
	if err != nil {
		return nil, err
	}
	return applyFinalOps(p.Final, rows)
}

func refNode(n Node, data map[string][]tuple.Row, schemas map[string]*tuple.Schema) ([]tuple.Row, error) {
	switch t := n.(type) {
	case *ScanNode:
		s := schemas[t.Relation]
		var out []tuple.Row
		for _, row := range data[t.Relation] {
			key := tuple.EncodeKey(row, s.KeyColumns())
			if !cluster.KeyPred(t.Pred).Match(string(key)) {
				continue
			}
			if t.Covering {
				out = append(out, row.Project(s.KeyColumns()))
			} else {
				out = append(out, row)
			}
		}
		return out, nil
	case *SelectNode:
		in, err := refNode(t.Child, data, schemas)
		if err != nil {
			return nil, err
		}
		var out []tuple.Row
		for _, row := range in {
			if truth(t.Pred.Eval(row)) {
				out = append(out, row)
			}
		}
		return out, nil
	case *ProjectNode:
		in, err := refNode(t.Child, data, schemas)
		if err != nil {
			return nil, err
		}
		out := make([]tuple.Row, len(in))
		for i, row := range in {
			out[i] = row.Project(t.Cols)
		}
		return out, nil
	case *ComputeNode:
		in, err := refNode(t.Child, data, schemas)
		if err != nil {
			return nil, err
		}
		out := make([]tuple.Row, len(in))
		for i, row := range in {
			r := make(tuple.Row, len(t.Exprs))
			for j, e := range t.Exprs {
				r[j] = e.Eval(row)
			}
			out[i] = r
		}
		return out, nil
	case *JoinNode:
		left, err := refNode(t.Left, data, schemas)
		if err != nil {
			return nil, err
		}
		right, err := refNode(t.Right, data, schemas)
		if err != nil {
			return nil, err
		}
		idx := make(map[string][]tuple.Row)
		for _, r := range right {
			k := string(tuple.EncodeKey(r, t.RightKeys))
			idx[k] = append(idx[k], r)
		}
		var out []tuple.Row
		for _, l := range left {
			k := string(tuple.EncodeKey(l, t.LeftKeys))
			for _, r := range idx[k] {
				out = append(out, l.Concat(r))
			}
		}
		return out, nil
	case *AggNode:
		in, err := refNode(t.Child, data, schemas)
		if err != nil {
			return nil, err
		}
		// Reference aggregation always computes complete results; partial
		// mode layouts are exercised through FinalAgg by building plans
		// whose reference uses a complete AggNode instead.
		return refAggregate(t.GroupCols, t.Aggs, in), nil
	case *RehashNode:
		// Rehash is a pure repartitioning: identity on the multiset.
		return refNode(t.Child, data, schemas)
	default:
		return nil, fmt.Errorf("ref: unknown node %T", n)
	}
}

// refAggregate computes complete aggregates over rows.
func refAggregate(groupCols []int, specs []AggSpec, rows []tuple.Row) []tuple.Row {
	type acc struct {
		groupVals tuple.Row
		counts    []int64
		sums      []float64
		isums     []int64
		allInt    []bool
		mins      []tuple.Value
		maxs      []tuple.Value
	}
	groups := make(map[string]*acc)
	var order []string
	for _, row := range rows {
		gk := string(tuple.EncodeKey(row, groupCols))
		g := groups[gk]
		if g == nil {
			g = &acc{
				groupVals: row.Project(groupCols),
				counts:    make([]int64, len(specs)),
				sums:      make([]float64, len(specs)),
				isums:     make([]int64, len(specs)),
				allInt:    make([]bool, len(specs)),
				mins:      make([]tuple.Value, len(specs)),
				maxs:      make([]tuple.Value, len(specs)),
			}
			for i := range specs {
				g.allInt[i] = true
			}
			groups[gk] = g
			order = append(order, gk)
		}
		for i, spec := range specs {
			var v tuple.Value
			if spec.Col >= 0 {
				v = row[spec.Col]
			}
			switch spec.Func {
			case AggCount:
				g.counts[i]++
			case AggSum, AggAvg:
				if v.T == tuple.Int64 {
					g.isums[i] += v.I64
				} else {
					g.allInt[i] = false
				}
				g.sums[i] += v.AsFloat()
				g.counts[i]++
			case AggMin:
				if g.counts[i] == 0 || v.Cmp(g.mins[i]) < 0 {
					g.mins[i] = v
				}
				g.counts[i]++
			case AggMax:
				if g.counts[i] == 0 || v.Cmp(g.maxs[i]) > 0 {
					g.maxs[i] = v
				}
				g.counts[i]++
			}
		}
	}
	out := make([]tuple.Row, 0, len(groups))
	for _, gk := range order {
		g := groups[gk]
		row := g.groupVals.Clone()
		for i, spec := range specs {
			switch spec.Func {
			case AggCount:
				row = append(row, tuple.I(g.counts[i]))
			case AggSum:
				if g.allInt[i] {
					row = append(row, tuple.I(g.isums[i]))
				} else {
					row = append(row, tuple.F(g.sums[i]))
				}
			case AggMin:
				row = append(row, g.mins[i])
			case AggMax:
				row = append(row, g.maxs[i])
			case AggAvg:
				if g.counts[i] == 0 {
					row = append(row, tuple.F(0))
				} else {
					row = append(row, tuple.F(g.sums[i]/float64(g.counts[i])))
				}
			}
		}
		out = append(out, row)
	}
	return out
}

// sortedRows returns a canonical ordering for multiset comparison.
func sortedRows(rows []tuple.Row) []tuple.Row {
	out := make([]tuple.Row, len(rows))
	copy(out, rows)
	sort.Slice(out, func(i, j int) bool { return out[i].Cmp(out[j]) < 0 })
	return out
}

// rowsEqual compares two row multisets.
func rowsEqual(a, b []tuple.Row) bool {
	if len(a) != len(b) {
		return false
	}
	as, bs := sortedRows(a), sortedRows(b)
	for i := range as {
		if !as[i].Equal(bs[i]) {
			return false
		}
	}
	return true
}

// diffSummary describes the first few differences between row multisets.
func diffSummary(got, want []tuple.Row) string {
	gs, ws := sortedRows(got), sortedRows(want)
	msg := fmt.Sprintf("got %d rows, want %d rows", len(gs), len(ws))
	for i := 0; i < len(gs) || i < len(ws); i++ {
		var g, w string
		if i < len(gs) {
			g = gs[i].String()
		}
		if i < len(ws) {
			w = ws[i].String()
		}
		if g != w {
			return fmt.Sprintf("%s; first diff at %d: got %s want %s", msg, i, g, w)
		}
	}
	return msg
}
