package engine

import (
	"encoding/binary"
	"errors"
	"fmt"

	"orchestra/internal/ring"
)

// recoverDirective is the initiator's recovery broadcast (§V-D): the new
// phase number, the snapshot-member indices of ALL nodes failed so far
// (cumulative, so that directives are order-insensitive), and the recovery
// routing table (survivors keep their ranges; failed ranges are split among
// the failed node's replicas).
type recoverDirective struct {
	newPhase   uint32
	failedIdxs []int
	newTable   *ring.Table
}

func encodeRecoverDirective(d recoverDirective) ([]byte, error) {
	out := binary.BigEndian.AppendUint32(nil, d.newPhase)
	out = binary.AppendUvarint(out, uint64(len(d.failedIdxs)))
	for _, idx := range d.failedIdxs {
		out = binary.AppendUvarint(out, uint64(idx))
	}
	tb, err := d.newTable.MarshalBinary()
	if err != nil {
		return nil, err
	}
	out = binary.AppendUvarint(out, uint64(len(tb)))
	return append(out, tb...), nil
}

func decodeRecoverDirective(data []byte) (recoverDirective, error) {
	var d recoverDirective
	if len(data) < 4 {
		return d, errors.New("engine: short recover directive")
	}
	d.newPhase = binary.BigEndian.Uint32(data)
	data = data[4:]
	count, n := binary.Uvarint(data)
	if n <= 0 || count > 1<<16 {
		return d, errors.New("engine: bad failed count")
	}
	data = data[n:]
	for i := uint64(0); i < count; i++ {
		idx, n := binary.Uvarint(data)
		if n <= 0 {
			return d, errors.New("engine: bad failed index")
		}
		d.failedIdxs = append(d.failedIdxs, int(idx))
		data = data[n:]
	}
	l, n := binary.Uvarint(data)
	if n <= 0 || len(data) < n+int(l) {
		return d, errors.New("engine: bad recover table")
	}
	table, err := ring.UnmarshalTable(data[n : n+int(l)])
	if err != nil {
		return d, err
	}
	d.newTable = table
	return d, nil
}

// initiateRecovery runs at the query initiator when a node failure is
// detected mid-query with incremental recovery enabled. It determines the
// change in range assignment (stage 1 of §V-D), then broadcasts the
// directive so every live node performs stages 2-4.
func (ex *executor) initiateRecovery(failed ring.NodeID) error {
	ex.mu.Lock()
	if !ex.table.Contains(failed) {
		ex.mu.Unlock()
		return nil // already handled
	}
	idx, ok := ex.snapshot.MemberIndex(failed)
	if !ok {
		ex.mu.Unlock()
		return fmt.Errorf("engine: failed node %s not in snapshot", failed)
	}
	newTable, err := ex.table.WithoutNodes([]ring.NodeID{failed})
	if err != nil {
		ex.mu.Unlock()
		return err
	}
	// Cumulative failed set: every index failed so far plus the new one,
	// so a node that misses or reorders directives still converges.
	failedIdxs := []int{idx}
	for i := 0; i < ex.snapshot.Size(); i++ {
		if ex.failed.Has(i) {
			failedIdxs = append(failedIdxs, i)
		}
	}
	dir := recoverDirective{
		newPhase:   ex.phase + 1,
		failedIdxs: failedIdxs,
		newTable:   newTable,
	}
	ex.mu.Unlock()

	// Mark locally before any recovery traffic can possibly arrive back.
	ex.markFailed(dir.failedIdxs)

	payload := ex.header(nil)
	body, err := encodeRecoverDirective(dir)
	if err != nil {
		return err
	}
	payload = append(payload, body...)
	// Broadcast to the survivors, then apply locally. Per-link FIFO from
	// the initiator guarantees every node sees the directive before any
	// later traffic the initiator produces for the new phase.
	for _, id := range newTable.Members() {
		if id == ex.self() {
			continue
		}
		_ = ex.eng.node.Endpoint().Send(id, msgRecover, payload)
	}
	ex.applyRecover(dir)
	return nil
}

// applyRecover performs the local portion of incremental recomputation
// (§V-D stages 2-4) on every live node:
//
//  2. Drop all intermediate results dependent on data from the failed
//     nodes: purge tainted tuples from join build tables, drop tainted
//     aggregate sub-groups, discard tainted pending scan IDs, and (at the
//     initiator) purge tainted collected results.
//  3. Restart leaf-level operations for the failed nodes' hash key space
//     ranges: re-run the index side over inherited ranges.
//  4. Re-create data that was sent to the failed nodes' ranges: replay the
//     exchange output caches for tuples whose destination died, routed by
//     the recovery table and tagged with the new phase.
func (ex *executor) applyRecover(dir recoverDirective) {
	// Serialize whole recovery applications: directives dispatched on
	// separate goroutines must not interleave their purge/replay stages.
	ex.recoverMu.Lock()
	defer ex.recoverMu.Unlock()

	ex.mu.Lock()
	if dir.newPhase <= ex.phase {
		ex.mu.Unlock()
		return // duplicate or out-of-date directive (failed sets are
		// cumulative, so the newer directive subsumes this one)
	}
	prevTable := ex.table
	ex.table = dir.newTable
	ex.phase = dir.newPhase
	for _, idx := range dir.failedIdxs {
		ex.failed.Set(idx)
	}
	failed := ex.failed.Clone()
	newPhase := ex.phase
	ex.mu.Unlock()

	// Stage 2: purge tainted state everywhere.
	for _, r := range ex.recoverables {
		r.recover(failed)
	}
	for _, leaf := range ex.scans {
		leaf.purgeTainted(failed)
	}
	if ex.shipCons != nil {
		ex.shipCons.purge(failed)
	}

	// Stage 4: replay cached exchange output bound for failed nodes.
	for _, prod := range ex.producers {
		prod.replay(failed, dir.newTable, newPhase)
	}

	// Stage 3: restart leaf-level operations for the inherited ranges. A
	// range is inherited if this node owns it now but did not before.
	self := ex.self()
	var inherited []ring.Range
	for _, mv := range ring.Diff(prevTable, dir.newTable) {
		if mv.To == self {
			inherited = append(inherited, mv.Range)
		}
	}
	for _, leaf := range ex.scans {
		tick := leaf.idxSeq.ticket()
		go leaf.runIndexSide(newPhase, inherited, prevTable, tick)
	}

	// The live set shrank and the phase advanced: re-evaluate every gate
	// that might already hold all the markers it needs.
	for _, leaf := range ex.scans {
		leaf.recheck()
	}
	for _, cons := range ex.consumers {
		cons.recheck()
	}
	if ex.shipCons != nil {
		ex.shipCons.recheck()
	}
}
