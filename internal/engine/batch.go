package engine

// Column-major batch flow through the operator pipeline. The scan leaf
// decodes tuple records straight into tuple.Batch column vectors; the
// stateless row-shaping operators (select, project, compute's input edge)
// process whole batches — compiled predicates evaluate into a selection
// Bitset and the batch compacts in place, projection rearranges column
// headers in O(arity) — and the ship operator forwards batches columnar
// to the initiator's collection accumulator, so a plain scan query never
// materializes rows anywhere. The first sink that is not batch-aware
// receives the rows materialized from one backing slab. Stateful
// operators (join, aggregate, exchange) keep their per-row form: their
// semantics (provenance unions, sub-group bookkeeping, destination
// batching) are row-granular by design.
//
// Batches flow only in no-provenance mode wholesale: with provenance on,
// each scanned tuple carries its own mutable Prov bitset (origin node plus
// the requesting index node), so the scan uses the row path there.

import (
	"sync"

	"orchestra/internal/tuple"
)

// colBatch is a columnar batch annotated with the engine metadata every
// row of the batch shares.
type colBatch struct {
	cols  tuple.Batch
	phase uint32
	prov  Prov // per-row prototype, cloned at materialization; nil = none
}

// batchSink is implemented by operators that can consume columnar batches
// directly. pushCols transfers no ownership: the callee must either fully
// process the batch (and may mutate it in place) before returning, or
// materialize — it must not retain the batch or its vectors.
type batchSink interface {
	sink
	pushCols(cb *colBatch)
}

// materialize converts the batch into engine tuples: all rows are carved
// from a single backing slab (tuple.Batch.Rows), so the per-row cost is a
// value copy, not an allocation.
func (cb *colBatch) materialize() []Tup {
	rows := cb.cols.Rows()
	ts := make([]Tup, len(rows))
	for i, row := range rows {
		ts[i] = Tup{Row: row, Phase: cb.phase}
		if cb.prov != nil {
			ts[i].Prov = cb.prov.Clone()
		}
	}
	return ts
}

// resultBatchPool recycles the columnar slabs that back query answers:
// each served query's Result.Batch returns here (RecycleResultBatch) once
// its wire frames are flushed, so steady-state serving reuses the same
// vector arenas instead of re-growing (and collecting) them per query.
var resultBatchPool = sync.Pool{New: func() any { return &tuple.Batch{} }}

// maxPooledBatchRows bounds what returns to the pool: one freak result
// must not pin its slabs in the pool forever.
const maxPooledBatchRows = 1 << 20

// getResultBatch takes an empty, untyped batch from the pool. Its first
// AppendBatchInto/DecodeBatchInto adopts the incoming column types while
// reusing whatever vector capacity the previous life left behind.
func getResultBatch() *tuple.Batch {
	b := resultBatchPool.Get().(*tuple.Batch)
	b.ResetTypes(nil)
	return b
}

// RecycleResultBatch returns a query answer's columnar slab to the arena
// pool. Callers must be completely done with the batch — including every
// Slice view and every string still aliasing its vectors' backing.
func RecycleResultBatch(b *tuple.Batch) {
	if b == nil || b.N > maxPooledBatchRows {
		return
	}
	b.Truncate(0)
	b.ClearStrings() // a parked batch must not pin its result's strings
	resultBatchPool.Put(b)
}

// asBatchSink resolves the batch-aware view of a sink once, at plan build
// time, so the per-batch hand-off is a nil check instead of a type assert.
func asBatchSink(out sink) batchSink {
	bs, _ := out.(batchSink)
	return bs
}

// forwardBatch hands a batch to out: columnar when out is batch-aware
// (outB non-nil), materialized otherwise. Empty batches are dropped — the
// phase gates run on eos, not on data.
func forwardBatch(out sink, outB batchSink, cb *colBatch) {
	if cb.cols.N == 0 {
		return
	}
	if outB != nil {
		outB.pushCols(cb)
		return
	}
	out.push(cb.materialize())
}
