package engine

import (
	"testing"
	"time"

	"orchestra/internal/tuple"
)

// TestPartialAggRecoveryRegression pins the partial-aggregation recovery
// protocol: per-provenance delta emission and eager failed-bit marking.
// Earlier versions lost boundary tuples whose index page lived at the
// victim but whose data lived at a survivor.
func TestPartialAggRecoveryRegression(t *testing.T) {
	h := newHarness(t, 6)
	h.create(tuple.MustSchema("big",
		[]tuple.Column{{Name: "k", Type: tuple.Int64}, {Name: "g", Type: tuple.Int64}}, "k"))
	rows := make([]tuple.Row, 30000)
	for i := range rows {
		rows[i] = tuple.Row{tuple.I(int64(i)), tuple.I(int64(i % 37))}
	}
	h.publish("big", rows)

	specs := []AggSpec{{Func: AggCount, Col: -1}}
	p := &Plan{
		Root: &AggNode{
			GroupCols: []int{0},
			Aggs:      specs,
			Mode:      AggPartial,
			Child: &ComputeNode{
				Exprs: []Expr{C(1), CI(1)},
				Child: &ScanNode{Relation: "big"},
			},
		},
		Final: []FinalOp{&FinalAgg{GroupCols: []int{0}, Aggs: []AggSpec{{Func: AggCount, Col: 1}}}},
	}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 1; trial++ {
		victim := h.local.Node(3).ID()
		go func(d int) {
			time.Sleep(time.Duration(2+d) * time.Millisecond)
			h.local.Kill(victim)
		}(trial % 4)
		res, err := h.engines[0].Run(h.ctx(), p, Options{Recovery: RecoverIncremental})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var total, scanned int64
		for _, r := range res.Rows {
			total += r[1].AsInt()
		}
		scanned = int64(res.TotalStats().Scanned)
		t.Logf("trial %d: groups=%d total=%d scanned=%d phases=%d",
			trial, len(res.Rows), total, scanned, res.Phases)
		if total != 30000 {
			t.Fatalf("trial %d: total=%d scanned=%d phases=%d", trial, total, scanned, res.Phases)
		}
		// Only the first trial has a live victim; subsequent trials run on
		// the survivors.
		break
	}
}
