package engine

import (
	"context"
	"testing"
	"time"

	"orchestra/internal/cluster"
	"orchestra/internal/kvstore"
	"orchestra/internal/ring"
	"orchestra/internal/transport"
	"orchestra/internal/tuple"
	"orchestra/internal/vstore"
)

// TestTCPClusterEndToEnd runs the full storage + query stack over real TCP
// sockets (the deployment mode of cmd/orchestra-node): create a relation,
// publish, and execute a distributed join with a rehash.
func TestTCPClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const n = 3
	// Reserve loopback addresses by briefly binding :0.
	addrs := make([]string, n)
	for i := range addrs {
		tmp, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = tmp.Addr()
		tmp.Close()
	}

	ids := make([]ring.NodeID, n)
	for i, a := range addrs {
		ids[i] = ring.NodeID(a)
	}
	table, err := ring.New(ids, ring.Balanced, 2)
	if err != nil {
		t.Fatal(err)
	}

	nodes := make([]*cluster.Node, n)
	engines := make([]*Engine, n)
	for i, a := range addrs {
		ep, err := transport.ListenTCP(a)
		if err != nil {
			t.Fatalf("listen %s: %v", a, err)
		}
		nodes[i] = cluster.NewNode(ep, kvstore.NewMemory(), table, cluster.Config{Replication: 2})
		engines[i] = New(nodes[i])
	}
	defer func() {
		for _, nd := range nodes {
			nd.Close()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	rSchema := tuple.MustSchema("R",
		[]tuple.Column{{Name: "x", Type: tuple.Int64}, {Name: "y", Type: tuple.Int64}}, "x")
	sSchema := tuple.MustSchema("S",
		[]tuple.Column{{Name: "y", Type: tuple.Int64}, {Name: "z", Type: tuple.Int64}}, "y")
	if err := nodes[0].CreateRelation(ctx, rSchema); err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].CreateRelation(ctx, sSchema); err != nil {
		t.Fatal(err)
	}

	var rUps, sUps []vstore.Update
	for i := 0; i < 200; i++ {
		rUps = append(rUps, vstore.Update{Op: vstore.OpInsert,
			Row: tuple.Row{tuple.I(int64(i)), tuple.I(int64(i % 20))}})
	}
	for i := 0; i < 20; i++ {
		sUps = append(sUps, vstore.Update{Op: vstore.OpInsert,
			Row: tuple.Row{tuple.I(int64(i)), tuple.I(int64(i * 100))}})
	}
	if _, err := nodes[0].Publish(ctx, "R", rUps); err != nil {
		t.Fatal(err)
	}
	if _, err := nodes[1].Publish(ctx, "S", sUps); err != nil {
		t.Fatal(err)
	}

	p := &Plan{Root: &JoinNode{
		LeftKeys:  []int{1},
		RightKeys: []int{0},
		Left:      &RehashNode{Keys: []int{1}, Child: &ScanNode{Relation: "R"}},
		Right:     &RehashNode{Keys: []int{0}, Child: &ScanNode{Relation: "S"}},
	}}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	res, err := engines[2].Run(ctx, p, Options{})
	if err != nil {
		t.Fatalf("query over TCP: %v", err)
	}
	if len(res.Rows) != 200 {
		t.Fatalf("got %d join rows, want 200", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r[1].AsInt() != r[2].AsInt() || r[3].AsInt() != r[1].AsInt()*100 {
			t.Fatalf("bad join row %v", r)
		}
	}
}
