package engine

// One-time compilation of Expr trees into closure-based evaluators. The
// interpreted Expr.Eval walks the tree per row, re-dispatching on node and
// operator kinds for every tuple; the scan path instead compiles each
// query's expressions once into closures with the dispatch hoisted out —
// a scalar form (per row), a boolean predicate form (select operators),
// and a batch form that evaluates a predicate over the column vectors of a
// tuple.Batch into a selection Bitset. All three forms agree exactly with
// Expr.Eval, including on zero/invalid values (property-tested in
// compile_test.go).

import (
	"strings"

	"orchestra/internal/tuple"
)

// evalFn is a compiled scalar expression.
type evalFn func(tuple.Row) tuple.Value

// predFn is a compiled boolean predicate.
type predFn func(tuple.Row) bool

// batchPredFn marks the rows of b that satisfy a predicate in sel. sel
// must be zeroed and sized for b.N bits. Implementations are pure and safe
// for concurrent use (operators can be pushed to from several goroutines).
type batchPredFn func(b *tuple.Batch, sel Bitset)

// opWants maps a comparison operator to the Cmp outcomes it accepts.
func opWants(op OpCode) (lt, eq, gt bool) {
	switch op {
	case OpEq:
		return false, true, false
	case OpNe:
		return true, false, true
	case OpLt:
		return true, false, false
	case OpLe:
		return true, true, false
	case OpGt:
		return false, false, true
	case OpGe:
		return false, true, true
	}
	return false, false, false
}

func isCmp(op OpCode) bool { return op >= OpEq && op <= OpGe }

// cmpFloat mirrors Value.Cmp's float ordering exactly, including its
// NaN-compares-equal quirk (neither < nor > holds, so the switch answers 0).
func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// compileExpr builds the scalar evaluator for e.
func compileExpr(e Expr) evalFn {
	switch t := e.(type) {
	case Col:
		idx := t.Idx
		return func(row tuple.Row) tuple.Value { return row[idx] }
	case Const:
		v := t.Val
		return func(tuple.Row) tuple.Value { return v }
	case Not:
		p := compilePred(t.E)
		return func(row tuple.Row) tuple.Value { return boolVal(!p(row)) }
	case Bin:
		if isCmp(t.Op) || t.Op == OpAnd || t.Op == OpOr {
			p := compilePred(t)
			return func(row tuple.Row) tuple.Value { return boolVal(p(row)) }
		}
		return compileArith(t)
	default:
		return e.Eval // unknown node kinds keep interpreted semantics
	}
}

// compileArith compiles Concat and the arithmetic operators (everything
// Bin.Eval handles after its comparison block).
func compileArith(b Bin) evalFn {
	l, r := compileExpr(b.L), compileExpr(b.R)
	switch b.Op {
	case OpConcat:
		return func(row tuple.Row) tuple.Value {
			return tuple.S(l(row).String() + r(row).String())
		}
	case OpAdd:
		return func(row tuple.Row) tuple.Value {
			lv, rv := l(row), r(row)
			if lv.T == tuple.Int64 && rv.T == tuple.Int64 {
				return tuple.I(lv.I64 + rv.I64)
			}
			return tuple.F(lv.AsFloat() + rv.AsFloat())
		}
	case OpSub:
		return func(row tuple.Row) tuple.Value {
			lv, rv := l(row), r(row)
			if lv.T == tuple.Int64 && rv.T == tuple.Int64 {
				return tuple.I(lv.I64 - rv.I64)
			}
			return tuple.F(lv.AsFloat() - rv.AsFloat())
		}
	case OpMul:
		return func(row tuple.Row) tuple.Value {
			lv, rv := l(row), r(row)
			if lv.T == tuple.Int64 && rv.T == tuple.Int64 {
				return tuple.I(lv.I64 * rv.I64)
			}
			return tuple.F(lv.AsFloat() * rv.AsFloat())
		}
	case OpDiv:
		return func(row tuple.Row) tuple.Value {
			lv, rv := l(row), r(row)
			if lv.T == tuple.Int64 && rv.T == tuple.Int64 {
				if rv.I64 == 0 {
					return tuple.I(0)
				}
				return tuple.I(lv.I64 / rv.I64)
			}
			rf := rv.AsFloat()
			if rf == 0 {
				return tuple.F(0)
			}
			return tuple.F(lv.AsFloat() / rf)
		}
	default:
		// Unknown operator: Bin.Eval answers I(0).
		return func(tuple.Row) tuple.Value { return tuple.I(0) }
	}
}

// compilePred builds the boolean evaluator for e (truth of its value).
func compilePred(e Expr) predFn {
	switch t := e.(type) {
	case Not:
		p := compilePred(t.E)
		return func(row tuple.Row) bool { return !p(row) }
	case Bin:
		switch {
		case t.Op == OpAnd:
			l, r := compilePred(t.L), compilePred(t.R)
			return func(row tuple.Row) bool { return l(row) && r(row) }
		case t.Op == OpOr:
			l, r := compilePred(t.L), compilePred(t.R)
			return func(row tuple.Row) bool { return l(row) || r(row) }
		case isCmp(t.Op):
			return compileCmpPred(t)
		}
	}
	f := compileExpr(e)
	return func(row tuple.Row) bool { return truth(f(row)) }
}

// compileCmpPred compiles a comparison, fast-pathing the dominant
// column-vs-literal shape so the common filter costs one type check and
// one machine comparison per row.
func compileCmpPred(b Bin) predFn {
	lt, eq, gt := opWants(b.Op)
	holds := func(c int) bool {
		return (c < 0 && lt) || (c == 0 && eq) || (c > 0 && gt)
	}
	if col, ok := b.L.(Col); ok {
		if cst, ok2 := b.R.(Const); ok2 {
			idx, cv := col.Idx, cst.Val
			switch cv.T {
			case tuple.Int64:
				ci := cv.I64
				return func(row tuple.Row) bool {
					v := row[idx]
					if v.T == tuple.Int64 {
						return (v.I64 < ci && lt) || (v.I64 == ci && eq) || (v.I64 > ci && gt)
					}
					return holds(v.Cmp(cv))
				}
			case tuple.String:
				cs := cv.Str
				return func(row tuple.Row) bool {
					v := row[idx]
					if v.T == tuple.String {
						return holds(strings.Compare(v.Str, cs))
					}
					return holds(v.Cmp(cv))
				}
			case tuple.Float64:
				cf := cv.F64
				return func(row tuple.Row) bool {
					v := row[idx]
					if v.T == tuple.Float64 {
						return holds(cmpFloat(v.F64, cf))
					}
					return holds(v.Cmp(cv))
				}
			}
		}
	}
	l, r := compileExpr(b.L), compileExpr(b.R)
	return func(row tuple.Row) bool { return holds(l(row).Cmp(r(row))) }
}

// compileBatchPred builds the vectorized evaluator for e: it marks passing
// rows in a selection bitset, running tight loops over typed column
// vectors for the common shapes and falling back to the compiled scalar
// predicate over materialized rows otherwise.
func compileBatchPred(e Expr) batchPredFn {
	switch t := e.(type) {
	case Not:
		inner := compileBatchPred(t.E)
		return func(b *tuple.Batch, sel Bitset) {
			inner(b, sel)
			sel.FlipFirst(b.N)
		}
	case Bin:
		switch {
		case t.Op == OpAnd:
			l, r := compileBatchPred(t.L), compileBatchPred(t.R)
			return func(b *tuple.Batch, sel Bitset) {
				l(b, sel)
				scratch := NewBitset(b.N)
				r(b, scratch)
				sel.AndWith(scratch)
			}
		case t.Op == OpOr:
			l, r := compileBatchPred(t.L), compileBatchPred(t.R)
			return func(b *tuple.Batch, sel Bitset) {
				l(b, sel)
				scratch := NewBitset(b.N)
				r(b, scratch)
				sel.OrWith(scratch)
			}
		case isCmp(t.Op):
			if col, ok := t.L.(Col); ok {
				if cst, ok2 := t.R.(Const); ok2 {
					return compileBatchCmpColConst(t.Op, col.Idx, cst.Val)
				}
			}
		}
	}
	// Generic fallback: compiled scalar over a reused row view.
	p := compilePred(e)
	return func(b *tuple.Batch, sel Bitset) {
		row := make(tuple.Row, len(b.Cols))
		for i := 0; i < b.N; i++ {
			if p(b.Row(i, row)) {
				sel.Set(i)
			}
		}
	}
}

// compileBatchCmpColConst vectorizes `column <op> literal` over one typed
// vector. Column types can vary batch to batch in general pipelines, so
// the type dispatch happens once per batch, then the loop is tight.
func compileBatchCmpColConst(op OpCode, idx int, cv tuple.Value) batchPredFn {
	lt, eq, gt := opWants(op)
	return func(b *tuple.Batch, sel Bitset) {
		if idx >= len(b.Cols) {
			// Out-of-range column reference: preserve interpreted behavior
			// (a panic on evaluation), rather than silently selecting none.
			_ = b.Cols[idx]
		}
		v := &b.Cols[idx]
		n := b.N
		switch {
		case v.T == tuple.Int64 && cv.T == tuple.Int64:
			c := cv.I64
			for i, x := range v.I64[:n] {
				if (x < c && lt) || (x == c && eq) || (x > c && gt) {
					sel.Set(i)
				}
			}
		case v.T == tuple.Float64 && (cv.T == tuple.Float64 || cv.T == tuple.Int64):
			c := cv.AsFloat()
			for i, x := range v.F64[:n] {
				cmp := cmpFloat(x, c)
				if (cmp < 0 && lt) || (cmp == 0 && eq) || (cmp > 0 && gt) {
					sel.Set(i)
				}
			}
		case v.T == tuple.Int64 && cv.T == tuple.Float64:
			c := cv.F64
			for i, x := range v.I64[:n] {
				cmp := cmpFloat(float64(x), c)
				if (cmp < 0 && lt) || (cmp == 0 && eq) || (cmp > 0 && gt) {
					sel.Set(i)
				}
			}
		case v.T == tuple.String && cv.T == tuple.String:
			c := cv.Str
			for i, x := range v.Str[:n] {
				cmp := strings.Compare(x, c)
				if (cmp < 0 && lt) || (cmp == 0 && eq) || (cmp > 0 && gt) {
					sel.Set(i)
				}
			}
		default:
			// Cross-type, non-numeric comparison: Value.Cmp orders by type
			// tag alone, so the outcome is uniform across the column.
			if n > 0 && holdsUniform(v, cv, lt, eq, gt) {
				sel.SetFirst(n)
			}
		}
	}
}

// holdsUniform evaluates the type-tag-only comparison for a whole column.
func holdsUniform(v *tuple.ColVec, cv tuple.Value, lt, eq, gt bool) bool {
	c := v.Value(0).Cmp(cv)
	return (c < 0 && lt) || (c == 0 && eq) || (c > 0 && gt)
}

// compileExprs compiles a list of scalar expressions.
func compileExprs(exprs []Expr) []evalFn {
	out := make([]evalFn, len(exprs))
	for i, e := range exprs {
		out[i] = compileExpr(e)
	}
	return out
}
