package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"

	"orchestra/internal/tuple"
)

// Expr is a serializable scalar expression evaluated per tuple by the
// select and compute-function operators (Table I).
type Expr interface {
	// Eval computes the expression over a row.
	Eval(row tuple.Row) tuple.Value
	// append serializes the expression.
	append(dst []byte) []byte
	// String renders the expression for diagnostics.
	String() string
}

// Comparison and arithmetic operator codes.
type OpCode uint8

const (
	OpEq OpCode = iota + 1
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpAnd
	OpOr
	OpConcat
)

func (o OpCode) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpConcat:
		return "||"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// expression node tags for serialization.
const (
	exprCol   = byte(1)
	exprConst = byte(2)
	exprBin   = byte(3)
	exprNot   = byte(4)
)

// Col references an input column by position.
type Col struct{ Idx int }

// Eval returns the referenced column value.
func (c Col) Eval(row tuple.Row) tuple.Value { return row[c.Idx] }

func (c Col) append(dst []byte) []byte {
	dst = append(dst, exprCol)
	return binary.AppendUvarint(dst, uint64(c.Idx))
}

func (c Col) String() string { return fmt.Sprintf("$%d", c.Idx) }

// Const is a literal value.
type Const struct{ Val tuple.Value }

// Eval returns the literal.
func (c Const) Eval(tuple.Row) tuple.Value { return c.Val }

func (c Const) append(dst []byte) []byte {
	dst = append(dst, exprConst)
	return tuple.AppendKeyValue(dst, c.Val)
}

func (c Const) String() string {
	if c.Val.T == tuple.String {
		return fmt.Sprintf("%q", c.Val.Str)
	}
	return c.Val.String()
}

// Bin applies a binary operator.
type Bin struct {
	Op   OpCode
	L, R Expr
}

// truth converts a value to a boolean (nonzero / nonempty).
func truth(v tuple.Value) bool {
	switch v.T {
	case tuple.Int64:
		return v.I64 != 0
	case tuple.Float64:
		return v.F64 != 0
	case tuple.String:
		return v.Str != ""
	default:
		return false
	}
}

func boolVal(b bool) tuple.Value {
	if b {
		return tuple.I(1)
	}
	return tuple.I(0)
}

// Eval computes the binary operation with numeric coercion.
func (b Bin) Eval(row tuple.Row) tuple.Value {
	switch b.Op {
	case OpAnd:
		return boolVal(truth(b.L.Eval(row)) && truth(b.R.Eval(row)))
	case OpOr:
		return boolVal(truth(b.L.Eval(row)) || truth(b.R.Eval(row)))
	}
	l := b.L.Eval(row)
	r := b.R.Eval(row)
	switch b.Op {
	case OpEq:
		return boolVal(l.Cmp(r) == 0)
	case OpNe:
		return boolVal(l.Cmp(r) != 0)
	case OpLt:
		return boolVal(l.Cmp(r) < 0)
	case OpLe:
		return boolVal(l.Cmp(r) <= 0)
	case OpGt:
		return boolVal(l.Cmp(r) > 0)
	case OpGe:
		return boolVal(l.Cmp(r) >= 0)
	case OpConcat:
		return tuple.S(l.String() + r.String())
	case OpAdd, OpSub, OpMul, OpDiv:
		if l.T == tuple.Int64 && r.T == tuple.Int64 {
			switch b.Op {
			case OpAdd:
				return tuple.I(l.I64 + r.I64)
			case OpSub:
				return tuple.I(l.I64 - r.I64)
			case OpMul:
				return tuple.I(l.I64 * r.I64)
			case OpDiv:
				if r.I64 == 0 {
					return tuple.I(0)
				}
				return tuple.I(l.I64 / r.I64)
			}
		}
		lf, rf := l.AsFloat(), r.AsFloat()
		switch b.Op {
		case OpAdd:
			return tuple.F(lf + rf)
		case OpSub:
			return tuple.F(lf - rf)
		case OpMul:
			return tuple.F(lf * rf)
		case OpDiv:
			if rf == 0 {
				return tuple.F(0)
			}
			return tuple.F(lf / rf)
		}
	}
	return tuple.I(0)
}

func (b Bin) append(dst []byte) []byte {
	dst = append(dst, exprBin, byte(b.Op))
	dst = b.L.append(dst)
	return b.R.append(dst)
}

func (b Bin) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// Not negates a boolean expression.
type Not struct{ E Expr }

// Eval negates the operand's truth value.
func (n Not) Eval(row tuple.Row) tuple.Value { return boolVal(!truth(n.E.Eval(row))) }

func (n Not) append(dst []byte) []byte {
	dst = append(dst, exprNot)
	return n.E.append(dst)
}

func (n Not) String() string { return fmt.Sprintf("NOT %s", n.E) }

// Convenience constructors.

// C references column i.
func C(i int) Expr { return Col{Idx: i} }

// CI builds an int literal.
func CI(v int64) Expr { return Const{Val: tuple.I(v)} }

// CF builds a float literal.
func CF(v float64) Expr { return Const{Val: tuple.F(v)} }

// CS builds a string literal.
func CS(v string) Expr { return Const{Val: tuple.S(v)} }

// B builds a binary expression.
func B(op OpCode, l, r Expr) Expr { return Bin{Op: op, L: l, R: r} }

// EncodeExpr serializes an expression.
func EncodeExpr(e Expr) []byte { return e.append(nil) }

// DecodeExpr parses a serialized expression, returning it and the bytes
// consumed.
func DecodeExpr(data []byte) (Expr, int, error) {
	if len(data) == 0 {
		return nil, 0, errors.New("engine: empty expression")
	}
	switch data[0] {
	case exprCol:
		idx, n := binary.Uvarint(data[1:])
		if n <= 0 {
			return nil, 0, errors.New("engine: bad column ref")
		}
		return Col{Idx: int(idx)}, 1 + n, nil
	case exprConst:
		vals, err := decodeOneKeyValue(data[1:])
		if err != nil {
			return nil, 0, err
		}
		return Const{Val: vals.v}, 1 + vals.n, nil
	case exprBin:
		if len(data) < 2 {
			return nil, 0, errors.New("engine: truncated binop")
		}
		op := OpCode(data[1])
		l, ln, err := DecodeExpr(data[2:])
		if err != nil {
			return nil, 0, err
		}
		r, rn, err := DecodeExpr(data[2+ln:])
		if err != nil {
			return nil, 0, err
		}
		return Bin{Op: op, L: l, R: r}, 2 + ln + rn, nil
	case exprNot:
		e, n, err := DecodeExpr(data[1:])
		if err != nil {
			return nil, 0, err
		}
		return Not{E: e}, 1 + n, nil
	default:
		return nil, 0, fmt.Errorf("engine: unknown expr tag %d", data[0])
	}
}

type decodedValue struct {
	v tuple.Value
	n int
}

// decodeOneKeyValue decodes a single AppendKeyValue-encoded value and
// reports its length.
func decodeOneKeyValue(data []byte) (decodedValue, error) {
	if len(data) == 0 {
		return decodedValue{}, errors.New("engine: empty const")
	}
	switch data[0] {
	case 0x01, 0x02: // int64 / float64: tag + 8 bytes
		if len(data) < 9 {
			return decodedValue{}, errors.New("engine: truncated const")
		}
		vals, err := tuple.DecodeKey(data[:9])
		if err != nil {
			return decodedValue{}, err
		}
		return decodedValue{v: vals[0], n: 9}, nil
	case 0x03: // string: find the 0x00 0x00 terminator honoring escapes
		i := 1
		for i < len(data) {
			if data[i] != 0x00 {
				i++
				continue
			}
			if i+1 >= len(data) {
				return decodedValue{}, errors.New("engine: truncated const string")
			}
			if data[i+1] == 0x00 {
				vals, err := tuple.DecodeKey(data[:i+2])
				if err != nil {
					return decodedValue{}, err
				}
				return decodedValue{v: vals[0], n: i + 2}, nil
			}
			i += 2 // escape pair
		}
		return decodedValue{}, errors.New("engine: unterminated const string")
	default:
		return decodedValue{}, fmt.Errorf("engine: bad const tag %d", data[0])
	}
}

// exprList helpers for plans with several expressions.

func encodeExprs(dst []byte, exprs []Expr) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(exprs)))
	for _, e := range exprs {
		dst = e.append(dst)
	}
	return dst
}

func decodeExprs(data []byte) ([]Expr, int, error) {
	count, n := binary.Uvarint(data)
	if n <= 0 || count > 1<<16 {
		return nil, 0, errors.New("engine: bad expr list")
	}
	off := n
	out := make([]Expr, 0, count)
	for i := uint64(0); i < count; i++ {
		e, m, err := DecodeExpr(data[off:])
		if err != nil {
			return nil, 0, err
		}
		out = append(out, e)
		off += m
	}
	return out, off, nil
}

func exprsString(exprs []Expr) string {
	parts := make([]string, len(exprs))
	for i, e := range exprs {
		parts[i] = e.String()
	}
	return strings.Join(parts, ", ")
}
