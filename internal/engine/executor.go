package engine

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"orchestra/internal/cluster"
	"orchestra/internal/keyspace"
	"orchestra/internal/obs"
	"orchestra/internal/ring"
	"orchestra/internal/transport"
	"orchestra/internal/tuple"
	"orchestra/internal/vstore"
)

// Message types used by the query engine (storage types live in 0x0100+).
const (
	msgPrepare   transport.MsgType = 0x0200 // RPC: disseminate plan + snapshot
	msgBegin     transport.MsgType = 0x0201 // start leaf operations
	msgExchBatch transport.MsgType = 0x0202 // rehash data block
	msgExchEOS   transport.MsgType = 0x0203 // rehash end-of-stream for a phase
	msgScanIDs   transport.MsgType = 0x0204 // index node → data node tuple IDs
	msgScanDone  transport.MsgType = 0x0205 // index-side completion marker
	msgShipBatch transport.MsgType = 0x0206 // results to the query initiator
	msgShipEOS   transport.MsgType = 0x0207 // fragment completion + stats
	msgRecover   transport.MsgType = 0x0208 // incremental recovery directive
	msgCancel    transport.MsgType = 0x0209 // abandon the query
)

// RecoveryMode selects how the initiator reacts to a node failure during
// query execution (§V-D).
type RecoveryMode uint8

const (
	// RecoverFail aborts the query and reports the failure to the caller.
	RecoverFail RecoveryMode = iota
	// RecoverRestart terminates and restarts the query over the remaining
	// nodes (§V-D "one option ... is to terminate and restart").
	RecoverRestart
	// RecoverIncremental recomputes only the portions of the query state
	// affected by the failed node (§V-D stages 1-4).
	RecoverIncremental
)

func (m RecoveryMode) String() string {
	switch m {
	case RecoverFail:
		return "fail"
	case RecoverRestart:
		return "restart"
	case RecoverIncremental:
		return "incremental"
	default:
		return fmt.Sprintf("RecoveryMode(%d)", uint8(m))
	}
}

// Options configures one query execution.
type Options struct {
	// Provenance enables tagging each tuple with the set of nodes that
	// processed it, plus the producer-side output caches — the bookkeeping
	// required for incremental recovery (§V-D). Leaving it off removes the
	// 2-7% time overhead but forces restart-on-failure.
	Provenance bool
	// Recovery selects the failure reaction at the initiator.
	Recovery RecoveryMode
	// Epoch pins the snapshot epoch; 0 means the current gossip epoch.
	Epoch tuple.Epoch
	// MaxRestarts bounds RecoverRestart attempts (default 3).
	MaxRestarts int
	// ColumnarResult leaves the collected answer columnar: Result.Batch
	// carries the column vectors accumulated at the initiator and
	// Result.Rows stays nil — no per-row materialization. The serving
	// path's hand-off; callers that want rows leave it off. Queries whose
	// collection involved row-granular tuples (provenance mode, covering
	// scans, aggregates demoting the final pipeline) return rows even when
	// it is set.
	ColumnarResult bool
	// Trace, when non-nil, collects a span tree for this execution: the
	// initiator attaches a per-node "fragment" span (scan passes, ship
	// encode/decode, cache attribution) under the trace root, and the
	// trace's ID is propagated to remote fragments in the prepare message.
	// Nil (the default) disables every instrumentation site — tracing
	// stays off the hot path.
	Trace *obs.Trace
	// TraceID carries the initiator's trace id to a remote executor; it
	// is set by the prepare decoder, never by callers.
	TraceID obs.TraceID
	// Sink, when non-nil, receives result batches during execution for
	// stream-eligible plans (no provenance, final pipeline of
	// compute/limit only): Result.Rows/Batch stay nil and
	// Result.Streamed counts the emitted rows. Ineligible plans ignore
	// it and return the collected answer as usual. Initiator-only and
	// never serialized. See StreamSink for the emission contract.
	Sink StreamSink
}

func (o Options) withDefaults() Options {
	if o.Recovery == RecoverIncremental {
		o.Provenance = true // incremental recovery requires provenance
	}
	if o.MaxRestarts <= 0 {
		o.MaxRestarts = 3
	}
	return o
}

// NodeStats are the per-node work counters reported with each fragment's
// completion, used by the experiment harness to model completion time at
// the slowest node or link (§VI "Query Optimizer" cost logic).
type NodeStats struct {
	Scanned   uint64 // tuples produced by leaf scans
	ExchSent  uint64 // tuples sent through rehash operators
	ExchRecv  uint64 // tuples received from rehash operators
	Shipped   uint64 // tuples shipped to the initiator
	BytesSent uint64 // engine-layer payload bytes sent
	BytesRecv uint64 // engine-layer payload bytes received
}

// Add accumulates counters from another snapshot.
func (s *NodeStats) Add(o NodeStats) {
	s.Scanned += o.Scanned
	s.ExchSent += o.ExchSent
	s.ExchRecv += o.ExchRecv
	s.Shipped += o.Shipped
	s.BytesSent += o.BytesSent
	s.BytesRecv += o.BytesRecv
}

func encodeNodeStats(dst []byte, s NodeStats) []byte {
	dst = binary.BigEndian.AppendUint64(dst, s.Scanned)
	dst = binary.BigEndian.AppendUint64(dst, s.ExchSent)
	dst = binary.BigEndian.AppendUint64(dst, s.ExchRecv)
	dst = binary.BigEndian.AppendUint64(dst, s.Shipped)
	dst = binary.BigEndian.AppendUint64(dst, s.BytesSent)
	dst = binary.BigEndian.AppendUint64(dst, s.BytesRecv)
	return dst
}

func decodeNodeStats(data []byte) (NodeStats, []byte, error) {
	if len(data) < 48 {
		return NodeStats{}, nil, errors.New("engine: short node stats")
	}
	var s NodeStats
	s.Scanned = binary.BigEndian.Uint64(data[0:])
	s.ExchSent = binary.BigEndian.Uint64(data[8:])
	s.ExchRecv = binary.BigEndian.Uint64(data[16:])
	s.Shipped = binary.BigEndian.Uint64(data[24:])
	s.BytesSent = binary.BigEndian.Uint64(data[32:])
	s.BytesRecv = binary.BigEndian.Uint64(data[40:])
	return s, data[48:], nil
}

// statsCounters is the live (atomic) form of NodeStats.
type statsCounters struct {
	scanned   atomic.Uint64
	exchSent  atomic.Uint64
	exchRecv  atomic.Uint64
	shipped   atomic.Uint64
	bytesSent atomic.Uint64
	bytesRecv atomic.Uint64
}

func (s *statsCounters) addScanned(n int)  { s.scanned.Add(uint64(n)) }
func (s *statsCounters) addExchSent(n int) { s.exchSent.Add(uint64(n)) }
func (s *statsCounters) addExchRecv(n int) { s.exchRecv.Add(uint64(n)) }
func (s *statsCounters) addShipped(n int)  { s.shipped.Add(uint64(n)) }
func (s *statsCounters) addSentBytes(n int) {
	s.bytesSent.Add(uint64(n))
}
func (s *statsCounters) addRecvBytes(n int) {
	s.bytesRecv.Add(uint64(n))
}

func (s *statsCounters) snapshot() NodeStats {
	return NodeStats{
		Scanned:   s.scanned.Load(),
		ExchSent:  s.exchSent.Load(),
		ExchRecv:  s.exchRecv.Load(),
		Shipped:   s.shipped.Load(),
		BytesSent: s.bytesSent.Load(),
		BytesRecv: s.bytesRecv.Load(),
	}
}

// Result is a completed query's answer set and execution metadata.
type Result struct {
	// Rows is the final answer set (after initiator-side final operators).
	// Nil when Batch carries the answer instead.
	Rows []tuple.Row
	// Batch is the columnar answer set, populated instead of Rows when
	// Options.ColumnarResult was set and the whole collection stayed
	// columnar. Its slabs may be returned to the arena with
	// RecycleResultBatch once the caller is completely done with them.
	Batch *tuple.Batch
	// Stats maps each participating node to its work counters (the last
	// report received from each).
	Stats map[ring.NodeID]NodeStats
	// Phases is 1 + the number of incremental recovery invocations.
	Phases uint32
	// Restarts counts full restarts performed (RecoverRestart mode).
	Restarts int
	// Epoch is the snapshot epoch the query executed against.
	Epoch tuple.Epoch
	// Streamed counts rows emitted through Options.Sink during
	// execution; when positive, Rows and Batch are nil — the whole
	// answer went through the sink.
	Streamed int64
	// StreamPeak is the high-water mark of result rows buffered at the
	// initiator while streaming — the memory-bound observability hook
	// (0 when the query did not stream).
	StreamPeak int
}

// TotalStats sums the per-node counters.
func (r *Result) TotalStats() NodeStats {
	var t NodeStats
	for _, s := range r.Stats {
		t.Add(s)
	}
	return t
}

// Engine is the per-node distributed query processor. Exactly one Engine is
// attached to each cluster node; it registers the engine message handlers
// on the node's transport endpoint and hosts one executor per in-flight
// query (local or remote).
type Engine struct {
	node  *cluster.Node
	pages *pageCache // decoded index pages, shared across queries

	mu    sync.Mutex
	execs map[uint64]*executor
	nextQ uint32
}

// New attaches a query engine to a storage node.
func New(node *cluster.Node) *Engine {
	e := &Engine{
		node:  node,
		pages: newPageCache(defaultPageCachePages),
		execs: make(map[uint64]*executor),
	}
	e.registerHandlers()
	node.OnPeerDown(e.peerDown)
	return e
}

// Node returns the storage node this engine is attached to.
func (e *Engine) Node() *cluster.Node { return e.node }

// newQueryID derives a globally unique query identifier: the initiator's
// hashed identity in the top 32 bits, a local counter below.
func (e *Engine) newQueryID() uint64 {
	h := fnv.New32a()
	h.Write([]byte(e.node.ID()))
	e.mu.Lock()
	e.nextQ++
	q := e.nextQ
	e.mu.Unlock()
	return uint64(h.Sum32())<<32 | uint64(q)
}

func (e *Engine) getExec(q uint64) *executor {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.execs[q]
}

func (e *Engine) putExec(q uint64, ex *executor) {
	e.mu.Lock()
	e.execs[q] = ex
	e.mu.Unlock()
}

func (e *Engine) dropExec(q uint64) {
	e.mu.Lock()
	delete(e.execs, q)
	e.mu.Unlock()
}

// peerDown reacts to a node failure: initiator-side executors start
// recovery per their options; remote executors whose initiator died are
// abandoned.
func (e *Engine) peerDown(id ring.NodeID) {
	e.mu.Lock()
	var affected []*executor
	for _, ex := range e.execs {
		affected = append(affected, ex)
	}
	e.mu.Unlock()
	for _, ex := range affected {
		if ex.initiator == e.node.ID() {
			ex.handleFailure(id)
		} else if ex.initiator == id {
			e.dropExec(ex.queryID)
		}
	}
}

// --- executor ---

// executor is the per-query, per-node execution state: the instantiated
// operator graph, the routing-table snapshot (and successive recovery
// tables), the phase counter, and the provenance bookkeeping.
type executor struct {
	eng     *Engine
	queryID uint64
	plan    *Plan
	opts    Options
	epoch   tuple.Epoch
	metas   map[string]*relMeta

	initiator ring.NodeID
	snapshot  *ring.Table // phase-0 table; member indices = provenance bits
	selfIdx   int
	mode      shipMode // how fragment output flows to the initiator

	mu        sync.Mutex
	table     *ring.Table // current (recovery) table
	phase     uint32
	failed    Prov       // accumulated failed snapshot-member indices
	recoverMu sync.Mutex // serializes applyRecover invocations

	// aborted asks in-flight local work (scan passes) to stop early: set
	// when the query is cancelled or its answer is already complete (a
	// pushed-down limit was satisfied before the scans finished).
	aborted atomic.Bool

	scans        map[int]*scanLeaf
	producers    map[int]*exchProducer
	consumers    map[int]*exchConsumer
	recoverables []recoverable
	shipper      *shipProducer
	shipCons     *shipConsumer // non-nil at the initiator only

	failCh chan ring.NodeID // initiator: failures needing Run's attention
	stats  statsCounters

	// Tracing state: trace is nil when tracing is off (every site guards
	// on it); frag is this node's "fragment" span. At the initiator the
	// trace is the caller's query trace and frag hangs off its root; on a
	// remote node the trace is fragment-local and frag is its root,
	// shipped back with the fragment's EOS. The accumulators are atomics
	// so scan and transport goroutines add to them without locks.
	trace   *obs.Trace
	frag    *obs.Span
	encSpan *obs.Span // lazily attached "ship.encode" child of frag

	shipEncUs, shipEncBatches, shipEncBytes atomic.Int64
	shipDecUs, shipDecBatches, shipDecBytes atomic.Int64
	pageHits, pageMisses                    atomic.Int64
}

func newExecutor(eng *Engine, queryID uint64, plan *Plan, opts Options, epoch tuple.Epoch,
	initiator ring.NodeID, snap *ring.Table, metas map[string]*relMeta) (*executor, error) {
	selfIdx, ok := snap.MemberIndex(eng.node.ID())
	if !ok {
		return nil, fmt.Errorf("engine: node %s not in query snapshot", eng.node.ID())
	}
	ex := &executor{
		eng:       eng,
		queryID:   queryID,
		plan:      plan,
		opts:      opts,
		epoch:     epoch,
		metas:     metas,
		initiator: initiator,
		snapshot:  snap,
		selfIdx:   selfIdx,
		table:     snap,
		failed:    NewProv(snap.Size()),
		scans:     make(map[int]*scanLeaf),
		producers: make(map[int]*exchProducer),
		consumers: make(map[int]*exchConsumer),
	}
	ex.mode = planShipMode(plan, opts)
	if initiator == eng.node.ID() {
		ex.shipCons = newShipConsumer(ex)
		ex.failCh = make(chan ring.NodeID, snap.Size())
		if ex.mode == shipAggMerge {
			agg := plan.Final[0].(*FinalAgg)
			ex.shipCons.agg = newFinalAggAcc(agg.GroupCols, agg.Aggs)
		}
		if opts.Trace != nil {
			ex.trace = opts.Trace
			ex.frag = ex.trace.Begin("fragment")
			ex.frag.Node = string(eng.node.ID())
			ex.trace.Attach(nil, ex.frag)
		}
	} else if opts.TraceID != 0 {
		// Remote fragment: a local trace rooted at this node's fragment
		// span, encoded back to the initiator with the ship EOS.
		ex.trace = obs.NewTrace(opts.TraceID, "fragment", string(eng.node.ID()))
		ex.frag = ex.trace.Root()
	}
	ex.shipper = &shipProducer{ex: ex}
	if err := ex.build(plan.Root, ex.shipper); err != nil {
		return nil, err
	}
	return ex, nil
}

// build instantiates the operator graph: out is the sink consuming node n's
// output; scan leaves and exchange halves register themselves for message
// dispatch and recovery.
func (ex *executor) build(n Node, out sink) error {
	switch t := n.(type) {
	case *ScanNode:
		meta := ex.metas[t.Relation]
		leaf := newScanLeaf(ex, t, meta, out)
		ex.scans[t.ScanID] = leaf
		return nil
	case *SelectNode:
		return ex.build(t.Child, newSelectOp(t.Pred, out))
	case *ProjectNode:
		return ex.build(t.Child, &projectOp{cols: t.Cols, out: out, outB: asBatchSink(out)})
	case *ComputeNode:
		return ex.build(t.Child, &computeOp{fns: compileExprs(t.Exprs), out: out})
	case *JoinNode:
		j := newJoinOp(t.LeftKeys, t.RightKeys, ex.phaseNow, out)
		ex.recoverables = append(ex.recoverables, j)
		if err := ex.build(t.Left, joinSide{j: j, left: true}); err != nil {
			return err
		}
		return ex.build(t.Right, joinSide{j: j, left: false})
	case *AggNode:
		a := newAggOp(t.GroupCols, t.Aggs, t.Mode, ex.opts.Provenance, ex.phaseNow, out)
		ex.recoverables = append(ex.recoverables, a)
		return ex.build(t.Child, a)
	case *RehashNode:
		cons := newExchConsumer(ex, out)
		ex.consumers[t.ExchID] = cons
		prod := newExchProducer(ex, t.ExchID, t.Keys)
		ex.producers[t.ExchID] = prod
		return ex.build(t.Child, prod)
	default:
		return fmt.Errorf("engine: unknown plan node %T", n)
	}
}

// --- executor accessors used by operators ---

func (ex *executor) self() ring.NodeID { return ex.eng.node.ID() }

func (ex *executor) currentTable() *ring.Table {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return ex.table
}

func (ex *executor) phaseNow() uint32 {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return ex.phase
}

func (ex *executor) liveMembers() []ring.NodeID {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return ex.table.Members()
}

func (ex *executor) failedProv() Prov {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return ex.failed.Clone()
}

// originTup wraps a freshly scanned row with this node's provenance stamp.
func (ex *executor) originTup(row tuple.Row, phase uint32) Tup {
	t := Tup{Row: row, Phase: phase}
	if ex.opts.Provenance {
		t.Prov = ProvOf(ex.snapshot.Size(), ex.selfIdx)
	}
	return t
}

// filterAndStamp drops tainted tuples and stamps this node into the
// provenance of the survivors (the node has now processed them).
func (ex *executor) filterAndStamp(ts []Tup) []Tup {
	if !ex.opts.Provenance {
		return ts
	}
	failed := ex.failedProv()
	kept := ts[:0]
	for _, t := range ts {
		if t.Prov.Intersects(failed) {
			continue
		}
		if t.Prov == nil {
			t.Prov = NewProv(ex.snapshot.Size())
		}
		t.Prov.Set(ex.selfIdx)
		kept = append(kept, t)
	}
	return kept
}

// filterTainted drops tainted tuples without stamping (initiator side).
func (ex *executor) filterTainted(ts []Tup) []Tup {
	if !ex.opts.Provenance {
		return ts
	}
	failed := ex.failedProv()
	kept := ts[:0]
	for _, t := range ts {
		if !t.Prov.Intersects(failed) {
			kept = append(kept, t)
		}
	}
	return kept
}

// cloneTups deep-copies provenance for loopback delivery, where sender and
// receiver would otherwise share (and mutate) the same bitsets.
func cloneTups(ts []Tup) []Tup {
	out := make([]Tup, len(ts))
	for i, t := range ts {
		out[i] = Tup{Row: t.Row, Prov: t.Prov.Clone(), Phase: t.Phase}
	}
	return out
}

// loopbackTups prepares a batch for loopback delivery: without provenance
// there are no shared bitsets to protect, so the batch is handed over
// as-is (senders never reuse pushed slices).
func (ex *executor) loopbackTups(ts []Tup) []Tup {
	if !ex.opts.Provenance {
		return ts
	}
	return cloneTups(ts)
}

// --- message sending ---

func (ex *executor) header(dst []byte) []byte {
	return binary.BigEndian.AppendUint64(dst, ex.queryID)
}

// sendExchBatch delivers a rehash block to dest (loopback bypasses the
// network, mirroring a real deployment where local partitions never touch
// the wire).
func (ex *executor) sendExchBatch(exchID int, dest ring.NodeID, ts []Tup) {
	ex.stats.addExchSent(len(ts))
	if dest == ex.self() {
		if cons := ex.consumers[exchID]; cons != nil {
			ex.stats.addExchRecv(len(ts))
			cons.receive(ex.loopbackTups(ts))
		}
		return
	}
	body, err := encodeTupBatch(ts, ex.phaseNow(), ex.opts.Provenance)
	if err != nil {
		return
	}
	payload := ex.header(nil)
	payload = binary.AppendUvarint(payload, uint64(exchID))
	payload = append(payload, body...)
	ex.stats.addSentBytes(len(payload))
	_ = ex.eng.node.Endpoint().Send(dest, msgExchBatch, payload)
}

// broadcastExchEOS announces this node's end-of-stream for an exchange in
// the given wave phase to every live node (including itself).
func (ex *executor) broadcastExchEOS(exchID int, phase uint32) {
	payload := ex.header(nil)
	payload = binary.AppendUvarint(payload, uint64(exchID))
	payload = binary.BigEndian.AppendUint32(payload, phase)
	for _, id := range ex.liveMembers() {
		if id == ex.self() {
			if cons := ex.consumers[exchID]; cons != nil {
				cons.eosFromNode(id, phase)
			}
			continue
		}
		ex.stats.addSentBytes(len(payload))
		_ = ex.eng.node.Endpoint().Send(id, msgExchEOS, payload)
	}
}

// sendScanIDs ships filtered tuple IDs (with their cached placement
// hashes) from the index side to a data storage node (Algorithm 1's inner
// request).
func (ex *executor) sendScanIDs(scanID int, dest ring.NodeID, ids []tuple.ID, hashes []keyspace.Key) {
	if dest == ex.self() {
		if leaf := ex.scans[scanID]; leaf != nil {
			leaf.addWanted(ids, hashes, ex.selfIdx)
		}
		return
	}
	payload := ex.header(nil)
	payload = binary.AppendUvarint(payload, uint64(scanID))
	payload = binary.AppendUvarint(payload, uint64(ex.selfIdx))
	payload = binary.AppendUvarint(payload, uint64(len(ids)))
	for i, id := range ids {
		payload = binary.BigEndian.AppendUint64(payload, uint64(id.Epoch))
		payload = binary.AppendUvarint(payload, uint64(len(id.Key)))
		payload = append(payload, id.Key...)
		payload = append(payload, hashes[i][:]...)
	}
	ex.stats.addSentBytes(len(payload))
	_ = ex.eng.node.Endpoint().Send(dest, msgScanIDs, payload)
}

// broadcastScanDone announces that this node's index-side work for a scan
// is complete in the given wave phase.
func (ex *executor) broadcastScanDone(scanID int, phase uint32) {
	payload := ex.header(nil)
	payload = binary.AppendUvarint(payload, uint64(scanID))
	payload = binary.BigEndian.AppendUint32(payload, phase)
	for _, id := range ex.liveMembers() {
		if id == ex.self() {
			if leaf := ex.scans[scanID]; leaf != nil {
				leaf.doneMark(id, phase)
			}
			continue
		}
		ex.stats.addSentBytes(len(payload))
		_ = ex.eng.node.Endpoint().Send(id, msgScanDone, payload)
	}
}

// sendShipBatch delivers fragment output to the query initiator.
func (ex *executor) sendShipBatch(ts []Tup) {
	ex.stats.addShipped(len(ts))
	if ex.initiator == ex.self() {
		if ex.shipCons != nil {
			ex.shipCons.receive(ex.self(), ex.loopbackTups(ts))
		}
		return
	}
	var encT0 int64
	if ex.trace != nil {
		encT0 = ex.trace.SinceUs()
	}
	body, err := encodeTupBatch(ts, ex.phaseNow(), ex.opts.Provenance)
	if err != nil {
		return
	}
	payload := ex.header(nil)
	payload = append(payload, body...)
	if ex.trace != nil {
		ex.shipEncUs.Add(ex.trace.SinceUs() - encT0)
		ex.shipEncBatches.Add(1)
		ex.shipEncBytes.Add(int64(len(payload)))
	}
	ex.stats.addSentBytes(len(payload))
	_ = ex.eng.node.Endpoint().Send(ex.initiator, msgShipBatch, payload)
}

// shipCompressMin mirrors the tuple batch codec's default compression
// threshold for remote columnar ship bodies.
const shipCompressMin = 256

// sendShipCols delivers columnar fragment output to the query initiator.
// The batch is borrowed: loopback appends it into the ship consumer's
// accumulator, the remote path encodes it — either way the caller keeps
// ownership after the call.
func (ex *executor) sendShipCols(b *tuple.Batch) {
	ex.stats.addShipped(b.N)
	if ex.initiator == ex.self() {
		if ex.shipCons != nil {
			ex.shipCons.receiveCols(ex.self(), b)
		}
		return
	}
	var encT0 int64
	if ex.trace != nil {
		encT0 = ex.trace.SinceUs()
	}
	payload := ex.header(nil)
	payload = binary.BigEndian.AppendUint32(payload, ex.phaseNow())
	payload = append(payload, 0) // no provenance column
	payload, err := tuple.AppendBatchCols(payload, b, shipCompressMin)
	if err != nil {
		return
	}
	if ex.trace != nil {
		ex.shipEncUs.Add(ex.trace.SinceUs() - encT0)
		ex.shipEncBatches.Add(1)
		ex.shipEncBytes.Add(int64(len(payload)))
	}
	ex.stats.addSentBytes(len(payload))
	_ = ex.eng.node.Endpoint().Send(ex.initiator, msgShipBatch, payload)
}

// sendShipEOS reports fragment completion for the given wave phase, along
// with this node's work counters and (when tracing) the fragment's span
// subtree, appended after the fixed-size stats block.
func (ex *executor) sendShipEOS(phase uint32) {
	st := ex.stats.snapshot()
	ex.finishFragSpan(phase, st)
	if ex.initiator == ex.self() {
		if ex.shipCons != nil {
			ex.shipCons.eosFromNode(ex.self(), phase, st, nil)
		}
		return
	}
	payload := ex.header(nil)
	payload = binary.BigEndian.AppendUint32(payload, phase)
	payload = encodeNodeStats(payload, st)
	if ex.trace != nil {
		payload = ex.trace.EncodeRoot(payload)
	}
	ex.stats.addSentBytes(len(payload))
	_ = ex.eng.node.Endpoint().Send(ex.initiator, msgShipEOS, payload)
}

// finishFragSpan stamps the fragment span with the fragment's totals at
// an EOS wave. Recovery waves re-stamp it — the last report wins, which
// matches how the initiator keeps the last stats report per node.
func (ex *executor) finishFragSpan(phase uint32, st NodeStats) {
	if ex.trace == nil {
		return
	}
	ex.frag.Phase = phase
	ex.frag.DurUs = ex.trace.SinceUs() - ex.frag.StartUs
	ex.frag.Rows = int64(st.Shipped)
	ex.frag.Bytes = int64(st.BytesSent)
	ex.frag.CacheHits = ex.pageHits.Load()
	ex.frag.CacheMisses = ex.pageMisses.Load()
	if ex.shipEncBatches.Load() > 0 {
		ex.mu.Lock()
		sp := ex.encSpan
		if sp == nil {
			sp = &obs.Span{Name: "ship.encode"}
			ex.encSpan = sp
			ex.mu.Unlock()
			ex.trace.Attach(ex.frag, sp)
		} else {
			ex.mu.Unlock()
		}
		sp.DurUs = ex.shipEncUs.Load()
		sp.Batches = ex.shipEncBatches.Load()
		sp.Bytes = ex.shipEncBytes.Load()
	}
}

// start launches the leaf operations for phase 0. Tickets are issued
// synchronously so a recovery directive processed later can never have its
// index work scheduled ahead of phase 0's.
func (ex *executor) start() {
	for _, leaf := range ex.scans {
		tick := leaf.idxSeq.ticket()
		go leaf.runIndexSide(0, nil, nil, tick)
	}
}

// --- handler registration and dispatch ---

func readHeader(payload []byte) (uint64, []byte, error) {
	if len(payload) < 8 {
		return 0, nil, errors.New("engine: short message")
	}
	return binary.BigEndian.Uint64(payload), payload[8:], nil
}

func (e *Engine) registerHandlers() {
	ep := e.node.Endpoint()

	ep.Handle(msgPrepare, func(from ring.NodeID, payload []byte) ([]byte, error) {
		return nil, e.handlePrepare(payload)
	})

	ep.Handle(msgBegin, func(from ring.NodeID, payload []byte) ([]byte, error) {
		q, _, err := readHeader(payload)
		if err != nil {
			return nil, err
		}
		if ex := e.getExec(q); ex != nil {
			ex.start()
		}
		return nil, nil
	})

	ep.Handle(msgExchBatch, func(from ring.NodeID, payload []byte) ([]byte, error) {
		q, rest, err := readHeader(payload)
		if err != nil {
			return nil, err
		}
		ex := e.getExec(q)
		if ex == nil {
			return nil, nil // stale or cancelled query
		}
		exchID, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, errors.New("engine: bad exch id")
		}
		ts, _, err := decodeTupBatch(rest[n:])
		if err != nil {
			return nil, err
		}
		ex.stats.addRecvBytes(len(payload))
		ex.stats.addExchRecv(len(ts))
		if cons := ex.consumers[int(exchID)]; cons != nil {
			cons.receive(ts)
		}
		return nil, nil
	})

	ep.Handle(msgExchEOS, func(from ring.NodeID, payload []byte) ([]byte, error) {
		q, rest, err := readHeader(payload)
		if err != nil {
			return nil, err
		}
		ex := e.getExec(q)
		if ex == nil {
			return nil, nil
		}
		exchID, n := binary.Uvarint(rest)
		if n <= 0 || len(rest) < n+4 {
			return nil, errors.New("engine: bad exch eos")
		}
		phase := binary.BigEndian.Uint32(rest[n:])
		ex.stats.addRecvBytes(len(payload))
		if cons := ex.consumers[int(exchID)]; cons != nil {
			cons.eosFromNode(from, phase)
		}
		return nil, nil
	})

	ep.Handle(msgScanIDs, func(from ring.NodeID, payload []byte) ([]byte, error) {
		q, rest, err := readHeader(payload)
		if err != nil {
			return nil, err
		}
		ex := e.getExec(q)
		if ex == nil {
			return nil, nil
		}
		scanID, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, errors.New("engine: bad scan id")
		}
		rest = rest[n:]
		fromIdx, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, errors.New("engine: bad scan sender")
		}
		rest = rest[n:]
		count, n := binary.Uvarint(rest)
		if n <= 0 || count > 1<<26 {
			return nil, errors.New("engine: bad scan id count")
		}
		rest = rest[n:]
		ids := make([]tuple.ID, 0, count)
		hashes := make([]keyspace.Key, 0, count)
		for i := uint64(0); i < count; i++ {
			if len(rest) < 8 {
				return nil, errors.New("engine: truncated scan id")
			}
			ep := tuple.Epoch(binary.BigEndian.Uint64(rest))
			rest = rest[8:]
			l, n := binary.Uvarint(rest)
			if n <= 0 || len(rest) < n+int(l)+keyspace.Size {
				return nil, errors.New("engine: truncated scan key")
			}
			ids = append(ids, tuple.ID{Key: string(rest[n : n+int(l)]), Epoch: ep})
			rest = rest[n+int(l):]
			var h keyspace.Key
			copy(h[:], rest)
			hashes = append(hashes, h)
			rest = rest[keyspace.Size:]
		}
		ex.stats.addRecvBytes(len(payload))
		if leaf := ex.scans[int(scanID)]; leaf != nil {
			leaf.addWanted(ids, hashes, int(fromIdx))
		}
		return nil, nil
	})

	ep.Handle(msgScanDone, func(from ring.NodeID, payload []byte) ([]byte, error) {
		q, rest, err := readHeader(payload)
		if err != nil {
			return nil, err
		}
		ex := e.getExec(q)
		if ex == nil {
			return nil, nil
		}
		scanID, n := binary.Uvarint(rest)
		if n <= 0 || len(rest) < n+4 {
			return nil, errors.New("engine: bad scan done")
		}
		phase := binary.BigEndian.Uint32(rest[n:])
		ex.stats.addRecvBytes(len(payload))
		if leaf := ex.scans[int(scanID)]; leaf != nil {
			leaf.doneMark(from, phase)
		}
		return nil, nil
	})

	ep.Handle(msgShipBatch, func(from ring.NodeID, payload []byte) ([]byte, error) {
		q, rest, err := readHeader(payload)
		if err != nil {
			return nil, err
		}
		ex := e.getExec(q)
		if ex == nil || ex.shipCons == nil {
			return nil, nil
		}
		ex.stats.addRecvBytes(len(payload))
		// Non-provenance bodies decode straight into the consumer's
		// columnar accumulator; provenance bodies take the row path.
		return nil, ex.shipCons.receiveWire(from, rest)
	})

	ep.Handle(msgShipEOS, func(from ring.NodeID, payload []byte) ([]byte, error) {
		q, rest, err := readHeader(payload)
		if err != nil {
			return nil, err
		}
		ex := e.getExec(q)
		if ex == nil || ex.shipCons == nil {
			return nil, nil
		}
		if len(rest) < 4 {
			return nil, errors.New("engine: short ship eos")
		}
		phase := binary.BigEndian.Uint32(rest)
		st, rem, err := decodeNodeStats(rest[4:])
		if err != nil {
			return nil, err
		}
		// A trailing span blob is the remote fragment's trace subtree; a
		// decode failure only loses the trace, never the completion.
		var span *obs.Span
		if len(rem) > 0 && ex.trace != nil {
			if sp, _, err := obs.DecodeSpan(rem); err == nil {
				span = sp
			}
		}
		ex.stats.addRecvBytes(len(payload))
		ex.shipCons.eosFromNode(from, phase, st, span)
		return nil, nil
	})

	ep.Handle(msgRecover, func(from ring.NodeID, payload []byte) ([]byte, error) {
		q, rest, err := readHeader(payload)
		if err != nil {
			return nil, err
		}
		ex := e.getExec(q)
		if ex == nil {
			return nil, nil
		}
		dir, err := decodeRecoverDirective(rest)
		if err != nil {
			return nil, err
		}
		// Mark the failed members synchronously, on the delivery loop:
		// per-link FIFO guarantees the directive precedes any recovery-
		// phase traffic from its sender, and arrival-time taint filtering
		// (filterAndStamp, addWanted) must already see the failed bits
		// when that traffic is processed. The heavyweight purge/replay/
		// restart work runs off-loop.
		ex.markFailed(dir.failedIdxs)
		go ex.applyRecover(dir)
		return nil, nil
	})

	ep.Handle(msgCancel, func(from ring.NodeID, payload []byte) ([]byte, error) {
		q, _, err := readHeader(payload)
		if err != nil {
			return nil, err
		}
		if ex := e.getExec(q); ex != nil {
			ex.aborted.Store(true) // stop in-flight local scan passes
		}
		e.dropExec(q)
		return nil, nil
	})
}

// --- prepare / dissemination ---

func encodeMeta(dst []byte, name string, m *relMeta) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(name)))
	dst = append(dst, name...)
	dst = binary.BigEndian.AppendUint64(dst, uint64(m.effEpoch))
	schemaEnc := vstore.EncodeSchema(m.schema)
	dst = binary.AppendUvarint(dst, uint64(len(schemaEnc)))
	dst = append(dst, schemaEnc...)
	if m.coord == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	coordEnc := vstore.EncodeCoordinator(m.coord)
	dst = binary.AppendUvarint(dst, uint64(len(coordEnc)))
	return append(dst, coordEnc...)
}

func decodeMeta(data []byte) (string, *relMeta, []byte, error) {
	l, n := binary.Uvarint(data)
	if n <= 0 || len(data) < n+int(l) {
		return "", nil, nil, errors.New("engine: bad meta name")
	}
	name := string(data[n : n+int(l)])
	data = data[n+int(l):]
	if len(data) < 8 {
		return "", nil, nil, errors.New("engine: bad meta epoch")
	}
	m := &relMeta{effEpoch: tuple.Epoch(binary.BigEndian.Uint64(data))}
	data = data[8:]
	l, n = binary.Uvarint(data)
	if n <= 0 || len(data) < n+int(l) {
		return "", nil, nil, errors.New("engine: bad meta schema")
	}
	schema, err := vstore.DecodeSchema(data[n : n+int(l)])
	if err != nil {
		return "", nil, nil, err
	}
	m.schema = schema
	data = data[n+int(l):]
	if len(data) < 1 {
		return "", nil, nil, errors.New("engine: bad meta coord flag")
	}
	hasCoord := data[0] == 1
	data = data[1:]
	if hasCoord {
		l, n = binary.Uvarint(data)
		if n <= 0 || len(data) < n+int(l) {
			return "", nil, nil, errors.New("engine: bad meta coord")
		}
		coord, err := vstore.DecodeCoordinator(data[n : n+int(l)])
		if err != nil {
			return "", nil, nil, err
		}
		m.coord = coord
		data = data[n+int(l):]
	}
	return name, m, data, nil
}

// encodePrepare packages everything a node needs to participate: the query
// identity, the initiator, the snapshot epoch, the options, the routing
// table snapshot, the plan, and the resolved per-relation metadata.
func encodePrepare(queryID uint64, initiator ring.NodeID, epoch tuple.Epoch,
	opts Options, table *ring.Table, plan *Plan, metas map[string]*relMeta) ([]byte, error) {
	out := binary.BigEndian.AppendUint64(nil, queryID)
	out = binary.AppendUvarint(out, uint64(len(initiator)))
	out = append(out, initiator...)
	out = binary.BigEndian.AppendUint64(out, uint64(epoch))
	var flags byte
	if opts.Provenance {
		flags |= 1
	}
	out = append(out, flags, byte(opts.Recovery))
	var tid obs.TraceID
	if opts.Trace != nil {
		tid = opts.Trace.ID
	}
	out = binary.BigEndian.AppendUint64(out, uint64(tid))
	tb, err := table.MarshalBinary()
	if err != nil {
		return nil, err
	}
	out = binary.AppendUvarint(out, uint64(len(tb)))
	out = append(out, tb...)
	pb := EncodePlan(plan)
	out = binary.AppendUvarint(out, uint64(len(pb)))
	out = append(out, pb...)
	out = binary.AppendUvarint(out, uint64(len(metas)))
	for name, m := range metas {
		out = encodeMeta(out, name, m)
	}
	return out, nil
}

func (e *Engine) handlePrepare(payload []byte) error {
	if len(payload) < 8 {
		return errors.New("engine: short prepare")
	}
	queryID := binary.BigEndian.Uint64(payload)
	data := payload[8:]
	l, n := binary.Uvarint(data)
	if n <= 0 || len(data) < n+int(l) {
		return errors.New("engine: bad prepare initiator")
	}
	initiator := ring.NodeID(data[n : n+int(l)])
	data = data[n+int(l):]
	if len(data) < 18 {
		return errors.New("engine: short prepare header")
	}
	epoch := tuple.Epoch(binary.BigEndian.Uint64(data))
	data = data[8:]
	opts := Options{Provenance: data[0]&1 != 0, Recovery: RecoveryMode(data[1])}
	data = data[2:]
	opts.TraceID = obs.TraceID(binary.BigEndian.Uint64(data))
	data = data[8:]
	l, n = binary.Uvarint(data)
	if n <= 0 || len(data) < n+int(l) {
		return errors.New("engine: bad prepare table")
	}
	table, err := ring.UnmarshalTable(data[n : n+int(l)])
	if err != nil {
		return err
	}
	data = data[n+int(l):]
	l, n = binary.Uvarint(data)
	if n <= 0 || len(data) < n+int(l) {
		return errors.New("engine: bad prepare plan")
	}
	plan, err := DecodePlan(data[n : n+int(l)])
	if err != nil {
		return err
	}
	data = data[n+int(l):]
	count, n := binary.Uvarint(data)
	if n <= 0 || count > 1<<12 {
		return errors.New("engine: bad prepare meta count")
	}
	data = data[n:]
	metas := make(map[string]*relMeta, count)
	for i := uint64(0); i < count; i++ {
		name, m, rest, err := decodeMeta(data)
		if err != nil {
			return err
		}
		metas[name] = m
		data = rest
	}
	if e.getExec(queryID) != nil {
		return nil // duplicate prepare (idempotent)
	}
	ex, err := newExecutor(e, queryID, plan, opts, epoch, initiator, table, metas)
	if err != nil {
		return err
	}
	e.putExec(queryID, ex)
	return nil
}

// --- initiator-side execution ---

// resolveMetas resolves every scanned relation's schema, effective epoch,
// and coordinator record, so all nodes share one consistent snapshot.
func (e *Engine) resolveMetas(ctx context.Context, p *Plan, epoch tuple.Epoch) (map[string]*relMeta, error) {
	metas := make(map[string]*relMeta)
	for _, rel := range p.Relations() {
		eff, cat, ok, err := e.node.ResolveEpoch(ctx, rel, epoch)
		if err != nil {
			return nil, fmt.Errorf("engine: resolve %s@%d: %w", rel, epoch, err)
		}
		m := &relMeta{schema: cat.Schema, effEpoch: eff}
		if ok {
			coord, err := e.node.GetCoordinator(ctx, rel, eff)
			if err != nil {
				return nil, fmt.Errorf("engine: coordinator %s@%d: %w", rel, eff, err)
			}
			m.coord = coord
		}
		metas[rel] = m
	}
	return metas, nil
}

// Run executes a finalized plan and returns the complete, duplicate-free
// answer set as of the snapshot epoch. Node failures during execution are
// handled per opts.Recovery.
func (e *Engine) Run(ctx context.Context, p *Plan, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	epoch := opts.Epoch
	if epoch == 0 {
		epoch = e.node.Gossip().Current()
	}
	snap := e.node.Table()
	restarts := 0
	for {
		res, err := e.runOnce(ctx, p, opts, epoch, snap)
		if err == nil {
			res.Restarts = restarts
			return res, nil
		}
		var fe *FailureError
		if !errors.As(err, &fe) || opts.Recovery == RecoverFail || restarts >= opts.MaxRestarts {
			return nil, err
		}
		// Restart over the remaining nodes (§V-D "terminate and restart").
		// Incremental mode also lands here when a failure precedes query
		// start (there is no in-flight state to recover incrementally).
		restarts++
		snap2, err2 := snap.WithoutNodes(fe.Failed)
		if err2 != nil {
			return nil, fmt.Errorf("engine: restart table: %w", err2)
		}
		snap = snap2
	}
}

// FailureError reports nodes that failed during query execution when the
// recovery mode does not (or can no longer) compensate.
type FailureError struct {
	Failed []ring.NodeID
}

func (e *FailureError) Error() string {
	return fmt.Sprintf("engine: node failure during query: %v", e.Failed)
}

// limitOnlyFinal reports N when the final pipeline is limit-only (no
// agg/sort/compute): such a query can stop collecting — and cancel
// outstanding scan passes — once N rows have been gathered, because any N
// collected rows are a complete answer. Returns -1 otherwise.
func limitOnlyFinal(ops []FinalOp) int {
	if len(ops) == 0 {
		return -1
	}
	n := -1
	for _, op := range ops {
		f, ok := op.(*FinalLimit)
		if !ok {
			return -1
		}
		if n < 0 || f.N < n {
			n = f.N
		}
	}
	return n
}

func (e *Engine) runOnce(ctx context.Context, p *Plan, opts Options, epoch tuple.Epoch, snap *ring.Table) (*Result, error) {
	metas, err := e.resolveMetas(ctx, p, epoch)
	if err != nil {
		return nil, err
	}
	queryID := e.newQueryID()
	ex, err := newExecutor(e, queryID, p, opts, epoch, e.node.ID(), snap, metas)
	if err != nil {
		return nil, err
	}
	// The limit pushdown drops shipments once N rows are collected, which
	// is only sound when collected rows can never be retracted: with
	// incremental recovery (provenance mode) a later purge of tainted
	// rows could leave fewer than N even though dropped clean shipments
	// held the difference. Restart mode discards the whole executor
	// instead, so nothing collected is ever retracted.
	if !opts.Provenance {
		ex.shipCons.limit = limitOnlyFinal(p.Final)
	}
	if ex.mode == shipStream && opts.Sink != nil {
		ex.shipCons.startStream(opts.Sink, p.Final)
	}
	e.putExec(queryID, ex)
	defer func() {
		ex.aborted.Store(true) // stop any local pass still running
		ex.shipCons.stopStreaming()
		e.dropExec(queryID)
		ex.broadcastCancel()
	}()

	prep, err := encodePrepare(queryID, e.node.ID(), epoch, opts, snap, p, metas)
	if err != nil {
		return nil, err
	}
	// Two-round start: prepare everywhere (so every node's handlers exist
	// before any data flows), then begin.
	var wg sync.WaitGroup
	errCh := make(chan error, snap.Size())
	for _, id := range snap.Members() {
		if id == e.node.ID() {
			continue
		}
		wg.Add(1)
		go func(id ring.NodeID) {
			defer wg.Done()
			rctx, cancel := context.WithTimeout(ctx, e.node.Config().RequestTimeout)
			defer cancel()
			if _, err := e.node.Endpoint().Request(rctx, id, msgPrepare, prep); err != nil {
				// Report as a node failure so restart mode can retry over
				// the remaining membership.
				errCh <- fmt.Errorf("engine: prepare at %s (%v): %w",
					id, err, &FailureError{Failed: []ring.NodeID{id}})
			}
		}(id)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}

	begin := ex.header(nil)
	for _, id := range snap.Members() {
		if id == e.node.ID() {
			continue
		}
		_ = e.node.Endpoint().Send(id, msgBegin, begin)
	}
	ex.start()

	// Wait for completion, reacting to failures per the recovery mode. A
	// completion signal is accepted only for the current phase: if a
	// recovery advanced the phase, earlier completions are stale.
	var allFailed []ring.NodeID
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case id := <-ex.failCh:
			if !ex.currentTable().Contains(id) {
				continue // stale notification
			}
			allFailed = append(allFailed, id)
			switch opts.Recovery {
			case RecoverIncremental:
				if err := ex.initiateRecovery(id); err != nil {
					return nil, fmt.Errorf("engine: recovery after %s failed: %w", id, err)
				}
			default:
				if n := ex.shipCons.streamedRows(); n > 0 {
					// Rows already left through the sink: a restart would
					// emit them again, so the failure is terminal here no
					// matter the recovery mode.
					return nil, &StreamAbortedError{Failed: allFailed, Streamed: n}
				}
				return nil, &FailureError{Failed: allFailed}
			}
		case err := <-ex.shipCons.sinkFailCh():
			return nil, err
		case phase := <-ex.shipCons.completeCh:
			if phase != ex.phaseNow() {
				continue // stale completion from before a recovery
			}
			if ex.mode == shipStream && opts.Sink != nil {
				// Join the drainer: it flushes whatever the last arrivals
				// left in the accumulator before stopping, so totals are
				// exact afterwards.
				ex.shipCons.stopStreaming()
				select {
				case err := <-ex.shipCons.sinkFailCh():
					return nil, err
				default:
				}
				ex.attachInitiatorSpans()
				res := &Result{
					Stats:      ex.shipCons.nodeStats(),
					Phases:     ex.phaseNow() + 1,
					Epoch:      epoch,
					Streamed:   ex.shipCons.streamedRows(),
					StreamPeak: ex.shipCons.peakBuffered(),
				}
				if finalSpan := ex.trace.Begin("final"); finalSpan != nil {
					finalSpan.Rows = res.Streamed
					ex.trace.End(finalSpan)
					ex.trace.Attach(nil, finalSpan)
				}
				return res, nil
			}
			if ex.mode == shipAggMerge {
				// The partials were folded on arrival; finish the merge and
				// run the rest of the pipeline. Final[0] (the FinalAgg) is
				// already applied — its partial layout no longer matches the
				// merged rows, so re-applying it would be wrong.
				rows := ex.shipCons.sealAggMerge()
				ex.attachInitiatorSpans()
				finalSpan := ex.trace.Begin("final")
				final, err := applyFinalOps(p.Final[1:], rows)
				if err != nil {
					return nil, err
				}
				res := &Result{
					Rows:   final,
					Stats:  ex.shipCons.nodeStats(),
					Phases: ex.phaseNow() + 1,
					Epoch:  epoch,
				}
				if finalSpan != nil {
					finalSpan.Rows = int64(len(final))
					ex.trace.End(finalSpan)
					ex.trace.Attach(nil, finalSpan)
				}
				return res, nil
			}
			var tups []Tup
			var colsB *tuple.Batch
			if ex.mode == shipTopK {
				// Merge-truncate the per-fragment sorted runs down to the
				// row budget, then let the generic assembly below re-apply
				// the full final pipeline over the ≤K survivors (a sort of
				// ≤K rows is cheap, and trailing ops stay correct).
				keys, k := topKParams(p)
				tups, colsB = ex.shipCons.sealTopK(keys, k)
			} else {
				tups, colsB = ex.shipCons.seal()
			}
			ex.attachInitiatorSpans()
			finalSpan := ex.trace.Begin("final")
			res := &Result{
				Stats:  ex.shipCons.nodeStats(),
				Phases: ex.phaseNow() + 1,
				Epoch:  epoch,
			}
			if len(tups) == 0 {
				// Pure columnar collection: run the batch-native final
				// pipeline; no row is materialized unless an op demotes.
				// (String contents alias kvstore record bytes, never the
				// vectors themselves, so recycling a batch after copying
				// its values out is safe.)
				b, rows, err := applyFinalOpsCols(p.Final, colsB)
				if err != nil {
					return nil, err
				}
				if b != colsB {
					RecycleResultBatch(colsB)
				}
				switch {
				case b == nil:
					res.Rows = rows // an op demoted the flow
				case opts.ColumnarResult:
					res.Batch = b
				default:
					res.Rows = b.Rows()
					RecycleResultBatch(b)
				}
				if finalSpan != nil {
					if b != nil {
						finalSpan.Rows = int64(b.N)
					} else {
						finalSpan.Rows = int64(len(rows))
					}
					ex.trace.End(finalSpan)
					ex.trace.Attach(nil, finalSpan)
				}
				return res, nil
			}
			// Mixed or row-granular collection (provenance mode, covering
			// scans, replica fallbacks): materialize and run the row form.
			rows := make([]tuple.Row, 0, len(tups)+colsB.N)
			for _, t := range tups {
				rows = append(rows, t.Row)
			}
			if colsB.N > 0 {
				rows = append(rows, colsB.Rows()...)
			}
			RecycleResultBatch(colsB)
			final, err := applyFinalOps(p.Final, rows)
			if err != nil {
				return nil, err
			}
			res.Rows = final
			if finalSpan != nil {
				finalSpan.Rows = int64(len(final))
				ex.trace.End(finalSpan)
				ex.trace.Attach(nil, finalSpan)
			}
			return res, nil
		}
	}
}

// attachInitiatorSpans hangs the spans gathered during execution under
// the trace root: each remote fragment's shipped subtree (last report
// per node wins) and the accumulated ship-decode work. Called once, at
// the accepted completion — nothing races with Attach by then.
func (ex *executor) attachInitiatorSpans() {
	if ex.trace == nil {
		return
	}
	for _, sp := range ex.shipCons.remoteSpans() {
		ex.trace.Attach(nil, sp)
	}
	if ex.shipDecBatches.Load() > 0 {
		ex.trace.Attach(nil, &obs.Span{
			Name:    "ship.decode",
			DurUs:   ex.shipDecUs.Load(),
			Batches: ex.shipDecBatches.Load(),
			Bytes:   ex.shipDecBytes.Load(),
		})
	}
}

// markFailed records failed snapshot-member indices immediately, ahead of
// the full recovery application (see the msgRecover handler).
func (ex *executor) markFailed(idxs []int) {
	ex.mu.Lock()
	for _, idx := range idxs {
		if idx >= 0 && idx < ex.snapshot.Size() {
			ex.failed.Set(idx)
		}
	}
	ex.mu.Unlock()
}

// handleFailure is invoked (from the engine's peer-down callback) on the
// initiator when a node dies; it defers the decision to the Run loop.
func (ex *executor) handleFailure(id ring.NodeID) {
	if ex.failCh == nil {
		return
	}
	select {
	case ex.failCh <- id:
	default:
	}
}

// broadcastCancel tells all remote participants to abandon the query.
func (ex *executor) broadcastCancel() {
	payload := ex.header(nil)
	for _, id := range ex.snapshot.Members() {
		if id == ex.self() {
			continue
		}
		_ = ex.eng.node.Endpoint().Send(id, msgCancel, payload)
	}
}
