package engine

import (
	"bytes"
	"context"
	"encoding/binary"
	"sort"
	"sync"

	"orchestra/internal/cluster"
	"orchestra/internal/keyspace"
	"orchestra/internal/kvstore"
	"orchestra/internal/obs"
	"orchestra/internal/ring"
	"orchestra/internal/tuple"
	"orchestra/internal/vstore"
)

// relMeta is the per-relation metadata resolved by the initiator and
// shipped with the query so every node sees the same snapshot: the schema,
// the effective modification epoch, and that epoch's coordinator record.
type relMeta struct {
	schema   *tuple.Schema
	effEpoch tuple.Epoch
	coord    *vstore.Coordinator // nil when the relation has no data at the epoch
}

// scanLeaf drives one scan operator instance on one node. It has two
// halves, mirroring the distributed scan of Table I:
//
//   - The index side processes the index pages this node is responsible
//     for (under the query snapshot; under the recovery table for later
//     phases), filters tuple IDs with the sargable predicate, and ships ID
//     collections to the data storage nodes — mostly itself, thanks to
//     page/tuple colocation.
//   - The data side accumulates wanted IDs, and when every live node has
//     signalled that its index work for the phase is complete, retrieves
//     the tuples in a single pass through its local hash-ID range and
//     pushes them into the local plan.
//
// Covering index scans skip the data side entirely: key attributes are
// decoded straight out of the tuple IDs (Table I, covering index scan).
type scanLeaf struct {
	ex   *executor
	spec *ScanNode
	meta *relMeta
	out  sink

	// idxSeq orders runIndexSide invocations by launch order: a later
	// phase's index work (and its trailing done marker) must not overtake
	// an earlier phase's ID shipments on any link, or data nodes would run
	// their pass before all the earlier IDs arrived and strand stragglers.
	idxSeq sequencer

	// passSeq orders runPass invocations the same way on the data side:
	// the end-of-stream a later pass propagates must follow every emission
	// of the earlier pass on every link. A plain mutex is insufficient for
	// either: goroutine scheduling could let wave p+1 acquire it first.
	passSeq sequencer

	mu       sync.Mutex
	ships    []*idShipment
	doneFrom map[uint32]map[ring.NodeID]bool
	passRun  map[uint32]bool

	// scratch is the reusable columnar batch of the data pass (see
	// batchFor); scratchCols keeps the leaf's own column header array so a
	// downstream projection cannot leak the vectors. Touched only by
	// runPass, which passSeq serializes.
	scratch     *colBatch
	scratchCols []tuple.ColVec
}

// idShipment is one sender's batch of filtered tuple IDs plus their
// placement hashes (read off the index page, never recomputed) and the
// sender's snapshot member index. The wanted set is a list of shipments
// rather than a per-ID map: arrival costs nothing per ID (loopback
// shipments even alias the index page's own slices), and the data pass
// sorts all live entries into storage-key order once and merge-walks them
// against the B-tree scan.
type idShipment struct {
	ids     []tuple.ID
	hashes  []keyspace.Key
	fromIdx int32
}

func newScanLeaf(ex *executor, spec *ScanNode, meta *relMeta, out sink) *scanLeaf {
	return &scanLeaf{
		ex:       ex,
		spec:     spec,
		meta:     meta,
		out:      out,
		doneFrom: make(map[uint32]map[ring.NodeID]bool),
		passRun:  make(map[uint32]bool),
	}
}

// runIndexSide performs this node's index work for a phase. For phase 0,
// the node serves the pages whose placement it owns under the snapshot.
// For recovery phases it serves (a) pages in ranges inherited from failed
// nodes — re-shipped in full, since every phase-0 row from those pages is
// tainted by the failed index node — and (b) its own pages, re-shipping
// only IDs whose previous data owner failed (§V-D stages 3 and 4).
func (l *scanLeaf) runIndexSide(phase uint32, inherited []ring.Range, prevTable *ring.Table, tick uint64) {
	l.idxSeq.wait(tick)
	defer l.idxSeq.done()
	cur := l.ex.currentTable()
	self := l.ex.self()
	tr := l.ex.trace
	var sp *obs.Span
	var idsOut int64
	if tr != nil {
		sp = tr.Begin("scan.index")
		sp.Phase = phase
	}
	// Single-member snapshots (and recovered-to-one clusters) route every
	// ID to this node; skip the per-ID binary search over the ring.
	soleOwner := cur.Size() == 1
	var coveringOut []Tup
	if l.meta != nil && l.meta.coord != nil {
		byDest := make(map[ring.NodeID]*idShipment)
		for _, ref := range l.meta.coord.Pages {
			placement := ref.Placement()
			full := false
			if phase == 0 {
				if cur.Owner(placement) != self {
					continue
				}
				full = true
			} else {
				inInherited := false
				for _, r := range inherited {
					if r.Contains(placement) {
						inInherited = true
						break
					}
				}
				if inInherited {
					full = true
				} else if prevTable.Owner(placement) != self {
					continue
				}
			}
			page, err := l.loadPage(ref)
			if err != nil {
				continue // replicas unreachable; data side observes the gap
			}
			// Unbounded scan on a single-member snapshot: every entry of
			// every page routes to this node, so the page's own (immutable,
			// cached) ID and hash slices ship as-is — no per-ID routing, no
			// copies.
			if soleOwner && full && !l.spec.Covering && l.spec.Pred.Lo == nil && l.spec.Pred.Hi == nil {
				idsOut += int64(len(page.IDs))
				l.ex.sendScanIDs(l.spec.ScanID, self, page.IDs, page.Hashes)
				continue
			}
			// Pages carry each entry's placement hash (computed once at
			// publish time; loadPage guarantees it), so routing below never
			// hashes a tuple ID.
			for i, id := range page.IDs {
				if !l.spec.Pred.Match(id.Key) {
					continue
				}
				if l.spec.Covering {
					if full {
						if row, err := id.KeyValues(); err == nil {
							coveringOut = append(coveringOut, l.ex.originTup(tuple.Row(row), phase))
						}
					}
					continue
				}
				h := page.Hashes[i]
				owner := self
				if !soleOwner {
					owner = cur.Owner(h)
				}
				if !full {
					// Resend mode: only IDs whose old data owner failed.
					if cur.Contains(prevTable.Owner(h)) {
						continue
					}
				}
				s := byDest[owner]
				if s == nil {
					s = &idShipment{}
					byDest[owner] = s
				}
				s.ids = append(s.ids, id)
				s.hashes = append(s.hashes, h)
			}
		}
		for dest, s := range byDest {
			idsOut += int64(len(s.ids))
			l.ex.sendScanIDs(l.spec.ScanID, dest, s.ids, s.hashes)
		}
	}
	if l.spec.Covering {
		if len(coveringOut) > 0 {
			l.ex.stats.addScanned(len(coveringOut))
			l.out.push(coveringOut)
		}
		if sp != nil {
			sp.Rows = int64(len(coveringOut))
			tr.End(sp)
			tr.Attach(l.ex.frag, sp)
		}
		l.out.eos(phase)
		return
	}
	if sp != nil {
		sp.Rows = idsOut // IDs shipped to data nodes
		tr.End(sp)
		tr.Attach(l.ex.frag, sp)
	}
	// Signal that this node's index work for the phase is complete; the
	// marker follows all ID shipments on each link (FIFO), so data sides
	// that have every marker have every ID. The marker carries this wave's
	// phase, not the node's current phase, which may already be newer.
	l.ex.broadcastScanDone(l.spec.ScanID, phase)
}

// loadPage fetches a page, consulting the engine's decoded-page cache
// first (page versions are immutable, so hits are always valid), then the
// local store, then replicas.
func (l *scanLeaf) loadPage(ref vstore.PageRef) (*vstore.Page, error) {
	if p, ok := l.ex.eng.pages.get(ref.ID); ok {
		l.ex.pageHits.Add(1)
		return p, nil
	}
	l.ex.pageMisses.Add(1)
	kv := vstore.PageKVKey(ref.ID)
	// GetRetained: page decoding copies what it keeps, so the store's
	// no-copy read suffices and saves a page-sized allocation per scan.
	data, ok := l.ex.eng.node.Store().GetRetained(kv)
	if !ok {
		ctx, cancel := context.WithTimeout(context.Background(), l.ex.eng.node.Config().RequestTimeout)
		defer cancel()
		remote, err := l.ex.eng.node.GetRecord(ctx, ref.Placement(), kv)
		if err != nil {
			return nil, err
		}
		data = remote
	}
	p, err := vstore.DecodePage(data)
	if err != nil {
		return nil, err
	}
	p.EnsureHashes() // fully initialize before sharing read-only
	l.ex.eng.pages.put(ref.ID, p)
	return p, nil
}

// addWanted records an incoming shipment of tuple IDs (with their
// placement hashes) from an index node. Shipments from senders already
// known to have failed are ignored; the shipment's slices are referenced,
// not copied (callers hand over ownership — loopback fast paths may even
// alias index-page slices, which are immutable). Duplicate IDs from
// several senders simply coexist; the pass emits each distinct ID once,
// from a sender that is still clean at pass time — so a dead node's
// in-flight bulk shipment can never displace the heir's re-shipped
// entries, and shipments recorded before their sender's failure became
// known are filtered by preparePass (after purgeTainted/markFailed set
// the failed bits).
func (l *scanLeaf) addWanted(ids []tuple.ID, hashes []keyspace.Key, fromIdx int) {
	if l.ex.failedProv().Has(fromIdx) {
		return
	}
	l.mu.Lock()
	l.ships = append(l.ships, &idShipment{ids: ids, hashes: hashes, fromIdx: int32(fromIdx)})
	l.mu.Unlock()
}

// purgeTainted exists for interface symmetry with the other recoverable
// state holders: tainted shipments need no eager purge — preparePass
// filters by the failed set when the pass runs, and shipments of an
// already-run pass were snapshotted out of l.ships.
func (l *scanLeaf) purgeTainted(Prov) {}

// doneMark records an index-side completion marker; when all live nodes
// have finished the current phase, the data pass runs (once per phase).
func (l *scanLeaf) doneMark(from ring.NodeID, phase uint32) {
	l.mu.Lock()
	m := l.doneFrom[phase]
	if m == nil {
		m = make(map[ring.NodeID]bool)
		l.doneFrom[phase] = m
	}
	m[from] = true
	run, passPhase, tick := l.readyLocked()
	l.mu.Unlock()
	if run {
		go l.runPass(passPhase, tick)
	}
}

// recheck re-evaluates pass readiness after a membership change.
func (l *scanLeaf) recheck() {
	if l.spec.Covering {
		return
	}
	l.mu.Lock()
	run, passPhase, tick := l.readyLocked()
	l.mu.Unlock()
	if run {
		go l.runPass(passPhase, tick)
	}
}

// readyLocked reports whether the current phase's pass should fire, and if
// so claims its execution ticket. Tickets are claimed under l.mu, so pass
// execution order always matches the (phase-monotonic) firing order.
func (l *scanLeaf) readyLocked() (bool, uint32, uint64) {
	phase := l.ex.phaseNow()
	if l.passRun[phase] {
		return false, phase, 0
	}
	m := l.doneFrom[phase]
	for _, id := range l.ex.liveMembers() {
		if !m[id] {
			return false, phase, 0
		}
	}
	l.passRun[phase] = true
	return true, phase, l.passSeq.ticket()
}

// passEntry is one live wanted entry prepared for the merge walk: its full
// local-store key (carved from a shared slab), the shipment and position
// it came from, and whether the pass has handled it.
type passEntry struct {
	key  []byte
	ship int32
	pos  int32
	done bool
}

// runPass is the data-storage-node half: a single pass through the local
// hash-ID ranges, emitting the wanted tuple versions (§V-B: "the tuples
// from each index page are stored nearby on disk, and are retrieved in a
// single pass through the hash ID range for that page").
//
// The pass is the engine's hottest loop, so it is allocation-lean end to
// end: the wanted entries are sorted into storage-key order once and
// merge-walked against the B-tree scan (one bytes.Compare per visited
// tuple instead of a hash-map probe; the scan seeks to the first wanted
// key and stops past the last), matched records decode straight into
// column-major batches (no per-row Row/Value boxing; string values alias
// the store's immutable record bytes), and whole batches flow into the
// operator pipeline. With provenance enabled the per-row form is kept —
// every tuple then carries its own mutable provenance set stamped with
// the requesting index node.
func (l *scanLeaf) runPass(phase uint32, tick uint64) {
	l.passSeq.wait(tick)
	defer l.passSeq.done()
	l.mu.Lock()
	ships := l.ships
	l.ships = nil
	l.mu.Unlock()

	store := l.ex.eng.node.Store()
	self := l.ex.self()
	cur := l.ex.currentTable()
	prov := l.ex.opts.Provenance
	tr := l.ex.trace
	var sp *obs.Span
	var emitted int64
	if tr != nil {
		sp = tr.Begin("scan.pass")
		sp.Phase = phase
	}

	// Row-at-a-time emission (provenance mode and the replica fallback).
	var batch []Tup
	flush := func() {
		if len(batch) > 0 {
			emitted += int64(len(batch))
			l.ex.stats.addScanned(len(batch))
			l.out.push(batch)
			batch = nil
		}
	}
	emit := func(rec vstore.TupleRecord, fromIdx int32) {
		t := l.ex.originTup(rec.Row, phase)
		if t.Prov != nil && fromIdx >= 0 {
			t.Prov.Set(int(fromIdx))
		}
		batch = append(batch, t)
		if len(batch) >= flushRows {
			flush()
		}
	}

	// Column-major emission (the default path).
	var cb *colBatch
	var colTypes []tuple.Type
	flushCols := func() {
		if cb != nil && cb.cols.N > 0 {
			emitted += int64(cb.cols.N)
			l.ex.stats.addScanned(cb.cols.N)
			forwardBatch(l.out, l.outB(), cb)
			cb = nil
		}
	}
	if !prov && l.meta != nil {
		colTypes = make([]tuple.Type, len(l.meta.schema.Columns))
		for i, c := range l.meta.schema.Columns {
			colTypes[i] = c.Type
		}
	}

	if len(ships) > 0 && l.meta != nil {
		pes := preparePass(ships, l.ex.failedProv())
		// handle decodes and emits one matched record, reporting success.
		// A local decode failure (truncated/corrupt record) leaves the
		// entry un-done so the replica fallback below fetches the exact
		// version remotely, as §IV requires.
		handle := func(pe *passEntry, v []byte) bool {
			if colTypes != nil {
				if cb == nil {
					cb = l.batchFor(phase, colTypes)
				}
				n := cb.cols.N
				if err := vstore.DecodeTupleRecordCols(l.meta.schema, v, &cb.cols); err != nil {
					cb.cols.Truncate(n) // back out the partial row
					return false
				}
				if cb.cols.N >= flushRows {
					flushCols()
				}
				return true
			}
			rec, err := vstore.DecodeTupleRecord(l.meta.schema, v)
			if err != nil {
				return false
			}
			emit(rec, ships[pe.ship].fromIdx)
			return true
		}
		// The walk merges the sorted wanted list against a seekable B-tree
		// iterator: dense wanted sets advance pair-by-pair (one compare per
		// visited tuple, as before), but when the gap to the next wanted
		// key exceeds a few linear probes the iterator seeks — skipping
		// whole subtrees instead of visiting every tuple in between.
		const seekAfterSteps = 8
		scanRange := func(it *kvstore.Iterator, lo, hi []byte) {
			// Skip wanted keys below the range, and start the walk at the
			// first wanted key at or above lo.
			ptr := sort.Search(len(pes), func(i int) bool { return bytes.Compare(pes[i].key, lo) >= 0 })
			if ptr >= len(pes) || (hi != nil && bytes.Compare(pes[ptr].key, hi) >= 0) {
				return // nothing wanted in this range
			}
			it.Seek(pes[ptr].key)
			for it.Valid() && ptr < len(pes) {
				if l.ex.aborted.Load() {
					return // answer already complete or query cancelled
				}
				k := it.Key()
				if hi != nil && bytes.Compare(k, hi) >= 0 {
					return
				}
				c := bytes.Compare(pes[ptr].key, k)
				if c < 0 {
					ptr++ // not stored locally; replica fallback below
					continue
				}
				if c > 0 {
					// Stored keys below the next wanted key: probe a few
					// pairs linearly, then seek past the whole gap.
					probed := false
					for step := 0; step < seekAfterSteps; step++ {
						it.Next()
						if !it.Valid() {
							return
						}
						if bytes.Compare(it.Key(), pes[ptr].key) >= 0 {
							probed = true
							break
						}
					}
					if !probed {
						it.Seek(pes[ptr].key)
					}
					continue
				}
				pe := &pes[ptr]
				ptr++
				dupStart := ptr
				for ptr < len(pes) && bytes.Equal(pes[ptr].key, k) {
					ptr++
				}
				if handle(pe, it.Value()) {
					// Emitted: retire this entry and every duplicate of
					// it (same ID shipped by several senders — one
					// emission). On failure all stay live for the
					// replica fallback.
					pe.done = true
					for j := dupStart; j < ptr; j++ {
						pes[j].done = true
					}
				}
				it.Next()
			}
		}
		store.Iter(func(it *kvstore.Iterator) {
			for _, r := range cur.RangesOf(self) {
				lo, hi, wrapped := vstore.TupleScanBounds(r.Lo, r.Hi)
				if wrapped {
					scanRange(it, lo, []byte("t0"))
					scanRange(it, []byte("t/"), hi)
				} else {
					scanRange(it, lo, hi)
				}
			}
		})
		// Any IDs not found locally (replication lag, churn) are fetched
		// from other replicas — the exact version, never stale data (§IV).
		var fetched map[string]bool
		for i := range pes {
			pe := &pes[i]
			if pe.done || l.ex.aborted.Load() {
				continue
			}
			pe.done = true
			if fetched[string(pe.key)] {
				continue // duplicate of an already-fetched ID
			}
			sh := ships[pe.ship]
			id := sh.ids[pe.pos]
			ctx, cancel := context.WithTimeout(context.Background(), l.ex.eng.node.Config().RequestTimeout)
			data, err := l.ex.eng.node.GetRecord(ctx, sh.hashes[pe.pos], vstore.TupleKVKey(id))
			cancel()
			if fetched == nil {
				fetched = make(map[string]bool)
			}
			fetched[string(pe.key)] = true
			if err != nil {
				continue
			}
			rec, err := vstore.DecodeTupleRecord(l.meta.schema, data)
			if err != nil {
				continue
			}
			emit(rec, sh.fromIdx)
		}
	}
	flushCols()
	flush()
	if sp != nil {
		sp.Rows = emitted
		tr.End(sp)
		tr.Attach(l.ex.frag, sp)
	}
	l.out.eos(phase)
}

// batchFor returns a columnar batch ready for decoding, reusing the leaf's
// vectors: once a batch has been handed downstream the whole operator
// chain has finished with it (pushCols retains nothing; materialization
// copies), so the vectors can be truncated and refilled. The column header
// array is restored from the leaf's own copy because a projection
// downstream may have replaced it.
func (l *scanLeaf) batchFor(phase uint32, colTypes []tuple.Type) *colBatch {
	if l.scratch == nil {
		l.scratch = &colBatch{}
		l.scratch.cols.ResetTypes(colTypes)
		l.scratchCols = l.scratch.cols.Cols
		l.scratch.cols.Grow(flushRows)
	} else {
		l.scratch.cols.Cols = l.scratchCols
		l.scratch.cols.ResetTypes(colTypes)
	}
	l.scratch.phase = phase
	l.scratch.prov = nil
	return l.scratch
}

// preparePass expands the live shipments (sender still clean) into one
// entry per ID, builds each entry's full local-store key in a single
// shared slab, and sorts them into storage-key order for the merge walk.
func preparePass(ships []*idShipment, failed Prov) []passEntry {
	size, n := 0, 0
	for _, sh := range ships {
		if failed.Has(int(sh.fromIdx)) {
			continue
		}
		n += len(sh.ids)
		for _, id := range sh.ids {
			size += 2 + keyspace.Size + len(id.Key) + 1 + 8
		}
	}
	slab := make([]byte, 0, size)
	pes := make([]passEntry, 0, n)
	for si, sh := range ships {
		if failed.Has(int(sh.fromIdx)) {
			continue
		}
		for i, id := range sh.ids {
			start := len(slab)
			slab = append(slab, 't', '/')
			slab = append(slab, sh.hashes[i][:]...)
			slab = append(slab, id.Key...)
			slab = append(slab, 0)
			slab = binary.BigEndian.AppendUint64(slab, uint64(id.Epoch))
			pes = append(pes, passEntry{key: slab[start:len(slab):len(slab)], ship: int32(si), pos: int32(i)})
		}
	}
	// Shipments arrive in page (hash) order, so the list is mostly sorted
	// already; pdqsort makes this pass cheap.
	sort.Slice(pes, func(i, j int) bool { return bytes.Compare(pes[i].key, pes[j].key) < 0 })
	return pes
}

// outB resolves the batch-aware view of the leaf's output sink.
func (l *scanLeaf) outB() batchSink { return asBatchSink(l.out) }

// CoveringPred builds the scan predicate for an equality on the leading
// key attribute.
func CoveringPred(s *tuple.Schema, v tuple.Value) cluster.KeyPred {
	return cluster.EqPred(s, v)
}
