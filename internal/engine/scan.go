package engine

import (
	"context"
	"sync"

	"orchestra/internal/cluster"
	"orchestra/internal/ring"
	"orchestra/internal/tuple"
	"orchestra/internal/vstore"
)

// relMeta is the per-relation metadata resolved by the initiator and
// shipped with the query so every node sees the same snapshot: the schema,
// the effective modification epoch, and that epoch's coordinator record.
type relMeta struct {
	schema   *tuple.Schema
	effEpoch tuple.Epoch
	coord    *vstore.Coordinator // nil when the relation has no data at the epoch
}

// scanLeaf drives one scan operator instance on one node. It has two
// halves, mirroring the distributed scan of Table I:
//
//   - The index side processes the index pages this node is responsible
//     for (under the query snapshot; under the recovery table for later
//     phases), filters tuple IDs with the sargable predicate, and ships ID
//     collections to the data storage nodes — mostly itself, thanks to
//     page/tuple colocation.
//   - The data side accumulates wanted IDs, and when every live node has
//     signalled that its index work for the phase is complete, retrieves
//     the tuples in a single pass through its local hash-ID range and
//     pushes them into the local plan.
//
// Covering index scans skip the data side entirely: key attributes are
// decoded straight out of the tuple IDs (Table I, covering index scan).
type scanLeaf struct {
	ex   *executor
	spec *ScanNode
	meta *relMeta
	out  sink

	// idxSeq orders runIndexSide invocations by launch order: a later
	// phase's index work (and its trailing done marker) must not overtake
	// an earlier phase's ID shipments on any link, or data nodes would run
	// their pass before all the earlier IDs arrived and strand stragglers.
	idxSeq sequencer

	// passSeq orders runPass invocations the same way on the data side:
	// the end-of-stream a later pass propagates must follow every emission
	// of the earlier pass on every link. A plain mutex is insufficient for
	// either: goroutine scheduling could let wave p+1 acquire it first.
	passSeq sequencer

	mu       sync.Mutex
	wanted   map[tuple.ID]int // tuple ID → index-node snapshot member index
	doneFrom map[uint32]map[ring.NodeID]bool
	passRun  map[uint32]bool
}

func newScanLeaf(ex *executor, spec *ScanNode, meta *relMeta, out sink) *scanLeaf {
	return &scanLeaf{
		ex:       ex,
		spec:     spec,
		meta:     meta,
		out:      out,
		wanted:   make(map[tuple.ID]int),
		doneFrom: make(map[uint32]map[ring.NodeID]bool),
		passRun:  make(map[uint32]bool),
	}
}

// runIndexSide performs this node's index work for a phase. For phase 0,
// the node serves the pages whose placement it owns under the snapshot.
// For recovery phases it serves (a) pages in ranges inherited from failed
// nodes — re-shipped in full, since every phase-0 row from those pages is
// tainted by the failed index node — and (b) its own pages, re-shipping
// only IDs whose previous data owner failed (§V-D stages 3 and 4).
func (l *scanLeaf) runIndexSide(phase uint32, inherited []ring.Range, prevTable *ring.Table, tick uint64) {
	l.idxSeq.wait(tick)
	defer l.idxSeq.done()
	cur := l.ex.currentTable()
	self := l.ex.self()
	var coveringOut []Tup
	if l.meta != nil && l.meta.coord != nil {
		byDest := make(map[ring.NodeID][]tuple.ID)
		for _, ref := range l.meta.coord.Pages {
			placement := ref.Placement()
			full := false
			if phase == 0 {
				if cur.Owner(placement) != self {
					continue
				}
				full = true
			} else {
				inInherited := false
				for _, r := range inherited {
					if r.Contains(placement) {
						inInherited = true
						break
					}
				}
				if inInherited {
					full = true
				} else if prevTable.Owner(placement) != self {
					continue
				}
			}
			page, err := l.loadPage(ref)
			if err != nil {
				continue // replicas unreachable; data side observes the gap
			}
			for _, id := range page.IDs {
				if !l.spec.Pred.Match(id.Key) {
					continue
				}
				if l.spec.Covering {
					if full {
						if row, err := id.KeyValues(); err == nil {
							coveringOut = append(coveringOut, l.ex.originTup(tuple.Row(row), phase))
						}
					}
					continue
				}
				owner := cur.Owner(id.Hash())
				if !full {
					// Resend mode: only IDs whose old data owner failed.
					if cur.Contains(prevTable.Owner(id.Hash())) {
						continue
					}
				}
				byDest[owner] = append(byDest[owner], id)
			}
		}
		for dest, ids := range byDest {
			l.ex.sendScanIDs(l.spec.ScanID, dest, ids)
		}
	}
	if l.spec.Covering {
		if len(coveringOut) > 0 {
			l.ex.stats.addScanned(len(coveringOut))
			l.out.push(coveringOut)
		}
		l.out.eos(phase)
		return
	}
	// Signal that this node's index work for the phase is complete; the
	// marker follows all ID shipments on each link (FIFO), so data sides
	// that have every marker have every ID. The marker carries this wave's
	// phase, not the node's current phase, which may already be newer.
	l.ex.broadcastScanDone(l.spec.ScanID, phase)
}

// loadPage fetches a page from the local store, falling back to replicas.
func (l *scanLeaf) loadPage(ref vstore.PageRef) (*vstore.Page, error) {
	kv := vstore.PageKVKey(ref.ID)
	if data, ok := l.ex.eng.node.Store().Get(kv); ok {
		return vstore.DecodePage(data)
	}
	ctx, cancel := context.WithTimeout(context.Background(), l.ex.eng.node.Config().RequestTimeout)
	defer cancel()
	data, err := l.ex.eng.node.GetRecord(ctx, ref.Placement(), kv)
	if err != nil {
		return nil, err
	}
	return vstore.DecodePage(data)
}

// addWanted records incoming tuple IDs from an index node. Shipments from
// senders already known to have failed are ignored, and a failed sender
// never displaces a clean requester: a dead node's in-flight bulk shipment
// must not clobber the heir's re-shipped entries, or the whole block would
// be emitted tainted and dropped downstream. (A clean entry recorded before
// the sender's failure becomes known is removed by purgeTainted, which runs
// after the failed bit is set.)
func (l *scanLeaf) addWanted(ids []tuple.ID, fromIdx int) {
	failed := l.ex.failedProv()
	if failed.Has(fromIdx) {
		return
	}
	l.mu.Lock()
	for _, id := range ids {
		if cur, ok := l.wanted[id]; ok && !failed.Has(cur) {
			continue
		}
		l.wanted[id] = fromIdx
	}
	l.mu.Unlock()
}

// purgeTainted drops pending wanted IDs whose index node failed; the
// inheriting nodes re-ship them in the new phase.
func (l *scanLeaf) purgeTainted(failed Prov) {
	l.mu.Lock()
	for id, idx := range l.wanted {
		if failed.Has(idx) {
			delete(l.wanted, id)
		}
	}
	l.mu.Unlock()
}

// doneMark records an index-side completion marker; when all live nodes
// have finished the current phase, the data pass runs (once per phase).
func (l *scanLeaf) doneMark(from ring.NodeID, phase uint32) {
	l.mu.Lock()
	m := l.doneFrom[phase]
	if m == nil {
		m = make(map[ring.NodeID]bool)
		l.doneFrom[phase] = m
	}
	m[from] = true
	run, passPhase, tick := l.readyLocked()
	l.mu.Unlock()
	if run {
		go l.runPass(passPhase, tick)
	}
}

// recheck re-evaluates pass readiness after a membership change.
func (l *scanLeaf) recheck() {
	if l.spec.Covering {
		return
	}
	l.mu.Lock()
	run, passPhase, tick := l.readyLocked()
	l.mu.Unlock()
	if run {
		go l.runPass(passPhase, tick)
	}
}

// readyLocked reports whether the current phase's pass should fire, and if
// so claims its execution ticket. Tickets are claimed under l.mu, so pass
// execution order always matches the (phase-monotonic) firing order.
func (l *scanLeaf) readyLocked() (bool, uint32, uint64) {
	phase := l.ex.phaseNow()
	if l.passRun[phase] {
		return false, phase, 0
	}
	m := l.doneFrom[phase]
	for _, id := range l.ex.liveMembers() {
		if !m[id] {
			return false, phase, 0
		}
	}
	l.passRun[phase] = true
	return true, phase, l.passSeq.ticket()
}

// runPass is the data-storage-node half: a single pass through the local
// hash-ID ranges, emitting the wanted tuple versions (§V-B: "the tuples
// from each index page are stored nearby on disk, and are retrieved in a
// single pass through the hash ID range for that page").
func (l *scanLeaf) runPass(phase uint32, tick uint64) {
	l.passSeq.wait(tick)
	defer l.passSeq.done()
	l.mu.Lock()
	wanted := l.wanted
	l.wanted = make(map[tuple.ID]int)
	l.mu.Unlock()

	store := l.ex.eng.node.Store()
	self := l.ex.self()
	cur := l.ex.currentTable()
	var batch []Tup
	flush := func() {
		if len(batch) > 0 {
			l.ex.stats.addScanned(len(batch))
			l.out.push(batch)
			batch = nil
		}
	}
	emit := func(rec vstore.TupleRecord, fromIdx int) {
		t := l.ex.originTup(rec.Row, phase)
		if t.Prov != nil && fromIdx >= 0 {
			t.Prov.Set(fromIdx)
		}
		batch = append(batch, t)
		if len(batch) >= flushRows {
			flush()
		}
	}

	if len(wanted) > 0 && l.meta != nil {
		scanRange := func(lo, hi []byte) {
			store.Scan(lo, hi, func(k, v []byte) bool {
				id, ok := vstore.TupleIDFromKVKey(k)
				if !ok {
					return true
				}
				fromIdx, want := wanted[id]
				if !want {
					return true
				}
				rec, err := vstore.DecodeTupleRecord(l.meta.schema, v)
				if err != nil {
					return true
				}
				delete(wanted, id)
				emit(rec, fromIdx)
				return true
			})
		}
		for _, r := range cur.RangesOf(self) {
			lo, hi, wrapped := vstore.TupleScanBounds(r.Lo, r.Hi)
			if wrapped {
				scanRange(lo, []byte("t0"))
				scanRange([]byte("t/"), hi)
			} else {
				scanRange(lo, hi)
			}
		}
		// Any IDs not found locally (replication lag, churn) are fetched
		// from other replicas — the exact version, never stale data (§IV).
		if len(wanted) > 0 {
			ctx, cancel := context.WithTimeout(context.Background(), l.ex.eng.node.Config().RequestTimeout)
			for id, fromIdx := range wanted {
				data, err := l.ex.eng.node.GetRecord(ctx, id.Hash(), vstore.TupleKVKey(id))
				if err != nil {
					continue
				}
				rec, err := vstore.DecodeTupleRecord(l.meta.schema, data)
				if err != nil {
					continue
				}
				emit(rec, fromIdx)
			}
			cancel()
		}
	}
	flush()
	l.out.eos(phase)
}

// CoveringPred builds the scan predicate for an equality on the leading
// key attribute.
func CoveringPred(s *tuple.Schema, v tuple.Value) cluster.KeyPred {
	return cluster.EqPred(s, v)
}
