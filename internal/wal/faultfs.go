package wal

import (
	"errors"
	iofs "io/fs"
	"sync"
)

// ErrInjected is returned by every FaultFS operation at and after the
// armed crash step.
var ErrInjected = errors.New("wal: injected fault")

// FaultFS wraps an FS and simulates a crash-stop at a chosen durability
// step. Steps count the operations that change on-disk state — Write,
// Sync, Truncate, Close, Rename — in execution order. Once the armed
// step is reached, that operation fails (a Write optionally lands a
// torn prefix first, like a real partial sector write) and *every*
// subsequent operation fails too: the process is "dead" and the test
// then reopens the directory with a clean FS to exercise recovery.
type FaultFS struct {
	base FS

	mu     sync.Mutex
	step   int // durability ops performed so far
	failAt int // crash at this step; -1 = disarmed
	torn   int // bytes of the failing Write that still land
	dead   bool
}

// NewFaultFS returns a disarmed FaultFS over base.
func NewFaultFS(base FS) *FaultFS {
	return &FaultFS{base: base, failAt: -1}
}

// FailAt arms a crash at durability step n (0-based). If the failing
// operation is a Write, its first tornBytes bytes are written before
// the failure — a torn write.
func (f *FaultFS) FailAt(n, tornBytes int) {
	f.mu.Lock()
	f.step, f.failAt, f.torn, f.dead = 0, n, tornBytes, false
	f.mu.Unlock()
}

// Disarm stops injecting and resets the step counter.
func (f *FaultFS) Disarm() {
	f.mu.Lock()
	f.step, f.failAt, f.dead = 0, -1, false
	f.mu.Unlock()
}

// Steps returns how many durability operations have run since the last
// FailAt/Disarm — run a workload disarmed first to learn the sweep
// bound.
func (f *FaultFS) Steps() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.step
}

// next advances the step counter. It reports (crashNow, tornBytes):
// crashNow means this operation is the armed step (or the FS is already
// dead); tornBytes is only meaningful for Writes at the armed step.
func (f *FaultFS) next() (bool, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead {
		return true, 0
	}
	if f.failAt >= 0 && f.step == f.failAt {
		f.dead = true
		f.step++
		return true, f.torn
	}
	f.step++
	return false, 0
}

// alive reports whether non-durability ops (open/read/stat) still work.
func (f *FaultFS) alive() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return !f.dead
}

func (f *FaultFS) OpenFile(name string, flag int, perm iofs.FileMode) (File, error) {
	if !f.alive() {
		return nil, ErrInjected
	}
	file, err := f.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if crash, _ := f.next(); crash {
		return ErrInjected
	}
	return f.base.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if !f.alive() {
		return ErrInjected
	}
	return f.base.Remove(name)
}

func (f *FaultFS) MkdirAll(path string, perm iofs.FileMode) error {
	if !f.alive() {
		return ErrInjected
	}
	return f.base.MkdirAll(path, perm)
}

func (f *FaultFS) Stat(name string) (iofs.FileInfo, error) {
	if !f.alive() {
		return nil, ErrInjected
	}
	return f.base.Stat(name)
}

func (f *FaultFS) ReadDir(name string) ([]string, error) {
	if !f.alive() {
		return nil, ErrInjected
	}
	return f.base.ReadDir(name)
}

// SyncDir is a durability step: crashing here models power loss after a
// rename reached the directory cache but before the entry was flushed.
func (f *FaultFS) SyncDir(name string) error {
	if crash, _ := f.next(); crash {
		return ErrInjected
	}
	return f.base.SyncDir(name)
}

type faultFile struct {
	fs *FaultFS
	f  File
}

func (ff *faultFile) Read(p []byte) (int, error) {
	if !ff.fs.alive() {
		return 0, ErrInjected
	}
	return ff.f.Read(p)
}

func (ff *faultFile) Write(p []byte) (int, error) {
	if crash, torn := ff.fs.next(); crash {
		if torn > 0 {
			if torn > len(p) {
				torn = len(p)
			}
			ff.f.Write(p[:torn]) // the torn prefix reaches the disk
		}
		return 0, ErrInjected
	}
	return ff.f.Write(p)
}

func (ff *faultFile) Seek(offset int64, whence int) (int64, error) {
	if !ff.fs.alive() {
		return 0, ErrInjected
	}
	return ff.f.Seek(offset, whence)
}

func (ff *faultFile) Truncate(size int64) error {
	if crash, _ := ff.fs.next(); crash {
		return ErrInjected
	}
	return ff.f.Truncate(size)
}

func (ff *faultFile) Sync() error {
	if crash, _ := ff.fs.next(); crash {
		return ErrInjected
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error {
	if crash, _ := ff.fs.next(); crash {
		ff.f.Close() // release the descriptor either way
		return ErrInjected
	}
	return ff.f.Close()
}
