package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	iofs "io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"orchestra/internal/obs"
)

// On-disk layout.
//
// Log file = header | record*. The header pins the log to a snapshot
// generation so recovery can tell a live log from a stale one left by a
// crash mid-checkpoint, and to a base sequence number so a chain of
// rotated segments can be verified contiguous:
//
//	magic "ORCWAL1\n" (8) | version (1) | pad (3) | gen (8) | baseEpoch (8) | baseSeq (8) | crc32c (4)
//
// Record frame (also used for snapshot entries):
//
//	frameLen u32 BE (= 1 + len(payload)) | op (1) | payload | crc32c (4)
//
// Records carry no explicit sequence number: the i'th record of a log
// (1-based) has global sequence BaseSeq+i, so positions are implicit and
// the frame format is unchanged from version 1.
//
// The CRC (Castagnoli) covers the length prefix, op, and payload, so a
// torn or bit-flipped frame — including a corrupted length — fails
// verification instead of desynchronizing the parse.
const (
	magic     = "ORCWAL1\n"
	version   = 2
	headerLen = 40

	// MaxRecordLen caps a single frame's op+payload length. A frame
	// claiming more than this is treated as corruption — hostile or
	// garbage input must not drive allocation.
	MaxRecordLen = 1 << 28
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Errors recovery distinguishes on. ErrCorrupt wraps any structural
// damage that must stop the node (bad header magic/CRC); a torn record
// tail is NOT an error — ReadAll truncates it and reports it.
var (
	ErrCorrupt = errors.New("wal: corrupt")
	ErrClosed  = errors.New("wal: closed")
)

// Header identifies which snapshot generation a log extends and the
// global record sequence number it starts after.
type Header struct {
	Gen       uint64 // snapshot generation this log's records apply on top of
	BaseEpoch uint64 // store epoch at the time the log was (re)initialized
	BaseSeq   uint64 // global sequence of the last record before this log
}

func appendHeader(dst []byte, h Header) []byte {
	start := len(dst)
	dst = append(dst, magic...)
	dst = append(dst, version, 0, 0, 0)
	dst = binary.BigEndian.AppendUint64(dst, h.Gen)
	dst = binary.BigEndian.AppendUint64(dst, h.BaseEpoch)
	dst = binary.BigEndian.AppendUint64(dst, h.BaseSeq)
	crc := crc32.Checksum(dst[start:], crcTable)
	return binary.BigEndian.AppendUint32(dst, crc)
}

func parseHeader(data []byte) (Header, error) {
	if len(data) < headerLen {
		return Header{}, io.ErrUnexpectedEOF
	}
	if string(data[:8]) != magic {
		return Header{}, fmt.Errorf("%w: bad log magic", ErrCorrupt)
	}
	if crc32.Checksum(data[:headerLen-4], crcTable) != binary.BigEndian.Uint32(data[headerLen-4:]) {
		return Header{}, fmt.Errorf("%w: log header checksum mismatch", ErrCorrupt)
	}
	if v := data[8]; v != version {
		return Header{}, fmt.Errorf("%w: unsupported log version %d", ErrCorrupt, v)
	}
	return Header{
		Gen:       binary.BigEndian.Uint64(data[12:]),
		BaseEpoch: binary.BigEndian.Uint64(data[20:]),
		BaseSeq:   binary.BigEndian.Uint64(data[28:]),
	}, nil
}

// Record is one decoded log record.
type Record struct {
	Op      byte
	Payload []byte
}

// AppendRecord appends the framed encoding of one record to dst.
func AppendRecord(dst []byte, op byte, payload []byte) []byte {
	start := len(dst)
	dst = binary.BigEndian.AppendUint32(dst, uint32(1+len(payload)))
	dst = append(dst, op)
	dst = append(dst, payload...)
	crc := crc32.Checksum(dst[start:], crcTable)
	return binary.BigEndian.AppendUint32(dst, crc)
}

// DecodeRecord parses one record frame from the front of data. The
// returned payload aliases data. ok is false for an incomplete, torn,
// oversized, or checksum-failing frame.
func DecodeRecord(data []byte) (op byte, payload []byte, n int, ok bool) {
	if len(data) < 4 {
		return 0, nil, 0, false
	}
	flen := binary.BigEndian.Uint32(data)
	if flen < 1 || flen > MaxRecordLen {
		return 0, nil, 0, false
	}
	end := 4 + int(flen)
	if len(data) < end+4 {
		return 0, nil, 0, false
	}
	if crc32.Checksum(data[:end], crcTable) != binary.BigEndian.Uint32(data[end:]) {
		return 0, nil, 0, false
	}
	return data[4], data[5:end], end + 4, true
}

// ParseAll decodes a full log image: header, then records up to the
// first invalid frame. valid is the byte length of the intact prefix
// (records after it are a torn tail to truncate). It returns
// io.ErrUnexpectedEOF when data is shorter than a header, and ErrCorrupt
// when the header itself fails validation.
func ParseAll(data []byte) (hdr Header, recs []Record, valid int64, err error) {
	hdr, err = parseHeader(data)
	if err != nil {
		return Header{}, nil, 0, err
	}
	off := headerLen
	for off < len(data) {
		op, payload, n, ok := DecodeRecord(data[off:])
		if !ok {
			break
		}
		recs = append(recs, Record{Op: op, Payload: payload})
		off += n
	}
	return hdr, recs, int64(off), nil
}

// Contents is the result of a paranoid read of an existing log.
type Contents struct {
	Missing   bool // no log file, or one torn before the header completed
	Header    Header
	Records   []Record // payloads alias one internal buffer
	Size      int64    // length of the intact prefix (the post-truncation file size)
	TornBytes int64    // trailing bytes dropped as a torn tail
}

// ReadAll reads and validates the log at path, truncating any torn tail
// in place so subsequent appends extend a clean prefix. A missing file,
// or one shorter than a complete header (a crash before the initial
// header sync — nothing was ever acknowledged from it), reports
// Missing. A present-but-invalid header is ErrCorrupt: that log
// acknowledged writes this process can no longer read, so refuse.
func ReadAll(fsys FS, path string) (*Contents, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR, 0o644)
	if errors.Is(err, iofs.ErrNotExist) {
		return &Contents{Missing: true}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	defer f.Close()
	data, err := io.ReadAll(bufio.NewReaderSize(f, 1<<16))
	if err != nil {
		return nil, fmt.Errorf("wal: read %s: %w", path, err)
	}
	hdr, recs, valid, perr := ParseAll(data)
	if errors.Is(perr, io.ErrUnexpectedEOF) {
		return &Contents{Missing: true}, nil
	}
	if perr != nil {
		return nil, fmt.Errorf("wal: %s: %w", path, perr)
	}
	c := &Contents{Header: hdr, Records: recs, Size: valid, TornBytes: int64(len(data)) - valid}
	if c.TornBytes > 0 {
		if err := f.Truncate(valid); err != nil {
			return nil, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
		}
	}
	return c, nil
}

// SyncMode selects when committed records are fsynced.
type SyncMode uint8

const (
	// SyncAlways fsyncs before acknowledging every commit, batching
	// concurrent committers into one sync (group commit).
	SyncAlways SyncMode = iota
	// SyncInterval fsyncs on a timer; a crash can lose up to one
	// interval of acknowledged writes.
	SyncInterval
	// SyncNever leaves flushing to the OS page cache.
	SyncNever
)

// String names the mode as accepted by the CLI -sync flag.
func (m SyncMode) String() string {
	switch m {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncMode(%d)", uint8(m))
}

// Options configures a Log. The metric handles are optional (nil skips
// observation).
type Options struct {
	Mode     SyncMode
	Interval time.Duration // SyncInterval period; default 50ms

	FsyncUs      *obs.Histogram // latency of each log fsync
	Fsyncs       *obs.Counter   // number of log fsyncs
	BatchRecords *obs.Histogram // records retired per group-commit fsync
}

// Log is an append-only record log with group commit.
//
// Writers call Append (which buffers the record and returns its LSN)
// and then Commit(lsn), which returns once the record is durable per
// the sync mode. Under SyncAlways, concurrent committers elect a
// leader: it flushes and fsyncs everything appended so far while
// followers wait, so N concurrent commits cost one fsync.
//
// LSNs are a monotonic per-open counter, not file offsets — Reinit
// (checkpoint truncation) marks all appended records as durable, since
// the snapshot that triggered it covers them.
type Log struct {
	fsys FS
	path string
	opts Options

	mu       sync.Mutex // guards f writes, buf, size, appended, err
	f        File
	buf      *bufio.Writer
	size     int64 // logical file length including buffered bytes
	appended int64 // LSN of the most recently appended record
	err      error // sticky append/flush failure
	scratch  []byte

	syncMu   sync.Mutex
	syncCond *sync.Cond
	syncing  bool  // a group-commit leader is flushing+syncing
	synced   int64 // highest LSN acknowledged durable
	syncErr  error // sticky fsync failure

	stop      chan struct{}
	tickerWG  sync.WaitGroup
	closeOnce sync.Once
}

func newLog(fsys FS, f File, path string, size int64, opts Options) *Log {
	if opts.Interval <= 0 {
		opts.Interval = 50 * time.Millisecond
	}
	l := &Log{fsys: fsys, f: f, path: path, size: size, opts: opts,
		buf: bufio.NewWriterSize(f, 1<<16), stop: make(chan struct{})}
	l.syncCond = sync.NewCond(&l.syncMu)
	if opts.Mode == SyncInterval {
		l.tickerWG.Add(1)
		go func() {
			defer l.tickerWG.Done()
			t := time.NewTicker(opts.Interval)
			defer t.Stop()
			for {
				select {
				case <-l.stop:
					return
				case <-t.C:
					_ = l.Sync()
				}
			}
		}()
	}
	return l
}

// Reset creates (or truncates) the log at path with a fresh header and
// syncs it — including the directory entry, in case the file was just
// created — so the generation marker is durable before any record.
func Reset(fsys FS, path string, hdr Header, opts Options) (*Log, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create %s: %w", path, err)
	}
	if err := initLogFile(f, hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: init %s: %w", path, err)
	}
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: sync dir of %s: %w", path, err)
	}
	return newLog(fsys, f, path, headerLen, opts), nil
}

// OpenAppend opens an existing, already-validated log (see ReadAll) for
// appending at offset size.
func OpenAppend(fsys FS, path string, size int64, opts Options) (*Log, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek %s: %w", path, err)
	}
	return newLog(fsys, f, path, size, opts), nil
}

func initLogFile(f File, hdr Header) error {
	if err := f.Truncate(0); err != nil {
		return err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if _, err := f.Write(appendHeader(nil, hdr)); err != nil {
		return err
	}
	return f.Sync()
}

// Append buffers one record and returns its LSN for Commit. Safe for
// concurrent use.
func (l *Log) Append(op byte, payload []byte) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	l.scratch = AppendRecord(l.scratch[:0], op, payload)
	if _, err := l.buf.Write(l.scratch); err != nil {
		l.err = fmt.Errorf("wal: append: %w", err)
		return 0, l.err
	}
	l.size += int64(len(l.scratch))
	l.appended++
	return l.appended, nil
}

// Commit makes the record at lsn durable per the sync mode and returns
// once it is. Under SyncAlways concurrent commits share one fsync.
func (l *Log) Commit(lsn int64) error {
	if l.opts.Mode != SyncAlways {
		l.mu.Lock()
		err := l.flushLocked()
		l.mu.Unlock()
		return err
	}
	l.syncMu.Lock()
	for {
		if l.syncErr != nil {
			err := l.syncErr
			l.syncMu.Unlock()
			return err
		}
		if l.synced >= lsn {
			l.syncMu.Unlock()
			return nil
		}
		if !l.syncing {
			break
		}
		l.syncCond.Wait()
	}
	l.syncing = true
	l.syncMu.Unlock()

	// Leader: flush everything appended so far, then one fsync covers
	// this record and every follower parked above. The file is captured
	// under mu — a concurrent Rotate may swap it, in which case the
	// rotation's own seal fsync already made these records durable.
	l.mu.Lock()
	target := l.appended
	err := l.flushLocked()
	f := l.f
	l.mu.Unlock()
	if err == nil {
		err = l.fsyncFile(f)
	}

	l.syncMu.Lock()
	l.syncing = false
	if err != nil && target <= l.synced {
		// A rotation overtook this fsync and marked everything up to
		// target durable via its seal fsync; an error on the retired
		// file (possibly already closed) endangers nothing.
		err = nil
	}
	if err != nil {
		l.syncErr = err
	} else if target > l.synced {
		if l.opts.BatchRecords != nil {
			l.opts.BatchRecords.ObserveUs(target - l.synced)
		}
		l.synced = target
	}
	err = l.syncErr
	l.syncCond.Broadcast()
	l.syncMu.Unlock()
	return err
}

// Sync flushes and fsyncs everything appended so far (interval ticker,
// close path, and explicit barriers).
func (l *Log) Sync() error {
	l.mu.Lock()
	target := l.appended
	err := l.flushLocked()
	f := l.f
	l.mu.Unlock()
	if err != nil {
		return err
	}
	if err := l.fsyncFile(f); err != nil {
		l.syncMu.Lock()
		if target <= l.synced {
			// Rotation already covered these records (see Commit).
			l.syncMu.Unlock()
			return nil
		}
		if l.syncErr == nil {
			l.syncErr = err
		}
		l.syncMu.Unlock()
		return err
	}
	l.syncMu.Lock()
	if target > l.synced {
		l.synced = target
	}
	l.syncMu.Unlock()
	return nil
}

func (l *Log) fsyncFile(f File) error {
	t0 := time.Now()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	if l.opts.FsyncUs != nil {
		l.opts.FsyncUs.Observe(time.Since(t0))
	}
	if l.opts.Fsyncs != nil {
		l.opts.Fsyncs.Inc()
	}
	return nil
}

func (l *Log) flushLocked() error {
	if l.err != nil {
		return l.err
	}
	if err := l.buf.Flush(); err != nil {
		l.err = fmt.Errorf("wal: flush: %w", err)
		return l.err
	}
	return nil
}

// Reinit truncates the log to a fresh header for the given generation —
// the checkpoint path, called after the snapshot covering every applied
// record has been published. All outstanding LSNs are marked durable:
// their effects live in the snapshot now. The caller must prevent
// concurrent Appends (the store holds its write lock).
func (l *Log) Reinit(hdr Header) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	l.buf.Reset(l.f) // drop buffered frames; the snapshot has them
	if err := initLogFile(l.f, hdr); err != nil {
		l.err = fmt.Errorf("wal: reinit: %w", err)
		return l.err
	}
	l.size = headerLen
	l.syncMu.Lock()
	if l.appended > l.synced {
		l.synced = l.appended
	}
	l.syncCond.Broadcast()
	l.syncMu.Unlock()
	return nil
}

// Rotate seals the current log file as an archived segment at segPath
// and continues appending into a fresh log (with hdr) at the original
// path — the streaming-checkpoint variant of Reinit. The old file is
// flushed and fsynced before the rename, so the sealed segment is
// complete and durable; every record appended so far is then marked
// durable, releasing any commits parked on the group-commit condition.
// The caller must prevent concurrent Appends (the store holds its write
// lock), but unlike Reinit no snapshot needs to exist yet: recovery
// replays the segment chain.
func (l *Log) Rotate(segPath string, hdr Header) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	fail := func(stage string, err error) error {
		l.err = fmt.Errorf("wal: rotate %s: %w", stage, err)
		return l.err
	}
	if err := l.buf.Flush(); err != nil {
		return fail("flush", err)
	}
	if err := l.f.Sync(); err != nil {
		return fail("seal fsync", err)
	}
	// The fd stays valid across the rename; it is closed only after any
	// in-flight group-commit fsync drains (a leader may hold the old
	// file captured outside mu — its records are durable via the seal
	// fsync above, so its own fsync outcome no longer matters).
	oldF := l.f
	if err := l.fsys.Rename(l.path, segPath); err != nil {
		return fail("archive", err)
	}
	f, err := l.fsys.OpenFile(l.path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fail("create", err)
	}
	if err := initLogFile(f, hdr); err != nil {
		f.Close()
		return fail("init", err)
	}
	// One directory sync makes both the rename and the new file durable.
	if err := l.fsys.SyncDir(filepath.Dir(l.path)); err != nil {
		f.Close()
		return fail("sync dir", err)
	}
	l.f = f
	l.buf.Reset(f)
	l.size = headerLen
	l.syncMu.Lock()
	if l.appended > l.synced {
		l.synced = l.appended
	}
	l.syncCond.Broadcast()
	l.syncMu.Unlock()
	go func() {
		l.syncMu.Lock()
		for l.syncing {
			l.syncCond.Wait()
		}
		l.syncMu.Unlock()
		oldF.Close()
	}()
	return nil
}

// Size returns the logical log length in bytes (including buffered,
// not-yet-flushed records).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Close flushes, syncs, and closes the log. The log must not be used
// afterwards; in-flight Commits must have returned.
func (l *Log) Close() error {
	err := error(nil)
	l.closeOnce.Do(func() {
		close(l.stop)
		l.tickerWG.Wait()
		l.mu.Lock()
		defer l.mu.Unlock()
		flushErr := l.err
		if flushErr == nil {
			flushErr = l.buf.Flush()
		}
		if flushErr == nil {
			flushErr = l.f.Sync()
		}
		closeErr := l.f.Close()
		l.err = ErrClosed
		if flushErr != nil {
			err = flushErr
		} else {
			err = closeErr
		}
	})
	return err
}
