package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestFaultFSCrashStop checks the harness's crash model itself: the
// armed step fails, a torn write leaves exactly the prefix, and every
// operation afterwards fails until rearm.
func TestFaultFSCrashStop(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS)
	path := filepath.Join(dir, "f")

	// Count steps of a tiny workload: open, write, sync, close.
	f, err := ffs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if got := ffs.Steps(); got != 3 { // write, sync, close
		t.Fatalf("steps = %d, want 3", got)
	}

	// Crash at the write with a 5-byte torn prefix.
	ffs.FailAt(0, 5)
	f, err = ffs.OpenFile(path, os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello world")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write err = %v", err)
	}
	// Dead: everything fails now.
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync after crash = %v", err)
	}
	if _, err := ffs.OpenFile(path, os.O_RDONLY, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("open after crash = %v", err)
	}
	f.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello" {
		t.Fatalf("torn write left %q, want %q", data, "hello")
	}
	ffs.Disarm()
	if _, err := ffs.OpenFile(path, os.O_RDONLY, 0); err != nil {
		t.Fatalf("disarmed open: %v", err)
	}
}

// TestLogSurvivesCrashAtEveryStep sweeps a WAL append workload, crashing
// at each durability step, and checks the invariant that matters: every
// record whose Commit returned nil before the crash is present after
// recovery, and the log always reopens.
func TestLogSurvivesCrashAtEveryStep(t *testing.T) {
	workload := func(fsys FS, dir string) (acked int, err error) {
		l, err := Reset(fsys, filepath.Join(dir, "x.wal"), Header{Gen: 1}, Options{Mode: SyncAlways})
		if err != nil {
			return 0, err
		}
		defer l.Close()
		for i := 0; i < 6; i++ {
			lsn, err := l.Append(1, []byte{byte(i)})
			if err != nil {
				return acked, err
			}
			if err := l.Commit(lsn); err != nil {
				return acked, err
			}
			acked = i + 1
		}
		return acked, l.Close()
	}

	// Dry run to learn the step count.
	ffs := NewFaultFS(OS)
	if _, err := workload(ffs, t.TempDir()); err != nil {
		t.Fatal(err)
	}
	steps := ffs.Steps()
	if steps < 8 {
		t.Fatalf("suspiciously few steps: %d", steps)
	}

	for step := 0; step < steps; step++ {
		for _, torn := range []int{0, 3} {
			dir := t.TempDir()
			ffs := NewFaultFS(OS)
			ffs.FailAt(step, torn)
			acked, _ := workload(ffs, dir) // error expected: we crashed it

			c, err := ReadAll(OS, filepath.Join(dir, "x.wal"))
			if err != nil {
				t.Fatalf("step %d torn %d: recovery read: %v", step, torn, err)
			}
			if c.Missing && acked > 0 {
				t.Fatalf("step %d torn %d: %d acked records but log missing", step, torn, acked)
			}
			if !c.Missing && len(c.Records) < acked {
				t.Fatalf("step %d torn %d: acked %d, recovered %d", step, torn, acked, len(c.Records))
			}
		}
	}
}
