package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func writeLog(t *testing.T, path string, hdr Header, recs []Record) {
	t.Helper()
	l, err := Reset(OS, path, hdr, Options{Mode: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		lsn, err := l.Append(r.Op, r.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Commit(lsn); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.wal")
	recs := []Record{
		{Op: 1, Payload: []byte("hello")},
		{Op: 2, Payload: nil},
		{Op: 3, Payload: bytes.Repeat([]byte{0xAB}, 5000)},
	}
	writeLog(t, path, Header{Gen: 7, BaseEpoch: 42}, recs)

	c, err := ReadAll(OS, path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Missing {
		t.Fatal("log reported missing")
	}
	if c.Header.Gen != 7 || c.Header.BaseEpoch != 42 {
		t.Fatalf("header = %+v", c.Header)
	}
	if c.TornBytes != 0 {
		t.Fatalf("torn bytes = %d", c.TornBytes)
	}
	if len(c.Records) != len(recs) {
		t.Fatalf("got %d records, want %d", len(c.Records), len(recs))
	}
	for i, r := range c.Records {
		if r.Op != recs[i].Op || !bytes.Equal(r.Payload, recs[i].Payload) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestMissingLog(t *testing.T) {
	c, err := ReadAll(OS, filepath.Join(t.TempDir(), "nope.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if !c.Missing {
		t.Fatal("want Missing for absent file")
	}
}

func TestTornHeaderIsMissing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.wal")
	if err := os.WriteFile(path, []byte(magic+"\x01"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := ReadAll(OS, path)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Missing {
		t.Fatal("short header should read as missing (crash before initial sync)")
	}
}

func TestCorruptHeaderRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.wal")
	writeLog(t, path, Header{Gen: 1}, nil)
	data, _ := os.ReadFile(path)
	data[10] ^= 0xFF // inside the header, breaks its CRC
	os.WriteFile(path, data, 0o644)
	if _, err := ReadAll(OS, path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.wal")
	writeLog(t, path, Header{Gen: 1}, []Record{
		{Op: 1, Payload: []byte("first")},
		{Op: 1, Payload: []byte("second")},
	})
	data, _ := os.ReadFile(path)
	// Chop mid-way through the last record.
	os.WriteFile(path, data[:len(data)-5], 0o644)

	c, err := ReadAll(OS, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Records) != 1 || string(c.Records[0].Payload) != "first" {
		t.Fatalf("records = %v", c.Records)
	}
	if c.TornBytes == 0 {
		t.Fatal("expected torn bytes reported")
	}
	if fi, _ := os.Stat(path); fi.Size() != c.Size {
		t.Fatalf("file not truncated: %d vs %d", fi.Size(), c.Size)
	}
	// The truncated log must append cleanly.
	l, err := OpenAppend(OS, path, c.Size, Options{Mode: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := l.Append(1, []byte("third"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(lsn); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	c2, err := ReadAll(OS, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(c2.Records) != 2 || string(c2.Records[1].Payload) != "third" {
		t.Fatalf("after reappend: %v", c2.Records)
	}
}

func TestCorruptMiddleRecordStopsParse(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.wal")
	writeLog(t, path, Header{Gen: 1}, []Record{
		{Op: 1, Payload: bytes.Repeat([]byte("a"), 100)},
		{Op: 1, Payload: bytes.Repeat([]byte("b"), 100)},
		{Op: 1, Payload: bytes.Repeat([]byte("c"), 100)},
	})
	data, _ := os.ReadFile(path)
	data[headerLen+120] ^= 0x01 // inside record 2's payload
	os.WriteFile(path, data, 0o644)

	c, err := ReadAll(OS, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Records) != 1 {
		t.Fatalf("got %d records past corruption, want 1", len(c.Records))
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.wal")
	l, err := Reset(OS, path, Header{Gen: 1}, Options{Mode: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	errc := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				lsn, err := l.Append(1, fmt.Appendf(nil, "w%d-%d", w, i))
				if err == nil {
					err = l.Commit(lsn)
				}
				if err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	c, err := ReadAll(OS, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Records) != writers*perWriter {
		t.Fatalf("got %d records, want %d", len(c.Records), writers*perWriter)
	}
}

func TestReinitReleasesCommitters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.wal")
	l, err := Reset(OS, path, Header{Gen: 1, BaseEpoch: 5}, Options{Mode: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := l.Append(1, []byte("covered-by-snapshot"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Reinit(Header{Gen: 2, BaseEpoch: 9}); err != nil {
		t.Fatal(err)
	}
	// The record predates the checkpoint, so its commit is already
	// durable (via the snapshot) and must return without syncing.
	if err := l.Commit(lsn); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	c, err := ReadAll(OS, path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Header.Gen != 2 || c.Header.BaseEpoch != 9 {
		t.Fatalf("header after reinit = %+v", c.Header)
	}
	if len(c.Records) != 0 {
		t.Fatalf("reinit left %d records", len(c.Records))
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.snap")
	w, err := CreateSnapshot(OS, path, 3, 17, 42)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"a": "1", "bb": "22", "ccc": "", "": "v"}
	for k, v := range want {
		if err := w.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	n, err := w.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if fi, _ := os.Stat(path); fi.Size() != n {
		t.Fatalf("reported %d bytes, file is %d", n, fi.Size())
	}
	s, err := ReadSnapshot(OS, path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Gen != 3 || s.Epoch != 17 || s.Seq != 42 || s.Count != uint64(len(want)) {
		t.Fatalf("snapshot meta = %+v", s)
	}
	got := map[string]string{}
	if err := s.Range(func(k, v []byte) error {
		got[string(k)] = string(v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %q = %q, want %q", k, got[k], v)
		}
	}
}

func TestSnapshotMissing(t *testing.T) {
	s, err := ReadSnapshot(OS, filepath.Join(t.TempDir(), "nope.snap"))
	if err != nil || s != nil {
		t.Fatalf("got %v, %v; want nil, nil", s, err)
	}
}

func TestSnapshotCorruptionRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.snap")
	w, err := CreateSnapshot(OS, path, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	w.Put([]byte("k"), []byte("v"))
	if _, err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	good, _ := os.ReadFile(path)

	for name, mutate := range map[string]func([]byte) []byte{
		"header-bitflip": func(b []byte) []byte { b[9] ^= 1; return b },
		"entry-bitflip":  func(b []byte) []byte { b[snapHeaderLen+5] ^= 1; return b },
		"truncated-tail": func(b []byte) []byte { return b[:len(b)-3] },
		"bad-magic":      func(b []byte) []byte { b[0] = 'X'; return b },
	} {
		data := mutate(append([]byte(nil), good...))
		os.WriteFile(path, data, 0o644)
		s, err := ReadSnapshot(OS, path)
		if err == nil {
			err = s.Range(func(k, v []byte) error { return nil })
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestSnapshotCrashBeforeRenameInvisible(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.snap")
	// Abandon a snapshot mid-write: only the .tmp exists.
	w, err := CreateSnapshot(OS, path, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	w.Put([]byte("k"), []byte("v"))
	// Simulated crash: no Commit, no Abort. Recovery must see nothing.
	s, err := ReadSnapshot(OS, path)
	if err != nil || s != nil {
		t.Fatalf("uncommitted snapshot visible: %v, %v", s, err)
	}
	_ = w
}
