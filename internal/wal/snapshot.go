package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	iofs "io/fs"
	"os"
	"path/filepath"
)

// Snapshot layout. A snapshot is the full store state at one
// generation; committing one lets the log (chain) be truncated. seq is
// the global record sequence the snapshot covers: every record with a
// lower-or-equal sequence is reflected in it (a fuzzy snapshot taken
// concurrently with writers may additionally reflect some later
// records, which is harmless — log replay is idempotent).
//
//	magic "ORCSNP1\n" (8) | version (1) | pad (3) | gen (8) | epoch (8) | seq (8) | count (8) | crc32c (4)
//
// followed by count entry frames (the record frame from wal.go with
// op = snapEntryOp and payload = keyLen uvarint | key | val). The file
// is written to a .tmp sibling and renamed into place after fsync, so
// the rename is the commit point: a crash mid-write leaves the previous
// snapshot untouched.
const (
	snapMagic     = "ORCSNP1\n"
	snapHeaderLen = 48
	snapEntryOp   = byte(1)

	// minEntryLen is the smallest possible entry frame (empty key and
	// value): 4-byte length + op + 1-byte keyLen varint + 4-byte CRC.
	minEntryLen = 10
)

// SnapshotWriter streams entries into a temp file; Commit atomically
// publishes it. Either Commit or Abort must be called.
type SnapshotWriter struct {
	fsys      FS
	tmp, path string
	f         File
	buf       *bufio.Writer
	gen       uint64
	epoch     uint64
	seq       uint64
	count     uint64
	bytes     int64
	scratch   []byte
	frame     []byte
	err       error
}

// CreateSnapshot starts writing a snapshot that will be published at
// path. gen is the new generation; epoch is the store epoch it
// captures; seq is the global record sequence it covers.
func CreateSnapshot(fsys FS, path string, gen, epoch, seq uint64) (*SnapshotWriter, error) {
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create snapshot %s: %w", tmp, err)
	}
	w := &SnapshotWriter{fsys: fsys, tmp: tmp, path: path, f: f,
		buf: bufio.NewWriterSize(f, 1<<16), gen: gen, epoch: epoch, seq: seq}
	// Placeholder header; Commit rewrites it with the final count.
	if _, err := w.buf.Write(appendSnapHeader(nil, gen, epoch, seq, 0)); err != nil {
		w.Abort()
		return nil, fmt.Errorf("wal: write snapshot header: %w", err)
	}
	w.bytes = snapHeaderLen
	return w, nil
}

// Put appends one key/value entry.
func (w *SnapshotWriter) Put(key, val []byte) error {
	if w.err != nil {
		return w.err
	}
	w.scratch = binary.AppendUvarint(w.scratch[:0], uint64(len(key)))
	w.scratch = append(w.scratch, key...)
	w.scratch = append(w.scratch, val...)
	w.frame = AppendRecord(w.frame[:0], snapEntryOp, w.scratch)
	if _, err := w.buf.Write(w.frame); err != nil {
		w.err = fmt.Errorf("wal: write snapshot entry: %w", err)
		return w.err
	}
	w.count++
	w.bytes += int64(len(w.frame))
	return nil
}

// Commit finalizes the header, fsyncs, renames the snapshot into place,
// and fsyncs the parent directory. It returns the snapshot's byte size.
// The rename plus directory sync is the durability point — a rename
// alone only updates the directory cache, so power loss could undo it
// after the caller had already truncated the WAL on the strength of the
// new snapshot. Until Commit returns, recovery sees the old snapshot.
func (w *SnapshotWriter) Commit() (int64, error) {
	if w.err != nil {
		w.Abort()
		return 0, w.err
	}
	err := func() error {
		if err := w.buf.Flush(); err != nil {
			return err
		}
		if _, err := w.f.Seek(0, io.SeekStart); err != nil {
			return err
		}
		if _, err := w.f.Write(appendSnapHeader(nil, w.gen, w.epoch, w.seq, w.count)); err != nil {
			return err
		}
		if err := w.f.Sync(); err != nil {
			return err
		}
		return w.f.Close()
	}()
	if err != nil {
		w.f.Close()
		w.f = nil
		w.Abort()
		return 0, fmt.Errorf("wal: finalize snapshot: %w", err)
	}
	w.f = nil
	if err := w.fsys.Rename(w.tmp, w.path); err != nil {
		w.fsys.Remove(w.tmp)
		return 0, fmt.Errorf("wal: publish snapshot: %w", err)
	}
	if err := w.fsys.SyncDir(filepath.Dir(w.path)); err != nil {
		return 0, fmt.Errorf("wal: sync snapshot dir: %w", err)
	}
	return w.bytes, nil
}

// Abort discards the temp file. Safe to call after a failed Commit.
func (w *SnapshotWriter) Abort() {
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
	w.fsys.Remove(w.tmp)
	if w.err == nil {
		w.err = errors.New("wal: snapshot aborted")
	}
}

func appendSnapHeader(dst []byte, gen, epoch, seq, count uint64) []byte {
	start := len(dst)
	dst = append(dst, snapMagic...)
	dst = append(dst, version, 0, 0, 0)
	dst = binary.BigEndian.AppendUint64(dst, gen)
	dst = binary.BigEndian.AppendUint64(dst, epoch)
	dst = binary.BigEndian.AppendUint64(dst, seq)
	dst = binary.BigEndian.AppendUint64(dst, count)
	crc := crc32.Checksum(dst[start:], crcTable)
	return binary.BigEndian.AppendUint32(dst, crc)
}

// Snapshot is a parsed, validated-on-iteration snapshot image.
type Snapshot struct {
	Gen   uint64
	Epoch uint64
	Seq   uint64
	Count uint64
	data  []byte // entry frames
}

// ParseSnapshot validates a raw snapshot image's header and structural
// bounds. Entry checksums are verified during Range.
func ParseSnapshot(data []byte) (*Snapshot, error) {
	if len(data) < snapHeaderLen {
		return nil, fmt.Errorf("%w: snapshot truncated (%d bytes)", ErrCorrupt, len(data))
	}
	if string(data[:8]) != snapMagic {
		return nil, fmt.Errorf("%w: bad snapshot magic", ErrCorrupt)
	}
	if crc32.Checksum(data[:snapHeaderLen-4], crcTable) != binary.BigEndian.Uint32(data[snapHeaderLen-4:]) {
		return nil, fmt.Errorf("%w: snapshot header checksum mismatch", ErrCorrupt)
	}
	if v := data[8]; v != version {
		return nil, fmt.Errorf("%w: unsupported snapshot version %d", ErrCorrupt, v)
	}
	s := &Snapshot{
		Gen:   binary.BigEndian.Uint64(data[12:]),
		Epoch: binary.BigEndian.Uint64(data[20:]),
		Seq:   binary.BigEndian.Uint64(data[28:]),
		Count: binary.BigEndian.Uint64(data[36:]),
		data:  data[snapHeaderLen:],
	}
	if s.Count > uint64(len(s.data))/minEntryLen {
		return nil, fmt.Errorf("%w: snapshot claims %d entries in %d bytes", ErrCorrupt, s.Count, len(s.data))
	}
	return s, nil
}

// ReadSnapshot loads and parses the snapshot at path. A missing file
// returns (nil, nil) — a store that has never checkpointed.
func ReadSnapshot(fsys FS, path string) (*Snapshot, error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if errors.Is(err, iofs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: open snapshot %s: %w", path, err)
	}
	defer f.Close()
	data, err := io.ReadAll(bufio.NewReaderSize(f, 1<<16))
	if err != nil {
		return nil, fmt.Errorf("wal: read snapshot %s: %w", path, err)
	}
	s, err := ParseSnapshot(data)
	if err != nil {
		return nil, fmt.Errorf("wal: snapshot %s: %w", path, err)
	}
	return s, nil
}

// Range iterates every entry in order, verifying each frame's checksum.
// Unlike a log, a snapshot has no legitimate torn tail — it was fsynced
// before the rename that published it — so any damaged or missing entry
// is ErrCorrupt. Key/value slices alias the snapshot's buffer.
func (s *Snapshot) Range(fn func(key, val []byte) error) error {
	off, n := 0, uint64(0)
	for off < len(s.data) {
		op, payload, sz, ok := DecodeRecord(s.data[off:])
		if !ok || op != snapEntryOp {
			return fmt.Errorf("%w: snapshot entry %d damaged", ErrCorrupt, n)
		}
		klen, m := binary.Uvarint(payload)
		// Overflow-safe bound check: klen can be near 2^64, so compare it
		// against the remaining length rather than adding to m.
		if m <= 0 || klen > uint64(len(payload)-m) {
			return fmt.Errorf("%w: snapshot entry %d has bad key length", ErrCorrupt, n)
		}
		key := payload[m : uint64(m)+klen]
		val := payload[uint64(m)+klen:]
		if err := fn(key, val); err != nil {
			return err
		}
		off += sz
		n++
	}
	if n != s.Count {
		return fmt.Errorf("%w: snapshot holds %d entries, header claims %d", ErrCorrupt, n, s.Count)
	}
	return nil
}
