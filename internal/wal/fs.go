// Package wal is the durability substrate for the per-node stores: a
// length-prefixed, CRC32C-checksummed write-ahead log with group commit
// (concurrent committers share one fsync), plus atomic full-state
// snapshots that let the log be truncated. Everything goes through the
// FS seam so the fault-injection harness (faultfs.go) can crash the
// store at any write/sync/rename boundary and prove recovery holds.
package wal

import (
	iofs "io/fs"
	"os"
)

// File is the subset of *os.File the WAL and snapshot writers need.
type File interface {
	Read(p []byte) (int, error)
	Write(p []byte) (int, error)
	Seek(offset int64, whence int) (int64, error)
	Truncate(size int64) error
	Sync() error
	Close() error
}

// FS abstracts the filesystem operations on the durability path. The
// production implementation is OS; tests swap in a FaultFS to inject
// torn writes and crash-stop errors at chosen steps.
type FS interface {
	OpenFile(name string, flag int, perm iofs.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(path string, perm iofs.FileMode) error
	Stat(name string) (iofs.FileInfo, error)
	// ReadDir lists the file names in a directory in lexical order
	// (recovery uses it to discover archived WAL segments).
	ReadDir(name string) ([]string, error)
	// SyncDir fsyncs the directory at name, making previously completed
	// renames and file creations inside it durable. A rename is only a
	// commit point once the directory entry itself is on disk — without
	// this, power loss can undo a "published" snapshot while keeping the
	// WAL truncation that assumed it.
	SyncDir(name string) error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm iofs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error           { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                       { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm iofs.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Stat(name string) (iofs.FileInfo, error)        { return os.Stat(name) }

func (osFS) ReadDir(name string) ([]string, error) {
	ents, err := os.ReadDir(name)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names, nil
}

func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	syncErr := d.Sync()
	closeErr := d.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
