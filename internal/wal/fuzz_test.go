package wal

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// FuzzWALDecode throws arbitrary bytes at the full log parser. The
// invariants: never panic, never claim a valid prefix longer than the
// input, and every accepted record must re-encode to the exact bytes it
// was decoded from (no aliasing or bounds slop).
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendHeader(nil, Header{Gen: 1, BaseEpoch: 2}))
	good := appendHeader(nil, Header{Gen: 3, BaseEpoch: 4})
	good = AppendRecord(good, 1, []byte("payload"))
	good = AppendRecord(good, 9, nil)
	f.Add(good)
	f.Add(good[:len(good)-2])
	f.Add(append(append([]byte{}, good...), 0xFF, 0x00, 0x12))

	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, recs, valid, err := ParseAll(data)
		if err != nil {
			return
		}
		if valid < headerLen || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d out of range [%d,%d]", valid, headerLen, len(data))
		}
		// Re-encoding the accepted records must reproduce the record
		// region byte for byte (the header's pad bytes are free).
		out := make([]byte, 0, valid)
		for _, r := range recs {
			out = AppendRecord(out, r.Op, r.Payload)
		}
		if !bytes.Equal(out, data[headerLen:valid]) {
			t.Fatalf("record re-encode mismatch: %d bytes in, %d out", valid-headerLen, len(out))
		}
		hdr2, err := parseHeader(appendHeader(nil, hdr))
		if err != nil || hdr2 != hdr {
			t.Fatalf("header round-trip: %+v vs %+v (%v)", hdr, hdr2, err)
		}
	})
}

// FuzzSnapshotDecode drives the snapshot parser + iterator with
// arbitrary bytes: no panics, no allocation driven by claimed counts,
// and every accepted snapshot iterates exactly Count entries.
func FuzzSnapshotDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendSnapHeader(nil, 1, 2, 0, 0))
	good := appendSnapHeader(nil, 1, 2, 0, 0)
	f.Add(good[:20])
	huge := appendSnapHeader(nil, 1, 2, 0, 1<<60) // count bomb, tiny body
	f.Add(huge)
	// Entry whose keyLen uvarint is ~2^64: the m+keyLen bound check must
	// not wrap around and pass (it would panic on the slice expression).
	wrap := appendSnapHeader(nil, 1, 2, 0, 1)
	wrap = AppendRecord(wrap, snapEntryOp, binary.AppendUvarint(nil, math.MaxUint64))
	f.Add(wrap)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSnapshot(data)
		if err != nil {
			return
		}
		var n uint64
		err = s.Range(func(k, v []byte) error {
			n++
			if n > s.Count {
				t.Fatalf("iterated past claimed count %d", s.Count)
			}
			return nil
		})
		if err == nil && n != s.Count {
			t.Fatalf("clean Range yielded %d entries, header says %d", n, s.Count)
		}
	})
}
