package tuple

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// randBatchRows builds a random type-homogeneous batch: random column
// signature, then values drawn per type (including adversarial ones:
// extreme ints, ±0, NaN-adjacent floats, empty/NUL/long strings).
func randBatchRows(rng *rand.Rand, nRows, arity int) []Row {
	types := make([]Type, arity)
	for i := range types {
		types[i] = Type(rng.Intn(3) + 1)
	}
	rows := make([]Row, nRows)
	for r := range rows {
		row := make(Row, arity)
		for c, t := range types {
			switch t {
			case Int64:
				switch rng.Intn(4) {
				case 0:
					row[c] = I(rng.Int63() - rng.Int63())
				case 1:
					row[c] = I(math.MaxInt64)
				case 2:
					row[c] = I(math.MinInt64)
				default:
					row[c] = I(int64(rng.Intn(1000)))
				}
			case Float64:
				switch rng.Intn(4) {
				case 0:
					row[c] = F(rng.NormFloat64() * 1e18)
				case 1:
					row[c] = F(math.Copysign(0, -1))
				case 2:
					row[c] = F(math.MaxFloat64)
				default:
					row[c] = F(float64(rng.Intn(100)) / 4)
				}
			case String:
				switch rng.Intn(4) {
				case 0:
					row[c] = S("")
				case 1:
					row[c] = S("with\x00nul\nand\tctrl")
				case 2:
					row[c] = S(strings.Repeat("pad", rng.Intn(200)))
				default:
					row[c] = S(fmt.Sprintf("k%06d", rng.Intn(1e6)))
				}
			}
		}
		rows[r] = row
	}
	return rows
}

// TestBatchRoundTripProperty round-trips randomized batches across all
// types, shapes, and both compression regimes.
func TestBatchRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		nRows := rng.Intn(300)
		arity := rng.Intn(6) + 1
		rows := randBatchRows(rng, nRows, arity)
		// Alternate the codec entry points and compression thresholds.
		var enc []byte
		var err error
		switch trial % 3 {
		case 0:
			enc, err = EncodeBatch(rows)
		case 1:
			enc, err = AppendBatch(nil, rows, -1) // never compress
		default:
			enc, err = AppendBatch(make([]byte, 0, 64), rows, 1) // always compress
		}
		if err != nil {
			t.Fatalf("trial %d: encode: %v", trial, err)
		}
		got, err := DecodeBatch(enc)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if len(got) != len(rows) {
			t.Fatalf("trial %d: %d rows, want %d", trial, len(got), len(rows))
		}
		for i := range rows {
			if len(got[i]) != len(rows[i]) {
				t.Fatalf("trial %d row %d: arity %d, want %d", trial, i, len(got[i]), len(rows[i]))
			}
			for j := range rows[i] {
				a, b := rows[i][j], got[i][j]
				if a.T != b.T || a.I64 != b.I64 || a.Str != b.Str ||
					math.Float64bits(a.F64) != math.Float64bits(b.F64) {
					t.Fatalf("trial %d row %d col %d: %v != %v", trial, i, j, b, a)
				}
			}
		}
	}
}

// TestAppendBatchReusesScratch verifies AppendBatch appends after
// existing bytes and reuses capacity instead of allocating fresh.
func TestAppendBatchReusesScratch(t *testing.T) {
	rows := []Row{{I(1), S("a")}, {I(2), S("b")}}
	scratch := make([]byte, 0, 4096)
	scratch = append(scratch, 0xAA, 0xBB)
	out, err := AppendBatch(scratch, rows, -1)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0xAA || out[1] != 0xBB {
		t.Fatal("prefix clobbered")
	}
	if &out[0] != &scratch[0] {
		t.Fatal("AppendBatch reallocated despite sufficient capacity")
	}
	got, err := DecodeBatch(out[2:])
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !got[0].Equal(rows[0]) || !got[1].Equal(rows[1]) {
		t.Fatalf("round trip mangled rows: %v", got)
	}
}

// TestBatchHuge exercises a batch well past the streaming chunk size.
func TestBatchHuge(t *testing.T) {
	const n = 50_000
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{I(int64(i)), F(float64(i) / 3), S(fmt.Sprintf("key-%09d", i))}
	}
	enc, err := EncodeBatch(rows)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatch(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("%d rows, want %d", len(got), n)
	}
	for _, i := range []int{0, 1, n / 2, n - 1} {
		if !got[i].Equal(rows[i]) {
			t.Fatalf("row %d: %v != %v", i, got[i], rows[i])
		}
	}
}

// TestDecodeBatchRejectsMalformed feeds corrupted encodings and expects
// an error, never a panic or a bogus success.
func TestDecodeBatchRejectsMalformed(t *testing.T) {
	good, err := EncodeBatch([]Row{{I(42), S("hello"), F(2.5)}, {I(-1), S(""), F(0)}})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":          {},
		"one byte":       {batchVersion},
		"bad version":    append([]byte{99}, good[1:]...),
		"truncated body": good[:len(good)-1],
		"header only":    good[:2],
		"implausible dims": append([]byte{batchVersion, 0},
			0xff, 0xff, 0xff, 0xff, 0x7f, 0x03),
		"bogus compressed": {batchVersion, flagCompressed, 0xde, 0xad, 0xbe, 0xef},
	}
	for name, data := range cases {
		if _, err := DecodeBatch(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Truncation at every prefix must error, not panic (the two-byte
	// header of an empty batch is the only valid prefix).
	raw, err := AppendBatch(nil, []Row{{I(7), S("x")}}, -1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(raw); i++ {
		if _, err := DecodeBatch(raw[:i]); err == nil && i != 2 {
			t.Errorf("prefix %d/%d accepted", i, len(raw))
		}
	}
}

// TestDecodeBatchDimsBomb rejects headers whose claimed dimensions
// exceed what the payload could possibly carry (allocation guard).
func TestDecodeBatchDimsBomb(t *testing.T) {
	var b []byte
	b = append(b, batchVersion, 0)
	b = appendUvarintT(b, 1<<27) // rows
	b = appendUvarintT(b, 1<<15) // arity
	b = append(b, byte(Int64), 1, 1, 1)
	if _, err := DecodeBatch(b); err == nil {
		t.Fatal("dims bomb accepted")
	}
	// Modest row count but huge arity: the rows*arity product must be
	// checked, not the row count alone (a 2KB payload claiming 100k x
	// 64k would otherwise force a ~250GiB Value allocation).
	b = b[:0]
	b = append(b, batchVersion, 0)
	b = appendUvarintT(b, 100_000)
	b = appendUvarintT(b, 1<<16)
	b = append(b, make([]byte, 2048)...)
	if _, err := DecodeBatch(b); err == nil {
		t.Fatal("rows*arity bomb accepted")
	}
}

func appendUvarintT(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// FuzzDecodeBatch asserts DecodeBatch never panics and that everything
// it accepts re-encodes to an equivalent batch.
func FuzzDecodeBatch(f *testing.F) {
	seedRows := [][]Row{
		nil,
		{{I(1)}},
		{{I(1), F(2.5), S("x")}, {I(-9), F(0), S("")}},
		randBatchRows(rand.New(rand.NewSource(1)), 40, 3),
	}
	for _, rows := range seedRows {
		if enc, err := EncodeBatch(rows); err == nil {
			f.Add(enc)
		}
		if enc, err := AppendBatch(nil, rows, 1); err == nil {
			f.Add(enc)
		}
	}
	f.Add([]byte{batchVersion, 0, 0x80})
	f.Add([]byte{batchVersion, flagCompressed, 0x01, 0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		rows, err := DecodeBatch(data)
		// The sibling decoders must never panic either, and must agree
		// with DecodeBatch on acceptance.
		anyRows, anyErr := DecodeBatchAny(data)
		var into Batch
		intoN, intoErr := DecodeBatchInto(data, &into)
		if err != nil {
			if anyErr == nil || (intoErr == nil && intoN > 0) {
				t.Fatalf("DecodeBatch rejected (%v) but Any=%v Into=%v", err, anyErr, intoErr)
			}
			return
		}
		if anyErr != nil || len(anyRows) != len(rows) {
			t.Fatalf("DecodeBatchAny: err=%v rows=%d want %d", anyErr, len(anyRows), len(rows))
		}
		if intoErr != nil || into.N != len(rows) {
			t.Fatalf("DecodeBatchInto: err=%v rows=%d want %d", intoErr, into.N, len(rows))
		}
		var scratch Row
		for i := range rows {
			scratch = into.Row(i, scratch)
			for j := range rows[i] {
				a, b := rows[i][j], scratch[j]
				if a.T != b.T || a.I64 != b.I64 || a.Str != b.Str ||
					math.Float64bits(a.F64) != math.Float64bits(b.F64) {
					t.Fatalf("DecodeBatchInto row %d col %d: %v != %v", i, j, b, a)
				}
			}
		}
		enc, err := EncodeBatch(rows)
		if err != nil {
			// Mixed-type columns cannot come out of DecodeBatch; any
			// accepted input must re-encode.
			t.Fatalf("decoded batch does not re-encode: %v", err)
		}
		again, err := DecodeBatch(enc)
		if err != nil {
			t.Fatalf("re-encoded batch does not decode: %v", err)
		}
		if len(again) != len(rows) {
			t.Fatalf("row count changed: %d != %d", len(again), len(rows))
		}
		for i := range rows {
			for j := range rows[i] {
				a, b := rows[i][j], again[i][j]
				if a.T != b.T || a.I64 != b.I64 || a.Str != b.Str ||
					math.Float64bits(a.F64) != math.Float64bits(b.F64) {
					t.Fatalf("row %d col %d changed: %v != %v", i, j, b, a)
				}
			}
		}
	})
}

// BenchmarkWireEncodeBatch measures the streaming path's batch encode
// (no compression — the loopback configuration).
func BenchmarkWireEncodeBatch(b *testing.B) {
	rows := benchRows(1024)
	var scratch []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		scratch, err = AppendBatch(scratch[:0], rows, -1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(scratch)))
}

// BenchmarkWireEncodeBatchCompressed includes flate (the WAN config).
func BenchmarkWireEncodeBatchCompressed(b *testing.B) {
	rows := benchRows(1024)
	var scratch []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		scratch, err = AppendBatch(scratch[:0], rows, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(scratch)))
}

// BenchmarkWireDecodeBatch measures the client-side decode.
func BenchmarkWireDecodeBatch(b *testing.B) {
	enc, err := AppendBatch(nil, benchRows(1024), -1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBatch(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func benchRows(n int) []Row {
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{S(fmt.Sprintf("k%06d", i)), I(int64(i % 17)), I(int64(i))}
	}
	return rows
}
