package tuple

import (
	"math/rand"
	"reflect"
	"testing"
)

func colTestSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("r", []Column{
		{Name: "k", Type: String},
		{Name: "g", Type: Int64},
		{Name: "f", Type: Float64},
	}, "k")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func randRows(rng *rand.Rand, s *Schema, n int) []Row {
	rows := make([]Row, n)
	for i := range rows {
		row := make(Row, len(s.Columns))
		for c, col := range s.Columns {
			switch col.Type {
			case Int64:
				row[c] = I(rng.Int63n(1000) - 500)
			case Float64:
				row[c] = F(rng.Float64() * 100)
			case String:
				row[c] = S(string(rune('a' + rng.Intn(26))))
			}
		}
		rows[i] = row
	}
	return rows
}

func TestBatchRoundTripRows(t *testing.T) {
	s := colTestSchema(t)
	rng := rand.New(rand.NewSource(3))
	rows := randRows(rng, s, 100)
	b := NewBatch(s)
	for _, r := range rows {
		if err := b.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	got := b.Rows()
	if len(got) != len(rows) {
		t.Fatalf("Rows() returned %d rows, want %d", len(got), len(rows))
	}
	for i := range rows {
		if !got[i].Equal(rows[i]) {
			t.Fatalf("row %d: got %v want %v", i, got[i], rows[i])
		}
	}
	// Row materializes a single row into a reused buffer.
	var buf Row
	for i := range rows {
		buf = b.Row(i, buf)
		if !buf.Equal(rows[i]) {
			t.Fatalf("Row(%d): got %v want %v", i, buf, rows[i])
		}
	}
}

func TestBatchCompactWords(t *testing.T) {
	s := colTestSchema(t)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(150)
		rows := randRows(rng, s, n)
		b := NewBatch(s)
		for _, r := range rows {
			if err := b.AppendRow(r); err != nil {
				t.Fatal(err)
			}
		}
		sel := make([]uint64, (n+63)/64)
		var want []Row
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				sel[i>>6] |= 1 << (uint(i) & 63)
				want = append(want, rows[i])
			}
		}
		kept := b.CompactWords(sel)
		if kept != len(want) || b.N != len(want) {
			t.Fatalf("kept %d (N=%d), want %d", kept, b.N, len(want))
		}
		got := b.Rows()
		for i := range want {
			if !got[i].Equal(want[i]) {
				t.Fatalf("trial %d row %d: got %v want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestBatchProjectAndTruncate(t *testing.T) {
	s := colTestSchema(t)
	rows := randRows(rand.New(rand.NewSource(5)), s, 10)
	b := NewBatch(s)
	for _, r := range rows {
		if err := b.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	b.Project([]int{2, 0})
	got := b.Rows()
	for i := range rows {
		want := Row{rows[i][2], rows[i][0]}
		if !got[i].Equal(want) {
			t.Fatalf("projected row %d: got %v want %v", i, got[i], want)
		}
	}
	b.Truncate(4)
	if b.N != 4 || len(b.Rows()) != 4 {
		t.Fatalf("Truncate(4) left N=%d", b.N)
	}
}

// TestAppendBatchColsMatchesRowEncoder checks that the columnar encoder
// produces bytes DecodeBatch understands, identically to the row encoder.
func TestAppendBatchColsMatchesRowEncoder(t *testing.T) {
	s := colTestSchema(t)
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{0, 1, 17, 300} {
		rows := randRows(rng, s, n)
		b := NewBatch(s)
		for _, r := range rows {
			if err := b.AppendRow(r); err != nil {
				t.Fatal(err)
			}
		}
		for _, minCompress := range []int{-1, 64} {
			fromRows, err := AppendBatch(nil, rows, minCompress)
			if err != nil {
				t.Fatal(err)
			}
			fromCols, err := AppendBatchCols(nil, b, minCompress)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fromRows, fromCols) {
				t.Fatalf("n=%d compress=%d: columnar encoding differs from row encoding", n, minCompress)
			}
			dec, err := DecodeBatch(fromCols)
			if err != nil {
				t.Fatal(err)
			}
			if len(dec) != n {
				t.Fatalf("decoded %d rows, want %d", len(dec), n)
			}
			for i := range rows {
				if !dec[i].Equal(rows[i]) {
					t.Fatalf("row %d: got %v want %v", i, dec[i], rows[i])
				}
			}
		}
	}
}

func TestDecodeRowCols(t *testing.T) {
	s := colTestSchema(t)
	rows := randRows(rand.New(rand.NewSource(7)), s, 64)
	b := NewBatch(s)
	for _, r := range rows {
		enc, err := AppendRow(nil, s, r)
		if err != nil {
			t.Fatal(err)
		}
		n, err := DecodeRowCols(enc, s, b)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(enc) {
			t.Fatalf("consumed %d of %d bytes", n, len(enc))
		}
	}
	got := b.Rows()
	for i := range rows {
		if !got[i].Equal(rows[i]) {
			t.Fatalf("row %d: got %v want %v", i, got[i], rows[i])
		}
	}
	// Truncated input backs out cleanly with Truncate.
	enc, err := AppendRow(nil, s, rows[0])
	if err != nil {
		t.Fatal(err)
	}
	before := b.N
	if _, err := DecodeRowCols(enc[:len(enc)-1], s, b); err == nil {
		t.Fatal("truncated row decoded without error")
	}
	b.Truncate(before)
	if b.N != before || b.Cols[0].Len() != before {
		t.Fatalf("Truncate did not restore the batch: N=%d len=%d want %d", b.N, b.Cols[0].Len(), before)
	}
}

func TestBatchGrowKeepsContents(t *testing.T) {
	s := colTestSchema(t)
	b := NewBatch(s)
	rows := randRows(rand.New(rand.NewSource(8)), s, 5)
	for _, r := range rows {
		if err := b.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	b.Grow(1024)
	for c := range b.Cols {
		if b.Cols[c].Len() != 5 {
			t.Fatalf("Grow changed column %d length to %d", c, b.Cols[c].Len())
		}
	}
	got := b.Rows()
	for i := range rows {
		if !got[i].Equal(rows[i]) {
			t.Fatalf("row %d after Grow: got %v want %v", i, got[i], rows[i])
		}
	}
}

// TestAppendBatchIntoMismatchLeavesIntact pins the pre-copy validation:
// a type mismatch in any column must leave the destination untouched
// (accumulators degrade to a row path and keep appending afterwards).
func TestAppendBatchIntoMismatchLeavesIntact(t *testing.T) {
	mk := func(types []Type, rows ...Row) *Batch {
		b := &Batch{}
		b.ResetTypes(types)
		for _, r := range rows {
			if err := b.AppendRow(r); err != nil {
				t.Fatal(err)
			}
		}
		return b
	}
	acc := mk([]Type{Int64, Int64}, Row{I(1), I(2)})
	// First column matches, second does not: nothing may be copied.
	bad := mk([]Type{Int64, Float64}, Row{I(3), F(4.5)})
	if err := acc.AppendBatchInto(bad); err == nil {
		t.Fatal("mismatched append succeeded")
	}
	if acc.N != 1 || len(acc.Cols[0].I64) != 1 || len(acc.Cols[1].I64) != 1 {
		t.Fatalf("accumulator corrupted after failed append: N=%d lens=%d/%d",
			acc.N, len(acc.Cols[0].I64), len(acc.Cols[1].I64))
	}
	// A subsequent good append and full materialization must work.
	good := mk([]Type{Int64, Int64}, Row{I(5), I(6)})
	if err := acc.AppendBatchInto(good); err != nil {
		t.Fatal(err)
	}
	rows := acc.Rows()
	if len(rows) != 2 || rows[1][0].I64 != 5 || rows[1][1].I64 != 6 {
		t.Fatalf("rows after recovery: %v", rows)
	}
	// Arity mismatch must also leave the accumulator intact.
	if err := acc.AppendBatchInto(mk([]Type{Int64}, Row{I(9)})); err == nil {
		t.Fatal("arity-mismatched append succeeded")
	}
	if acc.N != 2 {
		t.Fatalf("N=%d after arity mismatch", acc.N)
	}
}
