package tuple

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"
)

// Column-major in-memory batches: the unit the engine's scan pipeline
// operates on (MonetDB/X100-style vectorized execution). A Batch holds one
// typed vector per column, so predicates run as tight loops over []int64 /
// []float64 / []string instead of per-row Value dispatch, and the wire batch
// codec (batch.go) can serialize straight from the vectors.
//
// Batches are not safe for concurrent mutation; the engine hands each batch
// through its operator chain synchronously.

// ColVec is one column of a batch: a typed vector. Only the slice matching
// T is populated.
type ColVec struct {
	T   Type
	I64 []int64
	F64 []float64
	Str []string
}

// Len returns the number of values in the vector.
func (v *ColVec) Len() int {
	switch v.T {
	case Int64:
		return len(v.I64)
	case Float64:
		return len(v.F64)
	case String:
		return len(v.Str)
	}
	return 0
}

// Value boxes the i-th element.
func (v *ColVec) Value(i int) Value {
	switch v.T {
	case Int64:
		return I(v.I64[i])
	case Float64:
		return F(v.F64[i])
	case String:
		return S(v.Str[i])
	}
	return Value{}
}

// append adds one boxed value, which must match the vector's type.
func (v *ColVec) append(val Value) error {
	if val.T != v.T {
		return fmt.Errorf("tuple: column vector type %v, got %v", v.T, val.T)
	}
	switch v.T {
	case Int64:
		v.I64 = append(v.I64, val.I64)
	case Float64:
		v.F64 = append(v.F64, val.F64)
	case String:
		v.Str = append(v.Str, val.Str)
	}
	return nil
}

// reset re-types the vector and truncates it, keeping capacity.
func (v *ColVec) reset(t Type) {
	v.T = t
	v.I64 = v.I64[:0]
	v.F64 = v.F64[:0]
	v.Str = v.Str[:0]
}

// Batch is a column-major block of rows.
type Batch struct {
	N    int
	Cols []ColVec
}

// NewBatch returns an empty batch typed by the schema's columns.
func NewBatch(s *Schema) *Batch {
	b := &Batch{}
	b.ResetTypes(columnTypes(s))
	return b
}

func columnTypes(s *Schema) []Type {
	ts := make([]Type, len(s.Columns))
	for i, c := range s.Columns {
		ts[i] = c.Type
	}
	return ts
}

// ResetTypes empties the batch and re-types its columns, reusing vector
// capacity where the arity allows.
func (b *Batch) ResetTypes(types []Type) {
	if cap(b.Cols) < len(types) {
		b.Cols = make([]ColVec, len(types))
	} else {
		b.Cols = b.Cols[:len(types)]
	}
	for i := range b.Cols {
		b.Cols[i].reset(types[i])
	}
	b.N = 0
}

// AppendRow appends one row; its values must match the column types.
func (b *Batch) AppendRow(row Row) error {
	if len(row) != len(b.Cols) {
		return fmt.Errorf("tuple: batch arity %d, row arity %d", len(b.Cols), len(row))
	}
	for i := range row {
		if err := b.Cols[i].append(row[i]); err != nil {
			return err
		}
	}
	b.N++
	return nil
}

// Row materializes row i into dst (grown as needed) and returns it.
func (b *Batch) Row(i int, dst Row) Row {
	if cap(dst) < len(b.Cols) {
		dst = make(Row, len(b.Cols))
	} else {
		dst = dst[:len(b.Cols)]
	}
	for c := range b.Cols {
		dst[c] = b.Cols[c].Value(i)
	}
	return dst
}

// Rows materializes the whole batch as row slices carved from a single
// backing slab: two allocations total instead of one per row. The rows do
// not alias the batch's vectors (string contents are shared, which is safe
// — strings are immutable).
func (b *Batch) Rows() []Row {
	if b.N == 0 {
		return nil
	}
	arity := len(b.Cols)
	backing := make([]Value, b.N*arity)
	rows := make([]Row, b.N)
	for c := range b.Cols {
		v := &b.Cols[c]
		switch v.T {
		case Int64:
			for i, x := range v.I64 {
				backing[i*arity+c] = I(x)
			}
		case Float64:
			for i, x := range v.F64 {
				backing[i*arity+c] = F(x)
			}
		case String:
			for i, x := range v.Str {
				backing[i*arity+c] = S(x)
			}
		}
	}
	for i := range rows {
		rows[i] = Row(backing[i*arity : (i+1)*arity])
	}
	return rows
}

// Types returns the batch's column types (a fresh slice).
func (b *Batch) Types() []Type {
	ts := make([]Type, len(b.Cols))
	for i := range b.Cols {
		ts[i] = b.Cols[i].T
	}
	return ts
}

// SameTypes reports whether the batch's columns match types positionally.
func (b *Batch) SameTypes(types []Type) bool {
	if len(b.Cols) != len(types) {
		return false
	}
	for i := range b.Cols {
		if b.Cols[i].T != types[i] {
			return false
		}
	}
	return true
}

// Slice points into at rows [lo, hi) of b without copying values: into's
// column headers are rewritten to sub-slices of b's vectors. into must not
// outlive mutations of b; it is a borrowed view for encoding/iteration.
func (b *Batch) Slice(lo, hi int, into *Batch) {
	if cap(into.Cols) < len(b.Cols) {
		into.Cols = make([]ColVec, len(b.Cols))
	} else {
		into.Cols = into.Cols[:len(b.Cols)]
	}
	for c := range b.Cols {
		v := &b.Cols[c]
		w := &into.Cols[c]
		w.T = v.T
		w.I64, w.F64, w.Str = nil, nil, nil
		switch v.T {
		case Int64:
			w.I64 = v.I64[lo:hi]
		case Float64:
			w.F64 = v.F64[lo:hi]
		case String:
			w.Str = v.Str[lo:hi]
		}
	}
	into.N = hi - lo
}

// AppendBatchInto appends all of src's rows onto b. Column types must match
// positionally; b typed empty (N == 0, no columns) adopts src's types. The
// append is vector-wise — one bulk copy per column, no per-row boxing. All
// shape checks run before any copy, so a mismatch error leaves b intact
// (callers degrade to a row path and keep using the accumulator).
func (b *Batch) AppendBatchInto(src *Batch) error {
	if len(b.Cols) == 0 && b.N == 0 {
		b.ResetTypes(src.Types())
	}
	if len(b.Cols) != len(src.Cols) {
		return fmt.Errorf("tuple: append batch arity %d onto %d", len(src.Cols), len(b.Cols))
	}
	for c := range src.Cols {
		if src.Cols[c].T != b.Cols[c].T {
			return fmt.Errorf("tuple: append batch column %d type %v onto %v", c, src.Cols[c].T, b.Cols[c].T)
		}
	}
	for c := range src.Cols {
		v, w := &src.Cols[c], &b.Cols[c]
		switch v.T {
		case Int64:
			w.I64 = append(w.I64, v.I64...)
		case Float64:
			w.F64 = append(w.F64, v.F64...)
		case String:
			w.Str = append(w.Str, v.Str...)
		}
	}
	b.N += src.N
	return nil
}

// Grow ensures every column vector has capacity for at least n values,
// so a decode loop filling the batch never reallocates mid-stream.
func (b *Batch) Grow(n int) {
	for c := range b.Cols {
		v := &b.Cols[c]
		switch v.T {
		case Int64:
			if cap(v.I64) < n {
				v.I64 = append(make([]int64, 0, n), v.I64...)
			}
		case Float64:
			if cap(v.F64) < n {
				v.F64 = append(make([]float64, 0, n), v.F64...)
			}
		case String:
			if cap(v.Str) < n {
				v.Str = append(make([]string, 0, n), v.Str...)
			}
		}
	}
}

// ClearStrings zeroes every string header the batch's vectors still
// reference, including capacity beyond the current length. Pool
// recyclers call it so a parked batch cannot pin the string contents of
// its previous life across GC cycles (Truncate alone only re-slices).
func (b *Batch) ClearStrings() {
	for c := range b.Cols {
		v := &b.Cols[c]
		if v.Str == nil {
			continue
		}
		s := v.Str[:cap(v.Str)]
		for i := range s {
			s[i] = ""
		}
	}
}

// Truncate drops any rows past n — used to back out a partially decoded
// row after a mid-row decode error.
func (b *Batch) Truncate(n int) {
	for c := range b.Cols {
		v := &b.Cols[c]
		switch v.T {
		case Int64:
			if len(v.I64) > n {
				v.I64 = v.I64[:n]
			}
		case Float64:
			if len(v.F64) > n {
				v.F64 = v.F64[:n]
			}
		case String:
			if len(v.Str) > n {
				v.Str = v.Str[:n]
			}
		}
	}
	if b.N > n {
		b.N = n
	}
}

// CompactWords keeps exactly the rows whose bit is set in sel (bit i of
// sel[i/64]), compacting every column vector in place, and returns the new
// row count. sel must cover at least N bits.
func (b *Batch) CompactWords(sel []uint64) int {
	kept := 0
	for c := range b.Cols {
		v := &b.Cols[c]
		w := 0
		switch v.T {
		case Int64:
			for i := 0; i < b.N; i++ {
				if sel[i>>6]&(1<<(uint(i)&63)) != 0 {
					v.I64[w] = v.I64[i]
					w++
				}
			}
			v.I64 = v.I64[:w]
		case Float64:
			for i := 0; i < b.N; i++ {
				if sel[i>>6]&(1<<(uint(i)&63)) != 0 {
					v.F64[w] = v.F64[i]
					w++
				}
			}
			v.F64 = v.F64[:w]
		case String:
			for i := 0; i < b.N; i++ {
				if sel[i>>6]&(1<<(uint(i)&63)) != 0 {
					v.Str[w] = v.Str[i]
					w++
				}
			}
			v.Str = v.Str[:w]
		}
		kept = w
	}
	b.N = kept
	return kept
}

// Project restricts the batch to the given columns, in order. Column
// headers are copied, so a column may appear more than once; the underlying
// vectors are shared.
func (b *Batch) Project(cols []int) {
	out := make([]ColVec, len(cols))
	for i, c := range cols {
		out[i] = b.Cols[c]
	}
	b.Cols = out
}

// DecodeRowCols decodes one AppendRow-encoded row straight onto the
// batch's column vectors (the batch must be typed by the same schema) and
// returns the bytes consumed. This is the scan path's allocation-free
// decode: no Row or Value boxing is built, and string values ALIAS data
// instead of copying — the caller must guarantee that data is never
// mutated and outlives the batch (stored kvstore values satisfy this: they
// are copied on insert and immutable afterwards).
func DecodeRowCols(data []byte, s *Schema, b *Batch) (int, error) {
	if len(b.Cols) != len(s.Columns) {
		return 0, fmt.Errorf("tuple: batch arity %d != schema arity %d", len(b.Cols), len(s.Columns))
	}
	off := 0
	for i, col := range s.Columns {
		v := &b.Cols[i]
		switch col.Type {
		case Int64:
			x, n := binary.Varint(data[off:])
			if n <= 0 {
				return 0, fmt.Errorf("tuple: bad varint in column %s", col.Name)
			}
			v.I64 = append(v.I64, x)
			off += n
		case Float64:
			if off+8 > len(data) {
				return 0, fmt.Errorf("tuple: truncated float in column %s", col.Name)
			}
			v.F64 = append(v.F64, math.Float64frombits(binary.BigEndian.Uint64(data[off:])))
			off += 8
		case String:
			l, n := binary.Uvarint(data[off:])
			if n <= 0 || off+n+int(l) > len(data) {
				return 0, fmt.Errorf("tuple: truncated string in column %s", col.Name)
			}
			off += n
			if l == 0 {
				v.Str = append(v.Str, "")
			} else {
				v.Str = append(v.Str, unsafe.String(&data[off], int(l)))
			}
			off += int(l)
		default:
			return 0, fmt.Errorf("tuple: unknown column type %v", col.Type)
		}
	}
	b.N++
	return off, nil
}

// AppendBatchCols appends the wire encoding of a columnar batch to dst —
// identical format to AppendBatch, produced without materializing rows.
func AppendBatchCols(dst []byte, b *Batch, minCompress int) ([]byte, error) {
	mark := len(dst)
	dst = append(dst, batchVersion, 0)
	body, err := appendBatchColsBody(dst, b)
	if err != nil {
		return nil, err
	}
	return compressBatchTail(body, mark, minCompress)
}

func appendBatchColsBody(dst []byte, b *Batch) ([]byte, error) {
	dst = appendUvarint(dst, uint64(b.N))
	arity := 0
	if b.N > 0 {
		arity = len(b.Cols)
	}
	dst = appendUvarint(dst, uint64(arity))
	for c := 0; c < arity; c++ {
		v := &b.Cols[c]
		if !v.T.IsValidType() {
			return nil, fmt.Errorf("tuple: batch column %d has invalid type", c)
		}
		if v.Len() != b.N {
			return nil, fmt.Errorf("tuple: batch column %d has %d values, want %d", c, v.Len(), b.N)
		}
		dst = append(dst, byte(v.T))
		switch v.T {
		case Int64:
			for _, x := range v.I64 {
				dst = appendVarint(dst, x)
			}
		case Float64:
			for _, x := range v.F64 {
				dst = appendFloat64(dst, x)
			}
		case String:
			for _, x := range v.Str {
				dst = appendUvarint(dst, uint64(len(x)))
				dst = append(dst, x...)
			}
		}
	}
	return dst, nil
}
