// Package tuple defines the relational data model shared by the storage and
// query layers: schemas, typed values, rows, tuple identifiers that embed the
// modification epoch (paper §IV), an order-preserving key codec, and a
// compressed columnar batch codec used when shipping tuples between nodes
// (paper §V-A: tuples are batched by destination, compressed with lightweight
// Zip-based compression, and marshalled in a format that exploits their
// commonalities).
package tuple

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"orchestra/internal/keyspace"
)

// Type enumerates the supported column types. Dates are represented as
// ISO-8601 strings, which compare correctly lexicographically.
type Type uint8

const (
	// Int64 is a 64-bit signed integer column.
	Int64 Type = iota + 1
	// Float64 is a 64-bit floating point column.
	Float64
	// String is a variable-length string column.
	String
)

func (t Type) String() string {
	switch t {
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case String:
		return "string"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Column is a named, typed attribute.
type Column struct {
	Name string
	Type Type
}

// Schema describes a relation: its name, columns, and the indices of the key
// attributes used for partitioning (the clustered-index key of §IV; data is
// distributed across nodes by the hash of these attributes).
type Schema struct {
	Relation string
	Columns  []Column
	Key      []int // indices into Columns of the key attributes
}

// MaxRelationNameLen bounds relation names. Besides sanity, this keeps
// the vstore page codec's version detection unambiguous: a legacy page
// encoding starts with the name-length uvarint, whose first byte can
// only equal the v2 tag (0xFF) for names of 255+ bytes.
const MaxRelationNameLen = 200

// NewSchema builds a schema; keyCols name the key attributes.
func NewSchema(relation string, cols []Column, keyCols ...string) (*Schema, error) {
	if len(relation) > MaxRelationNameLen {
		return nil, fmt.Errorf("tuple: relation name %d bytes long exceeds limit %d", len(relation), MaxRelationNameLen)
	}
	s := &Schema{Relation: relation, Columns: cols}
	for _, kc := range keyCols {
		i := s.ColumnIndex(kc)
		if i < 0 {
			return nil, fmt.Errorf("tuple: key column %q not in schema %s", kc, relation)
		}
		s.Key = append(s.Key, i)
	}
	if len(s.Key) == 0 && len(cols) > 0 {
		s.Key = []int{0} // default: first attribute, as in the paper's TPC-H setup
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for statically known schemas.
func MustSchema(relation string, cols []Column, keyCols ...string) *Schema {
	s, err := NewSchema(relation, cols, keyCols...)
	if err != nil {
		panic(err)
	}
	return s
}

// ColumnIndex returns the index of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Arity returns the number of columns.
func (s *Schema) Arity() int { return len(s.Columns) }

// KeyColumns returns the key attribute indices.
func (s *Schema) KeyColumns() []int { return s.Key }

func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString(s.Relation)
	b.WriteString("(")
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteString(" ")
		b.WriteString(c.Type.String())
		for _, k := range s.Key {
			if k == i {
				b.WriteString(" KEY")
			}
		}
	}
	b.WriteString(")")
	return b.String()
}

// Equal reports whether two schemas have identical structure.
func (s *Schema) Equal(o *Schema) bool {
	if s.Relation != o.Relation || len(s.Columns) != len(o.Columns) || len(s.Key) != len(o.Key) {
		return false
	}
	for i := range s.Columns {
		if s.Columns[i] != o.Columns[i] {
			return false
		}
	}
	for i := range s.Key {
		if s.Key[i] != o.Key[i] {
			return false
		}
	}
	return true
}

// Value is a dynamically typed scalar. The zero Value is invalid; construct
// with I, F, or S. Values of equal type are totally ordered via Cmp.
type Value struct {
	T   Type
	I64 int64
	F64 float64
	Str string
}

// I returns an Int64 value.
func I(v int64) Value { return Value{T: Int64, I64: v} }

// F returns a Float64 value.
func F(v float64) Value { return Value{T: Float64, F64: v} }

// S returns a String value.
func S(v string) Value { return Value{T: String, Str: v} }

// IsValid reports whether the value has a known type.
func (v Value) IsValid() bool { return v.T >= Int64 && v.T <= String }

// Cmp totally orders values: first by type tag, then by value. Cross-type
// comparison of Int64 and Float64 compares numerically.
func (v Value) Cmp(o Value) int {
	if v.T != o.T {
		// Numeric cross-compare.
		if (v.T == Int64 || v.T == Float64) && (o.T == Int64 || o.T == Float64) {
			a, b := v.AsFloat(), o.AsFloat()
			switch {
			case a < b:
				return -1
			case a > b:
				return 1
			default:
				return 0
			}
		}
		if v.T < o.T {
			return -1
		}
		return 1
	}
	switch v.T {
	case Int64:
		switch {
		case v.I64 < o.I64:
			return -1
		case v.I64 > o.I64:
			return 1
		}
		return 0
	case Float64:
		switch {
		case v.F64 < o.F64:
			return -1
		case v.F64 > o.F64:
			return 1
		}
		return 0
	case String:
		return strings.Compare(v.Str, o.Str)
	}
	return 0
}

// Equal reports value equality (numeric across Int64/Float64).
func (v Value) Equal(o Value) bool { return v.Cmp(o) == 0 }

// AsFloat converts numeric values to float64.
func (v Value) AsFloat() float64 {
	if v.T == Int64 {
		return float64(v.I64)
	}
	return v.F64
}

// AsInt converts numeric values to int64 (truncating floats).
func (v Value) AsInt() int64 {
	if v.T == Float64 {
		return int64(v.F64)
	}
	return v.I64
}

func (v Value) String() string {
	switch v.T {
	case Int64:
		return strconv.FormatInt(v.I64, 10)
	case Float64:
		return strconv.FormatFloat(v.F64, 'g', -1, 64)
	case String:
		return v.Str
	default:
		return "<invalid>"
	}
}

// Row is a tuple of values, positionally matching a schema's columns.
type Row []Value

// Project returns the row restricted to the given column indices.
func (r Row) Project(cols []int) Row {
	out := make(Row, len(cols))
	for i, c := range cols {
		out[i] = r[c]
	}
	return out
}

// Concat returns the concatenation of r and other as a fresh row.
func (r Row) Concat(other Row) Row {
	out := make(Row, 0, len(r)+len(other))
	out = append(out, r...)
	return append(out, other...)
}

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Equal reports positional value equality.
func (r Row) Equal(o Row) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if !r[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Cmp orders rows lexicographically by column.
func (r Row) Cmp(o Row) int {
	n := len(r)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if c := r[i].Cmp(o[i]); c != 0 {
			return c
		}
	}
	return len(r) - len(o)
}

// --- Order-preserving key encoding ---
//
// EncodeKey produces a byte string whose lexicographic order matches the
// row order of the projected columns, so that the data-storage node's B+tree
// scans tuples in key order (§IV). Encoding per value:
//   Int64:   tag 0x01, 8 bytes big-endian with the sign bit flipped
//   Float64: tag 0x02, 8 bytes big-endian IEEE with order-fix transform
//   String:  tag 0x03, bytes with 0x00 escaped as 0x00 0xFF, ended 0x00 0x00

// EncodeKey encodes the projection of row onto cols order-preservingly.
func EncodeKey(row Row, cols []int) []byte {
	var out []byte
	for _, c := range cols {
		out = AppendKeyValue(out, row[c])
	}
	return out
}

// AppendKeyValue appends the order-preserving encoding of v to dst.
func AppendKeyValue(dst []byte, v Value) []byte {
	switch v.T {
	case Int64:
		dst = append(dst, 0x01)
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(v.I64)^(1<<63))
		return append(dst, b[:]...)
	case Float64:
		dst = append(dst, 0x02)
		bits := math.Float64bits(v.F64)
		if bits&(1<<63) != 0 {
			bits = ^bits // negative: flip everything
		} else {
			bits |= 1 << 63 // positive: set sign bit
		}
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], bits)
		return append(dst, b[:]...)
	case String:
		dst = append(dst, 0x03)
		for i := 0; i < len(v.Str); i++ {
			if v.Str[i] == 0x00 {
				dst = append(dst, 0x00, 0xFF)
			} else {
				dst = append(dst, v.Str[i])
			}
		}
		return append(dst, 0x00, 0x00)
	default:
		panic(fmt.Sprintf("tuple: cannot key-encode %v", v.T))
	}
}

// DecodeKey decodes a key encoded by EncodeKey back into values. This is the
// "tuple ID → tuple key" conversion the paper requires so that a tuple can be
// retrieved by its ID (§IV).
func DecodeKey(data []byte) ([]Value, error) {
	var out []Value
	for len(data) > 0 {
		tag := data[0]
		data = data[1:]
		switch tag {
		case 0x01:
			if len(data) < 8 {
				return nil, errors.New("tuple: truncated int64 key")
			}
			u := binary.BigEndian.Uint64(data[:8]) ^ (1 << 63)
			out = append(out, I(int64(u)))
			data = data[8:]
		case 0x02:
			if len(data) < 8 {
				return nil, errors.New("tuple: truncated float64 key")
			}
			bits := binary.BigEndian.Uint64(data[:8])
			if bits&(1<<63) != 0 {
				bits &^= 1 << 63
			} else {
				bits = ^bits
			}
			out = append(out, F(math.Float64frombits(bits)))
			data = data[8:]
		case 0x03:
			var sb strings.Builder
			i := 0
			for {
				if i+1 >= len(data)+1 && i >= len(data) {
					return nil, errors.New("tuple: unterminated string key")
				}
				if i >= len(data) {
					return nil, errors.New("tuple: unterminated string key")
				}
				if data[i] == 0x00 {
					if i+1 >= len(data) {
						return nil, errors.New("tuple: truncated string escape")
					}
					if data[i+1] == 0x00 { // terminator
						i += 2
						break
					}
					if data[i+1] == 0xFF { // escaped zero byte
						sb.WriteByte(0x00)
						i += 2
						continue
					}
					return nil, errors.New("tuple: bad string escape")
				}
				sb.WriteByte(data[i])
				i++
			}
			out = append(out, S(sb.String()))
			data = data[i:]
		default:
			return nil, fmt.Errorf("tuple: unknown key tag %#x", tag)
		}
	}
	return out, nil
}

// --- Tuple identifiers ---

// Epoch is a logical timestamp: it advances after each batch of updates is
// published by a peer (§IV).
type Epoch uint64

// ID uniquely identifies a tuple version: the order-preserving encoding of
// its key attributes plus the epoch in which it was last modified — the
// paper's ⟨key, epoch⟩ tuple ID (§IV, Example 4.1).
type ID struct {
	Key   string // EncodeKey output; string so ID is comparable/mappable
	Epoch Epoch
}

// NewID builds a tuple ID from a row under a schema at an epoch.
func NewID(s *Schema, row Row, e Epoch) ID {
	return ID{Key: string(EncodeKey(row, s.Key)), Epoch: e}
}

// Hash returns the tuple's placement key: the SHA-1 of its key attribute
// encoding. The epoch is deliberately excluded so that all versions of a
// tuple hash to the same node, and so that the key can be recovered from the
// ID (§IV).
func (id ID) Hash() keyspace.Key {
	return keyspace.Hash([]byte(id.Key))
}

// KeyValues decodes the key attribute values embedded in the ID.
func (id ID) KeyValues() ([]Value, error) {
	return DecodeKey([]byte(id.Key))
}

// Encode serializes the ID.
func (id ID) Encode() []byte {
	out := make([]byte, 0, 8+len(id.Key))
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(id.Epoch))
	out = append(out, b[:]...)
	return append(out, id.Key...)
}

// DecodeID parses an encoded ID.
func DecodeID(data []byte) (ID, error) {
	if len(data) < 8 {
		return ID{}, errors.New("tuple: truncated ID")
	}
	return ID{
		Epoch: Epoch(binary.BigEndian.Uint64(data[:8])),
		Key:   string(data[8:]),
	}, nil
}

func (id ID) String() string {
	vals, err := id.KeyValues()
	if err != nil {
		return fmt.Sprintf("⟨?, %d⟩", id.Epoch)
	}
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = v.String()
	}
	return fmt.Sprintf("⟨%s, %d⟩", strings.Join(parts, ","), id.Epoch)
}

// --- Row codec (storage) ---

// AppendRow serializes a row (schema-directed) to dst.
func AppendRow(dst []byte, s *Schema, row Row) ([]byte, error) {
	if len(row) != len(s.Columns) {
		return nil, fmt.Errorf("tuple: row arity %d != schema arity %d", len(row), len(s.Columns))
	}
	for i, col := range s.Columns {
		v := row[i]
		if v.T != col.Type {
			return nil, fmt.Errorf("tuple: column %s: value type %v != %v", col.Name, v.T, col.Type)
		}
		switch col.Type {
		case Int64:
			dst = binary.AppendVarint(dst, v.I64)
		case Float64:
			var b [8]byte
			binary.BigEndian.PutUint64(b[:], math.Float64bits(v.F64))
			dst = append(dst, b[:]...)
		case String:
			dst = binary.AppendUvarint(dst, uint64(len(v.Str)))
			dst = append(dst, v.Str...)
		}
	}
	return dst, nil
}

// DecodeRow deserializes a row written by AppendRow; it returns the row and
// the number of bytes consumed.
func DecodeRow(data []byte, s *Schema) (Row, int, error) {
	row := make(Row, len(s.Columns))
	off := 0
	for i, col := range s.Columns {
		switch col.Type {
		case Int64:
			v, n := binary.Varint(data[off:])
			if n <= 0 {
				return nil, 0, fmt.Errorf("tuple: bad varint in column %s", col.Name)
			}
			row[i] = I(v)
			off += n
		case Float64:
			if off+8 > len(data) {
				return nil, 0, fmt.Errorf("tuple: truncated float in column %s", col.Name)
			}
			row[i] = F(math.Float64frombits(binary.BigEndian.Uint64(data[off:])))
			off += 8
		case String:
			l, n := binary.Uvarint(data[off:])
			if n <= 0 || off+n+int(l) > len(data) {
				return nil, 0, fmt.Errorf("tuple: truncated string in column %s", col.Name)
			}
			off += n
			row[i] = S(string(data[off : off+int(l)]))
			off += int(l)
		default:
			return nil, 0, fmt.Errorf("tuple: unknown column type %v", col.Type)
		}
	}
	return row, off, nil
}
