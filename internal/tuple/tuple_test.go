package tuple

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("R",
		[]Column{{"x", String}, {"y", Int64}, {"z", Float64}}, "x")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema("R", []Column{{"a", Int64}}, "missing"); err == nil {
		t.Error("unknown key column should fail")
	}
	s, err := NewSchema("R", []Column{{"a", Int64}, {"b", String}})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Key) != 1 || s.Key[0] != 0 {
		t.Errorf("default key should be first column, got %v", s.Key)
	}
}

func TestSchemaColumnIndex(t *testing.T) {
	s := testSchema(t)
	if s.ColumnIndex("y") != 1 {
		t.Error("ColumnIndex(y) != 1")
	}
	if s.ColumnIndex("nope") != -1 {
		t.Error("missing column should be -1")
	}
}

func TestSchemaEqual(t *testing.T) {
	a := testSchema(t)
	b := testSchema(t)
	if !a.Equal(b) {
		t.Error("identical schemas not equal")
	}
	c := MustSchema("R", []Column{{"x", String}, {"y", Int64}, {"z", Int64}}, "x")
	if a.Equal(c) {
		t.Error("different schemas compare equal")
	}
}

func TestValueCmp(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{I(1), I(2), -1},
		{I(2), I(2), 0},
		{I(3), I(2), 1},
		{F(1.5), F(2.5), -1},
		{S("abc"), S("abd"), -1},
		{S("abc"), S("abc"), 0},
		{I(2), F(2.0), 0},    // numeric cross-type
		{I(2), F(2.5), -1},   // numeric cross-type
		{F(3.0), I(2), 1},    // numeric cross-type
		{I(1), S("abc"), -1}, // type tag ordering
	}
	for _, c := range cases {
		if got := c.a.Cmp(c.b); got != c.want {
			t.Errorf("Cmp(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestRowOps(t *testing.T) {
	r := Row{S("a"), I(1), F(2.0)}
	p := r.Project([]int{2, 0})
	if !p.Equal(Row{F(2.0), S("a")}) {
		t.Errorf("Project = %v", p)
	}
	c := r.Concat(Row{I(9)})
	if len(c) != 4 || !c[3].Equal(I(9)) {
		t.Errorf("Concat = %v", c)
	}
	cl := r.Clone()
	cl[0] = S("changed")
	if r[0].Str != "a" {
		t.Error("Clone aliases the original")
	}
}

func TestEncodeKeyOrderPreserving(t *testing.T) {
	// Build values across types and verify byte order matches value order.
	ints := []int64{math.MinInt64, -100, -1, 0, 1, 7, 100, math.MaxInt64}
	for i := 1; i < len(ints); i++ {
		a := AppendKeyValue(nil, I(ints[i-1]))
		b := AppendKeyValue(nil, I(ints[i]))
		if bytes.Compare(a, b) >= 0 {
			t.Errorf("int order broken: %d vs %d", ints[i-1], ints[i])
		}
	}
	floats := []float64{math.Inf(-1), -1e300, -1.5, -0.0, 0.0, 1e-300, 2.5, math.Inf(1)}
	for i := 1; i < len(floats); i++ {
		a := AppendKeyValue(nil, F(floats[i-1]))
		b := AppendKeyValue(nil, F(floats[i]))
		if floats[i-1] == floats[i] { // -0.0 == 0.0
			continue
		}
		if bytes.Compare(a, b) >= 0 {
			t.Errorf("float order broken: %g vs %g", floats[i-1], floats[i])
		}
	}
	strs := []string{"", "a", "a\x00", "a\x00b", "ab", "b"}
	for i := 1; i < len(strs); i++ {
		a := AppendKeyValue(nil, S(strs[i-1]))
		b := AppendKeyValue(nil, S(strs[i]))
		if bytes.Compare(a, b) >= 0 {
			t.Errorf("string order broken: %q vs %q", strs[i-1], strs[i])
		}
	}
}

func TestDecodeKeyRoundTrip(t *testing.T) {
	vals := []Value{I(-42), S("hello\x00world"), F(3.25), S(""), I(0)}
	var enc []byte
	for _, v := range vals {
		enc = AppendKeyValue(enc, v)
	}
	got, err := DecodeKey(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vals) {
		t.Fatalf("decoded %d values, want %d", len(got), len(vals))
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Errorf("value %d: %v != %v", i, got[i], vals[i])
		}
	}
}

func TestDecodeKeyErrors(t *testing.T) {
	bad := [][]byte{
		{0x01, 0x00},            // truncated int
		{0x02, 0x00, 0x01},      // truncated float
		{0x03, 'a'},             // unterminated string
		{0x03, 'a', 0x00},       // truncated escape
		{0x03, 'a', 0x00, 0x7F}, // invalid escape
		{0x42},                  // unknown tag
	}
	for _, b := range bad {
		if _, err := DecodeKey(b); err == nil {
			t.Errorf("DecodeKey(%v) should fail", b)
		}
	}
}

func TestTupleID(t *testing.T) {
	s := testSchema(t)
	row := Row{S("f"), I(10), F(1.5)}
	id0 := NewID(s, row, 0)
	id1 := NewID(s, row, 1)
	if id0 == id1 {
		t.Error("IDs at different epochs must differ")
	}
	if id0.Hash() != id1.Hash() {
		t.Error("hash must exclude epoch so versions colocate")
	}
	vals, err := id1.KeyValues()
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 || vals[0].Str != "f" {
		t.Errorf("KeyValues = %v", vals)
	}
	// Encode/decode round trip.
	dec, err := DecodeID(id1.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec != id1 {
		t.Errorf("DecodeID round trip: %v != %v", dec, id1)
	}
	if !strings.Contains(id1.String(), "f") || !strings.Contains(id1.String(), "1") {
		t.Errorf("ID.String() = %s, want it to mention key and epoch", id1)
	}
	if _, err := DecodeID([]byte{1, 2}); err == nil {
		t.Error("short ID should fail to decode")
	}
}

func TestRowCodecRoundTrip(t *testing.T) {
	s := testSchema(t)
	rows := []Row{
		{S("alpha"), I(1), F(0.5)},
		{S(""), I(-9), F(-123.25)},
		{S("with\x00zero"), I(math.MaxInt64), F(math.Inf(1))},
	}
	for _, row := range rows {
		enc, err := AppendRow(nil, s, row)
		if err != nil {
			t.Fatal(err)
		}
		got, n, err := DecodeRow(enc, s)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(enc) {
			t.Errorf("consumed %d of %d bytes", n, len(enc))
		}
		if !got.Equal(row) {
			t.Errorf("round trip %v -> %v", row, got)
		}
	}
}

func TestRowCodecErrors(t *testing.T) {
	s := testSchema(t)
	if _, err := AppendRow(nil, s, Row{S("x")}); err == nil {
		t.Error("wrong arity should fail")
	}
	if _, err := AppendRow(nil, s, Row{I(1), I(2), F(3)}); err == nil {
		t.Error("wrong type should fail")
	}
	if _, _, err := DecodeRow([]byte{0x03}, s); err == nil {
		t.Error("garbage should fail to decode")
	}
}

func TestBatchRoundTripSmall(t *testing.T) {
	rows := []Row{
		{S("a"), I(1), F(1.0)},
		{S("b"), I(2), F(2.0)},
	}
	enc, err := EncodeBatch(rows)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatch(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("got %d rows", len(got))
	}
	for i := range rows {
		if !got[i].Equal(rows[i]) {
			t.Errorf("row %d: %v != %v", i, got[i], rows[i])
		}
	}
}

func TestBatchEmpty(t *testing.T) {
	enc, err := EncodeBatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatch(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty batch decoded to %d rows", len(got))
	}
}

func TestBatchCompressionKicksIn(t *testing.T) {
	// Rows with shared structure should compress well below raw size.
	var rows []Row
	for i := 0; i < 2000; i++ {
		rows = append(rows, Row{
			S(fmt.Sprintf("customer-name-common-prefix-%06d", i%50)),
			I(int64(i % 10)),
			F(float64(i%7) * 1.25),
		})
	}
	enc, err := EncodeBatch(rows)
	if err != nil {
		t.Fatal(err)
	}
	rawEstimate := 0
	for _, r := range rows {
		rawEstimate += len(r[0].Str) + 1 + 8
	}
	if len(enc) >= rawEstimate/2 {
		t.Errorf("compressed batch %dB not < half of raw %dB", len(enc), rawEstimate)
	}
	got, err := DecodeBatch(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("row count %d != %d", len(got), len(rows))
	}
	for i := range rows {
		if !got[i].Equal(rows[i]) {
			t.Fatalf("row %d mismatch", i)
		}
	}
}

func TestBatchMixedArityRejected(t *testing.T) {
	rows := []Row{{I(1)}, {I(1), I(2)}}
	if _, err := EncodeBatch(rows); err == nil {
		t.Error("mixed arity should fail")
	}
	rows = []Row{{I(1)}, {S("x")}}
	if _, err := EncodeBatch(rows); err == nil {
		t.Error("mixed column types should fail")
	}
}

func TestBatchDecodeErrors(t *testing.T) {
	if _, err := DecodeBatch(nil); err == nil {
		t.Error("nil should fail")
	}
	if _, err := DecodeBatch([]byte{9, 0, 0}); err == nil {
		t.Error("bad version should fail")
	}
	good, _ := EncodeBatch([]Row{{I(1), S("abc")}})
	if _, err := DecodeBatch(good[:len(good)-2]); err == nil {
		t.Error("truncated batch should fail")
	}
}

// --- property tests ---

func genValue(r *rand.Rand) Value {
	switch r.Intn(3) {
	case 0:
		return I(r.Int63() - r.Int63())
	case 1:
		return F(r.NormFloat64() * 1e6)
	default:
		n := r.Intn(30)
		b := make([]byte, n)
		r.Read(b)
		return S(string(b))
	}
}

type keyRowPair struct{ A, B Row }

func (keyRowPair) Generate(r *rand.Rand, _ int) reflect.Value {
	arity := 1 + r.Intn(3)
	mk := func() Row {
		row := make(Row, arity)
		for i := range row {
			row[i] = genValue(r)
		}
		return row
	}
	return reflect.ValueOf(keyRowPair{A: mk(), B: mk()})
}

func sameTypes(a, b Row) bool {
	for i := range a {
		if a[i].T != b[i].T {
			return false
		}
	}
	return true
}

func TestPropKeyEncodingPreservesOrder(t *testing.T) {
	cols3 := []int{0}
	f := func(p keyRowPair) bool {
		if !sameTypes(p.A, p.B) {
			return true // order across types is defined but not interesting
		}
		ea := EncodeKey(p.A, cols3)
		eb := EncodeKey(p.B, cols3)
		cmp := p.A[0].Cmp(p.B[0])
		bc := bytes.Compare(ea, eb)
		if cmp < 0 {
			return bc < 0
		}
		if cmp > 0 {
			return bc > 0
		}
		return bc == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropKeyRoundTrip(t *testing.T) {
	f := func(p keyRowPair) bool {
		cols := make([]int, len(p.A))
		for i := range cols {
			cols[i] = i
		}
		enc := EncodeKey(p.A, cols)
		dec, err := DecodeKey(enc)
		if err != nil {
			return false
		}
		if len(dec) != len(p.A) {
			return false
		}
		for i := range dec {
			// NaN round trips bitwise but != itself; skip.
			if dec[i].T == Float64 && math.IsNaN(dec[i].F64) {
				continue
			}
			if dec[i] != p.A[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropBatchRoundTrip(t *testing.T) {
	f := func(seed int64, nRows uint8) bool {
		r := rand.New(rand.NewSource(seed))
		arity := 1 + r.Intn(5)
		types := make([]Type, arity)
		for i := range types {
			types[i] = Type(1 + r.Intn(3))
		}
		rows := make([]Row, nRows)
		for i := range rows {
			rows[i] = make(Row, arity)
			for c := range rows[i] {
				switch types[c] {
				case Int64:
					rows[i][c] = I(r.Int63() - r.Int63())
				case Float64:
					rows[i][c] = F(r.NormFloat64())
				case String:
					b := make([]byte, r.Intn(40))
					r.Read(b)
					rows[i][c] = S(string(b))
				}
			}
		}
		enc, err := EncodeBatch(rows)
		if err != nil {
			return false
		}
		got, err := DecodeBatch(enc)
		if err != nil || len(got) != len(rows) {
			return false
		}
		for i := range rows {
			if !got[i].Equal(rows[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRowCmpSortsLexicographically(t *testing.T) {
	rows := []Row{
		{S("b"), I(1)},
		{S("a"), I(2)},
		{S("a"), I(1)},
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Cmp(rows[j]) < 0 })
	want := []Row{{S("a"), I(1)}, {S("a"), I(2)}, {S("b"), I(1)}}
	for i := range want {
		if !rows[i].Equal(want[i]) {
			t.Errorf("sorted[%d] = %v, want %v", i, rows[i], want[i])
		}
	}
}
