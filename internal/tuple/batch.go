package tuple

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
)

// Batch codec. The query processor batches tuples into blocks by destination,
// compresses them using lightweight Zip-based compression, and marshals them
// in a format that exploits their commonalities (§V-A). We marshal
// column-major — values of one attribute are adjacent, so flate's LZ77 window
// sees their shared prefixes/structure — and compress with compress/flate.
//
// The same format is the wire representation of streamed query results
// (internal/server): a batch is self-describing (row count, arity, per-column
// type tags), so the serving path ships engine rows without re-encoding them
// per value.

const (
	batchVersion     = 1
	flagCompressed   = 0x01
	minCompressBytes = 256 // below this, compression overhead dominates
	// maxBatchBody caps a batch's decompressed body — far above any
	// legitimate batch (wire batches are cut at ~256KiB), far below a
	// decompression bomb.
	maxBatchBody = 1 << 30
	// maxZeroArityRows bounds the row count of a zero-arity batch, whose
	// rows occupy no payload bytes and therefore escape the dims-vs-body
	// check (wire batches are cut at 4096 rows; this is generous).
	maxZeroArityRows = 1 << 20
)

// flate writers are expensive to construct (~tens of KB of window state);
// reuse them across batches. Readers are cheap but reusable too.
var flateWriterPool = sync.Pool{
	New: func() any {
		fw, err := flate.NewWriter(io.Discard, flate.BestSpeed)
		if err != nil {
			panic(err) // BestSpeed is a valid level
		}
		return fw
	},
}

// EncodeBatch serializes rows column-major and compresses the payload. All
// rows must have the same arity and positional types. Empty batches are
// legal.
func EncodeBatch(rows []Row) ([]byte, error) {
	return AppendBatch(nil, rows, minCompressBytes)
}

// AppendBatch appends the batch encoding of rows to dst and returns the
// extended slice, reusing dst's capacity — the allocation-lean variant for
// hot paths that encode many batches. minCompress sets the raw-body size at
// which flate compression kicks in; pass a negative value to never compress
// (e.g. loopback serving, where the CPU spent compressing exceeds the wire
// bytes saved). Decoding handles both forms transparently.
func AppendBatch(dst []byte, rows []Row, minCompress int) ([]byte, error) {
	mark := len(dst)
	dst = append(dst, batchVersion, 0)
	body, err := appendBatchBody(dst, rows)
	if err != nil {
		return nil, err
	}
	return compressBatchTail(body, mark, minCompress)
}

// compressBatchTail optionally flate-compresses the batch body appended
// after the two header bytes at mark. If compression did not help (e.g.
// random strings), we keep it anyway: framing simplicity beats the rare
// byte savings.
func compressBatchTail(body []byte, mark, minCompress int) ([]byte, error) {
	rawLen := len(body) - mark - 2
	if minCompress < 0 || rawLen < minCompress {
		return body, nil
	}
	var cbuf bytes.Buffer
	cbuf.Grow(rawLen / 2)
	fw := flateWriterPool.Get().(*flate.Writer)
	fw.Reset(&cbuf)
	if _, err := fw.Write(body[mark+2:]); err != nil {
		flateWriterPool.Put(fw)
		return nil, fmt.Errorf("tuple: compress batch: %w", err)
	}
	if err := fw.Close(); err != nil {
		flateWriterPool.Put(fw)
		return nil, fmt.Errorf("tuple: compress batch: %w", err)
	}
	flateWriterPool.Put(fw)
	body = body[:mark+2]
	body[mark+1] = flagCompressed
	return append(body, cbuf.Bytes()...), nil
}

// Small append helpers shared by the row-major and column-major encoders.

func appendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }

func appendVarint(dst []byte, v int64) []byte { return binary.AppendVarint(dst, v) }

func appendFloat64(dst []byte, f float64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], math.Float64bits(f))
	return append(dst, b[:]...)
}

// appendBatchBody appends the uncompressed column-major body.
func appendBatchBody(dst []byte, rows []Row) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(rows)))
	arity := 0
	if len(rows) > 0 {
		arity = len(rows[0])
	}
	dst = binary.AppendUvarint(dst, uint64(arity))
	for c := 0; c < arity; c++ {
		t := rows[0][c].T
		if !t.IsValidType() {
			return nil, fmt.Errorf("tuple: batch column %d has invalid type", c)
		}
		dst = append(dst, byte(t))
		for r, row := range rows {
			if len(row) != arity {
				return nil, fmt.Errorf("tuple: batch row %d arity %d != %d", r, len(row), arity)
			}
			v := row[c]
			if v.T != t {
				return nil, fmt.Errorf("tuple: batch row %d col %d type %v != %v", r, c, v.T, t)
			}
			switch t {
			case Int64:
				dst = binary.AppendVarint(dst, v.I64)
			case Float64:
				var b [8]byte
				binary.BigEndian.PutUint64(b[:], math.Float64bits(v.F64))
				dst = append(dst, b[:]...)
			case String:
				dst = binary.AppendUvarint(dst, uint64(len(v.Str)))
				dst = append(dst, v.Str...)
			}
		}
	}
	return dst, nil
}

// RowSizeHint estimates one row's encoded (uncompressed) size — used by
// streaming writers to cut batches near a target frame size without
// encoding twice.
func RowSizeHint(row Row) int {
	n := 0
	for _, v := range row {
		switch v.T {
		case Int64:
			n += 5 // varint, typical
		case Float64:
			n += 8
		case String:
			n += len(v.Str) + 2
		default:
			n += 1
		}
	}
	return n
}

// IsValidType reports whether t is a known column type.
func (t Type) IsValidType() bool { return t >= Int64 && t <= String }

// batchBody validates the two header bytes and returns the (decompressed)
// body shared by the batch decoders.
func batchBody(data []byte) ([]byte, error) {
	if len(data) < 2 {
		return nil, errors.New("tuple: batch too short")
	}
	if data[0] != batchVersion {
		return nil, fmt.Errorf("tuple: unknown batch version %d", data[0])
	}
	flags := data[1]
	body := data[2:]
	if flags&flagCompressed != 0 {
		fr := flate.NewReader(bytes.NewReader(body))
		// Bound decompression before reading: flate expands up to ~1032x,
		// so a small malicious frame could otherwise balloon to tens of
		// GB before the dims guard below ever runs.
		decompressed, err := io.ReadAll(io.LimitReader(fr, maxBatchBody+1))
		if err != nil {
			return nil, fmt.Errorf("tuple: decompress batch: %w", err)
		}
		if len(decompressed) > maxBatchBody {
			return nil, fmt.Errorf("tuple: batch decompresses past %d bytes", maxBatchBody)
		}
		if err := fr.Close(); err != nil {
			return nil, fmt.Errorf("tuple: decompress batch: %w", err)
		}
		body = decompressed
	}
	return body, nil
}

// batchDims validates the header, decompresses the body, and reads +
// bounds-checks the row-count/arity prologue shared by the batch
// decoders; off points past the dims. A decompressed body bounds the
// values it can carry: every value costs at least one byte, so dims the
// payload cannot possibly hold are rejected before any decoder
// allocates nRows*arity slots, and zero-arity rows — which occupy no
// payload bytes and escape that bound — are capped separately (guards
// fuzzed/malicious headers; the dims caps keep products far from
// overflow).
func batchDims(data []byte) (body []byte, off, nRows, arity int, err error) {
	body, err = batchBody(data)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	r, n := binary.Uvarint(body)
	if n <= 0 {
		return nil, 0, 0, 0, errors.New("tuple: bad uvarint in batch")
	}
	off = n
	a, n := binary.Uvarint(body[off:])
	if n <= 0 {
		return nil, 0, 0, 0, errors.New("tuple: bad uvarint in batch")
	}
	off += n
	if r > 1<<28 || a > 1<<16 {
		return nil, 0, 0, 0, fmt.Errorf("tuple: implausible batch dims %d x %d", r, a)
	}
	if a > 0 && r*a > uint64(len(body)) {
		return nil, 0, 0, 0, fmt.Errorf("tuple: batch dims %d x %d exceed payload %dB", r, a, len(body))
	}
	if a == 0 && r > maxZeroArityRows {
		return nil, 0, 0, 0, fmt.Errorf("tuple: %d zero-arity batch rows exceed limit", r)
	}
	return body, off, int(r), int(a), nil
}

// DecodeBatch reverses EncodeBatch.
func DecodeBatch(data []byte) ([]Row, error) {
	body, off, nRows, arity, err := batchDims(data)
	if err != nil {
		return nil, err
	}
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(body[off:])
		if n <= 0 {
			return 0, errors.New("tuple: bad uvarint in batch")
		}
		off += n
		return v, nil
	}
	rows := make([]Row, nRows)
	if nRows == 0 {
		return rows, nil
	}
	backing := make([]Value, nRows*arity)
	for i := range rows {
		rows[i] = Row(backing[i*arity : (i+1)*arity])
	}
	for c := 0; c < arity; c++ {
		if off >= len(body) {
			return nil, errors.New("tuple: truncated batch column header")
		}
		t := Type(body[off])
		off++
		if !t.IsValidType() {
			return nil, fmt.Errorf("tuple: bad column type %d in batch", t)
		}
		for r := 0; r < nRows; r++ {
			switch t {
			case Int64:
				v, n := binary.Varint(body[off:])
				if n <= 0 {
					return nil, errors.New("tuple: bad varint in batch")
				}
				off += n
				rows[r][c] = I(v)
			case Float64:
				if off+8 > len(body) {
					return nil, errors.New("tuple: truncated float in batch")
				}
				rows[r][c] = F(math.Float64frombits(binary.BigEndian.Uint64(body[off:])))
				off += 8
			case String:
				l, err := readUvarint()
				if err != nil {
					return nil, err
				}
				if l > uint64(len(body)-off) {
					return nil, errors.New("tuple: truncated string in batch")
				}
				rows[r][c] = S(string(body[off : off+int(l)]))
				off += int(l)
			}
		}
	}
	return rows, nil
}

// DecodeBatchAny decodes a wire batch straight into boxed []any rows —
// the client-side form — skipping the typed Row intermediate entirely.
// Row slices are carved from one backing slab.
func DecodeBatchAny(data []byte) ([][]any, error) {
	body, off, nRows, arity, err := batchDims(data)
	if err != nil {
		return nil, err
	}
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(body[off:])
		if n <= 0 {
			return 0, errors.New("tuple: bad uvarint in batch")
		}
		off += n
		return v, nil
	}
	rows := make([][]any, nRows)
	if nRows == 0 {
		return rows, nil
	}
	backing := make([]any, nRows*arity)
	for i := range rows {
		rows[i] = backing[i*arity : (i+1)*arity : (i+1)*arity]
	}
	for c := 0; c < arity; c++ {
		if off >= len(body) {
			return nil, errors.New("tuple: truncated batch column header")
		}
		t := Type(body[off])
		off++
		if !t.IsValidType() {
			return nil, fmt.Errorf("tuple: bad column type %d in batch", t)
		}
		for r := 0; r < nRows; r++ {
			switch t {
			case Int64:
				v, n := binary.Varint(body[off:])
				if n <= 0 {
					return nil, errors.New("tuple: bad varint in batch")
				}
				off += n
				rows[r][c] = v
			case Float64:
				if off+8 > len(body) {
					return nil, errors.New("tuple: truncated float in batch")
				}
				rows[r][c] = math.Float64frombits(binary.BigEndian.Uint64(body[off:]))
				off += 8
			case String:
				l, err := readUvarint()
				if err != nil {
					return nil, err
				}
				if l > uint64(len(body)-off) {
					return nil, errors.New("tuple: truncated string in batch")
				}
				rows[r][c] = string(body[off : off+int(l)])
				off += int(l)
			}
		}
	}
	return rows, nil
}

// DecodeBatchInto decodes a wire batch straight onto b's column vectors,
// appending its rows — the allocation-lean counterpart of DecodeBatch for
// consumers that accumulate columnar state. A b with no columns yet adopts
// the payload's types; otherwise they must match positionally. On error b
// is restored to its prior row count. Returns the decoded row count.
//
// String values copy out of data (unlike DecodeRowCols), so the caller may
// reuse or discard the payload buffer afterwards.
func DecodeBatchInto(data []byte, b *Batch) (int, error) {
	body, off, nRows, arity, err := batchDims(data)
	if err != nil {
		return 0, err
	}
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(body[off:])
		if n <= 0 {
			return 0, errors.New("tuple: bad uvarint in batch")
		}
		off += n
		return v, nil
	}
	if nRows == 0 {
		return 0, nil
	}
	if len(b.Cols) == 0 && b.N == 0 {
		types := make([]Type, arity)
		for i := range types {
			types[i] = Type(0) // fixed up below from the column headers
		}
		b.ResetTypes(types)
	} else if len(b.Cols) != arity {
		return 0, fmt.Errorf("tuple: batch arity %d, accumulator arity %d", arity, len(b.Cols))
	}
	start := b.N
	fail := func(err error) (int, error) {
		b.Truncate(start)
		return 0, err
	}
	for c := 0; c < arity; c++ {
		if off >= len(body) {
			return fail(errors.New("tuple: truncated batch column header"))
		}
		t := Type(body[off])
		off++
		if !t.IsValidType() {
			return fail(fmt.Errorf("tuple: bad column type %d in batch", t))
		}
		v := &b.Cols[c]
		if v.T == 0 && start == 0 {
			v.T = t
		} else if v.T != t {
			return fail(fmt.Errorf("tuple: batch column %d type %v, accumulator %v", c, t, v.T))
		}
		for r := 0; r < nRows; r++ {
			switch t {
			case Int64:
				x, n := binary.Varint(body[off:])
				if n <= 0 {
					return fail(errors.New("tuple: bad varint in batch"))
				}
				off += n
				v.I64 = append(v.I64, x)
			case Float64:
				if off+8 > len(body) {
					return fail(errors.New("tuple: truncated float in batch"))
				}
				v.F64 = append(v.F64, math.Float64frombits(binary.BigEndian.Uint64(body[off:])))
				off += 8
			case String:
				l, err := readUvarint()
				if err != nil {
					return fail(err)
				}
				if l > uint64(len(body)-off) {
					return fail(errors.New("tuple: truncated string in batch"))
				}
				v.Str = append(v.Str, string(body[off:off+int(l)]))
				off += int(l)
			}
		}
	}
	b.N += nRows
	return nRows, nil
}
