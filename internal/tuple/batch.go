package tuple

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Batch codec. The query processor batches tuples into blocks by destination,
// compresses them using lightweight Zip-based compression, and marshals them
// in a format that exploits their commonalities (§V-A). We marshal
// column-major — values of one attribute are adjacent, so flate's LZ77 window
// sees their shared prefixes/structure — and compress with compress/flate.

const (
	batchVersion     = 1
	flagCompressed   = 0x01
	minCompressBytes = 256 // below this, compression overhead dominates
)

// EncodeBatch serializes rows column-major and compresses the payload. All
// rows must have the same arity and positional types. Empty batches are
// legal.
func EncodeBatch(rows []Row) ([]byte, error) {
	var body []byte
	body = binary.AppendUvarint(body, uint64(len(rows)))
	arity := 0
	if len(rows) > 0 {
		arity = len(rows[0])
	}
	body = binary.AppendUvarint(body, uint64(arity))
	for c := 0; c < arity; c++ {
		t := rows[0][c].T
		if !t.IsValidType() {
			return nil, fmt.Errorf("tuple: batch column %d has invalid type", c)
		}
		body = append(body, byte(t))
		for r, row := range rows {
			if len(row) != arity {
				return nil, fmt.Errorf("tuple: batch row %d arity %d != %d", r, len(row), arity)
			}
			v := row[c]
			if v.T != t {
				return nil, fmt.Errorf("tuple: batch row %d col %d type %v != %v", r, c, v.T, t)
			}
			switch t {
			case Int64:
				body = binary.AppendVarint(body, v.I64)
			case Float64:
				var b [8]byte
				binary.BigEndian.PutUint64(b[:], math.Float64bits(v.F64))
				body = append(body, b[:]...)
			case String:
				body = binary.AppendUvarint(body, uint64(len(v.Str)))
				body = append(body, v.Str...)
			}
		}
	}

	if len(body) < minCompressBytes {
		out := make([]byte, 0, len(body)+2)
		out = append(out, batchVersion, 0)
		return append(out, body...), nil
	}
	var cbuf bytes.Buffer
	cbuf.WriteByte(batchVersion)
	cbuf.WriteByte(flagCompressed)
	fw, err := flate.NewWriter(&cbuf, flate.BestSpeed)
	if err != nil {
		return nil, fmt.Errorf("tuple: flate: %w", err)
	}
	if _, err := fw.Write(body); err != nil {
		return nil, fmt.Errorf("tuple: compress batch: %w", err)
	}
	if err := fw.Close(); err != nil {
		return nil, fmt.Errorf("tuple: compress batch: %w", err)
	}
	// If compression did not help (e.g. random strings), keep it anyway:
	// framing simplicity beats the rare byte savings.
	return cbuf.Bytes(), nil
}

// IsValidType reports whether t is a known column type.
func (t Type) IsValidType() bool { return t >= Int64 && t <= String }

// DecodeBatch reverses EncodeBatch.
func DecodeBatch(data []byte) ([]Row, error) {
	if len(data) < 2 {
		return nil, errors.New("tuple: batch too short")
	}
	if data[0] != batchVersion {
		return nil, fmt.Errorf("tuple: unknown batch version %d", data[0])
	}
	flags := data[1]
	body := data[2:]
	if flags&flagCompressed != 0 {
		fr := flate.NewReader(bytes.NewReader(body))
		decompressed, err := io.ReadAll(fr)
		if err != nil {
			return nil, fmt.Errorf("tuple: decompress batch: %w", err)
		}
		if err := fr.Close(); err != nil {
			return nil, fmt.Errorf("tuple: decompress batch: %w", err)
		}
		body = decompressed
	}

	off := 0
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(body[off:])
		if n <= 0 {
			return 0, errors.New("tuple: bad uvarint in batch")
		}
		off += n
		return v, nil
	}
	nRows, err := readUvarint()
	if err != nil {
		return nil, err
	}
	arity, err := readUvarint()
	if err != nil {
		return nil, err
	}
	if nRows > 1<<28 || arity > 1<<16 {
		return nil, fmt.Errorf("tuple: implausible batch dims %d x %d", nRows, arity)
	}
	rows := make([]Row, nRows)
	if nRows == 0 {
		return rows, nil
	}
	backing := make([]Value, int(nRows)*int(arity))
	for i := range rows {
		rows[i] = Row(backing[i*int(arity) : (i+1)*int(arity)])
	}
	for c := 0; c < int(arity); c++ {
		if off >= len(body) {
			return nil, errors.New("tuple: truncated batch column header")
		}
		t := Type(body[off])
		off++
		if !t.IsValidType() {
			return nil, fmt.Errorf("tuple: bad column type %d in batch", t)
		}
		for r := 0; r < int(nRows); r++ {
			switch t {
			case Int64:
				v, n := binary.Varint(body[off:])
				if n <= 0 {
					return nil, errors.New("tuple: bad varint in batch")
				}
				off += n
				rows[r][c] = I(v)
			case Float64:
				if off+8 > len(body) {
					return nil, errors.New("tuple: truncated float in batch")
				}
				rows[r][c] = F(math.Float64frombits(binary.BigEndian.Uint64(body[off:])))
				off += 8
			case String:
				l, err := readUvarint()
				if err != nil {
					return nil, err
				}
				if off+int(l) > len(body) {
					return nil, errors.New("tuple: truncated string in batch")
				}
				rows[r][c] = S(string(body[off : off+int(l)]))
				off += int(l)
			}
		}
	}
	return rows, nil
}
