package stbench

import (
	"testing"

	"orchestra/internal/tuple"
)

func TestSchemasMatchPaperArities(t *testing.T) {
	want := map[string]int{
		"stb_copy": 7, // Copy: 7-attribute relation
		"stb_sel":  6, // Select: 6-attribute relation
		"stb_j7":   7, // Join inputs: 7, 5, 9 attributes
		"stb_j5":   5,
		"stb_j9":   9,
		"stb_cat":  6, // Concatenate: 6-attribute relation
		"stb_corr": 7, // Correspondence source: 7 attributes
		"stb_map":  4,
	}
	schemas := Schemas()
	if len(schemas) != len(want) {
		t.Fatalf("got %d schemas", len(schemas))
	}
	for _, s := range schemas {
		if s.Arity() != want[s.Relation] {
			t.Errorf("%s arity %d, want %d", s.Relation, s.Arity(), want[s.Relation])
		}
	}
}

func TestGenerateShapes(t *testing.T) {
	cfg := Config{Tuples: 500, Seed: 1}
	data := Generate(cfg)
	for _, s := range Schemas() {
		rows, ok := data[s.Relation]
		if !ok {
			t.Fatalf("missing relation %s", s.Relation)
		}
		wantRows := 500
		if s.Relation == "stb_map" {
			wantRows = 1000 // correspondence table default size
		}
		if len(rows) != wantRows {
			t.Fatalf("%s: %d rows", s.Relation, len(rows))
		}
		for _, r := range rows {
			if len(r) != s.Arity() {
				t.Fatalf("%s: row arity %d", s.Relation, len(r))
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Tuples: 100, Seed: 42})
	b := Generate(Config{Tuples: 100, Seed: 42})
	for name := range a {
		for i := range a[name] {
			if !a[name][i].Equal(b[name][i]) {
				t.Fatalf("%s row %d differs", name, i)
			}
		}
	}
	c := Generate(Config{Tuples: 100, Seed: 43})
	if a["stb_copy"][0].Equal(c["stb_copy"][0]) {
		t.Fatal("different seeds produced identical data")
	}
}

func TestStringWidths(t *testing.T) {
	// The paper's tables carry 25-character variable-length strings; the
	// generator should average near that.
	data := Generate(Config{Tuples: 2000, Seed: 9})
	total, n := 0, 0
	for _, r := range data["stb_copy"] {
		for _, v := range r[1:] {
			total += len(v.Str)
			n++
		}
	}
	avg := float64(total) / float64(n)
	if avg < 22 || avg > 28 {
		t.Fatalf("avg string length %f, want ≈25", avg)
	}
}

func TestJoinConnectivity(t *testing.T) {
	// The Join scenario must actually produce matches: j1 values of stb_j7
	// must intersect stb_j5's, and stb_j5's j2 must intersect stb_j9's.
	data := Generate(Config{Tuples: 1000, Seed: 5})
	j1In5 := map[string]bool{}
	j2In9 := map[string]bool{}
	for _, r := range data["stb_j5"] {
		j1In5[r[1].Str] = true
	}
	for _, r := range data["stb_j9"] {
		j2In9[r[1].Str] = true
	}
	matches := 0
	for _, r := range data["stb_j7"] {
		if j1In5[r[1].Str] {
			matches++
		}
	}
	if matches == 0 {
		t.Fatal("no j1 matches between stb_j7 and stb_j5")
	}
	m2 := 0
	for _, r := range data["stb_j5"] {
		if j2In9[r[2].Str] {
			m2++
		}
	}
	if m2 == 0 {
		t.Fatal("no j2 matches between stb_j5 and stb_j9")
	}
}

func TestCorrespondenceCoverage(t *testing.T) {
	// Every stb_corr (c1, c2) pair must resolve through the map table (the
	// correspondence replaces a Skolem function, so lookups must hit).
	data := Generate(Config{Tuples: 500, Seed: 6})
	pairs := map[[2]string]bool{}
	for _, r := range data["stb_map"] {
		pairs[[2]string{r[1].Str, r[2].Str}] = true
	}
	for _, r := range data["stb_corr"] {
		if !pairs[[2]string{r[1].Str, r[2].Str}] {
			t.Fatalf("unmatched correspondence pair %v", r)
		}
	}
}

func TestScenariosAndRelations(t *testing.T) {
	ss := Scenarios()
	if len(ss) != 5 {
		t.Fatalf("want 5 scenarios, got %d", len(ss))
	}
	for _, s := range ss {
		rels := RelationsFor(s.Name)
		if len(rels) == 0 {
			t.Errorf("no relations for %s", s.Name)
		}
	}
	if RelationsFor("nope") != nil {
		t.Fatal("unknown scenario should return nil")
	}
}

func TestKeysUnique(t *testing.T) {
	data := Generate(Config{Tuples: 300, Seed: 2})
	schemas := map[string]*tuple.Schema{}
	for _, s := range Schemas() {
		schemas[s.Relation] = s
	}
	for name, rows := range data {
		s := schemas[name]
		seen := map[string]bool{}
		for _, r := range rows {
			k := string(tuple.EncodeKey(r, s.KeyColumns()))
			if seen[k] {
				t.Fatalf("%s: duplicate key", name)
			}
			seen[k] = true
		}
	}
}
