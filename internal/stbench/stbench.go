// Package stbench generates the STBenchmark-style schema-mapping workload
// of paper §VI-A. The paper ran the STBenchmark instance/mapping generator
// (ToXGene) with default parameters and nesting depth zero; this package is
// the deterministic synthetic equivalent: wide relations whose attributes
// are 25-character variable-length strings (except one integer field), at
// 100K-1.6M tuples per relation, with the five mapping scenarios studied:
// Copy, Select, Join (7 ⋈ 5 ⋈ 9 attributes on two join attributes),
// Concatenate, and Correspondence (a value correspondence table replacing
// the Skolem function, as the paper did).
package stbench

import (
	"fmt"
	"math/rand"

	"orchestra/internal/tuple"
)

// Config parameterizes the generator.
type Config struct {
	// Tuples is the row count per generated relation (the paper sweeps
	// 100K-1.6M; defaults to 10K for laptop-scale runs).
	Tuples int
	// Seed makes generation deterministic.
	Seed int64
	// JoinPool is the number of distinct join-attribute values (controls
	// join selectivity; default Tuples/4).
	JoinPool int
	// CorrSize is the correspondence table size (default 1000).
	CorrSize int
}

func (c Config) withDefaults() Config {
	if c.Tuples <= 0 {
		c.Tuples = 10000
	}
	if c.JoinPool <= 0 {
		c.JoinPool = c.Tuples/4 + 1
	}
	if c.CorrSize <= 0 {
		c.CorrSize = 1000
	}
	return c
}

// Scenario is one mapping scenario: a name and the query that implements
// the mapping over the source relations.
type Scenario struct {
	Name string
	SQL  string
}

// Scenarios returns the five mapping scenarios of §VI-A.
func Scenarios() []Scenario {
	return []Scenario{
		{Name: "Copy", SQL: "SELECT * FROM stb_copy"},
		{Name: "Select", SQL: "SELECT * FROM stb_sel WHERE v < 500"},
		{Name: "Join", SQL: "SELECT a.k, a.s1, b.s1, c.s1, c.s6 " +
			"FROM stb_j7 a, stb_j5 b, stb_j9 c " +
			"WHERE a.j1 = b.j1 AND b.j2 = c.j2"},
		{Name: "Concatenate", SQL: "SELECT s1 || s2 || s3 AS cat, s4, s5 FROM stb_cat"},
		{Name: "Correspondence", SQL: "SELECT s.k, s.s1, s.s2, s.s3, s.s4, m.id " +
			"FROM stb_corr s, stb_map m " +
			"WHERE s.c1 = m.c1 AND s.c2 = m.c2"},
	}
}

// strCol names s1..sN string columns.
func strCols(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("s%d", i+1)
	}
	return out
}

// Schemas returns the source relations of the five scenarios. All tables
// are keyed on the integer column k and otherwise carry 25-char strings,
// matching the paper's description of the STBenchmark data.
func Schemas() []*tuple.Schema {
	mk := func(name string, extra []tuple.Column, strNames ...string) *tuple.Schema {
		cols := []tuple.Column{{Name: "k", Type: tuple.Int64}}
		cols = append(cols, extra...)
		for _, s := range strNames {
			cols = append(cols, tuple.Column{Name: s, Type: tuple.String})
		}
		return tuple.MustSchema(name, cols, "k")
	}
	return []*tuple.Schema{
		// Copy: 7 attributes.
		mk("stb_copy", nil, strCols(6)...),
		// Select: 6 attributes, one integer predicate field.
		mk("stb_sel", []tuple.Column{{Name: "v", Type: tuple.Int64}}, strCols(4)...),
		// Join: 7-, 5-, and 9-attribute relations; j1/j2 join attributes.
		mk("stb_j7", []tuple.Column{{Name: "j1", Type: tuple.String}}, strCols(5)...),
		mk("stb_j5", []tuple.Column{
			{Name: "j1", Type: tuple.String}, {Name: "j2", Type: tuple.String}},
			strCols(2)...),
		mk("stb_j9", []tuple.Column{{Name: "j2", Type: tuple.String}}, strCols(7)...),
		// Concatenate: 6 attributes; three get concatenated.
		mk("stb_cat", nil, strCols(5)...),
		// Correspondence: 7-attribute source plus the correspondence table
		// mapping (c1, c2) to an integer ID (the Skolem replacement).
		mk("stb_corr", []tuple.Column{
			{Name: "c1", Type: tuple.String}, {Name: "c2", Type: tuple.String}},
			strCols(4)...),
		tuple.MustSchema("stb_map", []tuple.Column{
			{Name: "mk", Type: tuple.Int64},
			{Name: "c1", Type: tuple.String},
			{Name: "c2", Type: tuple.String},
			{Name: "id", Type: tuple.Int64},
		}, "mk"),
	}
}

const strChars = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"

// randString generates a variable-length string averaging 25 characters,
// as in the STBenchmark tables.
func randString(rng *rand.Rand) string {
	n := 20 + rng.Intn(11) // 20..30, mean 25
	b := make([]byte, n)
	for i := range b {
		b[i] = strChars[rng.Intn(len(strChars))]
	}
	return string(b)
}

// poolValue deterministically names a join/correspondence pool value.
func poolValue(kind string, i int) string {
	return fmt.Sprintf("%s-%08d-xxxxxxxxxxxxxxx", kind, i) // 25+ chars
}

// Generate produces all source relations. The result maps relation name to
// rows; generation is deterministic in cfg.Seed.
func Generate(cfg Config) map[string][]tuple.Row {
	cfg = cfg.withDefaults()
	out := make(map[string][]tuple.Row)
	n := cfg.Tuples

	gen := func(name string, mk func(rng *rand.Rand, i int) tuple.Row, rows int) {
		rng := rand.New(rand.NewSource(cfg.Seed ^ int64(len(name))<<32 ^ int64(rows)))
		rs := make([]tuple.Row, rows)
		for i := range rs {
			rs[i] = mk(rng, i)
		}
		out[name] = rs
	}

	gen("stb_copy", func(rng *rand.Rand, i int) tuple.Row {
		r := tuple.Row{tuple.I(int64(i))}
		for j := 0; j < 6; j++ {
			r = append(r, tuple.S(randString(rng)))
		}
		return r
	}, n)

	gen("stb_sel", func(rng *rand.Rand, i int) tuple.Row {
		r := tuple.Row{tuple.I(int64(i)), tuple.I(int64(rng.Intn(10000)))}
		for j := 0; j < 4; j++ {
			r = append(r, tuple.S(randString(rng)))
		}
		return r
	}, n)

	gen("stb_j7", func(rng *rand.Rand, i int) tuple.Row {
		r := tuple.Row{tuple.I(int64(i)), tuple.S(poolValue("j1", rng.Intn(cfg.JoinPool)))}
		for j := 0; j < 5; j++ {
			r = append(r, tuple.S(randString(rng)))
		}
		return r
	}, n)

	gen("stb_j5", func(rng *rand.Rand, i int) tuple.Row {
		r := tuple.Row{
			tuple.I(int64(i)),
			tuple.S(poolValue("j1", rng.Intn(cfg.JoinPool))),
			tuple.S(poolValue("j2", rng.Intn(cfg.JoinPool))),
		}
		for j := 0; j < 2; j++ {
			r = append(r, tuple.S(randString(rng)))
		}
		return r
	}, n)

	gen("stb_j9", func(rng *rand.Rand, i int) tuple.Row {
		r := tuple.Row{tuple.I(int64(i)), tuple.S(poolValue("j2", rng.Intn(cfg.JoinPool)))}
		for j := 0; j < 7; j++ {
			r = append(r, tuple.S(randString(rng)))
		}
		return r
	}, n)

	gen("stb_cat", func(rng *rand.Rand, i int) tuple.Row {
		r := tuple.Row{tuple.I(int64(i))}
		for j := 0; j < 5; j++ {
			r = append(r, tuple.S(randString(rng)))
		}
		return r
	}, n)

	gen("stb_corr", func(rng *rand.Rand, i int) tuple.Row {
		pair := rng.Intn(cfg.CorrSize)
		r := tuple.Row{
			tuple.I(int64(i)),
			tuple.S(poolValue("c1", pair)),
			tuple.S(poolValue("c2", pair)),
		}
		for j := 0; j < 4; j++ {
			r = append(r, tuple.S(randString(rng)))
		}
		return r
	}, n)

	gen("stb_map", func(rng *rand.Rand, i int) tuple.Row {
		return tuple.Row{
			tuple.I(int64(i)),
			tuple.S(poolValue("c1", i)),
			tuple.S(poolValue("c2", i)),
			tuple.I(int64(100000 + i)),
		}
	}, cfg.CorrSize)

	return out
}

// RelationsFor returns the source relations a scenario reads.
func RelationsFor(name string) []string {
	switch name {
	case "Copy":
		return []string{"stb_copy"}
	case "Select":
		return []string{"stb_sel"}
	case "Join":
		return []string{"stb_j7", "stb_j5", "stb_j9"}
	case "Concatenate":
		return []string{"stb_cat"}
	case "Correspondence":
		return []string{"stb_corr", "stb_map"}
	default:
		return nil
	}
}
