package vstore

import (
	"errors"
	"fmt"
	"sort"

	"orchestra/internal/keyspace"
	"orchestra/internal/tuple"
)

// PageID identifies an index page version: the relation name, the epoch in
// which the page was last modified, and a unique sequence number for that
// relation and epoch (paper Example 4.1).
type PageID struct {
	Relation string
	Epoch    tuple.Epoch
	Seq      uint32
}

func (p PageID) String() string {
	return fmt.Sprintf("%s@%d#%d", p.Relation, p.Epoch, p.Seq)
}

// PageRef is a coordinator's pointer to a page: its ID plus the tuple-hash
// range it covers. The page's placement key — "the middle of the range of
// tuple keys it encompasses" (§IV) — colocates the page with most of the
// tuples it references.
type PageRef struct {
	ID  PageID
	Min keyspace.Key // inclusive
	Max keyspace.Key // exclusive; Min==Max means the full ring
}

// Placement returns the ring key where the page is stored.
func (p PageRef) Placement() keyspace.Key {
	if p.Min == p.Max {
		// Full ring: place at the midpoint of the numeric key space.
		return keyspace.Midpoint(keyspace.Zero, keyspace.Max)
	}
	if p.Min.Less(p.Max) {
		return keyspace.Midpoint(p.Min, p.Max)
	}
	// Wrapped range: midpoint along the clockwise arc.
	arc := p.Max.Sub(p.Min)
	return p.Min.Add(arc.Half())
}

// Contains reports whether a tuple-hash belongs to this page's range.
func (p PageRef) Contains(h keyspace.Key) bool {
	return h.InRange(p.Min, p.Max)
}

// Page is the content stored at an index node: the tuple IDs present in the
// page's hash range for the page's version, at most one per distinct key.
// Entries are kept sorted by (hash, key) for deterministic encoding and
// ordered scans.
type Page struct {
	Ref PageRef
	IDs []tuple.ID
}

// sortIDs orders tuple IDs by (hash, key encoding).
func sortIDs(ids []tuple.ID) {
	sort.Slice(ids, func(i, j int) bool {
		hi, hj := ids[i].Hash(), ids[j].Hash()
		if c := hi.Cmp(hj); c != 0 {
			return c < 0
		}
		return ids[i].Key < ids[j].Key
	})
}

// EncodePage serializes a page.
func EncodePage(p *Page) []byte {
	var w writer
	w.str(p.Ref.ID.Relation)
	w.u64(uint64(p.Ref.ID.Epoch))
	w.u32(p.Ref.ID.Seq)
	w.key(p.Ref.Min)
	w.key(p.Ref.Max)
	w.uvarint(uint64(len(p.IDs)))
	for _, id := range p.IDs {
		w.u64(uint64(id.Epoch))
		w.str(id.Key)
	}
	return w.buf
}

// DecodePage reverses EncodePage.
func DecodePage(data []byte) (*Page, error) {
	r := reader{data: data}
	p := &Page{}
	p.Ref.ID.Relation = r.str()
	p.Ref.ID.Epoch = tuple.Epoch(r.u64())
	p.Ref.ID.Seq = r.u32()
	p.Ref.Min = r.keyVal()
	p.Ref.Max = r.keyVal()
	n := r.uvarint()
	if n > 1<<24 {
		return nil, fmt.Errorf("vstore: implausible page entry count %d", n)
	}
	for i := uint64(0); i < n; i++ {
		e := tuple.Epoch(r.u64())
		k := r.str()
		p.IDs = append(p.IDs, tuple.ID{Key: k, Epoch: e})
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return p, nil
}

// Coordinator is the relation coordinator record for (relation, epoch): the
// list of page IDs and their tuple-hash ranges (Fig 3).
type Coordinator struct {
	Relation string
	Epoch    tuple.Epoch
	Pages    []PageRef
}

// EncodeCoordinator serializes a coordinator record.
func EncodeCoordinator(c *Coordinator) []byte {
	var w writer
	w.str(c.Relation)
	w.u64(uint64(c.Epoch))
	w.uvarint(uint64(len(c.Pages)))
	for _, ref := range c.Pages {
		w.str(ref.ID.Relation)
		w.u64(uint64(ref.ID.Epoch))
		w.u32(ref.ID.Seq)
		w.key(ref.Min)
		w.key(ref.Max)
	}
	return w.buf
}

// DecodeCoordinator reverses EncodeCoordinator.
func DecodeCoordinator(data []byte) (*Coordinator, error) {
	r := reader{data: data}
	c := &Coordinator{}
	c.Relation = r.str()
	c.Epoch = tuple.Epoch(r.u64())
	n := r.uvarint()
	if n > 1<<24 {
		return nil, fmt.Errorf("vstore: implausible page count %d", n)
	}
	for i := uint64(0); i < n; i++ {
		var ref PageRef
		ref.ID.Relation = r.str()
		ref.ID.Epoch = tuple.Epoch(r.u64())
		ref.ID.Seq = r.u32()
		ref.Min = r.keyVal()
		ref.Max = r.keyVal()
		c.Pages = append(c.Pages, ref)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return c, nil
}

// PageFor returns the page ref covering hash h, or false if none does (which
// indicates a corrupt coordinator: pages must partition the ring).
func (c *Coordinator) PageFor(h keyspace.Key) (PageRef, bool) {
	for _, ref := range c.Pages {
		if ref.Contains(h) {
			return ref, true
		}
	}
	return PageRef{}, false
}

// Catalog records a relation's schema and the epochs at which it was
// modified, in increasing order. It is the entry point for resolving "the
// state of R as of epoch e" to the coordinator record to read.
type Catalog struct {
	Schema *tuple.Schema
	Epochs []tuple.Epoch
}

// EffectiveEpoch returns the largest modification epoch <= e: a query at
// epoch e sees the effects of all state published up to e and nothing later
// (§IV). ok is false if the relation did not exist at e.
func (c *Catalog) EffectiveEpoch(e tuple.Epoch) (tuple.Epoch, bool) {
	i := sort.Search(len(c.Epochs), func(i int) bool { return c.Epochs[i] > e })
	if i == 0 {
		return 0, false
	}
	return c.Epochs[i-1], true
}

// LatestEpoch returns the relation's most recent modification epoch.
func (c *Catalog) LatestEpoch() (tuple.Epoch, bool) {
	if len(c.Epochs) == 0 {
		return 0, false
	}
	return c.Epochs[len(c.Epochs)-1], true
}

// WithEpoch returns a copy of the catalog including epoch e (idempotent).
func (c *Catalog) WithEpoch(e tuple.Epoch) *Catalog {
	out := &Catalog{Schema: c.Schema}
	out.Epochs = append(out.Epochs, c.Epochs...)
	n := len(out.Epochs)
	if n > 0 && out.Epochs[n-1] == e {
		return out
	}
	out.Epochs = append(out.Epochs, e)
	sort.Slice(out.Epochs, func(i, j int) bool { return out.Epochs[i] < out.Epochs[j] })
	return out
}

// EncodeCatalog serializes a catalog record.
func EncodeCatalog(c *Catalog) []byte {
	var w writer
	w.bytes(EncodeSchema(c.Schema))
	w.uvarint(uint64(len(c.Epochs)))
	for _, e := range c.Epochs {
		w.u64(uint64(e))
	}
	return w.buf
}

// DecodeCatalog reverses EncodeCatalog.
func DecodeCatalog(data []byte) (*Catalog, error) {
	r := reader{data: data}
	sb := r.bytes()
	if r.err != nil {
		return nil, r.err
	}
	schema, err := DecodeSchema(sb)
	if err != nil {
		return nil, err
	}
	c := &Catalog{Schema: schema}
	n := r.uvarint()
	if n > 1<<24 {
		return nil, errors.New("vstore: implausible epoch count")
	}
	for i := uint64(0); i < n; i++ {
		c.Epochs = append(c.Epochs, tuple.Epoch(r.u64()))
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return c, nil
}

// TupleRecord is a full tuple version as stored at a data storage node.
type TupleRecord struct {
	ID  tuple.ID
	Row tuple.Row
}

// EncodeTupleRecord serializes a stored tuple (schema-directed row codec).
func EncodeTupleRecord(s *tuple.Schema, rec TupleRecord) ([]byte, error) {
	var w writer
	w.u64(uint64(rec.ID.Epoch))
	w.str(rec.ID.Key)
	rowBytes, err := tuple.AppendRow(nil, s, rec.Row)
	if err != nil {
		return nil, err
	}
	w.bytes(rowBytes)
	return w.buf, nil
}

// DecodeTupleRecord reverses EncodeTupleRecord.
func DecodeTupleRecord(s *tuple.Schema, data []byte) (TupleRecord, error) {
	r := reader{data: data}
	var rec TupleRecord
	rec.ID.Epoch = tuple.Epoch(r.u64())
	rec.ID.Key = r.str()
	rowBytes := r.bytes()
	if r.err != nil {
		return rec, r.err
	}
	row, n, err := tuple.DecodeRow(rowBytes, s)
	if err != nil {
		return rec, err
	}
	if n != len(rowBytes) {
		return rec, errors.New("vstore: trailing bytes in tuple row")
	}
	rec.Row = row
	return rec, r.done()
}
