package vstore

import (
	"errors"
	"fmt"
	"sort"

	"orchestra/internal/keyspace"
	"orchestra/internal/tuple"
)

// PageID identifies an index page version: the relation name, the epoch in
// which the page was last modified, and a unique sequence number for that
// relation and epoch (paper Example 4.1).
type PageID struct {
	Relation string
	Epoch    tuple.Epoch
	Seq      uint32
}

func (p PageID) String() string {
	return fmt.Sprintf("%s@%d#%d", p.Relation, p.Epoch, p.Seq)
}

// PageRef is a coordinator's pointer to a page: its ID plus the tuple-hash
// range it covers. The page's placement key — "the middle of the range of
// tuple keys it encompasses" (§IV) — colocates the page with most of the
// tuples it references.
type PageRef struct {
	ID  PageID
	Min keyspace.Key // inclusive
	Max keyspace.Key // exclusive; Min==Max means the full ring
}

// Placement returns the ring key where the page is stored.
func (p PageRef) Placement() keyspace.Key {
	if p.Min == p.Max {
		// Full ring: place at the midpoint of the numeric key space.
		return keyspace.Midpoint(keyspace.Zero, keyspace.Max)
	}
	if p.Min.Less(p.Max) {
		return keyspace.Midpoint(p.Min, p.Max)
	}
	// Wrapped range: midpoint along the clockwise arc.
	arc := p.Max.Sub(p.Min)
	return p.Min.Add(arc.Half())
}

// Contains reports whether a tuple-hash belongs to this page's range.
func (p PageRef) Contains(h keyspace.Key) bool {
	return h.InRange(p.Min, p.Max)
}

// Page is the content stored at an index node: the tuple IDs present in the
// page's hash range for the page's version, at most one per distinct key.
// Entries are kept sorted by (hash, key) for deterministic encoding and
// ordered scans. Hashes caches each ID's placement key (SHA-1 of its key
// encoding): the scan path routes every entry by this hash, and computing
// it per scanned row used to dominate query profiles, so pages persist it
// alongside the IDs (EnsureHashes fills it for pages decoded from the
// legacy, hash-less encoding).
type Page struct {
	Ref    PageRef
	IDs    []tuple.ID
	Hashes []keyspace.Key // parallel to IDs; see EnsureHashes
}

// EnsureHashes makes Hashes parallel to IDs, computing any missing entries.
func (p *Page) EnsureHashes() {
	if len(p.Hashes) == len(p.IDs) {
		return
	}
	p.Hashes = make([]keyspace.Key, len(p.IDs))
	for i, id := range p.IDs {
		p.Hashes[i] = id.Hash()
	}
}

// pageV2Tag marks the page encoding that carries cached placement hashes.
// Legacy encodings begin with the relation name's uvarint length, whose
// first byte equals 0xFF only for names of 255+ bytes — which schema
// creation rejects (tuple.MaxRelationNameLen), so the tag is unambiguous
// for every page either codec ever produced.
const pageV2Tag = 0xFF

// EncodePage serializes a page, including its entry placement hashes.
func EncodePage(p *Page) []byte {
	p.EnsureHashes()
	var w writer
	w.u8(pageV2Tag)
	w.u8(2) // version
	w.str(p.Ref.ID.Relation)
	w.u64(uint64(p.Ref.ID.Epoch))
	w.u32(p.Ref.ID.Seq)
	w.key(p.Ref.Min)
	w.key(p.Ref.Max)
	w.uvarint(uint64(len(p.IDs)))
	for i, id := range p.IDs {
		w.u64(uint64(id.Epoch))
		w.str(id.Key)
		w.key(p.Hashes[i])
	}
	return w.buf
}

// DecodePage reverses EncodePage. It also accepts the legacy (pre-hash)
// encoding, recomputing the placement hashes on the way in, so stores
// written by earlier versions keep working.
func DecodePage(data []byte) (*Page, error) {
	r := reader{data: data}
	version := uint8(1)
	if len(data) >= 2 && data[0] == pageV2Tag {
		r.u8()
		version = r.u8()
		if version != 2 {
			return nil, fmt.Errorf("vstore: unknown page version %d", version)
		}
	}
	p := &Page{}
	p.Ref.ID.Relation = r.str()
	p.Ref.ID.Epoch = tuple.Epoch(r.u64())
	p.Ref.ID.Seq = r.u32()
	p.Ref.Min = r.keyVal()
	p.Ref.Max = r.keyVal()
	n := r.uvarint()
	if n > 1<<24 {
		return nil, fmt.Errorf("vstore: implausible page entry count %d", n)
	}
	for i := uint64(0); i < n; i++ {
		e := tuple.Epoch(r.u64())
		k := r.str()
		p.IDs = append(p.IDs, tuple.ID{Key: k, Epoch: e})
		if version >= 2 {
			p.Hashes = append(p.Hashes, r.keyVal())
		}
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	p.EnsureHashes()
	return p, nil
}

// Coordinator is the relation coordinator record for (relation, epoch): the
// list of page IDs and their tuple-hash ranges (Fig 3).
type Coordinator struct {
	Relation string
	Epoch    tuple.Epoch
	Pages    []PageRef
}

// EncodeCoordinator serializes a coordinator record.
func EncodeCoordinator(c *Coordinator) []byte {
	var w writer
	w.str(c.Relation)
	w.u64(uint64(c.Epoch))
	w.uvarint(uint64(len(c.Pages)))
	for _, ref := range c.Pages {
		w.str(ref.ID.Relation)
		w.u64(uint64(ref.ID.Epoch))
		w.u32(ref.ID.Seq)
		w.key(ref.Min)
		w.key(ref.Max)
	}
	return w.buf
}

// DecodeCoordinator reverses EncodeCoordinator.
func DecodeCoordinator(data []byte) (*Coordinator, error) {
	r := reader{data: data}
	c := &Coordinator{}
	c.Relation = r.str()
	c.Epoch = tuple.Epoch(r.u64())
	n := r.uvarint()
	if n > 1<<24 {
		return nil, fmt.Errorf("vstore: implausible page count %d", n)
	}
	for i := uint64(0); i < n; i++ {
		var ref PageRef
		ref.ID.Relation = r.str()
		ref.ID.Epoch = tuple.Epoch(r.u64())
		ref.ID.Seq = r.u32()
		ref.Min = r.keyVal()
		ref.Max = r.keyVal()
		c.Pages = append(c.Pages, ref)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return c, nil
}

// PageFor returns the page ref covering hash h, or false if none does (which
// indicates a corrupt coordinator: pages must partition the ring).
func (c *Coordinator) PageFor(h keyspace.Key) (PageRef, bool) {
	for _, ref := range c.Pages {
		if ref.Contains(h) {
			return ref, true
		}
	}
	return PageRef{}, false
}

// Catalog records a relation's schema and the epochs at which it was
// modified, in increasing order. It is the entry point for resolving "the
// state of R as of epoch e" to the coordinator record to read.
//
// Beyond the schema and epoch list the catalog carries two trailing
// bookkeeping sections (absent from records written by older versions;
// the decoder defaults them):
//
//   - Rows: the relation's net row count, maintained at publish time so
//     the optimizer's statistics survive a restart instead of reading 0
//     until the next publish.
//   - RecentPubs: a bounded ring of recently applied publish IDs and the
//     epochs they produced. A client that retries a publish after losing
//     the acknowledgement resends the same ID; any publisher that finds
//     the ID here returns the recorded epoch instead of applying the
//     batch twice. Because the catalog write is the atomic commit point
//     of a publish, the mark and the epoch become visible together.
type Catalog struct {
	Schema *tuple.Schema
	Epochs []tuple.Epoch

	// Rows is the relation's net row count (inserts minus deletes) as of
	// the latest epoch.
	Rows int64
	// RecentPubs holds the last PubHistory publish marks, oldest first.
	RecentPubs []PubMark
}

// PubMark records one applied publish: the client-chosen idempotency ID
// and the epoch the publish produced.
type PubMark struct {
	ID    uint64
	Epoch tuple.Epoch
}

// PubHistory bounds RecentPubs. A retry races only the handful of
// publishes issued while the original acknowledgement was in flight, so
// a short window suffices; it is a hard cap on catalog record growth.
const PubHistory = 64

// FindPub reports the epoch previously recorded for publish ID id.
func (c *Catalog) FindPub(id uint64) (tuple.Epoch, bool) {
	if id == 0 {
		return 0, false
	}
	for _, m := range c.RecentPubs {
		if m.ID == id {
			return m.Epoch, true
		}
	}
	return 0, false
}

// MarkPub appends a publish mark, evicting the oldest beyond PubHistory.
// A zero ID (no idempotency requested) is not recorded.
func (c *Catalog) MarkPub(id uint64, e tuple.Epoch) {
	if id == 0 {
		return
	}
	c.RecentPubs = append(c.RecentPubs, PubMark{ID: id, Epoch: e})
	if n := len(c.RecentPubs) - PubHistory; n > 0 {
		c.RecentPubs = append(c.RecentPubs[:0], c.RecentPubs[n:]...)
	}
}

// EffectiveEpoch returns the largest modification epoch <= e: a query at
// epoch e sees the effects of all state published up to e and nothing later
// (§IV). ok is false if the relation did not exist at e.
func (c *Catalog) EffectiveEpoch(e tuple.Epoch) (tuple.Epoch, bool) {
	i := sort.Search(len(c.Epochs), func(i int) bool { return c.Epochs[i] > e })
	if i == 0 {
		return 0, false
	}
	return c.Epochs[i-1], true
}

// LatestEpoch returns the relation's most recent modification epoch.
func (c *Catalog) LatestEpoch() (tuple.Epoch, bool) {
	if len(c.Epochs) == 0 {
		return 0, false
	}
	return c.Epochs[len(c.Epochs)-1], true
}

// WithEpoch returns a copy of the catalog including epoch e (idempotent).
// Row counts and publish marks carry over unchanged.
func (c *Catalog) WithEpoch(e tuple.Epoch) *Catalog {
	out := &Catalog{Schema: c.Schema, Rows: c.Rows}
	out.RecentPubs = append(out.RecentPubs, c.RecentPubs...)
	out.Epochs = append(out.Epochs, c.Epochs...)
	n := len(out.Epochs)
	if n > 0 && out.Epochs[n-1] == e {
		return out
	}
	out.Epochs = append(out.Epochs, e)
	sort.Slice(out.Epochs, func(i, j int) bool { return out.Epochs[i] < out.Epochs[j] })
	return out
}

// EncodeCatalog serializes a catalog record. The row-count and
// publish-mark sections trail the epoch list so records written before
// they existed still decode (DecodeCatalog defaults them).
func EncodeCatalog(c *Catalog) []byte {
	var w writer
	w.bytes(EncodeSchema(c.Schema))
	w.uvarint(uint64(len(c.Epochs)))
	for _, e := range c.Epochs {
		w.u64(uint64(e))
	}
	w.u64(uint64(c.Rows))
	w.uvarint(uint64(len(c.RecentPubs)))
	for _, m := range c.RecentPubs {
		w.u64(m.ID)
		w.u64(uint64(m.Epoch))
	}
	return w.buf
}

// DecodeCatalog reverses EncodeCatalog.
func DecodeCatalog(data []byte) (*Catalog, error) {
	r := reader{data: data}
	sb := r.bytes()
	if r.err != nil {
		return nil, r.err
	}
	schema, err := DecodeSchema(sb)
	if err != nil {
		return nil, err
	}
	c := &Catalog{Schema: schema}
	n := r.uvarint()
	if n > 1<<24 {
		return nil, errors.New("vstore: implausible epoch count")
	}
	for i := uint64(0); i < n; i++ {
		c.Epochs = append(c.Epochs, tuple.Epoch(r.u64()))
	}
	if r.err == nil && r.off == len(r.data) {
		return c, nil // legacy record: no stats/pub sections
	}
	c.Rows = int64(r.u64())
	pubs := r.uvarint()
	if pubs > PubHistory {
		return nil, errors.New("vstore: implausible publish-mark count")
	}
	for i := uint64(0); i < pubs; i++ {
		id := r.u64()
		c.RecentPubs = append(c.RecentPubs, PubMark{ID: id, Epoch: tuple.Epoch(r.u64())})
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return c, nil
}

// TupleRecord is a full tuple version as stored at a data storage node.
type TupleRecord struct {
	ID  tuple.ID
	Row tuple.Row
}

// EncodeTupleRecord serializes a stored tuple (schema-directed row codec).
func EncodeTupleRecord(s *tuple.Schema, rec TupleRecord) ([]byte, error) {
	var w writer
	w.u64(uint64(rec.ID.Epoch))
	w.str(rec.ID.Key)
	rowBytes, err := tuple.AppendRow(nil, s, rec.Row)
	if err != nil {
		return nil, err
	}
	w.bytes(rowBytes)
	return w.buf, nil
}

// DecodeTupleRecordCols decodes a stored tuple record's row straight onto
// a columnar batch, skipping the ID and all per-row allocations. String
// values alias data (see tuple.DecodeRowCols): data must be an immutable,
// retained buffer — stored kvstore values qualify.
func DecodeTupleRecordCols(s *tuple.Schema, data []byte, b *tuple.Batch) error {
	r := reader{data: data}
	r.u64()   // ID epoch
	r.bytes() // ID key encoding
	rowBytes := r.bytes()
	if r.err != nil {
		return r.err
	}
	n, err := tuple.DecodeRowCols(rowBytes, s, b)
	if err != nil {
		return err
	}
	if n != len(rowBytes) {
		return errors.New("vstore: trailing bytes in tuple row")
	}
	return r.done()
}

// DecodeTupleRecord reverses EncodeTupleRecord.
func DecodeTupleRecord(s *tuple.Schema, data []byte) (TupleRecord, error) {
	r := reader{data: data}
	var rec TupleRecord
	rec.ID.Epoch = tuple.Epoch(r.u64())
	rec.ID.Key = r.str()
	rowBytes := r.bytes()
	if r.err != nil {
		return rec, r.err
	}
	row, n, err := tuple.DecodeRow(rowBytes, s)
	if err != nil {
		return rec, err
	}
	if n != len(rowBytes) {
		return rec, errors.New("vstore: trailing bytes in tuple row")
	}
	rec.Row = row
	return rec, r.done()
}
