package vstore

import (
	"errors"
	"fmt"
	"sort"

	"orchestra/internal/keyspace"
	"orchestra/internal/tuple"
)

// Op is the kind of a published change. ORCHESTRA's workload is batch
// publication of update logs, primarily insertions of new data (§I, §IV).
type Op uint8

const (
	// OpInsert adds a new tuple.
	OpInsert Op = iota + 1
	// OpUpdate replaces the current version of a tuple (same key).
	OpUpdate
	// OpDelete removes the tuple from the current version; prior versions
	// remain in storage for historical queries.
	OpDelete
)

func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Update is one entry of a published update log.
type Update struct {
	Op  Op
	Row tuple.Row // for OpDelete only the key columns are consulted
}

// TupleWrite is a tuple version that must be stored at its data node.
type TupleWrite struct {
	ID  tuple.ID
	Row tuple.Row
}

// DefaultMaxPageEntries bounds index page size. The paper uses "a slightly
// higher number of entries [than CFS-style i-nodes] representing partitions
// of the tuple space"; a few hundred IDs per page keeps pages retrievable
// from one or at most a few data storage nodes.
const DefaultMaxPageEntries = 512

// pageEntry pairs a tuple ID with its cached hash during page builds.
type pageEntry struct {
	id   tuple.ID
	hash keyspace.Key
}

func sortEntries(entries []pageEntry) {
	// Order by (hash, key): the storage order of the data nodes.
	sort.Slice(entries, func(i, j int) bool {
		if c := entries[i].hash.Cmp(entries[j].hash); c != 0 {
			return c < 0
		}
		return entries[i].id.Key < entries[j].id.Key
	})
}

// BuildInitialPages constructs the first version of a relation from a batch
// of updates at the given epoch: tuple IDs are sorted by hash and chunked
// into pages whose ranges partition the full ring, so every future tuple
// hash maps to exactly one page.
func BuildInitialPages(s *tuple.Schema, epoch tuple.Epoch, ups []Update, maxPerPage int) ([]Page, []TupleWrite, error) {
	if maxPerPage <= 0 {
		maxPerPage = DefaultMaxPageEntries
	}
	byKey := make(map[string]pageEntry)
	var writes []TupleWrite
	for _, u := range ups {
		switch u.Op {
		case OpInsert, OpUpdate:
			if len(u.Row) != s.Arity() {
				return nil, nil, fmt.Errorf("vstore: update row arity %d != schema %d", len(u.Row), s.Arity())
			}
			id := tuple.NewID(s, u.Row, epoch)
			byKey[id.Key] = pageEntry{id: id, hash: id.Hash()}
			writes = append(writes, TupleWrite{ID: id, Row: u.Row})
		case OpDelete:
			id := tuple.NewID(s, u.Row, epoch)
			delete(byKey, id.Key)
		default:
			return nil, nil, fmt.Errorf("vstore: unknown op %v", u.Op)
		}
	}
	entries := make([]pageEntry, 0, len(byKey))
	for _, e := range byKey {
		entries = append(entries, e)
	}
	sortEntries(entries)

	var seq uint32
	pages := chunkIntoPages(s.Relation, epoch, &seq, entries, keyspace.Zero, keyspace.Zero, maxPerPage)
	return pages, writes, nil
}

// chunkIntoPages splits sorted entries into pages of at most maxPerPage IDs
// whose ranges partition [min, max). Chunk boundaries fall only between
// distinct hashes so every entry lies strictly within its page's range.
func chunkIntoPages(relation string, epoch tuple.Epoch, seq *uint32, entries []pageEntry, min, max keyspace.Key, maxPerPage int) []Page {
	newPage := func(lo, hi keyspace.Key, es []pageEntry) Page {
		ids := make([]tuple.ID, len(es))
		hashes := make([]keyspace.Key, len(es))
		for i, e := range es {
			ids[i] = e.id
			hashes[i] = e.hash
		}
		p := Page{
			Ref: PageRef{
				ID:  PageID{Relation: relation, Epoch: epoch, Seq: *seq},
				Min: lo,
				Max: hi,
			},
			IDs:    ids,
			Hashes: hashes,
		}
		*seq++
		return p
	}

	if len(entries) <= maxPerPage {
		return []Page{newPage(min, max, entries)}
	}

	// Find chunk boundaries: advance past runs of equal hashes.
	var pages []Page
	lo := min
	start := 0
	for start < len(entries) {
		end := start + maxPerPage
		if end >= len(entries) {
			pages = append(pages, newPage(lo, max, entries[start:]))
			break
		}
		// Move end forward past entries sharing the boundary hash.
		for end < len(entries) && entries[end].hash == entries[end-1].hash {
			end++
		}
		if end >= len(entries) {
			pages = append(pages, newPage(lo, max, entries[start:]))
			break
		}
		boundary := entries[end].hash
		pages = append(pages, newPage(lo, boundary, entries[start:end]))
		lo = boundary
		start = end
	}
	return pages
}

// ErrWrongPage is returned when an update's key does not hash into the page
// being modified.
var ErrWrongPage = errors.New("vstore: update key outside page range")

// ApplyToPage performs copy-on-write modification of one index page
// (§IV: "modify that page to include the ID of the new tuple, and write out
// that modified page as the new index page for the region of the table
// surrounding the updated tuple"). It returns the replacement page(s) —
// more than one if the page overflowed and split — and the tuple versions
// to write. seq supplies unique page sequence numbers within (relation,
// epoch).
func ApplyToPage(old *Page, s *tuple.Schema, epoch tuple.Epoch, ups []Update, maxPerPage int, seq *uint32) ([]Page, []TupleWrite, error) {
	if maxPerPage <= 0 {
		maxPerPage = DefaultMaxPageEntries
	}
	old.EnsureHashes()
	byKey := make(map[string]pageEntry, len(old.IDs)+len(ups))
	for i, id := range old.IDs {
		byKey[id.Key] = pageEntry{id: id, hash: old.Hashes[i]}
	}
	var writes []TupleWrite
	for _, u := range ups {
		switch u.Op {
		case OpInsert, OpUpdate:
			if len(u.Row) != s.Arity() {
				return nil, nil, fmt.Errorf("vstore: update row arity %d != schema %d", len(u.Row), s.Arity())
			}
			id := tuple.NewID(s, u.Row, epoch)
			h := id.Hash()
			if !old.Ref.Contains(h) {
				return nil, nil, fmt.Errorf("%w: %s not in %s", ErrWrongPage, id, old.Ref.ID)
			}
			byKey[id.Key] = pageEntry{id: id, hash: h}
			writes = append(writes, TupleWrite{ID: id, Row: u.Row})
		case OpDelete:
			id := tuple.NewID(s, u.Row, epoch)
			if !old.Ref.Contains(id.Hash()) {
				return nil, nil, fmt.Errorf("%w: delete %s not in %s", ErrWrongPage, id, old.Ref.ID)
			}
			delete(byKey, id.Key)
		default:
			return nil, nil, fmt.Errorf("vstore: unknown op %v", u.Op)
		}
	}
	entries := make([]pageEntry, 0, len(byKey))
	for _, e := range byKey {
		entries = append(entries, e)
	}
	sortEntries(entries)
	pages := chunkIntoPages(s.Relation, epoch, seq, entries, old.Ref.Min, old.Ref.Max, maxPerPage)
	return pages, writes, nil
}

// GroupByPage partitions updates by the page (in coord) whose range contains
// each update's key hash. Updates are grouped in input order.
func GroupByPage(coord *Coordinator, s *tuple.Schema, ups []Update) (map[PageID][]Update, error) {
	out := make(map[PageID][]Update)
	for _, u := range ups {
		id := tuple.NewID(s, u.Row, 0)
		ref, ok := coord.PageFor(id.Hash())
		if !ok {
			return nil, fmt.Errorf("vstore: no page covers hash of %s in %s@%d",
				id, coord.Relation, coord.Epoch)
		}
		out[ref.ID] = append(out[ref.ID], u)
	}
	return out, nil
}
