package vstore

import (
	"encoding/binary"

	"orchestra/internal/keyspace"
	"orchestra/internal/tuple"
)

// Local key-value layout. Every node's share of the distributed store lives
// in one ordered kvstore; record kinds are distinguished by a one-letter
// prefix. Tuple records embed the tuple-hash so that a page's tuples are
// adjacent on disk and can be retrieved "in a single pass through the hash
// ID range for that page" (§V-B, distributed scan).
//
//	c/<relation>                          catalog
//	r/<relation>\x00<epoch:8>             relation coordinator
//	p/<relation>\x00<epoch:8><seq:4>      index page
//	t/<hash:20><keyenc>\x00<epoch:8>      tuple version

func epochBytes(e tuple.Epoch) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(e))
	return b[:]
}

// CatalogKVKey is the local store key for a relation's catalog.
func CatalogKVKey(relation string) []byte {
	return append([]byte("c/"), relation...)
}

// CatalogPlacement is the ring key where the catalog for relation lives.
func CatalogPlacement(relation string) keyspace.Key {
	return keyspace.HashStrings("catalog", relation)
}

// CoordKVKey is the local store key for the coordinator of (relation, epoch).
func CoordKVKey(relation string, e tuple.Epoch) []byte {
	k := append([]byte("r/"), relation...)
	k = append(k, 0)
	return append(k, epochBytes(e)...)
}

// CoordPlacement hashes ⟨relation, epoch⟩ to the relation coordinator's ring
// position (Algorithm 1 line 1).
func CoordPlacement(relation string, e tuple.Epoch) keyspace.Key {
	data := append([]byte("coord/"+relation+"/"), epochBytes(e)...)
	return keyspace.Hash(data)
}

// PageKVKey is the local store key for an index page.
func PageKVKey(id PageID) []byte {
	k := append([]byte("p/"), id.Relation...)
	k = append(k, 0)
	k = append(k, epochBytes(id.Epoch)...)
	var seq [4]byte
	binary.BigEndian.PutUint32(seq[:], id.Seq)
	return append(k, seq[:]...)
}

// TupleKVKey is the local store key for a tuple version.
func TupleKVKey(id tuple.ID) []byte {
	h := id.Hash()
	k := append([]byte("t/"), h[:]...)
	k = append(k, id.Key...)
	k = append(k, 0)
	return append(k, epochBytes(id.Epoch)...)
}

// TupleScanBounds returns the local-store key range [lo, hi) containing all
// tuple versions whose hash lies in the clockwise interval [min, max). For
// wrapped intervals (min > max) two scans are required; wrapped reports
// that, and the caller scans [lo, end-of-tuples) and [start-of-tuples, hi).
func TupleScanBounds(min, max keyspace.Key) (lo, hi []byte, wrapped bool) {
	lo = append([]byte("t/"), min[:]...)
	hi = append([]byte("t/"), max[:]...)
	if min == max {
		// Full ring: all tuples.
		return []byte("t/"), []byte("t0"), false // '0' = '/'+1
	}
	return lo, hi, max.Less(min)
}

// TupleKeyHash extracts the tuple hash embedded in a local tuple store key.
func TupleKeyHash(kvKey []byte) (keyspace.Key, bool) {
	var h keyspace.Key
	if len(kvKey) < 2+keyspace.Size || kvKey[0] != 't' || kvKey[1] != '/' {
		return h, false
	}
	copy(h[:], kvKey[2:])
	return h, true
}

// TupleIDFromKVKey reconstructs the tuple ID from a local tuple store key.
func TupleIDFromKVKey(kvKey []byte) (tuple.ID, bool) {
	if len(kvKey) < 2+keyspace.Size+1+8 || kvKey[0] != 't' || kvKey[1] != '/' {
		return tuple.ID{}, false
	}
	rest := kvKey[2+keyspace.Size:]
	// key encoding, then 0x00 separator, then 8-byte epoch. The key encoding
	// itself never ends ambiguously because we know the epoch is the final
	// 8 bytes and the separator precedes it.
	if len(rest) < 9 {
		return tuple.ID{}, false
	}
	keyEnc := rest[:len(rest)-9]
	if rest[len(rest)-9] != 0 {
		return tuple.ID{}, false
	}
	e := binary.BigEndian.Uint64(rest[len(rest)-8:])
	return tuple.ID{Key: string(keyEnc), Epoch: tuple.Epoch(e)}, true
}
