// Package vstore implements the versioned relational storage scheme of
// paper §IV (Fig 3): relations are divided into versioned index pages, each
// covering a partition of the tuple-key hash space and listing the tuple IDs
// current in that range at a given epoch. Relation coordinator records map
// (relation, epoch) to the page list; catalogs track each relation's schema
// and modification epochs. Pages are copy-on-write: publishing a batch of
// updates rewrites only the affected pages and links the rest unchanged,
// like the i-node/CFS versioning schemes that inspired the design.
//
// This package contains the data structures, codecs, and pure page
// manipulation logic; the cluster package distributes and replicates the
// records over the ring.
package vstore

import (
	"encoding/binary"
	"errors"
	"fmt"

	"orchestra/internal/keyspace"
	"orchestra/internal/tuple"
)

// writer accumulates a binary encoding.
type writer struct {
	buf []byte
}

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }
func (w *writer) uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}
func (w *writer) bytes(b []byte) {
	w.uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}
func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}
func (w *writer) key(k keyspace.Key) { w.buf = append(w.buf, k[:]...) }

// reader decodes a binary encoding with sticky errors.
type reader struct {
	data []byte
	off  int
	err  error
}

var errTruncated = errors.New("vstore: truncated record")

func (r *reader) fail() {
	if r.err == nil {
		r.err = errTruncated
	}
}

func (r *reader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.data) {
		r.fail()
		return 0
	}
	v := r.data[r.off]
	r.off++
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.data) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.data) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *reader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil || r.off+int(n) > len(r.data) {
		r.fail()
		return nil
	}
	b := r.data[r.off : r.off+int(n)]
	r.off += int(n)
	return b
}

func (r *reader) str() string { return string(r.bytes()) }

func (r *reader) keyVal() keyspace.Key {
	var k keyspace.Key
	if r.err != nil || r.off+keyspace.Size > len(r.data) {
		r.fail()
		return k
	}
	copy(k[:], r.data[r.off:])
	r.off += keyspace.Size
	return k
}

func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.data) {
		return fmt.Errorf("vstore: %d trailing bytes", len(r.data)-r.off)
	}
	return nil
}

// EncodeSchema serializes a schema for catalog records.
func EncodeSchema(s *tuple.Schema) []byte {
	var w writer
	w.str(s.Relation)
	w.uvarint(uint64(len(s.Columns)))
	for _, c := range s.Columns {
		w.str(c.Name)
		w.u8(uint8(c.Type))
	}
	w.uvarint(uint64(len(s.Key)))
	for _, k := range s.Key {
		w.uvarint(uint64(k))
	}
	return w.buf
}

// DecodeSchema reverses EncodeSchema.
func DecodeSchema(data []byte) (*tuple.Schema, error) {
	r := reader{data: data}
	s := &tuple.Schema{Relation: r.str()}
	nCols := r.uvarint()
	if nCols > 1<<16 {
		return nil, fmt.Errorf("vstore: implausible column count %d", nCols)
	}
	for i := uint64(0); i < nCols; i++ {
		name := r.str()
		typ := tuple.Type(r.u8())
		s.Columns = append(s.Columns, tuple.Column{Name: name, Type: typ})
	}
	nKey := r.uvarint()
	if nKey > nCols {
		return nil, errors.New("vstore: key column count exceeds columns")
	}
	for i := uint64(0); i < nKey; i++ {
		idx := r.uvarint()
		if idx >= nCols {
			return nil, errors.New("vstore: key column index out of range")
		}
		s.Key = append(s.Key, int(idx))
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return s, nil
}
