package vstore

import (
	"fmt"
	"math/rand"
	"testing"

	"orchestra/internal/keyspace"
	"orchestra/internal/tuple"
)

func rSchema(t *testing.T) *tuple.Schema {
	t.Helper()
	s, err := tuple.NewSchema("R",
		[]tuple.Column{{Name: "x", Type: tuple.String}, {Name: "y", Type: tuple.String}}, "x")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaCodecRoundTrip(t *testing.T) {
	s := rSchema(t)
	got, err := DecodeSchema(EncodeSchema(s))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(s) {
		t.Errorf("round trip: %s != %s", got, s)
	}
}

func TestSchemaCodecRejectsGarbage(t *testing.T) {
	if _, err := DecodeSchema([]byte{0xFF, 0xFF}); err == nil {
		t.Error("garbage should fail")
	}
	s := rSchema(t)
	enc := EncodeSchema(s)
	if _, err := DecodeSchema(enc[:len(enc)-1]); err == nil {
		t.Error("truncated should fail")
	}
	if _, err := DecodeSchema(append(enc, 0x01)); err == nil {
		t.Error("trailing bytes should fail")
	}
}

func TestPageCodecRoundTrip(t *testing.T) {
	s := rSchema(t)
	p := &Page{
		Ref: PageRef{
			ID:  PageID{Relation: "R", Epoch: 3, Seq: 7},
			Min: keyspace.FromUint64(100),
			Max: keyspace.FromUint64(900),
		},
	}
	for i := 0; i < 20; i++ {
		row := tuple.Row{tuple.S(fmt.Sprintf("k%d", i)), tuple.S("v")}
		p.IDs = append(p.IDs, tuple.NewID(s, row, tuple.Epoch(i%4)))
	}
	got, err := DecodePage(EncodePage(p))
	if err != nil {
		t.Fatal(err)
	}
	if got.Ref != p.Ref {
		t.Errorf("ref mismatch: %+v != %+v", got.Ref, p.Ref)
	}
	if len(got.IDs) != len(p.IDs) {
		t.Fatalf("id count %d != %d", len(got.IDs), len(p.IDs))
	}
	for i := range p.IDs {
		if got.IDs[i] != p.IDs[i] {
			t.Errorf("id %d: %v != %v", i, got.IDs[i], p.IDs[i])
		}
	}
}

func TestCoordinatorCodecRoundTrip(t *testing.T) {
	c := &Coordinator{
		Relation: "R",
		Epoch:    5,
		Pages: []PageRef{
			{ID: PageID{"R", 5, 0}, Min: keyspace.Zero, Max: keyspace.FromUint64(500)},
			{ID: PageID{"R", 2, 1}, Min: keyspace.FromUint64(500), Max: keyspace.Zero},
		},
	}
	got, err := DecodeCoordinator(EncodeCoordinator(c))
	if err != nil {
		t.Fatal(err)
	}
	if got.Relation != c.Relation || got.Epoch != c.Epoch || len(got.Pages) != 2 {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range c.Pages {
		if got.Pages[i] != c.Pages[i] {
			t.Errorf("page %d: %+v != %+v", i, got.Pages[i], c.Pages[i])
		}
	}
}

func TestCatalogEffectiveEpoch(t *testing.T) {
	c := &Catalog{Schema: rSchema(t), Epochs: []tuple.Epoch{1, 4, 9}}
	cases := []struct {
		at   tuple.Epoch
		want tuple.Epoch
		ok   bool
	}{
		{0, 0, false}, {1, 1, true}, {3, 1, true}, {4, 4, true},
		{8, 4, true}, {9, 9, true}, {100, 9, true},
	}
	for _, cse := range cases {
		got, ok := c.EffectiveEpoch(cse.at)
		if ok != cse.ok || (ok && got != cse.want) {
			t.Errorf("EffectiveEpoch(%d) = %d,%v want %d,%v", cse.at, got, ok, cse.want, cse.ok)
		}
	}
	if latest, ok := c.LatestEpoch(); !ok || latest != 9 {
		t.Errorf("LatestEpoch = %d,%v", latest, ok)
	}
	empty := &Catalog{Schema: rSchema(t)}
	if _, ok := empty.LatestEpoch(); ok {
		t.Error("empty catalog has a latest epoch")
	}
}

func TestCatalogWithEpochIdempotent(t *testing.T) {
	c := &Catalog{Schema: rSchema(t), Epochs: []tuple.Epoch{2}}
	c2 := c.WithEpoch(5).WithEpoch(5).WithEpoch(3)
	if len(c2.Epochs) != 3 || c2.Epochs[0] != 2 || c2.Epochs[1] != 3 || c2.Epochs[2] != 5 {
		t.Errorf("Epochs = %v", c2.Epochs)
	}
	if len(c.Epochs) != 1 {
		t.Error("WithEpoch mutated the original")
	}
}

func TestCatalogCodecRoundTrip(t *testing.T) {
	c := &Catalog{Schema: rSchema(t), Epochs: []tuple.Epoch{1, 2, 3}}
	got, err := DecodeCatalog(EncodeCatalog(c))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Schema.Equal(c.Schema) || len(got.Epochs) != 3 || got.Epochs[2] != 3 {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestTupleRecordCodec(t *testing.T) {
	s := rSchema(t)
	row := tuple.Row{tuple.S("key1"), tuple.S("val1")}
	rec := TupleRecord{ID: tuple.NewID(s, row, 4), Row: row}
	enc, err := EncodeTupleRecord(s, rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTupleRecord(s, enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != rec.ID || !got.Row.Equal(rec.Row) {
		t.Errorf("round trip: %+v != %+v", got, rec)
	}
}

func TestBuildInitialPagesSmall(t *testing.T) {
	s := rSchema(t)
	var ups []Update
	for i := 0; i < 10; i++ {
		ups = append(ups, Update{Op: OpInsert, Row: tuple.Row{tuple.S(fmt.Sprintf("k%d", i)), tuple.S("v")}})
	}
	pages, writes, err := BuildInitialPages(s, 1, ups, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 1 {
		t.Fatalf("want 1 page, got %d", len(pages))
	}
	p := pages[0]
	if p.Ref.Min != keyspace.Zero || p.Ref.Max != keyspace.Zero {
		t.Error("single page should cover the full ring")
	}
	if len(p.IDs) != 10 || len(writes) != 10 {
		t.Errorf("ids=%d writes=%d", len(p.IDs), len(writes))
	}
	// IDs sorted by hash.
	for i := 1; i < len(p.IDs); i++ {
		if p.IDs[i-1].Hash().Cmp(p.IDs[i].Hash()) > 0 {
			t.Error("page IDs not sorted by hash")
		}
	}
}

func TestBuildInitialPagesSplitsAndPartitions(t *testing.T) {
	s := rSchema(t)
	var ups []Update
	const n = 1000
	for i := 0; i < n; i++ {
		ups = append(ups, Update{Op: OpInsert, Row: tuple.Row{tuple.S(fmt.Sprintf("key-%04d", i)), tuple.S("v")}})
	}
	pages, writes, err := BuildInitialPages(s, 1, ups, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(writes) != n {
		t.Fatalf("writes = %d", len(writes))
	}
	if len(pages) < n/64 {
		t.Fatalf("too few pages: %d", len(pages))
	}
	// Page ranges must partition the full ring in order.
	if pages[0].Ref.Min != keyspace.Zero {
		t.Error("first page must start at zero")
	}
	if pages[len(pages)-1].Ref.Max != keyspace.Zero {
		t.Error("last page must wrap to zero")
	}
	total := 0
	seqs := map[uint32]bool{}
	for i, p := range pages {
		if i > 0 && p.Ref.Min != pages[i-1].Ref.Max {
			t.Errorf("page %d not contiguous", i)
		}
		if len(p.IDs) > 64+5 { // small slack for equal-hash runs
			t.Errorf("page %d overfull: %d", i, len(p.IDs))
		}
		if seqs[p.Ref.ID.Seq] {
			t.Errorf("duplicate page seq %d", p.Ref.ID.Seq)
		}
		seqs[p.Ref.ID.Seq] = true
		for _, id := range p.IDs {
			if !p.Ref.Contains(id.Hash()) {
				t.Fatalf("page %d contains out-of-range ID %v", i, id)
			}
		}
		total += len(p.IDs)
	}
	if total != n {
		t.Errorf("total ids %d != %d", total, n)
	}
}

func TestBuildInitialPagesEmptyAndDedup(t *testing.T) {
	s := rSchema(t)
	pages, writes, err := BuildInitialPages(s, 1, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 1 || len(pages[0].IDs) != 0 || len(writes) != 0 {
		t.Errorf("empty build: %d pages, %d ids", len(pages), len(pages[0].IDs))
	}
	// Same key twice: last wins, one entry.
	ups := []Update{
		{Op: OpInsert, Row: tuple.Row{tuple.S("k"), tuple.S("v1")}},
		{Op: OpUpdate, Row: tuple.Row{tuple.S("k"), tuple.S("v2")}},
	}
	pages, writes, err = BuildInitialPages(s, 1, ups, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pages[0].IDs) != 1 {
		t.Errorf("dedup failed: %d ids", len(pages[0].IDs))
	}
	if len(writes) != 2 {
		t.Errorf("both versions should be written: %d", len(writes))
	}
	// Insert then delete: no entry.
	ups = []Update{
		{Op: OpInsert, Row: tuple.Row{tuple.S("k"), tuple.S("v1")}},
		{Op: OpDelete, Row: tuple.Row{tuple.S("k"), tuple.S("")}},
	}
	pages, _, err = BuildInitialPages(s, 1, ups, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pages[0].IDs) != 0 {
		t.Error("delete after insert should leave no entry")
	}
}

func TestApplyToPageModify(t *testing.T) {
	// Mirrors the paper's running example: R(f,z) at epoch 0 changed to
	// R(f,a) at epoch 1 — the page entry for key f is replaced with the
	// new-epoch ID; the old tuple version remains (only writes for the new).
	s := rSchema(t)
	initial := []Update{
		{Op: OpInsert, Row: tuple.Row{tuple.S("a"), tuple.S("b")}},
		{Op: OpInsert, Row: tuple.Row{tuple.S("f"), tuple.S("z")}},
	}
	pages, _, err := BuildInitialPages(s, 0, initial, 100)
	if err != nil {
		t.Fatal(err)
	}
	old := &pages[0]

	var seq uint32
	ups := []Update{
		{Op: OpUpdate, Row: tuple.Row{tuple.S("f"), tuple.S("a")}},
		{Op: OpInsert, Row: tuple.Row{tuple.S("b"), tuple.S("c")}},
	}
	newPages, writes, err := ApplyToPage(old, s, 1, ups, 100, &seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(newPages) != 1 {
		t.Fatalf("want 1 page, got %d", len(newPages))
	}
	np := newPages[0]
	if np.Ref.ID.Epoch != 1 || np.Ref.ID.Relation != "R" {
		t.Errorf("new page ID = %v", np.Ref.ID)
	}
	if np.Ref.Min != old.Ref.Min || np.Ref.Max != old.Ref.Max {
		t.Error("page range must be preserved on modify")
	}
	if len(np.IDs) != 3 {
		t.Fatalf("want 3 ids, got %d", len(np.IDs))
	}
	wantEpochs := map[string]tuple.Epoch{"a": 0, "f": 1, "b": 1}
	for _, id := range np.IDs {
		vals, err := id.KeyValues()
		if err != nil {
			t.Fatal(err)
		}
		if want := wantEpochs[vals[0].Str]; id.Epoch != want {
			t.Errorf("key %s at epoch %d, want %d", vals[0].Str, id.Epoch, want)
		}
	}
	if len(writes) != 2 {
		t.Errorf("want 2 tuple writes, got %d", len(writes))
	}
	// Old page untouched (copy-on-write).
	if len(old.IDs) != 2 {
		t.Error("ApplyToPage mutated the old page")
	}
}

func TestApplyToPageDeleteAndSplit(t *testing.T) {
	s := rSchema(t)
	var initial []Update
	for i := 0; i < 50; i++ {
		initial = append(initial, Update{Op: OpInsert, Row: tuple.Row{tuple.S(fmt.Sprintf("k%02d", i)), tuple.S("v")}})
	}
	pages, _, err := BuildInitialPages(s, 0, initial, 1000)
	if err != nil {
		t.Fatal(err)
	}
	old := &pages[0]

	// Delete one.
	var seq uint32
	newPages, writes, err := ApplyToPage(old, s, 1,
		[]Update{{Op: OpDelete, Row: tuple.Row{tuple.S("k07"), tuple.S("")}}}, 1000, &seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(newPages[0].IDs) != 49 || len(writes) != 0 {
		t.Errorf("after delete: %d ids, %d writes", len(newPages[0].IDs), len(writes))
	}

	// Overflow: small page cap forces a split within the old range.
	var ups []Update
	for i := 0; i < 60; i++ {
		ups = append(ups, Update{Op: OpInsert, Row: tuple.Row{tuple.S(fmt.Sprintf("new%02d", i)), tuple.S("v")}})
	}
	seq = 0
	split, _, err := ApplyToPage(old, s, 2, ups, 64, &seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(split) < 2 {
		t.Fatalf("expected split, got %d pages", len(split))
	}
	if split[0].Ref.Min != old.Ref.Min || split[len(split)-1].Ref.Max != old.Ref.Max {
		t.Error("split pages must cover exactly the old range")
	}
	total := 0
	for i, p := range split {
		if i > 0 && p.Ref.Min != split[i-1].Ref.Max {
			t.Errorf("split page %d not contiguous", i)
		}
		for _, id := range p.IDs {
			if !p.Ref.Contains(id.Hash()) {
				t.Error("split page contains out-of-range id")
			}
		}
		total += len(p.IDs)
	}
	if total != 110 {
		t.Errorf("total after split = %d, want 110", total)
	}
}

func TestApplyToPageRejectsForeignKeyHash(t *testing.T) {
	s := rSchema(t)
	// Construct a page covering a tiny range that cannot contain our key.
	old := &Page{Ref: PageRef{
		ID:  PageID{"R", 0, 0},
		Min: keyspace.FromUint64(1),
		Max: keyspace.FromUint64(2),
	}}
	var seq uint32
	_, _, err := ApplyToPage(old, s, 1,
		[]Update{{Op: OpInsert, Row: tuple.Row{tuple.S("zzz"), tuple.S("v")}}}, 10, &seq)
	if err == nil {
		t.Fatal("expected ErrWrongPage")
	}
}

func TestGroupByPage(t *testing.T) {
	s := rSchema(t)
	var initial []Update
	for i := 0; i < 300; i++ {
		initial = append(initial, Update{Op: OpInsert, Row: tuple.Row{tuple.S(fmt.Sprintf("k%03d", i)), tuple.S("v")}})
	}
	pages, _, err := BuildInitialPages(s, 0, initial, 64)
	if err != nil {
		t.Fatal(err)
	}
	coord := &Coordinator{Relation: "R", Epoch: 0}
	for _, p := range pages {
		coord.Pages = append(coord.Pages, p.Ref)
	}
	var ups []Update
	for i := 0; i < 50; i++ {
		ups = append(ups, Update{Op: OpInsert, Row: tuple.Row{tuple.S(fmt.Sprintf("n%02d", i)), tuple.S("v")}})
	}
	groups, err := GroupByPage(coord, s, ups)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for pid, g := range groups {
		ref := PageRef{}
		for _, p := range coord.Pages {
			if p.ID == pid {
				ref = p
			}
		}
		for _, u := range g {
			id := tuple.NewID(s, u.Row, 0)
			if !ref.Contains(id.Hash()) {
				t.Errorf("update grouped into wrong page %v", pid)
			}
		}
		total += len(g)
	}
	if total != 50 {
		t.Errorf("grouped %d updates, want 50", total)
	}
}

func TestPagePlacementColocation(t *testing.T) {
	// Placement of a page is the midpoint of its range, so it falls inside
	// the range (the colocation invariant of §IV) — including wrapped
	// ranges and the full ring.
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		var a, b keyspace.Key
		r.Read(a[:])
		r.Read(b[:])
		if a == b {
			continue
		}
		ref := PageRef{Min: a, Max: b}
		if !ref.Contains(ref.Placement()) {
			t.Fatalf("placement %s outside page range [%s,%s)",
				ref.Placement().Short(), a.Short(), b.Short())
		}
	}
	full := PageRef{Min: keyspace.Zero, Max: keyspace.Zero}
	if !full.Contains(full.Placement()) {
		t.Error("full-ring placement outside range")
	}
}

func TestPaperExample41(t *testing.T) {
	// Paper Example 4.1: R(x,y), key x. Epoch 0 inserts R(a,b), R(f,z).
	// Epoch 1 inserts R(b,c), R(e,e), R(c,f) and changes R(f,z)→R(f,a).
	// Epoch 2 inserts R(d,d). The tuple ID of R(f,a) must be ⟨f,1⟩, and the
	// catalog view at epoch 2 must contain exactly the six current tuples.
	s := rSchema(t)
	var seq0 uint32
	e0 := []Update{
		{Op: OpInsert, Row: tuple.Row{tuple.S("a"), tuple.S("b")}},
		{Op: OpInsert, Row: tuple.Row{tuple.S("f"), tuple.S("z")}},
	}
	pages0, _, err := BuildInitialPages(s, 0, e0, 100)
	if err != nil {
		t.Fatal(err)
	}
	_ = seq0

	e1 := []Update{
		{Op: OpInsert, Row: tuple.Row{tuple.S("b"), tuple.S("c")}},
		{Op: OpInsert, Row: tuple.Row{tuple.S("e"), tuple.S("e")}},
		{Op: OpInsert, Row: tuple.Row{tuple.S("c"), tuple.S("f")}},
		{Op: OpUpdate, Row: tuple.Row{tuple.S("f"), tuple.S("a")}},
	}
	var seq1 uint32
	pages1, _, err := ApplyToPage(&pages0[0], s, 1, e1, 100, &seq1)
	if err != nil {
		t.Fatal(err)
	}
	e2 := []Update{{Op: OpInsert, Row: tuple.Row{tuple.S("d"), tuple.S("d")}}}
	var seq2 uint32
	pages2, _, err := ApplyToPage(&pages1[0], s, 2, e2, 100, &seq2)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]tuple.Epoch{
		"a": 0, "f": 1, "b": 1, "e": 1, "c": 1, "d": 2,
	}
	if len(pages2[0].IDs) != len(want) {
		t.Fatalf("%d current ids, want %d", len(pages2[0].IDs), len(want))
	}
	for _, id := range pages2[0].IDs {
		vals, err := id.KeyValues()
		if err != nil {
			t.Fatal(err)
		}
		k := vals[0].Str
		if id.Epoch != want[k] {
			t.Errorf("tuple ID for %s = ⟨%s,%d⟩, want epoch %d", k, k, id.Epoch, want[k])
		}
	}
}

func TestTupleKVKeyRoundTrip(t *testing.T) {
	s := rSchema(t)
	row := tuple.Row{tuple.S("some-key\x00tricky"), tuple.S("v")}
	id := tuple.NewID(s, row, 9)
	kv := TupleKVKey(id)
	gotHash, ok := TupleKeyHash(kv)
	if !ok || gotHash != id.Hash() {
		t.Errorf("TupleKeyHash = %v, %v", gotHash, ok)
	}
	gotID, ok := TupleIDFromKVKey(kv)
	if !ok || gotID != id {
		t.Errorf("TupleIDFromKVKey = %v, %v", gotID, ok)
	}
	if _, ok := TupleIDFromKVKey([]byte("x/short")); ok {
		t.Error("bad kv key accepted")
	}
}

func TestTupleScanBounds(t *testing.T) {
	min := keyspace.FromUint64(100)
	max := keyspace.FromUint64(200)
	lo, hi, wrapped := TupleScanBounds(min, max)
	if wrapped {
		t.Error("forward range reported wrapped")
	}
	kv := TupleKVKey(tuple.ID{Key: "k", Epoch: 0})
	_ = kv
	if string(lo[:2]) != "t/" || string(hi[:2]) != "t/" {
		t.Error("bounds must carry the tuple prefix")
	}
	_, _, wrapped = TupleScanBounds(max, min)
	if !wrapped {
		t.Error("reversed range must report wrapped")
	}
	fullLo, fullHi, wrapped := TupleScanBounds(keyspace.Zero, keyspace.Zero)
	if wrapped || string(fullLo) != "t/" || string(fullHi) != "t0" {
		t.Errorf("full-ring bounds = %q %q %v", fullLo, fullHi, wrapped)
	}
}

// encodePageV1 reproduces the legacy (hash-less) page encoding so the
// decoder's back-compat path stays covered.
func encodePageV1(p *Page) []byte {
	var w writer
	w.str(p.Ref.ID.Relation)
	w.u64(uint64(p.Ref.ID.Epoch))
	w.u32(p.Ref.ID.Seq)
	w.key(p.Ref.Min)
	w.key(p.Ref.Max)
	w.uvarint(uint64(len(p.IDs)))
	for _, id := range p.IDs {
		w.u64(uint64(id.Epoch))
		w.str(id.Key)
	}
	return w.buf
}

// TestPageCodecCachesHashes checks that the v2 encoding persists each
// entry's placement hash and that decoding a legacy v1 page recomputes
// the hashes, so routing never hashes tuple IDs at scan time.
func TestPageCodecCachesHashes(t *testing.T) {
	s := rSchema(t)
	p := &Page{
		Ref: PageRef{
			ID:  PageID{Relation: "R", Epoch: 3, Seq: 7},
			Min: keyspace.FromUint64(100),
			Max: keyspace.FromUint64(900),
		},
	}
	for i := 0; i < 20; i++ {
		row := tuple.Row{tuple.S(fmt.Sprintf("k%d", i)), tuple.S("v")}
		p.IDs = append(p.IDs, tuple.NewID(s, row, tuple.Epoch(i%4)))
	}
	for name, data := range map[string][]byte{
		"v2": EncodePage(p),
		"v1": encodePageV1(p),
	} {
		got, err := DecodePage(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got.Hashes) != len(p.IDs) {
			t.Fatalf("%s: %d hashes for %d ids", name, len(got.Hashes), len(p.IDs))
		}
		for i, id := range p.IDs {
			if got.IDs[i] != id {
				t.Errorf("%s id %d: %v != %v", name, i, got.IDs[i], id)
			}
			if got.Hashes[i] != id.Hash() {
				t.Errorf("%s hash %d: %v != %v", name, i, got.Hashes[i], id.Hash())
			}
		}
	}
}

// TestBuildInitialPagesCarryHashes checks the publish path fills the
// hash cache without recomputation surprises.
func TestBuildInitialPagesCarryHashes(t *testing.T) {
	s := rSchema(t)
	var ups []Update
	for i := 0; i < 50; i++ {
		ups = append(ups, Update{Op: OpInsert, Row: tuple.Row{tuple.S(fmt.Sprintf("k%d", i)), tuple.S("v")}})
	}
	pages, _, err := BuildInitialPages(s, 1, ups, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pages {
		if len(p.Hashes) != len(p.IDs) {
			t.Fatalf("page %v: %d hashes for %d ids", p.Ref.ID, len(p.Hashes), len(p.IDs))
		}
		for i, id := range p.IDs {
			if p.Hashes[i] != id.Hash() {
				t.Fatalf("page %v entry %d: cached hash mismatch", p.Ref.ID, i)
			}
		}
	}
}

// TestDecodeTupleRecordCols checks the columnar record decode against the
// row-building decoder.
func TestDecodeTupleRecordCols(t *testing.T) {
	s, err := tuple.NewSchema("m", []tuple.Column{
		{Name: "k", Type: tuple.String},
		{Name: "n", Type: tuple.Int64},
		{Name: "x", Type: tuple.Float64},
	}, "k")
	if err != nil {
		t.Fatal(err)
	}
	b := tuple.NewBatch(s)
	var want []tuple.Row
	for i := 0; i < 30; i++ {
		row := tuple.Row{tuple.S(fmt.Sprintf("key-%d", i)), tuple.I(int64(i)), tuple.F(float64(i) / 3)}
		rec := TupleRecord{ID: tuple.NewID(s, row, 2), Row: row}
		data, err := EncodeTupleRecord(s, rec)
		if err != nil {
			t.Fatal(err)
		}
		if err := DecodeTupleRecordCols(s, data, b); err != nil {
			t.Fatal(err)
		}
		want = append(want, row)
	}
	got := b.Rows()
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("row %d: got %v want %v", i, got[i], want[i])
		}
	}
}
