package server

import (
	"context"

	"orchestra/internal/engine"
	"orchestra/internal/tuple"
)

// Backend is the deployment the server fronts: an embedded orchestra
// Cluster (adapter in the root package) or a real TCP cluster.Node
// (NodeBackend below).
type Backend interface {
	// Create registers a relation and returns the current epoch.
	Create(ctx context.Context, req *CreateRequest) (tuple.Epoch, error)
	// Publish applies one batch and returns the new epoch.
	Publish(ctx context.Context, req *PublishRequest) (tuple.Epoch, error)
	// Query executes one SQL query against a snapshot.
	Query(ctx context.Context, req *QueryRequest) (*QueryResponse, error)
	// Catalog describes one relation (or all known ones when rel == "").
	Catalog(ctx context.Context, rel string) (*SchemaResponse, error)
	// Epoch is the backend's current view of the global epoch.
	Epoch() tuple.Epoch
	// Info identifies the serving node.
	Info() BackendInfo
}

// BackendInfo identifies the deployment behind a server.
type BackendInfo struct {
	NodeID  string
	Members int
}

// RecoveryMode maps a wire recovery-mode name to the engine constant.
func RecoveryMode(name string) (engine.RecoveryMode, error) {
	switch name {
	case "", "restart":
		return engine.RecoverRestart, nil
	case "fail":
		return engine.RecoverFail, nil
	case "incremental":
		return engine.RecoverIncremental, nil
	}
	return 0, Errorf(CodeBadRequest, "unknown recovery mode %q", name)
}
