package server

import (
	"context"

	"orchestra/internal/cluster"
	"orchestra/internal/engine"
	"orchestra/internal/kvstore"
	"orchestra/internal/obs"
	"orchestra/internal/tuple"
)

// Backend is the deployment the server fronts: an embedded orchestra
// Cluster (adapter in the root package) or a real TCP cluster.Node
// (NodeBackend below).
type Backend interface {
	// Create registers a relation and returns the current epoch.
	Create(ctx context.Context, req *CreateRequest) (tuple.Epoch, error)
	// Publish applies one batch and returns the new epoch.
	Publish(ctx context.Context, req *PublishRequest) (tuple.Epoch, error)
	// Query executes one SQL query against a snapshot.
	Query(ctx context.Context, req *QueryRequest) (*QueryResponse, error)
	// Catalog describes one relation (or all known ones when rel == "").
	Catalog(ctx context.Context, rel string) (*SchemaResponse, error)
	// Epoch is the backend's current view of the global epoch.
	Epoch() tuple.Epoch
	// Info identifies the serving node.
	Info() BackendInfo
}

// BackendInfo identifies the deployment behind a server.
type BackendInfo struct {
	NodeID  string
	Members int
	// Peers lists the deployment's advertised client endpoints (for the
	// health/status member list), when the backend knows them.
	Peers []string
}

// ResultStream receives a query's result incrementally: the column shape
// once, then zero or more row batches. The server's implementation
// re-chunks batches to the wire's size bounds and applies flow-control
// backpressure, so backends may emit batches of any size, as soon as
// they are produced. Emitted rows are referenced, not copied — backends
// must not mutate them afterwards.
type ResultStream interface {
	// Columns announces the output column names; called exactly once,
	// before any Batch.
	Columns(cols []string) error
	// Batch emits a slice of result rows.
	Batch(rows []tuple.Row) error
}

// BatchStream is optionally implemented by a ResultStream that can
// consume columnar tuple batches directly — the allocation-lean hand-off
// for backends whose engine produces column vectors. The server's stream
// writer implements it: wire batch frames are encoded straight from the
// vectors (re-slicing columns to fit the frame size hints), producing
// byte-identical frames to the row path for identical content. Batches
// are borrowed: the backend may recycle them after the call returns, so
// implementations must not retain the batch or its vectors.
type BatchStream interface {
	ResultStream
	// Batches emits a columnar batch of result rows.
	Batches(b *tuple.Batch) error
}

// QueryTail is the terminal metadata of a streamed query — everything a
// QueryResponse carries except the rows themselves. The JSON tags are
// its wire form inside a StreamEnd frame.
type QueryTail struct {
	Epoch    uint64 `json:"epoch,omitempty"`
	Cached   bool   `json:"cached,omitempty"`
	Phases   uint32 `json:"phases,omitempty"`
	Restarts int    `json:"restarts,omitempty"`
	Plan     string `json:"plan,omitempty"`
	// TraceID/Trace carry the query's span tree when tracing was
	// requested — the streamed counterpart of QueryResponse's fields.
	TraceID string    `json:"trace_id,omitempty"`
	Trace   *obs.Span `json:"trace,omitempty"`
	// Streamed counts rows that were emitted to the stream *during*
	// execution (zero on the collect-then-emit path). Nonzero means the
	// query ran on the streaming pushdown path end to end.
	Streamed int64 `json:"streamed,omitempty"`
}

// StreamingBackend is implemented by backends that can emit query
// results incrementally. Backends without it still serve streamed
// requests via the buffered Query path (the server re-chunks), but pay
// the full materialization of the wire representation.
type StreamingBackend interface {
	Backend
	// QueryStream executes one query, emitting results through out, and
	// returns the terminal metadata. On error, frames already emitted
	// are followed by an error End frame — partial results are
	// explicitly invalidated for the client.
	QueryStream(ctx context.Context, req *QueryRequest, out ResultStream) (*QueryTail, error)
}

// CacheStatsProvider is optionally implemented by backends that expose
// cache counters (the view cache, the decoded-page LRU); the status op
// reports them when present.
type CacheStatsProvider interface {
	CacheStats() map[string]engine.CacheStats
}

// DurabilityStatsProvider is optionally implemented by backends whose
// local store is durable (WAL + snapshots); the status op reports the
// store's recovery/fsync counters when present and ok is true.
type DurabilityStatsProvider interface {
	DurabilityStats() (kvstore.DurabilityStats, bool)
}

// ReplStatsProvider is optionally implemented by backends that can
// report replica-repair health (WAL-shipping catch-up, anti-entropy,
// per-peer lag); the status op and /metrics report it when present and
// ok is true.
type ReplStatsProvider interface {
	ReplStats() (cluster.ReplStats, bool)
}

// RecoveryMode maps a wire recovery-mode name to the engine constant.
func RecoveryMode(name string) (engine.RecoveryMode, error) {
	switch name {
	case "", "restart":
		return engine.RecoverRestart, nil
	case "fail":
		return engine.RecoverFail, nil
	case "incremental":
		return engine.RecoverIncremental, nil
	}
	return 0, Errorf(CodeBadRequest, "unknown recovery mode %q", name)
}
