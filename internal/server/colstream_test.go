package server

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"testing"

	"orchestra/internal/tuple"
)

// colsStreamStub is a StreamingBackend that emits through the columnar
// BatchStream hand-off.
type colsStreamStub struct {
	stubBackend
	cols    []string
	batches []*tuple.Batch
	tail    QueryTail
}

func (b *colsStreamStub) QueryStream(ctx context.Context, req *QueryRequest, out ResultStream) (*QueryTail, error) {
	if err := out.Columns(b.cols); err != nil {
		return nil, err
	}
	bs, ok := out.(BatchStream)
	if !ok {
		return nil, fmt.Errorf("stream is not batch-aware")
	}
	for _, batch := range b.batches {
		if err := bs.Batches(batch); err != nil {
			return nil, err
		}
	}
	t := b.tail
	return &t, nil
}

// identRows builds a deterministic mixed-width row set: int, float, and a
// string column whose lengths vary, so both the fixed-width and the
// per-row-hint cut paths run.
func identRows(n int) []tuple.Row {
	rows := make([]tuple.Row, n)
	for i := range rows {
		rows[i] = tuple.Row{
			tuple.I(int64(i * 7)),
			tuple.F(float64(i) / 3),
			tuple.S(fmt.Sprintf("value-%d-%s", i, "xxxxxxxxxxxxxxxxxxxxxxxxxxxxx"[:i%29])),
		}
	}
	return rows
}

// identRowsFixed is the all-fixed-width variant (no string column).
func identRowsFixed(n int) []tuple.Row {
	rows := make([]tuple.Row, n)
	for i := range rows {
		rows[i] = tuple.Row{tuple.I(int64(i)), tuple.F(float64(i) * 1.5), tuple.I(int64(i % 3))}
	}
	return rows
}

func batchesOf(t *testing.T, rows []tuple.Row, sizes ...int) []*tuple.Batch {
	t.Helper()
	var out []*tuple.Batch
	lo := 0
	for _, n := range sizes {
		hi := lo + n
		if hi > len(rows) {
			hi = len(rows)
		}
		b := &tuple.Batch{}
		types := make([]tuple.Type, len(rows[0]))
		for i, v := range rows[0] {
			types[i] = v.T
		}
		b.ResetTypes(types)
		for _, r := range rows[lo:hi] {
			if err := b.AppendRow(r); err != nil {
				t.Fatal(err)
			}
		}
		out = append(out, b)
		lo = hi
	}
	if lo < len(rows) {
		t.Fatalf("sizes cover %d of %d rows", lo, len(rows))
	}
	return out
}

// capturedFrame is one raw frame read off a streamed query.
type capturedFrame struct {
	kind    FrameKind
	payload []byte
}

// captureStream runs one streamed query against backend and returns every
// frame until (and including) End. window is made large enough that no
// credits are needed.
func captureStream(t *testing.T, backend Backend, reqID uint64) []capturedFrame {
	t.Helper()
	s := startTestServer(t, backend, Config{MaxFrame: 64 << 10, StreamWindow: 4096})
	conn := dialTest(t, s)
	br := bufio.NewReader(conn)
	doHello(t, conn, br, &HelloRequest{Version: ProtocolVersion, Features: []string{FeatureBinaryStream}, Window: 4096})
	if err := WriteFrame(conn, &Request{ID: reqID, Op: OpQuery, Query: &QueryRequest{SQL: "q", Stream: true}}); err != nil {
		t.Fatal(err)
	}
	var frames []capturedFrame
	for {
		kind, payload, _, err := ReadRawFrame(br, MaxFrame)
		if err != nil {
			t.Fatalf("read frame %d: %v", len(frames), err)
		}
		frames = append(frames, capturedFrame{kind, append([]byte(nil), payload...)})
		if kind == FrameEnd {
			return frames
		}
	}
}

// TestStreamFramesRowVsBatchIdentical asserts the acceptance-critical
// property of the columnar wire path: for identical result content, the
// row-fed and batch-fed stream writers emit byte-identical frames —
// same chunk cuts, same encodings, same compression decisions.
func TestStreamFramesRowVsBatchIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		rows []tuple.Row
	}{
		{"variable-width", identRows(3000)},
		{"fixed-width", identRowsFixed(5000)},
		{"single-row", identRows(1)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const reqID = 4242
			rowStub := &streamStub{
				cols:    []string{"a", "b", "c"},
				batches: [][]tuple.Row{tc.rows[:len(tc.rows)/3], tc.rows[len(tc.rows)/3:]},
				tail:    QueryTail{Epoch: 9},
			}
			colStub := &colsStreamStub{
				cols:    []string{"a", "b", "c"},
				batches: batchesOf(t, tc.rows, len(tc.rows)/3, len(tc.rows)-len(tc.rows)/3),
				tail:    QueryTail{Epoch: 9},
			}
			rowFrames := captureStream(t, rowStub, reqID)
			colFrames := captureStream(t, colStub, reqID)
			if len(rowFrames) != len(colFrames) {
				t.Fatalf("row path emitted %d frames, batch path %d", len(rowFrames), len(colFrames))
			}
			if len(rowFrames) < 3 && tc.name != "single-row" {
				t.Fatalf("only %d frames: workload too small to exercise chunking", len(rowFrames))
			}
			for i := range rowFrames {
				if rowFrames[i].kind != colFrames[i].kind {
					t.Fatalf("frame %d: kind %v vs %v", i, rowFrames[i].kind, colFrames[i].kind)
				}
				if !bytes.Equal(rowFrames[i].payload, colFrames[i].payload) {
					t.Fatalf("frame %d (%v): payloads differ (%d vs %d bytes)",
						i, rowFrames[i].kind, len(rowFrames[i].payload), len(colFrames[i].payload))
				}
			}
		})
	}
}

// publishRecorder captures what the backend was handed.
type publishRecorder struct {
	stubBackend
	relation string
	typed    []tuple.Row
	anyRows  [][]any
}

func (b *publishRecorder) Publish(ctx context.Context, req *PublishRequest) (tuple.Epoch, error) {
	b.relation = req.Relation
	b.typed = req.TypedRows
	b.anyRows = req.Rows
	return 7, nil
}

// TestBinaryPublishFrame sends a FramePublish and checks the backend
// receives typed rows, no JSON coercion involved.
func TestBinaryPublishFrame(t *testing.T) {
	rec := &publishRecorder{}
	s := startTestServer(t, rec, Config{})
	conn := dialTest(t, s)
	br := bufio.NewReader(conn)
	h := doHello(t, conn, br, &HelloRequest{
		Version:  ProtocolVersion,
		Features: []string{FeatureBinaryStream, FeatureBinaryPublish},
	})
	found := false
	for _, f := range h.Features {
		found = found || f == FeatureBinaryPublish
	}
	if !found {
		t.Fatalf("server did not negotiate %s: %v", FeatureBinaryPublish, h.Features)
	}

	rows := []tuple.Row{
		{tuple.S("bolt"), tuple.I(90)},
		{tuple.S("nut"), tuple.I(120)},
	}
	payload, err := AppendPublishPayload(nil, 31, 0, "inv", rows, -1)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := AppendBinaryFrame(nil, FramePublish, payload, MaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := readAnyResponse(br, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != 31 || resp.Error != nil || resp.Epoch != 7 {
		t.Fatalf("publish response: %+v", resp)
	}
	if rec.relation != "inv" || rec.anyRows != nil {
		t.Fatalf("backend saw relation=%q anyRows=%v", rec.relation, rec.anyRows)
	}
	if len(rec.typed) != 2 || rec.typed[0][0].Str != "bolt" || rec.typed[1][1].I64 != 120 {
		t.Fatalf("typed rows: %v", rec.typed)
	}

	// A malformed publish frame with a readable ID answers bad_request on
	// that ID and keeps the connection usable.
	bad := AppendCancelPayload(nil, 32) // ID but no relation/batch
	frame, err = AppendBinaryFrame(nil, FramePublish, bad, MaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	if err := readAnyResponse(br, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != 32 || resp.Error == nil || resp.Error.Code != CodeBadRequest {
		t.Fatalf("malformed publish response: %+v", resp)
	}
	// Connection still fine: ping round-trips.
	if err := WriteFrame(conn, &Request{ID: 33, Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	resp = Response{}
	if err := readAnyResponse(br, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != 33 || resp.Error != nil {
		t.Fatalf("ping after bad publish: %+v", resp)
	}
}
