package server

// Binary streaming extension (negotiated via OpHello, FeatureBinaryStream).
//
// Framing: every frame still starts with a 4-byte big-endian length, but a
// frame with the high bit of the length set is a *tagged binary frame*: the
// first payload byte is a FrameKind, the rest is kind-specific. Legacy JSON
// frames never set the bit (MaxFrame caps lengths far below it), so both
// framings coexist on one connection and old peers are never confused — a
// peer only sends tagged frames after hello succeeds.
//
// A streamed query result is the frame sequence
//
//	Schema(id, columns) Batch(id, rows)* End(id, tail|error)
//
// where each Batch carries a column-major tuple batch (tuple.EncodeBatch
// format: row count, arity, per-column type tags, optional flate). Frames of
// concurrent streams interleave freely on a connection — every frame carries
// its request ID. Backpressure is credit-based: the server may have at most
// `window` un-acknowledged batch frames in flight per stream and the client
// returns one credit per batch it consumes (Credit frames), so a slow reader
// bounds server-side buffering at window × batch size instead of the old
// buffer-the-whole-result MaxFrame cap.

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"orchestra/internal/tuple"
)

// FrameKind tags a binary frame's payload.
type FrameKind byte

const (
	// FrameJSON is a JSON Request/Response (also the implicit kind of
	// every legacy untagged frame).
	FrameJSON FrameKind = 0
	// FrameSchema opens a result stream: request ID + column names.
	FrameSchema FrameKind = 1
	// FrameBatch carries one columnar row batch: request ID + batch.
	FrameBatch FrameKind = 2
	// FrameEnd closes a result stream: request ID + JSON StreamEnd.
	FrameEnd FrameKind = 3
	// FrameCredit grants stream flow-control credits: request ID + count.
	FrameCredit FrameKind = 4
	// FrameCancel abandons a result stream: request ID only. The server
	// stops emitting batches, releases the query's resources, and still
	// terminates the stream with an End frame (code "cancelled"), so the
	// connection and its negotiated state remain usable. A cancel for an
	// unknown or already-ended stream is a no-op.
	FrameCancel FrameKind = 5
	// FramePublish carries one publish as a typed column-major batch:
	// request ID + relation + tuple batch (negotiated via
	// FeatureBinaryPublish; answered with a normal JSON Response).
	FramePublish FrameKind = 6
)

func (k FrameKind) String() string {
	switch k {
	case FrameJSON:
		return "json"
	case FrameSchema:
		return "schema"
	case FrameBatch:
		return "batch"
	case FrameEnd:
		return "end"
	case FrameCredit:
		return "credit"
	case FrameCancel:
		return "cancel"
	case FramePublish:
		return "publish"
	default:
		return fmt.Sprintf("kind(%d)", byte(k))
	}
}

// binaryFrameBit marks a tagged binary frame in the length header.
const binaryFrameBit = uint32(1) << 31

// Stream tuning defaults (server side; window is negotiated down by hello).
const (
	// DefaultStreamWindow is the default per-stream credit window, in
	// batch frames.
	DefaultStreamWindow = 8
	// defaultStreamBatchBytes is the target encoded size of one batch
	// frame (pre-compression).
	defaultStreamBatchBytes = 256 << 10
	// defaultStreamCompressMin is the raw batch size at which flate
	// compression kicks in on the wire path; small batches are cheaper to
	// send than to compress.
	defaultStreamCompressMin = 4 << 10
	// maxStreamBatchRows caps rows per batch frame so decode-side
	// allocations stay bounded regardless of row width.
	maxStreamBatchRows = 4096
)

// StreamEnd is the JSON payload of a FrameEnd: the query's terminal
// status and provenance/epoch metadata (or its error).
type StreamEnd struct {
	Error *WireError `json:"error,omitempty"`
	QueryTail
	// Rows and Batches summarize the stream for integrity checks.
	Rows    int64 `json:"rows,omitempty"`
	Batches int   `json:"batches,omitempty"`
}

// --- raw frame I/O ---

// frameBufPool recycles frame build buffers across requests and batches.
var frameBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 8<<10)
		return &b
	},
}

// maxPooledFrameBuf bounds what returns to the pool: one huge buffered
// response must not permanently pin its capacity in every session.
const maxPooledFrameBuf = 1 << 20

func getFrameBuf() *[]byte { return frameBufPool.Get().(*[]byte) }

func putFrameBuf(b *[]byte) {
	if cap(*b) > maxPooledFrameBuf {
		return // let the outlier be collected
	}
	*b = (*b)[:0]
	frameBufPool.Put(b)
}

// ReadRawFrame reads one frame of either framing. It returns the frame's
// kind (FrameJSON for legacy frames), its payload (excluding the kind
// byte), and whether the frame was binary-tagged. Oversized frames return
// a *FrameSizeError; the connection cannot be re-synchronized afterwards.
func ReadRawFrame(r io.Reader, maxFrame int64) (FrameKind, []byte, bool, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, false, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	isBinary := n&binaryFrameBit != 0
	n &^= binaryFrameBit
	if int64(n) > maxFrame {
		return 0, nil, isBinary, &FrameSizeError{Size: int64(n), Max: maxFrame}
	}
	if isBinary && n == 0 {
		return 0, nil, true, errors.New("server: empty binary frame")
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, isBinary, err
	}
	if !isBinary {
		return FrameJSON, body, false, nil
	}
	return FrameKind(body[0]), body[1:], true, nil
}

// beginBinaryFrame appends a placeholder header + kind byte to dst and
// returns the extended slice plus the header offset for finishBinaryFrame.
func beginBinaryFrame(dst []byte, kind FrameKind) ([]byte, int) {
	mark := len(dst)
	return append(dst, 0, 0, 0, 0, byte(kind)), mark
}

// finishBinaryFrame back-fills the tagged length header begun at mark.
func finishBinaryFrame(dst []byte, mark int, maxFrame int64) ([]byte, error) {
	n := len(dst) - mark - 4 // kind byte + payload
	if int64(n) > maxFrame {
		return nil, &FrameSizeError{Size: int64(n), Max: maxFrame}
	}
	binary.BigEndian.PutUint32(dst[mark:mark+4], uint32(n)|binaryFrameBit)
	return dst, nil
}

// AppendBinaryFrame appends one tagged frame carrying payload.
func AppendBinaryFrame(dst []byte, kind FrameKind, payload []byte, maxFrame int64) ([]byte, error) {
	dst, mark := beginBinaryFrame(dst, kind)
	dst = append(dst, payload...)
	return finishBinaryFrame(dst, mark, maxFrame)
}

// AppendTaggedJSONFrame appends a binary-tagged FrameJSON frame for v.
func AppendTaggedJSONFrame(dst []byte, v any, maxFrame int64) ([]byte, error) {
	dst, mark := beginBinaryFrame(dst, FrameJSON)
	var err error
	dst, err = appendJSON(dst, v)
	if err != nil {
		return nil, err
	}
	return finishBinaryFrame(dst, mark, maxFrame)
}

// --- stream frame payload codecs ---
//
// Every stream payload begins with the 8-byte big-endian request ID.

// AppendSchemaPayload encodes a FrameSchema payload.
func AppendSchemaPayload(dst []byte, id uint64, cols []string) []byte {
	dst = binary.BigEndian.AppendUint64(dst, id)
	dst = binary.AppendUvarint(dst, uint64(len(cols)))
	for _, c := range cols {
		dst = binary.AppendUvarint(dst, uint64(len(c)))
		dst = append(dst, c...)
	}
	return dst
}

// DecodeSchemaPayload reverses AppendSchemaPayload.
func DecodeSchemaPayload(p []byte) (id uint64, cols []string, err error) {
	id, rest, err := splitStreamID(p)
	if err != nil {
		return 0, nil, err
	}
	n, k := binary.Uvarint(rest)
	if k <= 0 || n > 1<<16 {
		return 0, nil, errors.New("server: bad schema frame column count")
	}
	rest = rest[k:]
	cols = make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		l, k := binary.Uvarint(rest)
		if k <= 0 || l > uint64(len(rest)-k) {
			return 0, nil, errors.New("server: truncated schema frame")
		}
		cols = append(cols, string(rest[k:k+int(l)]))
		rest = rest[k+int(l):]
	}
	return id, cols, nil
}

// AppendCreditPayload encodes a FrameCredit payload granting n credits.
func AppendCreditPayload(dst []byte, id uint64, n int) []byte {
	dst = binary.BigEndian.AppendUint64(dst, id)
	return binary.AppendUvarint(dst, uint64(n))
}

// DecodeCreditPayload reverses AppendCreditPayload.
func DecodeCreditPayload(p []byte) (id uint64, n int, err error) {
	id, rest, err := splitStreamID(p)
	if err != nil {
		return 0, 0, err
	}
	v, k := binary.Uvarint(rest)
	if k <= 0 || v == 0 || v > 1<<20 {
		return 0, 0, errors.New("server: bad credit frame")
	}
	return id, int(v), nil
}

// AppendCancelPayload encodes a FrameCancel payload.
func AppendCancelPayload(dst []byte, id uint64) []byte {
	return binary.BigEndian.AppendUint64(dst, id)
}

// AppendPublishPayload encodes a FramePublish payload: request ID, the
// publish idempotency ID (0 = none), relation name, and the rows as one
// column-major tuple batch.
func AppendPublishPayload(dst []byte, id, pubID uint64, relation string, rows []tuple.Row, minCompress int) ([]byte, error) {
	dst = binary.BigEndian.AppendUint64(dst, id)
	dst = binary.BigEndian.AppendUint64(dst, pubID)
	dst = binary.AppendUvarint(dst, uint64(len(relation)))
	dst = append(dst, relation...)
	return tuple.AppendBatch(dst, rows, minCompress)
}

// DecodePublishPayload reverses AppendPublishPayload.
func DecodePublishPayload(p []byte) (id, pubID uint64, relation string, rows []tuple.Row, err error) {
	id, rest, err := splitStreamID(p)
	if err != nil {
		return 0, 0, "", nil, err
	}
	if len(rest) < 8 {
		return 0, 0, "", nil, errors.New("server: publish frame too short")
	}
	pubID = binary.BigEndian.Uint64(rest[:8])
	rest = rest[8:]
	l, k := binary.Uvarint(rest)
	if k <= 0 || l > tuple.MaxRelationNameLen || l > uint64(len(rest)-k) {
		return 0, 0, "", nil, errors.New("server: bad publish frame relation")
	}
	relation = string(rest[k : k+int(l)])
	rows, err = tuple.DecodeBatch(rest[k+int(l):])
	if err != nil {
		return 0, 0, "", nil, fmt.Errorf("server: bad publish frame batch: %w", err)
	}
	return id, pubID, relation, rows, nil
}

// splitStreamID splits the leading request ID off a stream payload.
func splitStreamID(p []byte) (uint64, []byte, error) {
	if len(p) < 8 {
		return 0, nil, errors.New("server: stream frame too short")
	}
	return binary.BigEndian.Uint64(p[:8]), p[8:], nil
}

// StreamFrameID reads the request ID of any stream frame payload.
func StreamFrameID(p []byte) (uint64, error) {
	id, _, err := splitStreamID(p)
	return id, err
}

// DecodeBatchPayload decodes a FrameBatch payload into rows.
func DecodeBatchPayload(p []byte) (id uint64, rows []tuple.Row, err error) {
	id, rest, err := splitStreamID(p)
	if err != nil {
		return 0, nil, err
	}
	rows, err = tuple.DecodeBatch(rest)
	return id, rows, err
}

// DecodeBatchPayloadAny decodes a FrameBatch payload straight into boxed
// []any rows — the client's consumption form, skipping the typed Row
// intermediate.
func DecodeBatchPayloadAny(p []byte) (id uint64, rows [][]any, err error) {
	id, rest, err := splitStreamID(p)
	if err != nil {
		return 0, nil, err
	}
	rows, err = tuple.DecodeBatchAny(rest)
	return id, rows, err
}

// DecodeEndPayload decodes a FrameEnd payload.
func DecodeEndPayload(p []byte) (id uint64, end *StreamEnd, err error) {
	id, rest, err := splitStreamID(p)
	if err != nil {
		return 0, nil, err
	}
	end = &StreamEnd{}
	if err := json.Unmarshal(rest, end); err != nil {
		return 0, nil, fmt.Errorf("server: bad end frame: %w", err)
	}
	return id, end, nil
}

// --- server-side stream writer ---

// streamWriter emits one query's result stream over a session. It
// implements ResultStream for backends: backends hand it row slices as
// the engine produces them; the writer re-chunks them into size-bounded,
// type-homogeneous wire batches, encodes each into a pooled buffer, and
// blocks for flow-control credit when the window is exhausted.
type streamWriter struct {
	ctx     context.Context
	sess    *session
	id      uint64
	window  int         // negotiated credit window (batch frames)
	credits chan uint64 // replenished by the session's read loop

	maxFrame    int64
	targetBytes int // soft cut point for one batch (pre-compression)
	compressMin int // raw bytes at which flate kicks in (<0: never)

	started bool // schema frame sent
	avail   int  // send credits remaining
	rows    int64
	batches int

	// cancelled latches when a FrameCancel arrives; cancelFn (set by
	// dispatchStream before the stream registers) aborts the query
	// context so a running execution or a credit wait unblocks.
	cancelled atomic.Bool
	cancelFn  context.CancelFunc

	// onFirst (set by dispatchStream) fires once, after the first batch
	// frame reaches the session writer — the server's first-byte moment
	// for latency accounting.
	onFirst func()

	pending  []tuple.Row  // rows accumulated toward the next batch frame
	pendSize int          // size hint of pending (rows or columnar)
	sig      []tuple.Type // type signature of pending content
	sigFixed int          // bytes per row when sig has no strings (else 0)

	// pendCols stages columnar batches toward the next frame (the
	// Batches path); at most one of pending/pendCols is non-empty. slice
	// is the scratch view used to carve spans off inbound batches.
	pendCols *tuple.Batch
	slice    tuple.Batch
}

func newStreamWriter(ctx context.Context, sess *session, id uint64, window int) *streamWriter {
	maxFrame := sess.limits().maxFrame
	target := defaultStreamBatchBytes
	// Leave generous headroom under the frame cap: compression is applied
	// after the cut, but incompressible data must still fit.
	if lim := int(maxFrame / 4); lim > 0 && target > lim {
		target = lim
	}
	compressMin := sess.srv.cfg.StreamCompressMin
	if compressMin == 0 {
		compressMin = defaultStreamCompressMin
	}
	if window < 1 {
		window = 1
	}
	return &streamWriter{
		ctx:    ctx,
		sess:   sess,
		id:     id,
		window: window,
		// Sized to the window: a well-behaved client never has more
		// un-drained credits in flight than un-acknowledged batches, so
		// nothing legitimate is ever dropped by credit().
		credits:     make(chan uint64, window),
		maxFrame:    maxFrame,
		targetBytes: target,
		compressMin: compressMin,
		avail:       window,
	}
}

// Columns implements ResultStream: announces the result shape. Must be
// called once, before any Batch.
func (w *streamWriter) Columns(cols []string) error {
	if w.started {
		return errors.New("server: stream schema already sent")
	}
	w.started = true
	buf := getFrameBuf()
	defer putFrameBuf(buf)
	dst, mark := beginBinaryFrame((*buf)[:0], FrameSchema)
	dst = AppendSchemaPayload(dst, w.id, cols)
	dst, err := finishBinaryFrame(dst, mark, w.maxFrame)
	if err != nil {
		return err
	}
	*buf = dst[:0]
	return w.sess.write(dst)
}

// Batch implements ResultStream: stages rows for emission. Rows are
// referenced, not copied — callers must not mutate them afterwards.
//
// Rows are staged span-wise, not one at a time: the writer finds the
// longest run matching the pending batch's type signature and budget and
// appends it in one copy. For fixed-width signatures (no string columns)
// the per-row size hint collapses to a multiplication, so handing a whole
// engine batch to the frame encoder costs one signature scan per span.
func (w *streamWriter) Batch(rows []tuple.Row) error {
	if !w.started {
		return errors.New("server: stream batch before schema")
	}
	if w.pendCols != nil && w.pendCols.N > 0 {
		// Mode switch mid-stream: cut the staged columnar batch first.
		if err := w.flushCols(); err != nil {
			return err
		}
	}
	for i := 0; i < len(rows); {
		if len(w.pending) == 0 {
			w.setSig(rows[i]) // first row of a batch defines its signature
		}
		j := i
		budget := w.targetBytes - w.pendSize
		roomRows := maxStreamBatchRows - len(w.pending)
		if fixed := w.sigFixed; fixed > 0 {
			// The row that crosses the target still goes into the batch,
			// mirroring the append-then-check cut of the variable path.
			n := budget/fixed + 1
			if n > roomRows {
				n = roomRows
			}
			for j < len(rows) && j-i < n && w.sigMatches(rows[j]) {
				j++
			}
			w.pendSize += (j - i) * fixed
		} else {
			for j < len(rows) && budget > 0 && j-i < roomRows && w.sigMatches(rows[j]) {
				h := tuple.RowSizeHint(rows[j])
				w.pendSize += h
				budget -= h
				j++
			}
		}
		w.pending = append(w.pending, rows[i:j]...)
		moved := j > i
		i = j
		if w.pendSize >= w.targetBytes || len(w.pending) >= maxStreamBatchRows ||
			(i < len(rows) && (!moved || !w.sigMatches(rows[i]))) {
			if err := w.flush(); err != nil {
				return err
			}
		}
	}
	// The opening frame is cut at the first emission boundary rather than
	// held for a full target-size batch: time-to-first-byte matters more
	// than frame efficiency for the first frame, and a streamed backend's
	// first chunk may otherwise sit staged while the scan fills the target.
	// Steady-state frames keep the targetBytes/maxStreamBatchRows cut.
	if w.batches == 0 && len(w.pending) > 0 {
		return w.flush()
	}
	return nil
}

// stagingBatchPool recycles the columnar staging buffers across streams.
var stagingBatchPool = sync.Pool{New: func() any { return &tuple.Batch{} }}

// Batches implements BatchStream: stages a columnar batch for emission,
// carving frame-sized spans straight off the column vectors — no row is
// materialized anywhere on this path. The cut arithmetic mirrors Batch's
// exactly, so identical row content produces byte-identical frames on
// either path (asserted by TestStreamFramesRowVsBatchIdentical). The
// batch is borrowed: the caller may reuse it once the call returns.
func (w *streamWriter) Batches(b *tuple.Batch) error {
	if !w.started {
		return errors.New("server: stream batch before schema")
	}
	if b.N == 0 {
		return nil
	}
	if len(w.pending) > 0 {
		// Mode switch mid-stream (a backend mixing row and columnar
		// emissions): cut the pending row batch first.
		if err := w.flush(); err != nil {
			return err
		}
	}
	if w.pendCols == nil {
		w.pendCols = stagingBatchPool.Get().(*tuple.Batch)
		w.pendCols.ResetTypes(nil)
	}
	types := b.Types()
	for i := 0; i < b.N; {
		if w.pendCols.N == 0 {
			w.setSigTypes(types)
		} else if !w.colSigMatches(types) {
			if err := w.flushCols(); err != nil {
				return err
			}
			w.setSigTypes(types)
		}
		j := i
		budget := w.targetBytes - w.pendSize
		roomRows := maxStreamBatchRows - w.pendCols.N
		if fixed := w.sigFixed; fixed > 0 {
			// The row that crosses the target still goes into the batch,
			// mirroring the row path's append-then-check cut.
			n := budget/fixed + 1
			if n > roomRows {
				n = roomRows
			}
			if j += n; j > b.N {
				j = b.N
			}
			w.pendSize += (j - i) * fixed
		} else {
			for j < b.N && budget > 0 && j-i < roomRows {
				h := w.colRowSizeHint(b, j)
				w.pendSize += h
				budget -= h
				j++
			}
		}
		if j > i {
			b.Slice(i, j, &w.slice)
			if err := w.pendCols.AppendBatchInto(&w.slice); err != nil {
				return err
			}
		}
		i = j
		if w.pendSize >= w.targetBytes || w.pendCols.N >= maxStreamBatchRows || i < b.N {
			if err := w.flushCols(); err != nil {
				return err
			}
		}
	}
	// Eager opening-frame cut, mirroring Batch (see the comment there).
	if w.batches == 0 && w.pendCols != nil && w.pendCols.N > 0 {
		return w.flushCols()
	}
	return nil
}

// setSigTypes records the type signature (and fixed row width, when no
// string column exists) of the batch about to be staged. Strings reuse
// per-row hints; the hint constants mirror setSig/RowSizeHint.
func (w *streamWriter) setSigTypes(types []tuple.Type) {
	w.sig = append(w.sig[:0], types...)
	fixed, variable := 0, false
	for _, t := range types {
		switch t {
		case tuple.Int64:
			fixed += 5
		case tuple.Float64:
			fixed += 8
		default:
			variable = true
		}
	}
	if variable {
		fixed = 0
	}
	w.sigFixed = fixed
}

// colSigMatches reports whether the inbound batch's types match the
// staged signature.
func (w *streamWriter) colSigMatches(types []tuple.Type) bool {
	if len(types) != len(w.sig) {
		return false
	}
	for i, t := range types {
		if t != w.sig[i] {
			return false
		}
	}
	return true
}

// colRowSizeHint estimates row i's encoded size from the column vectors
// (same constants as tuple.RowSizeHint).
func (w *streamWriter) colRowSizeHint(b *tuple.Batch, i int) int {
	n := 0
	for c := range b.Cols {
		switch b.Cols[c].T {
		case tuple.Int64:
			n += 5
		case tuple.Float64:
			n += 8
		case tuple.String:
			n += len(b.Cols[c].Str[i]) + 2
		}
	}
	return n
}

// flushCols encodes and sends the staged columnar rows as one batch
// frame, straight from the vectors.
func (w *streamWriter) flushCols() error {
	if w.cancelled.Load() {
		if w.pendCols != nil {
			w.pendCols.Truncate(0)
		}
		w.pendSize = 0
		return errStreamCancelled
	}
	if w.pendCols == nil || w.pendCols.N == 0 {
		return nil
	}
	if err := w.waitCredit(); err != nil {
		return err
	}
	buf := getFrameBuf()
	defer putFrameBuf(buf)
	dst, mark := beginBinaryFrame((*buf)[:0], FrameBatch)
	dst = binary.BigEndian.AppendUint64(dst, w.id)
	dst, err := tuple.AppendBatchCols(dst, w.pendCols, w.compressMin)
	if err != nil {
		return err
	}
	dst, err = finishBinaryFrame(dst, mark, w.maxFrame)
	if err != nil {
		return err
	}
	w.rows += int64(w.pendCols.N)
	w.batches++
	w.pendCols.Truncate(0)
	w.pendSize = 0
	*buf = dst[:0]
	return w.writeBatchFrame(dst)
}

// releaseStaging returns the columnar staging buffer to the pool (the
// stream has ended; nothing further will be staged).
func (w *streamWriter) releaseStaging() {
	if w.pendCols != nil {
		w.pendCols.Truncate(0)
		w.pendCols.ClearStrings() // don't pin result strings while pooled
		stagingBatchPool.Put(w.pendCols)
		w.pendCols = nil
	}
}

// sigMatches reports whether row matches the pending batch's column type
// signature (EncodeBatch requires type-homogeneous batches; expression
// results can legally vary row to row, so we cut batches at changes).
func (w *streamWriter) sigMatches(row tuple.Row) bool {
	if len(row) != len(w.sig) {
		return false
	}
	for i, v := range row {
		if v.T != w.sig[i] {
			return false
		}
	}
	return true
}

func (w *streamWriter) setSig(row tuple.Row) {
	w.sig = w.sig[:0]
	fixed, variable := 0, false
	for _, v := range row {
		w.sig = append(w.sig, v.T)
		switch v.T {
		case tuple.Int64:
			fixed += 5
		case tuple.Float64:
			fixed += 8
		default:
			variable = true // per-row hints stay in charge
		}
	}
	if variable {
		fixed = 0
	}
	w.sigFixed = fixed
}

// errStreamCancelled aborts emission after a client cancel; dispatch
// maps it onto the "cancelled" End code.
var errStreamCancelled = errors.New("server: stream cancelled by client")

// cancelReq handles an inbound FrameCancel: further emission is dropped
// and the query context aborts (stopping execution or a credit wait).
func (w *streamWriter) cancelReq() {
	w.cancelled.Store(true)
	if w.cancelFn != nil {
		w.cancelFn()
	}
}

// flush encodes and sends the pending rows as one batch frame, waiting
// for a flow-control credit first.
func (w *streamWriter) flush() error {
	if w.cancelled.Load() {
		w.pending = w.pending[:0]
		w.pendSize = 0
		return errStreamCancelled
	}
	if len(w.pending) == 0 {
		return nil
	}
	if err := w.waitCredit(); err != nil {
		return err
	}
	buf := getFrameBuf()
	defer putFrameBuf(buf)
	dst, mark := beginBinaryFrame((*buf)[:0], FrameBatch)
	dst = binary.BigEndian.AppendUint64(dst, w.id)
	dst, err := tuple.AppendBatch(dst, w.pending, w.compressMin)
	if err != nil {
		return err
	}
	dst, err = finishBinaryFrame(dst, mark, w.maxFrame)
	if err != nil {
		return err
	}
	w.rows += int64(len(w.pending))
	w.batches++
	w.pending = w.pending[:0]
	w.pendSize = 0
	*buf = dst[:0]
	return w.writeBatchFrame(dst)
}

// writeBatchFrame sends one encoded batch frame and fires the first-batch
// hook once the first frame has actually reached the session writer.
func (w *streamWriter) writeBatchFrame(dst []byte) error {
	if err := w.sess.write(dst); err != nil {
		return err
	}
	if w.onFirst != nil {
		w.onFirst()
		w.onFirst = nil
	}
	return nil
}

// RowsStaged reports how many result rows the writer has accepted so far
// — flushed frames plus rows still staged toward the next one. Exact at
// any point where the backend is not mid-call (the dispatcher reads it
// after the backend returns, before the final flush in end()).
func (w *streamWriter) RowsStaged() int64 {
	n := w.rows + int64(len(w.pending))
	if w.pendCols != nil {
		n += int64(w.pendCols.N)
	}
	return n
}

// waitCredit consumes one send credit, blocking on the client when the
// window is exhausted. Bounded by the request context (so an abandoned
// stream times out) and the session lifetime (so a dead connection
// unblocks immediately).
func (w *streamWriter) waitCredit() error {
	for w.avail <= 0 {
		select {
		case n := <-w.credits:
			w.avail += int(n)
		case <-w.ctx.Done():
			return Errorf(CodeTimeout, "stream stalled awaiting credit: %v", w.ctx.Err())
		case <-w.sess.ctx.Done():
			return errors.New("server: session closed mid-stream")
		}
	}
	// Drain any credits that arrived while we were sending.
	for {
		select {
		case n := <-w.credits:
			w.avail += int(n)
		default:
			w.avail--
			return nil
		}
	}
}

// end flushes pending rows and sends the terminal frame. When the stream
// failed before producing its schema frame, the End frame is still the
// first and only frame — clients handle End-before-Schema.
//
// beforeEnd (optional) runs after the final flush but before the End
// frame is written: the dispatcher unregisters the stream there, so by
// the time a client sees End — and may immediately reuse the request ID
// on its next query — the ID is already free. (Unregistering after the
// write, as a deferred cleanup, raced exactly that reuse.)
func (w *streamWriter) end(tail *StreamEnd, beforeEnd func()) error {
	if tail.Error == nil {
		err := w.flush()
		if err == nil {
			err = w.flushCols()
		}
		if err != nil {
			if errors.Is(err, errStreamCancelled) {
				tail = &StreamEnd{Error: Errorf(CodeCancelled, "stream cancelled by client")}
			} else {
				// Credit starvation or encode failure: degrade to an error end.
				tail = &StreamEnd{Error: toWireError(w.ctx, err)}
			}
		}
	}
	w.releaseStaging()
	if beforeEnd != nil {
		beforeEnd()
	}
	tail.Rows = w.rows
	tail.Batches = w.batches
	buf := getFrameBuf()
	defer putFrameBuf(buf)
	dst, mark := beginBinaryFrame((*buf)[:0], FrameEnd)
	dst = binary.BigEndian.AppendUint64(dst, w.id)
	dst, err := appendJSON(dst, tail)
	if err != nil {
		return err
	}
	dst, err = finishBinaryFrame(dst, mark, w.maxFrame)
	if err != nil {
		return err
	}
	*buf = dst[:0]
	return w.sess.write(dst)
}

// credit is called by the session read loop when a FrameCredit arrives.
func (w *streamWriter) credit(n uint64) {
	select {
	case w.credits <- n:
	default:
		// Window is bounded; a client flooding credits beyond the buffer
		// is misbehaving — dropping extras only ever slows its stream.
	}
}
