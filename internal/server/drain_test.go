package server

import (
	"context"
	"net"
	"testing"
	"time"
)

// respReader collects pipelined responses, which may arrive in any
// order, so tests can await a specific request ID without dropping the
// ones read past along the way.
type respReader struct {
	conn net.Conn
	got  map[uint64]*Response
}

func (r *respReader) awaitResponse(t *testing.T, id uint64) *Response {
	t.Helper()
	if r.got == nil {
		r.got = make(map[uint64]*Response)
	}
	for {
		if resp, ok := r.got[id]; ok {
			delete(r.got, id)
			return resp
		}
		var resp Response
		if err := ReadFrame(r.conn, &resp); err != nil {
			t.Fatalf("reading response %d: %v", id, err)
		}
		r.got[resp.ID] = &resp
	}
}

func TestHealthOp(t *testing.T) {
	s := startTestServer(t, &stubBackend{}, Config{
		Peers: func() []string { return []string{"a:1", "b:2"} },
	})
	conn := dialTest(t, s)
	rd := &respReader{conn: conn}
	if err := WriteFrame(conn, &Request{ID: 1, Op: OpHealth}); err != nil {
		t.Fatal(err)
	}
	resp := rd.awaitResponse(t, 1)
	if resp.Error != nil {
		t.Fatalf("health: %v", resp.Error)
	}
	h := resp.Health
	if h == nil {
		t.Fatal("health response missing payload")
	}
	if h.Status != "ok" {
		t.Fatalf("status = %q, want ok", h.Status)
	}
	if len(h.Peers) != 2 || h.Peers[0] != "a:1" || h.Peers[1] != "b:2" {
		t.Fatalf("peers = %v", h.Peers)
	}
	if h.Connections != 1 {
		t.Fatalf("connections = %d, want 1", h.Connections)
	}
}

// TestShutdownDrains: Shutdown stops accepting, lets in-flight work
// finish, rejects new work with CodeUnavailable, and keeps answering
// health (reporting draining) so clients can steer away.
func TestShutdownDrains(t *testing.T) {
	s := startTestServer(t, &stubBackend{queryDelay: 300 * time.Millisecond}, Config{})
	conn := dialTest(t, s)
	rd := &respReader{conn: conn}

	// In-flight query that outlives the start of the drain.
	if err := WriteFrame(conn, &Request{ID: 1, Op: OpQuery, Query: &QueryRequest{SQL: "slow"}}); err != nil {
		t.Fatal(err)
	}
	// Give the server a moment to start the handler before draining.
	time.Sleep(50 * time.Millisecond)

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}

	// New connections are refused once the listener is down.
	if c, err := net.DialTimeout("tcp", s.Addr().String(), time.Second); err == nil {
		c.Close()
		t.Fatal("dial succeeded during drain")
	}

	// New work on the existing session is refused with the retryable
	// proof-of-non-execution code.
	if err := WriteFrame(conn, &Request{ID: 2, Op: OpQuery, Query: &QueryRequest{SQL: "late"}}); err != nil {
		t.Fatal(err)
	}
	// Health still answers, reporting the drain.
	if err := WriteFrame(conn, &Request{ID: 3, Op: OpHealth}); err != nil {
		t.Fatal(err)
	}

	refused := rd.awaitResponse(t, 2)
	if refused.Error == nil || refused.Error.Code != CodeUnavailable {
		t.Fatalf("late query: got %+v, want %s", refused.Error, CodeUnavailable)
	}
	health := rd.awaitResponse(t, 3)
	if health.Error != nil || health.Health == nil || health.Health.Status != "draining" {
		t.Fatalf("health during drain: %+v %+v", health.Error, health.Health)
	}

	// The in-flight query still completes successfully.
	slow := rd.awaitResponse(t, 1)
	if slow.Error != nil {
		t.Fatalf("in-flight query failed during drain: %v", slow.Error)
	}

	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestShutdownTimeout: a drain that cannot finish in time returns the
// context error and hard-closes the server.
func TestShutdownTimeout(t *testing.T) {
	s := startTestServer(t, &stubBackend{queryDelay: 10 * time.Second}, Config{})
	conn := dialTest(t, s)
	if err := WriteFrame(conn, &Request{ID: 1, Op: OpQuery, Query: &QueryRequest{SQL: "stuck"}}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("shutdown error = %v, want deadline exceeded", err)
	}
}
