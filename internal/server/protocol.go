// Package server exposes a running ORCHESTRA deployment (an embedded
// Cluster node or a real TCP cluster.Node) to external clients over a
// small length-prefixed JSON wire protocol. This is the missing piece
// between the paper's embedded prototype and a deployable service: peers
// connect over TCP, publish updates, and run snapshot queries — many of
// them concurrently — while the server bounds in-flight query executions
// with an admission-control semaphore and accounts per-operation request,
// error, and latency counters.
//
// Wire format: every message is one frame — a 4-byte big-endian length
// followed by that many bytes of JSON (a Request from the client, a
// Response from the server). Requests carry a client-chosen ID echoed in
// the matching Response, so a client may pipeline several requests on one
// connection; the server executes them concurrently and replies in
// completion order.
//
// A connection may additionally negotiate the binary streaming extension
// with a hello request (see OpHello and stream.go): query results then
// flow as a sequence of column-major row-batch frames with credit-based
// backpressure instead of one buffered JSON frame, lifting the MaxFrame
// ceiling on result size. Old peers never send hello and keep speaking
// plain JSON frames; new clients fall back when hello is rejected.
package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"orchestra/internal/cluster"
	"orchestra/internal/engine"
	"orchestra/internal/kvstore"
	"orchestra/internal/obs"
	"orchestra/internal/tuple"
)

// MaxFrame is the default bound on a single frame; larger frames fail
// the request (and, for unreadable inbound frames, the connection).
// Streamed results are not subject to it as a whole — only each batch
// frame is. Server Config.MaxFrame and client options can lower it.
const MaxFrame = 64 << 20

// MinFrame is the floor a hello handshake can negotiate MaxFrame down
// to: control frames (responses, stream End frames) must always fit.
const MinFrame = 4 << 10

// MaxFrameLimit is the hard ceiling any configuration can raise the
// frame bound to: the length header's high bit tags binary frames, so
// lengths must stay below 2^31.
const MaxFrameLimit = 1<<31 - 1

// FrameSizeError reports a frame exceeding the negotiated limit. It is
// surfaced instead of a raw connection abort so peers can tell "result
// too big for one frame" from a torn connection.
type FrameSizeError struct {
	Size, Max int64
}

func (e *FrameSizeError) Error() string {
	return fmt.Sprintf("server: frame of %d bytes exceeds max %d", e.Size, e.Max)
}

// EncodeFrame marshals v into one length-prefixed frame (header + body).
func EncodeFrame(v any) ([]byte, error) {
	return AppendFrame(nil, v, MaxFrame)
}

// AppendFrame appends one length-prefixed JSON frame for v to dst,
// reusing dst's capacity — the allocation-lean variant for hot write
// paths (pair with a sync.Pool of buffers). maxFrame bounds the body; an
// oversized body returns a *FrameSizeError.
func AppendFrame(dst []byte, v any, maxFrame int64) ([]byte, error) {
	mark := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	body, err := appendJSON(dst, v)
	if err != nil {
		return nil, err
	}
	n := len(body) - mark - 4
	if int64(n) > maxFrame {
		return nil, &FrameSizeError{Size: int64(n), Max: maxFrame}
	}
	binary.BigEndian.PutUint32(body[mark:mark+4], uint32(n))
	return body, nil
}

// appendJSON marshals v appending to dst. encoding/json has no public
// append API; go through a bytes.Buffer wrapper only when dst is short on
// capacity would still copy, so accept one copy here — the caller's pooled
// buffer absorbs the allocation across requests.
func appendJSON(dst []byte, v any) ([]byte, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(dst, body...), nil
}

// WriteFrame marshals v and writes it as one length-prefixed frame.
func WriteFrame(w io.Writer, v any) error {
	frame, err := EncodeFrame(v)
	if err != nil {
		return err
	}
	_, err = w.Write(frame)
	return err
}

// ReadFrame reads one length-prefixed frame and unmarshals it into v.
// Numbers are decoded as json.Number so int64 values survive intact.
func ReadFrame(r io.Reader, v any) error {
	kind, body, _, err := ReadRawFrame(r, MaxFrame)
	if err != nil {
		return err
	}
	if kind != FrameJSON {
		return fmt.Errorf("server: unexpected %v frame, want JSON", kind)
	}
	return UnmarshalJSONFrame(body, v)
}

// UnmarshalJSONFrame decodes a JSON frame body with json.Number numbers.
func UnmarshalJSONFrame(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.UseNumber()
	return dec.Decode(v)
}

// Operation names carried in Request.Op.
const (
	OpPing    = "ping"
	OpCreate  = "create"
	OpPublish = "publish"
	OpQuery   = "query"
	OpSchema  = "schema"
	OpStatus  = "status"
	OpHello   = "hello"
	// OpTrace dumps the server's slow-query log with full span trees —
	// the heavyweight companion of the status op's summary listing.
	OpTrace = "trace"
	// OpHealth is the lightweight liveness/steering probe: current
	// drain state, load, and the cluster's advertised client endpoints.
	// Unlike the status op it carries no counters, so smart clients can
	// poll it cheaply to refresh their member lists and steer away from
	// draining or loaded endpoints.
	OpHealth = "health"
)

// ProtocolVersion is this build's wire-protocol version, exchanged in the
// hello handshake. Version 1 (implicit, no hello) is plain JSON frames;
// version 2 adds the negotiated binary streaming extension.
const ProtocolVersion = 2

// FeatureBinaryStream names the binary row-batch streaming extension in
// hello feature lists.
const FeatureBinaryStream = "binary-stream"

// FeatureBinaryPublish names the binary publish extension: publishes
// cross the wire as one typed column-major batch frame (FramePublish)
// instead of JSON rows with per-value coercion. Requires
// FeatureBinaryStream (tagged frames) on the same connection.
const FeatureBinaryPublish = "binary-publish"

// FeaturePublishID names publish idempotency support: the server
// deduplicates publishes by PublishRequest.PublishID, so a client that
// lost an acknowledgement may retry the same publish (on any endpoint)
// without double-applying it. A client must never retry a publish on a
// connection that did not negotiate this feature — an old server would
// silently ignore the unknown field and apply the batch twice.
const FeaturePublishID = "publish-id"

// Request is one client frame.
type Request struct {
	// ID is echoed in the matching Response (clients pick it; pipelined
	// requests on one connection are matched by it).
	ID uint64 `json:"id"`
	// Op selects the operation; exactly one payload field below is set.
	Op      string          `json:"op"`
	Create  *CreateRequest  `json:"create,omitempty"`
	Publish *PublishRequest `json:"publish,omitempty"`
	Query   *QueryRequest   `json:"query,omitempty"`
	Schema  *SchemaRequest  `json:"schema,omitempty"`
	Hello   *HelloRequest   `json:"hello,omitempty"`
}

// HelloRequest opens feature negotiation on a connection. Old servers
// answer it with a bad_request error (unknown op), which clients treat as
// "JSON only" — mixed-version clusters keep working.
type HelloRequest struct {
	Version int `json:"version"`
	// Features lists extensions the client can speak (FeatureBinaryStream).
	Features []string `json:"features,omitempty"`
	// MaxFrame is the largest single frame the client accepts (0 = the
	// MaxFrame default). The connection uses min(client, server).
	MaxFrame int64 `json:"max_frame,omitempty"`
	// Window is the client's preferred stream credit window: the number
	// of un-acknowledged batch frames the server may have in flight per
	// stream (0 = server default). The connection uses min(client, server).
	Window int `json:"window,omitempty"`
}

// HelloResponse reports the negotiated settings: the intersection of the
// two peers' features and the min of their frame/window limits.
type HelloResponse struct {
	Version  int      `json:"version"`
	Features []string `json:"features,omitempty"`
	MaxFrame int64    `json:"max_frame,omitempty"`
	Window   int      `json:"window,omitempty"`
}

// CreateRequest registers a relation. Columns are "name:type" with type
// one of int, float, string; Keys name the partitioning key columns
// (default: the first column).
type CreateRequest struct {
	Relation string   `json:"relation"`
	Columns  []string `json:"columns"`
	Keys     []string `json:"keys,omitempty"`
}

// PublishRequest inserts a batch of rows as one published update,
// advancing the global epoch. Values are coerced onto the relation's
// column types server-side.
type PublishRequest struct {
	Relation string  `json:"relation"`
	Rows     [][]any `json:"rows"`
	// PublishID is a client-chosen idempotency token (0 = none). A server
	// that negotiated FeaturePublishID deduplicates retried publishes by
	// it: a duplicate returns the originally committed epoch.
	PublishID uint64 `json:"publish_id,omitempty"`
	// TypedRows carries the rows of a binary publish frame (already
	// typed by the wire batch codec); when set it takes precedence over
	// Rows. Never marshaled — it exists only between the frame decoder
	// and the backend.
	TypedRows []tuple.Row `json:"-"`
}

// QueryRequest runs a single-block SQL query against a snapshot.
type QueryRequest struct {
	SQL string `json:"sql"`
	// Epoch pins the snapshot (0 = current).
	Epoch uint64 `json:"epoch,omitempty"`
	// Recovery is "", "fail", "restart", or "incremental".
	Recovery string `json:"recovery,omitempty"`
	// Provenance forces provenance tracking (overhead measurement, §VI-E).
	Provenance bool `json:"provenance,omitempty"`
	// TimeoutMs bounds execution; capped by the server's RequestTimeout.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// Explain asks for the optimizer's plan explanation in the response.
	Explain bool `json:"explain,omitempty"`
	// Stream asks for the result as binary row-batch frames instead of
	// one JSON response. Only honored on connections that negotiated
	// FeatureBinaryStream; otherwise ignored and answered with JSON.
	Stream bool `json:"stream,omitempty"`
	// Trace asks for the query's span tree in the response (buffered
	// responses carry it inline; streamed responses in the End frame).
	Trace bool `json:"trace,omitempty"`
}

// SchemaRequest fetches one relation's schema, or the server's whole
// known catalog when Relation is empty.
type SchemaRequest struct {
	Relation string `json:"relation,omitempty"`
}

// Response is one server frame.
type Response struct {
	ID    uint64     `json:"id"`
	Error *WireError `json:"error,omitempty"`
	// Epoch is set by ping (current), create, and publish (resulting).
	Epoch  uint64          `json:"epoch,omitempty"`
	Query  *QueryResponse  `json:"query,omitempty"`
	Schema *SchemaResponse `json:"schema,omitempty"`
	Status *StatusResponse `json:"status,omitempty"`
	Hello  *HelloResponse  `json:"hello,omitempty"`
	Trace  *TraceResponse  `json:"trace,omitempty"`
	Health *HealthResponse `json:"health,omitempty"`
}

// HealthResponse answers the health op.
type HealthResponse struct {
	// Status is "ok" or "draining". A draining server answers health (and
	// other read-only ops) but refuses new queries and publishes with
	// CodeUnavailable while its in-flight work finishes.
	Status string `json:"status"`
	// InFlight and MaxConcurrent expose current load for least-loaded
	// endpoint selection.
	InFlight      int64 `json:"in_flight"`
	MaxConcurrent int   `json:"max_concurrent"`
	Connections   int64 `json:"connections"`
	// Peers lists the advertised client endpoints of the deployment this
	// server belongs to (itself included), for member-list refresh.
	Peers []string `json:"peers,omitempty"`
}

// Error codes carried in WireError.Code.
const (
	CodeBadRequest = "bad_request"
	CodeNotFound   = "not_found"
	CodeTimeout    = "timeout"
	CodeInternal   = "internal"
	// CodeFrameTooLarge reports a single-frame result or request
	// exceeding the connection's frame limit. Retrying the query over a
	// binary-stream connection avoids the single-frame cap entirely.
	CodeFrameTooLarge = "frame_too_large"
	// CodeCancelled terminates a stream the client abandoned with a
	// cancel frame: emission stopped at the client's request, the
	// connection remains usable.
	CodeCancelled = "cancelled"
	// CodeUnavailable rejects a request *before any execution* — today,
	// because the server is draining for shutdown. The rejection is a
	// proof of non-execution, so a client may re-route the request to
	// another endpoint unconditionally, publishes included.
	CodeUnavailable = "unavailable"
)

// WireError is a typed error crossing the wire.
type WireError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *WireError) Error() string { return e.Code + ": " + e.Message }

// Errorf builds a WireError with the given code.
func Errorf(code, format string, args ...any) *WireError {
	return &WireError{Code: code, Message: fmt.Sprintf(format, args...)}
}

// QueryResponse is a completed query.
type QueryResponse struct {
	Columns []string `json:"columns"`
	Rows    WireRows `json:"rows"`
	Epoch   uint64   `json:"epoch"`
	// Cached reports a materialized-view cache hit.
	Cached bool `json:"cached,omitempty"`
	// Phases is 1 + incremental recovery invocations; Restarts counts
	// full restarts.
	Phases   uint32 `json:"phases,omitempty"`
	Restarts int    `json:"restarts,omitempty"`
	// Plan is the optimizer explanation (only when Explain was requested).
	Plan string `json:"plan,omitempty"`
	// TraceID identifies the execution; Trace is its span tree (only
	// when Trace was requested).
	TraceID string    `json:"trace_id,omitempty"`
	Trace   *obs.Span `json:"trace,omitempty"`
}

// RelationInfo describes one catalog entry.
type RelationInfo struct {
	Relation string   `json:"relation"`
	Columns  []string `json:"columns"` // "name:type"
	Keys     []string `json:"keys"`
	// Rows is the server's row-count estimate (0 when unknown).
	Rows int64 `json:"rows,omitempty"`
}

// SchemaResponse lists catalog entries.
type SchemaResponse struct {
	Relations []RelationInfo `json:"relations"`
}

// OpCounters accumulates per-operation accounting.
type OpCounters struct {
	Count  uint64 `json:"count"`
	Errors uint64 `json:"errors"`
	// TotalUs and MaxUs are service-time microseconds (admission wait
	// included — that is what the client observes).
	TotalUs int64 `json:"total_us"`
	MaxUs   int64 `json:"max_us"`
	// P50Us/P95Us/P99Us are latency quantiles from the op's histogram.
	P50Us int64 `json:"p50_us,omitempty"`
	P95Us int64 `json:"p95_us,omitempty"`
	P99Us int64 `json:"p99_us,omitempty"`
}

// StatusResponse reports server identity and load counters.
type StatusResponse struct {
	NodeID  string `json:"node_id"`
	Members int    `json:"members"`
	// Peers lists the deployment's advertised client endpoints (the same
	// list the health op carries) — the seed for smart-client member lists.
	Peers []string `json:"peers,omitempty"`
	Epoch uint64   `json:"epoch"`
	// UptimeMs is milliseconds since the server started.
	UptimeMs int64 `json:"uptime_ms"`
	// Connections is the live session count; TotalConnections ever.
	Connections      int64 `json:"connections"`
	TotalConnections int64 `json:"total_connections"`
	// InFlightQueries / PeakInFlightQueries expose the admission-control
	// semaphore: peak never exceeds MaxConcurrentQueries.
	InFlightQueries      int64 `json:"in_flight_queries"`
	PeakInFlightQueries  int64 `json:"peak_in_flight_queries"`
	MaxConcurrentQueries int   `json:"max_concurrent_queries"`
	// Ops keys are the Op* operation names.
	Ops map[string]OpCounters `json:"ops"`
	// Caches reports hit/miss/eviction counters by cache name ("views",
	// "pages") when the backend exposes them.
	Caches map[string]engine.CacheStats `json:"caches,omitempty"`
	// Streams summarizes streamed-execution activity (during-execution
	// emission): query/row counts and first-batch latency quantiles.
	Streams *StreamStats `json:"streams,omitempty"`
	// SlowQueries summarizes the slow-query ring (span trees stripped;
	// the trace op returns them in full).
	SlowQueries []SlowQuery `json:"slow_queries,omitempty"`
	// Durability reports the serving node's WAL/snapshot/recovery
	// counters when its store is durable (omitted for in-memory stores).
	Durability *kvstore.DurabilityStats `json:"durability,omitempty"`
	// Replication reports the serving node's replica-repair health —
	// catch-up counters, anti-entropy repairs, and per-peer shipping
	// lag — when the backend exposes it (omitted for single-node
	// deployments).
	Replication *cluster.ReplStats `json:"replication,omitempty"`
}

// SlowQuery is one slow-query log entry.
type SlowQuery struct {
	SQL     string `json:"sql"`
	TraceID string `json:"trace_id,omitempty"`
	DurUs   int64  `json:"dur_us"`
	// StartUnixMs is the query's wall-clock start.
	StartUnixMs int64  `json:"start_unix_ms"`
	Error       string `json:"error,omitempty"`
	Streamed    bool   `json:"streamed,omitempty"`
	// Rows is the result size — collected rows on the buffered path,
	// rows handed to the stream writer on the streamed path (so streamed
	// entries no longer log rows=0).
	Rows int64 `json:"rows"`
	// Trace is the query's span tree (omitted in status summaries).
	Trace *obs.Span `json:"trace,omitempty"`
}

// StreamStats summarizes the server's streamed-execution activity: how
// many queries ran on the during-execution streaming path, how many rows
// they emitted, and the first-batch latency distribution (request start
// to first batch frame on the wire).
type StreamStats struct {
	Queries uint64 `json:"queries"`
	Rows    uint64 `json:"rows"`
	// FirstBatch* summarize the first-batch latency histogram.
	FirstBatchP50Us int64 `json:"first_batch_p50_us,omitempty"`
	FirstBatchP95Us int64 `json:"first_batch_p95_us,omitempty"`
	FirstBatchP99Us int64 `json:"first_batch_p99_us,omitempty"`
	FirstBatchMaxUs int64 `json:"first_batch_max_us,omitempty"`
}

// TraceResponse answers the trace op: the slow-query ring, oldest
// first, with full span trees.
type TraceResponse struct {
	// ThresholdMs is the active slow-query threshold (0 = logging off).
	ThresholdMs int64 `json:"threshold_ms"`
	// Dropped counts entries the ring has overwritten.
	Dropped uint64      `json:"dropped,omitempty"`
	Entries []SlowQuery `json:"entries,omitempty"`
}

// --- value codec ---
//
// Result values cross the wire as plain JSON scalars, kept unambiguous by
// construction: Int64 values never carry a decimal point or exponent,
// Float64 values always do. Decoding with json.Number (ReadFrame does)
// recovers the exact type.

// WireRows carries a result's rows across the JSON wire. Server-side it
// wraps the engine's typed rows and marshals them with a single
// append-based encoder pass — no per-cell allocation or interface boxing
// (the old per-value MarshalJSON dominated large-result serving cost).
// Client-side UnmarshalJSON fills Any with json.Number/string scalars.
type WireRows struct {
	// Typed is the server-side source of truth (set via EncodeRows).
	Typed []tuple.Row `json:"-"`
	// Any is the decoded client-side form (also accepted when marshaling,
	// for callers that construct responses from plain values).
	Any [][]any `json:"-"`
}

// EncodeRows wraps engine rows for wire encoding (zero-copy: the response
// references the engine's rows until marshaled).
func EncodeRows(rows []tuple.Row) WireRows { return WireRows{Typed: rows} }

// AnyRows wraps already-boxed rows for wire encoding.
func AnyRows(rows [][]any) WireRows { return WireRows{Any: rows} }

// Len returns the number of rows.
func (w WireRows) Len() int {
	if w.Typed != nil {
		return len(w.Typed)
	}
	return len(w.Any)
}

// MarshalJSON encodes all rows in one pass into one buffer.
func (w WireRows) MarshalJSON() ([]byte, error) {
	if w.Typed == nil {
		if w.Any == nil {
			return []byte("[]"), nil
		}
		return json.Marshal(w.Any)
	}
	// Size estimate keeps growth reallocations rare on large results.
	est := 2
	for _, r := range w.Typed {
		est += 2 + 16*len(r)
	}
	dst := make([]byte, 0, est)
	dst = append(dst, '[')
	for i, r := range w.Typed {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, '[')
		for j, v := range r {
			if j > 0 {
				dst = append(dst, ',')
			}
			var err error
			dst, err = appendJSONValue(dst, v)
			if err != nil {
				return nil, err
			}
		}
		dst = append(dst, ']')
	}
	return append(dst, ']'), nil
}

// UnmarshalJSON decodes wire rows into Any with json.Number numbers.
func (w *WireRows) UnmarshalJSON(data []byte) error {
	w.Typed = nil
	w.Any = nil
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	return dec.Decode(&w.Any)
}

// appendJSONValue appends one tuple value as a JSON scalar. Int64 values
// never carry a decimal point; Float64 values always do.
func appendJSONValue(dst []byte, v tuple.Value) ([]byte, error) {
	switch v.T {
	case tuple.Int64:
		return strconv.AppendInt(dst, v.I64, 10), nil
	case tuple.Float64:
		if math.IsNaN(v.F64) || math.IsInf(v.F64, 0) {
			return nil, fmt.Errorf("server: unsupported float value %v", v.F64)
		}
		mark := len(dst)
		dst = strconv.AppendFloat(dst, v.F64, 'g', -1, 64)
		if !bytes.ContainsAny(dst[mark:], ".eE") { // integral: keep it a float on the wire
			dst = append(dst, '.', '0')
		}
		return dst, nil
	case tuple.String:
		return appendJSONString(dst, v.Str), nil
	default:
		return nil, fmt.Errorf("server: invalid tuple value")
	}
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a quoted JSON string, escaping quotes,
// backslashes, and control characters (other bytes pass through verbatim;
// published values arrive as JSON, so they are valid UTF-8 already).
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x20 && c != '"' && c != '\\' {
			continue
		}
		dst = append(dst, s[start:i]...)
		switch c {
		case '"', '\\':
			dst = append(dst, '\\', c)
		case '\n':
			dst = append(dst, '\\', 'n')
		case '\r':
			dst = append(dst, '\\', 'r')
		case '\t':
			dst = append(dst, '\\', 't')
		default:
			dst = append(dst, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		}
		start = i + 1
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// rowsFromAny converts boxed wire rows back into typed tuple rows — the
// streaming fallback for backends that answer with pre-boxed values.
func rowsFromAny(in [][]any) ([]tuple.Row, error) {
	rows := make([]tuple.Row, len(in))
	for i, r := range in {
		row := make(tuple.Row, len(r))
		for j, v := range r {
			switch x := v.(type) {
			case int:
				row[j] = tuple.I(int64(x))
			case int64:
				row[j] = tuple.I(x)
			case float64:
				row[j] = tuple.F(x)
			case string:
				row[j] = tuple.S(x)
			case json.Number:
				if n, err := x.Int64(); err == nil {
					row[j] = tuple.I(n)
				} else if f, err := x.Float64(); err == nil {
					row[j] = tuple.F(f)
				} else {
					return nil, fmt.Errorf("server: bad number %q in row %d", x.String(), i)
				}
			default:
				return nil, fmt.Errorf("server: unstreamable value %T in row %d", v, i)
			}
		}
		rows[i] = row
	}
	return rows, nil
}

// DecodeValue maps a json.Number/string wire scalar back to a Go scalar
// (int64, float64, or string). Used by clients reading query results.
func DecodeValue(v any) (any, error) {
	switch x := v.(type) {
	case json.Number:
		if i, err := x.Int64(); err == nil {
			return i, nil
		}
		f, err := x.Float64()
		if err != nil {
			return nil, fmt.Errorf("server: bad number %q", x.String())
		}
		return f, nil
	case string:
		return x, nil
	case float64: // decoder without UseNumber
		return x, nil
	default:
		return nil, fmt.Errorf("server: unexpected wire value %T", v)
	}
}

// CoerceRow converts one wire row onto a schema's column types: numbers
// are accepted for numeric columns (integral floats for int columns),
// strings for string columns.
func CoerceRow(s *tuple.Schema, in []any) (tuple.Row, error) {
	if len(in) != s.Arity() {
		return nil, Errorf(CodeBadRequest, "row arity %d != schema arity %d", len(in), s.Arity())
	}
	out := make(tuple.Row, len(in))
	for i, v := range in {
		col := s.Columns[i]
		switch col.Type {
		case tuple.Int64:
			switch x := v.(type) {
			case json.Number:
				n, err := x.Int64()
				if err != nil {
					f, ferr := x.Float64()
					if ferr != nil || f != float64(int64(f)) {
						return nil, Errorf(CodeBadRequest, "column %s wants int, got %q", col.Name, x.String())
					}
					n = int64(f)
				}
				out[i] = tuple.I(n)
			case float64:
				if x != float64(int64(x)) {
					return nil, Errorf(CodeBadRequest, "column %s wants int, got %v", col.Name, x)
				}
				out[i] = tuple.I(int64(x))
			case int:
				out[i] = tuple.I(int64(x))
			case int64:
				out[i] = tuple.I(x)
			default:
				return nil, Errorf(CodeBadRequest, "column %s wants int, got %T", col.Name, v)
			}
		case tuple.Float64:
			switch x := v.(type) {
			case json.Number:
				f, err := x.Float64()
				if err != nil {
					return nil, Errorf(CodeBadRequest, "column %s wants float, got %q", col.Name, x.String())
				}
				out[i] = tuple.F(f)
			case float64:
				out[i] = tuple.F(x)
			case int:
				out[i] = tuple.F(float64(x))
			case int64:
				out[i] = tuple.F(float64(x))
			default:
				return nil, Errorf(CodeBadRequest, "column %s wants float, got %T", col.Name, v)
			}
		case tuple.String:
			x, ok := v.(string)
			if !ok {
				return nil, Errorf(CodeBadRequest, "column %s wants string, got %T", col.Name, v)
			}
			out[i] = tuple.S(x)
		}
	}
	return out, nil
}

// CoerceTypedRows coerces batch-decoded rows onto a schema's column
// types, in place where the types already match. The rules mirror
// CoerceRow: numeric columns accept either numeric type (integral floats
// for int columns), string columns accept strings.
func CoerceTypedRows(s *tuple.Schema, rows []tuple.Row) error {
	for i, row := range rows {
		if len(row) != s.Arity() {
			return Errorf(CodeBadRequest, "row %d arity %d != schema arity %d", i, len(row), s.Arity())
		}
		for j := range row {
			v := &row[j]
			col := s.Columns[j]
			if v.T == col.Type {
				continue
			}
			switch {
			case col.Type == tuple.Float64 && v.T == tuple.Int64:
				*v = tuple.F(float64(v.I64))
			case col.Type == tuple.Int64 && v.T == tuple.Float64 && v.F64 == float64(int64(v.F64)):
				*v = tuple.I(int64(v.F64))
			default:
				return Errorf(CodeBadRequest, "column %s wants %v, got %v", col.Name, col.Type, v.T)
			}
		}
	}
	return nil
}

// ParseColumns converts "name:type" specs into tuple columns.
func ParseColumns(specs []string) ([]tuple.Column, error) {
	cols := make([]tuple.Column, 0, len(specs))
	for _, c := range specs {
		name, typ, ok := strings.Cut(c, ":")
		if !ok || name == "" {
			return nil, Errorf(CodeBadRequest, "bad column %q (want name:type)", c)
		}
		var t tuple.Type
		switch typ {
		case "int", "int64":
			t = tuple.Int64
		case "float", "float64":
			t = tuple.Float64
		case "string", "str":
			t = tuple.String
		default:
			return nil, Errorf(CodeBadRequest, "bad column type in %q", c)
		}
		cols = append(cols, tuple.Column{Name: name, Type: t})
	}
	return cols, nil
}

// FormatColumns renders a schema's columns back to "name:type" specs.
func FormatColumns(s *tuple.Schema) (cols, keys []string) {
	for _, c := range s.Columns {
		typ := "string"
		switch c.Type {
		case tuple.Int64:
			typ = "int"
		case tuple.Float64:
			typ = "float"
		}
		cols = append(cols, c.Name+":"+typ)
	}
	for _, k := range s.Key {
		keys = append(keys, s.Columns[k].Name)
	}
	return cols, keys
}
