// Package server exposes a running ORCHESTRA deployment (an embedded
// Cluster node or a real TCP cluster.Node) to external clients over a
// small length-prefixed JSON wire protocol. This is the missing piece
// between the paper's embedded prototype and a deployable service: peers
// connect over TCP, publish updates, and run snapshot queries — many of
// them concurrently — while the server bounds in-flight query executions
// with an admission-control semaphore and accounts per-operation request,
// error, and latency counters.
//
// Wire format: every message is one frame — a 4-byte big-endian length
// followed by that many bytes of JSON (a Request from the client, a
// Response from the server). Requests carry a client-chosen ID echoed in
// the matching Response, so a client may pipeline several requests on one
// connection; the server executes them concurrently and replies in
// completion order.
package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"orchestra/internal/tuple"
)

// MaxFrame bounds a single frame; larger frames abort the connection.
const MaxFrame = 64 << 20

// EncodeFrame marshals v into one length-prefixed frame (header + body).
func EncodeFrame(v any) ([]byte, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	if len(body) > MaxFrame {
		return nil, fmt.Errorf("server: frame of %d bytes exceeds max %d", len(body), MaxFrame)
	}
	frame := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(frame[:4], uint32(len(body)))
	copy(frame[4:], body)
	return frame, nil
}

// WriteFrame marshals v and writes it as one length-prefixed frame.
func WriteFrame(w io.Writer, v any) error {
	frame, err := EncodeFrame(v)
	if err != nil {
		return err
	}
	_, err = w.Write(frame)
	return err
}

// ReadFrame reads one length-prefixed frame and unmarshals it into v.
// Numbers are decoded as json.Number so int64 values survive intact.
func ReadFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return fmt.Errorf("server: frame of %d bytes exceeds max %d", n, MaxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.UseNumber()
	return dec.Decode(v)
}

// Operation names carried in Request.Op.
const (
	OpPing    = "ping"
	OpCreate  = "create"
	OpPublish = "publish"
	OpQuery   = "query"
	OpSchema  = "schema"
	OpStatus  = "status"
)

// Request is one client frame.
type Request struct {
	// ID is echoed in the matching Response (clients pick it; pipelined
	// requests on one connection are matched by it).
	ID uint64 `json:"id"`
	// Op selects the operation; exactly one payload field below is set.
	Op      string          `json:"op"`
	Create  *CreateRequest  `json:"create,omitempty"`
	Publish *PublishRequest `json:"publish,omitempty"`
	Query   *QueryRequest   `json:"query,omitempty"`
	Schema  *SchemaRequest  `json:"schema,omitempty"`
}

// CreateRequest registers a relation. Columns are "name:type" with type
// one of int, float, string; Keys name the partitioning key columns
// (default: the first column).
type CreateRequest struct {
	Relation string   `json:"relation"`
	Columns  []string `json:"columns"`
	Keys     []string `json:"keys,omitempty"`
}

// PublishRequest inserts a batch of rows as one published update,
// advancing the global epoch. Values are coerced onto the relation's
// column types server-side.
type PublishRequest struct {
	Relation string  `json:"relation"`
	Rows     [][]any `json:"rows"`
}

// QueryRequest runs a single-block SQL query against a snapshot.
type QueryRequest struct {
	SQL string `json:"sql"`
	// Epoch pins the snapshot (0 = current).
	Epoch uint64 `json:"epoch,omitempty"`
	// Recovery is "", "fail", "restart", or "incremental".
	Recovery string `json:"recovery,omitempty"`
	// Provenance forces provenance tracking (overhead measurement, §VI-E).
	Provenance bool `json:"provenance,omitempty"`
	// TimeoutMs bounds execution; capped by the server's RequestTimeout.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// Explain asks for the optimizer's plan explanation in the response.
	Explain bool `json:"explain,omitempty"`
}

// SchemaRequest fetches one relation's schema, or the server's whole
// known catalog when Relation is empty.
type SchemaRequest struct {
	Relation string `json:"relation,omitempty"`
}

// Response is one server frame.
type Response struct {
	ID    uint64     `json:"id"`
	Error *WireError `json:"error,omitempty"`
	// Epoch is set by ping (current), create, and publish (resulting).
	Epoch  uint64          `json:"epoch,omitempty"`
	Query  *QueryResponse  `json:"query,omitempty"`
	Schema *SchemaResponse `json:"schema,omitempty"`
	Status *StatusResponse `json:"status,omitempty"`
}

// Error codes carried in WireError.Code.
const (
	CodeBadRequest = "bad_request"
	CodeNotFound   = "not_found"
	CodeTimeout    = "timeout"
	CodeInternal   = "internal"
)

// WireError is a typed error crossing the wire.
type WireError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *WireError) Error() string { return e.Code + ": " + e.Message }

// Errorf builds a WireError with the given code.
func Errorf(code, format string, args ...any) *WireError {
	return &WireError{Code: code, Message: fmt.Sprintf(format, args...)}
}

// QueryResponse is a completed query.
type QueryResponse struct {
	Columns []string `json:"columns"`
	Rows    [][]any  `json:"rows"`
	Epoch   uint64   `json:"epoch"`
	// Cached reports a materialized-view cache hit.
	Cached bool `json:"cached,omitempty"`
	// Phases is 1 + incremental recovery invocations; Restarts counts
	// full restarts.
	Phases   uint32 `json:"phases,omitempty"`
	Restarts int    `json:"restarts,omitempty"`
	// Plan is the optimizer explanation (only when Explain was requested).
	Plan string `json:"plan,omitempty"`
}

// RelationInfo describes one catalog entry.
type RelationInfo struct {
	Relation string   `json:"relation"`
	Columns  []string `json:"columns"` // "name:type"
	Keys     []string `json:"keys"`
	// Rows is the server's row-count estimate (0 when unknown).
	Rows int64 `json:"rows,omitempty"`
}

// SchemaResponse lists catalog entries.
type SchemaResponse struct {
	Relations []RelationInfo `json:"relations"`
}

// OpCounters accumulates per-operation accounting.
type OpCounters struct {
	Count  uint64 `json:"count"`
	Errors uint64 `json:"errors"`
	// TotalUs and MaxUs are service-time microseconds (admission wait
	// included — that is what the client observes).
	TotalUs int64 `json:"total_us"`
	MaxUs   int64 `json:"max_us"`
}

// StatusResponse reports server identity and load counters.
type StatusResponse struct {
	NodeID  string `json:"node_id"`
	Members int    `json:"members"`
	Epoch   uint64 `json:"epoch"`
	// UptimeMs is milliseconds since the server started.
	UptimeMs int64 `json:"uptime_ms"`
	// Connections is the live session count; TotalConnections ever.
	Connections      int64 `json:"connections"`
	TotalConnections int64 `json:"total_connections"`
	// InFlightQueries / PeakInFlightQueries expose the admission-control
	// semaphore: peak never exceeds MaxConcurrentQueries.
	InFlightQueries      int64 `json:"in_flight_queries"`
	PeakInFlightQueries  int64 `json:"peak_in_flight_queries"`
	MaxConcurrentQueries int   `json:"max_concurrent_queries"`
	// Ops keys are the Op* operation names.
	Ops map[string]OpCounters `json:"ops"`
}

// --- value codec ---
//
// Result values cross the wire as plain JSON scalars, kept unambiguous by
// construction: Int64 values never carry a decimal point or exponent,
// Float64 values always do. Decoding with json.Number (ReadFrame does)
// recovers the exact type.

// wireValue wraps a tuple.Value for unambiguous JSON encoding.
type wireValue struct{ v tuple.Value }

func (w wireValue) MarshalJSON() ([]byte, error) {
	switch w.v.T {
	case tuple.Int64:
		return strconv.AppendInt(nil, w.v.I64, 10), nil
	case tuple.Float64:
		b := strconv.AppendFloat(nil, w.v.F64, 'g', -1, 64)
		if !strings.ContainsAny(string(b), ".eE") && w.v.F64 == w.v.F64 { // integral, non-NaN
			b = append(b, '.', '0')
		}
		return b, nil
	case tuple.String:
		return json.Marshal(w.v.Str)
	default:
		return nil, fmt.Errorf("server: invalid tuple value")
	}
}

// EncodeRows converts engine rows to wire rows.
func EncodeRows(rows []tuple.Row) [][]any {
	out := make([][]any, len(rows))
	for i, r := range rows {
		wr := make([]any, len(r))
		for j, v := range r {
			wr[j] = wireValue{v}
		}
		out[i] = wr
	}
	return out
}

// DecodeValue maps a json.Number/string wire scalar back to a Go scalar
// (int64, float64, or string). Used by clients reading query results.
func DecodeValue(v any) (any, error) {
	switch x := v.(type) {
	case json.Number:
		if i, err := x.Int64(); err == nil {
			return i, nil
		}
		f, err := x.Float64()
		if err != nil {
			return nil, fmt.Errorf("server: bad number %q", x.String())
		}
		return f, nil
	case string:
		return x, nil
	case float64: // decoder without UseNumber
		return x, nil
	default:
		return nil, fmt.Errorf("server: unexpected wire value %T", v)
	}
}

// CoerceRow converts one wire row onto a schema's column types: numbers
// are accepted for numeric columns (integral floats for int columns),
// strings for string columns.
func CoerceRow(s *tuple.Schema, in []any) (tuple.Row, error) {
	if len(in) != s.Arity() {
		return nil, Errorf(CodeBadRequest, "row arity %d != schema arity %d", len(in), s.Arity())
	}
	out := make(tuple.Row, len(in))
	for i, v := range in {
		col := s.Columns[i]
		switch col.Type {
		case tuple.Int64:
			switch x := v.(type) {
			case json.Number:
				n, err := x.Int64()
				if err != nil {
					f, ferr := x.Float64()
					if ferr != nil || f != float64(int64(f)) {
						return nil, Errorf(CodeBadRequest, "column %s wants int, got %q", col.Name, x.String())
					}
					n = int64(f)
				}
				out[i] = tuple.I(n)
			case float64:
				if x != float64(int64(x)) {
					return nil, Errorf(CodeBadRequest, "column %s wants int, got %v", col.Name, x)
				}
				out[i] = tuple.I(int64(x))
			case int:
				out[i] = tuple.I(int64(x))
			case int64:
				out[i] = tuple.I(x)
			default:
				return nil, Errorf(CodeBadRequest, "column %s wants int, got %T", col.Name, v)
			}
		case tuple.Float64:
			switch x := v.(type) {
			case json.Number:
				f, err := x.Float64()
				if err != nil {
					return nil, Errorf(CodeBadRequest, "column %s wants float, got %q", col.Name, x.String())
				}
				out[i] = tuple.F(f)
			case float64:
				out[i] = tuple.F(x)
			case int:
				out[i] = tuple.F(float64(x))
			case int64:
				out[i] = tuple.F(float64(x))
			default:
				return nil, Errorf(CodeBadRequest, "column %s wants float, got %T", col.Name, v)
			}
		case tuple.String:
			x, ok := v.(string)
			if !ok {
				return nil, Errorf(CodeBadRequest, "column %s wants string, got %T", col.Name, v)
			}
			out[i] = tuple.S(x)
		}
	}
	return out, nil
}

// ParseColumns converts "name:type" specs into tuple columns.
func ParseColumns(specs []string) ([]tuple.Column, error) {
	cols := make([]tuple.Column, 0, len(specs))
	for _, c := range specs {
		name, typ, ok := strings.Cut(c, ":")
		if !ok || name == "" {
			return nil, Errorf(CodeBadRequest, "bad column %q (want name:type)", c)
		}
		var t tuple.Type
		switch typ {
		case "int", "int64":
			t = tuple.Int64
		case "float", "float64":
			t = tuple.Float64
		case "string", "str":
			t = tuple.String
		default:
			return nil, Errorf(CodeBadRequest, "bad column type in %q", c)
		}
		cols = append(cols, tuple.Column{Name: name, Type: t})
	}
	return cols, nil
}

// FormatColumns renders a schema's columns back to "name:type" specs.
func FormatColumns(s *tuple.Schema) (cols, keys []string) {
	for _, c := range s.Columns {
		typ := "string"
		switch c.Type {
		case tuple.Int64:
			typ = "int"
		case tuple.Float64:
			typ = "float"
		}
		cols = append(cols, c.Name+":"+typ)
	}
	for _, k := range s.Key {
		keys = append(keys, s.Columns[k].Name)
	}
	return cols, keys
}
