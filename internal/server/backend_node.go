package server

import (
	"context"
	"sort"
	"sync"

	"orchestra/internal/cluster"
	"orchestra/internal/engine"
	"orchestra/internal/kvstore"
	"orchestra/internal/obs"
	"orchestra/internal/optimizer"
	"orchestra/internal/sql"
	"orchestra/internal/tuple"
	"orchestra/internal/vstore"
)

// NodeBackend serves a real TCP cluster.Node (the orchestra-node binary).
// Schemas are resolved from the cluster's replicated catalogs; the
// relation list for the catalog op is the set of relations this server
// has seen (created, published, or queried through it) — catalogs are
// hash-placed across the ring, so no cheap global listing exists.
type NodeBackend struct {
	node *cluster.Node
	eng  *engine.Engine

	mu   sync.Mutex
	rels map[string]struct{}
}

// NewNodeBackend wraps a node and its engine.
func NewNodeBackend(node *cluster.Node, eng *engine.Engine) *NodeBackend {
	return &NodeBackend{node: node, eng: eng, rels: make(map[string]struct{})}
}

func (b *NodeBackend) noteRelation(rel string) {
	b.mu.Lock()
	b.rels[rel] = struct{}{}
	b.mu.Unlock()
}

// Create implements Backend.
func (b *NodeBackend) Create(ctx context.Context, req *CreateRequest) (tuple.Epoch, error) {
	cols, err := ParseColumns(req.Columns)
	if err != nil {
		return 0, err
	}
	if len(cols) == 0 {
		return 0, Errorf(CodeBadRequest, "relation %q has no columns", req.Relation)
	}
	keys := req.Keys
	if len(keys) == 0 {
		keys = []string{cols[0].Name}
	}
	s, err := tuple.NewSchema(req.Relation, cols, keys...)
	if err != nil {
		return 0, Errorf(CodeBadRequest, "%v", err)
	}
	if err := b.node.CreateRelation(ctx, s); err != nil {
		return 0, err
	}
	b.noteRelation(req.Relation)
	return b.node.Gossip().Current(), nil
}

// Publish implements Backend.
func (b *NodeBackend) Publish(ctx context.Context, req *PublishRequest) (tuple.Epoch, error) {
	cat, err := b.node.GetCatalog(ctx, req.Relation)
	if err != nil {
		return 0, Errorf(CodeNotFound, "relation %q: %v", req.Relation, err)
	}
	var ups []vstore.Update
	if req.TypedRows != nil {
		// Binary publish: already typed; per-column check, no JSON parsing.
		if err := CoerceTypedRows(cat.Schema, req.TypedRows); err != nil {
			return 0, err
		}
		ups = make([]vstore.Update, len(req.TypedRows))
		for i, row := range req.TypedRows {
			ups[i] = vstore.Update{Op: vstore.OpInsert, Row: row}
		}
	} else {
		ups = make([]vstore.Update, len(req.Rows))
		for i, r := range req.Rows {
			row, err := CoerceRow(cat.Schema, r)
			if err != nil {
				return 0, err
			}
			ups[i] = vstore.Update{Op: vstore.OpInsert, Row: row}
		}
	}
	e, err := b.node.PublishWith(ctx, req.Relation, ups, cluster.PublishOptions{ID: req.PublishID})
	if err != nil {
		return 0, err
	}
	b.noteRelation(req.Relation)
	return e, nil
}

// runQuery parses, plans, and executes one wire query, returning the
// engine result plus the derived output column names and (when asked
// for) the plan explanation. Shared by the buffered and streaming paths.
// When req.Trace is set, the returned trace's span tree covers planning
// and execution; the engine attaches fragment spans under its root.
// attach (optional) runs after planning, before execution — the
// streaming path uses it to hook a sink into the engine options for
// stream-eligible plans.
func (b *NodeBackend) runQuery(ctx context.Context, req *QueryRequest, columnar bool, attach func(*engine.Plan, *engine.Options, []string)) (*engine.Result, []string, string, *obs.Trace, error) {
	var tr *obs.Trace
	if req.Trace {
		tr = obs.NewTrace(obs.NewTraceID(), "query", string(b.node.ID()))
	}
	planSpan := tr.Begin("plan")
	q, err := sql.Parse(req.SQL)
	if err != nil {
		return nil, nil, "", nil, Errorf(CodeBadRequest, "%v", err)
	}
	rec, err := RecoveryMode(req.Recovery)
	if err != nil {
		return nil, nil, "", nil, err
	}
	cat := &nodeCatalog{ctx: ctx, node: b.node}
	plan, info, err := optimizer.Build(q, cat, optimizer.Environment{Nodes: b.node.Table().Size()})
	if err != nil {
		return nil, nil, "", nil, err
	}
	tr.End(planSpan)
	tr.Attach(nil, planSpan)
	cols := q.OutputColumns(func(table string) ([]string, bool) {
		s, err := cat.Schema(table)
		if err != nil {
			return nil, false
		}
		names := make([]string, len(s.Columns))
		for i, col := range s.Columns {
			names[i] = col.Name
		}
		return names, true
	})
	opts := engine.Options{
		Epoch:          tuple.Epoch(req.Epoch),
		Recovery:       rec,
		Provenance:     req.Provenance,
		ColumnarResult: columnar,
		Trace:          tr,
	}
	if attach != nil {
		attach(plan, &opts, cols)
	}
	res, err := b.eng.Run(ctx, plan, opts)
	if err != nil {
		return nil, nil, "", nil, err
	}
	for _, ref := range q.From {
		b.noteRelation(ref.Table)
	}
	explain := ""
	if req.Explain {
		explain = optimizer.Explain(plan, info)
	}
	return res, cols, explain, tr, nil
}

// Query implements Backend.
func (b *NodeBackend) Query(ctx context.Context, req *QueryRequest) (*QueryResponse, error) {
	res, cols, explain, tr, err := b.runQuery(ctx, req, false, nil)
	if err != nil {
		return nil, err
	}
	qr := &QueryResponse{
		Columns:  cols,
		Rows:     EncodeRows(res.Rows),
		Epoch:    uint64(res.Epoch),
		Phases:   res.Phases,
		Restarts: res.Restarts,
		Plan:     explain,
	}
	if tr != nil {
		tr.Finish()
		qr.TraceID = tr.ID.String()
		qr.Trace = tr.Root()
	}
	return qr, nil
}

// QueryStream implements StreamingBackend. Stream-eligible plans (no
// restart-sensitive finals) emit through an engine sink *during*
// execution: the schema frame goes out with the first fragment batch and
// the initiator never materializes the full answer. Everything else
// keeps the collected contract — the engine's exactly-once answer
// (complete at the initiator) drains to the wire under stream flow
// control afterwards. Either way there is no wire-encoded copy of the
// whole result; the stream writer re-chunks into size-bounded frames.
// Against a BatchStream the answer stays columnar end to end: frames
// encode straight from the engine's column vectors, which are recycled
// into the engine's arena after the hand-off.
func (b *NodeBackend) QueryStream(ctx context.Context, req *QueryRequest, out ResultStream) (*QueryTail, error) {
	bs, batchAware := out.(BatchStream)
	sink := &nodeSink{out: out, bs: bs}
	res, cols, explain, tr, err := b.runQuery(ctx, req, batchAware, func(plan *engine.Plan, opts *engine.Options, cols []string) {
		if engine.StreamEligible(plan, *opts) {
			sink.cols = cols
			opts.Sink = sink
		}
	})
	if err != nil {
		// Frames may already be on the wire (mid-stream fault after
		// emission): the caller terminates the stream with an error End,
		// which explicitly invalidates the partial result for the client.
		return nil, err
	}
	if sink.attached() {
		// Streamed during execution. Zero-row answers still owe the
		// client a schema frame.
		if err := sink.begin(); err != nil {
			return nil, err
		}
		tail := &QueryTail{
			Epoch:    uint64(res.Epoch),
			Phases:   res.Phases,
			Restarts: res.Restarts,
			Plan:     explain,
			Streamed: res.Streamed,
		}
		if tr != nil {
			tr.Finish()
			tail.TraceID = tr.ID.String()
			tail.Trace = tr.Root()
		}
		return tail, nil
	}
	writeSpan := tr.Begin("stream.write")
	if err := out.Columns(cols); err != nil {
		engine.RecycleResultBatch(res.Batch) // nil-safe; don't leak the slab
		return nil, err
	}
	rows := int64(len(res.Rows))
	if res.Batch != nil && batchAware {
		rows = int64(res.Batch.N)
		emitErr := error(nil)
		if res.Batch.N > 0 {
			emitErr = bs.Batches(res.Batch)
		}
		engine.RecycleResultBatch(res.Batch)
		if emitErr != nil {
			return nil, emitErr
		}
	} else if err := out.Batch(res.Rows); err != nil {
		return nil, err
	}
	tail := &QueryTail{
		Epoch:    uint64(res.Epoch),
		Phases:   res.Phases,
		Restarts: res.Restarts,
		Plan:     explain,
	}
	if tr != nil {
		writeSpan.Rows = rows
		tr.End(writeSpan)
		tr.Attach(nil, writeSpan)
		tr.Finish()
		tail.TraceID = tr.ID.String()
		tail.Trace = tr.Root()
	}
	return tail, nil
}

// nodeSink adapts a wire ResultStream to the engine's StreamSink: the
// engine's drainer goroutine hands it chunks during execution and it
// forwards them to the stream writer, sending the schema frame lazily
// before the first chunk. Calls are serialized by the drainer, and a
// write error (credit starvation, dead connection) propagates back into
// the engine, aborting the query.
type nodeSink struct {
	out  ResultStream
	bs   BatchStream // non-nil when the stream consumes columnar batches
	cols []string    // set when the sink is attached to the engine options

	started bool
	rows    int64
}

func (s *nodeSink) attached() bool { return s.cols != nil }

// begin sends the schema frame once, before the first chunk (or, for
// empty answers, when execution completes).
func (s *nodeSink) begin() error {
	if s.started {
		return nil
	}
	s.started = true
	return s.out.Columns(s.cols)
}

// StreamCols implements engine.StreamSink. The batch is borrowed: the
// writer copies what it stages, so handing it straight down is safe.
func (s *nodeSink) StreamCols(b *tuple.Batch) error {
	if err := s.begin(); err != nil {
		return err
	}
	s.rows += int64(b.N)
	if s.bs != nil {
		return s.bs.Batches(b)
	}
	return s.out.Batch(b.Rows())
}

// StreamRows implements engine.StreamSink.
func (s *nodeSink) StreamRows(rows []tuple.Row) error {
	if err := s.begin(); err != nil {
		return err
	}
	s.rows += int64(len(rows))
	return s.out.Batch(rows)
}

// Catalog implements Backend.
func (b *NodeBackend) Catalog(ctx context.Context, rel string) (*SchemaResponse, error) {
	var names []string
	if rel != "" {
		names = []string{rel}
	} else {
		b.mu.Lock()
		for r := range b.rels {
			names = append(names, r)
		}
		b.mu.Unlock()
		sort.Strings(names)
	}
	out := &SchemaResponse{}
	for _, name := range names {
		cat, err := b.node.GetCatalog(ctx, name)
		if err != nil {
			if rel != "" {
				return nil, Errorf(CodeNotFound, "relation %q: %v", name, err)
			}
			continue // dropped or unreachable; skip in listings
		}
		cols, keys := FormatColumns(cat.Schema)
		out.Relations = append(out.Relations, RelationInfo{
			Relation: name,
			Columns:  cols,
			Keys:     keys,
			Rows:     cat.Rows,
		})
	}
	return out, nil
}

// Epoch implements Backend.
func (b *NodeBackend) Epoch() tuple.Epoch { return b.node.Gossip().Current() }

// Info implements Backend.
func (b *NodeBackend) Info() BackendInfo {
	return BackendInfo{NodeID: string(b.node.ID()), Members: b.node.Table().Size()}
}

// CacheStats implements CacheStatsProvider: this node's decoded-page
// LRU (node backends keep no view cache).
func (b *NodeBackend) CacheStats() map[string]engine.CacheStats {
	return map[string]engine.CacheStats{"pages": b.eng.PageCacheStats()}
}

// DurabilityStats implements DurabilityStatsProvider from the node's
// local store (ok is false for in-memory stores).
func (b *NodeBackend) DurabilityStats() (kvstore.DurabilityStats, bool) {
	return b.node.Store().DurabilityStats()
}

// ReplStats implements ReplStatsProvider: the node's replica-repair
// counters and per-peer catch-up lag (ok is false when the node has no
// peers to replicate with).
func (b *NodeBackend) ReplStats() (cluster.ReplStats, bool) {
	return b.node.ReplStats(), b.node.Table().Size() > 1
}

// nodeCatalog resolves schemas and row-count statistics from the
// replicated catalogs for the optimizer. The catalog record carries the
// relation's persisted row count, so node-side planning sees real
// statistics — across restarts too.
type nodeCatalog struct {
	ctx  context.Context
	node *cluster.Node

	mu    sync.Mutex
	cache map[string]*vstore.Catalog
}

func (c *nodeCatalog) get(table string) (*vstore.Catalog, error) {
	c.mu.Lock()
	if cat, ok := c.cache[table]; ok {
		c.mu.Unlock()
		return cat, nil
	}
	c.mu.Unlock()
	cat, err := c.node.GetCatalog(c.ctx, table)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.cache == nil {
		c.cache = make(map[string]*vstore.Catalog)
	}
	c.cache[table] = cat
	c.mu.Unlock()
	return cat, nil
}

func (c *nodeCatalog) Schema(table string) (*tuple.Schema, error) {
	cat, err := c.get(table)
	if err != nil {
		return nil, err
	}
	return cat.Schema, nil
}

func (c *nodeCatalog) Stats(table string) optimizer.TableStats {
	cat, err := c.get(table)
	if err != nil {
		return optimizer.TableStats{}
	}
	return optimizer.TableStats{Rows: cat.Rows}
}
