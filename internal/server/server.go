package server

import (
	"context"
	"errors"
	"io"
	"log"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes a Server.
type Config struct {
	// MaxConcurrentQueries bounds query executions in flight at once —
	// the admission-control semaphore. Excess queries wait their turn
	// (closed-loop clients self-throttle; waiting counts toward the
	// request timeout). Default: 2 × GOMAXPROCS.
	MaxConcurrentQueries int
	// RequestTimeout caps the server-side execution time of any single
	// request, including admission wait (default 30s). A QueryRequest
	// may ask for less, never more.
	RequestTimeout time.Duration
	// MaxPipelinedRequests bounds requests in flight per connection
	// (default 64). When a client pipelines past the cap, the session
	// stops reading frames until a response drains — backpressure via
	// TCP, so one connection cannot accumulate unbounded handler
	// goroutines and payloads.
	MaxPipelinedRequests int
	// OnQueryStart, when set, is invoked at the start of every query
	// execution while its admission slot is held — an instrumentation
	// hook (tests use it to make executions overlap deterministically).
	OnQueryStart func()
	// Logf receives connection-level diagnostics (default log.Printf).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrentQueries <= 0 {
		c.MaxConcurrentQueries = 2 * runtime.GOMAXPROCS(0)
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxPipelinedRequests <= 0 {
		c.MaxPipelinedRequests = 64
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// Server accepts wire-protocol sessions and dispatches them to a Backend.
type Server struct {
	cfg     Config
	backend Backend
	ln      net.Listener
	start   time.Time

	sem chan struct{} // admission-control slots for query execution

	inFlight   atomic.Int64
	peakFlight atomic.Int64
	conns      atomic.Int64
	totalConns atomic.Int64

	ops map[string]*opCounters

	mu      sync.Mutex
	active  map[net.Conn]struct{}
	closed  bool
	accepts sync.WaitGroup
}

type opCounters struct {
	count, errors atomic.Uint64
	totalUs       atomic.Int64
	maxUs         atomic.Int64
}

func (o *opCounters) observe(d time.Duration, failed bool) {
	o.count.Add(1)
	if failed {
		o.errors.Add(1)
	}
	us := d.Microseconds()
	o.totalUs.Add(us)
	for {
		cur := o.maxUs.Load()
		if us <= cur || o.maxUs.CompareAndSwap(cur, us) {
			return
		}
	}
}

// Start listens on addr ("host:port"; ":0" picks a free port) and serves
// until Close.
func Start(addr string, backend Backend, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		backend: backend,
		ln:      ln,
		start:   time.Now(),
		sem:     make(chan struct{}, cfg.MaxConcurrentQueries),
		active:  make(map[net.Conn]struct{}),
		ops: map[string]*opCounters{
			OpPing:    {},
			OpCreate:  {},
			OpPublish: {},
			OpQuery:   {},
			OpSchema:  {},
			OpStatus:  {},
		},
	}
	s.accepts.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting, severs all sessions, and waits for the accept
// loop to exit. In-flight request goroutines drain on their own.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.active))
	for c := range s.active {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.accepts.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.accepts.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.active[conn] = struct{}{}
		s.mu.Unlock()
		s.conns.Add(1)
		s.totalConns.Add(1)
		go s.session(conn)
	}
}

// session owns one connection: it reads request frames and dispatches
// each to its own goroutine, so a slow query does not block later
// requests pipelined on the same connection. Responses are serialized
// by a per-connection write lock and carry the request's ID.
func (s *Server) session(conn net.Conn) {
	defer func() {
		conn.Close()
		s.conns.Add(-1)
		s.mu.Lock()
		delete(s.active, conn)
		s.mu.Unlock()
	}()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	var wmu sync.Mutex
	var handlers sync.WaitGroup
	defer handlers.Wait()
	pipeline := make(chan struct{}, s.cfg.MaxPipelinedRequests)
	for {
		var req Request
		if err := ReadFrame(conn, &req); err != nil {
			if !errors.Is(err, net.ErrClosed) && !isEOF(err) {
				s.cfg.Logf("server: %s: read: %v", conn.RemoteAddr(), err)
			}
			return
		}
		pipeline <- struct{}{} // backpressure: stop reading at the cap
		handlers.Add(1)
		go func(req Request) {
			defer handlers.Done()
			defer func() { <-pipeline }()
			resp := s.dispatch(&req)
			frame, err := EncodeFrame(resp)
			if err != nil {
				// A result the codec cannot carry (e.g. NaN/Inf floats)
				// fails only this request, not the whole session.
				frame, err = EncodeFrame(&Response{ID: req.ID,
					Error: Errorf(CodeInternal, "encode response: %v", err)})
				if err != nil {
					s.cfg.Logf("server: %s: encode: %v", conn.RemoteAddr(), err)
					conn.Close()
					return
				}
			}
			wmu.Lock()
			_, err = conn.Write(frame)
			wmu.Unlock()
			if err != nil && !errors.Is(err, net.ErrClosed) {
				s.cfg.Logf("server: %s: write: %v", conn.RemoteAddr(), err)
				conn.Close() // wake the read loop
			}
		}(req)
	}
}

func isEOF(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

// dispatch executes one request and accounts it.
func (s *Server) dispatch(req *Request) *Response {
	op := req.Op
	counters, known := s.ops[op]
	start := time.Now()
	resp := &Response{ID: req.ID}
	if !known {
		resp.Error = Errorf(CodeBadRequest, "unknown op %q", op)
		return resp
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.RequestTimeout)
	defer cancel()
	err := s.handle(ctx, req, resp)
	if err != nil {
		resp.Error = toWireError(ctx, err)
	}
	counters.observe(time.Since(start), resp.Error != nil)
	return resp
}

func (s *Server) handle(ctx context.Context, req *Request, resp *Response) error {
	switch req.Op {
	case OpPing:
		resp.Epoch = uint64(s.backend.Epoch())
		return nil
	case OpCreate:
		if req.Create == nil {
			return Errorf(CodeBadRequest, "create payload missing")
		}
		e, err := s.backend.Create(ctx, req.Create)
		if err != nil {
			return err
		}
		resp.Epoch = uint64(e)
		return nil
	case OpPublish:
		if req.Publish == nil {
			return Errorf(CodeBadRequest, "publish payload missing")
		}
		e, err := s.backend.Publish(ctx, req.Publish)
		if err != nil {
			return err
		}
		resp.Epoch = uint64(e)
		return nil
	case OpQuery:
		if req.Query == nil {
			return Errorf(CodeBadRequest, "query payload missing")
		}
		if ms := req.Query.TimeoutMs; ms > 0 {
			if d := time.Duration(ms) * time.Millisecond; d < s.cfg.RequestTimeout {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, d)
				defer cancel()
			}
		}
		qr, err := s.runQuery(ctx, req.Query)
		if err != nil {
			return err
		}
		resp.Query = qr
		return nil
	case OpSchema:
		rel := ""
		if req.Schema != nil {
			rel = req.Schema.Relation
		}
		sr, err := s.backend.Catalog(ctx, rel)
		if err != nil {
			return err
		}
		resp.Schema = sr
		return nil
	case OpStatus:
		resp.Status = s.status()
		return nil
	}
	return Errorf(CodeBadRequest, "unknown op %q", req.Op)
}

// runQuery passes the admission-control semaphore, then executes. The
// wait is bounded by the request context so an overloaded server times
// out queued queries instead of letting them pile up forever.
func (s *Server) runQuery(ctx context.Context, q *QueryRequest) (*QueryResponse, error) {
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, Errorf(CodeTimeout, "admission wait: %v", ctx.Err())
	}
	defer func() { <-s.sem }()
	n := s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	for {
		peak := s.peakFlight.Load()
		if n <= peak || s.peakFlight.CompareAndSwap(peak, n) {
			break
		}
	}
	if s.cfg.OnQueryStart != nil {
		s.cfg.OnQueryStart()
	}
	return s.backend.Query(ctx, q)
}

func (s *Server) status() *StatusResponse {
	info := s.backend.Info()
	st := &StatusResponse{
		NodeID:               info.NodeID,
		Members:              info.Members,
		Epoch:                uint64(s.backend.Epoch()),
		UptimeMs:             time.Since(s.start).Milliseconds(),
		Connections:          s.conns.Load(),
		TotalConnections:     s.totalConns.Load(),
		InFlightQueries:      s.inFlight.Load(),
		PeakInFlightQueries:  s.peakFlight.Load(),
		MaxConcurrentQueries: s.cfg.MaxConcurrentQueries,
		Ops:                  make(map[string]OpCounters, len(s.ops)),
	}
	for op, c := range s.ops {
		st.Ops[op] = OpCounters{
			Count:   c.count.Load(),
			Errors:  c.errors.Load(),
			TotalUs: c.totalUs.Load(),
			MaxUs:   c.maxUs.Load(),
		}
	}
	return st
}

// Stats snapshots the server's own counters (the status op, server-side).
func (s *Server) Stats() *StatusResponse { return s.status() }

// toWireError maps backend errors onto wire codes, preserving codes that
// are already typed.
func toWireError(ctx context.Context, err error) *WireError {
	var we *WireError
	if errors.As(err, &we) {
		return we
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return Errorf(CodeTimeout, "%v", err)
	}
	return Errorf(CodeInternal, "%v", err)
}
